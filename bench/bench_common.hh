/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: table
 * printing and common device configurations.
 */

#ifndef RSSD_BENCH_BENCH_COMMON_HH
#define RSSD_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/rssd_config.hh"
#include "flash/nand.hh"
#include "sim/stats.hh"

namespace rssd::bench {

/**
 * True when RSSD_SMOKE is set in the environment. The ctest smoke
 * suite sets it so every bench runs in a seconds-long configuration;
 * the numbers it prints are then *not* paper-comparable.
 */
inline bool
smoke()
{
    // rssd-lint: allow-next-line(D1) smoke switch scales iteration counts only; results are labeled non-comparable
    static const bool on = std::getenv("RSSD_SMOKE") != nullptr;
    return on;
}

/** Scale an iteration/request count down for smoke runs. */
inline std::uint64_t
smokeScale(std::uint64_t full, std::uint64_t divisor = 10)
{
    if (!smoke())
        return full;
    const std::uint64_t scaled = full / divisor;
    return scaled > 0 ? scaled : 1;
}

/**
 * A parameter sweep that collapses to its first point in smoke runs,
 * so each bench still exercises its full code path once.
 */
template <typename T>
inline std::vector<T>
sweep(std::initializer_list<T> points)
{
    if (smoke() && points.size() > 1)
        return {*points.begin()};
    return std::vector<T>(points);
}

/**
 * Machine-readable bench results. When RSSD_BENCH_JSON=<path> is set
 * in the environment, record() appends one JSON object per line to
 * <path> (JSON-Lines), e.g.:
 *
 *   {"bench":"offload_path",
 *    "meta":{"build":"Release","native":1,"smoke":1},
 *    "config":{"link_gbps":"25","content":"typical"},
 *    "metrics":{"offload_MiBps":812.4,"wire_MiBps":433.1}}
 *
 * so the perf trajectory can be tracked across PRs by diffing or
 * plotting the artifacts. Every record carries a "meta" stamp (build
 * type, RSSD_NATIVE, smoke flag) so CI artifacts are self-describing:
 * a smoke-mode or Debug number can never masquerade as a
 * paper-comparable one. Without the variable every call is a no-op,
 * keeping human-readable output the default.
 */
class JsonReport
{
  public:
    static JsonReport &
    instance()
    {
        static JsonReport r;
        return r;
    }

    bool enabled() const { return file_ != nullptr; }

    void
    record(const std::string &bench,
           const std::vector<std::pair<std::string, std::string>> &config,
           const std::vector<std::pair<std::string, double>> &metrics)
    {
        if (!file_)
            return;
#ifdef RSSD_BUILD_TYPE_NAME
        const char *build_type = RSSD_BUILD_TYPE_NAME;
#else
        const char *build_type = "unknown";
#endif
#ifdef RSSD_NATIVE
        const int native = 1;
#else
        const int native = 0;
#endif
        std::fprintf(file_,
                     "{\"bench\":\"%s\",\"meta\":{\"build\":\"%s\","
                     "\"native\":%d,\"smoke\":%d},\"config\":{",
                     escaped(bench).c_str(), escaped(build_type).c_str(),
                     native, smoke() ? 1 : 0);
        const char *sep = "";
        for (const auto &[k, v] : config) {
            std::fprintf(file_, "%s\"%s\":\"%s\"", sep,
                         escaped(k).c_str(), escaped(v).c_str());
            sep = ",";
        }
        std::fprintf(file_, "},\"metrics\":{");
        sep = "";
        for (const auto &[k, v] : metrics) {
            std::fprintf(file_, "%s\"%s\":%.17g", sep,
                         escaped(k).c_str(), v);
            sep = ",";
        }
        std::fprintf(file_, "}}\n");
        std::fflush(file_);
    }

  private:
    JsonReport()
    {
        // rssd-lint: allow-next-line(D1) opt-in results file path; absent var keeps record() a no-op
        if (const char *path = std::getenv("RSSD_BENCH_JSON"))
            file_ = std::fopen(path, "a");
    }

    ~JsonReport()
    {
        if (file_)
            std::fclose(file_);
    }

    static std::string
    escaped(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            if (static_cast<unsigned char>(c) < 0x20)
                continue; // bench names never need control chars
            out.push_back(c);
        }
        return out;
    }

    std::FILE *file_ = nullptr;
};

/** Print a bench banner. */
inline void
banner(const std::string &title, const std::string &what)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    if (smoke())
        std::printf("[RSSD_SMOKE: tiny configuration — numbers are "
                    "not paper-comparable]\n");
    std::printf("==================================================="
                "===========================\n");
}

/** A ~1 GiB device for performance benches. */
inline ftl::FtlConfig
benchFtlConfig(std::uint32_t gib = 1)
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::benchGeometry(gib);
    cfg.opFraction = 0.07;
    cfg.gcLowWater = 8;
    cfg.gcHighWater = 16;
    return cfg;
}

/** RSSD on the same geometry. */
inline core::RssdConfig
benchRssdConfig(std::uint32_t gib = 1)
{
    core::RssdConfig cfg;
    cfg.ftl = benchFtlConfig(gib);
    cfg.segmentPages = 256;
    cfg.pumpThreshold = 512;
    cfg.remote.capacityBytes = 64ull * units::GiB;
    return cfg;
}

} // namespace rssd::bench

#endif // RSSD_BENCH_BENCH_COMMON_HH
