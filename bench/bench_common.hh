/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: table
 * printing and common device configurations.
 */

#ifndef RSSD_BENCH_BENCH_COMMON_HH
#define RSSD_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/rssd_config.hh"
#include "flash/nand.hh"
#include "sim/stats.hh"

namespace rssd::bench {

/**
 * True when RSSD_SMOKE is set in the environment. The ctest smoke
 * suite sets it so every bench runs in a seconds-long configuration;
 * the numbers it prints are then *not* paper-comparable.
 */
inline bool
smoke()
{
    static const bool on = std::getenv("RSSD_SMOKE") != nullptr;
    return on;
}

/** Scale an iteration/request count down for smoke runs. */
inline std::uint64_t
smokeScale(std::uint64_t full, std::uint64_t divisor = 10)
{
    if (!smoke())
        return full;
    const std::uint64_t scaled = full / divisor;
    return scaled > 0 ? scaled : 1;
}

/**
 * A parameter sweep that collapses to its first point in smoke runs,
 * so each bench still exercises its full code path once.
 */
template <typename T>
inline std::vector<T>
sweep(std::initializer_list<T> points)
{
    if (smoke() && points.size() > 1)
        return {*points.begin()};
    return std::vector<T>(points);
}

/** Print a bench banner. */
inline void
banner(const std::string &title, const std::string &what)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    if (smoke())
        std::printf("[RSSD_SMOKE: tiny configuration — numbers are "
                    "not paper-comparable]\n");
    std::printf("==================================================="
                "===========================\n");
}

/** A ~1 GiB device for performance benches. */
inline ftl::FtlConfig
benchFtlConfig(std::uint32_t gib = 1)
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::benchGeometry(gib);
    cfg.opFraction = 0.07;
    cfg.gcLowWater = 8;
    cfg.gcHighWater = 16;
    return cfg;
}

/** RSSD on the same geometry. */
inline core::RssdConfig
benchRssdConfig(std::uint32_t gib = 1)
{
    core::RssdConfig cfg;
    cfg.ftl = benchFtlConfig(gib);
    cfg.segmentPages = 256;
    cfg.pumpThreshold = 512;
    cfg.remote.capacityBytes = 64ull * units::GiB;
    return cfg;
}

} // namespace rssd::bench

#endif // RSSD_BENCH_BENCH_COMMON_HH
