/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: table
 * printing and common device configurations.
 */

#ifndef RSSD_BENCH_BENCH_COMMON_HH
#define RSSD_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/rssd_config.hh"
#include "flash/nand.hh"
#include "sim/stats.hh"

namespace rssd::bench {

/** Print a bench banner. */
inline void
banner(const std::string &title, const std::string &what)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==================================================="
                "===========================\n");
}

/** A ~1 GiB device for performance benches. */
inline ftl::FtlConfig
benchFtlConfig(std::uint32_t gib = 1)
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::benchGeometry(gib);
    cfg.opFraction = 0.07;
    cfg.gcLowWater = 8;
    cfg.gcHighWater = 16;
    return cfg;
}

/** RSSD on the same geometry. */
inline core::RssdConfig
benchRssdConfig(std::uint32_t gib = 1)
{
    core::RssdConfig cfg;
    cfg.ftl = benchFtlConfig(gib);
    cfg.segmentPages = 256;
    cfg.pumpThreshold = 512;
    cfg.remote.capacityBytes = 64ull * units::GiB;
    return cfg;
}

} // namespace rssd::bench

#endif // RSSD_BENCH_BENCH_COMMON_HH
