/**
 * @file
 * Fleet scale sweep: aggregate offload throughput as the device
 * count grows from 1 to 64 against a fixed 4-shard backup cluster.
 *
 * What to look for: aggregate sealed-and-acknowledged offload MiB/s
 * should rise with the device count — devices own their clocks,
 * links and RNG streams, and shards serialize only their own ingest
 * queues, so there is no fleet-global lock to collapse against. The
 * per-shard backlog percentiles show where ingest pressure actually
 * lands as the fleet outnumbers the shards.
 *
 *   build/bench/bench_fleet_scale
 */

#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"
#include "fleet/scheduler.hh"

using namespace rssd;

int
main()
{
    bench::banner("Fleet scale: 1 -> 64 devices, 4 shards",
                  "Aggregate offload throughput and shard backlog as "
                  "the fleet grows (benign write-heavy traffic).");

    const std::vector<std::uint32_t> device_counts = bench::smoke()
        ? std::vector<std::uint32_t>{1, 8}
        : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64};
    const std::uint64_t ops = bench::smokeScale(600);

    std::printf("%8s %10s %14s %14s %12s %10s\n", "devices",
                "segments", "offload MiB", "agg MiB/s", "p99 backlog",
                "stalls");

    for (const std::uint32_t devices : device_counts) {
        fleet::FleetConfig cfg;
        cfg.devices = devices;
        cfg.shards = 4;
        cfg.seed = 1234;
        cfg.opsPerDevice = ops;
        cfg.campaign.scenario = fleet::Scenario::Benign;

        fleet::FleetScheduler sched(cfg);
        const fleet::FleetReport rep = sched.run();

        std::uint64_t sealed_bytes = 0;
        for (const fleet::DeviceReport &d : rep.deviceReports)
            sealed_bytes += d.offload.bytesSealed;

        Tick p99 = 0;
        std::uint64_t stalls = 0;
        for (const fleet::ShardReport &s : rep.shardReports) {
            p99 = std::max(p99, s.backlogP99);
            stalls += s.backpressureStalls;
        }

        const double agg_mibps = rep.makespan
            ? units::toMiB(sealed_bytes) /
                units::toSeconds(rep.makespan)
            : 0.0;

        std::printf("%8u %10llu %14.2f %14.1f %12s %10llu\n",
                    devices,
                    static_cast<unsigned long long>(rep.totalSegments),
                    units::toMiB(sealed_bytes), agg_mibps,
                    formatTime(p99).c_str(),
                    static_cast<unsigned long long>(stalls));

        bench::JsonReport::instance().record(
            "fleet_scale",
            {{"devices", std::to_string(devices)},
             {"shards", std::to_string(cfg.shards)},
             {"ops_per_device", std::to_string(ops)}},
            {{"segments",
              static_cast<double>(rep.totalSegments)},
             {"offload_MiB", units::toMiB(sealed_bytes)},
             {"aggregate_MiBps", agg_mibps},
             {"p99_backlog_ms",
              static_cast<double>(p99) / units::MS},
             {"backpressure_stalls", static_cast<double>(stalls)},
             {"makespan_ms",
              static_cast<double>(rep.makespan) / units::MS}});
    }

    std::printf("\nAggregate throughput should scale near-linearly "
                "with devices (independent\ndevice pipelines); shard "
                "backlog p99 is where cluster pressure shows.\n");

    // -- Replication-factor sweep ------------------------------------------
    //
    // Fixed fleet, R in {1, 2, 3}: each sealed segment is stored R
    // times (storage amplification is exactly R on a healthy ring)
    // and the device ack waits for the quorum-th replica, so ack
    // latency tracks the quorum-th busiest replica queue, not the
    // single pinned shard.
    bench::banner("Replication sweep: 16 devices, 4 shards, "
                  "R = 1/2/3",
                  "Durability's price: storage amplification and "
                  "quorum-ack latency vs the replication factor.");

    const std::uint32_t sweep_devices = bench::smoke() ? 8 : 16;
    std::printf("%4s %10s %14s %14s %12s %10s\n", "R", "segments",
                "stored MiB", "agg MiB/s", "p99 backlog",
                "quorum wr");

    for (const std::uint32_t r : {1u, 2u, 3u}) {
        fleet::FleetConfig cfg;
        cfg.devices = sweep_devices;
        cfg.shards = 4;
        cfg.replication = r;
        cfg.seed = 1234;
        cfg.opsPerDevice = ops;
        cfg.campaign.scenario = fleet::Scenario::Benign;

        fleet::FleetScheduler sched(cfg);
        const fleet::FleetReport rep = sched.run();

        std::uint64_t sealed_bytes = 0;
        for (const fleet::DeviceReport &d : rep.deviceReports)
            sealed_bytes += d.offload.bytesSealed;
        Tick p99 = 0;
        for (const fleet::ShardReport &s : rep.shardReports)
            p99 = std::max(p99, s.backlogP99);
        const double agg_mibps = rep.makespan
            ? units::toMiB(sealed_bytes) /
                units::toSeconds(rep.makespan)
            : 0.0;

        std::printf("%4u %10llu %14.2f %14.1f %12s %10llu\n", r,
                    static_cast<unsigned long long>(rep.totalSegments),
                    units::toMiB(rep.totalBytesStored), agg_mibps,
                    formatTime(p99).c_str(),
                    static_cast<unsigned long long>(
                        rep.replicationStats.quorumWrites));

        bench::JsonReport::instance().record(
            "fleet_replication",
            {{"devices", std::to_string(sweep_devices)},
             {"shards", std::to_string(cfg.shards)},
             {"replication", std::to_string(r)},
             {"ops_per_device", std::to_string(ops)}},
            {{"segments_stored",
              static_cast<double>(rep.totalSegments)},
             {"bytes_stored_MiB",
              units::toMiB(rep.totalBytesStored)},
             {"aggregate_MiBps", agg_mibps},
             {"p99_backlog_ms",
              static_cast<double>(p99) / units::MS},
             {"quorum_writes",
              static_cast<double>(
                  rep.replicationStats.quorumWrites)},
             {"makespan_ms",
              static_cast<double>(rep.makespan) / units::MS}});
    }

    std::printf("\nStored segments should be exactly R x the R=1 "
                "run (systematic duplication);\nthe ack latency "
                "cost of R=3 over R=1 is the quorum's price.\n");
    return 0;
}
