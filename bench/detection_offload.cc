/**
 * @file
 * Reproduces the paper's detection-offload claim: "we can detect
 * ransomware more efficiently and accurately by utilizing the
 * powerful computing resources [of remote servers]".
 *
 * Sweeps the timing attack's stealth level (benign ops injected per
 * encrypted page). In-device detectors are DRAM-bounded sliding
 * windows; the remote analyzer sees the whole trusted history with
 * no window. The crossover — where dilution defeats the device but
 * not the analyzer — is the paper's timing-attack argument made
 * quantitative.
 */

#include <cstdio>

#include "attack/ransomware.hh"
#include "bench/bench_common.hh"
#include "core/analyzer.hh"
#include "core/rssd_device.hh"
#include "detect/detector.hh"

using namespace rssd;

int
main()
{
    bench::banner("Detection: in-device windows vs offloaded "
                  "analysis",
                  "Timing attack at increasing dilution; who still "
                  "catches it, and how precisely.");

    std::printf("\n%9s | %-18s | %-18s | %s\n", "dilution",
                "in-device detector", "offloaded analyzer",
                "window error (ops)");
    std::printf("----------+--------------------+------------------"
                "--+-------------------\n");

    for (const std::uint32_t dilution :
         bench::sweep({0u, 4u, 16u, 64u, 256u})) {
        VirtualClock clock;
        core::RssdConfig cfg = core::RssdConfig::forTests();
        cfg.ftl.geometry.blocksPerPlane = 64;
        core::RssdDevice dev(cfg, clock);

        // The in-device detector a baseline SSD would run.
        detect::EntropyOverwriteDetector online;
        dev.attachDetector(&online);

        attack::VictimDataset victim(0, 96);
        victim.populate(dev);
        const std::uint64_t first_attack_seq =
            dev.opLog().totalAppended();

        attack::TimingAttack::Params params;
        params.encryptionInterval = units::SEC;
        params.benignOpsPerEncrypt = dilution;
        attack::TimingAttack attack(params);
        attack.run(dev, clock, victim);

        dev.drainOffload();
        core::DeviceHistory history(dev);
        core::PostAttackAnalyzer analyzer(history);
        const core::AnalysisReport report = analyzer.analyze();

        const long long window_error = report.finding.detected
            ? static_cast<long long>(
                  report.finding.firstSuspectSeq) -
                static_cast<long long>(first_attack_seq)
            : -1;

        std::printf("%9u | %-18s | %-18s | %lld\n", dilution,
                    online.alarmed() ? "ALARM" : "missed",
                    report.finding.detected ? "ALARM (exact)"
                                            : "missed",
                    window_error);
    }

    std::printf("\nShape check: the windowed in-device detector "
                "stops firing once the\nattack dilutes itself past "
                "its window ratio; the offloaded analyzer\ncatches "
                "every stealth level and pinpoints the first "
                "malicious write\n(window error 0), because the "
                "hash-chained log preserves the complete\nhistory "
                "for it. Data is recoverable in all rows either "
                "way.\n");
    return 0;
}
