/**
 * @file
 * Ablation A2 (docs/ARCHITECTURE.md, experiment A2): GC pressure under retention holds.
 * Sweeps over-provisioning and flood intensity, comparing how the
 * undefended SSD and RSSD absorb a GC attack: the baseline sacrifices
 * stale data, RSSD converts the pressure into offload backpressure.
 */

#include <cstdio>

#include "attack/ransomware.hh"
#include "bench/bench_common.hh"
#include "core/rssd_device.hh"
#include "nvme/local_ssd.hh"

using namespace rssd;

int
main()
{
    bench::banner("A2: GC pressure vs over-provisioning",
                  "GC attack at increasing flood intensity; RSSD "
                  "backpressure stalls vs data-loss-free operation.");

    std::printf("\n%6s %7s | %9s %10s | %11s %11s %11s\n", "OP %",
                "flood x", "base WAF", "rssd WAF", "stalls",
                "held moves", "victim loss");
    std::printf("---------------+----------------------+------------"
                "--------------------------\n");

    // Cold data fills most of the logical space so GC has real work.
    const auto populateCold = [](nvme::BlockDevice &dev) {
        const flash::Lpa cold_start = 256;
        const flash::Lpa cold_end =
            static_cast<flash::Lpa>(dev.capacityPages() * 0.82);
        for (flash::Lpa lpa = cold_start; lpa < cold_end; lpa++)
            dev.writePage(lpa, {});
    };

    for (const double op : bench::sweep({0.07, 0.14, 0.28})) {
        for (const double flood : bench::sweep({1.0, 2.0, 4.0})) {
            // Baseline.
            ftl::FtlConfig base_cfg;
            base_cfg.geometry = flash::testGeometry();
            base_cfg.opFraction = op;
            VirtualClock c1;
            nvme::LocalSsd base(base_cfg, c1);
            attack::VictimDataset v1(0, 96);
            v1.populate(base);
            populateCold(base);
            attack::GcAttack::Params params;
            params.floodCapacityMultiple = flood;
            params.floodSpanFraction = 0.5;
            attack::GcAttack a1(params);
            a1.run(base, c1, v1);

            // RSSD.
            core::RssdConfig rssd_cfg = core::RssdConfig::forTests();
            rssd_cfg.ftl.opFraction = op;
            rssd_cfg.segmentPages = 64;
            rssd_cfg.pumpThreshold = 128;
            VirtualClock c2;
            core::RssdDevice rssd(rssd_cfg, c2);
            attack::VictimDataset v2(0, 96);
            v2.populate(rssd);
            populateCold(rssd);
            attack::GcAttack a2(params);
            a2.run(rssd, c2, v2);

            // "victim loss": fraction of victim plaintext versions
            // that no longer exist anywhere on the baseline (RSSD is
            // always 0 by construction — verified in tests).
            const auto &nand = base.ftl().nand();
            const auto &geom = base_cfg.geometry;
            int survivors = 0;
            for (std::uint32_t i = 0; i < v1.pages(); i++) {
                for (flash::Ppa p = 0; p < geom.totalPages(); p++) {
                    if (nand.state(p) ==
                            flash::PageState::Programmed &&
                        nand.content(p) == v1.plaintextOf(i)) {
                        survivors++;
                        break;
                    }
                }
            }
            const double base_loss =
                1.0 - static_cast<double>(survivors) / v1.pages();

            std::printf("%5.0f%% %7.1f | %9.3f %10.3f | %11llu "
                        "%11llu | base %.0f%%, rssd 0%%\n",
                        op * 100, flood, base.ftl().stats().waf(),
                        rssd.ftl().stats().waf(),
                        static_cast<unsigned long long>(
                            rssd.stats().backpressureStalls),
                        static_cast<unsigned long long>(
                            rssd.ftl().stats().gcHeldMoves),
                        base_loss * 100);
        }
    }

    std::printf("\nShape check: more OP postpones (but never "
                "prevents) the baseline's\nstale-data loss; RSSD "
                "never loses retained data at any OP level — the\n"
                "cost appears as backpressure stalls and held-page "
                "GC moves instead.\n");
    return 0;
}
