/**
 * @file
 * Characterizes the hardware-isolated NVMe-oE offload path of
 * Figure 1 (docs/ARCHITECTURE.md, experiment X1): sustained offload throughput as a
 * function of link bandwidth and content compressibility, plus the
 * wire-level accounting (frames, retransmissions, compression).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "compress/datagen.hh"
#include "core/rssd_device.hh"

using namespace rssd;

namespace {

struct Result
{
    double offloadMiBps;  ///< raw retained bytes per simulated second
    double wireMiBps;     ///< bytes actually on the wire
    double compression;
};

Result
run(double gbps, double compressibility)
{
    core::RssdConfig cfg = core::RssdConfig::forTests();
    cfg.ftl.geometry.blocksPerPlane = 64;
    cfg.link.gbps = gbps;
    cfg.segmentPages = 256;
    cfg.pumpThreshold = 1u << 30; // build a backlog, drain manually

    VirtualClock clock;
    core::RssdDevice dev(cfg, clock);
    compress::DataGenerator gen(9, compressibility);

    // Accumulate a retention backlog, then time the drain: that
    // isolates the offload path (flash reads -> sealing -> wire ->
    // ack) from the host write stream that produced the data.
    const int kOps = static_cast<int>(bench::smokeScale(6000));
    for (int i = 0; i < kOps; i++)
        dev.writePage(i % 64, gen.page(dev.pageSize()));

    const Tick t0 = clock.now();
    dev.drainOffload();
    const Tick end = dev.offload().lastAckAt();
    const double secs =
        units::toSeconds(end > t0 ? end - t0 : 1);

    const auto &off = dev.offload().stats();
    Result r;
    r.offloadMiBps = units::toMiB(off.bytesRaw) / secs;
    r.wireMiBps = units::toMiB(off.bytesSealed) / secs;
    r.compression = off.compressionRatio();
    return r;
}

} // namespace

int
main()
{
    bench::banner("X1: NVMe-oE offload path characterization",
                  "Offload throughput vs link bandwidth x content "
                  "compressibility.");

    std::printf("\n%8s | %14s | %12s | %12s | %9s\n", "link",
                "content", "offload", "on wire", "compress");
    std::printf("%8s | %14s | %12s | %12s | %9s\n", "(Gb/s)", "",
                "(MiB/s)", "(MiB/s)", "ratio");
    std::printf("---------+----------------+--------------+---------"
                "-----+----------\n");

    for (const double gbps : bench::sweep({1.0, 10.0, 25.0, 40.0})) {
        for (const double compressibility :
             bench::sweep({0.0, 0.55, 0.9})) {
            const Result r = run(gbps, compressibility);
            const char *label = compressibility == 0.0
                ? "incompressible"
                : (compressibility < 0.6 ? "typical" : "redundant");
            std::printf("%8.0f | %14s | %12.1f | %12.1f | %9.2f\n",
                        gbps, label, r.offloadMiBps, r.wireMiBps,
                        r.compression);
            bench::JsonReport::instance().record(
                "offload_path",
                {{"link_gbps", std::to_string(gbps)},
                 {"content", label}},
                {{"offload_MiBps", r.offloadMiBps},
                 {"wire_MiBps", r.wireMiBps},
                 {"compression_ratio", r.compression}});
        }
    }

    std::printf("\nShape check: with compressible content the "
                "effective offload rate\nexceeds the raw link rate "
                "(compression happens before the wire); the\n1 Gb/s "
                "point is link-bound, 25/40 Gb/s points are bound by "
                "the flash\nread + sealing pipeline.\n");
    return 0;
}
