/**
 * @file
 * Anti-entropy convergence sweep: how fast the fleet returns to full
 * replication health after a mid-outbreak shard crash, as the
 * scrubber's per-tick throughput grows.
 *
 * Convergence (repair-converged tick minus fleet makespan) is gated
 * by the final full integrity pass: drain requires one clean scrub
 * from scratch, so it scales inversely with scrubSegmentsPerStep.
 * The step=off row is the copy-bound floor — the repair queue alone,
 * no scrubbing. Bytes copied stay constant across the sweep: scrub
 * throughput shapes *when* the engine settles, never *what* is
 * re-replicated.
 *
 *   build/bench/bench_repair_convergence
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "fleet/scheduler.hh"

using namespace rssd;

int
main()
{
    bench::banner(
        "Repair convergence vs scrub throughput",
        "16 devices -> 4 shards (R=3), outbreak, one shard crashes "
        "mid-campaign; the RepairEngine re-replicates under its "
        "bandwidth budget while the scrubber integrity-checks every "
        "stored copy before the fleet may settle.");

    // 0 = scrub disabled: the copy-bound floor.
    const std::vector<std::uint32_t> steps = bench::smoke()
        ? std::vector<std::uint32_t>{0, 4}
        : std::vector<std::uint32_t>{0, 1, 2, 4, 8, 16};
    const std::uint64_t ops = bench::smokeScale(400);

    std::printf("%10s %10s %12s %12s %12s %10s\n", "scrub/step",
                "enqueued", "copied MiB", "scrubbed", "converge ms",
                "degraded");

    for (const std::uint32_t step : steps) {
        fleet::FleetConfig cfg;
        cfg.devices = 16;
        cfg.shards = 4;
        cfg.replication = 3;
        cfg.seed = 7;
        cfg.opsPerDevice = ops;
        cfg.campaign.scenario = fleet::Scenario::Outbreak;
        cfg.campaign.victimPages = 16;
        cfg.membership.push_back(
            {100 * units::MS, fleet::MembershipKind::CrashShard, 1});
        cfg.repair.enabled = true;
        cfg.repair.scrubInterval =
            step == 0 ? 0 : 10 * units::MS;
        cfg.repair.scrubSegmentsPerStep = step == 0 ? 4 : step;

        fleet::FleetScheduler sched(cfg);
        const fleet::FleetReport rep = sched.run();
        const remote::RepairStats &rs = rep.repairStats;
        const Tick converge = rep.repairConvergedAt > rep.makespan
                                  ? rep.repairConvergedAt -
                                        rep.makespan
                                  : 0;

        char label[16];
        std::snprintf(label, sizeof(label), "%s",
                      step == 0 ? "off"
                                : std::to_string(step).c_str());
        std::printf("%10s %10llu %12.2f %12llu %12.2f %10llu\n",
                    label,
                    static_cast<unsigned long long>(rs.enqueues),
                    units::toMiB(rs.bytesCopied),
                    static_cast<unsigned long long>(
                        rs.scrubbedSegments),
                    static_cast<double>(converge) / units::MS,
                    static_cast<unsigned long long>(
                        rep.degradedAtEnd));

        bench::JsonReport::instance().record(
            "repair_convergence",
            {{"scrub_segments_per_step", label},
             {"ops_per_device", std::to_string(ops)}},
            {{"enqueues", static_cast<double>(rs.enqueues)},
             {"segments_copied",
              static_cast<double>(rs.segmentsCopied)},
             {"copied_MiB", units::toMiB(rs.bytesCopied)},
             {"scrubbed_segments",
              static_cast<double>(rs.scrubbedSegments)},
             {"converge_ms",
              static_cast<double>(converge) / units::MS},
             {"degraded_at_end",
              static_cast<double>(rep.degradedAtEnd)}});

        if (rep.degradedAtEnd != 0 || !rep.allChainsOk) {
            std::printf("FAIL: run did not converge healthy\n");
            return 1;
        }
    }

    std::printf("\nConvergence time falls roughly inversely with "
                "scrub throughput toward the copy-bound floor "
                "(step=off); copied bytes stay constant across the "
                "sweep.\n");
    return 0;
}
