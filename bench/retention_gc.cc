/**
 * @file
 * Retention-GC steady state: sustained ingest throughput of a
 * capacity-bounded BackupStore whose retention GC is keeping it at
 * the watermarks — the Figure 2 lifecycle under load.
 *
 * The store is filled past its high watermark, then a timed phase
 * keeps ingesting at steady-state capacity: every arrival is
 * expected to be accepted (GC frees space continuously; a reject in
 * steady state is a bench failure), and each accepted wire byte has
 * to displace a pruned one. The metric is wall-clock MB/s of
 * accepted wire bytes, with the GC work (HMAC verify, prune-record
 * re-signing, tombstone open for entry accounting) on the measured
 * path. Results go to RSSD_BENCH_JSON with the standard meta stamps.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"
#include "remote/backup_store.hh"
#include "tests/common/segment_chain.hh"

using namespace rssd;

int
main()
{
    bench::banner("Retention GC: steady-state ingest",
                  "Ingest into a capacity-bounded store whose "
                  "retention GC holds occupancy at the watermarks.");

    std::printf("\n%9s | %8s | %9s | %10s | %9s | %9s\n", "capacity",
                "streams", "segments", "ingest MB/s", "prunes",
                "occupancy");
    std::printf("----------+----------+-----------+------------+------"
                "-----+----------\n");

    for (const std::uint64_t cap_mib : bench::sweep<std::uint64_t>(
             {8, 16, 32})) {
        constexpr std::uint32_t kStreams = 4;
        constexpr std::size_t kPageBytes = 56 * 1024;

        remote::BackupStoreConfig cfg;
        cfg.capacityBytes = cap_mib * units::MiB;
        cfg.processingTime = 0;
        cfg.retention.gcEnabled = true;
        remote::BackupStore store(cfg);

        std::vector<test::SegmentChain> chains;
        chains.reserve(kStreams);
        for (std::uint32_t s = 0; s < kStreams; s++) {
            chains.emplace_back("retention-bench-" +
                                    std::to_string(s),
                                1000 + s);
            store.registerStream(s, chains.back().codec());
        }

        // Fill to steady state: ingest until the first prune.
        Tick now = 0;
        Tick ack = 0;
        std::uint64_t filled = 0;
        while (store.stats().segmentsPruned == 0) {
            const std::uint32_t s = filled % kStreams;
            panicIf(!store.ingestSegment(
                        s, chains[s].next(8, kPageBytes), now, ack),
                    "retention_gc: reject during fill");
            now += units::MS;
            filled++;
        }

        // Timed steady-state phase.
        const std::uint64_t kSegments = bench::smokeScale(512, 16);
        std::uint64_t wire_bytes = 0;
        const std::uint64_t prunes_before =
            store.stats().segmentsPruned;
        const auto t0 = std::chrono::steady_clock::now(); // rssd-lint: allow(D1) wall-clock measures bench throughput, never sim state
        for (std::uint64_t i = 0; i < kSegments; i++) {
            const std::uint32_t s =
                static_cast<std::uint32_t>(i % kStreams);
            const log::SealedSegment seg =
                chains[s].next(8, kPageBytes);
            const std::uint64_t wire = seg.wireSize();
            panicIf(!store.ingestSegment(s, seg, now, ack),
                    "retention_gc: reject in steady state");
            wire_bytes += wire;
            now += units::MS;
        }
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0) // rssd-lint: allow(D1) wall-clock measures bench throughput, never sim state
                .count();
        const double mbps =
            secs > 0 ? wire_bytes / secs / (1024.0 * 1024.0) : 0.0;
        const std::uint64_t prunes =
            store.stats().segmentsPruned - prunes_before;
        const double occupancy =
            static_cast<double>(store.usedBytes()) /
            static_cast<double>(store.capacityBytes());

        panicIf(!store.verifyFullChain(),
                "retention_gc: pruned chains failed verification");
        panicIf(store.stats().segmentsRejected != 0,
                "retention_gc: capacity wall in steady state");

        std::printf("%9s | %8u | %9llu | %10.1f | %9llu | %8.2f%%\n",
                    formatBytes(cfg.capacityBytes).c_str(), kStreams,
                    static_cast<unsigned long long>(kSegments), mbps,
                    static_cast<unsigned long long>(prunes),
                    occupancy * 100.0);

        bench::JsonReport::instance().record(
            "retention_gc",
            {{"capacity_mib", std::to_string(cap_mib)},
             {"streams", std::to_string(kStreams)},
             {"segment_page_bytes", std::to_string(kPageBytes)}},
            {{"steady_ingest_MiBps", mbps},
             {"segments", static_cast<double>(kSegments)},
             {"prunes", static_cast<double>(prunes)},
             {"occupancy", occupancy}});
    }
    return 0;
}
