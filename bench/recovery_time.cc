/**
 * @file
 * Reproduces the paper's recovery claim: "performs fast data
 * recovery after attacks" (docs/ARCHITECTURE.md, experiment P3).
 *
 * Sweeps the volume of data encrypted by a classic attack and
 * measures the full recovery pipeline on simulated time: fetch the
 * history from the remote store over NVMe-oE, replay the log, and
 * rewrite every victim page. Reported time is simulated wall-clock
 * of the device+network, not host CPU time.
 */

#include <cstdio>

#include "attack/ransomware.hh"
#include "bench/bench_common.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

using namespace rssd;

int
main()
{
    bench::banner("P3: data recovery time vs. encrypted volume",
                  "Classic attack on N victim pages, then full "
                  "pipeline recovery (fetch + replay + rewrite).");

    std::printf("\n%10s | %12s | %10s | %12s | %10s\n", "victim",
                "encrypted", "recovery", "fetched", "restored");
    std::printf("%10s | %12s | %10s | %12s | %10s\n", "(pages)",
                "(MiB)", "time", "(MiB)", "(pages)");
    std::printf("-----------+--------------+------------+-----------"
                "---+-----------\n");

    for (const std::uint32_t victim_pages :
         bench::sweep({128u, 256u, 512u, 1024u, 2048u})) {
        core::RssdConfig cfg = core::RssdConfig::forTests();
        // Size the device to hold the victim set comfortably.
        cfg.ftl.geometry.blocksPerPlane =
            std::max<std::uint32_t>(16, victim_pages / 32);
        cfg.segmentPages = 128;
        cfg.pumpThreshold = 256;

        VirtualClock clock;
        core::RssdDevice dev(cfg, clock);

        attack::VictimDataset victim(0, victim_pages);
        victim.populate(dev);
        const Tick attack_start = clock.now();

        attack::ClassicRansomware attack;
        attack.run(dev, clock, victim);
        dev.drainOffload();

        const Tick t0 = clock.now();
        core::DeviceHistory history(dev);
        core::RecoveryEngine engine(history);
        const core::RecoveryReport report =
            engine.recoverToTime(attack_start);
        const Tick elapsed = clock.now() - t0;

        panicIf(!report.ok(), "recovery failed");
        panicIf(victim.intactFraction(dev) != 1.0,
                "recovery incomplete");

        std::printf("%10u | %12.1f | %10s | %12.1f | %10llu\n",
                    victim_pages,
                    units::toMiB(std::uint64_t(victim_pages) * 4096),
                    formatTime(elapsed).c_str(),
                    units::toMiB(report.bytesFetched),
                    static_cast<unsigned long long>(
                        report.pagesRestored));
    }

    std::printf("\nShape check: recovery time grows linearly with "
                "the encrypted volume\nand is dominated by flash "
                "rewrites plus the NVMe-oE fetch — seconds for\n"
                "gigabyte-scale damage, as the paper reports.\n");
    return 0;
}
