/**
 * @file
 * Reproduces Figure 2 of the paper: data retention time (days) for
 * the 11 block-trace workloads under three configurations —
 * LocalSSD (stale data retained only in local spare space),
 * LocalSSD+Compression (local spare space, compressed), and RSSD
 * (retention offloaded to the remote store over NVMe-oE).
 *
 * Method (see docs/ARCHITECTURE.md, experiment F2): for each trace profile we run a
 * scaled simulation through the real FTL to *measure* the stale-data
 * production rate (invalidated+trimmed bytes per host-written byte)
 * and the real LZ compressor to measure the trace's compression
 * ratio. Retention time is then capacity / daily stale production,
 * with the capacity term depending on the configuration:
 *   LocalSSD      : OP spare + free logical space of a 512 GiB SSD
 *   +Compression  : the same spare, divided by the compression ratio
 *   RSSD          : an 8 TiB remote budget (compressed), as the paper
 *                   uses cloud/storage servers.
 * The figure caps at 240 days, like the paper's y-axis.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "compress/datagen.hh"
#include "compress/lz.hh"
#include "nvme/local_ssd.hh"
#include "workload/generator.hh"

using namespace rssd;

namespace {

struct TraceMeasurement
{
    double staleFractionPerWrite; ///< stale bytes per written byte
    double compressionRatio;
};

/**
 * Measure stale-production and compressibility by replaying a scaled
 * version of the trace through a real (small) FTL + the real
 * compressor.
 */
TraceMeasurement
measure(const workload::TraceProfile &profile)
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;

    VirtualClock clock;
    nvme::LocalSsd dev(cfg, clock);
    workload::TraceGenerator gen(profile, dev.capacityPages(), 2026);

    // Warm up: reach steady-state overwrite behaviour.
    workload::ReplayOptions warm;
    warm.maxRequests = bench::smokeScale(20000);
    workload::replay(dev, clock, gen, warm);
    const std::uint64_t writes0 = dev.ftl().stats().hostWrites;
    const std::uint64_t valid0 = dev.ftl().validPageCount();

    workload::ReplayOptions run;
    run.maxRequests = bench::smokeScale(30000);
    workload::replay(dev, clock, gen, run);
    const std::uint64_t writes =
        dev.ftl().stats().hostWrites - writes0;
    // Signed: trims shrink the valid set, so stale production can
    // exceed the write volume.
    const double valid_growth =
        static_cast<double>(dev.ftl().validPageCount()) -
        static_cast<double>(valid0);

    TraceMeasurement m;
    // Every write either grows the valid set (new data) or
    // invalidates an old version (stale production); every trim
    // turns a valid page stale.
    m.staleFractionPerWrite = writes == 0
        ? 0.0
        : (static_cast<double>(writes) - valid_growth) /
            static_cast<double>(writes);

    // Compression ratio of this trace's content mix.
    compress::DataGenerator datagen(7, profile.compressibility);
    std::size_t raw = 0, packed = 0;
    for (int i = 0; i < 64; i++) {
        const auto page = datagen.page(4096);
        raw += page.size();
        packed += compress::lzCompress(page).size();
    }
    m.compressionRatio = compress::compressionRatio(raw, packed);
    return m;
}

double
cap(double days)
{
    return days > 240.0 ? 240.0 : days;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 2: data retention time (days) per workload",
        "LocalSSD vs LocalSSD+Compression vs RSSD. Capped at 240 "
        "days (paper's axis).");

    // Device/remote sizing (paper: commercial SSD + cloud/servers).
    const double device_gib = 512.0;
    const double op_fraction = 0.07;
    const double utilization = 0.85; // fraction of logical space used
    const double remote_gib = 8192.0; // 8 TiB remote budget

    const double local_spare_gib =
        device_gib * op_fraction +
        device_gib * (1.0 - op_fraction) * (1.0 - utilization);

    std::printf("\nDevice %.0f GiB (OP %.0f%%, %.0f%% full) -> local "
                "spare %.1f GiB; remote budget %.0f GiB\n",
                device_gib, op_fraction * 100, utilization * 100,
                local_spare_gib, remote_gib);
    std::printf("\n%-13s | %10s %8s | %9s | %12s | %7s\n", "trace",
                "stale/day", "compress", "LocalSSD",
                "Local+Compr", "RSSD");
    std::printf("%-13s | %10s %8s | %9s | %12s | %7s\n", "",
                "(GiB)", "ratio", "(days)", "(days)", "(days)");
    std::printf("--------------+---------------------+-----------+--"
                "------------+--------\n");

    for (const workload::TraceProfile &profile :
         workload::paperTraces()) {
        const TraceMeasurement m = measure(profile);
        const double stale_gib_day =
            profile.dailyWriteGiB * m.staleFractionPerWrite;

        const double local_days = local_spare_gib / stale_gib_day;
        const double compr_days =
            local_spare_gib * m.compressionRatio / stale_gib_day;
        const double rssd_days =
            remote_gib * m.compressionRatio / stale_gib_day;

        std::printf("%-13s | %10.2f %8.2f | %9.1f | %12.1f | %7.1f\n",
                    profile.name.c_str(), stale_gib_day,
                    m.compressionRatio, cap(local_days),
                    cap(compr_days), cap(rssd_days));
    }

    std::printf("\nShape check vs the paper: LocalSSD retains for "
                "days-to-weeks,\ncompression buys ~2-4x, and RSSD "
                "exceeds 200 days on every trace\n(its bar is the "
                "remote budget, not the local spare space).\n");
    return 0;
}
