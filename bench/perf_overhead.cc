/**
 * @file
 * Reproduces the paper's performance claim: "less than 1% negative
 * impact on storage performance" (docs/ARCHITECTURE.md, experiment P1).
 *
 * Replays each trace profile closed-loop through the undefended
 * LocalSSD and through RSSD on identical geometry, and reports
 * write/read throughput and latency percentiles plus the relative
 * overhead. RSSD's extra work — logging, retention holds, and the
 * offload data path sharing the flash channels — is all present.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "core/rssd_device.hh"
#include "nvme/local_ssd.hh"
#include "workload/generator.hh"

using namespace rssd;

int
main()
{
    bench::banner("P1: local storage performance overhead",
                  "Closed-loop trace replay, LocalSSD vs RSSD "
                  "(same 1 GiB geometry), 20k requests each.");

    std::printf("\n%-13s | %12s %12s %8s | %10s %10s\n", "trace",
                "base MiB/s", "rssd MiB/s", "ovh %", "base p99",
                "rssd p99");
    std::printf("--------------+------------------------------------"
                "+----------------------\n");

    double worst_overhead = 0.0;
    for (const workload::TraceProfile &profile :
         workload::paperTraces()) {
        workload::ReplayOptions opts;
        opts.maxRequests = bench::smokeScale(20000);
        opts.withContent = true;

        VirtualClock c_base;
        nvme::LocalSsd base(bench::benchFtlConfig(), c_base);
        workload::TraceGenerator g1(profile, base.capacityPages(),
                                    1234);
        const workload::ReplayStats s_base =
            workload::replay(base, c_base, g1, opts);

        VirtualClock c_rssd;
        core::RssdDevice rssd(bench::benchRssdConfig(), c_rssd);
        workload::TraceGenerator g2(profile, rssd.capacityPages(),
                                    1234);
        const workload::ReplayStats s_rssd =
            workload::replay(rssd, c_rssd, g2, opts);

        const double base_mibps = s_base.writeMiBps(base.pageSize());
        const double rssd_mibps = s_rssd.writeMiBps(rssd.pageSize());
        const double overhead =
            (base_mibps - rssd_mibps) / base_mibps * 100.0;
        worst_overhead = std::max(worst_overhead, overhead);

        std::printf(
            "%-13s | %12.1f %12.1f %7.2f%% | %10s %10s\n",
            profile.name.c_str(), base_mibps, rssd_mibps, overhead,
            formatTime(s_base.writeLatency.percentileNs(99)).c_str(),
            formatTime(s_rssd.writeLatency.percentileNs(99)).c_str());
    }

    std::printf("\nWorst-case write-throughput overhead across "
                "traces: %.2f%%\n(paper reports <1%% on the OpenSSD "
                "testbed).\n",
                worst_overhead);
    return 0;
}
