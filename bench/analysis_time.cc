/**
 * @file
 * Reproduces the paper's analysis claim: "enables efficient
 * post-attack analysis by building a trusted chain of I/O
 * operations" (docs/ARCHITECTURE.md, experiment P4).
 *
 * Sweeps operation-history length and measures, in simulated time,
 * the full trusted-analysis pipeline: fetch all sealed segments,
 * verify every HMAC and the complete hash chain, run the offline
 * detector, and locate the attack window.
 */

#include <chrono>
#include <cstdio>

#include "attack/ransomware.hh"
#include "bench/bench_common.hh"
#include "core/analyzer.hh"
#include "core/rssd_device.hh"
#include "sim/rng.hh"

using namespace rssd;

int
main()
{
    bench::banner("P4: post-attack analysis time vs. history length",
                  "Verify evidence chain + offline detection over "
                  "histories of growing length.");

    std::printf("\n%10s | %9s | %10s | %12s | %9s | %8s\n", "ops",
                "segments", "sim time", "fetched", "chain ok",
                "host ms");
    std::printf("-----------+-----------+------------+-------------"
                "-+-----------+---------\n");

    for (const std::uint64_t history_ops : bench::sweep(
             {1000ull, 5000ull, 20000ull, 50000ull, 100000ull})) {
        core::RssdConfig cfg = core::RssdConfig::forTests();
        cfg.ftl.geometry.blocksPerPlane = 64;
        cfg.segmentPages = 256;
        cfg.pumpThreshold = 512;

        VirtualClock clock;
        core::RssdDevice dev(cfg, clock);

        // Benign history...
        Rng rng(history_ops);
        const flash::Lpa span = 2000;
        for (std::uint64_t i = 0; i < history_ops; i++) {
            const flash::Lpa lpa = rng.below(span);
            if (rng.chance(0.9))
                dev.writePage(lpa, {});
            else
                dev.trimPage(lpa);
        }
        // ...with a small attack at the end to find.
        attack::VictimDataset victim(2500, 96);
        victim.populate(dev);
        attack::ClassicRansomware attack;
        attack.run(dev, clock, victim);
        dev.drainOffload();

        const auto host_t0 = std::chrono::steady_clock::now(); // rssd-lint: allow(D1) wall-clock measures host-side analysis cost, never sim state
        const Tick t0 = clock.now();
        core::DeviceHistory history(dev);
        core::PostAttackAnalyzer analyzer(history);
        const core::AnalysisReport report = analyzer.analyze();
        const Tick elapsed = clock.now() - t0;
        const double host_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - host_t0) // rssd-lint: allow(D1) wall-clock measures host-side analysis cost, never sim state
                .count();

        panicIf(!report.finding.detected, "attack not found");

        std::printf("%10llu | %9llu | %10s | %12.1f | %9s | %8.1f\n",
                    static_cast<unsigned long long>(
                        report.totalEntries),
                    static_cast<unsigned long long>(
                        report.remoteSegments),
                    formatTime(elapsed).c_str(),
                    units::toMiB(report.bytesFetched),
                    report.chainIntact ? "yes" : "NO", host_ms);
    }

    std::printf("\nShape check: analysis cost is linear in history "
                "length (fetch +\nper-entry verification); "
                "hundred-thousand-op histories analyze in\nsimulated "
                "seconds, matching the paper's 'short time' claim.\n");
    return 0;
}
