/**
 * @file
 * Forensics evidence-scan throughput: MB/s of sealed evidence the
 * cluster-side scanner can chain-verify (HMAC + segment chain +
 * per-entry hash chain) and replay into entry streams.
 *
 * Also reports the incremental property: after a full pass, a
 * re-scan with the verified-prefix cache warm touches zero segments
 * — the O(new) claim the forensics subsystem is built on.
 *
 * Host wall-clock is the metric (the scanner runs on the analysis
 * host, not in simulated time). Results are recorded to
 * RSSD_BENCH_JSON with the standard meta stamps.
 */

#include <chrono>
#include <cstdio>

#include "bench/bench_common.hh"
#include "fleet/scheduler.hh"
#include "forensics/evidence.hh"

using namespace rssd;

int
main()
{
    bench::banner("Forensics scan: chain-verify + replay throughput",
                  "Verify every stream's evidence chain out of the "
                  "cluster shards and replay the entries.");

    std::printf("\n%8s | %9s | %9s | %10s | %10s | %12s\n", "devices",
                "segments", "entries", "evidence", "scan MB/s",
                "rescan segs");
    std::printf("---------+-----------+-----------+------------+-----"
                "-------+-------------\n");

    for (const std::uint32_t devices : bench::sweep({4u, 8u, 16u})) {
        fleet::FleetConfig cfg;
        cfg.devices = devices;
        cfg.shards = 2;
        cfg.seed = 7;
        cfg.opsPerDevice = bench::smokeScale(400);
        cfg.campaign.scenario = fleet::Scenario::Outbreak;
        fleet::FleetScheduler sched(cfg);
        sched.run();

        // Cold passes: fresh scanner each iteration, so every
        // iteration verifies the full evidence set.
        const int kIters = bench::smoke() ? 2 : 10;
        std::uint64_t bytes = 0, segments = 0, entries = 0;
        const auto t0 = std::chrono::steady_clock::now(); // rssd-lint: allow(D1) wall-clock measures bench throughput, never sim state
        for (int i = 0; i < kIters; i++) {
            forensics::EvidenceScanner scanner(sched.cluster());
            const forensics::ScanPassCost cost = scanner.scan();
            bytes += cost.bytesVerified;
            segments = cost.segmentsVerified;
            entries = cost.entriesReplayed;
        }
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0) // rssd-lint: allow(D1) wall-clock measures bench throughput, never sim state
                .count();
        const double mbps =
            secs > 0 ? bytes / secs / (1024.0 * 1024.0) : 0.0;

        // Warm pass: same scanner twice; the second pass must ride
        // the verified-prefix cache and verify nothing.
        forensics::EvidenceScanner warm(sched.cluster());
        warm.scan();
        const forensics::ScanPassCost second = warm.scan();
        panicIf(second.segmentsVerified != 0,
                "incremental re-scan verified segments");

        std::printf("%8u | %9llu | %9llu | %10s | %10.1f | %12llu\n",
                    devices,
                    static_cast<unsigned long long>(segments),
                    static_cast<unsigned long long>(entries),
                    formatBytes(bytes / kIters).c_str(), mbps,
                    static_cast<unsigned long long>(
                        second.segmentsVerified));

        bench::JsonReport::instance().record(
            "forensics_scan",
            {{"devices", std::to_string(devices)},
             {"shards", "2"},
             {"scenario", "outbreak"}},
            {{"scan_MiBps", mbps},
             {"segments", static_cast<double>(segments)},
             {"entries", static_cast<double>(entries)},
             {"rescan_segments",
              static_cast<double>(second.segmentsVerified)}});
    }
    return 0;
}
