/**
 * @file
 * Reproduces the paper's lifetime claim: "minimal impact on device
 * lifetime" (docs/ARCHITECTURE.md, experiment P2).
 *
 * Device lifetime is governed by write amplification (extra program/
 * erase work beyond host writes) and erase-count spread. RSSD's
 * retention holds make GC relocate held pages, which *could* inflate
 * WAF — this bench shows the offload path keeps holds short-lived
 * and WAF close to the baseline.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "core/rssd_device.hh"
#include "nvme/local_ssd.hh"
#include "workload/generator.hh"

using namespace rssd;

int
main()
{
    bench::banner("P2: device lifetime impact (WAF, wear)",
                  "High-churn replay on a small, mostly full device "
                  "(worst case for GC), LocalSSD vs RSSD.");

    // Small device + big working set = heavy GC pressure.
    ftl::FtlConfig ftl_cfg;
    ftl_cfg.geometry = flash::testGeometry();
    ftl_cfg.opFraction = 0.12;

    core::RssdConfig rssd_cfg = core::RssdConfig::forTests();
    rssd_cfg.segmentPages = 64;
    rssd_cfg.pumpThreshold = 128;

    std::printf("\n%-13s | %9s %9s | %10s %10s | %11s\n", "trace",
                "base WAF", "rssd WAF", "base wear", "rssd wear",
                "held moves");
    std::printf("--------------+---------------------+--------------"
                "---------+------------\n");

    for (const workload::TraceProfile &profile :
         workload::paperTraces()) {
        workload::ReplayOptions opts;
        opts.maxRequests = bench::smokeScale(60000);

        VirtualClock c_base;
        nvme::LocalSsd base(ftl_cfg, c_base);
        workload::TraceGenerator g1(profile, base.capacityPages(),
                                    555);
        workload::replay(base, c_base, g1, opts);

        VirtualClock c_rssd;
        core::RssdDevice rssd(rssd_cfg, c_rssd);
        workload::TraceGenerator g2(profile, rssd.capacityPages(),
                                    555);
        workload::replay(rssd, c_rssd, g2, opts);

        std::printf(
            "%-13s | %9.3f %9.3f | %7u max %7u max | %11llu\n",
            profile.name.c_str(), base.ftl().stats().waf(),
            rssd.ftl().stats().waf(),
            base.ftl().nand().maxEraseCount(),
            rssd.ftl().nand().maxEraseCount(),
            static_cast<unsigned long long>(
                rssd.ftl().stats().gcHeldMoves));
    }

    std::printf("\nShape check: RSSD's WAF tracks the baseline "
                "closely because retained\npages are offloaded (and "
                "their holds released) before GC has to keep\n"
                "copying them — the 'held moves' column stays small "
                "relative to churn.\n");
    return 0;
}
