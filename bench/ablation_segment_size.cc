/**
 * @file
 * Ablation A1 (docs/ARCHITECTURE.md, experiment A1): segment size for offload batching.
 * Larger segments amortize capsule/ack overhead and compress better
 * but hold retention (and its flash holds) longer before release.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "compress/datagen.hh"
#include "core/rssd_device.hh"

using namespace rssd;

int
main()
{
    bench::banner("A1: offload segment-size ablation",
                  "Sweep pages per sealed segment; fixed 10 GbE "
                  "link, typical content.");

    std::printf("\n%9s | %9s | %10s | %12s | %13s\n", "seg pages",
                "segments", "compress", "wire ovh %", "mean hold");
    std::printf("----------+-----------+------------+--------------+"
                "--------------\n");

    for (const std::uint32_t seg_pages :
         bench::sweep({16u, 64u, 256u, 1024u, 4096u})) {
        core::RssdConfig cfg = core::RssdConfig::forTests();
        cfg.ftl.geometry.blocksPerPlane = 64;
        cfg.segmentPages = seg_pages;
        cfg.pumpThreshold = seg_pages;

        VirtualClock clock;
        core::RssdDevice dev(cfg, clock);
        compress::DataGenerator gen(5, 0.55);

        // Steady overwrite stream; track how long holds live.
        Summary hold_ages;
        const int kOps =
            static_cast<int>(bench::smokeScale(9000));
        Tick last = 0;
        for (int i = 0; i < kOps; i++) {
            dev.writePage(i % 128, gen.page(dev.pageSize()));
            const Tick age =
                dev.retention().oldestAge(clock.now());
            hold_ages.add(static_cast<double>(age));
            last = clock.now();
        }
        (void)last;
        dev.drainOffload();

        const auto &off = dev.offload().stats();
        const auto &net = dev.transport().stats();
        const double wire_overhead =
            (static_cast<double>(net.bytesSent) -
             static_cast<double>(off.bytesSealed)) /
            static_cast<double>(off.bytesSealed) * 100.0;

        std::printf("%9u | %9llu | %10.2f | %12.2f | %13s\n",
                    seg_pages,
                    static_cast<unsigned long long>(
                        off.segmentsAccepted),
                    off.compressionRatio(), wire_overhead,
                    formatTime(static_cast<Tick>(hold_ages.mean()))
                        .c_str());
    }

    std::printf("\nShape check: capsule/header overhead falls with "
                "segment size while\nthe mean retention-hold age "
                "rises — the paper's choice of a few hundred\npages "
                "per segment sits at the knee.\n");
    return 0;
}
