/**
 * @file
 * Reproduces Table 1 of the paper: every defense vs. the three
 * Ransomware 2.0 attacks (plus the classic baseline attack), with
 * measured recovery fractions, the paper's recovery glyph, and
 * forensics availability. See docs/ARCHITECTURE.md, experiment T1.
 */

#include <cstdio>

#include "baseline/table1.hh"
#include "bench/bench_common.hh"

using namespace rssd;
using namespace rssd::baseline;

namespace {

const char *
glyph(RecoveryClass c)
{
    switch (c) {
      case RecoveryClass::Unrecoverable: return "O";   // empty circle
      case RecoveryClass::PartiallyRecoverable: return "D"; // half
      case RecoveryClass::Recoverable: return "@";     // full circle
    }
    return "?";
}

const char *
mark(bool defended)
{
    return defended ? "Y" : "x";
}

} // namespace

int
main()
{
    bench::banner(
        "Table 1: comparison with state-of-the-art approaches",
        "Defend columns: Y = attack fully defeated (>=99% of victim\n"
        "data intact after recovery), x = not. Recovery: @ = "
        "recoverable,\nD = partially recoverable, O = unrecoverable "
        "(mean over attacks).");

    Table1Params params;
    params.victimPages = 96;
    params.timingBenignOps = 24;

    std::printf("\n%-14s | %-7s %-7s %-7s | %-8s | %-9s |"
                " recovered fraction per attack\n",
                "Defense", "GC", "Timing", "Trim", "Recovery",
                "Forensics");
    std::printf("%-14s | %-7s %-7s %-7s | %-8s | %-9s |"
                " classic / gc / timing / trim\n",
                "", "", "", "", "", "");
    std::printf("---------------+-------------------------+--------"
                "--+-----------+------------------------------\n");

    for (const Table1Row &row : runTable1(params)) {
        std::printf(
            "%-14s | %-7s %-7s %-7s | %-8s | %-9s | %.2f / %.2f / "
            "%.2f / %.2f\n",
            row.defense.c_str(),
            mark(row.cell(AttackKind::Gc).defended),
            mark(row.cell(AttackKind::Timing).defended),
            mark(row.cell(AttackKind::Trimming).defended),
            glyph(row.recovery), row.forensics ? "yes" : "no",
            row.cell(AttackKind::Classic).recovered,
            row.cell(AttackKind::Gc).recovered,
            row.cell(AttackKind::Timing).recovered,
            row.cell(AttackKind::Trimming).recovered);
    }

    std::printf(
        "\nPaper's Table 1 (for comparison): RSSD is the only row "
        "with Y Y Y,\nfull recovery and forensics; FlashGuard/TimeSSD "
        "defend GC only;\nCloudBackup defends timing only; software "
        "defenses defend nothing.\nSee docs/ARCHITECTURE.md for the two "
        "cells where our harsher parameters\ndiffer from the paper's "
        "qualitative judgment (TimeSSD GC).\n");
    return 0;
}
