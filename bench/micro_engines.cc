/**
 * @file
 * Micro-benchmarks (google-benchmark) of the device-side engines the
 * RSSD controller depends on: SHA-256 (hash chain), HMAC, ChaCha20
 * (segment encryption), CRC32C (capsule checksums), LZ compression
 * (offload path) and entropy estimation (detection).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "compress/datagen.hh"
#include "compress/lz.hh"
#include "crypto/chacha20.hh"
#include "crypto/crc32.hh"
#include "crypto/entropy.hh"
#include "crypto/sha256.hh"
#include "sim/rng.hh"

namespace {

using namespace rssd;

std::vector<std::uint8_t>
randomBuffer(std::size_t size)
{
    Rng rng(size);
    std::vector<std::uint8_t> buf(size);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    return buf;
}

void
BM_Sha256(benchmark::State &state)
{
    const auto buf = randomBuffer(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::Sha256::hash(buf.data(), buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void
BM_HmacSha256(benchmark::State &state)
{
    const auto buf = randomBuffer(state.range(0));
    const std::uint8_t key[32] = {1, 2, 3};
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmacSha256(
            key, sizeof(key), buf.data(), buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_HmacSha256)->Arg(65536);

void
BM_ChaCha20(benchmark::State &state)
{
    auto buf = randomBuffer(state.range(0));
    const auto key = crypto::ChaCha20::deriveKey("bench");
    std::uint64_t nonce = 0;
    for (auto _ : state) {
        crypto::ChaCha20 c(
            key, crypto::ChaCha20::nonceFromSequence(nonce++));
        c.apply(buf);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_ChaCha20)->Arg(4096)->Arg(1 << 20);

void
BM_Crc32c(benchmark::State &state)
{
    const auto buf = randomBuffer(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(crypto::crc32c(buf));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_Crc32c)->Arg(65536);

void
BM_LzCompress(benchmark::State &state)
{
    compress::DataGenerator gen(1, state.range(1) / 100.0);
    const auto buf = gen.page(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(compress::lzCompress(buf));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_LzCompress)
    ->Args({65536, 0})
    ->Args({65536, 55})
    ->Args({65536, 90});

void
BM_LzDecompress(benchmark::State &state)
{
    compress::DataGenerator gen(1, 0.55);
    const auto buf = gen.page(65536);
    const auto packed = compress::lzCompress(buf);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compress::lzDecompress(packed, buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_LzDecompress);

void
BM_Entropy(benchmark::State &state)
{
    const auto buf = randomBuffer(4096);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::shannonEntropy(buf.data(), buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_Entropy);

} // namespace

// BENCHMARK_MAIN(), plus a near-zero min-time in smoke runs so the
// ctest smoke entry finishes in seconds.
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    char min_time[] = "--benchmark_min_time=0.01";
    if (rssd::bench::smoke())
        args.push_back(min_time);
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
