/**
 * @file
 * Micro-benchmarks (google-benchmark) of the device-side engines the
 * RSSD controller depends on: SHA-256 (hash chain), HMAC, ChaCha20
 * (segment encryption), CRC32C (capsule checksums), LZ compression
 * (offload path) and entropy estimation (detection).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "compress/datagen.hh"
#include "compress/lz.hh"
#include "crypto/chacha20.hh"
#include "crypto/crc32.hh"
#include "crypto/entropy.hh"
#include "crypto/sha256.hh"
#include "log/segment.hh"
#include "sim/rng.hh"

namespace {

using namespace rssd;

std::vector<std::uint8_t>
randomBuffer(std::size_t size)
{
    Rng rng(size);
    std::vector<std::uint8_t> buf(size);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    return buf;
}

void
BM_Sha256(benchmark::State &state)
{
    const auto buf = randomBuffer(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::Sha256::hash(buf.data(), buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void
BM_HmacSha256(benchmark::State &state)
{
    const auto buf = randomBuffer(state.range(0));
    const std::uint8_t key[32] = {1, 2, 3};
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmacSha256(
            key, sizeof(key), buf.data(), buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_HmacSha256)->Arg(65536);

void
BM_ChaCha20(benchmark::State &state)
{
    auto buf = randomBuffer(state.range(0));
    const auto key = crypto::ChaCha20::deriveKey("bench");
    std::uint64_t nonce = 0;
    for (auto _ : state) {
        crypto::ChaCha20 c(
            key, crypto::ChaCha20::nonceFromSequence(nonce++));
        c.apply(buf);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_ChaCha20)->Arg(4096)->Arg(1 << 20);

void
BM_Crc32c(benchmark::State &state)
{
    const auto buf = randomBuffer(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(crypto::crc32c(buf));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
    state.SetLabel(crypto::crc32cImplName());
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void
BM_LzCompress(benchmark::State &state)
{
    compress::DataGenerator gen(1, state.range(1) / 100.0);
    const auto buf = gen.page(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(compress::lzCompress(buf));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_LzCompress)
    ->Args({65536, 0})
    ->Args({65536, 55})
    ->Args({65536, 90});

void
BM_LzDecompress(benchmark::State &state)
{
    compress::DataGenerator gen(1, 0.55);
    const auto buf = gen.page(65536);
    const auto packed = compress::lzCompress(buf);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compress::lzDecompress(packed, buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_LzDecompress);

void
BM_Entropy(benchmark::State &state)
{
    // arg1: fraction (percent) of zero bytes — run-heavy content is
    // what the interleaved count sub-tables are for.
    const std::size_t size = state.range(0);
    const double zeros = state.range(1) / 100.0;
    Rng rng(size);
    std::vector<std::uint8_t> buf(size);
    for (auto &b : buf) {
        b = rng.uniform() < zeros
            ? 0
            : static_cast<std::uint8_t>(rng.next());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::shannonEntropy(buf.data(), buf.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * buf.size());
}
BENCHMARK(BM_Entropy)->Args({4096, 0})->Args({65536, 0})->Args({65536, 90});

/** A segment shaped like the offload engine's: log tail + pages. */
log::Segment
benchSegment(std::size_t n_entries, std::size_t n_pages)
{
    log::Segment seg;
    seg.id = 3;
    seg.prevId = 2;
    log::OperationLog lg;
    seg.chainAnchor = lg.anchorDigest();
    for (std::size_t i = 0; i < n_entries; i++) {
        lg.append(i % 4 ? log::OpKind::Write : log::OpKind::Trim, i * 3,
                  i, i ? i - 1 : log::kNoDataSeq, i * 1000,
                  static_cast<float>(i % 8));
    }
    seg.entries.assign(lg.entries().begin(), lg.entries().end());
    seg.chainTail = seg.entries.empty() ? seg.chainAnchor
                                        : seg.entries.back().chain;
    compress::DataGenerator gen(9, 0.55);
    for (std::size_t i = 0; i < n_pages; i++) {
        log::PageRecord p;
        p.lpa = i;
        p.dataSeq = 1000 + i;
        p.writtenAt = i;
        p.invalidatedAt = i + 5;
        p.cause = log::RetainCause::Overwrite;
        p.content = gen.page(4096);
        seg.pages.push_back(std::move(p));
    }
    return seg;
}

void
BM_SegmentSerialize(benchmark::State &state)
{
    // arg0/arg1: entries/pages. The entry-heavy shape exercises the
    // fixed-field writers; the page-heavy shape the bulk content copy.
    const log::Segment seg = benchSegment(state.range(0),
                                          state.range(1));
    const std::size_t bytes = seg.serializedSize();
    for (auto _ : state)
        benchmark::DoNotOptimize(seg.serialize());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_SegmentSerialize)->Args({8192, 0})->Args({256, 64});

void
BM_SegmentSeal(benchmark::State &state)
{
    const log::SegmentCodec codec = log::SegmentCodec::fromSeed("bench");
    const log::Segment seg = benchSegment(256, 64);
    const std::size_t bytes = seg.serializedSize();
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.seal(seg));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_SegmentSeal);

/**
 * Console reporter that tees every run into the RSSD_BENCH_JSON
 * JSON-Lines file (no-op when the variable is unset), so bench runs
 * in CI leave a machine-readable artifact.
 */
class JsonTeeReporter : public benchmark::ConsoleReporter
{
  public:
    /** Library-version shim: Run::error_occurred (<= 1.7) became
     *  Run::skipped in Google Benchmark 1.8. */
    template <typename R>
    static bool
    runSkipped(const R &run)
    {
        if constexpr (requires { run.error_occurred; })
            return run.error_occurred;
        else
            return static_cast<int>(run.skipped) != 0;
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (runSkipped(run))
                continue;
            std::vector<std::pair<std::string, double>> metrics = {
                {"real_time_ns", run.GetAdjustedRealTime()},
                {"iterations", static_cast<double>(run.iterations)},
            };
            const auto it = run.counters.find("bytes_per_second");
            if (it != run.counters.end())
                metrics.emplace_back("bytes_per_second",
                                     static_cast<double>(it->second));
            bench::JsonReport::instance().record(
                run.benchmark_name(), {{"bench_binary", "micro_engines"}},
                metrics);
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

} // namespace

// BENCHMARK_MAIN(), plus a near-zero min-time in smoke runs so the
// ctest smoke entry finishes in seconds.
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    char min_time[] = "--benchmark_min_time=0.01";
    if (rssd::bench::smoke())
        args.push_back(min_time);
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    JsonTeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
