/**
 * @file
 * Fleet-level anti-entropy tests — ISSUE 7's acceptance scenario: a
 * shard crash mid-outbreak plus injected silent bit-rot, with the
 * RepairEngine riding the DES spine. The campaign must end with zero
 * degraded replica sets and zero quarantined copies, the injected rot
 * must be caught by a scrub and healed with no evidence loss per
 * forensics, and the whole run must be deterministic (same seed =>
 * byte-identical report, pinned by a golden digest).
 */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"
#include "fleet/scheduler.hh"

namespace rssd::fleet {
namespace {

std::string
jsonDigest(const FleetReport &report)
{
    const std::string json = report.toJson();
    return crypto::toHex(
        crypto::Sha256::hash(json.data(), json.size()));
}

/** The acceptance campaign: crash mid-outbreak + bit-rot, repair on. */
FleetConfig
healingFleet()
{
    FleetConfig cfg;
    cfg.devices = 16;
    cfg.shards = 4;
    cfg.replication = 3;
    cfg.seed = 7;
    cfg.opsPerDevice = 40;
    cfg.campaign.scenario = Scenario::Outbreak;
    cfg.campaign.victimPages = 16;
    // Mid-outbreak, after offload traffic is flowing: crash while
    // streams hold data (so repair must actually move bytes), then
    // rot a stored copy while the scrubber is mid-campaign.
    cfg.membership.push_back(
        {100 * units::MS, MembershipKind::CrashShard, 1});
    cfg.bitRot.push_back({110 * units::MS, 2, 1, 2});
    cfg.repair.enabled = true;
    cfg.repair.scrubInterval = 10 * units::MS;
    return cfg;
}

TEST(FleetRepair, CrashMidOutbreakHealsToFullStrength)
{
    FleetScheduler sched(healingFleet());
    const FleetReport rep = sched.run();

    // The crash degraded real data and repair paid the debt: every
    // replica set is back at full strength, nothing is quarantined,
    // and the engine converged after the drain.
    EXPECT_TRUE(rep.repairEnabled);
    EXPECT_GT(rep.repairStats.enqueues, 0u);
    EXPECT_GT(rep.repairStats.streamsRepaired, 0u);
    EXPECT_GT(rep.repairStats.segmentsCopied, 0u);
    EXPECT_EQ(rep.degradedAtEnd, 0u);
    EXPECT_EQ(rep.quarantinedAtEnd, 0u);
    EXPECT_GT(rep.repairConvergedAt, rep.makespan);
    EXPECT_TRUE(rep.allChainsOk);

    // The injected bit-rot was caught by a scrub (tail votes agreed,
    // only payload verification could see it) and healed.
    EXPECT_EQ(rep.repairStats.scrubCorruptions, 1u);
    EXPECT_GE(rep.repairStats.quarantines, 1u);
    EXPECT_GT(rep.repairStats.scrubPasses, 0u);

    // Observability: every device reports a full live set and no
    // quarantined copies at the end.
    for (const DeviceReport &d : rep.deviceReports) {
        EXPECT_EQ(d.replicasLive, 3u) << "device " << d.device;
        EXPECT_EQ(d.quarantinedCopies, 0u) << "device " << d.device;
    }

    // No evidence loss: forensics on the healed cluster reconstructs
    // the campaign and every victim restores 100% intact.
    const forensics::ForensicsReport fr = sched.runForensics();
    EXPECT_TRUE(fr.patientZeroMatch);
    EXPECT_TRUE(fr.infectionOrderMatch);
    EXPECT_TRUE(fr.campaignClassMatch);
    ASSERT_GT(fr.recovery.size(), 0u);
    for (const forensics::RecoveryOutcome &o : fr.recovery) {
        EXPECT_DOUBLE_EQ(o.victimIntactAfter, 1.0)
            << "device " << o.device;
        EXPECT_EQ(o.unresolved, 0u) << "device " << o.device;
        EXPECT_NE(o.restoredFromShard, remote::kNoShard);
    }
    // The replica-aware recovery plan is present and no worse than
    // the per-primary greedy plan.
    ASSERT_EQ(fr.plans.size(), 3u);
    EXPECT_EQ(fr.plans[2].policy,
              forensics::PlanPolicy::ReplicaAware);
    EXPECT_LE(fr.plans[2].makespan, fr.plans[0].makespan);
}

TEST(FleetRepair, RepairUnderTrafficIsDeterministic)
{
    // Repair copies contend with foreground quorum writes on the
    // shard ingest queues; the interleaving must still be a pure
    // function of config and seed.
    FleetScheduler a(healingFleet());
    FleetScheduler b(healingFleet());
    EXPECT_EQ(a.run().toJson(), b.run().toJson());
}

TEST(FleetRepair, GoldenHealedReportDigest)
{
    FleetScheduler sched(healingFleet());
    const std::string digest = jsonDigest(sched.run());
    // Digest history (every bump must name its schema change):
    //   30a007...42b0 — schema 5 (PR 7: anti-entropy — "repair"
    //             totals block, per-device replicasLive/
    //             quarantinedCopies, per-shard quarantined)
    //   c2be22...3b3b40 — schema 6 (PR 8: latency attribution —
    //             totals offloadAckP50Ns/offloadAckP99Ns and the
    //             per-stage "latency" block: seal, queueWait,
    //             quorumWait, repairCopy)
    //   current — schema 7 (PR 9: fleet health — per-device
    //             parks/resubmits, top-level "health" block)
    EXPECT_EQ(digest,
              "447458e9b27287e9b1fdfaa61e160d6cc7371b8666d9143e4fd"
              "b1aa182d3a576");
}

TEST(FleetRepair, RepairDisabledLeavesTheDebt)
{
    // Without the engine the same campaign ends degraded — the PR 6
    // status quo this PR exists to fix (and the control run for the
    // convergence claim).
    FleetConfig cfg = healingFleet();
    cfg.repair.enabled = false;
    cfg.bitRot.clear();
    FleetScheduler sched(cfg);
    const FleetReport rep = sched.run();
    EXPECT_FALSE(rep.repairEnabled);
    EXPECT_EQ(rep.repairStats.segmentsCopied, 0u);
    EXPECT_GT(rep.degradedAtEnd, 0u);
    EXPECT_EQ(rep.repairConvergedAt, 0u);
}

} // namespace
} // namespace rssd::fleet
