/**
 * @file
 * Fleet-level tests for the health layer: the sampler actor on the
 * DES spine, default SLO rules, the FleetReport `health` block, and
 * the determinism contract (same seed + config => byte-identical
 * time-series JSONL and report).
 *
 * The crash-mid-outbreak campaign pins the acceptance alert
 * sequence: crashing a shard under a throttled repair budget raises
 * `repair_debt`, and the alert clears at the final sample once the
 * engine converged (repairConvergedAt) — alarms fire during the
 * incident and stand down after the cluster heals itself.
 */

#include <string>

#include <gtest/gtest.h>

#include "fleet/scheduler.hh"

#include "tests/common/json_checker.hh"

namespace rssd::fleet {
namespace {

using test::JsonChecker;

FleetConfig
healthFleet(Scenario scenario)
{
    FleetConfig cfg;
    cfg.devices = 6;
    cfg.shards = 2;
    cfg.seed = 7;
    cfg.opsPerDevice = 60;
    cfg.campaign.scenario = scenario;
    cfg.campaign.victimPages = 16;
    cfg.health.interval = 1 * units::MS;
    return cfg;
}

/** The acceptance crash campaign under a throttled repair budget:
 *  the only configuration in the suite where repair debt is old
 *  enough to breach the default repair_debt rule. */
FleetConfig
crashCampaign()
{
    FleetConfig cfg;
    cfg.devices = 16;
    cfg.shards = 4;
    cfg.replication = 3;
    cfg.seed = 7;
    cfg.opsPerDevice = 40;
    cfg.campaign.scenario = Scenario::Outbreak;
    cfg.campaign.victimPages = 16;
    cfg.membership.push_back(
        {100 * units::MS, MembershipKind::CrashShard, 1});
    cfg.repair.enabled = true;
    cfg.repair.bandwidthBytesPerSec = 1 * units::MiB;
    cfg.repair.burstBytes = 64 * units::KiB;
    cfg.health.interval = 1 * units::MS;
    return cfg;
}

TEST(FleetHealth, DisabledByDefaultAndReportSaysSo)
{
    FleetConfig cfg = healthFleet(Scenario::Benign);
    cfg.health.interval = 0;
    FleetScheduler sched(cfg);
    EXPECT_EQ(sched.healthSampler(), nullptr);
    EXPECT_EQ(sched.healthMonitor(), nullptr);
    const FleetReport rep = sched.run();
    EXPECT_FALSE(rep.health.enabled);
    EXPECT_EQ(rep.health.samples, 0u);
    EXPECT_TRUE(sched.healthTimeSeriesJsonl().empty());
    // The block is present (schema stability) even when disabled.
    EXPECT_NE(rep.toJson().find("\"health\":{\"enabled\":false,"),
              std::string::npos);
}

TEST(FleetHealth, BenignRunRaisesNothing)
{
    FleetScheduler sched(healthFleet(Scenario::Benign));
    const FleetReport rep = sched.run();
    ASSERT_TRUE(rep.health.enabled);
    EXPECT_GT(rep.health.samples, 0u);
    EXPECT_EQ(rep.health.alertsRaised, 0u);
    EXPECT_EQ(rep.health.alertsOpen, 0u);
    EXPECT_EQ(rep.health.worstSeverity, "info");
    // Every default rule is bound and quiet.
    EXPECT_GT(rep.health.rules.size(), 0u);
    for (const HealthRuleReport &r : rep.health.rules) {
        EXPECT_EQ(r.raised, 0u) << r.id;
        EXPECT_FALSE(r.open) << r.id;
    }
}

TEST(FleetHealth, OutbreakWithDefaultRulesStaysQuiet)
{
    // An attack is not an SLO breach: the fleet keeps absorbing the
    // traffic, so the infrastructure rules must not cry wolf.
    FleetScheduler sched(healthFleet(Scenario::Outbreak));
    const FleetReport rep = sched.run();
    EXPECT_EQ(rep.health.alertsRaised, 0u);
    EXPECT_EQ(rep.health.worstSeverity, "info");
}

TEST(FleetHealth, SamplesRideTheSpineAtTheConfiguredCadence)
{
    const FleetConfig cfg = healthFleet(Scenario::Outbreak);
    FleetScheduler sched(cfg);
    const FleetReport rep = sched.run();
    const obs::TimeSeriesSampler *s = sched.healthSampler();
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(rep.health.samples, s->samples());
    // Roughly one sample per interval across the makespan (plus the
    // final end-of-run sample).
    EXPECT_GE(rep.health.samples, rep.makespan / units::MS);
    EXPECT_EQ(rep.health.lastSampleAt, s->lastSampleAt());
    // The end-of-run sample comes after every periodic one (makespan
    // itself can exceed it: it counts post-spine offload drains).
    EXPECT_GE(rep.health.lastSampleAt,
              (rep.health.samples - 1) * cfg.health.interval);

    // One JSONL row per sample, each one a self-contained object.
    const std::string &jsonl = sched.healthTimeSeriesJsonl();
    std::uint64_t rows = 0;
    std::size_t pos = 0;
    while ((pos = jsonl.find('\n', pos)) != std::string::npos) {
        rows++;
        pos++;
    }
    EXPECT_EQ(rows, rep.health.samples);
    const std::string first = jsonl.substr(0, jsonl.find('\n'));
    EXPECT_TRUE(JsonChecker(first).valid()) << first.substr(0, 200);
}

TEST(FleetHealth, SameSeedSameTelemetryBytes)
{
    const FleetConfig cfg = healthFleet(Scenario::Outbreak);
    FleetScheduler a(cfg);
    FleetScheduler b(cfg);
    const std::string ja = a.run().toJson();
    const std::string jb = b.run().toJson();
    EXPECT_EQ(ja, jb);
    EXPECT_EQ(a.healthTimeSeriesJsonl(), b.healthTimeSeriesJsonl());
    EXPECT_FALSE(a.healthTimeSeriesJsonl().empty());
}

TEST(FleetHealth, HealthLayerDoesNotPerturbTheRun)
{
    // The sampler is a read-only actor: the same campaign with and
    // without health enabled produces the identical report except
    // for the health block itself.
    FleetConfig on = healthFleet(Scenario::Outbreak);
    FleetConfig off = on;
    off.health.interval = 0;
    FleetScheduler a(on);
    FleetScheduler b(off);
    const FleetReport ra = a.run();
    const FleetReport rb = b.run();
    EXPECT_EQ(ra.makespan, rb.makespan);
    EXPECT_EQ(ra.totalSegments, rb.totalSegments);
    EXPECT_EQ(ra.totalBytesStored, rb.totalBytesStored);
    EXPECT_EQ(ra.replicationStats.quorumWrites,
              rb.replicationStats.quorumWrites);
}

TEST(FleetHealth, CrashCampaignRaisesThenClearsRepairDebt)
{
    FleetScheduler sched(crashCampaign());
    const FleetReport rep = sched.run();
    ASSERT_TRUE(rep.health.enabled);
    EXPECT_GT(rep.repairConvergedAt, 0u);

    // The pinned acceptance sequence: exactly one episode, the
    // repair_debt rule, critical, raised after the crash and cleared
    // at the final post-convergence sample — never still open.
    ASSERT_EQ(rep.health.alerts.size(), 1u);
    const HealthAlertReport &a = rep.health.alerts[0];
    EXPECT_EQ(a.rule, "repair_debt");
    EXPECT_EQ(a.severity, "critical");
    EXPECT_FALSE(a.open);
    EXPECT_GT(a.raisedAt, 100 * units::MS);
    EXPECT_GE(a.clearedAt, rep.repairConvergedAt);
    EXPECT_EQ(a.clearedAt, rep.health.lastSampleAt);
    EXPECT_EQ(rep.health.alertsOpen, 0u);
    EXPECT_EQ(rep.health.worstSeverity, "critical");

    // Repair actually ran throttled (the debt was observable).
    EXPECT_GT(rep.repairStats.segmentsCopied, 0u);
    EXPECT_GT(rep.repairConvergedAt, rep.makespan);
}

TEST(FleetHealth, CrashCampaignTelemetryIsDeterministic)
{
    const FleetConfig cfg = crashCampaign();
    FleetScheduler a(cfg);
    FleetScheduler b(cfg);
    EXPECT_EQ(a.run().toJson(), b.run().toJson());
    EXPECT_EQ(a.healthTimeSeriesJsonl(), b.healthTimeSeriesJsonl());
}

TEST(FleetHealth, DefaultRulesCoverTheFailureDomains)
{
    // Repair off: the repair rules must not bind (their metrics do
    // not exist); repair+scrub on: all six domains are covered.
    FleetConfig cfg = healthFleet(Scenario::Benign);
    auto ids = [](const std::vector<obs::HealthRule> &rules) {
        std::string joined;
        for (const obs::HealthRule &r : rules)
            joined += r.id + ",";
        return joined;
    };

    const std::string base = ids(defaultHealthRules(cfg));
    EXPECT_NE(base.find("quorum_stall,"), std::string::npos) << base;
    EXPECT_NE(base.find("offload_parked,"), std::string::npos);
    EXPECT_NE(base.find("shard_backlog,"), std::string::npos);
    EXPECT_NE(base.find("gc_reject,"), std::string::npos);
    EXPECT_EQ(base.find("repair_debt"), std::string::npos);
    EXPECT_EQ(base.find("scrub_rot"), std::string::npos);

    cfg.repair.enabled = true;
    cfg.repair.scrubInterval = 10 * units::MS;
    const std::string full = ids(defaultHealthRules(cfg));
    EXPECT_NE(full.find("repair_debt,"), std::string::npos) << full;
    EXPECT_NE(full.find("scrub_rot,"), std::string::npos);

    // And the full set binds cleanly against a real fleet.
    FleetScheduler sched(cfg);
    ASSERT_NE(sched.healthMonitor(), nullptr);
    EXPECT_EQ(sched.healthMonitor()->rules().size(), 6u);
}

} // namespace
} // namespace rssd::fleet
