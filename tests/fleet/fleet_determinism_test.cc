/**
 * @file
 * Fleet simulation tests: scenario semantics, cross-run determinism,
 * and the golden-digest pin for the FleetReport JSON.
 *
 * Determinism is a hard requirement (same seed + same config =>
 * byte-identical FleetReport). Like tests/log/seal_determinism_test,
 * the golden digest below was captured from a known-good run; any
 * change that perturbs event ordering, RNG consumption, JSON
 * formatting, or aggregate arithmetic fails here rather than
 * silently forking fleet results between PRs.
 */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"
#include "fleet/scheduler.hh"

#include "tests/common/json_checker.hh"

namespace rssd::fleet {
namespace {

FleetConfig
smallFleet(Scenario scenario, std::uint64_t seed)
{
    FleetConfig cfg;
    cfg.devices = 6;
    cfg.shards = 2;
    cfg.seed = seed;
    cfg.opsPerDevice = 60;
    cfg.campaign.scenario = scenario;
    cfg.campaign.victimPages = 16;
    cfg.campaign.floodPages = 128;
    return cfg;
}

std::string
jsonDigest(const FleetReport &report)
{
    const std::string json = report.toJson();
    return crypto::toHex(
        crypto::Sha256::hash(json.data(), json.size()));
}

using test::JsonChecker;

TEST(FleetSim, BenignFleetHasNoAttackTraffic)
{
    FleetScheduler sched(smallFleet(Scenario::Benign, 5));
    const FleetReport rep = sched.run();
    EXPECT_EQ(rep.totalPagesEncrypted, 0u);
    EXPECT_EQ(rep.totalJunkPages, 0u);
    EXPECT_TRUE(rep.allChainsOk);
    EXPECT_GT(rep.totalSegments, 0u);
    for (const DeviceReport &d : rep.deviceReports) {
        EXPECT_EQ(d.role, "benign");
        EXPECT_EQ(d.benignOps, 60u);
        EXPECT_DOUBLE_EQ(d.victimIntact, 1.0);
    }
}

TEST(FleetSim, OutbreakEncryptsEveryVictimEverywhere)
{
    FleetConfig cfg = smallFleet(Scenario::Outbreak, 7);
    FleetScheduler sched(cfg);
    const FleetReport rep = sched.run();
    EXPECT_EQ(rep.totalPagesEncrypted,
              static_cast<std::uint64_t>(cfg.devices) *
                  cfg.campaign.victimPages);
    EXPECT_TRUE(rep.allChainsOk);
    for (const DeviceReport &d : rep.deviceReports) {
        EXPECT_EQ(d.role, "encryptor");
        EXPECT_EQ(d.attack.startedAt >= cfg.campaign.attackStart,
                  true);
        EXPECT_LT(d.victimIntact, 0.5); // encrypted, not recovered
    }
}

TEST(FleetSim, StaggeredDevicesTurnInOrder)
{
    FleetConfig cfg = smallFleet(Scenario::Staggered, 9);
    FleetScheduler sched(cfg);
    const FleetReport rep = sched.run();
    for (std::uint32_t i = 1; i < cfg.devices; i++) {
        EXPECT_EQ(rep.deviceReports[i].attackStart -
                      rep.deviceReports[i - 1].attackStart,
                  cfg.campaign.stagger);
        EXPECT_GE(rep.deviceReports[i].attack.startedAt,
                  rep.deviceReports[i].attackStart);
    }
}

TEST(FleetSim, ShardFloodTargetsOneShard)
{
    FleetConfig cfg = smallFleet(Scenario::ShardFlood, 11);
    cfg.devices = 8;
    FleetScheduler sched(cfg);
    const FleetReport rep = sched.run();

    // Exactly the devices on the hot shard flood; everyone else
    // encrypts.
    remote::ShardId hot = remote::kNoShard;
    for (const DeviceReport &d : rep.deviceReports) {
        if (d.role == "flooder") {
            if (hot == remote::kNoShard)
                hot = d.shard;
            EXPECT_EQ(d.shard, hot);
            EXPECT_EQ(d.attack.junkPagesWritten,
                      cfg.campaign.floodPages);
        } else {
            EXPECT_EQ(d.role, "encryptor");
            EXPECT_EQ(d.attack.junkPagesWritten, 0u);
        }
    }
    ASSERT_NE(hot, remote::kNoShard);

    // The flooded shard ingests more than any other shard.
    std::uint64_t hot_segments = 0;
    std::uint64_t cold_max = 0;
    for (const ShardReport &s : rep.shardReports) {
        if (s.shard == hot)
            hot_segments = s.segmentsAccepted;
        else
            cold_max = std::max(cold_max, s.segmentsAccepted);
    }
    EXPECT_GT(hot_segments, cold_max);
    EXPECT_TRUE(rep.allChainsOk);
}

TEST(FleetSim, DetectorsAlarmOnInfectedDevicesOnly)
{
    FleetConfig cfg = smallFleet(Scenario::Outbreak, 13);
    cfg.campaign.victimPages = 32;
    FleetScheduler sched(cfg);
    const FleetReport rep = sched.run();
    for (const DeviceReport &d : rep.deviceReports) {
        EXPECT_GT(d.alarms, 0u) << "device " << d.device;
        EXPECT_EQ(d.firstAlarmDetector, "entropy-overwrite");
    }
}

TEST(FleetSim, ReportIsWellFormedJson)
{
    FleetScheduler sched(smallFleet(Scenario::ShardFlood, 21));
    const std::string json = sched.run().toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);

    // The checker itself must reject the bug class it guards
    // against (missing commas, truncation).
    EXPECT_FALSE(JsonChecker("{\"a\":1\"b\":2}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":1,").valid());
    EXPECT_FALSE(JsonChecker("[1 2]").valid());
    EXPECT_TRUE(JsonChecker(
                    "{\"a\":[1,2],\"b\":{\"c\":true,\"d\":\"x\"}}")
                    .valid());
}

TEST(FleetSim, ReportLeadsWithSchemaVersion)
{
    FleetScheduler sched(smallFleet(Scenario::Benign, 3));
    const std::string json = sched.run().toJson();
    const std::string expect =
        "{\"schema\":" + std::to_string(kFleetReportSchema) + ",";
    EXPECT_EQ(json.rfind(expect, 0), 0u) << json.substr(0, 40);
}

TEST(FleetSim, SameSeedSameBytes)
{
    const FleetConfig cfg = smallFleet(Scenario::Outbreak, 7);
    FleetScheduler a(cfg);
    FleetScheduler b(cfg);
    EXPECT_EQ(a.run().toJson(), b.run().toJson());
}

TEST(FleetSim, DifferentSeedDifferentBytes)
{
    FleetScheduler a(smallFleet(Scenario::Outbreak, 7));
    FleetScheduler b(smallFleet(Scenario::Outbreak, 8));
    EXPECT_NE(a.run().toJson(), b.run().toJson());
}

TEST(FleetSim, GoldenReportDigest)
{
    // The acceptance configuration: 16 devices -> 4 shards, outbreak,
    // seed 7 (the rssd_fleet CLI's smoke run shares scenario/seed).
    FleetConfig cfg;
    cfg.devices = 16;
    cfg.shards = 4;
    cfg.seed = 7;
    cfg.opsPerDevice = 40;
    cfg.campaign.scenario = Scenario::Outbreak;
    cfg.campaign.victimPages = 16;

    FleetScheduler sched(cfg);
    const std::string digest = jsonDigest(sched.run());
    // Digest history (every bump must name its schema change):
    //   622082...ca02e — schema 1 (PR 3, no schema field)
    //   8a775b...95a6  — schema 2 (PR 4: "schema" field added)
    //   f7d689...af10  — schema 3 (PR 5: retention-GC lifecycle —
    //                    per-shard rejectedBytes/segmentsPruned/
    //                    bytesPruned/heldStreams, totals
    //                    segmentsPruned/bytesPruned, per-device
    //                    remoteRejects)
    //   179616...c39c  — schema 4 (PR 6: replication & membership —
    //                    fleet replication/liveShards, per-device
    //                    replicas, per-shard status/duplicates,
    //                    totals quorum/migration counters)
    //   8606a6...4eea  — schema 5 (PR 7: anti-entropy — "repair"
    //                    totals block, per-device replicasLive/
    //                    quarantinedCopies, per-shard quarantined)
    //   c2b205...2cb2b4 — schema 6 (PR 8: latency attribution —
    //                    totals offloadAckP50Ns/offloadAckP99Ns and
    //                    the per-stage "latency" block: seal,
    //                    queueWait, quorumWait, repairCopy)
    //   current        — schema 7 (PR 9: fleet health — per-device
    //                    parks/resubmits, top-level "health" block:
    //                    sampler totals, SLO rules, alerts)
    EXPECT_EQ(digest,
              "88086b5f07a7060177d8cc50ffb11e8ae696d24ecf475d9c6ca"
              "5d6c2d9daa728");
}

TEST(FleetSim, CrashMidOutbreakLosesNoEvidence)
{
    // The paper's evidence-loss scenario: the acceptance outbreak
    // with R=3 and one shard fail-stopping mid-campaign (after the
    // malware turned, before the fleet drained). Durability claim:
    // forensics reaches the same conclusions as the crash-free run's
    // ground truth and every victim restores to 100% intact — read
    // entirely from surviving replicas.
    FleetConfig cfg;
    cfg.devices = 16;
    cfg.shards = 4;
    cfg.replication = 3;
    cfg.seed = 7;
    cfg.opsPerDevice = 40;
    cfg.campaign.scenario = Scenario::Outbreak;
    cfg.campaign.victimPages = 16;
    cfg.membership.push_back({60 * units::MS,
                              MembershipKind::CrashShard, 1});

    FleetScheduler sched(cfg);
    const FleetReport rep = sched.run();
    EXPECT_EQ(rep.replication, 3u);
    EXPECT_EQ(rep.liveShards, 3u);
    EXPECT_EQ(rep.shardReports[1].status, "crashed");
    EXPECT_TRUE(rep.allChainsOk);
    // The crash actually bit: some quorum acks were partial.
    EXPECT_GT(rep.replicationStats.partialWrites, 0u);
    EXPECT_EQ(rep.replicationStats.quorumStalls, 0u); // R=3 absorbs 1

    const forensics::ForensicsReport fr = sched.runForensics();
    EXPECT_TRUE(fr.patientZeroMatch);
    EXPECT_TRUE(fr.infectionOrderMatch);
    EXPECT_TRUE(fr.campaignClassMatch);
    ASSERT_GT(fr.recovery.size(), 0u);
    for (const forensics::RecoveryOutcome &o : fr.recovery) {
        EXPECT_DOUBLE_EQ(o.victimIntactAfter, 1.0)
            << "device " << o.device;
        EXPECT_EQ(o.unresolved, 0u) << "device " << o.device;
        // Never sourced from the dead shard.
        EXPECT_NE(o.restoredFromShard, 1u) << "device " << o.device;
        EXPECT_NE(o.restoredFromShard, remote::kNoShard);
    }

    // Zero evidence loss is pinned byte-for-byte: the crash run has
    // its own golden digest (same discipline as GoldenReportDigest).
    EXPECT_EQ(jsonDigest(rep),
              "ac4b6ff0bb3edb7700dbda9620d7c1106d69b71c651cdd511f8"
              "a6c2c8cee8251");
}

} // namespace
} // namespace rssd::fleet
