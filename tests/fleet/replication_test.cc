/**
 * @file
 * Replicated-cluster tests: R-way placement, write-quorum ack timing
 * and edge cases (ack at exactly ceil((R+1)/2), below-quorum stall
 * that never drops, idempotent duplicate ingest), crash survival,
 * membership migration that copies sealed bytes verbatim (never
 * reseals), and the device-side park-and-resubmit loop across a
 * crash + join repair.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/rssd_device.hh"
#include "remote/backup_cluster.hh"

#include "tests/common/fault_injection.hh"
#include "tests/common/segment_chain.hh"

namespace rssd::remote {
namespace {

BackupClusterConfig
replicatedCluster(std::uint32_t shards, std::uint32_t r)
{
    BackupClusterConfig cfg;
    cfg.shards = shards;
    cfg.replication = r;
    cfg.shard.capacityBytes = 64 * units::MiB;
    cfg.perSegmentProcessing = 50 * units::US;
    cfg.batchOverhead = 200 * units::US;
    cfg.batchSegments = 4;
    cfg.maxPending = 8;
    return cfg;
}

TEST(Replication, AttachPinsRSuccessorsAndIngestReachesAll)
{
    BackupCluster cluster(replicatedCluster(5, 3));
    test::SegmentChain chain("r3-dev");
    const ShardId primary = cluster.attachDevice(9, chain.codec());

    const std::vector<ShardId> &set = cluster.replicaSetOf(9);
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set.front(), primary);
    EXPECT_EQ(cluster.shardOfDevice(9), primary);
    EXPECT_EQ(std::set<ShardId>(set.begin(), set.end()).size(), 3u);

    Tick ack = 0;
    for (int i = 0; i < 3; i++)
        ASSERT_TRUE(cluster.ingest(9, chain.next(2, 256), 0, ack));

    // Systematic duplication: every replica holds the whole stream.
    for (const ShardId s : set) {
        EXPECT_TRUE(cluster.shardStore(s).hasStream(9));
        EXPECT_EQ(cluster.shardStore(s).streamSegments(9).size(), 3u);
        EXPECT_TRUE(cluster.shardStore(s).verifyStreamChain(9));
    }
    EXPECT_EQ(cluster.totalSegments(), 9u);
    EXPECT_EQ(cluster.replicationStats().quorumWrites, 3u);
    EXPECT_EQ(cluster.replicationStats().partialWrites, 0u);
}

TEST(Replication, AckFiresAtExactlyTheWriteQuorum)
{
    BackupClusterConfig cfg = replicatedCluster(3, 3);
    BackupCluster cluster(cfg);
    EXPECT_EQ(cluster.writeQuorum(), 2u);

    test::SegmentChain chain("quorum-dev");
    cluster.attachDevice(1, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(1);

    // Distinct per-replica service times: the device's ack must be
    // the 2nd fastest replica ack — not the fastest, not the
    // slowest.
    const Tick mid_delay = 1 * units::MS;
    const Tick slow_delay = 10 * units::MS;
    cluster.setShardDelay(set[1], mid_delay);
    cluster.setShardDelay(set[2], slow_delay);

    Tick ack = 0;
    ASSERT_TRUE(cluster.ingest(1, chain.next(), 0, ack));

    const Tick base = cfg.batchOverhead + cfg.perSegmentProcessing;
    EXPECT_EQ(ack, base + mid_delay);
    EXPECT_GT(ack, base);              // not the fastest replica
    EXPECT_LT(ack, base + slow_delay); // not the slowest
    // The slow replica still stored its copy — quorum acks early,
    // it does not shed the minority write.
    EXPECT_EQ(cluster.shardStore(set[2]).liveSegmentCount(), 1u);
}

TEST(Replication, BelowQuorumStallsWithoutOfferingAnywhere)
{
    BackupClusterConfig cfg = replicatedCluster(3, 3);
    BackupCluster cluster(cfg);
    test::SegmentChain chain("stall-dev");
    cluster.attachDevice(4, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(4);

    cluster.crashShard(set[1]);
    cluster.crashShard(set[2]);
    ASSERT_EQ(cluster.liveShardCount(), 1u); // < quorum of 2

    // CP choice: with a minority alive the capsule is not offered
    // even to the survivor — no half-written minority state, the
    // initiator re-offers after the retry delay.
    const log::SealedSegment seg = chain.next(2, 128);
    Tick ack = 0;
    EXPECT_FALSE(cluster.ingest(4, seg, units::MS, ack));
    EXPECT_EQ(ack, units::MS + cfg.backpressureRetryDelay);
    EXPECT_EQ(cluster.replicationStats().quorumStalls, 1u);
    EXPECT_EQ(cluster.totalSegments(), 0u);

    // Membership repair restores quorum; the very same capsule (the
    // initiator never dropped it) is accepted.
    cluster.joinShard(2 * units::MS);
    EXPECT_TRUE(cluster.ingest(4, seg, 3 * units::MS, ack));
    EXPECT_EQ(cluster.replicationStats().quorumWrites, 1u);
    EXPECT_GT(cluster.totalSegments(), 0u);
    EXPECT_TRUE(cluster.verifyAll());
}

TEST(Replication, DuplicateTailReofferIsIdempotentOnEveryReplica)
{
    BackupCluster cluster(replicatedCluster(2, 2));
    test::SegmentChain chain("dup-dev");
    cluster.attachDevice(2, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(2);

    const log::SealedSegment seg = chain.next(3, 200);
    Tick ack = 0;
    ASSERT_TRUE(cluster.ingest(2, seg, 0, ack));
    // A retry of the quorum-acked tail (the initiator could not know
    // every replica stored it) converges instead of faulting.
    EXPECT_TRUE(cluster.ingest(2, seg, units::MS, ack));

    for (const ShardId s : set) {
        EXPECT_EQ(cluster.shardStore(s).liveSegmentCount(), 1u);
        EXPECT_EQ(cluster.shardStore(s).stats().duplicateSegments,
                  1u);
    }
    EXPECT_TRUE(cluster.verifyAll());
}

TEST(Replication, CrashedReplicaStillReachesQuorum)
{
    BackupCluster cluster(replicatedCluster(5, 3));
    test::SegmentChain chain("crash-dev");
    cluster.attachDevice(6, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(6);

    Tick ack = 0;
    ASSERT_TRUE(cluster.ingest(6, chain.next(), 0, ack));

    // Scripted fail-stop of one set member mid-stream.
    test::FaultInjector faults(cluster);
    faults.schedule({.at = units::MS,
                     .kind = test::ScriptedFault::Kind::KillShard,
                     .shard = set[2]});
    faults.advanceTo(units::MS);
    ASSERT_EQ(faults.applied(), 1u);
    EXPECT_EQ(cluster.shardStatus(set[2]), ShardStatus::Crashed);

    // 2 of 3 replicas alive == quorum: writes keep flowing, counted
    // as partial (repair debt for the next rebalance).
    ASSERT_TRUE(cluster.ingest(6, chain.next(), 2 * units::MS, ack));
    EXPECT_EQ(cluster.replicationStats().quorumWrites, 2u);
    EXPECT_EQ(cluster.replicationStats().partialWrites, 1u);
    for (const ShardId s : {set[0], set[1]})
        EXPECT_EQ(cluster.shardStore(s).streamSegments(6).size(), 2u);

    // Read side never picks the dead copy.
    const ShardId src = cluster.chainVerifyingReplicaOf(6);
    EXPECT_NE(src, set[2]);
    EXPECT_TRUE(cluster.shardAlive(src));
}

TEST(Replication, RepairMigratesSealedBytesVerbatim)
{
    // A replica destroyed by a crash is rebuilt by membership repair
    // (join + rebalance) from a surviving copy — same ids, same
    // HMACs, same payload bytes. Re-sealing would need device keys
    // the cluster must never hold.
    BackupCluster cluster(replicatedCluster(3, 3));
    test::SegmentChain chain("repair-dev");
    cluster.attachDevice(8, chain.codec());
    std::vector<ShardId> old_set = cluster.replicaSetOf(8);

    Tick ack = 0;
    for (int i = 0; i < 2; i++)
        ASSERT_TRUE(cluster.ingest(8, chain.next(2, 300), 0, ack));
    cluster.crashShard(old_set[1]);
    for (int i = 0; i < 2; i++)
        ASSERT_TRUE(
            cluster.ingest(8, chain.next(2, 300), units::MS, ack));

    const std::uint64_t migrated_before =
        cluster.replicationStats().segmentsMigrated;
    cluster.joinShard(2 * units::MS);

    const std::vector<ShardId> &set = cluster.replicaSetOf(8);
    ASSERT_EQ(set.size(), 3u);
    const ShardId survivor = old_set[0];
    ASSERT_TRUE(cluster.shardAlive(survivor));
    for (const ShardId s : set) {
        ASSERT_TRUE(cluster.shardAlive(s));
        const BackupStore &store = cluster.shardStore(s);
        ASSERT_TRUE(store.hasStream(8));
        ASSERT_EQ(store.streamSegments(8).size(), 4u);
        EXPECT_TRUE(store.verifyStreamChain(8));

        // Byte-for-byte identical to the survivor's copy.
        const BackupStore &ref = cluster.shardStore(survivor);
        auto it = store.streamSegments(8).begin();
        for (const std::uint32_t ref_idx : ref.streamSegments(8)) {
            const log::SealedSegment &a = ref.sealedSegment(ref_idx);
            const log::SealedSegment &b = store.sealedSegment(*it++);
            EXPECT_EQ(a.id, b.id);
            EXPECT_EQ(a.hmac, b.hmac);
            EXPECT_EQ(a.payload, b.payload);
        }
    }
    EXPECT_GT(cluster.replicationStats().segmentsMigrated,
              migrated_before);
}

TEST(Replication, MigrationAdoptsThePruneRecord)
{
    // A graceful departure must carry a pruned stream's signed
    // re-anchor to the replacement replica: the migrated prefix IS a
    // re-anchored chain.
    BackupClusterConfig cfg = replicatedCluster(2, 1);
    cfg.shard.retention.gcEnabled = true;
    cfg.shard.retention.retentionWindow = 10 * units::MS;
    BackupCluster cluster(cfg);
    test::SegmentChain chain("prune-dev");
    const ShardId pinned = cluster.attachDevice(5, chain.codec());

    Tick ack = 0;
    for (int i = 0; i < 3; i++)
        ASSERT_TRUE(cluster.ingest(5, chain.next(2, 256), 0, ack));
    cluster.runRetentionGc(units::SEC); // expire all three
    ASSERT_TRUE(
        cluster.ingest(5, chain.next(2, 256), units::SEC, ack));

    const log::PruneRecord *src_rec =
        cluster.shardStore(pinned).pruneRecordOf(5);
    ASSERT_NE(src_rec, nullptr);

    cluster.leaveShard(pinned, units::SEC + units::MS);
    EXPECT_EQ(cluster.shardStatus(pinned), ShardStatus::Departed);

    const ShardId target = cluster.shardOfDevice(5);
    ASSERT_NE(target, pinned);
    const BackupStore &store = cluster.shardStore(target);
    const log::PruneRecord *rec = store.pruneRecordOf(5);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->upToId, 2u);
    EXPECT_EQ(rec->segmentsPruned, 3u);
    EXPECT_EQ(store.streamSegments(5).size(), 1u);
    EXPECT_TRUE(store.verifyStreamChain(5));
    EXPECT_EQ(cluster.replicationStats().streamsMigrated, 1u);
}

TEST(Replication, QuorumLossParksAtTheDeviceAndResubmits)
{
    // End to end through a real device: losing quorum turns into
    // remoteRejects + a parked capsule at the OffloadEngine, and a
    // membership repair lets the very same sealed segment land —
    // resubmitted, never resealed.
    BackupClusterConfig cfg;
    cfg.shards = 2;
    cfg.replication = 2;
    BackupCluster cluster(cfg);

    core::RssdConfig dev_cfg = core::RssdConfig::forTests();
    dev_cfg.segmentPages = 8;
    dev_cfg.pumpThreshold = 8;
    dev_cfg.keySeed = "park-dev";
    VirtualClock clock;
    ClusterPortal portal(cluster, 0);
    core::RssdDevice dev(dev_cfg, clock, portal);
    cluster.attachDevice(0, dev.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(0);

    // One sealed segment lands while both replicas are up.
    for (int i = 0; i < 8; i++) {
        dev.writePage(static_cast<flash::Lpa>(i),
                      std::vector<std::uint8_t>(dev.pageSize(), 0x5A));
    }
    dev.drainOffload();
    const std::uint64_t accepted_before =
        dev.offload().stats().segmentsAccepted;
    ASSERT_GT(accepted_before, 0u);

    // Crash one replica: quorum 2 > 1 live, so the next sealed
    // segment is refused and parks on-device.
    cluster.crashShard(set[1]);
    for (int i = 0; i < 8; i++) {
        dev.writePage(static_cast<flash::Lpa>(i),
                      std::vector<std::uint8_t>(dev.pageSize(), 0xA5));
    }
    dev.drainOffload();
    EXPECT_GT(dev.offload().stats().remoteRejects, 0u);
    EXPECT_EQ(dev.offload().stats().segmentsAccepted,
              accepted_before);
    EXPECT_GT(cluster.replicationStats().quorumStalls, 0u);

    // Join repairs the set (migrating the survivor's copy over);
    // the parked capsule is re-offered and accepted at quorum.
    cluster.joinShard(clock.now());
    dev.drainOffload();
    EXPECT_GT(dev.offload().stats().segmentsAccepted,
              accepted_before);
    for (const ShardId s : cluster.replicaSetOf(0)) {
        EXPECT_TRUE(cluster.shardAlive(s));
        EXPECT_TRUE(cluster.shardStore(s).verifyStreamChain(0));
    }
    EXPECT_TRUE(cluster.verifyAll());
}

TEST(Replication, LeaveBelowReplicationIsRefused)
{
    BackupCluster cluster(replicatedCluster(2, 2));
    EXPECT_DEATH(cluster.leaveShard(0, 0),
                 "departure would break replication");
}

} // namespace
} // namespace rssd::remote
