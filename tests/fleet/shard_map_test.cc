/**
 * @file
 * ShardMap tests: placement determinism, distribution quality, and —
 * the property consistent hashing exists for — bounded remapping
 * when a shard is added or removed.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "remote/shard_map.hh"

namespace rssd::remote {
namespace {

ShardMap
mapWithShards(std::uint32_t n, std::uint32_t vnodes = 64)
{
    ShardMap map(vnodes);
    for (ShardId s = 0; s < n; s++)
        map.addShard(s);
    return map;
}

TEST(ShardMap, EmptyRingHasNoOwner)
{
    ShardMap map;
    EXPECT_EQ(map.shardOf(123), kNoShard);
    EXPECT_EQ(map.shardCount(), 0u);
}

TEST(ShardMap, SingleShardOwnsEverything)
{
    ShardMap map = mapWithShards(1);
    for (std::uint64_t key = 0; key < 100; key++)
        EXPECT_EQ(map.shardOf(key), 0u);
}

TEST(ShardMap, PlacementIsDeterministic)
{
    ShardMap a = mapWithShards(5);
    ShardMap b = mapWithShards(5);
    for (std::uint64_t key = 0; key < 1000; key++)
        EXPECT_EQ(a.shardOf(key), b.shardOf(key));
}

TEST(ShardMap, DistributionCoversAllShards)
{
    const std::uint32_t shards = 8;
    ShardMap map = mapWithShards(shards);
    std::map<ShardId, std::uint64_t> counts;
    const std::uint64_t keys = 8000;
    for (std::uint64_t key = 0; key < keys; key++)
        counts[map.shardOf(key)]++;

    ASSERT_EQ(counts.size(), shards);
    // With 64 vnodes the load factor stays within a loose band —
    // no shard should see less than a third or more than triple the
    // fair share.
    const double fair = static_cast<double>(keys) / shards;
    for (const auto &[shard, n] : counts) {
        EXPECT_GT(n, fair / 3) << "shard " << shard << " starved";
        EXPECT_LT(n, fair * 3) << "shard " << shard << " overloaded";
    }
}

TEST(ShardMap, AddShardRemapsOnlyToNewShard)
{
    const std::uint64_t keys = 4000;
    ShardMap map = mapWithShards(4);
    std::vector<ShardId> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.shardOf(key);

    map.addShard(4);

    std::uint64_t moved = 0;
    for (std::uint64_t key = 0; key < keys; key++) {
        const ShardId now = map.shardOf(key);
        if (now != before[key]) {
            // A key may only move *to* the new shard, never between
            // pre-existing shards.
            EXPECT_EQ(now, 4u) << "key " << key;
            moved++;
        }
    }
    // Expected share of the new shard is keys/5; allow wide slack
    // but insist remapping is neither empty nor wholesale.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, keys / 2);
}

TEST(ShardMap, RemoveShardRemapsOnlyItsKeys)
{
    const std::uint64_t keys = 4000;
    ShardMap map = mapWithShards(4);
    std::vector<ShardId> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.shardOf(key);

    map.removeShard(2);

    for (std::uint64_t key = 0; key < keys; key++) {
        const ShardId now = map.shardOf(key);
        if (before[key] != 2) {
            // Keys not on the removed shard must not move at all.
            EXPECT_EQ(now, before[key]) << "key " << key;
        } else {
            EXPECT_NE(now, 2u) << "key " << key;
        }
    }
    EXPECT_EQ(map.shardCount(), 3u);
}

TEST(ShardMap, AddThenRemoveRestoresPlacement)
{
    const std::uint64_t keys = 2000;
    ShardMap map = mapWithShards(3);
    std::vector<ShardId> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.shardOf(key);

    map.addShard(3);
    map.removeShard(3);

    for (std::uint64_t key = 0; key < keys; key++)
        EXPECT_EQ(map.shardOf(key), before[key]);
}

} // namespace
} // namespace rssd::remote
