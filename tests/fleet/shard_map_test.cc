/**
 * @file
 * ShardMap tests: placement determinism, distribution quality, and —
 * the property consistent hashing exists for — bounded remapping
 * when a shard is added or removed.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "remote/shard_map.hh"

namespace rssd::remote {
namespace {

ShardMap
mapWithShards(std::uint32_t n, std::uint32_t vnodes = 64)
{
    ShardMap map(vnodes);
    for (ShardId s = 0; s < n; s++)
        map.addShard(s);
    return map;
}

TEST(ShardMap, EmptyRingHasNoOwner)
{
    ShardMap map;
    EXPECT_EQ(map.shardOf(123), kNoShard);
    EXPECT_EQ(map.shardCount(), 0u);
}

TEST(ShardMap, SingleShardOwnsEverything)
{
    ShardMap map = mapWithShards(1);
    for (std::uint64_t key = 0; key < 100; key++)
        EXPECT_EQ(map.shardOf(key), 0u);
}

TEST(ShardMap, PlacementIsDeterministic)
{
    ShardMap a = mapWithShards(5);
    ShardMap b = mapWithShards(5);
    for (std::uint64_t key = 0; key < 1000; key++)
        EXPECT_EQ(a.shardOf(key), b.shardOf(key));
}

TEST(ShardMap, DistributionCoversAllShards)
{
    const std::uint32_t shards = 8;
    ShardMap map = mapWithShards(shards);
    std::map<ShardId, std::uint64_t> counts;
    const std::uint64_t keys = 8000;
    for (std::uint64_t key = 0; key < keys; key++)
        counts[map.shardOf(key)]++;

    ASSERT_EQ(counts.size(), shards);
    // With 64 vnodes the load factor stays within a loose band —
    // no shard should see less than a third or more than triple the
    // fair share.
    const double fair = static_cast<double>(keys) / shards;
    for (const auto &[shard, n] : counts) {
        EXPECT_GT(n, fair / 3) << "shard " << shard << " starved";
        EXPECT_LT(n, fair * 3) << "shard " << shard << " overloaded";
    }
}

TEST(ShardMap, AddShardRemapsOnlyToNewShard)
{
    const std::uint64_t keys = 4000;
    ShardMap map = mapWithShards(4);
    std::vector<ShardId> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.shardOf(key);

    map.addShard(4);

    std::uint64_t moved = 0;
    for (std::uint64_t key = 0; key < keys; key++) {
        const ShardId now = map.shardOf(key);
        if (now != before[key]) {
            // A key may only move *to* the new shard, never between
            // pre-existing shards.
            EXPECT_EQ(now, 4u) << "key " << key;
            moved++;
        }
    }
    // Expected share of the new shard is keys/5; allow wide slack
    // but insist remapping is neither empty nor wholesale.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, keys / 2);
}

TEST(ShardMap, RemoveShardRemapsOnlyItsKeys)
{
    const std::uint64_t keys = 4000;
    ShardMap map = mapWithShards(4);
    std::vector<ShardId> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.shardOf(key);

    map.removeShard(2);

    for (std::uint64_t key = 0; key < keys; key++) {
        const ShardId now = map.shardOf(key);
        if (before[key] != 2) {
            // Keys not on the removed shard must not move at all.
            EXPECT_EQ(now, before[key]) << "key " << key;
        } else {
            EXPECT_NE(now, 2u) << "key " << key;
        }
    }
    EXPECT_EQ(map.shardCount(), 3u);
}

// -- Replica placement (successorsOf) ------------------------------------

TEST(ShardMap, SuccessorsAreDistinctAndLedByTheOwner)
{
    const std::uint32_t shards = 6;
    ShardMap map = mapWithShards(shards);
    for (std::uint32_t r = 1; r < shards; r++) {
        for (std::uint64_t key = 0; key < 500; key++) {
            const std::vector<ShardId> set = map.successorsOf(key, r);
            ASSERT_EQ(set.size(), r) << "r=" << r << " key=" << key;
            // The primary is the plain consistent-hash owner.
            EXPECT_EQ(set.front(), map.shardOf(key));
            std::set<ShardId> distinct(set.begin(), set.end());
            EXPECT_EQ(distinct.size(), set.size())
                << "duplicate replica, r=" << r << " key=" << key;
        }
    }
}

TEST(ShardMap, SuccessorsClampToRingSize)
{
    ShardMap map = mapWithShards(3);
    const std::vector<ShardId> set = map.successorsOf(42, 8);
    EXPECT_EQ(set.size(), 3u);
    EXPECT_EQ(std::set<ShardId>(set.begin(), set.end()).size(), 3u);
    EXPECT_TRUE(ShardMap().successorsOf(42, 3).empty());
}

TEST(ShardMap, SuccessorsAreDeterministic)
{
    ShardMap a = mapWithShards(5);
    ShardMap b = mapWithShards(5);
    for (std::uint64_t key = 0; key < 500; key++)
        EXPECT_EQ(a.successorsOf(key, 3), b.successorsOf(key, 3));
}

TEST(ShardMap, AddShardOnlyInsertsItselfIntoReplicaSets)
{
    const std::uint64_t keys = 2000;
    const std::uint32_t r = 3;
    ShardMap map = mapWithShards(5);
    std::vector<std::vector<ShardId>> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.successorsOf(key, r);

    map.addShard(5);

    std::uint64_t changed = 0;
    for (std::uint64_t key = 0; key < keys; key++) {
        const std::vector<ShardId> now = map.successorsOf(key, r);
        if (now == before[key])
            continue;
        changed++;
        // Growth is local: a changed set must contain the joiner, and
        // every other member must come from the old set — adding a
        // shard never reshuffles placement between pre-existing
        // shards.
        const std::set<ShardId> old(before[key].begin(),
                                    before[key].end());
        bool has_new = false;
        for (const ShardId s : now) {
            if (s == 5u)
                has_new = true;
            else
                EXPECT_TRUE(old.count(s)) << "key " << key;
        }
        EXPECT_TRUE(has_new) << "key " << key;
    }
    EXPECT_GT(changed, 0u);
    EXPECT_LT(changed, keys); // not a wholesale remap
}

TEST(ShardMap, RemoveShardPreservesSurvivingReplicas)
{
    const std::uint64_t keys = 2000;
    const std::uint32_t r = 3;
    ShardMap map = mapWithShards(6);
    std::vector<std::vector<ShardId>> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.successorsOf(key, r);

    map.removeShard(2);

    for (std::uint64_t key = 0; key < keys; key++) {
        const std::vector<ShardId> now = map.successorsOf(key, r);
        const std::set<ShardId> survivors(now.begin(), now.end());
        // Removal is local: every old member other than the removed
        // shard keeps its replica role (possibly at a new rank).
        for (const ShardId s : before[key]) {
            if (s != 2u)
                EXPECT_TRUE(survivors.count(s))
                    << "key " << key << " lost survivor " << s;
        }
        EXPECT_FALSE(survivors.count(2u)) << "key " << key;
    }
}

TEST(ShardMap, AddThenRemoveRestoresPlacement)
{
    const std::uint64_t keys = 2000;
    ShardMap map = mapWithShards(3);
    std::vector<ShardId> before(keys);
    for (std::uint64_t key = 0; key < keys; key++)
        before[key] = map.shardOf(key);

    map.addShard(3);
    map.removeShard(3);

    for (std::uint64_t key = 0; key < keys; key++)
        EXPECT_EQ(map.shardOf(key), before[key]);
}

} // namespace
} // namespace rssd::remote
