/**
 * @file
 * BackupCluster tests: stream placement and pinning, batched ingest
 * accounting, bounded backpressure, and per-shard isolation with
 * many device streams.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "remote/backup_cluster.hh"

#include "tests/common/segment_chain.hh"

namespace rssd::remote {
namespace {

BackupClusterConfig
smallCluster(std::uint32_t shards)
{
    BackupClusterConfig cfg;
    cfg.shards = shards;
    cfg.shard.capacityBytes = 64 * units::MiB;
    cfg.perSegmentProcessing = 50 * units::US;
    cfg.batchOverhead = 200 * units::US;
    cfg.batchSegments = 4;
    cfg.maxPending = 8;
    return cfg;
}

TEST(BackupCluster, PlacementMatchesShardMapAndPins)
{
    BackupCluster cluster(smallCluster(3));
    test::SegmentChain chains[6] = {
        test::SegmentChain("k0"), test::SegmentChain("k1"),
        test::SegmentChain("k2"), test::SegmentChain("k3"),
        test::SegmentChain("k4"), test::SegmentChain("k5"),
    };
    for (DeviceId d = 0; d < 6; d++) {
        const ShardId expect = cluster.placementOf(d);
        const ShardId got =
            cluster.attachDevice(d, chains[d].codec());
        EXPECT_EQ(got, expect);
        EXPECT_EQ(cluster.shardOfDevice(d), got);
        EXPECT_LT(got, cluster.shardCount());
    }

    // Growing the ring never moves an attached stream.
    std::vector<ShardId> before;
    for (DeviceId d = 0; d < 6; d++)
        before.push_back(cluster.shardOfDevice(d));
    cluster.addShard();
    for (DeviceId d = 0; d < 6; d++)
        EXPECT_EQ(cluster.shardOfDevice(d), before[d]);
    EXPECT_EQ(cluster.shardCount(), 4u);
}

TEST(BackupCluster, InterleavedDevicesAllAcceptAndVerify)
{
    BackupCluster cluster(smallCluster(2));
    constexpr int kDevices = 5;
    std::vector<test::SegmentChain> chains;
    for (int d = 0; d < kDevices; d++) {
        chains.emplace_back("device-" + std::to_string(d),
                            1000 + d);
        cluster.attachDevice(d, chains.back().codec());
    }

    // Round-robin interleave: every device's stream crosses the
    // others' at its shard.
    Tick ack = 0;
    for (int round = 0; round < 6; round++) {
        for (int d = 0; d < kDevices; d++) {
            EXPECT_TRUE(cluster.ingest(
                d, chains[d].next(2, 300),
                round * 100 * units::US, ack));
        }
    }

    EXPECT_EQ(cluster.totalSegments(), 6u * kDevices);
    EXPECT_TRUE(cluster.verifyAll());
    std::uint64_t devices_seen = 0;
    for (ShardId s = 0; s < cluster.shardCount(); s++)
        devices_seen += cluster.shardDevices(s).size();
    EXPECT_EQ(devices_seen, static_cast<std::uint64_t>(kDevices));
}

TEST(BackupCluster, BatchingAmortizesUnderBacklog)
{
    BackupClusterConfig cfg = smallCluster(1);
    BackupCluster cluster(cfg);
    test::SegmentChain chain("dev");
    cluster.attachDevice(7, chain.codec());

    // All arrivals at t=0: the first segment opens a batch; the rest
    // join it in groups of batchSegments.
    Tick ack = 0;
    for (int i = 0; i < 8; i++)
        EXPECT_TRUE(cluster.ingest(7, chain.next(), 0, ack));

    const ShardIngestStats &st =
        cluster.shardStats(cluster.shardOfDevice(7));
    EXPECT_EQ(st.segmentsAccepted, 8u);
    // 8 segments, batch limit 4 -> exactly 2 batches.
    EXPECT_EQ(st.batches, 2u);
    EXPECT_EQ(st.maxBatchFill, cfg.batchSegments);
    EXPECT_DOUBLE_EQ(st.meanBatchSegments(), 4.0);

    // Total service: 2 batch overheads + 8 per-segment costs.
    const Tick expect_done =
        2 * cfg.batchOverhead + 8 * cfg.perSegmentProcessing;
    EXPECT_EQ(ack, expect_done);
}

TEST(BackupCluster, IdleArrivalsEachOpenTheirOwnBatch)
{
    BackupClusterConfig cfg = smallCluster(1);
    BackupCluster cluster(cfg);
    test::SegmentChain chain("dev");
    cluster.attachDevice(1, chain.codec());

    // Arrivals spaced far beyond the service time: the worker is
    // idle every time, so every segment is its own batch.
    Tick ack = 0;
    for (int i = 0; i < 3; i++) {
        EXPECT_TRUE(cluster.ingest(1, chain.next(),
                                   i * 10 * units::MS, ack));
    }
    const ShardIngestStats &st = cluster.shardStats(0);
    EXPECT_EQ(st.batches, 3u);
    EXPECT_EQ(st.maxBatchFill, 1u);
}

TEST(BackupCluster, BackpressureIsBoundedNotDropping)
{
    BackupClusterConfig cfg = smallCluster(1);
    cfg.maxPending = 4;
    BackupCluster cluster(cfg);
    test::SegmentChain chain("dev");
    cluster.attachDevice(1, chain.codec());

    // Dump 16 segments at t=0; only 4 may be pending, so 12 stall,
    // yet all 16 are eventually accepted in order.
    Tick ack = 0;
    Tick last_ack = 0;
    for (int i = 0; i < 16; i++) {
        EXPECT_TRUE(cluster.ingest(1, chain.next(), 0, ack));
        EXPECT_GE(ack, last_ack);
        last_ack = ack;
    }
    const ShardIngestStats &st = cluster.shardStats(0);
    EXPECT_EQ(st.segmentsAccepted, 16u);
    EXPECT_EQ(st.backpressureStalls, 12u);
    EXPECT_TRUE(cluster.verifyAll());
}

TEST(BackupCluster, TightPendingBoundDelaysAcks)
{
    // Same burst against a tight and a loose queue bound: the tight
    // bound's credit-retry admission must show up as later acks, not
    // just a counter.
    auto run_with_bound = [](std::uint32_t max_pending) {
        BackupClusterConfig cfg = smallCluster(1);
        cfg.maxPending = max_pending;
        cfg.batchSegments = 100; // isolate the admission effect
        cfg.perSegmentProcessing = 70 * units::US;
        cfg.batchOverhead = 130 * units::US;
        cfg.backpressureRetryDelay = 200 * units::US;
        BackupCluster cluster(cfg);
        test::SegmentChain chain("dev");
        cluster.attachDevice(1, chain.codec());
        Tick ack = 0;
        for (int i = 0; i < 6; i++)
            cluster.ingest(1, chain.next(), 0, ack);
        return std::make_pair(
            ack, cluster.shardStats(0).backpressureStalls);
    };

    const auto [tight_ack, tight_stalls] = run_with_bound(2);
    const auto [loose_ack, loose_stalls] = run_with_bound(64);
    EXPECT_EQ(loose_stalls, 0u);
    EXPECT_GT(tight_stalls, 0u);
    EXPECT_GT(tight_ack, loose_ack);
}

TEST(BackupCluster, BacklogPercentilesTrackQueueing)
{
    BackupClusterConfig cfg = smallCluster(1);
    BackupCluster cluster(cfg);
    test::SegmentChain chain("dev");
    cluster.attachDevice(1, chain.codec());

    Tick ack = 0;
    for (int i = 0; i < 32; i++)
        cluster.ingest(1, chain.next(), 0, ack);

    const ShardIngestStats &st = cluster.shardStats(0);
    ASSERT_EQ(st.backlog.count(), 32u);
    // The last segment waited behind 31 others: p99 >> p50.
    EXPECT_GT(st.backlog.percentileNs(99),
              st.backlog.percentileNs(50));
}

TEST(BackupCluster, HotShardDoesNotSlowOthers)
{
    // Two devices on different shards: one floods its shard, the
    // other's acks stay at the idle-path latency.
    BackupClusterConfig cfg = smallCluster(8);
    BackupCluster cluster(cfg);

    // Find two devices that land on different shards.
    test::SegmentChain flood_chain("flood");
    test::SegmentChain quiet_chain("quiet");
    DeviceId flood_dev = 0;
    DeviceId quiet_dev = 1;
    while (cluster.placementOf(quiet_dev) ==
           cluster.placementOf(flood_dev)) {
        quiet_dev++;
    }
    cluster.attachDevice(flood_dev, flood_chain.codec());
    cluster.attachDevice(quiet_dev, quiet_chain.codec());

    Tick ack = 0;
    for (int i = 0; i < 64; i++)
        cluster.ingest(flood_dev, flood_chain.next(), 0, ack);
    EXPECT_GT(ack, 10 * cfg.perSegmentProcessing); // flooded shard

    Tick quiet_ack = 0;
    cluster.ingest(quiet_dev, quiet_chain.next(), 0, quiet_ack);
    EXPECT_EQ(quiet_ack,
              cfg.batchOverhead + cfg.perSegmentProcessing);
}

TEST(BackupCluster, RejectionsDoNotPoisonTheStream)
{
    BackupCluster cluster(smallCluster(1));
    test::SegmentChain chain("dev");
    cluster.attachDevice(1, chain.codec());

    Tick ack = 0;
    ASSERT_TRUE(cluster.ingest(1, chain.next(), 0, ack));
    const auto lost = chain.next(); // never delivered
    (void)lost;
    EXPECT_FALSE(cluster.ingest(1, chain.next(), 0, ack));
    EXPECT_EQ(cluster.shardStats(0).segmentsRejected, 1u);
    EXPECT_TRUE(cluster.verifyAll()); // store stayed clean
}

TEST(BackupCluster, RejectedWorkIsAccountedApartFromThePipeline)
{
    // A flood of refused segments must not launder itself into the
    // ingest pipeline's accounting: rejects get their own byte and
    // latency counters, never advance batchFill, and leave the
    // accepted backlog histogram untouched.
    BackupCluster cluster(smallCluster(1));
    test::SegmentChain chain("dev");
    cluster.attachDevice(1, chain.codec());

    Tick ack = 0;
    ASSERT_TRUE(cluster.ingest(1, chain.next(), 0, ack));
    const ShardIngestStats &before = cluster.shardStats(0);
    const std::uint64_t batches_before = before.batches;
    const std::uint32_t fill_before = before.maxBatchFill;
    const std::uint64_t backlog_before = before.backlog.count();

    ASSERT_TRUE(cluster.ingest(1, chain.next(), units::MS, ack));

    // 20 offers of a segment sealed after one the cluster never
    // saw: every one refused (ChainViolation), stored nowhere. (A
    // replayed *tail* would now be acked idempotently — quorum
    // retries rely on that — so the reject flood needs a genuinely
    // un-ingestable segment.)
    const auto lost = chain.next(); // never delivered
    (void)lost;
    const auto orphan = chain.next();
    std::uint64_t rejected_wire = 0;
    for (int i = 0; i < 20; i++) {
        EXPECT_FALSE(
            cluster.ingest(1, orphan, 2 * units::MS, ack));
        rejected_wire += orphan.wireSize();
    }

    const ShardIngestStats &st = cluster.shardStats(0);
    EXPECT_EQ(st.segmentsRejected, 20u);
    EXPECT_EQ(st.rejectedBytes, rejected_wire);
    EXPECT_EQ(st.rejectBacklog.count(), 20u);
    // Accepted-side accounting saw only the two accepted segments.
    EXPECT_EQ(st.segmentsAccepted, 2u);
    EXPECT_EQ(st.backlog.count(), backlog_before + 1);
    // No reject opened a batch or grew one: batch stats move only
    // with accepted segments.
    EXPECT_LE(st.batches, batches_before + 1);
    EXPECT_EQ(st.maxBatchFill, std::max(fill_before, 1u));
    EXPECT_DOUBLE_EQ(st.meanBatchSegments(),
                     static_cast<double>(st.segmentsAccepted) /
                         static_cast<double>(st.batches));
}

TEST(BackupCluster, EvictionHoldForwardsToThePinnedShard)
{
    BackupCluster cluster(smallCluster(2));
    test::SegmentChain chain("held-dev");
    const ShardId shard = cluster.attachDevice(3, chain.codec());

    EXPECT_FALSE(cluster.evictionHold(3));
    cluster.setEvictionHold(3, true);
    EXPECT_TRUE(cluster.evictionHold(3));
    EXPECT_TRUE(cluster.shardStore(shard).evictionHold(3));
    EXPECT_EQ(cluster.shardStore(shard).heldStreams(), 1u);
    cluster.setEvictionHold(3, false);
    EXPECT_FALSE(cluster.evictionHold(3));
}

TEST(BackupCluster, RunRetentionGcSweepsEveryShard)
{
    BackupClusterConfig cfg = smallCluster(2);
    cfg.shard.retention.gcEnabled = true;
    cfg.shard.retention.retentionWindow = 10 * units::MS;
    BackupCluster cluster(cfg);

    std::vector<test::SegmentChain> chains;
    for (int d = 0; d < 4; d++) {
        chains.emplace_back("sweep-" + std::to_string(d), 100 + d);
        cluster.attachDevice(d, chains.back().codec());
    }
    Tick ack = 0;
    for (int round = 0; round < 3; round++) {
        for (int d = 0; d < 4; d++) {
            ASSERT_TRUE(cluster.ingest(d, chains[d].next(2, 256),
                                       Tick(round) * units::MS,
                                       ack));
        }
    }
    ASSERT_EQ(cluster.totalSegments(), 12u);

    cluster.runRetentionGc(units::SEC); // far past the window
    EXPECT_EQ(cluster.totalSegments(), 0u);
    std::uint64_t pruned = 0;
    for (ShardId s = 0; s < cluster.shardCount(); s++)
        pruned += cluster.shardStore(s).stats().segmentsPruned;
    EXPECT_EQ(pruned, 12u);
    EXPECT_TRUE(cluster.verifyAll()); // re-anchors all verify
}

} // namespace
} // namespace rssd::remote
