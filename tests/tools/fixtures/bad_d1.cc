// rssd_lint fixture: every statement here is a D1 violation when the
// file sits under src/. Deliberately bad — never compiled, never
// scanned as part of the live tree (tests/tools/fixtures is
// excluded); the fixture suite copies it into a sandbox root.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace rssd::bad {

unsigned long
wallClockSeed()
{
    auto now = std::chrono::system_clock::now();            // D1
    (void)now;
    std::random_device rd;                                  // D1
    std::srand(static_cast<unsigned>(std::time(nullptr)));  // D1 x2
    if (std::getenv("RSSD_CHAOS") != nullptr)               // D1
        return static_cast<unsigned long>(rand());          // D1
    return rd();
}

} // namespace rssd::bad
