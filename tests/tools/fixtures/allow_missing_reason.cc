// rssd_lint fixture: an allow annotation without a reason is itself
// a finding (rule LINT) — an unexplained exception is exactly what
// the linter exists to prevent. Deliberately bad — never compiled.

#include <cstdlib>

namespace rssd::bad {

bool
chaosEnabled()
{
    return std::getenv("RSSD_CHAOS") != nullptr; // rssd-lint: allow(D1)
}

} // namespace rssd::bad
