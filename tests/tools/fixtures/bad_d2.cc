// rssd_lint fixture: unordered-container iteration inside a JSON
// emission TU — the exact latent bug class that breaks golden
// digests. Deliberately bad — never compiled.

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "sim/json.hh"

namespace rssd::bad {

struct Emitter
{
    std::unordered_map<int, int> counts_;
    std::unordered_set<std::string> names_;

    std::string
    toJson() const
    {
        std::string out;
        sim::JsonWriter j(out);
        j.open('{');
        for (const auto &[k, v] : counts_) {                // D2
            j.elem();
            j.u64(static_cast<unsigned long long>(k + v));
        }
        for (auto it = names_.begin(); it != names_.end(); ++it) // D2
            j.str(*it);
        j.close('}');
        return out;
    }
};

} // namespace rssd::bad
