// rssd_lint fixture: panicIf messages that build std::string
// temporaries — evaluated on every call even when the condition is
// false, the allocation bug the PR 2 hot-path work paid 4x for.
// Lands under src/log/ in the sandbox so the hot-path scoping
// applies. Deliberately bad — never compiled.

#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace rssd::bad {

void
checkField(std::uint64_t got, std::uint64_t want,
           const std::string &name)
{
    panicIf(got != want,
            "segment field " + name + " mismatch");          // P1
    panicIf(got > want,
            std::string("segment: overrun at ") +
                std::to_string(got));                        // P1
}

} // namespace rssd::bad
