// rssd_lint fixture: chain-custody primitives referenced from a file
// that is not on the C1 allowlist. Re-anchoring lives ONLY in
// SegmentChainVerifier::resumeFrom and its blessed callers.
// Deliberately bad — never compiled.

#include "log/chain_verify.hh"
#include "log/segment.hh"

namespace rssd::bad {

bool
sneakyReanchor(log::SegmentChainVerifier &v,
               const log::PruneRecord &rec,
               const log::SegmentCodec &codec)
{
    if (!codec.verifyPrune(rec))                            // C1
        return false;
    return v.resumeFrom(rec, codec);                        // C1
}

} // namespace rssd::bad
