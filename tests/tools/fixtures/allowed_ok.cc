// rssd_lint fixture: the same violations as bad_d1.cc, but every
// one carries a well-formed allow annotation with a reason — the
// linter must exit clean and count them as suppressed.
// Deliberately odd — never compiled.

#include <cstdlib>

namespace rssd::ok {

bool
chaosEnabled()
{
    // rssd-lint: allow-next-line(D1) fixture exercising next-line suppression
    return std::getenv("RSSD_CHAOS") != nullptr;
}

bool
chaosEnabledInline()
{
    return std::getenv("RSSD_CHAOS") != nullptr; // rssd-lint: allow(D1) fixture exercising same-line suppression
}

} // namespace rssd::ok
