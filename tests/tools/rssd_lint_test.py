#!/usr/bin/env python3
"""Fixture suite for tools/rssd_lint.py, run as one ctest entry
(ToolsLint.Fixtures).

Strategy: each case builds a sandbox root (a temp dir with the
fixture copied to a path that puts it in the right rule scope, e.g.
src/log/ for the P1 hot-path rule) and runs the real linter binary
against it, asserting on exit code and findings. The D3 cases
sandbox *copies of the real fleet report TU* and mutate them, so the
suite proves the exact acceptance property: deleting a j.key() from
fleet/report.cc without bumping kFleetReportSchema fails the lint.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "rssd_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args, root=None):
    cmd = [sys.executable, LINT]
    if root is not None:
        cmd += ["--root", root]
    cmd += list(args)
    return subprocess.run(cmd, capture_output=True, text=True)


def sandbox_with(tmp, mapping):
    """Copy fixture/repo files into tmp at the given relative paths."""
    for src, rel in mapping.items():
        dst = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copyfile(src, dst)
    return tmp


def findings_of(proc_json_path):
    with open(proc_json_path) as f:
        return json.load(f)


class LintFixtureTest(unittest.TestCase):

    def lint_json(self, root, *args):
        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tf:
            out = tf.name
        try:
            proc = run_lint("--json", out, "--quiet", *args,
                            root=root)
            report = findings_of(out)
        finally:
            os.unlink(out)
        return proc, report

    def assert_rule_fires(self, report, rule, min_count=1):
        hits = [f for f in report["findings"]
                if f["rule"] == rule and not f["suppressed"]]
        self.assertGreaterEqual(
            len(hits), min_count,
            f"expected >= {min_count} unsuppressed {rule} finding(s), "
            f"got: {report['findings']}")
        return hits

    # -- one sandbox per rule ------------------------------------------

    def test_d1_fires_on_nondeterminism_sources(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "bad_d1.cc"):
                    "src/core/bad_d1.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1, proc.stderr)
            hits = self.assert_rule_fires(report, "D1", 5)
            flagged = " ".join(h["message"] for h in hits)
            for src in ("system_clock", "random_device", "getenv",
                        "time", "rand"):
                self.assertIn(f"`{src}`", flagged)

    def test_d1_ignores_tests_area(self):
        # The same file under tests/ is out of D1 scope.
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "bad_d1.cc"):
                    "tests/core/bad_d1.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_d2_fires_on_unordered_iteration_in_emission_tu(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "bad_d2.cc"):
                    "src/fleet/bad_d2.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            hits = self.assert_rule_fires(report, "D2", 2)
            msgs = " ".join(h["message"] for h in hits)
            self.assertIn("counts_", msgs)   # range-for
            self.assertIn("names_", msgs)    # iterator walk

    def test_d2_quiet_without_emitter(self):
        # Identical unordered iteration in a TU that never emits —
        # out of D2 scope.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "src", "core", "counting.cc")
            os.makedirs(os.path.dirname(path))
            with open(os.path.join(FIXTURES, "bad_d2.cc")) as f:
                body = f.read()
            body = body.replace('#include "sim/json.hh"\n', "")
            body = body.replace("sim::JsonWriter j(out);", "")
            with open(path, "w") as f:
                f.write(body)
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 0,
                             report["findings"])

    def test_c1_fires_outside_allowlist(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "bad_c1.cc"):
                    "src/detect/bad_c1.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            hits = self.assert_rule_fires(report, "C1", 2)
            msgs = " ".join(h["message"] for h in hits)
            self.assertIn("resumeFrom", msgs)
            self.assertIn("verifyPrune", msgs)

    def test_c1_quiet_on_allowlisted_file(self):
        # The same references are fine from the owning layer.
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "bad_c1.cc"):
                    "src/log/chain_verify.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 0,
                             report["findings"])

    def test_p1_fires_in_hot_path(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "bad_p1.cc"):
                    "src/log/bad_p1.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            self.assert_rule_fires(report, "P1", 2)

    def test_p1_quiet_outside_hot_path(self):
        # Cold paths may build rich messages (obs/ does, on purpose).
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "bad_p1.cc"):
                    "src/obs/bad_p1.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 0,
                             report["findings"])

    # -- suppression ----------------------------------------------------

    def test_allow_annotations_suppress_with_reason(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "allowed_ok.cc"):
                    "src/core/allowed_ok.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 0, report["findings"])
            self.assertEqual(report["counts"]["suppressed"], 2)
            for f in report["findings"]:
                self.assertTrue(f["suppressed"])
                self.assertTrue(f["reason"])

    def test_allow_without_reason_is_a_finding(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, {
                os.path.join(FIXTURES, "allow_missing_reason.cc"):
                    "src/core/allow_missing_reason.cc"})
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            self.assert_rule_fires(report, "LINT", 1)

    # -- D3: the schema-manifest contract -------------------------------

    D3_FILES = {
        os.path.join(REPO, "src/fleet/report.cc"):
            "src/fleet/report.cc",
        os.path.join(REPO, "src/fleet/report.hh"):
            "src/fleet/report.hh",
        os.path.join(REPO, "tools/manifests/fleet_report.keys"):
            "tools/manifests/fleet_report.keys",
    }

    def test_d3_clean_on_pinned_tree(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, self.D3_FILES)
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 0, report["findings"])

    def d3_mutate(self, tmp, drop_key=True, bump_schema=False):
        tu = os.path.join(tmp, "src/fleet/report.cc")
        hh = os.path.join(tmp, "src/fleet/report.hh")
        if drop_key:
            with open(tu) as f:
                body = f.read()
            mutated = body.replace(
                '    j.key("makespanNs"); j.u64(makespan);\n', "")
            assert mutated != body, "mutation target vanished"
            with open(tu, "w") as f:
                f.write(mutated)
        if bump_schema:
            with open(hh) as f:
                body = f.read()
            mutated = re.sub(
                r"(kFleetReportSchema = )(\d+)",
                lambda m: m.group(1) + str(int(m.group(2)) + 1),
                body)
            assert mutated != body
            with open(hh, "w") as f:
                f.write(mutated)

    def test_d3_key_removal_without_bump_fails(self):
        # THE acceptance property of this PR.
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, self.D3_FILES)
            self.d3_mutate(tmp, drop_key=True, bump_schema=False)
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            hits = self.assert_rule_fires(report, "D3", 1)
            self.assertIn("makespanNs", hits[0]["message"])
            self.assertIn("bump", hits[0]["message"])

    def test_d3_fix_manifests_refuses_without_bump(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, self.D3_FILES)
            self.d3_mutate(tmp, drop_key=True, bump_schema=False)
            proc = run_lint("--fix-manifests", root=tmp)
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("REFUSED", proc.stderr)

    def test_d3_bumped_schema_drifts_until_repinned(self):
        with tempfile.TemporaryDirectory() as tmp:
            sandbox_with(tmp, self.D3_FILES)
            self.d3_mutate(tmp, drop_key=True, bump_schema=True)
            # Drift still fails (the manifest is stale) ...
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            hits = self.assert_rule_fires(report, "D3", 1)
            self.assertIn("--fix-manifests", hits[0]["message"])
            # ... --fix-manifests accepts the deliberate change ...
            proc = run_lint("--fix-manifests", root=tmp)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            # ... and the round-trip is clean and idempotent.
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 0, report["findings"])
            proc = run_lint("--fix-manifests", root=tmp)
            self.assertEqual(proc.returncode, 0)
            self.assertIn("up to date", proc.stdout)

    def test_d3_missing_manifest_is_a_finding(self):
        with tempfile.TemporaryDirectory() as tmp:
            files = dict(self.D3_FILES)
            del files[os.path.join(
                REPO, "tools/manifests/fleet_report.keys")]
            sandbox_with(tmp, files)
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            hits = self.assert_rule_fires(report, "D3", 1)
            self.assertIn("no manifest", hits[0]["message"])

    def test_d3_uncovered_schema_emitter_is_a_finding(self):
        # A new src TU that emits a "schema" key must be added to the
        # spec list — the spec list cannot silently rot.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "src", "fleet", "newreport.cc")
            os.makedirs(os.path.dirname(path))
            with open(path, "w") as f:
                f.write('#include "sim/json.hh"\n'
                        "void emit(rssd::sim::JsonWriter &j) {\n"
                        '    j.key("schema"); j.u64(1);\n'
                        "}\n")
            proc, report = self.lint_json(tmp)
            self.assertEqual(proc.returncode, 1)
            hits = self.assert_rule_fires(report, "D3", 1)
            self.assertIn("no manifest spec", hits[0]["message"])

    # -- whole-tool properties ------------------------------------------

    def test_list_rules_names_all_five(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("D1", "D2", "D3", "C1", "P1"):
            self.assertIn(rule, proc.stdout)

    def test_live_tree_is_clean(self):
        proc, report = self.lint_json(REPO)
        self.assertEqual(
            proc.returncode, 0,
            "live tree has lint findings:\n" + json.dumps(
                [f for f in report["findings"]
                 if not f["suppressed"]], indent=2))
        # Every suppression in the tree carries a reason.
        for f in report["findings"]:
            self.assertTrue(f["suppressed"] and f["reason"], f)

    def test_json_report_shape(self):
        proc, report = self.lint_json(REPO)
        self.assertEqual(report["tool"], "rssd_lint")
        self.assertIn(report["engine"], ("tokenizer", "libclang"))
        self.assertGreater(report["filesScanned"], 100)
        self.assertEqual(
            {r["id"] for r in report["rules"]},
            {"D1", "D2", "D3", "C1", "P1", "LINT"})


if __name__ == "__main__":
    unittest.main(verbosity=2)
