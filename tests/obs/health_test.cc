/**
 * @file
 * Tests for the fleet health layer's two obs units:
 *
 *  - TimeSeriesSampler: JSONL row shape, registration-order keys,
 *    integer windowed rates (backwards counters rate as 0, Levels are
 *    never rate-derived), byte-determinism of the accumulated file,
 *    and the misuse panics (non-increasing tick, registry growth).
 *
 *  - HealthMonitor: edge-triggered raise/clear hysteresis, the
 *    holdFor debounce (a transient breach shorter than the hold never
 *    raises), severity ordering via worstRaised(), Rate-signal rules,
 *    and the bind-time panics (unknown metric, Rate over non-Counter,
 *    empty rule id).
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "obs/health.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "sim/units.hh"

namespace rssd::obs {
namespace {

TEST(TimeSeries, RowShapeAndRegistrationOrder)
{
    std::uint64_t ops = 3;
    std::uint64_t depth = 2;
    MetricsRegistry r;
    r.counter("zulu.ops", [&ops] { return ops; });
    r.level("alpha.depth", [&depth] { return depth; });
    r.gauge("mike.fill", [] { return 0.25; });

    TimeSeriesSampler s(r);
    EXPECT_EQ(s.samples(), 0u);
    s.sample(1 * units::MS);
    EXPECT_EQ(s.samples(), 1u);
    EXPECT_EQ(s.lastSampleAt(), 1 * units::MS);

    const std::string &row = s.jsonl();
    EXPECT_EQ(row.rfind("{\"schema\":1,\"tick\":1000000,\"seq\":0,", 0),
              0u)
        << row;
    // Registration order inside "metrics", not lexical order.
    const std::size_t z = row.find("\"zulu.ops\":3");
    const std::size_t a = row.find("\"alpha.depth\":2");
    const std::size_t m = row.find("\"mike.fill\":0.25");
    ASSERT_NE(z, std::string::npos) << row;
    ASSERT_NE(a, std::string::npos) << row;
    ASSERT_NE(m, std::string::npos) << row;
    EXPECT_LT(z, a);
    EXPECT_LT(a, m);
    // Exactly one newline-terminated row per sample.
    EXPECT_EQ(row.back(), '\n');
    EXPECT_EQ(row.find('\n'), row.size() - 1);
}

TEST(TimeSeries, WindowedRatesAreIntegerPerSecond)
{
    std::uint64_t ops = 0;
    std::uint64_t depth = 5;
    MetricsRegistry r;
    r.counter("ops", [&ops] { return ops; });
    r.level("depth", [&depth] { return depth; });
    TimeSeriesSampler s(r);

    s.sample(1 * units::MS);
    // No window yet: every rate is 0.
    EXPECT_EQ(s.ratePerSec(0), 0u);

    ops = 5; // +5 over the 1ms window -> 5000/sec
    s.sample(2 * units::MS);
    EXPECT_EQ(s.ratePerSec(0), 5000u);
    // Levels are never rate-derived.
    EXPECT_EQ(s.ratePerSec(1), 0u);
    EXPECT_NE(s.jsonl().find("\"rates\":{\"ops\":5000}"),
              std::string::npos)
        << s.jsonl();

    // A counter moving backwards (provider bug) rates as 0, not an
    // underflowed huge number.
    ops = 2;
    s.sample(3 * units::MS);
    EXPECT_EQ(s.ratePerSec(0), 0u);
}

TEST(TimeSeries, SameStateSameBytes)
{
    auto run = [](std::string &out) {
        std::uint64_t ops = 0;
        MetricsRegistry r;
        r.counter("ops", [&ops] { return ops; });
        r.gauge("fill", [] { return 0.1; });
        TimeSeriesSampler s(r);
        for (Tick t = 1; t <= 4; t++) {
            ops += 7 * t;
            s.sample(t * units::MS);
        }
        out = s.jsonl();
    };
    std::string a, b;
    run(a);
    run(b);
    EXPECT_EQ(a, b);
    // The gauge renders via the pinned %.17g path.
    EXPECT_NE(a.find("\"fill\":0.10000000000000001"),
              std::string::npos)
        << a;
}

TEST(TimeSeries, MisusePanics)
{
    MetricsRegistry r;
    r.counter("ops", [] { return std::uint64_t{1}; });
    TimeSeriesSampler s(r);
    s.sample(1 * units::MS);
    // The rate window would be zero-width.
    EXPECT_DEATH(s.sample(1 * units::MS), "increas");
    // Registering after the first sample would shear the rows.
    r.counter("late", [] { return std::uint64_t{0}; });
    EXPECT_DEATH(s.sample(2 * units::MS), "grew");
}

/** A registry over one mutable counter and one mutable level, plus a
 *  sampler/monitor pair — the fixture every rule test drives. */
struct Harness
{
    std::uint64_t ops = 0;
    std::uint64_t depth = 0;
    MetricsRegistry registry;
    TimeSeriesSampler sampler{makeRegistry()};
    Tick now = 0;

    const MetricsRegistry &makeRegistry()
    {
        registry.counter("ops", [this] { return ops; });
        registry.level("depth", [this] { return depth; });
        return registry;
    }

    /** Advance one 1ms step and evaluate @p mon. */
    void step(HealthMonitor &mon)
    {
        now += 1 * units::MS;
        sampler.sample(now);
        mon.evaluate(now);
    }
};

TEST(HealthMonitor, EdgeTriggeredRaiseAndClear)
{
    Harness h;
    HealthMonitor mon(h.sampler, {{"deep", "depth", Signal::Value,
                                   Cmp::Gt, 3, 0, Severity::Warn}});

    h.step(mon); // depth 0: healthy
    EXPECT_EQ(mon.alerts().size(), 0u);

    h.depth = 5;
    h.step(mon); // breach -> raise
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_TRUE(mon.alerts()[0].open);
    EXPECT_EQ(mon.alerts()[0].raisedAt, 2 * units::MS);
    EXPECT_EQ(mon.alerts()[0].observed, 5u);
    EXPECT_EQ(mon.openCount(), 1u);

    h.depth = 9;
    h.step(mon); // still breaching -> no second raise
    EXPECT_EQ(mon.alerts().size(), 1u);

    h.depth = 3;
    h.step(mon); // back under -> clear
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_FALSE(mon.alerts()[0].open);
    EXPECT_EQ(mon.alerts()[0].clearedAt, 4 * units::MS);
    EXPECT_EQ(mon.openCount(), 0u);

    h.depth = 7;
    h.step(mon); // second episode -> second alert
    EXPECT_EQ(mon.alerts().size(), 2u);
    EXPECT_EQ(mon.raisedCount(0), 2u);
}

TEST(HealthMonitor, HoldForDebouncesTransients)
{
    Harness h;
    HealthMonitor mon(h.sampler,
                      {{"deep", "depth", Signal::Value, Cmp::Ge, 1,
                        2 * units::MS, Severity::Warn}});

    // One noisy sample, then healthy again: never raises.
    h.depth = 4;
    h.step(mon);
    h.depth = 0;
    h.step(mon);
    EXPECT_EQ(mon.alerts().size(), 0u);

    // A sustained breach raises once the hold elapses: breach first
    // seen at t=3ms, hold 2ms -> raise at t=5ms.
    h.depth = 4;
    h.step(mon); // 3ms: breach starts
    EXPECT_EQ(mon.alerts().size(), 0u);
    h.step(mon); // 4ms: held 1ms
    EXPECT_EQ(mon.alerts().size(), 0u);
    h.step(mon); // 5ms: held 2ms -> raise
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_EQ(mon.alerts()[0].raisedAt, 5 * units::MS);
}

TEST(HealthMonitor, RateRulesWatchTheWindowedRate)
{
    Harness h;
    HealthMonitor mon(h.sampler, {{"busy", "ops", Signal::Rate,
                                   Cmp::Gt, 0, 0, Severity::Info}});

    h.ops = 100;
    h.step(mon); // first sample: no window yet, rate 0 -> healthy
    EXPECT_EQ(mon.alerts().size(), 0u);

    h.ops = 200;
    h.step(mon); // +100/ms -> raise
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_EQ(mon.alerts()[0].observed, 100 * 1000u);

    h.step(mon); // flat window -> clear
    EXPECT_FALSE(mon.alerts()[0].open);
}

TEST(HealthMonitor, WorstRaisedOrdersSeverities)
{
    Harness h;
    HealthMonitor mon(
        h.sampler,
        {{"warnful", "depth", Signal::Value, Cmp::Ge, 1, 0,
          Severity::Warn},
         {"critical", "ops", Signal::Value, Cmp::Ge, 10, 0,
          Severity::Critical}});

    h.step(mon);
    EXPECT_EQ(mon.worstRaised(), Severity::Info); // nothing raised
    EXPECT_STREQ(severityName(mon.worstRaised()), "info");

    h.depth = 1;
    h.step(mon);
    EXPECT_EQ(mon.worstRaised(), Severity::Warn);

    h.ops = 10;
    h.step(mon);
    EXPECT_EQ(mon.worstRaised(), Severity::Critical);
    EXPECT_STREQ(severityName(mon.worstRaised()), "critical");

    // worstRaised() is sticky over history, not just open alerts.
    h.depth = 0;
    h.ops = 0;
    h.step(mon);
    EXPECT_EQ(mon.openCount(), 0u);
    EXPECT_EQ(mon.worstRaised(), Severity::Critical);
}

TEST(HealthMonitor, BindTimePanics)
{
    Harness h;
    EXPECT_DEATH(HealthMonitor(h.sampler,
                               {{"r", "no.such.metric", Signal::Value,
                                 Cmp::Gt, 0, 0, Severity::Warn}}),
                 "no.such.metric");
    EXPECT_DEATH(HealthMonitor(h.sampler,
                               {{"r", "depth", Signal::Rate, Cmp::Gt,
                                 0, 0, Severity::Warn}}),
                 "[Rr]ate");
    EXPECT_DEATH(HealthMonitor(h.sampler,
                               {{"", "ops", Signal::Value, Cmp::Gt, 0,
                                 0, Severity::Warn}}),
                 "id");
}

} // namespace
} // namespace rssd::obs
