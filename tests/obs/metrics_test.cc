/**
 * @file
 * Tests for the sampled MetricsRegistry: registration-order emission,
 * live-state sampling at snapshot time, histogram rendering,
 * duplicate-name rejection, snapshot determinism, and the fleet-level
 * instrument surface a FleetScheduler registers.
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "fleet/scheduler.hh"
#include "obs/metrics.hh"
#include "sim/stats.hh"

#include "tests/common/json_checker.hh"

namespace rssd::obs {
namespace {

using test::JsonChecker;

TEST(MetricsRegistry, EmitsInRegistrationOrder)
{
    MetricsRegistry r;
    r.counter("zulu", [] { return std::uint64_t{1}; });
    r.counter("alpha", [] { return std::uint64_t{2}; });
    r.gauge("mike", [] { return 0.5; });
    EXPECT_EQ(r.size(), 3u);

    const std::string json = r.snapshotJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // Registration order, not lexical order.
    const std::size_t z = json.find("\"zulu\"");
    const std::size_t a = json.find("\"alpha\"");
    const std::size_t m = json.find("\"mike\"");
    ASSERT_NE(z, std::string::npos);
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    EXPECT_LT(z, a);
    EXPECT_LT(a, m);
    EXPECT_EQ(json.rfind("{\"schema\":1,\"metrics\":{", 0), 0u);
}

TEST(MetricsRegistry, SamplesLiveStateAtSnapshotTime)
{
    std::uint64_t ops = 0;
    MetricsRegistry r;
    r.counter("ops", [&ops] { return ops; });

    EXPECT_NE(r.snapshotJson().find("\"ops\":0"), std::string::npos);
    ops = 41;
    ops++;
    EXPECT_NE(r.snapshotJson().find("\"ops\":42"), std::string::npos);
}

TEST(MetricsRegistry, HistogramRendersSummaryFields)
{
    LatencyHistogram h;
    h.add(100);
    h.add(200);
    h.add(1000000);
    MetricsRegistry r;
    r.histogram("lat", [&h] { return h; });

    const std::string json = r.snapshotJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"lat\":{"), std::string::npos);
    EXPECT_NE(json.find("\"count\":3"), std::string::npos);
    EXPECT_NE(json.find("\"maxNs\":1000000"), std::string::npos);
    for (const char *key : {"\"meanNs\":", "\"p50Ns\":", "\"p99Ns\":"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(MetricsRegistry, SnapshotsAreDeterministic)
{
    // The same registrations against the same state must render the
    // same bytes — the CI smoke job byte-compares metrics files.
    auto build = [](MetricsRegistry &r) {
        r.counter("a.ops", [] { return std::uint64_t{7}; });
        r.gauge("a.fill", [] { return 0.25; });
        LatencyHistogram h;
        h.add(500);
        r.histogram("a.lat", [h] { return h; });
    };
    MetricsRegistry r1, r2;
    build(r1);
    build(r2);
    EXPECT_EQ(r1.snapshotJson(), r2.snapshotJson());
}

TEST(MetricsRegistry, DuplicateOrEmptyNamesPanic)
{
    MetricsRegistry r;
    r.counter("dup", [] { return std::uint64_t{0}; });
    EXPECT_DEATH(r.counter("dup", [] { return std::uint64_t{1}; }),
                 "duplicate");
    EXPECT_DEATH(r.gauge("dup", [] { return 1.0; }), "duplicate");
    EXPECT_DEATH(r.counter("", [] { return std::uint64_t{0}; }),
                 "empty");
    // The panic names the offending instrument — a duplicate in a
    // 200-instrument fleet registry must be findable from the
    // message alone.
    EXPECT_DEATH(r.level("dup", [] { return std::uint64_t{2}; }),
                 "\"dup\"");
}

TEST(MetricsRegistry, DoublesRenderViaThePinnedFormat)
{
    // The documented determinism contract: gauges and histogram
    // means render via %.17g — 17 significant digits round-trip
    // every IEEE-754 double, so identical samples give identical
    // bytes. 0.1 is the canonical non-representable value.
    MetricsRegistry r;
    r.gauge("fill", [] { return 0.1; });
    r.gauge("third", [] { return 1.0 / 3.0; });
    r.gauge("whole", [] { return 2.0; });
    const std::string json = r.snapshotJson();
    EXPECT_NE(json.find("\"fill\":0.10000000000000001"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"third\":0.33333333333333331"),
              std::string::npos)
        << json;
    // %g drops trailing zeros: exact values stay compact.
    EXPECT_NE(json.find("\"whole\":2"), std::string::npos) << json;
}

TEST(MetricsRegistry, IntrospectionSurfaceForTheHealthLayer)
{
    // nameAt/kindAt/indexOf/sampleInto feed the TimeSeriesSampler
    // and HealthMonitor without JSON parsing.
    std::uint64_t depth = 4;
    MetricsRegistry r;
    r.counter("ops", [] { return std::uint64_t{9}; });
    r.level("depth", [&depth] { return depth; });
    r.gauge("fill", [] { return 0.5; });

    EXPECT_EQ(r.indexOf("ops"), 0u);
    EXPECT_EQ(r.indexOf("depth"), 1u);
    EXPECT_EQ(r.indexOf("missing"), MetricsRegistry::npos);
    EXPECT_EQ(r.nameAt(1), "depth");
    EXPECT_EQ(r.kindAt(0), InstrumentKind::Counter);
    EXPECT_EQ(r.kindAt(1), InstrumentKind::Level);
    EXPECT_EQ(r.kindAt(2), InstrumentKind::Gauge);

    std::vector<MetricSample> out;
    r.sampleInto(out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].u64, 9u);
    EXPECT_EQ(out[1].u64, 4u);
    EXPECT_DOUBLE_EQ(out[2].f64, 0.5);
    // Levels are point-in-time: a later sample sees the new value.
    depth = 1;
    r.sampleInto(out);
    EXPECT_EQ(out[1].u64, 1u);
}

TEST(MetricsRegistry, FleetRegistersTheInstrumentSurface)
{
    fleet::FleetConfig cfg;
    cfg.devices = 4;
    cfg.shards = 2;
    cfg.replication = 2;
    cfg.seed = 7;
    cfg.opsPerDevice = 20;
    cfg.campaign.scenario = fleet::Scenario::Outbreak;
    cfg.campaign.victimPages = 8;
    cfg.repair.enabled = true;

    fleet::FleetScheduler sched(cfg);
    MetricsRegistry r;
    sched.registerMetrics(r);
    EXPECT_GT(r.size(), 0u);
    sched.run();

    const std::string json = r.snapshotJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
    for (const char *key :
         {"\"device.0.offload.segmentsSealed\"",
          "\"device.0.offload.sealLatency\"",
          "\"cluster.quorumWrites\"",
          "\"cluster.shard.0.segmentsAccepted\"",
          "\"repair.segmentsCopied\"", "\"repair.copyLatency\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }

    // Snapshot determinism end to end: a second identical run's
    // snapshot is byte-identical.
    fleet::FleetScheduler sched2(cfg);
    MetricsRegistry r2;
    sched2.registerMetrics(r2);
    sched2.run();
    EXPECT_EQ(json, r2.snapshotJson());
}

} // namespace
} // namespace rssd::obs
