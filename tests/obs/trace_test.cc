/**
 * @file
 * Tests for the deterministic trace sink: event recording order,
 * Chrome trace_event / JSONL rendering, span and flow semantics, and
 * the two fleet-level acceptance pins — same-seed byte-identical
 * traces, and a byte-identical FleetReport with tracing on vs. off
 * (tracing is strictly read-only).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/scheduler.hh"
#include "obs/trace.hh"

#include "tests/common/json_checker.hh"

namespace rssd::obs {
namespace {

using test::JsonChecker;

/** Count occurrences of @p needle in @p hay. */
std::size_t
countSub(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle);
         pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size())) {
        n++;
    }
    return n;
}

TEST(TraceSink, RecordsEventsInCallOrder)
{
    TraceSink sink;
    sink.complete("cat", "outer", kTrackDevices, 3, 100, 900);
    sink.complete("cat", "inner", kTrackDevices, 3, 200, 400,
                  {{"segment", 7}});
    sink.instant("cat", "mark", kTrackDevices, 3, 300);
    EXPECT_EQ(sink.eventCount(), 3u);

    // Storage is call order, not timestamp order — that is what
    // makes the file deterministic without a sort.
    const std::string jsonl = sink.toJsonl();
    const std::size_t outer = jsonl.find("\"outer\"");
    const std::size_t inner = jsonl.find("\"inner\"");
    const std::size_t mark = jsonl.find("\"mark\"");
    ASSERT_NE(outer, std::string::npos);
    ASSERT_NE(inner, std::string::npos);
    ASSERT_NE(mark, std::string::npos);
    EXPECT_LT(outer, inner);
    EXPECT_LT(inner, mark);
}

TEST(TraceSink, CompleteEventCarriesDurationAndArgs)
{
    TraceSink sink;
    sink.complete("offload", "seal", kTrackDevices, 2, 1000, 1500,
                  {{"segment", 42}, {"bytes", 4096}});
    const std::string json = sink.toChromeJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":500"), std::string::npos);
    EXPECT_NE(json.find("\"segment\":42"), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(TraceSink, InstantEventIsThreadScoped)
{
    TraceSink sink;
    sink.instant("retention", "prune", kTrackCluster, 1, 777,
                 {{"stream", 5}});
    const std::string json = sink.toChromeJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":777"), std::string::npos);
}

TEST(TraceSink, FlowEventsShareAnIdAcrossTracks)
{
    TraceSink sink;
    const std::uint64_t flow = (std::uint64_t{3} << 32) | 9u;
    sink.flowBegin("offload", "capsule", flow, kTrackDevices, 3, 10);
    sink.flowEnd("offload", "capsule", flow, kTrackCluster, 0, 60);
    const std::string json = sink.toChromeJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_EQ(countSub(json, "\"ph\":\"s\""), 1u);
    EXPECT_EQ(countSub(json, "\"ph\":\"f\""), 1u);
    // The terminating flow event binds to the enclosing slice.
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    // Both ends carry the same id.
    EXPECT_EQ(countSub(json, "\"id\":" + std::to_string(flow)), 2u);
}

TEST(TraceSink, MetadataNamesTracks)
{
    TraceSink sink;
    sink.setProcessName(kTrackDevices, "devices");
    sink.setThreadName(kTrackDevices, 4, "device 4");
    const std::string json = sink.toChromeJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"devices\""), std::string::npos);
    EXPECT_NE(json.find("\"device 4\""), std::string::npos);
}

TEST(TraceSink, ChromeDocumentShape)
{
    TraceSink sink;
    sink.complete("a", "b", 1, 1, 0, 1);
    const std::string json = sink.toChromeJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // One object wrapping traceEvents, as chrome://tracing expects.
    EXPECT_EQ(
        json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0),
        0u);
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST(TraceSink, JsonlEveryLineIsAnObject)
{
    TraceSink sink;
    sink.setProcessName(kTrackFleet, "fleet");
    sink.instant("fleet", "crash-shard", kTrackFleet, 0, 123,
                 {{"shard", 1}});
    sink.complete("repair", "copy", kTrackRepair, 2, 130, 190,
                  {{"device", 6}});
    const std::string jsonl = sink.toJsonl();
    std::size_t lines = 0;
    std::size_t start = 0;
    while (start < jsonl.size()) {
        std::size_t nl = jsonl.find('\n', start);
        ASSERT_NE(nl, std::string::npos) << "missing final newline";
        const std::string line = jsonl.substr(start, nl - start);
        EXPECT_TRUE(JsonChecker(line).valid()) << line;
        EXPECT_EQ(line.front(), '{');
        lines++;
        start = nl + 1;
    }
    EXPECT_EQ(lines, sink.eventCount());
}

TEST(TraceSpan, CollectsArgsAndEmitsOnce)
{
    TraceSink sink;
    Span span(&sink, "offload", "seal", kTrackDevices, 0, 50);
    span.arg("segment", 3).arg("entries", 12);
    EXPECT_EQ(sink.eventCount(), 0u); // nothing until end()
    span.end(80);
    EXPECT_EQ(sink.eventCount(), 1u);
    span.end(90); // second end is a no-op
    EXPECT_EQ(sink.eventCount(), 1u);

    const std::string json = sink.toChromeJson();
    EXPECT_NE(json.find("\"dur\":30"), std::string::npos);
    EXPECT_NE(json.find("\"segment\":3"), std::string::npos);
    EXPECT_NE(json.find("\"entries\":12"), std::string::npos);
}

TEST(TraceSpan, NullSinkIsSafe)
{
    Span span(nullptr, "offload", "seal", kTrackDevices, 0, 50);
    span.arg("segment", 3);
    span.end(80); // must not crash or emit
}

// ---------------------------------------------------------------------------
// Fleet-level acceptance pins.
// ---------------------------------------------------------------------------

/** The acceptance outbreak: 16 devices -> 4 shards with replication,
 *  a mid-campaign shard crash, bit rot, and repair — every lifecycle
 *  stage (seal, park, queue, batch, quorum, repair copy, scrub, GC
 *  prune, membership) is exercised. Kept small via opsPerDevice. */
fleet::FleetConfig
tracedFleet()
{
    fleet::FleetConfig cfg;
    cfg.devices = 16;
    cfg.shards = 4;
    cfg.replication = 3;
    cfg.seed = 7;
    cfg.opsPerDevice = 40;
    cfg.campaign.scenario = fleet::Scenario::Outbreak;
    cfg.campaign.victimPages = 16;
    // Crash mid-outbreak while streams hold data (repair must move
    // bytes), then rot a stored copy under the scrubber — the same
    // shape as tests/fleet/repair_fleet_test's healingFleet().
    cfg.membership.push_back(
        {100 * units::MS, fleet::MembershipKind::CrashShard, 1});
    cfg.bitRot.push_back({110 * units::MS, 2, 1, 2});
    cfg.repair.enabled = true;
    cfg.repair.scrubInterval = 10 * units::MS;
    return cfg;
}

TEST(TraceFleet, SameSeedByteIdenticalTrace)
{
    TraceSink a, b;
    fleet::FleetScheduler sa(tracedFleet());
    sa.attachTrace(&a);
    sa.run();
    fleet::FleetScheduler sb(tracedFleet());
    sb.attachTrace(&b);
    sb.run();

    ASSERT_GT(a.eventCount(), 0u);
    EXPECT_EQ(a.eventCount(), b.eventCount());
    EXPECT_EQ(a.toChromeJson(), b.toChromeJson());
    EXPECT_EQ(a.toJsonl(), b.toJsonl());
}

TEST(TraceFleet, TraceIsWellFormedAndCoversLifecycle)
{
    TraceSink sink;
    fleet::FleetScheduler sched(tracedFleet());
    sched.attachTrace(&sink);
    sched.run();

    const std::string json = sink.toChromeJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);

    // Every lifecycle stage the issue names must appear.
    for (const char *name :
         {"\"seal\"", "\"quorum\"", "\"copy\"", "\"scrub-step\"",
          "\"crash-shard\"", "\"bit-rot\""}) {
        EXPECT_NE(json.find(name), std::string::npos) << name;
    }
    // Capsule flows are balanced: every 's' has its 'f'.
    EXPECT_EQ(countSub(json, "\"ph\":\"s\""),
              countSub(json, "\"ph\":\"f\""));
    EXPECT_GT(countSub(json, "\"ph\":\"s\""), 0u);
}

TEST(TraceFleet, TracingOffReproducesTheReportByteForByte)
{
    // The zero-overhead-when-off pin: attaching a sink must never
    // perturb simulation state, so the schema-6 report is identical
    // with tracing on or off.
    fleet::FleetScheduler traced(tracedFleet());
    TraceSink sink;
    traced.attachTrace(&sink);
    const std::string with = traced.run().toJson();

    fleet::FleetScheduler plain(tracedFleet());
    const std::string without = plain.run().toJson();

    EXPECT_EQ(with, without);
    EXPECT_GT(sink.eventCount(), 0u);
}

} // namespace
} // namespace rssd::obs
