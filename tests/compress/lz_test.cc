/**
 * @file
 * LZ compressor tests: exact roundtrip over adversarial inputs and
 * ratio behaviour over controlled-redundancy data.
 */

#include <gtest/gtest.h>

#include "compress/lz.hh"
#include "sim/rng.hh"

namespace rssd::compress {
namespace {

void
expectRoundtrip(const Bytes &input)
{
    const Bytes packed = lzCompress(input);
    const Bytes unpacked = lzDecompress(packed, input.size());
    ASSERT_EQ(unpacked, input);
}

TEST(Lz, EmptyInput)
{
    expectRoundtrip({});
    EXPECT_TRUE(lzCompress({}).empty());
}

TEST(Lz, TinyInputs)
{
    expectRoundtrip({0x42});
    expectRoundtrip({1, 2});
    expectRoundtrip({1, 2, 3});
    expectRoundtrip({1, 2, 3, 4});
}

TEST(Lz, AllSameByteCompressesWell)
{
    Bytes input(4096, 0x55);
    const Bytes packed = lzCompress(input);
    expectRoundtrip(input);
    EXPECT_LT(packed.size(), input.size() / 10);
}

TEST(Lz, RepeatedPatternCompresses)
{
    Bytes input;
    const char *pattern = "hello flash world! ";
    for (int i = 0; i < 400; i++)
        input.insert(input.end(), pattern, pattern + 19);
    const Bytes packed = lzCompress(input);
    expectRoundtrip(input);
    EXPECT_LT(packed.size(), input.size() / 4);
}

TEST(Lz, RandomDataExpandsOnlyMildly)
{
    rssd::Rng rng(99);
    Bytes input(8192);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.next());
    const Bytes packed = lzCompress(input);
    expectRoundtrip(input);
    // Worst-case framing overhead: 1 control byte per 128 literals.
    EXPECT_LT(packed.size(), input.size() + input.size() / 64 + 16);
}

TEST(Lz, OverlappingMatchRle)
{
    // "abcabcabc..." forces overlapping matches (dist < len).
    Bytes input;
    for (int i = 0; i < 1000; i++)
        input.push_back(static_cast<std::uint8_t>("abc"[i % 3]));
    expectRoundtrip(input);
}

TEST(Lz, LongMatchChunking)
{
    // A run far longer than kMaxMatch must chunk into several tokens.
    Bytes input(kMaxMatch * 7 + 13, 0xEE);
    expectRoundtrip(input);
}

TEST(Lz, MatchAtMaxDistance)
{
    rssd::Rng rng(123);
    Bytes input;
    Bytes phrase(32);
    for (auto &b : phrase)
        b = static_cast<std::uint8_t>(rng.next());
    input.insert(input.end(), phrase.begin(), phrase.end());
    // Push the phrase past 64 KiB away, then repeat it.
    for (std::size_t i = 0; i < 70000; i++)
        input.push_back(static_cast<std::uint8_t>(rng.next()));
    input.insert(input.end(), phrase.begin(), phrase.end());
    expectRoundtrip(input);
}

class LzRoundtripTest
    : public ::testing::TestWithParam<std::pair<std::size_t, double>>
{
};

TEST_P(LzRoundtripTest, RoundtripAtManySizesAndMixes)
{
    const auto [size, zero_fraction] = GetParam();
    rssd::Rng rng(size * 7 + 1);
    Bytes input(size);
    for (auto &b : input) {
        b = rng.uniform() < zero_fraction
            ? 0
            : static_cast<std::uint8_t>(rng.next());
    }
    expectRoundtrip(input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMixes, LzRoundtripTest,
    ::testing::Values(std::pair<std::size_t, double>{1, 0.0},
                      std::pair<std::size_t, double>{127, 0.5},
                      std::pair<std::size_t, double>{128, 0.5},
                      std::pair<std::size_t, double>{129, 0.9},
                      std::pair<std::size_t, double>{4096, 0.3},
                      std::pair<std::size_t, double>{4096, 0.95},
                      std::pair<std::size_t, double>{65537, 0.7}));

TEST(Lz, RatioHelper)
{
    EXPECT_DOUBLE_EQ(compressionRatio(100, 50), 2.0);
    EXPECT_DOUBLE_EQ(compressionRatio(100, 0), 1.0);
}

TEST(Lz, FuzzRoundtripSizeSweepTo64KiB)
{
    // Fuzz-style sweep: pseudo-random content whose redundancy varies
    // with the size, covering every power-of-two boundary (the 8-byte
    // match-extension and chunked-copy fast paths have their edge
    // cases at word boundaries) up to and past 64 KiB.
    rssd::Rng rng(20260726);
    for (std::size_t size = 0; size <= 70000;
         size = size < 96 ? size + 1 : size * 17 / 13 + 1) {
        Bytes input(size);
        const double zero_frac = (size % 97) / 96.0;
        for (auto &b : input) {
            b = rng.uniform() < zero_frac
                ? 0
                : static_cast<std::uint8_t>(rng.next() & 0x1f);
        }
        const Bytes packed = lzCompress(input);
        const Bytes unpacked = lzDecompress(packed, input.size());
        ASSERT_EQ(unpacked, input) << "size " << size;
    }
}

TEST(Lz, SelfOverlappingMatchesAllShortDistances)
{
    // Period-p content forces matches with dist == p < 8: the
    // decompressor must take the byte-by-byte path and reproduce the
    // run exactly, including when a match token crosses the period.
    for (std::size_t period = 1; period <= 9; period++) {
        Bytes input;
        for (std::size_t i = 0; i < 3000; i++)
            input.push_back(static_cast<std::uint8_t>(
                'A' + (i % period)));
        const Bytes packed = lzCompress(input);
        const Bytes unpacked = lzDecompress(packed, input.size());
        ASSERT_EQ(unpacked, input) << "period " << period;
    }
}

TEST(Lz, MixedOverlapAndLiteralTail)
{
    // Runs + uncompressible tails at sizes straddling the 8-byte
    // chunk boundary of the decompressor's copy loop.
    rssd::Rng rng(7);
    for (std::size_t run_len :
         {4u, 7u, 8u, 9u, 15u, 16u, 17u, 127u, 131u, 132u, 133u}) {
        Bytes input;
        for (int rep = 0; rep < 40; rep++) {
            input.insert(input.end(), run_len,
                         static_cast<std::uint8_t>(rep));
            for (int j = 0; j < 5; j++)
                input.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        const Bytes packed = lzCompress(input);
        ASSERT_EQ(lzDecompress(packed, input.size()), input)
            << "run_len " << run_len;
    }
}

TEST(LzDeathTest, OversizedStreamPanics)
{
    // A stream that decodes to more bytes than the framing promised
    // must panic, not write past the pre-sized output buffer.
    Bytes input(64, 0x11);
    const Bytes packed = lzCompress(input);
    EXPECT_DEATH(lzDecompress(packed, 10), "size mismatch");
    EXPECT_DEATH(lzDecompress(packed, 1000), "size mismatch");
}

} // namespace
} // namespace rssd::compress
