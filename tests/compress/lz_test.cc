/**
 * @file
 * LZ compressor tests: exact roundtrip over adversarial inputs and
 * ratio behaviour over controlled-redundancy data.
 */

#include <gtest/gtest.h>

#include "compress/lz.hh"
#include "sim/rng.hh"

namespace rssd::compress {
namespace {

void
expectRoundtrip(const Bytes &input)
{
    const Bytes packed = lzCompress(input);
    const Bytes unpacked = lzDecompress(packed, input.size());
    ASSERT_EQ(unpacked, input);
}

TEST(Lz, EmptyInput)
{
    expectRoundtrip({});
    EXPECT_TRUE(lzCompress({}).empty());
}

TEST(Lz, TinyInputs)
{
    expectRoundtrip({0x42});
    expectRoundtrip({1, 2});
    expectRoundtrip({1, 2, 3});
    expectRoundtrip({1, 2, 3, 4});
}

TEST(Lz, AllSameByteCompressesWell)
{
    Bytes input(4096, 0x55);
    const Bytes packed = lzCompress(input);
    expectRoundtrip(input);
    EXPECT_LT(packed.size(), input.size() / 10);
}

TEST(Lz, RepeatedPatternCompresses)
{
    Bytes input;
    const char *pattern = "hello flash world! ";
    for (int i = 0; i < 400; i++)
        input.insert(input.end(), pattern, pattern + 19);
    const Bytes packed = lzCompress(input);
    expectRoundtrip(input);
    EXPECT_LT(packed.size(), input.size() / 4);
}

TEST(Lz, RandomDataExpandsOnlyMildly)
{
    rssd::Rng rng(99);
    Bytes input(8192);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.next());
    const Bytes packed = lzCompress(input);
    expectRoundtrip(input);
    // Worst-case framing overhead: 1 control byte per 128 literals.
    EXPECT_LT(packed.size(), input.size() + input.size() / 64 + 16);
}

TEST(Lz, OverlappingMatchRle)
{
    // "abcabcabc..." forces overlapping matches (dist < len).
    Bytes input;
    for (int i = 0; i < 1000; i++)
        input.push_back(static_cast<std::uint8_t>("abc"[i % 3]));
    expectRoundtrip(input);
}

TEST(Lz, LongMatchChunking)
{
    // A run far longer than kMaxMatch must chunk into several tokens.
    Bytes input(kMaxMatch * 7 + 13, 0xEE);
    expectRoundtrip(input);
}

TEST(Lz, MatchAtMaxDistance)
{
    rssd::Rng rng(123);
    Bytes input;
    Bytes phrase(32);
    for (auto &b : phrase)
        b = static_cast<std::uint8_t>(rng.next());
    input.insert(input.end(), phrase.begin(), phrase.end());
    // Push the phrase past 64 KiB away, then repeat it.
    for (std::size_t i = 0; i < 70000; i++)
        input.push_back(static_cast<std::uint8_t>(rng.next()));
    input.insert(input.end(), phrase.begin(), phrase.end());
    expectRoundtrip(input);
}

class LzRoundtripTest
    : public ::testing::TestWithParam<std::pair<std::size_t, double>>
{
};

TEST_P(LzRoundtripTest, RoundtripAtManySizesAndMixes)
{
    const auto [size, zero_fraction] = GetParam();
    rssd::Rng rng(size * 7 + 1);
    Bytes input(size);
    for (auto &b : input) {
        b = rng.uniform() < zero_fraction
            ? 0
            : static_cast<std::uint8_t>(rng.next());
    }
    expectRoundtrip(input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMixes, LzRoundtripTest,
    ::testing::Values(std::pair<std::size_t, double>{1, 0.0},
                      std::pair<std::size_t, double>{127, 0.5},
                      std::pair<std::size_t, double>{128, 0.5},
                      std::pair<std::size_t, double>{129, 0.9},
                      std::pair<std::size_t, double>{4096, 0.3},
                      std::pair<std::size_t, double>{4096, 0.95},
                      std::pair<std::size_t, double>{65537, 0.7}));

TEST(Lz, RatioHelper)
{
    EXPECT_DOUBLE_EQ(compressionRatio(100, 50), 2.0);
    EXPECT_DOUBLE_EQ(compressionRatio(100, 0), 1.0);
}

} // namespace
} // namespace rssd::compress
