/**
 * @file
 * DataGenerator tests: compressibility must track the knob, because
 * Figure 2's LocalSSD+Compression series depends on it.
 */

#include <gtest/gtest.h>

#include "compress/datagen.hh"
#include "crypto/entropy.hh"

namespace rssd::compress {
namespace {

double
measuredRatio(double compressibility, std::size_t pages = 32)
{
    DataGenerator gen(42, compressibility);
    std::size_t raw = 0, packed = 0;
    for (std::size_t i = 0; i < pages; i++) {
        const Bytes page = gen.page(4096);
        raw += page.size();
        packed += lzCompress(page).size();
    }
    return compressionRatio(raw, packed);
}

TEST(DataGen, ExactSize)
{
    DataGenerator gen(1, 0.5);
    for (std::size_t size : {1u, 100u, 4096u, 5000u})
        EXPECT_EQ(gen.page(size).size(), size);
}

TEST(DataGen, DeterministicForSeed)
{
    DataGenerator a(7, 0.5), b(7, 0.5);
    EXPECT_EQ(a.page(4096), b.page(4096));
}

TEST(DataGen, DifferentSeedsDiffer)
{
    DataGenerator a(7, 0.5), b(8, 0.5);
    EXPECT_NE(a.page(4096), b.page(4096));
}

TEST(DataGen, RatioIncreasesWithCompressibility)
{
    const double r0 = measuredRatio(0.0);
    const double r5 = measuredRatio(0.5);
    const double r9 = measuredRatio(0.9);
    EXPECT_LT(r0, 1.2);  // random data: no compression
    EXPECT_GT(r5, r0);
    EXPECT_GT(r9, r5);
    EXPECT_GT(r9, 2.0);  // redundant data compresses well
}

TEST(DataGen, EntropyDecreasesWithCompressibility)
{
    DataGenerator lo(3, 0.0), hi(3, 0.95);
    const double e_lo = crypto::shannonEntropy(lo.page(65536));
    const double e_hi = crypto::shannonEntropy(hi.page(65536));
    EXPECT_GT(e_lo, 7.5);
    EXPECT_LT(e_hi, 5.0);
}

TEST(DataGen, ClampsOutOfRangeKnob)
{
    DataGenerator gen(1, 42.0);
    EXPECT_DOUBLE_EQ(gen.compressibility(), 1.0);
    DataGenerator gen2(1, -1.0);
    EXPECT_DOUBLE_EQ(gen2.compressibility(), 0.0);
}

} // namespace
} // namespace rssd::compress
