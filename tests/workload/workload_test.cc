/**
 * @file
 * Trace profile and generator/replayer tests: the synthetic streams
 * must actually realize the statistics Figure 2 depends on.
 */

#include <gtest/gtest.h>

#include "nvme/local_ssd.hh"
#include "workload/generator.hh"

namespace rssd::workload {
namespace {

ftl::FtlConfig
smallConfig()
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    return cfg;
}

TEST(Profiles, ElevenPaperTraces)
{
    EXPECT_EQ(paperTraces().size(), 11u);
    for (const TraceProfile &t : paperTraces()) {
        EXPECT_FALSE(t.name.empty());
        EXPECT_GT(t.dailyWriteGiB, 0.0);
        EXPECT_GT(t.writeFraction, 0.0);
        EXPECT_LE(t.writeFraction, 1.0);
        EXPECT_GE(t.meanReqPages, 1.0);
        EXPECT_GT(t.workingSetFraction, 0.0);
        EXPECT_LE(t.workingSetFraction, 1.0);
    }
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(traceByName("hm").name, "hm");
    EXPECT_EQ(traceByName("fiu-webusers").name, "fiu-webusers");
    EXPECT_EXIT(traceByName("nope"), ::testing::ExitedWithCode(1),
                "unknown");
}

TEST(Generator, WriteFractionRealized)
{
    const TraceProfile &prof = traceByName("rsrch"); // 0.91 writes
    TraceGenerator gen(prof, 100000, 1);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        writes += gen.next().op == nvme::Opcode::Write;
    EXPECT_NEAR(writes / double(n), prof.writeFraction, 0.02);
}

TEST(Generator, RequestsStayInBounds)
{
    for (const TraceProfile &prof : paperTraces()) {
        TraceGenerator gen(prof, 5000, 7);
        for (int i = 0; i < 2000; i++) {
            const Request r = gen.next();
            EXPECT_GE(r.npages, 1u);
            EXPECT_LE(r.lpa + r.npages, 5000u);
        }
    }
}

TEST(Generator, MeanRequestSizeTracksProfile)
{
    const TraceProfile &prof = traceByName("src"); // 7.3 pages
    TraceGenerator gen(prof, 1000000, 3);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        total += gen.next().npages;
    EXPECT_NEAR(total / n, prof.meanReqPages, 1.2);
}

TEST(Generator, SkewConcentratesAccesses)
{
    const TraceProfile &prof = traceByName("wdev"); // skew 1.05
    TraceGenerator gen(prof, 1000000, 5);
    std::map<flash::Lpa, int> hits;
    const int n = 30000;
    for (int i = 0; i < n; i++)
        hits[gen.next().lpa]++;
    // A skewed workload touches far fewer distinct pages than ops.
    EXPECT_LT(hits.size(), static_cast<std::size_t>(n) / 2);
}

TEST(Generator, DeterministicForSeed)
{
    const TraceProfile &prof = traceByName("usr");
    TraceGenerator a(prof, 10000, 9), b(prof, 10000, 9);
    for (int i = 0; i < 500; i++) {
        const Request ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.op, rb.op);
        EXPECT_EQ(ra.lpa, rb.lpa);
        EXPECT_EQ(ra.npages, rb.npages);
    }
}

TEST(Generator, InterarrivalRealizesDailyVolume)
{
    const TraceProfile &prof = traceByName("hm");
    TraceGenerator gen(prof, 1000000, 1);
    const Tick gap = gen.meanInterarrival();
    // requests/day * writeFraction * meanReqPages * 4KiB ~ daily GiB.
    const double reqs_per_day =
        static_cast<double>(units::DAY) / static_cast<double>(gap);
    const double daily_gib = reqs_per_day * prof.writeFraction *
        prof.meanReqPages * 4096.0 / units::GiB;
    EXPECT_NEAR(daily_gib, prof.dailyWriteGiB,
                prof.dailyWriteGiB * 0.05);
}

TEST(Replay, CollectsStats)
{
    VirtualClock clock;
    nvme::LocalSsd dev(smallConfig(), clock);
    TraceGenerator gen(traceByName("ts"), dev.capacityPages(), 11);

    ReplayOptions opts;
    opts.maxRequests = 2000;
    const ReplayStats stats = replay(dev, clock, gen, opts);

    EXPECT_EQ(stats.requests, 2000u);
    EXPECT_GT(stats.pagesWritten, 0u);
    EXPECT_GT(stats.pagesRead, 0u);
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_GT(stats.elapsed, 0u);
    EXPECT_GT(stats.writeLatency.count(), 0u);
    EXPECT_GT(stats.writeMiBps(dev.pageSize()), 0.0);
}

TEST(Replay, OpenLoopIsSlowerThanClosedLoop)
{
    VirtualClock c1, c2;
    nvme::LocalSsd d1(smallConfig(), c1), d2(smallConfig(), c2);
    TraceGenerator g1(traceByName("ts"), d1.capacityPages(), 13);
    TraceGenerator g2(traceByName("ts"), d2.capacityPages(), 13);

    ReplayOptions closed;
    closed.maxRequests = 500;
    ReplayOptions open = closed;
    open.openLoop = true;

    const ReplayStats s_closed = replay(d1, c1, g1, closed);
    const ReplayStats s_open = replay(d2, c2, g2, open);
    EXPECT_GT(s_open.elapsed, s_closed.elapsed);
}

TEST(Generator, TrimFractionRealized)
{
    TraceProfile prof = traceByName("usr"); // 2% trims
    TraceGenerator gen(prof, 100000, 23);
    int trims = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        trims += gen.next().op == nvme::Opcode::Trim;
    EXPECT_NEAR(trims / double(n), prof.trimFraction, 0.005);
}

TEST(Replay, TrimsFlowThroughDevice)
{
    VirtualClock clock;
    nvme::LocalSsd dev(smallConfig(), clock);
    TraceProfile prof = traceByName("usr");
    prof.trimFraction = 0.2; // exaggerate for the test
    TraceGenerator gen(prof, dev.capacityPages(), 29);
    ReplayOptions opts;
    opts.maxRequests = 2000;
    const ReplayStats stats = replay(dev, clock, gen, opts);
    EXPECT_GT(stats.pagesTrimmed, 0u);
    EXPECT_EQ(stats.errors, 0u);
}

TEST(Replay, WithContentAttachesPayloads)
{
    VirtualClock clock;
    nvme::LocalSsd dev(smallConfig(), clock);
    TraceGenerator gen(traceByName("web"), dev.capacityPages(), 17);

    ReplayOptions opts;
    opts.maxRequests = 300;
    opts.withContent = true;
    const ReplayStats stats = replay(dev, clock, gen, opts);
    EXPECT_EQ(stats.errors, 0u);

    // Some written page must hold real (nonzero) content.
    bool nonzero = false;
    const auto &nand = dev.ftl().nand();
    const auto &geom = dev.ftl().config().geometry;
    for (flash::Ppa p = 0; p < geom.totalPages() && !nonzero; p++) {
        if (nand.state(p) == flash::PageState::Programmed &&
            !nand.content(p).empty()) {
            nonzero = true;
        }
    }
    EXPECT_TRUE(nonzero);
}

} // namespace
} // namespace rssd::workload
