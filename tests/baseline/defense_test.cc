/**
 * @file
 * Unit tests for the individual defense models: each must exhibit
 * the specific strength and weakness Table 1 attributes to it.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "baseline/firmware_defenses.hh"
#include "baseline/rssd_defense.hh"
#include "baseline/software_defenses.hh"

namespace rssd::baseline {
namespace {

ftl::FtlConfig
smallConfig()
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    return cfg;
}

TEST(RecoveryClassification, Thresholds)
{
    EXPECT_EQ(classifyRecovery(1.0), RecoveryClass::Recoverable);
    EXPECT_EQ(classifyRecovery(0.99), RecoveryClass::Recoverable);
    EXPECT_EQ(classifyRecovery(0.5),
              RecoveryClass::PartiallyRecoverable);
    EXPECT_EQ(classifyRecovery(0.10),
              RecoveryClass::PartiallyRecoverable);
    EXPECT_EQ(classifyRecovery(0.05), RecoveryClass::Unrecoverable);
    EXPECT_TRUE(defended(1.0));
    EXPECT_FALSE(defended(0.9));
}

TEST(PlainSsd, NoRecoveryAfterClassic)
{
    VirtualClock clock;
    PlainSsdDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());

    const Tick t0 = clock.now();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    defense.attemptRecovery(victim, t0);

    EXPECT_DOUBLE_EQ(victim.intactFraction(defense.device()), 0.0);
    EXPECT_FALSE(defense.forensicsAvailable());
}

TEST(SoftwareDetector, DetectsClassicWhenAlive)
{
    VirtualClock clock;
    SoftwareDetectorDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 256);
    victim.populate(defense.device());

    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    EXPECT_TRUE(defense.detectedAttack());
}

TEST(SoftwareDetector, KilledByPrivilegeEscalation)
{
    VirtualClock clock;
    SoftwareDetectorDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 256);
    victim.populate(defense.device());

    defense.onPrivilegeEscalation();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    EXPECT_FALSE(defense.detectedAttack());
}

TEST(CloudBackup, RestoresSyncedVersions)
{
    VirtualClock clock;
    CloudBackupDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());
    // Idle ops so the last dirty pages sync.
    for (int i = 0; i < 100; i++)
        defense.device().readPage(500);

    const Tick attack_start = clock.now();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    ASSERT_DOUBLE_EQ(victim.intactFraction(defense.device()), 0.0);

    defense.attemptRecovery(victim, attack_start);
    EXPECT_GE(victim.intactFraction(defense.device()), 0.99);
}

TEST(CloudBackup, TrimPropagatesDeletion)
{
    VirtualClock clock;
    CloudBackupDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());
    for (int i = 0; i < 100; i++)
        defense.device().readPage(500);

    const Tick attack_start = clock.now();
    attack::TrimmingAttack attack;
    attack.run(defense.device(), clock, victim);

    defense.attemptRecovery(victim, attack_start);
    // Sync semantics deleted the backups along with the files.
    EXPECT_LT(victim.intactFraction(defense.device()), 0.10);
}

TEST(CloudBackup, FloodEvictsHistory)
{
    VirtualClock clock;
    CloudBackupDefense::Params params;
    params.budgetBytes = 2 * units::MiB; // < victim size x versions
    CloudBackupDefense defense(smallConfig(), clock, params);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());
    for (int i = 0; i < 100; i++)
        defense.device().readPage(500);

    const Tick attack_start = clock.now();
    attack::GcAttack::Params gc;
    gc.floodCapacityMultiple = 1.0;
    gc.floodSpanFraction = 0.4;
    attack::GcAttack attack(gc);
    attack.run(defense.device(), clock, victim);

    defense.attemptRecovery(victim, attack_start);
    EXPECT_LT(victim.intactFraction(defense.device()), 0.5);
}

TEST(ShieldFs, RestoresShadowsAfterDetectedClassic)
{
    VirtualClock clock;
    ShieldFsDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());

    const Tick attack_start = clock.now();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    ASSERT_TRUE(defense.detectedAttack());

    defense.attemptRecovery(victim, attack_start);
    EXPECT_GE(victim.intactFraction(defense.device()), 0.99);
}

TEST(ShieldFs, TimingAttackEvadesAndNothingRestored)
{
    VirtualClock clock;
    ShieldFsDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());

    const Tick attack_start = clock.now();
    attack::TimingAttack::Params params;
    params.benignOpsPerEncrypt = 64;
    attack::TimingAttack attack(params);
    attack.run(defense.device(), clock, victim);

    EXPECT_FALSE(defense.detectedAttack());
    defense.attemptRecovery(victim, attack_start);
    EXPECT_LT(victim.intactFraction(defense.device()), 0.10);
}

TEST(Jfs, JournalWrapLosesHistory)
{
    VirtualClock clock;
    JournalingFsDefense defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 512);
    victim.populate(defense.device());

    const Tick attack_start = clock.now();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    defense.attemptRecovery(victim, attack_start);
    // 64-page journal vs 512 encrypted pages: <= 12.5% recovered.
    EXPECT_LT(victim.intactFraction(defense.device()), 0.15);
}

TEST(FlashGuard, ClassicAndGcAttacksFullyRecovered)
{
    for (const bool flood : {false, true}) {
        VirtualClock clock;
        FlashGuardLike defense(smallConfig(), clock);
        attack::VictimDataset victim(0, 128);
        victim.populate(defense.device());

        const Tick attack_start = clock.now();
        if (flood) {
            attack::GcAttack::Params gc;
            gc.floodCapacityMultiple = 1.0;
            gc.floodSpanFraction = 0.4;
            attack::GcAttack attack(gc);
            attack.run(defense.device(), clock, victim);
        } else {
            attack::ClassicRansomware attack;
            attack.run(defense.device(), clock, victim);
        }

        defense.attemptRecovery(victim, attack_start);
        EXPECT_GE(victim.intactFraction(defense.device()), 0.99)
            << (flood ? "gc-attack" : "classic");
    }
}

TEST(FlashGuard, TimingAttackAgesOutHolds)
{
    VirtualClock clock;
    FlashGuardLike::Params params;
    params.retain.maxHoldAge = 30 * units::SEC;
    FlashGuardLike defense(smallConfig(), clock, params);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());

    const Tick attack_start = clock.now();
    attack::TimingAttack::Params timing;
    timing.encryptionInterval = 2 * units::SEC;
    timing.benignOpsPerEncrypt = 8;
    attack::TimingAttack attack(timing);
    attack.run(defense.device(), clock, victim);

    defense.attemptRecovery(victim, attack_start);
    // Early victims' holds expired long before the attack ended.
    EXPECT_LT(victim.intactFraction(defense.device()), 0.5);
}

TEST(FlashGuard, TrimmingAttackBypassesRetention)
{
    VirtualClock clock;
    FlashGuardLike defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());

    const Tick attack_start = clock.now();
    attack::TrimmingAttack attack;
    attack.run(defense.device(), clock, victim);

    defense.attemptRecovery(victim, attack_start);
    EXPECT_LT(victim.intactFraction(defense.device()), 0.10);
}

TEST(TimeSsd, ClassicRecoveredWithinWindow)
{
    VirtualClock clock;
    TimeSsdLike defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());

    const Tick attack_start = clock.now();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);

    defense.attemptRecovery(victim, attack_start);
    EXPECT_GE(victim.intactFraction(defense.device()), 0.99);
}

TEST(DetectRollback, SsdInsiderRecoversDetectedClassic)
{
    VirtualClock clock;
    DetectRollbackLike defense(smallConfig(), clock);
    attack::VictimDataset victim(0, 128);
    victim.populate(defense.device());

    const Tick attack_start = clock.now();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    ASSERT_TRUE(defense.detectedAttack());

    defense.attemptRecovery(victim, attack_start);
    EXPECT_GE(victim.intactFraction(defense.device()), 0.99);
}

TEST(DetectRollback, RBlockerBlocksAfterAlarm)
{
    VirtualClock clock;
    DetectRollbackLike::Params params;
    params.blockOnDetect = true;
    params.displayName = "RBlocker";
    DetectRollbackLike defense(smallConfig(), clock, params);
    attack::VictimDataset victim(0, 512);
    victim.populate(defense.device());

    attack::ClassicRansomware attack;
    const attack::AttackReport report =
        attack.run(defense.device(), clock, victim);
    EXPECT_TRUE(defense.detectedAttack());
    // Some encryption writes were refused post-alarm.
    EXPECT_GT(report.writeErrors, 0u);
    EXPECT_LT(report.pagesEncrypted, 512u);
}

TEST(Rssd, AllFourAttacksFullyRecoveredWithForensics)
{
    struct Case
    {
        const char *name;
        std::unique_ptr<attack::Ransomware> attack;
    };
    std::vector<Case> cases;
    cases.push_back({"classic",
                     std::make_unique<attack::ClassicRansomware>()});
    attack::GcAttack::Params gc;
    gc.floodCapacityMultiple = 1.0;
    gc.floodSpanFraction = 0.4;
    cases.push_back({"gc", std::make_unique<attack::GcAttack>(gc)});
    attack::TimingAttack::Params t;
    t.benignOpsPerEncrypt = 16;
    cases.push_back(
        {"timing", std::make_unique<attack::TimingAttack>(t)});
    cases.push_back(
        {"trimming", std::make_unique<attack::TrimmingAttack>()});

    for (auto &c : cases) {
        VirtualClock clock;
        core::RssdConfig cfg = core::RssdConfig::forTests();
        RssdDefense defense(cfg, clock);
        attack::VictimDataset victim(0, 128);
        victim.populate(defense.device());

        const Tick attack_start = clock.now();
        c.attack->run(defense.device(), clock, victim);
        defense.attemptRecovery(victim, attack_start);

        EXPECT_DOUBLE_EQ(victim.intactFraction(defense.device()), 1.0)
            << c.name;
        EXPECT_TRUE(defense.forensicsAvailable()) << c.name;
        EXPECT_TRUE(defense.detectedAttack()) << c.name;
    }
}

} // namespace
} // namespace rssd::baseline
