/**
 * @file
 * Table 1 shape test: the measured defense matrix must reproduce the
 * paper's qualitative comparison — RSSD defends all three new
 * attacks with full recovery and forensics; every baseline fails at
 * least one column. (docs/ARCHITECTURE.md discusses the two cells where
 * our harsher attack parameters differ from the paper's judgment.)
 */

#include <gtest/gtest.h>

#include "baseline/table1.hh"

namespace rssd::baseline {
namespace {

class Table1Test : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Table1Params params;
        params.victimPages = 96;
        params.timingBenignOps = 24;
        rows_ = new std::vector<Table1Row>(runTable1(params));
    }

    static void
    TearDownTestSuite()
    {
        delete rows_;
        rows_ = nullptr;
    }

    static const Table1Row &
    row(const std::string &name)
    {
        for (const Table1Row &r : *rows_) {
            if (r.defense == name)
                return r;
        }
        ADD_FAILURE() << "no row " << name;
        static Table1Row dummy;
        return dummy;
    }

    static std::vector<Table1Row> *rows_;
};

std::vector<Table1Row> *Table1Test::rows_ = nullptr;

TEST_F(Table1Test, HasElevenRows)
{
    EXPECT_EQ(rows_->size(), 11u);
}

TEST_F(Table1Test, RssdDefendsEverythingWithForensics)
{
    const Table1Row &rssd = row("RSSD");
    for (int a = 0; a < 4; a++) {
        EXPECT_TRUE(rssd.cells[a].defended)
            << attackKindName(static_cast<AttackKind>(a));
        EXPECT_DOUBLE_EQ(rssd.cells[a].recovered, 1.0);
    }
    EXPECT_TRUE(rssd.forensics);
    EXPECT_EQ(rssd.recovery, RecoveryClass::Recoverable);
}

TEST_F(Table1Test, OnlyRssdHasForensics)
{
    for (const Table1Row &r : *rows_) {
        if (r.defense != "RSSD") {
            EXPECT_FALSE(r.forensics) << r.defense;
        }
    }
}

TEST_F(Table1Test, EveryBaselineFailsSomeNewAttack)
{
    for (const Table1Row &r : *rows_) {
        if (r.defense == "RSSD")
            continue;
        const bool fails_one = !r.cell(AttackKind::Gc).defended ||
            !r.cell(AttackKind::Timing).defended ||
            !r.cell(AttackKind::Trimming).defended;
        EXPECT_TRUE(fails_one) << r.defense;
    }
}

TEST_F(Table1Test, LocalSsdIsDefenseless)
{
    const Table1Row &r = row("LocalSSD");
    for (int a = 0; a < 4; a++)
        EXPECT_FALSE(r.cells[a].defended);
    EXPECT_EQ(r.recovery, RecoveryClass::Unrecoverable);
}

TEST_F(Table1Test, SoftwareDetectorsRecoverNothing)
{
    for (const char *name : {"Unveil", "CryptoDrop"}) {
        const Table1Row &r = row(name);
        EXPECT_EQ(r.recovery, RecoveryClass::Unrecoverable) << name;
        // Killed by privilege escalation: no detection either.
        EXPECT_FALSE(r.cell(AttackKind::Classic).detectedOnline)
            << name;
    }
}

TEST_F(Table1Test, CloudBackupMatchesPaperRow)
{
    const Table1Row &r = row("CloudBackup");
    EXPECT_FALSE(r.cell(AttackKind::Gc).defended);
    EXPECT_TRUE(r.cell(AttackKind::Timing).defended);
    EXPECT_FALSE(r.cell(AttackKind::Trimming).defended);
    EXPECT_EQ(r.recovery, RecoveryClass::PartiallyRecoverable);
}

TEST_F(Table1Test, FlashGuardMatchesPaperRow)
{
    const Table1Row &r = row("FlashGuard");
    EXPECT_TRUE(r.cell(AttackKind::Gc).defended);
    EXPECT_FALSE(r.cell(AttackKind::Timing).defended);
    EXPECT_FALSE(r.cell(AttackKind::Trimming).defended);
}

TEST_F(Table1Test, ShieldFsFailsAllNewAttacks)
{
    const Table1Row &r = row("ShieldFS");
    EXPECT_FALSE(r.cell(AttackKind::Gc).defended);
    EXPECT_FALSE(r.cell(AttackKind::Timing).defended);
    EXPECT_FALSE(r.cell(AttackKind::Trimming).defended);
    // But it does handle the classic attack (partial+ recovery).
    EXPECT_GT(r.cell(AttackKind::Classic).recovered, 0.5);
}

TEST_F(Table1Test, JfsIsUnrecoverable)
{
    EXPECT_EQ(row("JFS").recovery, RecoveryClass::Unrecoverable);
}

TEST_F(Table1Test, DetectRollbacksFailNewAttacks)
{
    for (const char *name : {"SSDInsider", "RBlocker"}) {
        const Table1Row &r = row(name);
        EXPECT_FALSE(r.cell(AttackKind::Timing).defended) << name;
        EXPECT_FALSE(r.cell(AttackKind::Trimming).defended) << name;
    }
}

} // namespace
} // namespace rssd::baseline
