/**
 * @file
 * Read-side voting tests: the EvidenceScanner over a replicated
 * cluster — one scan per stream (not per copy), chain-verifying
 * source selection around a corrupted replica, failover off a
 * crashed source with honest re-verification cost, and tail-vote
 * divergence when a replica's copy silently forks.
 */

#include <gtest/gtest.h>

#include "forensics/evidence.hh"

#include "tests/common/fault_injection.hh"
#include "tests/common/segment_chain.hh"

namespace rssd::forensics {
namespace {

remote::BackupClusterConfig
replicatedConfig(std::uint32_t shards, std::uint32_t r)
{
    remote::BackupClusterConfig cfg;
    cfg.shards = shards;
    cfg.replication = r;
    return cfg;
}

TEST(ReplicaForensics, ReplicatedStreamsAreScannedOncePerDevice)
{
    remote::BackupCluster cluster(replicatedConfig(3, 2));
    test::SegmentChain c0("rf-d0"), c1("rf-d1");
    cluster.attachDevice(0, c0.codec());
    cluster.attachDevice(1, c1.codec());
    Tick ack = 0;
    for (int i = 0; i < 4; i++) {
        ASSERT_TRUE(cluster.ingest(0, c0.next(2, 128), 0, ack));
        ASSERT_TRUE(cluster.ingest(1, c1.next(2, 128), 0, ack));
    }

    EvidenceScanner scanner(cluster);
    const ScanPassCost cost = scanner.scan();

    // Each stream is read from ONE source replica; duplication is a
    // durability property, not 2x analysis work.
    EXPECT_EQ(cost.streamsScanned, 2u);
    EXPECT_EQ(cost.segmentsVerified, 8u);
    for (remote::DeviceId d = 0; d < 2; d++) {
        const StreamEvidence &ev = scanner.evidence(d);
        EXPECT_TRUE(ev.intact);
        EXPECT_EQ(ev.replicas, 2u);
        EXPECT_EQ(ev.replicasAlive, 2u);
        EXPECT_EQ(ev.tailVotes, 2u); // unanimous
        EXPECT_EQ(ev.failovers, 0u);
        EXPECT_TRUE(cluster.shardAlive(ev.shard));
    }
}

TEST(ReplicaForensics, SourceSelectionSkipsACorruptedCopy)
{
    remote::BackupCluster cluster(replicatedConfig(2, 2));
    test::SegmentChain chain("rf-corrupt");
    cluster.attachDevice(7, chain.codec());
    Tick ack = 0;
    for (int i = 0; i < 3; i++)
        ASSERT_TRUE(cluster.ingest(7, chain.next(2, 200), 0, ack));

    // Rot one byte of the primary's middle segment before first
    // contact: the scanner must source from the copy that verifies.
    const remote::ShardId primary = cluster.shardOfDevice(7);
    test::FaultInjector faults(cluster);
    faults.schedule(
        {.at = units::MS,
         .kind = test::ScriptedFault::Kind::CorruptSegment,
         .shard = primary,
         .stream = 7,
         .segmentIdx = 1});
    faults.advanceTo(units::MS);

    EvidenceScanner scanner(cluster);
    scanner.scan();
    const StreamEvidence &ev = scanner.evidence(7);
    EXPECT_TRUE(ev.intact);
    EXPECT_NE(ev.shard, primary);
    EXPECT_EQ(ev.segmentsVerified, 3u);
    // The rotten copy's tail metadata still matches (corruption
    // changed bytes, not ids) — votes measure agreement, the
    // payload fault is what source *selection* caught.
    EXPECT_EQ(ev.tailVotes, 2u);
}

TEST(ReplicaForensics, CrashedSourceFailsOverAndReverifies)
{
    remote::BackupCluster cluster(replicatedConfig(3, 2));
    test::SegmentChain chain("rf-failover");
    cluster.attachDevice(3, chain.codec());
    Tick ack = 0;
    for (int i = 0; i < 4; i++)
        ASSERT_TRUE(cluster.ingest(3, chain.next(2, 150), 0, ack));

    EvidenceScanner scanner(cluster);
    scanner.scan();
    const remote::ShardId first_source = scanner.evidence(3).shard;

    test::FaultInjector faults(cluster);
    faults.schedule({.at = 2 * units::MS,
                     .kind = test::ScriptedFault::Kind::KillShard,
                     .shard = first_source});
    faults.advanceTo(2 * units::MS);

    const ScanPassCost cost = scanner.scan();
    const StreamEvidence &ev = scanner.evidence(3);
    EXPECT_EQ(ev.failovers, 1u);
    EXPECT_NE(ev.shard, first_source);
    EXPECT_TRUE(cluster.shardAlive(ev.shard));
    EXPECT_TRUE(ev.intact);
    EXPECT_EQ(ev.replicasAlive, 1u);
    EXPECT_EQ(ev.tailVotes, 1u); // only the survivor left to agree
    // Honest cost accounting: the new copy is re-verified from its
    // genesis — this pass is NOT O(new)==0, and says so.
    EXPECT_EQ(cost.segmentsVerified, 4u);
    EXPECT_EQ(ev.segmentsVerified, 4u);
    EXPECT_EQ(ev.entries.size(), 8u); // replay cache rebuilt whole
}

TEST(ReplicaForensics, TailVoteCountsDivergentReplica)
{
    remote::BackupCluster cluster(replicatedConfig(2, 2));
    test::SegmentChain chain("rf-fork");
    cluster.attachDevice(5, chain.codec());
    Tick ack = 0;
    for (int i = 0; i < 2; i++)
        ASSERT_TRUE(cluster.ingest(5, chain.next(2, 100), 0, ack));

    EvidenceScanner scanner(cluster);
    scanner.scan();
    const remote::ShardId source = scanner.evidence(5).shard;
    ASSERT_EQ(scanner.evidence(5).tailVotes, 2u);

    // Fork the OTHER replica: slip it an extra (valid) segment the
    // source never saw — a split-brain lag the tail vote must make
    // visible even though both copies individually chain-verify.
    const std::vector<remote::ShardId> &set = cluster.replicaSetOf(5);
    const remote::ShardId other =
        set[0] == source ? set[1] : set[0];
    Tick side_ack = 0;
    ASSERT_TRUE(cluster.mutableShardStore(other).ingestSegment(
        5, chain.next(2, 100), 3 * units::MS, side_ack));

    scanner.scan();
    const StreamEvidence &ev = scanner.evidence(5);
    EXPECT_EQ(ev.replicasAlive, 2u);
    EXPECT_EQ(ev.tailVotes, 1u); // the lagging source agrees only
                                 // with itself
    EXPECT_TRUE(ev.intact);
}

} // namespace
} // namespace rssd::forensics
