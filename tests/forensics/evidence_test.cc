/**
 * @file
 * Evidence-side tests: the shared SegmentChainVerifier (the one
 * implementation of the chain rules) and the EvidenceScanner's
 * resumable, O(new) incremental scanning over a live cluster.
 */

#include <gtest/gtest.h>

#include "core/rssd_device.hh"
#include "forensics/evidence.hh"

#include "tests/common/segment_chain.hh"

namespace rssd::forensics {
namespace {

// ---------------------------------------------------------------------
// SegmentChainVerifier
// ---------------------------------------------------------------------

TEST(SegmentChainVerifier, AcceptsValidChainAndCounts)
{
    test::SegmentChain chain("verify-key");
    log::SegmentChainVerifier v;
    std::uint64_t entries = 0, bytes = 0;
    for (int i = 0; i < 5; i++) {
        const log::SealedSegment sealed = chain.next(4);
        log::Segment opened;
        ASSERT_TRUE(v.verifyNext(sealed, chain.codec(), &opened));
        EXPECT_EQ(opened.entries.size(), 4u);
        entries += 4;
        bytes += sealed.wireSize();
    }
    EXPECT_EQ(v.segmentsVerified(), 5u);
    EXPECT_EQ(v.entriesVerified(), entries);
    EXPECT_EQ(v.bytesVerified(), bytes);
    EXPECT_EQ(v.fault(), log::ChainFault::None);
}

TEST(SegmentChainVerifier, RejectsTamperedPayload)
{
    test::SegmentChain chain("tamper-key");
    log::SealedSegment sealed = chain.next(3);
    sealed.payload[0] ^= 0x01;
    log::SegmentChainVerifier v;
    EXPECT_FALSE(v.verifyNext(sealed, chain.codec()));
    EXPECT_EQ(v.fault(), log::ChainFault::BadAuthentication);
    EXPECT_EQ(v.segmentsVerified(), 0u);
}

TEST(SegmentChainVerifier, RejectsWrongKey)
{
    test::SegmentChain chain("key-a");
    const log::SealedSegment sealed = chain.next(3);
    const log::SegmentCodec other =
        log::SegmentCodec::fromSeed("key-b");
    log::SegmentChainVerifier v;
    EXPECT_FALSE(v.verifyNext(sealed, other));
    EXPECT_EQ(v.fault(), log::ChainFault::BadAuthentication);
}

TEST(SegmentChainVerifier, RejectsSkippedSegment)
{
    test::SegmentChain chain("order-key");
    const log::SealedSegment s0 = chain.next(2);
    (void)chain.next(2); // s1, dropped
    const log::SealedSegment s2 = chain.next(2);

    log::SegmentChainVerifier v;
    ASSERT_TRUE(v.verifyNext(s0, chain.codec()));
    EXPECT_FALSE(v.verifyNext(s2, chain.codec()));
    EXPECT_EQ(v.fault(), log::ChainFault::BrokenOrder);
    // Failure leaves the verifier resumable at its old position.
    EXPECT_EQ(v.segmentsVerified(), 1u);
}

TEST(SegmentChainVerifier, RejectsSplicedStream)
{
    // Two streams under the SAME key with diverging histories:
    // segment ids line up, but the entry hash chains don't —
    // splicing b's segment after a's must trip the anchor check,
    // exactly the attack the chain exists to catch.
    test::SegmentChain a("same-key");
    test::SegmentChain b("same-key");
    const log::SealedSegment a0 = a.next(2);
    (void)b.next(3); // b's history diverges from a's here
    const log::SealedSegment b1 = b.next(2);

    log::SegmentChainVerifier v;
    ASSERT_TRUE(v.verifyNext(a0, a.codec()));
    EXPECT_FALSE(v.verifyNext(b1, a.codec()));
    EXPECT_EQ(v.fault(), log::ChainFault::BrokenAnchor);
}

// ---------------------------------------------------------------------
// EvidenceScanner over a live cluster
// ---------------------------------------------------------------------

/** Two fleet-mode devices offloading into a small cluster. */
class EvidenceScannerTest : public ::testing::Test
{
  protected:
    EvidenceScannerTest()
        : cluster_(clusterConfig()),
          portal0_(cluster_, 0), portal1_(cluster_, 1),
          dev0_(deviceConfig("d0"), clock0_, portal0_),
          dev1_(deviceConfig("d1"), clock1_, portal1_)
    {
        cluster_.attachDevice(0, dev0_.codec());
        cluster_.attachDevice(1, dev1_.codec());
    }

    static remote::BackupClusterConfig
    clusterConfig()
    {
        remote::BackupClusterConfig cfg;
        cfg.shards = 2;
        return cfg;
    }

    static core::RssdConfig
    deviceConfig(const std::string &key)
    {
        core::RssdConfig cfg = core::RssdConfig::forTests();
        cfg.segmentPages = 8;
        cfg.pumpThreshold = 8;
        cfg.keySeed = key;
        return cfg;
    }

    void
    writeAndDrain(core::RssdDevice &dev, int pages, std::uint8_t fill)
    {
        for (int i = 0; i < pages; i++) {
            dev.writePage(static_cast<flash::Lpa>(i % 16),
                          std::vector<std::uint8_t>(dev.pageSize(),
                                                    fill));
        }
        dev.drainOffload();
    }

    remote::BackupCluster cluster_;
    remote::ClusterPortal portal0_, portal1_;
    VirtualClock clock0_, clock1_;
    core::RssdDevice dev0_, dev1_;
};

TEST_F(EvidenceScannerTest, FirstPassVerifiesEverything)
{
    writeAndDrain(dev0_, 24, 0x11);
    writeAndDrain(dev1_, 16, 0x22);

    EvidenceScanner scanner(cluster_);
    const ScanPassCost pass = scanner.scan();
    EXPECT_EQ(pass.streamsScanned, 2u);
    EXPECT_EQ(pass.segmentsVerified, cluster_.totalSegments());
    EXPECT_EQ(pass.segmentsCached, 0u);
    EXPECT_GT(pass.entriesReplayed, 0u);

    const auto devices = scanner.devices();
    ASSERT_EQ(devices.size(), 2u);
    EXPECT_EQ(devices[0], 0u);
    EXPECT_EQ(devices[1], 1u);

    for (const DeviceId d : devices) {
        const StreamEvidence &ev = scanner.evidence(d);
        EXPECT_TRUE(ev.intact);
        EXPECT_GT(ev.segmentsVerified, 0u);
        // Replayed entries are the device's own log, in order.
        for (std::size_t i = 0; i < ev.entries.size(); i++)
            EXPECT_EQ(ev.entries[i].logSeq, i);
    }
}

TEST_F(EvidenceScannerTest, RescanWithoutNewEvidenceIsFree)
{
    writeAndDrain(dev0_, 24, 0x11);
    EvidenceScanner scanner(cluster_);
    scanner.scan();
    const std::uint64_t verified =
        scanner.total().segmentsVerified;

    const ScanPassCost second = scanner.scan();
    EXPECT_EQ(second.segmentsVerified, 0u);
    EXPECT_EQ(second.bytesVerified, 0u);
    EXPECT_EQ(second.entriesReplayed, 0u);
    EXPECT_EQ(second.segmentsCached, verified);
    EXPECT_EQ(scanner.passes(), 2u);
}

TEST_F(EvidenceScannerTest, IncrementalPassVerifiesOnlyNewSuffix)
{
    writeAndDrain(dev0_, 24, 0x11);
    writeAndDrain(dev1_, 24, 0x22);

    EvidenceScanner scanner(cluster_);
    const ScanPassCost first = scanner.scan();
    const std::uint64_t entries_before =
        scanner.evidence(0).entries.size();

    // New evidence arrives on device 0 only.
    writeAndDrain(dev0_, 24, 0x33);
    const std::uint64_t total_now = cluster_.totalSegments();
    ASSERT_GT(total_now, first.segmentsVerified);

    const ScanPassCost second = scanner.scan();
    // O(new): exactly the appended segments, everything else cached.
    EXPECT_EQ(second.segmentsVerified,
              total_now - first.segmentsVerified);
    EXPECT_EQ(second.segmentsCached, first.segmentsVerified);

    // The entry cache extended in place and stayed chain-ordered.
    const StreamEvidence &ev = scanner.evidence(0);
    EXPECT_GT(ev.entries.size(), entries_before);
    for (std::size_t i = 0; i < ev.entries.size(); i++)
        EXPECT_EQ(ev.entries[i].logSeq, i);

    // Totals accumulate across passes.
    EXPECT_EQ(scanner.total().segmentsVerified, total_now);
}

/** One fleet-mode device against a GC-enabled single-shard cluster.
 *  The retention window is huge, so nothing expires during ingest;
 *  tests force pruning by running the GC "in the future". */
class PrunedScannerTest : public ::testing::Test
{
  protected:
    PrunedScannerTest()
        : cluster_(clusterConfig()), portal_(cluster_, 0),
          dev_(deviceConfig(), clock_, portal_)
    {
        cluster_.attachDevice(0, dev_.codec());
    }

    static remote::BackupClusterConfig
    clusterConfig()
    {
        remote::BackupClusterConfig cfg;
        cfg.shards = 1;
        cfg.shard.retention.gcEnabled = true;
        cfg.shard.retention.retentionWindow = units::HOUR;
        return cfg;
    }

    static core::RssdConfig
    deviceConfig()
    {
        core::RssdConfig cfg = core::RssdConfig::forTests();
        cfg.segmentPages = 8;
        cfg.pumpThreshold = 8;
        return cfg;
    }

    void
    writeAndDrain(int pages, std::uint8_t fill)
    {
        for (int i = 0; i < pages; i++) {
            dev_.writePage(static_cast<flash::Lpa>(i % 16),
                           std::vector<std::uint8_t>(dev_.pageSize(),
                                                     fill));
        }
        dev_.drainOffload();
    }

    /** Age-expire every segment ingested so far. */
    std::uint64_t
    pruneEverything()
    {
        cluster_.runRetentionGc(clock_.now() + 2 * units::HOUR);
        return cluster_.shardStore(0).prunedSegments(0);
    }

    remote::BackupCluster cluster_;
    remote::ClusterPortal portal_;
    VirtualClock clock_;
    core::RssdDevice dev_;
};

TEST_F(PrunedScannerTest, PrunedStreamResumesFromSignedRecord)
{
    // The stream is pruned BEFORE the scanner's first contact: the
    // expired prefix is evidence the analysis will never see. The
    // scanner must resume from the signed prune record, count the
    // loss, and verify the surviving suffix.
    writeAndDrain(64, 0x11);
    const std::uint64_t pruned = pruneEverything();
    ASSERT_GT(pruned, 0u);

    // New post-prune evidence so there is a suffix to verify.
    writeAndDrain(16, 0x22);

    EvidenceScanner scanner(cluster_);
    scanner.scan();
    const StreamEvidence &ev = scanner.evidence(0);
    EXPECT_TRUE(ev.intact);
    EXPECT_EQ(ev.segmentsPruned, pruned);
    EXPECT_EQ(ev.segmentsPrunedUnseen, pruned);
    EXPECT_EQ(ev.reanchors, 1u);
    EXPECT_GT(ev.entriesPruned, 0u);
    // Replay starts at the horizon, not at genesis.
    ASSERT_FALSE(ev.entries.empty());
    EXPECT_EQ(ev.entries.front().logSeq, ev.entriesPruned);
}

TEST_F(PrunedScannerTest, HorizonOvertakingCursorKeepsCache)
{
    // Pass 1 verifies batch A; batch B arrives unscanned; then the
    // GC expires A and B both — the horizon is now PAST the
    // cursor. The scanner must re-anchor, count only the
    // never-seen batch B as lost, and keep batch A's replayed
    // entries in the verified-prefix cache.
    writeAndDrain(64, 0x11); // batch A
    EvidenceScanner scanner(cluster_);
    scanner.scan();
    const std::uint64_t seen = scanner.evidence(0).segmentsVerified;
    const std::uint64_t cached = scanner.evidence(0).entries.size();
    ASSERT_GT(seen, 0u);

    writeAndDrain(64, 0x22); // batch B, never scanned
    const std::uint64_t pruned = pruneEverything();
    ASSERT_GT(pruned, seen);
    writeAndDrain(16, 0x33); // batch C, the surviving suffix

    scanner.scan();
    const StreamEvidence &ev = scanner.evidence(0);
    EXPECT_TRUE(ev.intact);
    EXPECT_EQ(ev.segmentsPrunedUnseen, pruned - seen); // batch B only
    EXPECT_EQ(ev.reanchors, 1u);
    EXPECT_GT(ev.entries.size(), cached); // cache survived + C
    // Cache is batch A from genesis, then the post-horizon suffix.
    EXPECT_EQ(ev.entries.front().logSeq, 0u);
    EXPECT_EQ(ev.entries.back().logSeq,
              ev.entriesPruned + (ev.entries.size() - cached) - 1);
}

TEST_F(EvidenceScannerTest, ScanMatchesStoreVerifyFullChain)
{
    writeAndDrain(dev0_, 40, 0x44);
    writeAndDrain(dev1_, 40, 0x55);
    EvidenceScanner scanner(cluster_);
    scanner.scan();
    EXPECT_TRUE(cluster_.verifyAll());
    for (const DeviceId d : scanner.devices())
        EXPECT_TRUE(scanner.evidence(d).intact);
}

} // namespace
} // namespace rssd::forensics
