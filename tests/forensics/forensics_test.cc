/**
 * @file
 * Cluster-side forensics tests: the acceptance campaigns (16 devices
 * -> 4 shards, fixed seeds) must yield the right patient zero,
 * infection order and campaign class against ground truth; the
 * ForensicsReport must be byte-deterministic (golden digest); and
 * incremental re-analysis must be O(new), asserted via the report's
 * cost counters. Plus recovery-planner policy semantics.
 */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"
#include "fleet/scheduler.hh"
#include "forensics/forensics.hh"

#include "tests/common/json_checker.hh"

namespace rssd::forensics {
namespace {

fleet::FleetConfig
acceptanceFleet(fleet::Scenario scenario, std::uint64_t seed)
{
    // The acceptance configuration: 16 devices -> 4 shards, 40
    // benign ops per device, 16 victim pages (shared shape with the
    // FleetSim golden-digest test).
    fleet::FleetConfig cfg;
    cfg.devices = 16;
    cfg.shards = 4;
    cfg.seed = seed;
    cfg.opsPerDevice = 40;
    cfg.campaign.scenario = scenario;
    cfg.campaign.victimPages = 16;
    return cfg;
}

TEST(Forensics, OutbreakFindsPatientZeroAndOrder)
{
    fleet::FleetScheduler sched(
        acceptanceFleet(fleet::Scenario::Outbreak, 7));
    sched.run();
    const ForensicsReport rep = sched.runForensics();

    const forensics::GroundTruth truth = sched.groundTruth();
    ASSERT_TRUE(truth.anyInfected);
    EXPECT_TRUE(rep.correlation.anyDetected);
    EXPECT_EQ(rep.correlation.patientZero, truth.patientZero);
    EXPECT_EQ(rep.correlation.infectionOrder, truth.infectionOrder);
    EXPECT_TRUE(rep.patientZeroMatch);
    EXPECT_TRUE(rep.infectionOrderMatch);
    EXPECT_TRUE(rep.campaignClassMatch);
    EXPECT_EQ(rep.correlation.campaignClass, CampaignClass::Outbreak);

    // Every device was infected, detected, and chain-verified.
    EXPECT_EQ(rep.correlation.infectionOrder.size(), 16u);
    for (const DeviceFinding &f : rep.correlation.findings) {
        EXPECT_TRUE(f.chainIntact) << "device " << f.device;
        EXPECT_TRUE(f.finding.detected) << "device " << f.device;
    }

    // The spread graph chains the infection order.
    ASSERT_EQ(rep.correlation.spread.size(), 15u);
    for (std::size_t i = 0; i < rep.correlation.spread.size(); i++) {
        EXPECT_EQ(rep.correlation.spread[i].from,
                  rep.correlation.infectionOrder[i]);
        EXPECT_EQ(rep.correlation.spread[i].to,
                  rep.correlation.infectionOrder[i + 1]);
    }

    // Recovery executed: every victim back to fully intact.
    EXPECT_TRUE(rep.recoveryExecuted);
    ASSERT_EQ(rep.recovery.size(), 16u);
    for (const RecoveryOutcome &r : rep.recovery) {
        EXPECT_EQ(r.unresolved, 0u) << "device " << r.device;
        EXPECT_LT(r.victimIntactBefore, 1.0);
        EXPECT_DOUBLE_EQ(r.victimIntactAfter, 1.0)
            << "device " << r.device;
    }
}

TEST(Forensics, StaggeredReconstructsLateralSpread)
{
    fleet::FleetScheduler sched(
        acceptanceFleet(fleet::Scenario::Staggered, 7));
    sched.run();
    const ForensicsReport rep = sched.runForensics();

    const forensics::GroundTruth truth = sched.groundTruth();
    EXPECT_TRUE(rep.patientZeroMatch);
    EXPECT_TRUE(rep.infectionOrderMatch);
    EXPECT_TRUE(rep.campaignClassMatch);
    EXPECT_EQ(rep.correlation.campaignClass,
              CampaignClass::Staggered);
    EXPECT_EQ(rep.correlation.infectionOrder, truth.infectionOrder);

    // Staggered lateral spread: the observed lag between successive
    // infections tracks the campaign's stagger interval.
    fleet::CampaignConfig campaign;
    for (const SpreadEdge &e : rep.correlation.spread) {
        EXPECT_GT(e.lag, campaign.stagger / 2)
            << e.from << "->" << e.to;
        EXPECT_LT(e.lag, campaign.stagger * 2)
            << e.from << "->" << e.to;
    }
}

TEST(Forensics, ShardFloodClassifiedFromEvidence)
{
    fleet::FleetConfig cfg =
        acceptanceFleet(fleet::Scenario::ShardFlood, 7);
    cfg.campaign.floodPages = 512;
    cfg.campaign.floodSpanFraction = 0.02;
    fleet::FleetScheduler sched(cfg);
    sched.run();
    const ForensicsReport rep = sched.runForensics();

    EXPECT_EQ(rep.correlation.campaignClass,
              CampaignClass::ShardFlood);
    EXPECT_TRUE(rep.campaignClassMatch);

    // Exactly the flooder devices carry the flood signature, and
    // they all live on one shard (that is the attack).
    remote::ShardId flood_shard = 0;
    std::size_t flooders = 0;
    for (const DeviceFinding &f : rep.correlation.findings) {
        if (f.floodSuspect) {
            flood_shard = f.shard;
            flooders++;
        }
    }
    ASSERT_GT(flooders, 0u);
    for (const DeviceFinding &f : rep.correlation.findings) {
        if (f.floodSuspect) {
            EXPECT_EQ(f.shard, flood_shard);
        }
    }
}

TEST(Forensics, CapacityBoundedFloodPrunesButVictimsRecover)
{
    // The acceptance scenario for the retention GC: a shard-flood
    // against capacity-bounded, GC-enabled shards. The flood must
    // force real pruning (no permanent CapacityExceeded wall), yet
    // suspicion holds + per-stream quotas keep the victims'
    // pre-attack evidence inside the window: every stream still
    // chain-verifies (pruned ones via their signed re-anchor
    // records) and every encryptor victim recovers to 100% intact.
    fleet::FleetConfig cfg =
        acceptanceFleet(fleet::Scenario::ShardFlood, 7);
    cfg.campaign.floodPages = 512;
    cfg.campaign.floodSpanFraction = 0.02;
    cfg.cluster.shard.capacityBytes = 2 * units::MiB;
    cfg.cluster.shard.retention.gcEnabled = true;
    fleet::FleetScheduler sched(cfg);
    const fleet::FleetReport fleet_rep = sched.run();

    // The flood hit the capacity wall and fought the window instead
    // of stalling on it: segments were pruned, chains re-anchored,
    // and every shard still verifies end to end.
    EXPECT_GT(fleet_rep.totalSegmentsPruned, 0u);
    EXPECT_GT(fleet_rep.totalBytesPruned, 0u);
    EXPECT_TRUE(fleet_rep.allChainsOk);

    // Detector alarms placed eviction holds on flagged streams.
    std::uint64_t held = 0;
    for (const fleet::ShardReport &s : fleet_rep.shardReports)
        held += s.heldStreams;
    EXPECT_GT(held, 0u);

    const ForensicsReport rep = sched.runForensics();
    EXPECT_EQ(rep.totalSegmentsPruned, fleet_rep.totalSegmentsPruned);

    // Forensics walked the pruned streams by resuming from their
    // signed prune records — and every chain held up.
    std::uint64_t reanchors = 0;
    for (const DeviceFinding &f : rep.correlation.findings) {
        EXPECT_TRUE(f.chainIntact) << "device " << f.device;
        reanchors += f.reanchors;
    }
    EXPECT_GT(reanchors, 0u);

    // Every encryptor victim's pre-attack evidence survived the
    // flood: recovery runs to completion, 100% intact.
    std::uint64_t victims = 0;
    for (const RecoveryOutcome &r : rep.recovery) {
        const auto idx = static_cast<std::uint32_t>(r.device);
        if (fleet_rep.deviceReports[idx].role != "encryptor")
            continue;
        victims++;
        EXPECT_FALSE(r.beforePrunedHorizon) << "device " << r.device;
        EXPECT_EQ(r.unresolved, 0u) << "device " << r.device;
        EXPECT_DOUBLE_EQ(r.victimIntactAfter, 1.0)
            << "device " << r.device;
    }
    EXPECT_GT(victims, 0u);
}

TEST(Forensics, BenignFleetRaisesNothing)
{
    fleet::FleetScheduler sched(
        acceptanceFleet(fleet::Scenario::Benign, 7));
    sched.run();
    const ForensicsReport rep = sched.runForensics();

    EXPECT_FALSE(rep.correlation.anyDetected);
    EXPECT_EQ(rep.correlation.campaignClass, CampaignClass::Benign);
    EXPECT_TRUE(rep.campaignClassMatch);
    EXPECT_TRUE(rep.patientZeroMatch); // no patient zero, agreed
    EXPECT_TRUE(rep.infectionOrderMatch);
    EXPECT_TRUE(rep.recovery.empty());
    for (const DeviceFinding &f : rep.correlation.findings)
        EXPECT_FALSE(f.finding.detected) << "device " << f.device;
}

TEST(Forensics, ReportIsWellFormedJsonWithSchema)
{
    fleet::FleetScheduler sched(
        acceptanceFleet(fleet::Scenario::Outbreak, 11));
    sched.run();
    const std::string json = sched.runForensics().toJson();
    EXPECT_TRUE(test::JsonChecker(json).valid())
        << json.substr(0, 400);
    const std::string expect =
        "{\"schema\":" + std::to_string(kForensicsReportSchema) + ",";
    EXPECT_EQ(json.rfind(expect, 0), 0u) << json.substr(0, 40);
}

TEST(Forensics, SameSeedSameBytes)
{
    const fleet::FleetConfig cfg =
        acceptanceFleet(fleet::Scenario::Outbreak, 7);
    fleet::FleetScheduler a(cfg);
    fleet::FleetScheduler b(cfg);
    a.run();
    b.run();
    EXPECT_EQ(a.runForensics().toJson(), b.runForensics().toJson());
}

TEST(Forensics, GoldenReportDigest)
{
    // The acceptance configuration: 16 devices -> 4 shards,
    // outbreak, seed 7 (the rssd_forensics CLI's smoke run shares
    // scenario/seed). Digest history (every bump must name its
    // schema change):
    //   254f98...b529 — schema 1 (PR 4, initial)
    //   f8b3f4...9b14 — schema 2 (PR 5: retention-GC counters —
    //                   source segmentsPruned/bytesPruned, per-
    //                   finding segmentsPruned/entriesPruned/
    //                   reanchors, per-recovery
    //                   beforePrunedHorizon)
    //   4bd6f8...d3e3 — schema 3 (PR 6: replication — source
    //                   replication/liveShards, per-finding
    //                   replicas/replicasAlive/tailVotes/failovers,
    //                   per-recovery restoredFromShard)
    //   current       — schema 4 (PR 7: anti-entropy — third
    //                   "replica-aware" recovery plan in "plans")
    fleet::FleetScheduler sched(
        acceptanceFleet(fleet::Scenario::Outbreak, 7));
    sched.run();
    const std::string json = sched.runForensics().toJson();
    const std::string digest = crypto::toHex(
        crypto::Sha256::hash(json.data(), json.size()));
    EXPECT_EQ(digest,
              "339315dd677e8d277311ee17cc2becf5869c3104533f27dd9bc"
              "1c33154e00036");
}

TEST(Forensics, IncrementalReanalysisIsONew)
{
    // Analysis -> more evidence arrives -> re-analysis. The report's
    // cost counters must show the second pass verified exactly the
    // appended suffix — the O(new) property, pinned here.
    fleet::FleetScheduler sched(
        acceptanceFleet(fleet::Scenario::Outbreak, 7));
    sched.run();
    const ForensicsReport first = sched.runForensics();
    EXPECT_EQ(first.lastPass.segmentsCached, 0u);
    EXPECT_GT(first.lastPass.segmentsVerified, 0u);

    // Recovery execution itself wrote restored pages, which the
    // devices offloaded again: new sealed evidence in the cluster.
    const std::uint64_t at_second_scan =
        sched.cluster().totalSegments();
    ASSERT_GT(at_second_scan, first.lastPass.segmentsVerified);

    const ForensicsReport second = sched.runForensics();
    EXPECT_EQ(second.scanPasses, 2u);
    // O(new): the second pass verified exactly the appended suffix
    // and rode the verified-prefix cache for everything else.
    EXPECT_EQ(second.lastPass.segmentsVerified,
              at_second_scan - first.lastPass.segmentsVerified);
    EXPECT_EQ(second.lastPass.segmentsCached,
              first.lastPass.segmentsVerified);
    EXPECT_EQ(second.totalCost.segmentsVerified, at_second_scan);
}

// ---------------------------------------------------------------------
// Recovery planner policies
// ---------------------------------------------------------------------

std::vector<RestoreJob>
twoShardJobs()
{
    // Shard 0: devices 0 (8 MiB, damage 10), 2 (4 MiB, damage 99).
    // Shard 1: device 1 (16 MiB, damage 5).
    std::vector<RestoreJob> jobs(3);
    jobs[0] = {0, 0, 8 * units::MiB, 10, 100};
    jobs[1] = {1, 1, 16 * units::MiB, 5, 200};
    jobs[2] = {2, 0, 4 * units::MiB, 99, 300};
    return jobs;
}

PlannerConfig
mibPerSec(std::uint64_t mib)
{
    PlannerConfig cfg;
    cfg.shardBandwidthBytesPerSec = mib * units::MiB;
    return cfg;
}

TEST(RecoveryPlanner, GreedySerializesMostDamagedFirstPerShard)
{
    const RestorePlan plan = planRestores(
        twoShardJobs(), PlanPolicy::GreedyMostDamagedFirst,
        mibPerSec(1));
    ASSERT_EQ(plan.restores.size(), 3u);
    // Restores are reported in device order.
    const ScheduledRestore &d0 = plan.restores[0];
    const ScheduledRestore &d1 = plan.restores[1];
    const ScheduledRestore &d2 = plan.restores[2];

    // Shard 0: device 2 (damage 99) first, then device 0.
    EXPECT_EQ(d2.startAt, 0u);
    EXPECT_EQ(d2.finishAt, 4 * units::SEC);
    EXPECT_EQ(d0.startAt, d2.finishAt);
    EXPECT_EQ(d0.finishAt, 12 * units::SEC);
    // Shard 1 runs in parallel.
    EXPECT_EQ(d1.startAt, 0u);
    EXPECT_EQ(d1.finishAt, 16 * units::SEC);

    EXPECT_EQ(plan.makespan, 16 * units::SEC);
    EXPECT_EQ(plan.meanCompletion,
              (4 + 12 + 16) * units::SEC / 3);
}

TEST(RecoveryPlanner, FairShareSplitsBandwidthEqually)
{
    const RestorePlan plan = planRestores(
        twoShardJobs(), PlanPolicy::FairShare, mibPerSec(1));
    ASSERT_EQ(plan.restores.size(), 3u);
    const ScheduledRestore &d0 = plan.restores[0];
    const ScheduledRestore &d1 = plan.restores[1];
    const ScheduledRestore &d2 = plan.restores[2];

    // Shard 0 shares 1 MiB/s between devices 0 and 2: the 4 MiB job
    // finishes at 8 s (half rate), then the remaining 4 MiB of the
    // 8 MiB job runs at full rate: 8 + 4 = 12 s.
    EXPECT_EQ(d2.finishAt, 8 * units::SEC);
    EXPECT_EQ(d0.finishAt, 12 * units::SEC);
    // Everyone starts together under processor sharing.
    EXPECT_EQ(d0.startAt, 0u);
    EXPECT_EQ(d2.startAt, 0u);
    // Shard 1: single job, full bandwidth.
    EXPECT_EQ(d1.finishAt, 16 * units::SEC);

    EXPECT_EQ(plan.makespan, 16 * units::SEC);
}

TEST(RecoveryPlanner, ReplicaAwareSpreadsVictimsAcrossCopies)
{
    // Four victims all pinned to shard 0, but R-way replication left
    // each with a healthy copy on shard 1 too. Per-primary greedy
    // serializes all four on shard 0; the replica-aware policy
    // routes biggest-first to the least-loaded candidate source and
    // cuts the makespan in half — the before/after bandwidth claim.
    std::vector<RestoreJob> jobs(4);
    jobs[0] = {0, 0, 8 * units::MiB, 4, 0, {0, 1}};
    jobs[1] = {1, 0, 6 * units::MiB, 3, 0, {0, 1}};
    jobs[2] = {2, 0, 4 * units::MiB, 2, 0, {0, 1}};
    jobs[3] = {3, 0, 2 * units::MiB, 1, 0, {0, 1}};

    const RestorePlan before = planRestores(
        jobs, PlanPolicy::GreedyMostDamagedFirst, mibPerSec(1));
    EXPECT_EQ(before.makespan, 20 * units::SEC); // serial on shard 0

    const RestorePlan after =
        planRestores(jobs, PlanPolicy::ReplicaAware, mibPerSec(1));
    // 8 -> shard 0, 6 -> shard 1, 4 -> shard 1 (load 6 < 8),
    // 2 -> shard 0: both shards restore 10 MiB in parallel.
    EXPECT_EQ(after.makespan, 10 * units::SEC);
    EXPECT_LT(after.makespan, before.makespan);
    ASSERT_EQ(after.restores.size(), 4u);
    for (const ScheduledRestore &r : after.restores) {
        EXPECT_TRUE(r.shard == 0 || r.shard == 1)
            << "device " << r.device;
    }
    EXPECT_EQ(after.restores[0].shard, 0u);
    EXPECT_EQ(after.restores[1].shard, 1u);
    EXPECT_EQ(after.restores[2].shard, 1u);
    EXPECT_EQ(after.restores[3].shard, 0u);
}

TEST(RecoveryPlanner, ReplicaAwareFallsBackToThePrimary)
{
    // No candidate sources recorded (R=1, or no healthy agreeing
    // peer): the job stays on its primary — the plan degenerates to
    // per-shard greedy.
    const RestorePlan plan = planRestores(
        twoShardJobs(), PlanPolicy::ReplicaAware, mibPerSec(1));
    const RestorePlan greedy = planRestores(
        twoShardJobs(), PlanPolicy::GreedyMostDamagedFirst,
        mibPerSec(1));
    ASSERT_EQ(plan.restores.size(), greedy.restores.size());
    for (std::size_t i = 0; i < plan.restores.size(); i++) {
        EXPECT_EQ(plan.restores[i].shard, greedy.restores[i].shard);
        EXPECT_EQ(plan.restores[i].finishAt,
                  greedy.restores[i].finishAt);
    }
}

TEST(RecoveryPlanner, PoliciesShareMakespanWhenOneJobPerShard)
{
    std::vector<RestoreJob> jobs(2);
    jobs[0] = {0, 0, 10 * units::MiB, 1, 0};
    jobs[1] = {1, 1, 20 * units::MiB, 2, 0};
    const RestorePlan greedy = planRestores(
        jobs, PlanPolicy::GreedyMostDamagedFirst, mibPerSec(10));
    const RestorePlan fair =
        planRestores(jobs, PlanPolicy::FairShare, mibPerSec(10));
    EXPECT_EQ(greedy.makespan, fair.makespan);
    EXPECT_EQ(greedy.meanCompletion, fair.meanCompletion);
}

TEST(RecoveryPlanner, HugeJobsDoNotOverflowTickArithmetic)
{
    // bytes * SEC wraps a uint64 past ~17 GiB; restore jobs are
    // history-sized, so terabytes are legitimate. 1 TiB at
    // 400 MiB/s = 2^20/400 s = 2621.44 s, exactly 2621440000000 ns
    // (a wrapped multiply would land orders of magnitude off).
    std::vector<RestoreJob> jobs(2);
    jobs[0] = {0, 0, units::TiB, 7, 0};
    jobs[1] = {1, 0, units::TiB, 3, 0};
    const Tick one = 2621440000000ull;

    const RestorePlan greedy = planRestores(
        jobs, PlanPolicy::GreedyMostDamagedFirst, mibPerSec(400));
    EXPECT_EQ(greedy.restores[0].finishAt, one);
    EXPECT_EQ(greedy.restores[1].finishAt, 2 * one);
    EXPECT_EQ(greedy.makespan, 2 * one);

    // Fair share: equal sizes share bandwidth, both finish at 2x.
    const RestorePlan fair = planRestores(
        jobs, PlanPolicy::FairShare, mibPerSec(400));
    EXPECT_EQ(fair.restores[0].finishAt, 2 * one);
    EXPECT_EQ(fair.restores[1].finishAt, 2 * one);
}

TEST(RecoveryPlanner, EmptyJobListYieldsEmptyPlan)
{
    const RestorePlan plan = planRestores(
        {}, PlanPolicy::FairShare, mibPerSec(1));
    EXPECT_TRUE(plan.restores.empty());
    EXPECT_EQ(plan.makespan, 0u);
    EXPECT_EQ(plan.meanCompletion, 0u);
}

} // namespace
} // namespace rssd::forensics
