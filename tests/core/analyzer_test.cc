/**
 * @file
 * Post-attack analyzer tests: evidence-chain verification, offline
 * detection of all three Ransomware 2.0 attacks, per-victim
 * backtracking, and the recommended recovery point.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "core/analyzer.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

namespace rssd::core {
namespace {

RssdConfig
config()
{
    RssdConfig cfg = RssdConfig::forTests();
    cfg.segmentPages = 32;
    cfg.pumpThreshold = 32;
    return cfg;
}

class AnalyzerTest : public ::testing::Test
{
  protected:
    AnalyzerTest() : dev_(config(), clock_), victim_(0, 128) {}

    AnalysisReport
    analyze()
    {
        dev_.drainOffload();
        history_ = std::make_unique<DeviceHistory>(dev_);
        PostAttackAnalyzer analyzer(*history_);
        return analyzer.analyze();
    }

    VirtualClock clock_;
    RssdDevice dev_;
    attack::VictimDataset victim_;
    std::unique_ptr<DeviceHistory> history_;
};

TEST_F(AnalyzerTest, CleanHistoryVerifiesAndStaysQuiet)
{
    victim_.populate(dev_);
    const AnalysisReport report = analyze();
    EXPECT_TRUE(report.chainIntact);
    EXPECT_FALSE(report.finding.detected);
    EXPECT_EQ(report.totalEntries, 128u);
}

TEST_F(AnalyzerTest, DetectsClassicAttackAndWindow)
{
    victim_.populate(dev_);
    const std::uint64_t pre_attack = dev_.opLog().totalAppended();
    attack::ClassicRansomware attack;
    attack.run(dev_, clock_, victim_);

    const AnalysisReport report = analyze();
    EXPECT_TRUE(report.chainIntact);
    ASSERT_TRUE(report.finding.detected);
    EXPECT_EQ(report.finding.firstSuspectSeq, pre_attack);
    EXPECT_EQ(report.finding.implicatedOps, 128u);
    EXPECT_EQ(report.finding.recommendedRecoverySeq, pre_attack);
}

TEST_F(AnalyzerTest, DetectsTimingAttackOffline)
{
    victim_.populate(dev_);
    const std::uint64_t pre_attack = dev_.opLog().totalAppended();

    attack::TimingAttack::Params params;
    params.encryptionInterval = units::SEC;
    params.benignOpsPerEncrypt = 32;
    attack::TimingAttack attack(params);
    attack.run(dev_, clock_, victim_);

    const AnalysisReport report = analyze();
    ASSERT_TRUE(report.finding.detected);
    // The first implicated op is the first victim encryption, even
    // though it was buried in benign traffic.
    EXPECT_EQ(report.finding.firstSuspectSeq, pre_attack);
    EXPECT_GE(report.finding.implicatedOps, 100u);
}

TEST_F(AnalyzerTest, DetectsTrimmingAttackViaTrimBurst)
{
    victim_.populate(dev_);
    attack::TrimmingAttack attack;
    attack.run(dev_, clock_, victim_);

    const AnalysisReport report = analyze();
    ASSERT_TRUE(report.finding.detected);
    // Recovery at the recommendation restores all victim data.
    RecoveryEngine engine(*history_);
    const RecoveryReport rec = engine.recoverToLogSeq(
        report.finding.recommendedRecoverySeq);
    EXPECT_TRUE(rec.ok());
    EXPECT_DOUBLE_EQ(victim_.intactFraction(dev_), 1.0);
}

TEST_F(AnalyzerTest, BacktrackReconstructsPerLpaHistory)
{
    std::vector<std::uint8_t> v1(dev_.pageSize(), 1);
    std::vector<std::uint8_t> v2(dev_.pageSize(), 2);
    dev_.writePage(9, v1);
    dev_.writePage(9, v2);
    dev_.trimPage(9);
    dev_.writePage(9, v1);
    dev_.writePage(8, v1); // unrelated

    dev_.drainOffload();
    DeviceHistory history(dev_);
    PostAttackAnalyzer analyzer(history);
    const auto chain = analyzer.backtrackLpa(9);

    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain[0].op, log::OpKind::Write);
    EXPECT_EQ(chain[1].op, log::OpKind::Write);
    EXPECT_EQ(chain[1].prevDataSeq, chain[0].dataSeq);
    EXPECT_EQ(chain[2].op, log::OpKind::Trim);
    EXPECT_EQ(chain[2].prevDataSeq, chain[1].dataSeq);
    EXPECT_EQ(chain[3].op, log::OpKind::Write);
    EXPECT_EQ(chain[3].prevDataSeq, log::kNoDataSeq); // after trim
}

TEST_F(AnalyzerTest, BacktrackOfUntouchedLpaIsEmpty)
{
    dev_.writePage(1, {});
    dev_.drainOffload();
    DeviceHistory history(dev_);
    PostAttackAnalyzer analyzer(history);
    EXPECT_TRUE(analyzer.backtrackLpa(500).empty());
}

TEST_F(AnalyzerTest, AnalysisCostScalesWithHistory)
{
    victim_.populate(dev_);
    attack::ClassicRansomware attack;
    attack.run(dev_, clock_, victim_);

    const AnalysisReport report = analyze();
    EXPECT_GT(report.duration(), 0u);
    EXPECT_GT(report.bytesFetched, 0u);
    EXPECT_EQ(report.remoteSegments,
              dev_.backupStore().segmentCount());
}

TEST_F(AnalyzerTest, EventConversionCarriesPrevEntropy)
{
    std::vector<std::uint8_t> low(dev_.pageSize(), 7); // 0 bits
    dev_.writePage(1, low);
    // Encrypt-like overwrite.
    std::vector<std::uint8_t> high(dev_.pageSize());
    crypto::ChaCha20 c(crypto::ChaCha20::deriveKey("x"),
                       crypto::ChaCha20::nonceFromSequence(0));
    c.apply(high);
    dev_.writePage(1, high);

    dev_.drainOffload();
    DeviceHistory history(dev_);
    PostAttackAnalyzer analyzer(history);
    const detect::IoEvent ev =
        analyzer.eventFor(history.entries()[1]);
    EXPECT_TRUE(ev.overwrite);
    EXPECT_FLOAT_EQ(ev.prevEntropy, 0.0f);
    EXPECT_GT(ev.entropy, 7.2f);
}

TEST_F(AnalyzerTest, ForensicsSurvivesPostAttackActivity)
{
    victim_.populate(dev_);
    attack::ClassicRansomware attack;
    attack.run(dev_, clock_, victim_);
    // The attacker keeps using the machine afterwards.
    for (int i = 0; i < 300; i++)
        dev_.writePage(300 + i % 50, {});

    const AnalysisReport report = analyze();
    EXPECT_TRUE(report.chainIntact);
    EXPECT_TRUE(report.finding.detected);
}

TEST(ScanEntries, GappedLogSeqsFromPrunedHorizonScanCorrectly)
{
    // A retention-GC prune that overtakes an incremental forensics
    // scanner leaves the cached entry list seq-GAPPED: the verified
    // prefix (from genesis) followed by the post-horizon suffix.
    // scanEntries must look implicated timestamps up by logSeq, not
    // by dense offset (which would read out of bounds here).
    std::vector<log::LogEntry> entries;
    const auto write = [&entries](std::uint64_t seq, std::uint64_t data,
                                  std::uint64_t prev, Tick t,
                                  float entropy) {
        log::LogEntry e;
        e.logSeq = seq;
        e.op = log::OpKind::Write;
        e.lpa = 5;
        e.dataSeq = data;
        e.prevDataSeq = prev;
        e.timestamp = t;
        e.entropy = entropy;
        entries.push_back(e);
    };

    // Cached benign prefix: logSeq 0..9.
    for (std::uint64_t i = 0; i < 10; i++)
        write(i, i, log::kNoDataSeq, Tick(i) * units::MS, 1.0f);
    // Pruned gap: logSeq 10..99 expired unseen.
    // Post-horizon suffix: low-entropy versions overwritten by
    // high-entropy ciphertext — the encryption signature.
    for (std::uint64_t i = 0; i < 5; i++) {
        const std::uint64_t seq = 100 + 2 * i;
        write(seq, 1000 + seq, log::kNoDataSeq,
              Tick(seq) * units::MS, 2.0f);
        write(seq + 1, 1000 + seq + 1, 1000 + seq,
              Tick(seq + 1) * units::MS, 7.9f);
    }

    OfflineScanConfig cfg;
    cfg.auditor.alarmCount = 4;
    const AttackFinding finding = scanEntries(entries, cfg);
    ASSERT_TRUE(finding.detected);
    EXPECT_EQ(finding.firstSuspectSeq, 101u);
    EXPECT_EQ(finding.lastSuspectSeq, 109u);
    EXPECT_EQ(finding.attackStart, 101 * units::MS);
    EXPECT_EQ(finding.attackEnd, 109 * units::MS);
}

} // namespace
} // namespace rssd::core
