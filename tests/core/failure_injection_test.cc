/**
 * @file
 * Failure injection: the guarantees must hold when parts of the
 * environment misbehave — lossy links, a full remote store, attacks
 * continuing after analysis, and adversarial segment injection.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "core/analyzer.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"
#include "sim/rng.hh"

namespace rssd::core {
namespace {

RssdConfig
config()
{
    RssdConfig cfg = RssdConfig::forTests();
    cfg.segmentPages = 16;
    cfg.pumpThreshold = 16;
    return cfg;
}

TEST(FailureInjection, LossyLinkDelaysButPreservesEverything)
{
    VirtualClock clock;
    RssdDevice dev(config(), clock);

    std::vector<std::uint8_t> v(dev.pageSize(), 0x3C);
    for (int i = 0; i < 100; i++) {
        // Corrupt every 4th transfer; the transport retransmits.
        if (i % 4 == 0)
            dev.link().tx().corruptNextTransfer();
        dev.writePage(i % 10, v);
    }
    dev.drainOffload();

    EXPECT_GT(dev.transport().stats().retransmits, 0u);
    EXPECT_EQ(dev.retention().size(), 0u); // everything shipped
    EXPECT_TRUE(dev.backupStore().verifyFullChain());

    DeviceHistory history(dev);
    EXPECT_TRUE(history.verifyEvidenceChain());
    EXPECT_EQ(history.entries().size(), 100u);
}

TEST(FailureInjection, RemoteFullStillRecoversFromLocalHolds)
{
    // When the remote budget is exhausted, RSSD keeps holds locally:
    // writes may eventually fail, but nothing already written is
    // lost and recovery still works from the local side.
    RssdConfig cfg = config();
    cfg.remote.capacityBytes = 24 * units::KiB; // a couple segments
    VirtualClock clock;
    RssdDevice dev(cfg, clock);

    attack::VictimDataset victim(0, 32);
    victim.populate(dev);
    const std::uint64_t pre_attack = dev.opLog().totalAppended();

    // Incompressible ciphertext fills the remote budget quickly.
    attack::ClassicRansomware attack;
    attack.run(dev, clock, victim);
    dev.drainOffload();
    ASSERT_TRUE(dev.offload().remoteFull());
    ASSERT_GT(dev.retention().size(), 0u); // held locally instead

    DeviceHistory history(dev);
    EXPECT_TRUE(history.verifyEvidenceChain());
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToLogSeq(pre_attack);
    EXPECT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev), 1.0);
}

TEST(FailureInjection, ForgedSegmentCannotEnterTheChain)
{
    VirtualClock clock;
    RssdDevice dev(config(), clock);
    for (int i = 0; i < 40; i++)
        dev.writePage(i % 4, {});
    dev.drainOffload();
    const std::size_t stored = dev.backupStore().segmentCount();

    // Attacker forges a segment with their own key.
    log::SegmentCodec rogue = log::SegmentCodec::fromSeed("rogue");
    log::Segment forged;
    forged.id = stored;
    forged.prevId = stored - 1;
    Tick ack = 0;
    EXPECT_FALSE(dev.backupStore().ingestSegment(rogue.seal(forged),
                                                 clock.now(), ack));
    EXPECT_EQ(dev.backupStore().segmentCount(), stored);
    EXPECT_TRUE(dev.backupStore().verifyFullChain());
}

TEST(FailureInjection, ReplayedDeviceSegmentIsRejected)
{
    VirtualClock clock;
    RssdDevice dev(config(), clock);
    for (int i = 0; i < 40; i++)
        dev.writePage(i % 4, {});
    dev.drainOffload();
    ASSERT_GT(dev.backupStore().segmentCount(), 1u);

    // Even a *genuine* old segment can't be replayed to truncate
    // history: ordering is enforced.
    const log::SealedSegment old_seg =
        dev.backupStore().sealedSegment(0);
    Tick ack = 0;
    EXPECT_FALSE(
        dev.backupStore().ingestSegment(old_seg, clock.now(), ack));
}

TEST(FailureInjection, AttackerChurnAfterIncidentCannotEraseEvidence)
{
    VirtualClock clock;
    RssdDevice dev(config(), clock);
    attack::VictimDataset victim(0, 96);
    victim.populate(dev);
    const std::uint64_t pre_attack = dev.opLog().totalAppended();

    attack::ClassicRansomware attack;
    attack.run(dev, clock, victim);

    // The attacker tries to bury the evidence under churn (a form of
    // GC attack against the log itself).
    Rng rng(11);
    for (int i = 0; i < 10000; i++)
        dev.writePage(100 + rng.below(500), {});

    dev.drainOffload();
    DeviceHistory history(dev);
    ASSERT_TRUE(history.verifyEvidenceChain());

    PostAttackAnalyzer analyzer(history);
    const AnalysisReport report = analyzer.analyze();
    ASSERT_TRUE(report.finding.detected);
    EXPECT_EQ(report.finding.firstSuspectSeq, pre_attack);

    RecoveryEngine engine(history);
    ASSERT_TRUE(engine.recoverToLogSeq(pre_attack).ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev), 1.0);
}

TEST(FailureInjection, MultiPageCommandsKeepInvariants)
{
    VirtualClock clock;
    RssdDevice dev(config(), clock);

    nvme::Command w;
    w.op = nvme::Opcode::Write;
    w.lpa = 10;
    w.npages = 16;
    ASSERT_TRUE(dev.submit(w).ok());

    nvme::Command t;
    t.op = nvme::Opcode::Trim;
    t.lpa = 10;
    t.npages = 16;
    ASSERT_TRUE(dev.submit(t).ok());

    // 16 writes + 16 trims logged; 16 versions retained.
    EXPECT_EQ(dev.opLog().totalAppended(), 32u);
    const std::uint64_t retained = dev.retention().size() +
        dev.offload().stats().pagesOffloaded;
    EXPECT_EQ(retained, 16u);
    EXPECT_TRUE(dev.opLog().verifyHeldChain());
}

} // namespace
} // namespace rssd::core
