/**
 * @file
 * Enhanced-TRIM tests (paper §3): host-visible trim semantics are
 * preserved, but the trimmed data is retained and recoverable — the
 * trimming attack erases nothing.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

namespace rssd::core {
namespace {

class EnhancedTrimTest : public ::testing::Test
{
  protected:
    EnhancedTrimTest() : dev_(RssdConfig::forTests(), clock_) {}

    std::vector<std::uint8_t>
    page(std::uint8_t fill)
    {
        return std::vector<std::uint8_t>(dev_.pageSize(), fill);
    }

    VirtualClock clock_;
    RssdDevice dev_;
};

TEST_F(EnhancedTrimTest, HostSeesNormalTrimSemantics)
{
    dev_.writePage(2, page(0xAB));
    dev_.trimPage(2);
    // Reads return zeros, exactly like a conventional deterministic-
    // read-zero-after-trim SSD.
    EXPECT_EQ(dev_.readPage(2).data, page(0x00));
    // Rewriting after trim works.
    dev_.writePage(2, page(0xCD));
    EXPECT_EQ(dev_.readPage(2).data, page(0xCD));
}

TEST_F(EnhancedTrimTest, TrimmedDataIsPhysicallyRetained)
{
    dev_.writePage(3, page(0x5C));
    const flash::Ppa old = dev_.ftl().mappingOf(3);
    dev_.trimPage(3);

    EXPECT_EQ(dev_.ftl().nand().state(old),
              flash::PageState::Programmed);
    EXPECT_EQ(dev_.ftl().nand().content(old), page(0x5C));
    EXPECT_TRUE(dev_.ftl().isHeld(old));
}

TEST_F(EnhancedTrimTest, TrimmedDataSurvivesOffload)
{
    dev_.writePage(4, page(0x66));
    dev_.trimPage(4);
    dev_.drainOffload();

    // Content moved to the remote store; still recoverable.
    bool found = false;
    const auto &store = dev_.backupStore();
    for (std::size_t id = 0; id < store.segmentCount(); id++) {
        for (const log::PageRecord &p : store.openSegment(id).pages) {
            if (p.lpa == 4 && p.content == page(0x66) &&
                p.cause == log::RetainCause::Trim) {
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(EnhancedTrimTest, RecoveryRestoresTrimmedPage)
{
    dev_.writePage(5, page(0x77));
    const std::uint64_t pre_trim_seq = dev_.opLog().totalAppended();
    dev_.trimPage(5);
    dev_.drainOffload();

    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport report =
        engine.recoverToLogSeq(pre_trim_seq);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(dev_.readPage(5).data, page(0x77));
}

TEST_F(EnhancedTrimTest, TrimmingAttackCausesZeroDataLoss)
{
    // The full paper scenario: trimming attack against RSSD, then
    // recovery from the evidence chain.
    attack::VictimDataset victim(0, 128);
    victim.populate(dev_);
    const Tick attack_start = clock_.now();

    attack::TrimmingAttack attack;
    attack.run(dev_, clock_, victim);
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev_), 0.0);

    dev_.drainOffload();
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport report = engine.recoverToTime(attack_start);

    EXPECT_TRUE(report.ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev_), 1.0);
}

TEST_F(EnhancedTrimTest, MassTrimRetainsEverything)
{
    for (int i = 0; i < 200; i++)
        dev_.writePage(i, page(static_cast<std::uint8_t>(i)));
    for (int i = 0; i < 200; i++)
        dev_.trimPage(i);

    // All 200 versions retained (locally or already shipped).
    const std::uint64_t retained =
        dev_.retention().size() + dev_.offload().stats().pagesOffloaded;
    EXPECT_EQ(retained, 200u);
    EXPECT_EQ(dev_.stats().loggedTrims, 200u);
}

} // namespace
} // namespace rssd::core
