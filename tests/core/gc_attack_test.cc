/**
 * @file
 * GC-attack tests against RSSD (docs/ARCHITECTURE.md: zero data loss): capacity pressure
 * becomes offload backpressure, never loss of retained data.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

namespace rssd::core {
namespace {

RssdConfig
attackConfig()
{
    RssdConfig cfg = RssdConfig::forTests();
    cfg.segmentPages = 64;
    cfg.pumpThreshold = 128;
    return cfg;
}

TEST(GcAttackOnRssd, FloodCausesBackpressureNotLoss)
{
    VirtualClock clock;
    RssdDevice dev(attackConfig(), clock);

    attack::VictimDataset victim(0, 128);
    victim.populate(dev);

    attack::GcAttack::Params params;
    params.floodCapacityMultiple = 2.0;
    params.floodSpanFraction = 0.4;
    attack::GcAttack attack(params);
    const attack::AttackReport report = attack.run(dev, clock, victim);

    // The attack's writes all succeeded (the device absorbed the
    // flood by offloading), and no retained page was dropped.
    EXPECT_EQ(report.writeErrors, 0u);
    EXPECT_GT(dev.offload().stats().pagesOffloaded, 0u);
    EXPECT_FALSE(dev.offload().remoteFull());
}

TEST(GcAttackOnRssd, VictimDataFullyRecoverable)
{
    VirtualClock clock;
    RssdDevice dev(attackConfig(), clock);

    attack::VictimDataset victim(0, 128);
    victim.populate(dev);
    const Tick attack_start = clock.now();

    attack::GcAttack::Params params;
    params.floodCapacityMultiple = 1.5;
    params.floodSpanFraction = 0.4;
    attack::GcAttack attack(params);
    attack.run(dev, clock, victim);
    ASSERT_DOUBLE_EQ(victim.intactFraction(dev), 0.0);

    dev.drainOffload();
    DeviceHistory history(dev);
    ASSERT_TRUE(history.verifyEvidenceChain());
    RecoveryEngine engine(history);
    const RecoveryReport rec = engine.recoverToTime(attack_start);

    EXPECT_TRUE(rec.ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev), 1.0);
}

TEST(GcAttackOnRssd, GcNeverErasesHeldPages)
{
    // Keep a rolling window of holds while GC churns heavily; the
    // marker version must stay reachable end to end — on local flash
    // while held, in the remote store once offloaded.
    VirtualClock clock;
    RssdConfig cfg = attackConfig();
    cfg.segmentPages = 64;
    cfg.pumpThreshold = 256;
    RssdDevice dev(cfg, clock);

    std::vector<std::uint8_t> marker(dev.pageSize(), 0xD7);
    dev.writePage(0, marker);
    dev.writePage(0, std::vector<std::uint8_t>(dev.pageSize(), 0x00));
    const std::uint64_t marker_seq = 0;

    Rng rng(3);
    for (int i = 0; i < 20000; i++)
        dev.writePage(10 + rng.below(200), {});
    ASSERT_GT(dev.ftl().stats().gcErases, 0u);

    // Locate the marker version, wherever it ended up.
    bool found = false;
    const auto held = dev.retention().findByDataSeq(marker_seq);
    if (held) {
        EXPECT_EQ(dev.ftl().nand().content(held->ppa), marker);
        found = true;
    } else {
        const auto &store = dev.backupStore();
        for (std::size_t id = 0; id < store.segmentCount() && !found;
             id++) {
            for (const log::PageRecord &p :
                 store.openSegment(id).pages) {
                if (p.dataSeq == marker_seq) {
                    EXPECT_EQ(p.content, marker);
                    found = true;
                    break;
                }
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(GcAttackOnRssd, HeldRelocationsTrackedByRetentionIndex)
{
    VirtualClock clock;
    RssdConfig cfg = attackConfig();
    cfg.pumpThreshold = 100000; // never auto-pump
    RssdDevice dev(cfg, clock);

    for (int i = 0; i < 50; i++)
        dev.writePage(i, {});
    for (int i = 0; i < 50; i++)
        dev.writePage(i, {}); // 50 holds

    Rng rng(4);
    for (int i = 0; i < 6000; i++)
        dev.writePage(100 + rng.below(100), {});

    // Index and FTL agree on every held location.
    EXPECT_EQ(dev.ftl().heldPageCount(), dev.retention().size());
    for (std::uint64_t seq = 0; seq < 50; seq++) {
        const auto p = dev.retention().findByDataSeq(seq);
        if (!p)
            continue;
        EXPECT_TRUE(dev.ftl().isHeld(p->ppa)) << "seq " << seq;
        EXPECT_EQ(dev.ftl().nand().oob(p->ppa).seq, p->dataSeq);
    }
}

TEST(GcAttackOnRssd, StallResolvesThroughOffload)
{
    // Tiny pump threshold off, so pressure builds, then the write
    // path itself must force-drain and continue.
    VirtualClock clock;
    RssdConfig cfg = attackConfig();
    cfg.pumpThreshold = 1u << 30; // never pump opportunistically
    RssdDevice dev(cfg, clock);

    Rng rng(5);
    std::uint64_t writes = 0;
    for (int i = 0; i < 30000; i++) {
        const auto c = dev.writePage(rng.below(300), {});
        ASSERT_TRUE(c.ok()) << "write " << i;
        writes++;
    }
    EXPECT_EQ(writes, 30000u);
    EXPECT_GT(dev.stats().backpressureStalls, 0u);
    EXPECT_EQ(dev.stats().deviceFullErrors, 0u);
}

} // namespace
} // namespace rssd::core
