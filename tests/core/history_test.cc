/**
 * @file
 * DeviceHistory tests: the merged local+remote view that recovery
 * and analysis operate on, plus selective range recovery.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "core/history.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

namespace rssd::core {
namespace {

class HistoryTest : public ::testing::Test
{
  protected:
    HistoryTest() : dev_(config(), clock_) {}

    static RssdConfig
    config()
    {
        RssdConfig cfg = RssdConfig::forTests();
        cfg.segmentPages = 8;
        cfg.pumpThreshold = 8;
        return cfg;
    }

    std::vector<std::uint8_t>
    page(std::uint8_t fill)
    {
        return std::vector<std::uint8_t>(dev_.pageSize(), fill);
    }

    VirtualClock clock_;
    RssdDevice dev_;
};

TEST_F(HistoryTest, MergesRemoteAndLocalEntriesInOrder)
{
    for (int i = 0; i < 40; i++)
        dev_.writePage(i % 4, page(static_cast<std::uint8_t>(i)));
    // Some entries shipped, some still local.
    ASSERT_GT(dev_.backupStore().segmentCount(), 0u);
    ASSERT_GT(dev_.opLog().size(), 0u);

    DeviceHistory history(dev_);
    ASSERT_EQ(history.entries().size(), 40u);
    for (std::uint32_t i = 0; i < 40; i++)
        EXPECT_EQ(history.entries()[i].logSeq, i);
}

TEST_F(HistoryTest, VersionSourcesAreClassified)
{
    dev_.writePage(0, page(0x01)); // will be shipped remote
    for (int i = 0; i < 20; i++)
        dev_.writePage(0, page(static_cast<std::uint8_t>(0x10 + i)));
    // Last overwrite is probably still held locally; the current
    // version is live.
    DeviceHistory history(dev_);

    std::size_t live = 0, held = 0, remote = 0;
    for (const log::LogEntry &e : history.entries()) {
        const VersionRecord *v = history.findVersion(e.dataSeq);
        ASSERT_NE(v, nullptr);
        switch (v->source) {
          case VersionSource::LiveOnDevice: live++; break;
          case VersionSource::HeldOnDevice: held++; break;
          case VersionSource::RemoteSegment: remote++; break;
        }
    }
    EXPECT_EQ(live, 1u);
    EXPECT_GT(remote, 0u);
    EXPECT_EQ(live + held + remote, 21u);
}

TEST_F(HistoryTest, ContentReadableFromEverySource)
{
    dev_.writePage(5, page(0xA1));
    for (int i = 0; i < 20; i++)
        dev_.writePage(5, page(static_cast<std::uint8_t>(i)));

    DeviceHistory history(dev_);
    // Version 0 (0xA1) went remote; verify content through the
    // history regardless of where it lives.
    const log::LogEntry &first = history.entries()[0];
    const VersionRecord *v = history.findVersion(first.dataSeq);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(history.contentOf(*v), page(0xA1));
}

TEST_F(HistoryTest, EntropyLookupByVersion)
{
    dev_.writePage(1, page(0x00)); // entropy 0
    DeviceHistory history(dev_);
    const log::LogEntry &e = history.entries()[0];
    EXPECT_FLOAT_EQ(history.entropyOf(e.dataSeq), 0.0f);
    EXPECT_EQ(history.entropyOf(9999), detect::kNoEntropy);
}

TEST_F(HistoryTest, CostAccountsFetchTraffic)
{
    for (int i = 0; i < 64; i++)
        dev_.writePage(i % 4, page(1));
    dev_.drainOffload();

    const Tick before = clock_.now();
    DeviceHistory history(dev_);
    EXPECT_GT(history.cost().segmentsFetched, 0u);
    EXPECT_GT(history.cost().bytesFetched, 0u);
    EXPECT_GT(clock_.now(), before); // fetch consumed link time
}

TEST_F(HistoryTest, RangeRecoveryLeavesOutOfScopeAlone)
{
    attack::VictimDataset docs(0, 32);
    attack::VictimDataset media(100, 32);
    docs.populate(dev_);
    media.populate(dev_);
    const std::uint64_t pre_attack = dev_.opLog().totalAppended();

    attack::ClassicRansomware attack;
    attack.run(dev_, clock_, docs);  // only "docs" is hit
    attack.run(dev_, clock_, media); // ...then "media" too

    // Selectively restore just the docs range.
    dev_.drainOffload();
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverRange(0, 32, pre_attack);

    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.pagesRestored, 32u);
    EXPECT_DOUBLE_EQ(docs.intactFraction(dev_), 1.0);
    // Media stays encrypted: out of scope.
    EXPECT_DOUBLE_EQ(media.intactFraction(dev_), 0.0);
}

TEST_F(HistoryTest, RangeRecoveryCheaperThanFullRollback)
{
    attack::VictimDataset victim(0, 16);
    victim.populate(dev_);
    for (int i = 0; i < 500; i++)
        dev_.writePage(200 + i % 100,
                       page(static_cast<std::uint8_t>(i)));
    const std::uint64_t pre = 16;

    dev_.drainOffload();
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverRange(0, 16, pre);
    EXPECT_TRUE(r.ok());
    // Only the 16 in-scope LBAs were examined, not the 100 churned.
    EXPECT_EQ(r.lpasExamined, 16u);
}

TEST_F(HistoryTest, EmptyDeviceHistoryIsSane)
{
    DeviceHistory history(dev_);
    EXPECT_TRUE(history.entries().empty());
    EXPECT_TRUE(history.verifyEvidenceChain());
    EXPECT_EQ(history.findVersion(0), nullptr);
    EXPECT_TRUE(history.entriesFor(0).empty());
}

} // namespace
} // namespace rssd::core
