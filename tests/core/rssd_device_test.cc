/**
 * @file
 * RssdDevice basics: host semantics are unchanged (reads, writes,
 * trims behave like a normal SSD), while every mutation is logged
 * and every stale page is retained.
 */

#include <gtest/gtest.h>

#include "core/rssd_device.hh"
#include "sim/rng.hh"

namespace rssd::core {
namespace {

class RssdDeviceTest : public ::testing::Test
{
  protected:
    RssdDeviceTest() : dev_(RssdConfig::forTests(), clock_) {}

    std::vector<std::uint8_t>
    page(std::uint8_t fill)
    {
        return std::vector<std::uint8_t>(dev_.pageSize(), fill);
    }

    VirtualClock clock_;
    RssdDevice dev_;
};

TEST_F(RssdDeviceTest, HostSemanticsWriteReadTrim)
{
    ASSERT_TRUE(dev_.writePage(4, page(0xAA)).ok());
    EXPECT_EQ(dev_.readPage(4).data, page(0xAA));
    ASSERT_TRUE(dev_.trimPage(4).ok());
    EXPECT_EQ(dev_.readPage(4).data, page(0x00));
}

TEST_F(RssdDeviceTest, EveryWriteIsLogged)
{
    dev_.writePage(1, page(1));
    dev_.writePage(2, page(2));
    dev_.writePage(1, page(3));
    EXPECT_EQ(dev_.opLog().totalAppended(), 3u);
    EXPECT_EQ(dev_.stats().loggedWrites, 3u);

    const log::LogEntry &e = dev_.opLog().at(2);
    EXPECT_EQ(e.op, log::OpKind::Write);
    EXPECT_EQ(e.lpa, 1u);
    EXPECT_NE(e.prevDataSeq, log::kNoDataSeq); // overwrite pointer
}

TEST_F(RssdDeviceTest, TrimsAreLogged)
{
    dev_.writePage(5, page(1));
    dev_.trimPage(5);
    EXPECT_EQ(dev_.stats().loggedTrims, 1u);
    const log::LogEntry &e = dev_.opLog().at(1);
    EXPECT_EQ(e.op, log::OpKind::Trim);
    EXPECT_EQ(e.lpa, 5u);
    EXPECT_NE(e.prevDataSeq, log::kNoDataSeq);
}

TEST_F(RssdDeviceTest, TrimOfUnwrittenIsNotLogged)
{
    dev_.trimPage(9);
    EXPECT_EQ(dev_.opLog().totalAppended(), 0u);
}

TEST_F(RssdDeviceTest, OverwriteRetainsOldVersion)
{
    dev_.writePage(7, page(0x11));
    const flash::Ppa old = dev_.ftl().mappingOf(7);
    dev_.writePage(7, page(0x22));

    EXPECT_TRUE(dev_.ftl().isHeld(old));
    EXPECT_EQ(dev_.retention().size(), 1u);
    // The retained content is still the old version.
    EXPECT_EQ(dev_.ftl().nand().content(old), page(0x11));
}

TEST_F(RssdDeviceTest, TrimRetainsData)
{
    dev_.writePage(8, page(0x33));
    const flash::Ppa old = dev_.ftl().mappingOf(8);
    dev_.trimPage(8);

    EXPECT_TRUE(dev_.ftl().isHeld(old));
    const auto retained =
        dev_.retention().findByDataSeq(dev_.ftl().nand().oob(old).seq);
    ASSERT_TRUE(retained.has_value());
    EXPECT_EQ(retained->cause, log::RetainCause::Trim);
}

TEST_F(RssdDeviceTest, EntropyComputedAndLogged)
{
    dev_.writePage(3, page(0x00)); // constant: 0 bits/byte
    const log::LogEntry &e = dev_.opLog().at(0);
    EXPECT_FLOAT_EQ(e.entropy, 0.0f);
    EXPECT_FLOAT_EQ(dev_.currentEntropy(3), 0.0f);
}

TEST_F(RssdDeviceTest, LogChainStaysVerified)
{
    for (int i = 0; i < 100; i++)
        dev_.writePage(i % 10, page(static_cast<std::uint8_t>(i)));
    EXPECT_TRUE(dev_.opLog().verifyHeldChain());
}

TEST_F(RssdDeviceTest, DetectorTapSeesEvents)
{
    detect::WriteBurstDetector::Config cfg;
    cfg.maxWritesPerWindow = 10;
    detect::WriteBurstDetector det(cfg);
    dev_.attachDetector(&det);
    for (int i = 0; i < 50; i++)
        dev_.writePage(i, {});
    EXPECT_TRUE(det.alarmed());
}

TEST_F(RssdDeviceTest, AddressOnlyWritesWork)
{
    // Content-free experiments still log and retain (entropy unknown).
    ASSERT_TRUE(dev_.writePage(1, {}).ok());
    ASSERT_TRUE(dev_.writePage(1, {}).ok());
    EXPECT_EQ(dev_.retention().size(), 1u);
    EXPECT_EQ(dev_.opLog().at(0).entropy, detect::kNoEntropy);
}

TEST_F(RssdDeviceTest, CapacityMatchesFtl)
{
    EXPECT_EQ(dev_.capacityPages(), dev_.ftl().logicalPages());
    EXPECT_EQ(dev_.pageSize(), 4096u);
}

// ---------------------------------------------------------------------
// CapacityExceeded -> nvme::DeviceFull, end to end. command.hh
// documents DeviceFull as "retention backpressure could not be
// resolved"; these pin the full path — remote budget exhausted ->
// offload rejected -> holds stay local -> FTL out of space -> the
// HOST sees DeviceFull — and that the remote-side retention GC is
// exactly what makes the error unreachable.
// ---------------------------------------------------------------------

class DeviceFullTest : public ::testing::Test
{
  protected:
    static RssdConfig
    tinyRemote(bool gc)
    {
        RssdConfig cfg = RssdConfig::forTests();
        // 4 MiB of flash so local capacity is exhaustible in-test.
        cfg.ftl.geometry.blocksPerPlane = 4;
        cfg.segmentPages = 16;
        cfg.pumpThreshold = 16;
        cfg.remote.capacityBytes = 256 * units::KiB;
        cfg.remote.retention.gcEnabled = gc;
        return cfg;
    }

    /** Incompressible page so segments can't squeeze under budget. */
    std::vector<std::uint8_t>
    junkPage(RssdDevice &dev)
    {
        std::vector<std::uint8_t> p(dev.pageSize());
        for (auto &b : p)
            b = static_cast<std::uint8_t>(rng_.next());
        return p;
    }

    /** Overwrite one LPA until the host sees an error (or give up). */
    nvme::HostStatus
    churn(RssdDevice &dev, int max_ops)
    {
        for (int i = 0; i < max_ops; i++) {
            nvme::Command cmd;
            cmd.op = nvme::Opcode::Write;
            cmd.lpa = 0;
            cmd.npages = 1;
            cmd.data = junkPage(dev);
            const nvme::Completion c = dev.submit(cmd);
            if (!c.ok())
                return c.status;
        }
        return nvme::HostStatus::Success;
    }

    Rng rng_{99};
};

TEST_F(DeviceFullTest, ExhaustedRemoteBudgetSurfacesAsDeviceFull)
{
    VirtualClock clock;
    RssdDevice dev(tinyRemote(/*gc=*/false), clock);

    const nvme::HostStatus status = churn(dev, 2000);
    EXPECT_EQ(status, nvme::HostStatus::DeviceFull);
    EXPECT_EQ(dev.backupStore().lastRejectReason(),
              remote::RejectReason::CapacityExceeded);
    EXPECT_GT(dev.stats().deviceFullErrors, 0u);
    // The guarantee held the whole way down: nothing retained was
    // dropped to make room.
    EXPECT_GT(dev.retention().size(), 0u);
    EXPECT_EQ(dev.ftl().heldPageCount(), dev.retention().size());
    EXPECT_TRUE(dev.backupStore().verifyFullChain());
}

TEST_F(DeviceFullTest, RetentionGcMakesDeviceFullUnreachable)
{
    VirtualClock clock;
    RssdDevice dev(tinyRemote(/*gc=*/true), clock);

    // Same workload, GC on: the remote expires its oldest segments
    // under pressure, offload keeps draining, the host never errors.
    const nvme::HostStatus status = churn(dev, 2000);
    EXPECT_EQ(status, nvme::HostStatus::Success);
    EXPECT_EQ(dev.stats().deviceFullErrors, 0u);
    EXPECT_GT(dev.backupStore().stats().segmentsPruned, 0u);
    EXPECT_LE(dev.backupStore().usedBytes(),
              dev.backupStore().capacityBytes());
    EXPECT_TRUE(dev.backupStore().verifyFullChain());
}

} // namespace
} // namespace rssd::core
