/**
 * @file
 * Read-logging tests (RssdConfig::logReads): with reads in the
 * hash-chained log, the analyzer can reproduce *every* storage
 * operation in original order and run read-pattern detectors
 * offline — the full-strength version of the paper's "reproduce the
 * storage operations in the original order they were issued".
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "core/analyzer.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

namespace rssd::core {
namespace {

RssdConfig
readLogConfig()
{
    RssdConfig cfg = RssdConfig::forTests();
    cfg.logReads = true;
    cfg.segmentPages = 32;
    cfg.pumpThreshold = 32;
    return cfg;
}

TEST(ReadLog, DisabledByDefault)
{
    VirtualClock clock;
    RssdDevice dev(RssdConfig::forTests(), clock);
    dev.writePage(1, {});
    dev.readPage(1);
    dev.readPage(1);
    EXPECT_EQ(dev.opLog().totalAppended(), 1u); // just the write
}

TEST(ReadLog, RecordsObservedVersion)
{
    VirtualClock clock;
    RssdDevice dev(readLogConfig(), clock);
    std::vector<std::uint8_t> v(dev.pageSize(), 0x42);
    dev.writePage(1, v);
    dev.readPage(1);

    ASSERT_EQ(dev.opLog().totalAppended(), 2u);
    const log::LogEntry &write = dev.opLog().at(0);
    const log::LogEntry &read = dev.opLog().at(1);
    EXPECT_EQ(read.op, log::OpKind::Read);
    EXPECT_EQ(read.lpa, 1u);
    EXPECT_EQ(read.dataSeq, write.dataSeq); // observed that version
}

TEST(ReadLog, UnmappedReadsAreNotLogged)
{
    VirtualClock clock;
    RssdDevice dev(readLogConfig(), clock);
    dev.readPage(7); // never written
    EXPECT_EQ(dev.opLog().totalAppended(), 0u);
}

TEST(ReadLog, ChainCoversReads)
{
    VirtualClock clock;
    RssdDevice dev(readLogConfig(), clock);
    for (int i = 0; i < 20; i++) {
        dev.writePage(i % 3, {});
        dev.readPage(i % 3);
    }
    EXPECT_TRUE(dev.opLog().verifyHeldChain());
    dev.drainOffload();
    DeviceHistory history(dev);
    EXPECT_TRUE(history.verifyEvidenceChain());
    EXPECT_EQ(history.entries().size(), 40u);
}

TEST(ReadLog, BacktrackInterleavesReads)
{
    VirtualClock clock;
    RssdDevice dev(readLogConfig(), clock);
    std::vector<std::uint8_t> v(dev.pageSize(), 1);
    dev.writePage(5, v);
    dev.readPage(5);
    dev.writePage(5, v);
    dev.trimPage(5);

    dev.drainOffload();
    DeviceHistory history(dev);
    PostAttackAnalyzer analyzer(history);
    const auto chain = analyzer.backtrackLpa(5);
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain[0].op, log::OpKind::Write);
    EXPECT_EQ(chain[1].op, log::OpKind::Read);
    EXPECT_EQ(chain[1].dataSeq, chain[0].dataSeq);
    EXPECT_EQ(chain[2].op, log::OpKind::Write);
    EXPECT_EQ(chain[3].op, log::OpKind::Trim);
}

TEST(ReadLog, OfflineTrimAbuseDetectionOfTrimmingAttack)
{
    // With reads in the log, the read-then-trim signature of the
    // trimming attack is reconstructible offline.
    VirtualClock clock;
    RssdDevice dev(readLogConfig(), clock);
    attack::VictimDataset victim(0, 160);
    victim.populate(dev);

    attack::TrimmingAttack attack;
    attack.run(dev, clock, victim);

    dev.drainOffload();
    DeviceHistory history(dev);
    PostAttackAnalyzer analyzer(history);

    detect::TrimAbuseDetector offline;
    for (const log::LogEntry &e : history.entries())
        offline.observe(analyzer.eventFor(e));
    EXPECT_TRUE(offline.alarmed());
}

TEST(ReadLog, OfflineReadOverwriteDetectionOfClassicAttack)
{
    VirtualClock clock;
    RssdDevice dev(readLogConfig(), clock);
    attack::VictimDataset victim(0, 160);
    victim.populate(dev);

    attack::ClassicRansomware attack;
    attack.run(dev, clock, victim);

    dev.drainOffload();
    DeviceHistory history(dev);
    PostAttackAnalyzer analyzer(history);

    detect::ReadOverwriteDetector offline;
    for (const log::LogEntry &e : history.entries())
        offline.observe(analyzer.eventFor(e));
    EXPECT_TRUE(offline.alarmed());
}

TEST(ReadLog, RecoveryIgnoresReadEntries)
{
    VirtualClock clock;
    RssdDevice dev(readLogConfig(), clock);
    std::vector<std::uint8_t> v1(dev.pageSize(), 1);
    std::vector<std::uint8_t> v2(dev.pageSize(), 2);
    dev.writePage(3, v1); // logSeq 0
    dev.readPage(3);      // logSeq 1
    dev.writePage(3, v2); // logSeq 2

    dev.drainOffload();
    DeviceHistory history(dev);
    RecoveryEngine engine(history);
    // Recover to just after the read: content is still v1.
    const RecoveryReport r = engine.recoverToLogSeq(2);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(dev.readPage(3).data, v1);
}

} // namespace
} // namespace rssd::core
