/**
 * @file
 * Offload engine tests: time-ordered segment shipping, hold release
 * on acknowledgment, log truncation, compression+encryption on the
 * wire, remote-full behaviour.
 */

#include <gtest/gtest.h>

#include "core/history.hh"
#include "core/rssd_device.hh"
#include "sim/rng.hh"

namespace rssd::core {
namespace {

class OffloadTest : public ::testing::Test
{
  protected:
    OffloadTest() : dev_(config(), clock_) {}

    static RssdConfig
    config()
    {
        RssdConfig cfg = RssdConfig::forTests();
        cfg.segmentPages = 16;
        cfg.pumpThreshold = 16;
        return cfg;
    }

    std::vector<std::uint8_t>
    page(std::uint8_t fill)
    {
        return std::vector<std::uint8_t>(dev_.pageSize(), fill);
    }

    VirtualClock clock_;
    RssdDevice dev_;
};

TEST_F(OffloadTest, PumpsWhenThresholdReached)
{
    // 20 overwrites -> 20 retained pages -> one 16-page segment.
    dev_.writePage(0, page(0));
    for (int i = 1; i <= 20; i++)
        dev_.writePage(0, page(static_cast<std::uint8_t>(i)));

    EXPECT_GE(dev_.offload().stats().segmentsAccepted, 1u);
    EXPECT_EQ(dev_.backupStore().segmentCount(),
              dev_.offload().stats().segmentsAccepted);
    EXPECT_LT(dev_.retention().size(), 16u);
}

TEST_F(OffloadTest, DrainShipsEverything)
{
    for (int i = 0; i < 5; i++)
        dev_.writePage(i, page(1));
    for (int i = 0; i < 5; i++)
        dev_.writePage(i, page(2));
    ASSERT_EQ(dev_.retention().size(), 5u);

    dev_.drainOffload();
    EXPECT_TRUE(dev_.retention().empty());
    EXPECT_EQ(dev_.ftl().heldPageCount(), 0u);
    EXPECT_EQ(dev_.offload().stats().pagesOffloaded, 5u);
}

TEST_F(OffloadTest, HoldsReleasedOnlyAfterAck)
{
    dev_.writePage(0, page(1));
    const flash::Ppa old = dev_.ftl().mappingOf(0);
    dev_.writePage(0, page(2));
    ASSERT_TRUE(dev_.ftl().isHeld(old));

    dev_.drainOffload();
    EXPECT_FALSE(dev_.ftl().isHeld(old));
    EXPECT_GT(dev_.offload().lastAckAt(), 0u);
}

TEST_F(OffloadTest, SegmentsArriveInTimeOrder)
{
    for (int round = 0; round < 4; round++) {
        for (int i = 0; i < 10; i++)
            dev_.writePage(i, page(static_cast<std::uint8_t>(round)));
    }
    dev_.drainOffload();

    // Walk all stored segments: page dataSeqs must be globally
    // non-decreasing (time order), and segment ids dense.
    std::uint64_t prev_seq = 0;
    bool first = true;
    const auto &store = dev_.backupStore();
    for (std::size_t id = 0; id < store.segmentCount(); id++) {
        const log::Segment seg = store.openSegment(id);
        EXPECT_EQ(seg.id, id);
        for (const log::PageRecord &p : seg.pages) {
            if (!first) {
                EXPECT_GT(p.dataSeq, prev_seq);
            }
            prev_seq = p.dataSeq;
            first = false;
        }
    }
    EXPECT_FALSE(first); // at least one page shipped
}

TEST_F(OffloadTest, LogTruncatedAfterShipping)
{
    for (int i = 0; i < 30; i++)
        dev_.writePage(i % 5, page(1));
    dev_.drainOffload();
    // Local tail is empty; full history lives remotely.
    EXPECT_EQ(dev_.opLog().size(), 0u);
    EXPECT_EQ(dev_.opLog().totalAppended(), 30u);
    EXPECT_TRUE(dev_.opLog().verifyHeldChain());
    EXPECT_TRUE(dev_.backupStore().verifyFullChain());
}

TEST_F(OffloadTest, RetainedContentTravelsToRemote)
{
    dev_.writePage(0, page(0x77));
    dev_.writePage(0, page(0x88));
    dev_.drainOffload();

    bool found = false;
    const auto &store = dev_.backupStore();
    for (std::size_t id = 0; id < store.segmentCount(); id++) {
        for (const log::PageRecord &p : store.openSegment(id).pages) {
            if (p.lpa == 0 && p.content == page(0x77))
                found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(OffloadTest, CompressionShrinksCompressibleData)
{
    // Constant-fill pages compress extremely well.
    for (int i = 0; i < 40; i++)
        dev_.writePage(0, page(0x42));
    dev_.drainOffload();
    EXPECT_GT(dev_.offload().stats().compressionRatio(), 3.0);
}

TEST_F(OffloadTest, RemoteFullStopsOffloadNotData)
{
    RssdConfig cfg = config();
    cfg.remote.capacityBytes = 8 * units::KiB; // absurdly small
    VirtualClock clock;
    RssdDevice dev(cfg, clock);

    // Write incompressible content so segments can't squeeze in.
    Rng rng(1);
    std::vector<std::uint8_t> junk(dev.pageSize());
    for (int i = 0; i < 64; i++) {
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        dev.writePage(0, junk);
    }
    dev.drainOffload();
    EXPECT_TRUE(dev.offload().remoteFull());
    // Retained data was NOT dropped: it's still locally held.
    EXPECT_GT(dev.retention().size(), 0u);
    EXPECT_EQ(dev.ftl().heldPageCount(), dev.retention().size());
}

/** CapsuleTarget that refuses every segment until opened. */
struct GateTarget : net::CapsuleTarget
{
    bool open = false;
    std::uint64_t offered = 0;

    bool
    ingestSegment(const log::SealedSegment &segment, Tick arrive_at,
                  Tick &ack_ready_at) override
    {
        (void)segment;
        offered++;
        ack_ready_at = arrive_at + 10 * units::US;
        return open;
    }
};

TEST_F(OffloadTest, OffloadResumesAfterRemoteFrees)
{
    // A transiently full remote must stall offload, never stop it:
    // the reject latch of old permanently parked the engine even
    // after the remote's retention GC freed space.
    RssdConfig cfg = config();
    cfg.remoteRetryDelay = 10 * units::SEC; // >> the writes below
    GateTarget gate;
    VirtualClock clock;
    RssdDevice dev(cfg, clock, gate);

    for (int i = 0; i < 20; i++)
        dev.writePage(0, page(static_cast<std::uint8_t>(i)));
    ASSERT_GT(gate.offered, 0u);
    ASSERT_TRUE(dev.offload().remoteFull()); // backing off
    ASSERT_GT(dev.offload().stats().remoteRejects, 0u);
    ASSERT_GT(dev.retention().size(), 0u); // held locally
    const std::uint64_t offered_while_closed = gate.offered;

    // Before the retry delay elapses, a non-forced pump is a no-op
    // (no hammering the remote)...
    dev.pumpOffload();
    EXPECT_EQ(gate.offered, offered_while_closed);

    // ...but once space frees and the backoff elapses, the probe
    // ships everything and the latch clears for good.
    gate.open = true;
    clock.advance(11 * units::SEC);
    dev.pumpOffload();
    dev.drainOffload();
    EXPECT_FALSE(dev.offload().remoteFull());
    EXPECT_TRUE(dev.retention().empty());
    EXPECT_GT(dev.offload().stats().segmentsAccepted, 0u);
    EXPECT_EQ(dev.offload().stats().pagesOffloaded, 19u);
}

TEST_F(OffloadTest, ForcedDrainRetriesThroughBackoff)
{
    RssdConfig cfg = config();
    cfg.remoteRetryDelay = 10 * units::SEC; // enormous backoff
    GateTarget gate;
    VirtualClock clock;
    RssdDevice dev(cfg, clock, gate);

    for (int i = 0; i < 20; i++)
        dev.writePage(0, page(static_cast<std::uint8_t>(i)));
    ASSERT_TRUE(dev.offload().remoteFull());

    // The clock never reaches retryAt, but a forced drain is about
    // to wait on the result anyway — it must probe immediately.
    gate.open = true;
    dev.drainOffload();
    EXPECT_FALSE(dev.offload().remoteFull());
    EXPECT_TRUE(dev.retention().empty());
}

TEST_F(OffloadTest, RejectedSegmentIsResubmittedNotResealed)
{
    // A refused segment is parked as sealed bytes; every retry
    // probe re-offers those bytes instead of re-reading flash and
    // paying the seal compute again. However many times the remote
    // says no, each segment is sealed exactly once.
    RssdConfig cfg = config();
    cfg.remoteRetryDelay = 10 * units::SEC;
    GateTarget gate;
    VirtualClock clock;
    RssdDevice dev(cfg, clock, gate);

    for (int i = 0; i < 20; i++)
        dev.writePage(0, page(static_cast<std::uint8_t>(i)));
    ASSERT_GT(dev.offload().stats().remoteRejects, 0u);

    // Hammer the closed gate with forced drains: all probes, no
    // new seal work.
    const std::uint64_t sealed_once =
        dev.offload().stats().segmentsSealed;
    for (int i = 0; i < 5; i++)
        dev.drainOffload();
    EXPECT_EQ(dev.offload().stats().segmentsSealed, sealed_once);
    EXPECT_GE(dev.offload().stats().remoteRejects, 6u);

    gate.open = true;
    dev.drainOffload();
    EXPECT_TRUE(dev.retention().empty());
    // Every accepted segment was sealed exactly once (19 retained
    // pages = one full 16-page segment + the forced-drain tail).
    EXPECT_EQ(dev.offload().stats().segmentsSealed,
              dev.offload().stats().segmentsAccepted);
    EXPECT_EQ(dev.offload().stats().pagesOffloaded, 19u);
}

TEST_F(OffloadTest, ChainSplicesAcrossLocalAndRemote)
{
    for (int i = 0; i < 25; i++)
        dev_.writePage(i % 3, page(1));
    dev_.drainOffload();
    // New local activity after the drain.
    dev_.writePage(1, page(9));
    dev_.writePage(1, page(10));

    DeviceHistory history(dev_);
    EXPECT_TRUE(history.verifyEvidenceChain());
    EXPECT_EQ(history.entries().size(), 27u);
}

} // namespace
} // namespace rssd::core
