/**
 * @file
 * Recovery engine tests: point-in-time rollback correctness across
 * local and remote version sources.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

namespace rssd::core {
namespace {

class RecoveryTest : public ::testing::Test
{
  protected:
    RecoveryTest() : dev_(config(), clock_) {}

    static RssdConfig
    config()
    {
        RssdConfig cfg = RssdConfig::forTests();
        cfg.segmentPages = 8;
        cfg.pumpThreshold = 8;
        return cfg;
    }

    std::vector<std::uint8_t>
    page(std::uint8_t fill)
    {
        return std::vector<std::uint8_t>(dev_.pageSize(), fill);
    }

    RecoveryReport
    recoverTo(std::uint64_t seq)
    {
        DeviceHistory history(dev_);
        RecoveryEngine engine(history);
        return engine.recoverToLogSeq(seq);
    }

    VirtualClock clock_;
    RssdDevice dev_;
};

TEST_F(RecoveryTest, RollbackSingleOverwrite)
{
    dev_.writePage(1, page(0x01)); // logSeq 0
    dev_.writePage(1, page(0x02)); // logSeq 1
    const RecoveryReport r = recoverTo(1);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(dev_.readPage(1).data, page(0x01));
    EXPECT_EQ(r.pagesRestored, 1u);
}

TEST_F(RecoveryTest, RollbackToZeroRestoresEmptyDevice)
{
    dev_.writePage(1, page(0x01));
    dev_.writePage(2, page(0x02));
    const RecoveryReport r = recoverTo(0);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(dev_.readPage(1).data, page(0x00));
    EXPECT_EQ(dev_.readPage(2).data, page(0x00));
    EXPECT_EQ(r.unmappedRestored, 2u);
}

TEST_F(RecoveryTest, RollbackAcrossManyVersions)
{
    // 10 versions of the same page; roll back to each in turn.
    for (int v = 0; v < 10; v++)
        dev_.writePage(4, page(static_cast<std::uint8_t>(0x10 + v)));
    for (int target = 10; target >= 1; target--) {
        const RecoveryReport r =
            recoverTo(static_cast<std::uint64_t>(target));
        ASSERT_TRUE(r.ok()) << "target " << target;
        EXPECT_EQ(dev_.readPage(4).data,
                  page(static_cast<std::uint8_t>(0x10 + target - 1)))
            << "target " << target;
    }
}

TEST_F(RecoveryTest, RestoresFromRemoteSegments)
{
    dev_.writePage(3, page(0xAA));
    for (int i = 0; i < 30; i++)
        dev_.writePage(3, page(static_cast<std::uint8_t>(i)));
    dev_.drainOffload();
    ASSERT_GT(dev_.backupStore().segmentCount(), 0u);

    const RecoveryReport r = recoverTo(1);
    EXPECT_TRUE(r.ok());
    EXPECT_GT(r.restoredFromRemote, 0u);
    EXPECT_EQ(dev_.readPage(3).data, page(0xAA));
}

TEST_F(RecoveryTest, TrimRollbackBothDirections)
{
    dev_.writePage(6, page(0x44)); // seq 0
    dev_.trimPage(6);              // seq 1
    dev_.writePage(6, page(0x55)); // seq 2

    // State after the trim: unmapped.
    RecoveryReport r = recoverTo(2);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(dev_.readPage(6).data, page(0x00));

    // State before the trim: the original data. Note the recovery
    // writes above appended to the log; roll back using the original
    // seq, which still identifies the pre-trim state.
    r = recoverTo(1);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(dev_.readPage(6).data, page(0x44));
}

TEST_F(RecoveryTest, RecoverToTimeFindsBoundary)
{
    dev_.writePage(7, page(0x01));
    clock_.advance(units::SEC);
    const Tick boundary = clock_.now();
    clock_.advance(units::SEC);
    dev_.writePage(7, page(0x02));

    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToTime(boundary);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(dev_.readPage(7).data, page(0x01));
}

TEST_F(RecoveryTest, ClassicAttackFullRecovery)
{
    attack::VictimDataset victim(0, 200);
    victim.populate(dev_);
    const std::uint64_t pre_attack = dev_.opLog().totalAppended();

    attack::ClassicRansomware attack;
    attack.run(dev_, clock_, victim);
    ASSERT_DOUBLE_EQ(victim.intactFraction(dev_), 0.0);

    const RecoveryReport r = recoverTo(pre_attack);
    EXPECT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev_), 1.0);
    EXPECT_EQ(r.pagesRestored, 200u);
}

TEST_F(RecoveryTest, TimingAttackFullRecovery)
{
    attack::VictimDataset victim(0, 64);
    victim.populate(dev_);
    const Tick attack_start = clock_.now();

    attack::TimingAttack::Params params;
    params.encryptionInterval = units::SEC;
    params.benignOpsPerEncrypt = 8;
    attack::TimingAttack attack(params);
    attack.run(dev_, clock_, victim);

    dev_.drainOffload();
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToTime(attack_start);
    EXPECT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev_), 1.0);
}

TEST_F(RecoveryTest, ReportAccountsSources)
{
    dev_.writePage(1, page(0x01));
    dev_.writePage(1, page(0x02)); // old version held locally
    const RecoveryReport r = recoverTo(1);
    EXPECT_EQ(r.pagesRestored, 1u);
    EXPECT_EQ(r.restoredFromLocal + r.restoredFromRemote, 1u);
    EXPECT_GT(r.finishedAt, r.startedAt);
}

TEST_F(RecoveryTest, IdempotentWhenAlreadyAtTarget)
{
    dev_.writePage(1, page(0x01));
    const RecoveryReport r = recoverTo(1);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.pagesRestored, 0u);
    EXPECT_EQ(r.unmappedRestored, 0u);
}

TEST_F(RecoveryTest, RecoverToTimeBoundaryIsInclusive)
{
    // recoverToTime(t) keeps entries with timestamp <= t: a write
    // stamped exactly t survives; recovering to t-1ns rolls it back.
    dev_.writePage(9, page(0x01));
    clock_.advance(units::SEC);
    dev_.writePage(9, page(0x02));
    const Tick exactly = dev_.opLog().at(1).timestamp;

    {
        DeviceHistory history(dev_);
        RecoveryEngine engine(history);
        ASSERT_TRUE(engine.recoverToTime(exactly).ok());
        EXPECT_EQ(dev_.readPage(9).data, page(0x02));
    }
    {
        DeviceHistory history(dev_);
        RecoveryEngine engine(history);
        ASSERT_TRUE(engine.recoverToTime(exactly - 1).ok());
        EXPECT_EQ(dev_.readPage(9).data, page(0x01));
    }
}

TEST_F(RecoveryTest, RecoverToTimeBeforeHistoryEmptiesDevice)
{
    const Tick epoch = clock_.now();
    clock_.advance(units::SEC);
    dev_.writePage(3, page(0x07));
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToTime(epoch);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(dev_.readPage(3).data, page(0x00));
    EXPECT_EQ(r.unmappedRestored, 1u);
}

TEST_F(RecoveryTest, EmptyRangeTouchesNothing)
{
    dev_.writePage(1, page(0x01));
    dev_.writePage(1, page(0x02));
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverRange(1, 0, 1);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.lpasExamined, 0u);
    EXPECT_EQ(r.pagesRestored, 0u);
    EXPECT_EQ(dev_.readPage(1).data, page(0x02)); // untouched
}

TEST_F(RecoveryTest, RangeRecoveryLeavesOutOfScopeLbasAlone)
{
    dev_.writePage(4, page(0x0A)); // seq 0
    dev_.writePage(5, page(0x0B)); // seq 1
    dev_.writePage(4, page(0xAA)); // seq 2
    dev_.writePage(5, page(0xBB)); // seq 3

    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverRange(4, 1, 2);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.lpasExamined, 1u);
    EXPECT_EQ(dev_.readPage(4).data, page(0x0A)); // rolled back
    EXPECT_EQ(dev_.readPage(5).data, page(0xBB)); // out of scope
}

TEST_F(RecoveryTest, RangeBoundariesAreHalfOpen)
{
    for (flash::Lpa lpa = 10; lpa < 13; lpa++)
        dev_.writePage(lpa, page(0x01)); // seq 0..2
    for (flash::Lpa lpa = 10; lpa < 13; lpa++)
        dev_.writePage(lpa, page(0x02)); // seq 3..5

    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    // [11, 12): only LBA 11 is in scope.
    const RecoveryReport r = engine.recoverRange(11, 1, 3);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.lpasExamined, 1u);
    EXPECT_EQ(dev_.readPage(10).data, page(0x02));
    EXPECT_EQ(dev_.readPage(11).data, page(0x01));
    EXPECT_EQ(dev_.readPage(12).data, page(0x02));
}

TEST_F(RecoveryTest, TargetInsideUnoffloadedTail)
{
    // Old versions go remote; the newest versions stay in the local
    // (un-offloaded) tail. A recovery target *inside* that tail must
    // restore from on-device sources, not remote segments.
    for (int i = 0; i < 30; i++)
        dev_.writePage(2, page(static_cast<std::uint8_t>(i)));
    dev_.drainOffload();
    const std::uint64_t tail_start = dev_.opLog().totalAppended();

    dev_.writePage(2, page(0xE0)); // tail seq
    dev_.writePage(2, page(0xE1)); // tail seq + 1
    ASSERT_GT(dev_.opLog().size(), 0u); // tail is really local

    const RecoveryReport r = recoverTo(tail_start + 1);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(dev_.readPage(2).data, page(0xE0));
    EXPECT_EQ(r.restoredFromRemote, 0u);
    EXPECT_EQ(r.restoredFromLocal, 1u);
}

// ---------------------------------------------------------------------
// Retention-GC horizon: once the remote store expires old segments,
// pre-horizon states are gone. History must say so, the chain must
// still verify (from the signed prune record), and recovery before
// the horizon must fail loudly instead of silently under-restoring.
// ---------------------------------------------------------------------

class PrunedHorizonTest : public ::testing::Test
{
  protected:
    PrunedHorizonTest() : dev_(config(), clock_) {}

    static RssdConfig
    config()
    {
        RssdConfig cfg = RssdConfig::forTests();
        cfg.segmentPages = 8;
        cfg.pumpThreshold = 8;
        cfg.remote.retention.gcEnabled = true;
        cfg.remote.retention.retentionWindow = 10 * units::MS;
        return cfg;
    }

    std::vector<std::uint8_t>
    page(std::uint8_t fill)
    {
        return std::vector<std::uint8_t>(dev_.pageSize(), fill);
    }

    /** 40 versions of LPA 1 offloaded, then all expired by age;
     *  10 fresh versions (logSeq 40..49) follow. Returns the
     *  horizon (first surviving logSeq). */
    std::uint64_t
    churnPastTheWindow()
    {
        for (int v = 0; v < 40; v++)
            dev_.writePage(1, page(static_cast<std::uint8_t>(v)));
        dev_.drainOffload();
        clock_.advance(config().remote.retention.retentionWindow + 1);
        dev_.backupStore().runRetentionGc(clock_.now());
        for (int v = 40; v < 50; v++)
            dev_.writePage(1, page(static_cast<std::uint8_t>(v)));
        dev_.drainOffload();
        return dev_.backupStore().pruneRecordOf(0)->entriesPruned;
    }

    VirtualClock clock_;
    RssdDevice dev_;
};

TEST_F(PrunedHorizonTest, HistoryReportsHorizonAndStillVerifies)
{
    const std::uint64_t horizon = churnPastTheWindow();
    ASSERT_EQ(horizon, 40u);
    ASSERT_GT(dev_.backupStore().stats().agePrunes, 0u);

    DeviceHistory history(dev_);
    EXPECT_TRUE(history.pruned());
    EXPECT_EQ(history.prunedHorizonSeq(), horizon);
    // The surviving suffix starts at the horizon...
    ASSERT_FALSE(history.entries().empty());
    EXPECT_EQ(history.entries().front().logSeq, horizon);
    // ...and the whole chain (re-anchored at the signed prune
    // record) still verifies, remote and local tail spliced.
    EXPECT_TRUE(history.verifyEvidenceChain());
}

TEST_F(PrunedHorizonTest, RecoveryBeforeHorizonFailsLoudly)
{
    const std::uint64_t horizon = churnPastTheWindow();
    const std::vector<std::uint8_t> before = dev_.readPage(1).data;

    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToLogSeq(horizon - 1);
    EXPECT_TRUE(r.beforePrunedHorizon);
    EXPECT_FALSE(r.ok());
    // Clear error, no partial restore: the device is untouched.
    EXPECT_EQ(dev_.readPage(1).data, before);
    EXPECT_EQ(r.pagesRestored, 0u);
}

TEST_F(PrunedHorizonTest, RecoverToTimeBeforeHorizonFailsLoudly)
{
    churnPastTheWindow();
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToTime(0);
    EXPECT_TRUE(r.beforePrunedHorizon);
    EXPECT_FALSE(r.ok());
}

TEST_F(PrunedHorizonTest, HorizonStateCountsExpiredVersionUnresolved)
{
    // Target == horizon is allowed (nothing before it is applied),
    // but LPA 1's state there was written by an expired version:
    // the engine must report it unresolved, never destructively
    // trim a page it cannot reconstruct.
    const std::uint64_t horizon = churnPastTheWindow();
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToLogSeq(horizon);
    EXPECT_FALSE(r.beforePrunedHorizon);
    EXPECT_EQ(r.unresolved, 1u);
    EXPECT_FALSE(r.ok());
}

TEST_F(PrunedHorizonTest, FullyPrunedHistoryRefusesTimeTargets)
{
    // Everything offloaded, then everything expired: no surviving
    // entries at all. No time target is provably post-horizon, so
    // recoverToTime must refuse — not silently "succeed" at
    // restoring nothing.
    for (int v = 0; v < 40; v++)
        dev_.writePage(1, page(static_cast<std::uint8_t>(v)));
    dev_.drainOffload();
    clock_.advance(config().remote.retention.retentionWindow + 1);
    dev_.backupStore().runRetentionGc(clock_.now());
    ASSERT_EQ(dev_.backupStore().liveSegmentCount(), 0u);

    DeviceHistory history(dev_);
    ASSERT_TRUE(history.pruned());
    ASSERT_TRUE(history.entries().empty());
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToTime(0);
    EXPECT_TRUE(r.beforePrunedHorizon);
    EXPECT_FALSE(r.ok());
}

TEST_F(PrunedHorizonTest, RecoveryPastHorizonStillWorks)
{
    const std::uint64_t horizon = churnPastTheWindow();
    DeviceHistory history(dev_);
    RecoveryEngine engine(history);
    const RecoveryReport r = engine.recoverToLogSeq(horizon + 5);
    EXPECT_TRUE(r.ok());
    // State after logSeq horizon+4 = fill value 44.
    EXPECT_EQ(dev_.readPage(1).data, page(44));
}

} // namespace
} // namespace rssd::core
