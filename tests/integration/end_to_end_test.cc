/**
 * @file
 * End-to-end integration: the full paper story in one scenario —
 * normal use, a stealthy multi-phase attack, offload, analysis,
 * recovery — plus cross-module consistency checks.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "baseline/rssd_defense.hh"
#include "core/analyzer.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"
#include "nvme/local_ssd.hh"
#include "workload/generator.hh"

namespace rssd {
namespace {

core::RssdConfig
config()
{
    core::RssdConfig cfg = core::RssdConfig::forTests();
    cfg.segmentPages = 32;
    cfg.pumpThreshold = 48;
    return cfg;
}

TEST(EndToEnd, FullIncidentLifecycle)
{
    VirtualClock clock;
    core::RssdDevice dev(config(), clock);

    // --- Phase 1: months of normal use (compressed) --------------------
    attack::VictimDataset victim(0, 96);
    victim.populate(dev);

    workload::TraceGenerator gen(workload::traceByName("usr"),
                                 dev.capacityPages(), 21);
    workload::ReplayOptions opts;
    opts.maxRequests = 1500;
    opts.withContent = true;
    workload::replay(dev, clock, gen, opts);
    clock.advance(units::HOUR);

    // Some victim pages edited after the generic churn. The working
    // set is placed mid-device, so victims at LPA 0..95 are intact.
    ASSERT_DOUBLE_EQ(victim.intactFraction(dev), 1.0);

    // --- Phase 2: the attack (timing-style, stealthy) -------------------
    const Tick attack_start = clock.now();
    attack::TimingAttack::Params params;
    params.encryptionInterval = units::SEC;
    params.benignOpsPerEncrypt = 24;
    attack::TimingAttack attack(params);
    attack.run(dev, clock, victim);
    ASSERT_DOUBLE_EQ(victim.intactFraction(dev), 0.0);

    // --- Phase 3: post-attack analysis ---------------------------------
    dev.drainOffload();
    core::DeviceHistory history(dev);
    ASSERT_TRUE(history.verifyEvidenceChain());

    core::PostAttackAnalyzer analyzer(history);
    const core::AnalysisReport analysis = analyzer.analyze();
    ASSERT_TRUE(analysis.chainIntact);
    ASSERT_TRUE(analysis.finding.detected);
    // The detected window starts at (or before) the real start.
    EXPECT_LE(analysis.finding.attackStart, attack_start +
              params.encryptionInterval);

    // --- Phase 4: recovery ----------------------------------------------
    core::RecoveryEngine engine(history);
    const core::RecoveryReport recovery = engine.recoverToLogSeq(
        analysis.finding.recommendedRecoverySeq);
    EXPECT_TRUE(recovery.ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev), 1.0);
    EXPECT_GT(recovery.pagesRestored, 0u);
}

TEST(EndToEnd, PerformanceOverheadIsSmall)
{
    // The paper's <1% claim, at test scale: RSSD throughput within a
    // few percent of the undefended LocalSSD on the same trace.
    const auto &profile = workload::traceByName("ts");

    VirtualClock c_base;
    ftl::FtlConfig ftl_cfg = config().ftl;
    nvme::LocalSsd base(ftl_cfg, c_base);
    workload::TraceGenerator g1(profile, base.capacityPages(), 31);
    workload::ReplayOptions opts;
    opts.maxRequests = 4000;
    const workload::ReplayStats s_base =
        workload::replay(base, c_base, g1, opts);

    VirtualClock c_rssd;
    core::RssdDevice rssd(config(), c_rssd);
    workload::TraceGenerator g2(profile, rssd.capacityPages(), 31);
    const workload::ReplayStats s_rssd =
        workload::replay(rssd, c_rssd, g2, opts);

    ASSERT_EQ(s_base.errors, 0u);
    ASSERT_EQ(s_rssd.errors, 0u);
    const double base_mibps = s_base.writeMiBps(base.pageSize());
    const double rssd_mibps = s_rssd.writeMiBps(rssd.pageSize());
    EXPECT_GT(rssd_mibps, base_mibps * 0.93);
}

TEST(EndToEnd, LifetimeImpactIsSmall)
{
    const auto &profile = workload::traceByName("wdev");

    VirtualClock c_base;
    nvme::LocalSsd base(config().ftl, c_base);
    workload::TraceGenerator g1(profile, base.capacityPages(), 41);
    workload::ReplayOptions opts;
    opts.maxRequests = 8000;
    workload::replay(base, c_base, g1, opts);

    VirtualClock c_rssd;
    core::RssdDevice rssd(config(), c_rssd);
    workload::TraceGenerator g2(profile, rssd.capacityPages(), 41);
    workload::replay(rssd, c_rssd, g2, opts);

    const double waf_base = base.ftl().stats().waf();
    const double waf_rssd = rssd.ftl().stats().waf();
    // Retained pages are offloaded, not GC-copied forever: WAF must
    // stay close to baseline.
    EXPECT_LT(waf_rssd, waf_base * 1.25 + 0.1);
}

TEST(EndToEnd, AnalyzerAndRecoveryAgreeAfterMixedAttacks)
{
    // Trimming + classic burst in one incident.
    VirtualClock clock;
    core::RssdDevice dev(config(), clock);
    attack::VictimDataset victim(0, 64);
    attack::VictimDataset victim2(64, 64);
    victim.populate(dev);
    victim2.populate(dev);
    clock.advance(units::MINUTE);

    attack::ClassicRansomware classic;
    classic.run(dev, clock, victim);
    attack::TrimmingAttack trimming;
    trimming.run(dev, clock, victim2);

    dev.drainOffload();
    core::DeviceHistory history(dev);
    core::PostAttackAnalyzer analyzer(history);
    const core::AnalysisReport report = analyzer.analyze();
    ASSERT_TRUE(report.finding.detected);

    core::RecoveryEngine engine(history);
    ASSERT_TRUE(engine
                    .recoverToLogSeq(
                        report.finding.recommendedRecoverySeq)
                    .ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(dev), 1.0);
    EXPECT_DOUBLE_EQ(victim2.intactFraction(dev), 1.0);
}

TEST(EndToEnd, RssdDefenseWrapperMatchesManualPipeline)
{
    VirtualClock clock;
    baseline::RssdDefense defense(config(), clock);
    attack::VictimDataset victim(0, 64);
    victim.populate(defense.device());

    const Tick t0 = clock.now();
    attack::ClassicRansomware attack;
    attack.run(defense.device(), clock, victim);
    defense.attemptRecovery(victim, t0);

    EXPECT_TRUE(defense.lastAnalysis().chainIntact);
    EXPECT_TRUE(defense.lastRecovery().ok());
    EXPECT_DOUBLE_EQ(victim.intactFraction(defense.device()), 1.0);
}

} // namespace
} // namespace rssd
