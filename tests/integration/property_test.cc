/**
 * @file
 * Property-based tests: randomized operation sequences against the
 * RSSD invariants the design depends on (docs/ARCHITECTURE.md).
 *
 *  P1  Zero data loss: at any point, every previously written
 *      version is reachable (live, held locally, or remote).
 *  P2  Evidence chain: the merged history always verifies, and
 *      replaying it reproduces the device's current logical state.
 *  P3  Accounting: FTL hold counts always equal the retention index
 *      plus what has been offloaded.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/analyzer.hh"
#include "core/history.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"
#include "sim/rng.hh"

namespace rssd {
namespace {

core::RssdConfig
config(std::uint32_t segment_pages)
{
    core::RssdConfig cfg = core::RssdConfig::forTests();
    cfg.segmentPages = segment_pages;
    cfg.pumpThreshold = segment_pages * 2;
    return cfg;
}

/** A reference model of the logical address space. */
class ReferenceModel
{
  public:
    void
    write(flash::Lpa lpa, std::uint8_t fill)
    {
        state_[lpa] = fill;
    }

    void trim(flash::Lpa lpa) { state_.erase(lpa); }

    /** Expected read content fill; nullopt = zeros. */
    std::optional<std::uint8_t>
    at(flash::Lpa lpa) const
    {
        const auto it = state_.find(lpa);
        if (it == state_.end())
            return std::nullopt;
        return it->second;
    }

    const std::map<flash::Lpa, std::uint8_t> &state() const
    {
        return state_;
    }

  private:
    std::map<flash::Lpa, std::uint8_t> state_;
};

class RandomOpsTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomOpsTest, DeviceMatchesReferenceModelThroughout)
{
    VirtualClock clock;
    core::RssdDevice dev(config(16), clock);
    ReferenceModel model;
    Rng rng(GetParam());

    const flash::Lpa span = 200;
    const std::uint32_t page_size = dev.pageSize();

    for (int op = 0; op < 3000; op++) {
        const flash::Lpa lpa = rng.below(span);
        const double dice = rng.uniform();
        if (dice < 0.55) {
            const auto fill = static_cast<std::uint8_t>(rng.next());
            ASSERT_TRUE(
                dev.writePage(
                       lpa,
                       std::vector<std::uint8_t>(page_size, fill))
                    .ok());
            model.write(lpa, fill);
        } else if (dice < 0.70) {
            ASSERT_TRUE(dev.trimPage(lpa).ok());
            model.trim(lpa);
        } else {
            const nvme::Completion c = dev.readPage(lpa);
            ASSERT_TRUE(c.ok());
            const auto expect = model.at(lpa);
            const std::uint8_t fill = expect.value_or(0);
            ASSERT_EQ(c.data,
                      std::vector<std::uint8_t>(page_size, fill))
                << "op " << op << " lpa " << lpa;
        }
        if (op % 500 == 499)
            clock.advance(units::SEC);
    }

    // P3: holds == retention index (nothing leaked or lost).
    EXPECT_EQ(dev.ftl().heldPageCount(), dev.retention().size());

    // P2: evidence chain verifies and replays to the current state.
    dev.drainOffload();
    core::DeviceHistory history(dev);
    ASSERT_TRUE(history.verifyEvidenceChain());

    std::map<flash::Lpa, std::uint64_t> live;
    for (const log::LogEntry &e : history.entries()) {
        if (e.op == log::OpKind::Write)
            live[e.lpa] = e.dataSeq;
        else
            live.erase(e.lpa);
    }
    // Live set from the log equals the reference model's domain.
    std::map<flash::Lpa, std::uint64_t> expect_live;
    for (const auto &[lpa, fill] : model.state())
        expect_live[lpa] = 0; // domain comparison only
    ASSERT_EQ(live.size(), expect_live.size());
    for (const auto &[lpa, _] : expect_live)
        ASSERT_TRUE(live.count(lpa)) << "lpa " << lpa;

    // P1: every live version's content is reachable and correct.
    for (const auto &[lpa, seq] : live) {
        const core::VersionRecord *v = history.findVersion(seq);
        ASSERT_NE(v, nullptr) << "lpa " << lpa;
        const auto &content = history.contentOf(*v);
        ASSERT_FALSE(content.empty());
        EXPECT_EQ(content[0], model.at(lpa).value());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

class RollbackPropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RollbackPropertyTest, AnyCheckpointIsRecoverable)
{
    // P1 at full strength: snapshot the reference model at random
    // checkpoints; later, rolling back to each checkpoint must
    // reproduce it exactly.
    VirtualClock clock;
    core::RssdDevice dev(config(8), clock);
    ReferenceModel model;
    Rng rng(GetParam() * 7919);

    struct Checkpoint
    {
        std::uint64_t logSeq;
        std::map<flash::Lpa, std::uint8_t> state;
    };
    std::vector<Checkpoint> checkpoints;

    const flash::Lpa span = 64;
    const std::uint32_t page_size = dev.pageSize();
    for (int op = 0; op < 600; op++) {
        const flash::Lpa lpa = rng.below(span);
        if (rng.chance(0.8)) {
            const auto fill = static_cast<std::uint8_t>(rng.next());
            ASSERT_TRUE(
                dev.writePage(
                       lpa,
                       std::vector<std::uint8_t>(page_size, fill))
                    .ok());
            model.write(lpa, fill);
        } else {
            ASSERT_TRUE(dev.trimPage(lpa).ok());
            model.trim(lpa);
        }
        if (op % 150 == 149) {
            checkpoints.push_back(
                {dev.opLog().totalAppended(), model.state()});
        }
    }

    // Roll back to each checkpoint, newest first, verifying content.
    for (auto it = checkpoints.rbegin(); it != checkpoints.rend();
         ++it) {
        dev.drainOffload();
        core::DeviceHistory history(dev);
        core::RecoveryEngine engine(history);
        const core::RecoveryReport r =
            engine.recoverToLogSeq(it->logSeq);
        ASSERT_TRUE(r.ok());

        for (flash::Lpa lpa = 0; lpa < span; lpa++) {
            const nvme::Completion c = dev.readPage(lpa);
            const auto sit = it->state.find(lpa);
            const std::uint8_t fill =
                sit == it->state.end() ? 0 : sit->second;
            ASSERT_EQ(c.data,
                      std::vector<std::uint8_t>(page_size, fill))
                << "checkpoint seq " << it->logSeq << " lpa " << lpa;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackPropertyTest,
                         ::testing::Values(1u, 4u, 9u));

TEST(PropertyMisc, SegmentSizeDoesNotAffectCorrectness)
{
    // Same op stream through different segment sizes must produce
    // identical logical outcomes and verified chains.
    for (const std::uint32_t seg_pages : {4u, 16u, 64u}) {
        VirtualClock clock;
        core::RssdDevice dev(config(seg_pages), clock);
        Rng rng(99);
        for (int op = 0; op < 1000; op++) {
            const flash::Lpa lpa = rng.below(100);
            if (rng.chance(0.7)) {
                dev.writePage(lpa,
                              std::vector<std::uint8_t>(
                                  dev.pageSize(),
                                  static_cast<std::uint8_t>(op)));
            } else {
                dev.trimPage(lpa);
            }
        }
        dev.drainOffload();
        core::DeviceHistory history(dev);
        EXPECT_TRUE(history.verifyEvidenceChain())
            << "segment pages " << seg_pages;
        // Every logged op is visible in the merged history.
        EXPECT_EQ(history.entries().size(),
                  dev.opLog().totalAppended());
    }
}

} // namespace
} // namespace rssd
