/**
 * @file
 * Tests for VirtualClock and BusyResource (the latency-accounting
 * primitives everything else builds on).
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"

namespace rssd {
namespace {

TEST(VirtualClock, StartsAtZero)
{
    VirtualClock c;
    EXPECT_EQ(c.now(), 0u);
}

TEST(VirtualClock, AdvanceAccumulates)
{
    VirtualClock c;
    c.advance(10);
    c.advance(5);
    EXPECT_EQ(c.now(), 15u);
}

TEST(VirtualClock, AdvanceToNeverGoesBackward)
{
    VirtualClock c;
    c.advanceTo(100);
    EXPECT_EQ(c.now(), 100u);
    c.advanceTo(50);
    EXPECT_EQ(c.now(), 100u);
}

TEST(VirtualClock, Reset)
{
    VirtualClock c;
    c.advance(77);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

TEST(BusyResource, IdleServesImmediately)
{
    BusyResource r;
    EXPECT_EQ(r.serve(100, 10), 110u);
}

TEST(BusyResource, QueuesBehindBusyHorizon)
{
    BusyResource r;
    EXPECT_EQ(r.serve(0, 100), 100u);
    // Arrives at 10, but the resource is busy until 100.
    EXPECT_EQ(r.serve(10, 5), 105u);
}

TEST(BusyResource, LateArrivalStartsAtArrival)
{
    BusyResource r;
    r.serve(0, 10);
    EXPECT_EQ(r.serve(50, 10), 60u);
}

TEST(BusyResource, PipelineOfRequests)
{
    BusyResource r;
    Tick done = 0;
    for (int i = 0; i < 10; i++)
        done = r.serve(0, 7);
    EXPECT_EQ(done, 70u);
}

} // namespace
} // namespace rssd
