/**
 * @file
 * Tests for Summary, LatencyHistogram and formatting helpers.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace rssd {
namespace {

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, TracksMoments)
{
    Summary s;
    s.add(1.0);
    s.add(2.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Summary, MergeEquivalentToCombinedStream)
{
    Summary a, b, all;
    for (int i = 0; i < 10; i++) {
        a.add(i);
        all.add(i);
    }
    for (int i = 10; i < 25; i++) {
        b.add(i);
        all.add(i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(LatencyHistogram, EmptyPercentileIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentileNs(50), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogram, SingleValue)
{
    LatencyHistogram h;
    h.add(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.maxNs(), 1000u);
    // p50 is bounded by the max sample.
    EXPECT_LE(h.percentileNs(50), 1000u);
    EXPECT_GT(h.percentileNs(50), 500u);
}

TEST(LatencyHistogram, PercentilesAreMonotone)
{
    LatencyHistogram h;
    for (Tick v = 1; v <= 100000; v += 17)
        h.add(v);
    Tick prev = 0;
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        const Tick v = h.percentileNs(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
}

TEST(LatencyHistogram, P99ReflectsTail)
{
    LatencyHistogram h;
    for (int i = 0; i < 990; i++)
        h.add(100);
    for (int i = 0; i < 10; i++)
        h.add(1000000);
    EXPECT_LT(h.percentileNs(50), 200u);
    EXPECT_GT(h.percentileNs(99.5), 100000u);
}

TEST(LatencyHistogram, MergeAddsCounts)
{
    LatencyHistogram a, b;
    a.add(10);
    b.add(20);
    b.add(30);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.maxNs(), 30u);
}

TEST(LatencyHistogram, BucketBoundsAreInverseConsistent)
{
    // Property: for every Tick v, v <= bucketUpperBound(bucketFor(v)).
    // Sweep each power of two and its neighbours across the full
    // 64-bit range — the seam where the old last-bucket bound (2^36)
    // under-reported samples the clamp bucket had absorbed.
    for (int shift = 0; shift < 64; shift++) {
        const Tick base = Tick{1} << shift;
        for (const Tick v : {base - 1, base, base + 1}) {
            if (v == 0)
                continue;
            const int b = LatencyHistogram::bucketFor(v);
            ASSERT_GE(b, 0) << "v=" << v;
            ASSERT_LT(b, LatencyHistogram::kBuckets) << "v=" << v;
            EXPECT_LE(v, LatencyHistogram::bucketUpperBound(b))
                << "v=" << v << " bucket=" << b;
        }
    }
    const Tick all_ones = ~Tick{0};
    EXPECT_LE(all_ones, LatencyHistogram::bucketUpperBound(
                            LatencyHistogram::bucketFor(all_ones)));
}

TEST(LatencyHistogram, BucketUpperBoundsAreMonotone)
{
    // Half-octave edges collapse at the bottom of the range —
    // ceil(2^0.5) == ceil(2^1) == 2 — so buckets 0 and 1 share an
    // upper bound; from bucket 1 on the edges are strictly rising.
    Tick prev = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets; b++) {
        const Tick u = LatencyHistogram::bucketUpperBound(b);
        if (b == 1)
            EXPECT_GE(u, prev) << "bucket=" << b;
        else
            EXPECT_GT(u, prev) << "bucket=" << b;
        prev = u;
    }
}

TEST(LatencyHistogram, P100IsExactMaxEvenPastBucketRange)
{
    // A sample beyond the last finite bucket bound lands in the
    // clamp bucket; p100 must still answer the exact max, not the
    // bucket boundary.
    LatencyHistogram h;
    h.add(100);
    const Tick huge = (Tick{1} << 40) + 7;
    h.add(huge);
    EXPECT_EQ(h.maxNs(), huge);
    EXPECT_EQ(h.percentileNs(100), huge);
}

TEST(LatencyHistogram, P100EqualsMaxAcrossMagnitudes)
{
    LatencyHistogram h;
    Tick max = 0;
    for (int shift = 0; shift < 63; shift += 3) {
        const Tick v = (Tick{1} << shift) + 1;
        h.add(v);
        max = std::max(max, v);
        EXPECT_EQ(h.percentileNs(100), max) << "shift=" << shift;
    }
}

TEST(LatencyHistogram, MergeAfterReset)
{
    LatencyHistogram a, b;
    a.add(10);
    a.add(1u << 20);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.maxNs(), 0u);
    EXPECT_EQ(a.percentileNs(50), 0u);
    b.add(20);
    b.add(40);
    a.merge(b);
    // The reset histogram must behave exactly like a fresh one: no
    // stale max, count, or bucket contents bleed into the merge.
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.maxNs(), 40u);
    EXPECT_EQ(a.percentileNs(100), 40u);
    EXPECT_DOUBLE_EQ(a.meanNs(), 30.0);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(3 * units::MiB), "3.00 MiB");
    EXPECT_EQ(formatBytes(5 * units::GiB), "5.00 GiB");
    EXPECT_EQ(formatBytes(2 * units::TiB), "2.00 TiB");
}

TEST(Format, Time)
{
    EXPECT_EQ(formatTime(100), "100 ns");
    EXPECT_EQ(formatTime(5 * units::US), "5.00 us");
    EXPECT_EQ(formatTime(3 * units::MS), "3.000 ms");
    EXPECT_EQ(formatTime(2 * units::SEC), "2.000 s");
}

TEST(Units, TransferTime)
{
    // 1 GiB at 8 Gb/s ~= 1.07 s.
    const Tick t = units::transferTimeNs(units::GiB, 8.0);
    EXPECT_NEAR(units::toSeconds(t), 1.074, 0.01);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toDays(units::DAY), 1.0);
    EXPECT_DOUBLE_EQ(units::toGiB(units::GiB), 1.0);
    EXPECT_DOUBLE_EQ(units::toMiB(512 * units::KiB), 0.5);
}

} // namespace
} // namespace rssd
