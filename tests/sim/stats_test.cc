/**
 * @file
 * Tests for Summary, LatencyHistogram and formatting helpers.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace rssd {
namespace {

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, TracksMoments)
{
    Summary s;
    s.add(1.0);
    s.add(2.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Summary, MergeEquivalentToCombinedStream)
{
    Summary a, b, all;
    for (int i = 0; i < 10; i++) {
        a.add(i);
        all.add(i);
    }
    for (int i = 10; i < 25; i++) {
        b.add(i);
        all.add(i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(LatencyHistogram, EmptyPercentileIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentileNs(50), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogram, SingleValue)
{
    LatencyHistogram h;
    h.add(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.maxNs(), 1000u);
    // p50 is bounded by the max sample.
    EXPECT_LE(h.percentileNs(50), 1000u);
    EXPECT_GT(h.percentileNs(50), 500u);
}

TEST(LatencyHistogram, PercentilesAreMonotone)
{
    LatencyHistogram h;
    for (Tick v = 1; v <= 100000; v += 17)
        h.add(v);
    Tick prev = 0;
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        const Tick v = h.percentileNs(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
}

TEST(LatencyHistogram, P99ReflectsTail)
{
    LatencyHistogram h;
    for (int i = 0; i < 990; i++)
        h.add(100);
    for (int i = 0; i < 10; i++)
        h.add(1000000);
    EXPECT_LT(h.percentileNs(50), 200u);
    EXPECT_GT(h.percentileNs(99.5), 100000u);
}

TEST(LatencyHistogram, MergeAddsCounts)
{
    LatencyHistogram a, b;
    a.add(10);
    b.add(20);
    b.add(30);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.maxNs(), 30u);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(3 * units::MiB), "3.00 MiB");
    EXPECT_EQ(formatBytes(5 * units::GiB), "5.00 GiB");
    EXPECT_EQ(formatBytes(2 * units::TiB), "2.00 TiB");
}

TEST(Format, Time)
{
    EXPECT_EQ(formatTime(100), "100 ns");
    EXPECT_EQ(formatTime(5 * units::US), "5.00 us");
    EXPECT_EQ(formatTime(3 * units::MS), "3.000 ms");
    EXPECT_EQ(formatTime(2 * units::SEC), "2.000 s");
}

TEST(Units, TransferTime)
{
    // 1 GiB at 8 Gb/s ~= 1.07 s.
    const Tick t = units::transferTimeNs(units::GiB, 8.0);
    EXPECT_NEAR(units::toSeconds(t), 1.074, 0.01);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toDays(units::DAY), 1.0);
    EXPECT_DOUBLE_EQ(units::toGiB(units::GiB), 1.0);
    EXPECT_DOUBLE_EQ(units::toMiB(512 * units::KiB), 0.5);
}

} // namespace
} // namespace rssd
