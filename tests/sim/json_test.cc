/**
 * @file
 * JsonWriter tests: the one stable-byte JSON emitter every report
 * uses. Structure (comma/colon management), escaping, number
 * formats, and the well-formedness of representative documents —
 * plus the checker's own ability to reject the bug classes it
 * guards against.
 */

#include <gtest/gtest.h>

#include "sim/json.hh"

#include "tests/common/json_checker.hh"

namespace rssd::sim {
namespace {

using test::JsonChecker;

std::string
build(void (*fill)(JsonWriter &))
{
    std::string out;
    JsonWriter j(out);
    fill(j);
    return out;
}

TEST(JsonWriter, FlatObjectBytes)
{
    const std::string out = build([](JsonWriter &j) {
        j.open('{');
        j.key("a"); j.u64(1);
        j.key("b"); j.str("x");
        j.key("c"); j.boolean(true);
        j.close('}');
    });
    EXPECT_EQ(out, "{\"a\":1,\"b\":\"x\",\"c\":true}");
    EXPECT_TRUE(JsonChecker(out).valid());
}

TEST(JsonWriter, NestedObjectsAndArrays)
{
    const std::string out = build([](JsonWriter &j) {
        j.open('{');
        j.key("o");
        j.open('{');
        j.key("n"); j.u64(7);
        j.close('}');
        j.key("arr");
        j.open('[');
        for (int i = 0; i < 3; i++) {
            j.elem();
            j.u64(static_cast<std::uint64_t>(i));
        }
        j.close(']');
        j.key("objs");
        j.open('[');
        for (int i = 0; i < 2; i++) {
            j.elem();
            j.open('{');
            j.key("i"); j.u64(static_cast<std::uint64_t>(i));
            j.close('}');
        }
        j.close(']');
        j.close('}');
    });
    EXPECT_EQ(out, "{\"o\":{\"n\":7},\"arr\":[0,1,2],"
                   "\"objs\":[{\"i\":0},{\"i\":1}]}");
    EXPECT_TRUE(JsonChecker(out).valid());
}

TEST(JsonWriter, CommaAfterEveryValueKind)
{
    // The PR 3 review bug class: a value type that forgets to mark
    // the pair closed drops the next comma. Exercise every value
    // kind in key positions.
    const std::string out = build([](JsonWriter &j) {
        j.open('{');
        j.key("u"); j.u64(1);
        j.key("f"); j.f64(0.5);
        j.key("s"); j.str("v");
        j.key("t"); j.boolean(false);
        j.key("o"); j.open('{'); j.close('}');
        j.key("a"); j.open('['); j.close(']');
        j.key("last"); j.u64(2);
        j.close('}');
    });
    EXPECT_TRUE(JsonChecker(out).valid()) << out;
    EXPECT_EQ(out, "{\"u\":1,\"f\":0.5,\"s\":\"v\",\"t\":false,"
                   "\"o\":{},\"a\":[],\"last\":2}");
}

TEST(JsonWriter, EscapesQuotesBackslashesDropsControlChars)
{
    const std::string out = build([](JsonWriter &j) {
        j.open('{');
        j.key("s"); j.str("a\"b\\c\nd");
        j.close('}');
    });
    EXPECT_EQ(out, "{\"s\":\"a\\\"b\\\\cd\"}");
    EXPECT_TRUE(JsonChecker(out).valid());
}

TEST(JsonWriter, EmptyArrayAndNestedEmpty)
{
    const std::string out = build([](JsonWriter &j) {
        j.open('[');
        j.elem(); j.open('['); j.close(']');
        j.elem(); j.open('{'); j.close('}');
        j.close(']');
    });
    EXPECT_EQ(out, "[[],{}]");
    EXPECT_TRUE(JsonChecker(out).valid());
}

TEST(JsonWriter, LargeIntegersExact)
{
    const std::string out = build([](JsonWriter &j) {
        j.open('{');
        j.key("max"); j.u64(~0ull);
        j.close('}');
    });
    EXPECT_EQ(out, "{\"max\":18446744073709551615}");
}

TEST(JsonChecker, RejectsItsBugClasses)
{
    EXPECT_FALSE(JsonChecker("{\"a\":1\"b\":2}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":1,").valid());
    EXPECT_FALSE(JsonChecker("[1 2]").valid());
    EXPECT_FALSE(JsonChecker("{\"a\"1}").valid());
    EXPECT_FALSE(JsonChecker("").valid());
    EXPECT_TRUE(JsonChecker(
                    "{\"a\":[1,2],\"b\":{\"c\":true,\"d\":\"x\"}}")
                    .valid());
}

} // namespace
} // namespace rssd::sim
