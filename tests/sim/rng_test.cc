/**
 * @file
 * Tests for the deterministic RNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/rng.hh"

namespace rssd {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    // A broken xoshiro seeded all-zero would return 0 forever.
    bool nonzero = false;
    for (int i = 0; i < 16; i++)
        nonzero |= r.next() != 0;
    EXPECT_TRUE(nonzero);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; i++)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BetweenInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; i++) {
        const std::uint64_t v = r.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        hit_lo |= v == 5;
        hit_hi |= v == 8;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 20000; i++)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng r(19);
    double sum = 0;
    for (int i = 0; i < 50000; i++)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / 50000.0, 5.0, 0.2);
}

TEST(Zipf, UniformWhenSkewZero)
{
    Rng r(23);
    ZipfSampler z(10, 0.0);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; i++)
        counts[z.sample(r)]++;
    for (const auto &[k, c] : counts) {
        EXPECT_LT(k, 10u);
        EXPECT_NEAR(c / 50000.0, 0.1, 0.02);
    }
}

TEST(Zipf, SkewConcentratesOnHead)
{
    Rng r(29);
    ZipfSampler z(1000, 1.0);
    int head = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        head += z.sample(r) < 10;
    // With skew 1.0 over 1000 items, the top-10 get ~39% of mass.
    EXPECT_GT(head, n / 4);
}

TEST(Zipf, SingleItem)
{
    Rng r(31);
    ZipfSampler z(1, 0.99);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(z.sample(r), 0u);
}

class ZipfRangeTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfRangeTest, SamplesAlwaysInRange)
{
    Rng r(37);
    ZipfSampler z(77, GetParam());
    for (int i = 0; i < 5000; i++)
        EXPECT_LT(z.sample(r), 77u);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfRangeTest,
                         ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.2,
                                           2.0));

} // namespace
} // namespace rssd
