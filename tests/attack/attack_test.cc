/**
 * @file
 * Attack model tests: each Ransomware 2.0 model must actually do the
 * damage the paper describes when pointed at an undefended SSD.
 */

#include <gtest/gtest.h>

#include "attack/ransomware.hh"
#include "attack/victim.hh"
#include "crypto/entropy.hh"
#include "nvme/local_ssd.hh"

namespace rssd::attack {
namespace {

ftl::FtlConfig
smallConfig()
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    return cfg;
}

class AttackTest : public ::testing::Test
{
  protected:
    AttackTest() : dev_(smallConfig(), clock_), victim_(0, 256) {}

    VirtualClock clock_;
    nvme::LocalSsd dev_;
    VictimDataset victim_;
};

TEST_F(AttackTest, VictimPopulateAndVerify)
{
    victim_.populate(dev_);
    EXPECT_DOUBLE_EQ(victim_.intactFraction(dev_), 1.0);
    EXPECT_EQ(victim_.pages(), 256u);
    EXPECT_FALSE(victim_.plaintextOf(0).empty());
}

TEST_F(AttackTest, VictimContentIsUserLike)
{
    victim_.populate(dev_);
    // Low-entropy content, below the detector's "user data" line.
    EXPECT_LT(crypto::shannonEntropy(victim_.plaintextOf(5)), 6.5);
}

TEST_F(AttackTest, ClassicEncryptsEverything)
{
    victim_.populate(dev_);
    ClassicRansomware attack;
    const AttackReport report = attack.run(dev_, clock_, victim_);

    EXPECT_EQ(report.pagesEncrypted, victim_.pages());
    EXPECT_EQ(report.writeErrors, 0u);
    EXPECT_DOUBLE_EQ(victim_.intactFraction(dev_), 0.0);

    // On-device data is now ciphertext.
    const nvme::Completion read = dev_.readPage(0);
    EXPECT_GT(crypto::shannonEntropy(read.data), 7.2);
}

TEST_F(AttackTest, EncryptionIsKeyedAndDeterministic)
{
    victim_.populate(dev_);
    ClassicRansomware a1, a2;
    // Same attacker config: same ciphertext (nonce = LPA).
    a1.run(dev_, clock_, victim_);
    const nvme::Completion c1 = dev_.readPage(3);

    VirtualClock clock2;
    nvme::LocalSsd dev2(smallConfig(), clock2);
    VictimDataset victim2(0, 256);
    victim2.populate(dev2);
    a2.run(dev2, clock2, victim2);
    const nvme::Completion c2 = dev2.readPage(3);
    EXPECT_EQ(c1.data, c2.data);
}

TEST_F(AttackTest, GcAttackFloodsCapacity)
{
    victim_.populate(dev_);
    GcAttack::Params params;
    params.floodCapacityMultiple = 1.5;
    params.floodSpanFraction = 0.4;
    GcAttack attack(params);
    const AttackReport report = attack.run(dev_, clock_, victim_);

    EXPECT_EQ(report.pagesEncrypted, victim_.pages());
    EXPECT_GE(report.junkPagesWritten,
              dev_.capacityPages()); // >= 1x capacity of junk
    // The flood forced plenty of GC on the undefended device.
    EXPECT_GT(dev_.ftl().stats().gcErases, 10u);
    EXPECT_DOUBLE_EQ(victim_.intactFraction(dev_), 0.0);
}

TEST_F(AttackTest, GcAttackErasesStalePlaintextOnPlainSsd)
{
    // The headline GC-attack property: after the flood, the victim
    // plaintext no longer exists anywhere in the flash array.
    victim_.populate(dev_);
    GcAttack::Params params;
    params.floodCapacityMultiple = 2.0;
    params.floodSpanFraction = 0.5;
    GcAttack attack(params);
    attack.run(dev_, clock_, victim_);

    const auto &nand = dev_.ftl().nand();
    const auto &geom = dev_.ftl().config().geometry;
    int surviving = 0;
    for (flash::Ppa ppa = 0; ppa < geom.totalPages(); ppa++) {
        if (nand.state(ppa) != flash::PageState::Programmed)
            continue;
        const auto &content = nand.content(ppa);
        if (content.empty())
            continue;
        for (std::uint32_t i = 0; i < victim_.pages(); i++) {
            if (content == victim_.plaintextOf(i)) {
                surviving++;
                break;
            }
        }
    }
    // GC reclaimed nearly all stale plaintext; at most the pages
    // sitting in not-yet-victimized blocks survive.
    EXPECT_LT(surviving, static_cast<int>(victim_.pages()) / 8);
}

TEST_F(AttackTest, TimingAttackIsSlowAndDiluted)
{
    victim_.populate(dev_);
    TimingAttack::Params params;
    params.encryptionInterval = units::SEC;
    params.benignOpsPerEncrypt = 16;
    TimingAttack attack(params);
    const AttackReport report = attack.run(dev_, clock_, victim_);

    EXPECT_EQ(report.pagesEncrypted, victim_.pages());
    EXPECT_GE(report.benignOpsIssued, 16u * victim_.pages());
    // The attack took real (simulated) time: at least one interval
    // per victim page.
    EXPECT_GE(report.finishedAt - report.startedAt,
              units::SEC * victim_.pages());
    EXPECT_DOUBLE_EQ(victim_.intactFraction(dev_), 0.0);
}

TEST_F(AttackTest, TrimmingAttackTrimsOriginals)
{
    victim_.populate(dev_);
    TrimmingAttack attack;
    const AttackReport report = attack.run(dev_, clock_, victim_);

    EXPECT_EQ(report.pagesEncrypted, victim_.pages());
    EXPECT_EQ(report.pagesTrimmed, victim_.pages());
    EXPECT_DOUBLE_EQ(victim_.intactFraction(dev_), 0.0);

    // Originals read back as zeros (trimmed)...
    const nvme::Completion orig = dev_.readPage(0);
    EXPECT_EQ(orig.data,
              std::vector<std::uint8_t>(dev_.pageSize(), 0));
    // ...while the ciphertext hostage exists elsewhere.
    const flash::Lpa drop =
        static_cast<flash::Lpa>(dev_.capacityPages() * 0.75);
    const nvme::Completion cipher = dev_.readPage(drop);
    EXPECT_GT(crypto::shannonEntropy(cipher.data), 7.2);
}

TEST_F(AttackTest, ReportsNameAttacks)
{
    EXPECT_STREQ(ClassicRansomware().name(), "classic");
    EXPECT_STREQ(GcAttack().name(), "gc-attack");
    EXPECT_STREQ(TimingAttack().name(), "timing-attack");
    EXPECT_STREQ(TrimmingAttack().name(), "trimming-attack");
}

} // namespace
} // namespace rssd::attack
