/**
 * @file
 * Test helper: FaultInjector — a scripted fault schedule against one
 * BackupCluster, shared by the remote, fleet, and forensics suites.
 *
 * Faults are (tick, fault) pairs applied in schedule order when the
 * test's virtual time passes them: a fail-stop shard kill, an
 * injected slow-replica service delay, a single-byte corruption of
 * one stored segment (the fault read-side voting and chain-verifying
 * source selection must survive), or silent bit-rot over a payload
 * byte range with the tail metadata untouched (the fault only an
 * integrity scrub catches). The injector is deliberately dumb —
 * it owns no clock; the test drives advanceTo() from whatever time
 * base it already has (device clocks, the fleet event spine, or a
 * bare counter), which keeps every run deterministic.
 */

#ifndef RSSD_TESTS_COMMON_FAULT_INJECTION_HH
#define RSSD_TESTS_COMMON_FAULT_INJECTION_HH

#include <algorithm>
#include <vector>

#include "remote/backup_cluster.hh"

namespace rssd::test {

struct ScriptedFault
{
    enum class Kind : std::uint8_t {
        KillShard,      ///< fail-stop crash (no migration)
        DelayShard,     ///< add per-segment service latency
        CorruptSegment, ///< flip one payload byte in a stored segment
        BitRot,         ///< flip a payload byte range, tail untouched
    };

    Tick at = 0;
    Kind kind = Kind::KillShard;
    remote::ShardId shard = 0;

    /** DelayShard: extra per-segment service time. */
    Tick delay = 0;

    /** CorruptSegment / BitRot: which stream and which of its live
     *  segments (0-based, stream order). */
    remote::DeviceId stream = 0;
    std::uint64_t segmentIdx = 0;

    /** BitRot: payload byte range to flip (clamped to the payload).
     *  Segment ids, anchors and the chain tail stay pristine, so
     *  ingest keeps flowing and tail votes still agree — only an
     *  integrity scrub that re-verifies stored bytes catches it. */
    std::size_t byteOffset = 0;
    std::size_t byteCount = 1;
};

class FaultInjector
{
  public:
    explicit FaultInjector(remote::BackupCluster &cluster)
        : cluster_(cluster)
    {
    }

    void
    schedule(const ScriptedFault &fault)
    {
        faults_.push_back(fault);
        // Stable by arrival tick: same-tick faults keep schedule
        // order, so a script is a deterministic program.
        std::stable_sort(faults_.begin() + applied_, faults_.end(),
                         [](const ScriptedFault &a,
                            const ScriptedFault &b) {
                             return a.at < b.at;
                         });
    }

    /** Apply every not-yet-applied fault with at <= @p now. */
    void
    advanceTo(Tick now)
    {
        while (applied_ < faults_.size() &&
               faults_[applied_].at <= now) {
            apply(faults_[applied_]);
            applied_++;
        }
    }

    /** Faults applied so far (tests assert the script ran). */
    std::size_t applied() const { return applied_; }

  private:
    void
    apply(const ScriptedFault &f)
    {
        switch (f.kind) {
          case ScriptedFault::Kind::KillShard:
            cluster_.crashShard(f.shard);
            break;
          case ScriptedFault::Kind::DelayShard:
            cluster_.setShardDelay(f.shard, f.delay);
            break;
          case ScriptedFault::Kind::CorruptSegment:
            cluster_.mutableShardStore(f.shard).corruptStoredSegment(
                f.stream, f.segmentIdx);
            break;
          case ScriptedFault::Kind::BitRot:
            cluster_.mutableShardStore(f.shard).injectBitRot(
                f.stream, f.segmentIdx, f.byteOffset, f.byteCount);
            break;
        }
    }

    remote::BackupCluster &cluster_;
    std::vector<ScriptedFault> faults_;
    std::size_t applied_ = 0;
};

} // namespace rssd::test

#endif // RSSD_TESTS_COMMON_FAULT_INJECTION_HH
