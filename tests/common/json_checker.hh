/**
 * @file
 * Test helper: a minimal recursive-descent JSON syntax checker —
 * enough to reject missing commas/colons and unbalanced structure,
 * so a golden digest can only ever pin a well-formed document.
 * Shared by the JsonWriter unit test and every report test
 * (FleetReport, ForensicsReport).
 */

#ifndef RSSD_TESTS_COMMON_JSON_CHECKER_HH
#define RSSD_TESTS_COMMON_JSON_CHECKER_HH

#include <cctype>
#include <cstddef>
#include <string>

namespace rssd::test {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        pos_++; // '{'
        skipWs();
        if (peek('}'))
            return true;
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek('}'))
                return true;
            if (!expect(','))
                return false;
        }
    }

    bool
    array()
    {
        pos_++; // '['
        skipWs();
        if (peek(']'))
            return true;
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek(']'))
                return true;
            if (!expect(','))
                return false;
        }
    }

    bool
    string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        pos_++;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                pos_++;
            pos_++;
        }
        return expect('"');
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E')) {
            pos_++;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; p++) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
            pos_++;
        }
        return true;
    }

    bool
    expect(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            pos_++;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            pos_++;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\t' || s_[pos_] == '\r')) {
            pos_++;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace rssd::test

#endif // RSSD_TESTS_COMMON_JSON_CHECKER_HH
