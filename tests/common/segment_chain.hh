/**
 * @file
 * Test helper: builds a valid sealed-segment chain for one device
 * stream (its own codec, segment ids, and log hash chain), so
 * multi-stream store/cluster/transport tests can interleave several
 * independent histories the way a fleet of devices would.
 */

#ifndef RSSD_TESTS_COMMON_SEGMENT_CHAIN_HH
#define RSSD_TESTS_COMMON_SEGMENT_CHAIN_HH

#include <string>

#include "log/oplog.hh"
#include "log/segment.hh"
#include "sim/rng.hh"

namespace rssd::test {

class SegmentChain
{
  public:
    explicit SegmentChain(const std::string &key_seed,
                          std::uint64_t rng_seed = 77)
        : codec_(log::SegmentCodec::fromSeed(key_seed)), rng_(rng_seed)
    {
    }

    const log::SegmentCodec &codec() const { return codec_; }

    /** Seal the next segment in this stream's valid chain. */
    log::SealedSegment
    next(std::size_t n_entries = 3, std::size_t page_bytes = 0)
    {
        log::Segment seg;
        seg.id = nextId_;
        seg.prevId = nextId_ == 0 ? log::kNoSegment : nextId_ - 1;
        seg.chainAnchor = chain_.anchorDigest();
        for (std::size_t i = 0; i < n_entries; i++) {
            chain_.append(log::OpKind::Write, i, dataSeq_++,
                          log::kNoDataSeq, i, 2.0f);
        }
        seg.entries.assign(chain_.entries().begin(),
                           chain_.entries().end());
        seg.chainTail = seg.entries.empty() ? seg.chainAnchor
                                            : seg.entries.back().chain;
        if (page_bytes > 0) {
            log::PageRecord p;
            p.lpa = 1;
            p.dataSeq = dataSeq_++;
            // Incompressible content so sealed size tracks page_bytes.
            p.content.resize(page_bytes);
            for (auto &b : p.content)
                b = static_cast<std::uint8_t>(rng_.next());
            seg.pages.push_back(std::move(p));
        }
        chain_.truncateBefore(chain_.totalAppended());
        nextId_++;
        return codec_.seal(seg);
    }

  private:
    log::SegmentCodec codec_;
    log::OperationLog chain_;
    Rng rng_;
    std::uint64_t nextId_ = 0;
    std::uint64_t dataSeq_ = 0;
};

} // namespace rssd::test

#endif // RSSD_TESTS_COMMON_SEGMENT_CHAIN_HH
