/**
 * @file
 * Shannon-entropy estimator tests — the discriminator every
 * ransomware detector in the system depends on.
 */

#include <gtest/gtest.h>

#include "compress/datagen.hh"
#include "crypto/chacha20.hh"
#include "crypto/entropy.hh"
#include "sim/rng.hh"

namespace rssd::crypto {
namespace {

TEST(Entropy, EmptyIsZero)
{
    EXPECT_EQ(shannonEntropy(nullptr, 0), 0.0);
}

TEST(Entropy, ConstantBufferIsZero)
{
    std::vector<std::uint8_t> buf(4096, 0x41);
    EXPECT_EQ(shannonEntropy(buf), 0.0);
}

TEST(Entropy, TwoSymbolsEqualSplitIsOneBit)
{
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 512; i++) {
        buf.push_back(0);
        buf.push_back(1);
    }
    EXPECT_NEAR(shannonEntropy(buf), 1.0, 1e-9);
}

TEST(Entropy, AllByteValuesUniformIsEightBits)
{
    std::vector<std::uint8_t> buf;
    for (int rep = 0; rep < 16; rep++) {
        for (int v = 0; v < 256; v++)
            buf.push_back(static_cast<std::uint8_t>(v));
    }
    EXPECT_NEAR(shannonEntropy(buf), 8.0, 1e-9);
}

TEST(Entropy, CiphertextAboveDetectorThreshold)
{
    // The detectors use 7.2 bits/byte as "looks encrypted".
    std::vector<std::uint8_t> buf(4096, 0);
    ChaCha20 c(ChaCha20::deriveKey("k"),
               ChaCha20::nonceFromSequence(0));
    c.apply(buf);
    EXPECT_GT(shannonEntropy(buf), 7.2);
}

TEST(Entropy, UserLikeContentBelowThreshold)
{
    // DataGenerator at 0.7 compressibility models user files; it
    // must land clearly below the "was user data" threshold (6.5).
    compress::DataGenerator gen(1, 0.7);
    const auto page = gen.page(4096);
    EXPECT_LT(shannonEntropy(page), 6.5);
}

TEST(EntropyAccumulator, MatchesOneShot)
{
    rssd::Rng rng(5);
    std::vector<std::uint8_t> buf(8192);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.below(37));

    EntropyAccumulator acc;
    acc.add(buf.data(), 1000);
    acc.add(buf.data() + 1000, buf.size() - 1000);
    EXPECT_DOUBLE_EQ(acc.entropy(), shannonEntropy(buf));
    EXPECT_EQ(acc.totalBytes(), buf.size());
}

TEST(EntropyAccumulator, ResetClears)
{
    EntropyAccumulator acc;
    std::vector<std::uint8_t> buf(100, 7);
    acc.add(buf);
    acc.reset();
    EXPECT_EQ(acc.totalBytes(), 0u);
    EXPECT_EQ(acc.entropy(), 0.0);
}

TEST(EntropyAccumulator, SubTableSplitInvisibleAtEveryLength)
{
    // The interleaved count sub-tables and the 8-byte main loop must
    // be invisible: entropy over any prefix length (hitting every
    // main-loop/tail split) equals a strictly byte-at-a-time
    // accumulation of the same bytes.
    rssd::Rng rng(11);
    std::vector<std::uint8_t> buf(67);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.below(5) * 50);

    for (std::size_t len = 0; len <= buf.size(); len++) {
        EntropyAccumulator bulk;
        bulk.add(buf.data(), len);

        EntropyAccumulator bytewise;
        for (std::size_t i = 0; i < len; i++)
            bytewise.add(buf.data() + i, 1);

        EXPECT_DOUBLE_EQ(bulk.entropy(), bytewise.entropy())
            << "len " << len;
        EXPECT_EQ(bulk.totalBytes(), bytewise.totalBytes());
    }
}

} // namespace
} // namespace rssd::crypto
