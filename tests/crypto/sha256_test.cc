/**
 * @file
 * SHA-256 and HMAC-SHA256 against FIPS / RFC test vectors.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/sha256.hh"

namespace rssd::crypto {
namespace {

std::string
hashHex(const std::string &msg)
{
    return toHex(Sha256::hash(msg.data(), msg.size()));
}

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(hashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(hashHex("abcdbcdecdefdefgefghfghighijhijk"
                      "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 ctx;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; i++)
        ctx.update(chunk.data(), chunk.size());
    EXPECT_EQ(toHex(ctx.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg =
        "The quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= msg.size(); split++) {
        Sha256 ctx;
        ctx.update(msg.data(), split);
        ctx.update(msg.data() + split, msg.size() - split);
        EXPECT_EQ(toHex(ctx.finish()), hashHex(msg))
            << "split at " << split;
    }
}

TEST(Sha256, ExactBlockBoundaries)
{
    // 55, 56, 63, 64, 65 bytes hit every padding branch.
    for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
        const std::string msg(len, 'x');
        Sha256 one;
        one.update(msg.data(), msg.size());
        Sha256 two;
        for (char c : msg)
            two.update(&c, 1);
        EXPECT_EQ(toHex(one.finish()), toHex(two.finish()))
            << "len " << len;
    }
}

TEST(HmacSha256, Rfc4231Case1)
{
    std::uint8_t key[20];
    std::memset(key, 0x0b, sizeof(key));
    const std::string msg = "Hi There";
    const Digest d = hmacSha256(key, sizeof(key), msg.data(),
                                msg.size());
    EXPECT_EQ(toHex(d),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2)
{
    const std::string key = "Jefe";
    const std::string msg = "what do ya want for nothing?";
    const Digest d = hmacSha256(
        reinterpret_cast<const std::uint8_t *>(key.data()), key.size(),
        msg.data(), msg.size());
    EXPECT_EQ(toHex(d),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst)
{
    // RFC 4231 case 6: 131-byte key.
    std::uint8_t key[131];
    std::memset(key, 0xaa, sizeof(key));
    const std::string msg =
        "Test Using Larger Than Block-Size Key - Hash Key First";
    const Digest d = hmacSha256(key, sizeof(key), msg.data(),
                                msg.size());
    EXPECT_EQ(toHex(d),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, KeySensitivity)
{
    const std::string msg = "payload";
    std::uint8_t k1[] = {1, 2, 3};
    std::uint8_t k2[] = {1, 2, 4};
    EXPECT_NE(toHex(hmacSha256(k1, 3, msg.data(), msg.size())),
              toHex(hmacSha256(k2, 3, msg.data(), msg.size())));
}

TEST(HmacSha256, Rfc4231Case3)
{
    // 20 bytes of 0xaa, 50 bytes of 0xdd.
    std::uint8_t key[20];
    std::memset(key, 0xaa, sizeof(key));
    std::uint8_t msg[50];
    std::memset(msg, 0xdd, sizeof(msg));
    EXPECT_EQ(toHex(hmacSha256(key, sizeof(key), msg, sizeof(msg))),
              "773ea91e36800e46854db8ebd09181a7"
              "2959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4)
{
    std::uint8_t key[25];
    for (int i = 0; i < 25; i++)
        key[i] = static_cast<std::uint8_t>(i + 1);
    std::uint8_t msg[50];
    std::memset(msg, 0xcd, sizeof(msg));
    EXPECT_EQ(toHex(hmacSha256(key, sizeof(key), msg, sizeof(msg))),
              "82558a389a443c0ea4cc819899f2083a"
              "85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case7LongKeyAndData)
{
    std::uint8_t key[131];
    std::memset(key, 0xaa, sizeof(key));
    const std::string msg =
        "This is a test using a larger than block-size key and a "
        "larger than block-size data. The key needs to be hashed "
        "before being used by the HMAC algorithm.";
    EXPECT_EQ(toHex(hmacSha256(key, sizeof(key), msg.data(),
                               msg.size())),
              "9b09ffa71b942fcb27635fbcd5b0e944"
              "bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256, StreamingMatchesOneShotAtEverySplit)
{
    const std::string key = "segment-codec-key";
    const std::string msg =
        "header bytes | compressed encrypted payload bytes .........";
    const auto *kp = reinterpret_cast<const std::uint8_t *>(key.data());
    const Digest want =
        hmacSha256(kp, key.size(), msg.data(), msg.size());

    HmacSha256 mac(kp, key.size());
    for (std::size_t split = 0; split <= msg.size(); split++) {
        mac.reset();
        mac.update(msg.data(), split);
        mac.update(msg.data() + split, msg.size() - split);
        EXPECT_EQ(toHex(mac.finish()), toHex(want))
            << "split at " << split;
    }
}

TEST(HmacSha256, KeyedInstanceIsReusableAndCopyable)
{
    const std::uint8_t key[32] = {9, 8, 7};
    HmacSha256 proto(key, sizeof(key));

    const std::string a = "first message";
    const std::string b = "second message";

    HmacSha256 m1 = proto; // copy precomputed schedule
    m1.update(a.data(), a.size());
    const Digest da = m1.finish();

    HmacSha256 m2 = proto;
    m2.update(b.data(), b.size());
    const Digest db = m2.finish();

    EXPECT_EQ(toHex(da),
              toHex(hmacSha256(key, sizeof(key), a.data(), a.size())));
    EXPECT_EQ(toHex(db),
              toHex(hmacSha256(key, sizeof(key), b.data(), b.size())));
    EXPECT_NE(toHex(da), toHex(db));
}

} // namespace
} // namespace rssd::crypto
