/**
 * @file
 * CRC32C against known vectors and corruption-detection properties.
 */

#include <gtest/gtest.h>

#include <string>

#include "crypto/crc32.hh"

namespace rssd::crypto {
namespace {

TEST(Crc32c, KnownVectors)
{
    // "123456789" -> 0xE3069283 (iSCSI CRC32C check value).
    const std::string msg = "123456789";
    EXPECT_EQ(crc32c(msg.data(), msg.size()), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, AllZeros32Bytes)
{
    std::vector<std::uint8_t> zeros(32, 0);
    EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, AllOnes32Bytes)
{
    std::vector<std::uint8_t> ones(32, 0xFF);
    EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32c, DetectsSingleBitFlip)
{
    std::vector<std::uint8_t> data(1024);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i);
    const std::uint32_t clean = crc32c(data);
    for (std::size_t byte : {0u, 100u, 1023u}) {
        for (int bit = 0; bit < 8; bit++) {
            data[byte] ^= 1u << bit;
            EXPECT_NE(crc32c(data), clean);
            data[byte] ^= 1u << bit;
        }
    }
}

TEST(Crc32c, DetectsSwappedBytes)
{
    std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
    const std::uint32_t clean = crc32c(data);
    std::swap(data[1], data[3]);
    EXPECT_NE(crc32c(data), clean);
}

TEST(Crc32c, Rfc3720Vectors)
{
    // RFC 3720 B.4 test patterns (32 bytes each).
    std::vector<std::uint8_t> inc(32), dec(32);
    for (int i = 0; i < 32; i++) {
        inc[i] = static_cast<std::uint8_t>(i);
        dec[i] = static_cast<std::uint8_t>(31 - i);
    }
    EXPECT_EQ(crc32c(inc), 0x46DD794Eu);
    EXPECT_EQ(crc32c(dec), 0x113FDB5Cu);
}

TEST(Crc32c, DispatchedMatchesReferenceEverywhere)
{
    // The dispatched fast path (slicing-by-8/16 or SSE4.2) must be
    // bit-identical to the byte-at-a-time reference for every length,
    // alignment and seed — this is the determinism invariant.
    std::vector<std::uint8_t> data(1024 + 64);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i * 131 + 17);

    for (std::size_t offset : {0u, 1u, 3u, 7u, 8u}) {
        for (std::size_t len = 0; len <= 128; len++) {
            ASSERT_EQ(crc32c(data.data() + offset, len),
                      crc32cReference(data.data() + offset, len))
                << "offset " << offset << " len " << len;
        }
        for (std::size_t len : {255u, 256u, 257u, 1000u, 1024u}) {
            ASSERT_EQ(crc32c(data.data() + offset, len),
                      crc32cReference(data.data() + offset, len))
                << "offset " << offset << " len " << len;
        }
    }

    for (std::uint32_t seed : {0u, 1u, 0xdeadbeefu}) {
        EXPECT_EQ(crc32c(data.data(), 777, seed),
                  crc32cReference(data.data(), 777, seed));
    }
}

TEST(Crc32c, IncrementalSeedingMatchesOneShot)
{
    std::vector<std::uint8_t> data(300);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    const std::uint32_t whole = crc32c(data.data(), data.size());
    for (std::size_t split : {0u, 1u, 7u, 8u, 150u, 299u, 300u}) {
        const std::uint32_t first = crc32c(data.data(), split);
        EXPECT_EQ(crc32c(data.data() + split, data.size() - split,
                         first),
                  whole)
            << "split " << split;
    }
}

TEST(Crc32c, ImplNameIsKnown)
{
    const std::string name = crc32cImplName();
    EXPECT_TRUE(name == "slicing8" || name == "sse4.2") << name;
}

} // namespace
} // namespace rssd::crypto
