/**
 * @file
 * CRC32C against known vectors and corruption-detection properties.
 */

#include <gtest/gtest.h>

#include <string>

#include "crypto/crc32.hh"

namespace rssd::crypto {
namespace {

TEST(Crc32c, KnownVectors)
{
    // "123456789" -> 0xE3069283 (iSCSI CRC32C check value).
    const std::string msg = "123456789";
    EXPECT_EQ(crc32c(msg.data(), msg.size()), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, AllZeros32Bytes)
{
    std::vector<std::uint8_t> zeros(32, 0);
    EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, AllOnes32Bytes)
{
    std::vector<std::uint8_t> ones(32, 0xFF);
    EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32c, DetectsSingleBitFlip)
{
    std::vector<std::uint8_t> data(1024);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i);
    const std::uint32_t clean = crc32c(data);
    for (std::size_t byte : {0u, 100u, 1023u}) {
        for (int bit = 0; bit < 8; bit++) {
            data[byte] ^= 1u << bit;
            EXPECT_NE(crc32c(data), clean);
            data[byte] ^= 1u << bit;
        }
    }
}

TEST(Crc32c, DetectsSwappedBytes)
{
    std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
    const std::uint32_t clean = crc32c(data);
    std::swap(data[1], data[3]);
    EXPECT_NE(crc32c(data), clean);
}

} // namespace
} // namespace rssd::crypto
