/**
 * @file
 * ChaCha20 against the RFC 8439 test vector, plus roundtrip and
 * keystream-uniqueness properties.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/chacha20.hh"
#include "crypto/entropy.hh"
#include "crypto/sha256.hh"

namespace rssd::crypto {
namespace {

TEST(ChaCha20, Rfc8439Vector)
{
    // RFC 8439 §2.4.2.
    Key256 key;
    for (int i = 0; i < 32; i++)
        key[i] = static_cast<std::uint8_t>(i);
    Nonce96 nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                     0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};

    std::string plain =
        "Ladies and Gentlemen of the class of '99: If I could offer "
        "you only one tip for the future, sunscreen would be it.";
    std::vector<std::uint8_t> buf(plain.begin(), plain.end());

    ChaCha20 cipher(key, nonce, 1);
    cipher.apply(buf);

    const std::uint8_t expect_head[] = {0x6e, 0x2e, 0x35, 0x9a,
                                        0x25, 0x68, 0xf9, 0x80};
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(buf[i], expect_head[i]) << "byte " << i;

    const std::uint8_t expect_tail[] = {0x87, 0x4d};
    EXPECT_EQ(buf[buf.size() - 2], expect_tail[0]);
    EXPECT_EQ(buf[buf.size() - 1], expect_tail[1]);
}

TEST(ChaCha20, RoundtripRestoresPlaintext)
{
    const Key256 key = ChaCha20::deriveKey("test-key");
    const Nonce96 nonce = ChaCha20::nonceFromSequence(7);

    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i * 31);
    const auto original = data;

    ChaCha20 enc(key, nonce);
    enc.apply(data);
    EXPECT_NE(data, original);

    ChaCha20 dec(key, nonce);
    dec.apply(data);
    EXPECT_EQ(data, original);
}

TEST(ChaCha20, CiphertextLooksRandom)
{
    // Encrypting zeros yields ~8 bits/byte entropy — this property
    // is what the ransomware detectors key on.
    const Key256 key = ChaCha20::deriveKey("entropy-check");
    std::vector<std::uint8_t> zeros(64 * 1024, 0);
    ChaCha20 c(key, ChaCha20::nonceFromSequence(1));
    c.apply(zeros);
    EXPECT_GT(shannonEntropy(zeros), 7.9);
}

TEST(ChaCha20, DifferentNoncesDifferentStreams)
{
    const Key256 key = ChaCha20::deriveKey("k");
    std::vector<std::uint8_t> a(256, 0), b(256, 0);
    ChaCha20 ca(key, ChaCha20::nonceFromSequence(1));
    ChaCha20 cb(key, ChaCha20::nonceFromSequence(2));
    ca.apply(a);
    cb.apply(b);
    EXPECT_NE(a, b);
}

TEST(ChaCha20, ByteAtATimeMatchesBulk)
{
    const Key256 key = ChaCha20::deriveKey("chunking");
    const Nonce96 nonce = ChaCha20::nonceFromSequence(3);

    std::vector<std::uint8_t> bulk(300, 0xAB), stream(300, 0xAB);
    ChaCha20 cb(key, nonce);
    cb.apply(bulk);

    ChaCha20 cs(key, nonce);
    for (auto &byte : stream)
        cs.apply(&byte, 1);
    EXPECT_EQ(bulk, stream);
}

TEST(ChaCha20, DeriveKeyIsDeterministic)
{
    EXPECT_EQ(ChaCha20::deriveKey("same"), ChaCha20::deriveKey("same"));
    EXPECT_NE(ChaCha20::deriveKey("one"), ChaCha20::deriveKey("two"));
}

} // namespace
} // namespace rssd::crypto
