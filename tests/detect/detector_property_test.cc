/**
 * @file
 * Property-style parameterized sweeps over the detectors: monotone
 * behaviour in dilution, thresholds and window sizes — the knobs the
 * timing attack manipulates.
 */

#include <gtest/gtest.h>

#include "detect/detector.hh"
#include "sim/rng.hh"

namespace rssd::detect {
namespace {

/** Feed a synthetic attack at a given dilution; return alarm state. */
bool
runDiluted(Detector &det, std::uint32_t benign_per_victim,
           std::uint32_t victims = 200)
{
    rssd::Rng rng(benign_per_victim * 31 + 7);
    std::uint64_t seq = 0;
    Tick t = 0;
    for (std::uint32_t v = 0; v < victims; v++) {
        IoEvent enc;
        enc.kind = EventKind::Write;
        enc.lpa = 100000 + v;
        enc.seq = seq++;
        enc.timestamp = t += units::MS;
        enc.entropy = 7.95f;
        enc.prevEntropy = 4.2f;
        enc.overwrite = true;
        det.observe(enc);

        for (std::uint32_t b = 0; b < benign_per_victim; b++) {
            IoEvent ben;
            ben.kind = EventKind::Write;
            ben.lpa = rng.below(512);
            ben.seq = seq++;
            ben.timestamp = t += units::MS;
            ben.entropy = 4.5f;
            ben.prevEntropy = 4.5f;
            ben.overwrite = true;
            det.observe(ben);
        }
    }
    return det.alarmed();
}

class DilutionSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DilutionSweep, WindowedDetectorMonotoneInDilution)
{
    // If the windowed detector misses at dilution d, it must also
    // miss at every dilution > d (the attacker can only gain by
    // slowing down) — checked pairwise against 4x the dilution.
    const std::uint32_t d = GetParam();
    EntropyOverwriteDetector at_d, at_4d;
    const bool alarmed_d = runDiluted(at_d, d);
    const bool alarmed_4d = runDiluted(at_4d, d * 4 + 1);
    if (!alarmed_d) {
        EXPECT_FALSE(alarmed_4d) << "dilution " << d;
    }
}

TEST_P(DilutionSweep, AuditorImmuneToDilution)
{
    const std::uint32_t d = GetParam();
    CumulativeEntropyAuditor auditor;
    EXPECT_TRUE(runDiluted(auditor, d)) << "dilution " << d;
    EXPECT_EQ(auditor.suspiciousCount(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Dilutions, DilutionSweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u,
                                           32u, 64u));

class ThresholdSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ThresholdSweep, AuditorAlarmsExactlyAtThreshold)
{
    CumulativeEntropyAuditor::Config cfg;
    cfg.alarmCount = GetParam();
    CumulativeEntropyAuditor auditor(cfg);

    for (std::size_t i = 0; i < cfg.alarmCount - 1; i++) {
        IoEvent ev;
        ev.kind = EventKind::Write;
        ev.lpa = i;
        ev.seq = i;
        ev.timestamp = i;
        ev.entropy = 7.9f;
        ev.prevEntropy = 4.0f;
        ev.overwrite = true;
        auditor.observe(ev);
    }
    EXPECT_FALSE(auditor.alarmed());

    IoEvent last;
    last.kind = EventKind::Write;
    last.lpa = 9999;
    last.seq = cfg.alarmCount;
    last.timestamp = cfg.alarmCount;
    last.entropy = 7.9f;
    last.prevEntropy = 4.0f;
    last.overwrite = true;
    auditor.observe(last);
    EXPECT_TRUE(auditor.alarmed());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(1u, 8u, 64u, 256u));

class EntropyBoundarySweep
    : public ::testing::TestWithParam<std::pair<float, bool>>
{
};

TEST_P(EntropyBoundarySweep, HighEntropyThresholdRespected)
{
    // Writes at entropies straddling the 7.2 threshold.
    const auto [entropy, should_alarm] = GetParam();
    CumulativeEntropyAuditor::Config cfg;
    cfg.alarmCount = 32;
    CumulativeEntropyAuditor auditor(cfg);
    for (int i = 0; i < 64; i++) {
        IoEvent ev;
        ev.kind = EventKind::Write;
        ev.lpa = i;
        ev.seq = i;
        ev.timestamp = i;
        ev.entropy = entropy;
        ev.prevEntropy = 4.0f;
        ev.overwrite = true;
        auditor.observe(ev);
    }
    EXPECT_EQ(auditor.alarmed(), should_alarm)
        << "entropy " << entropy;
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, EntropyBoundarySweep,
    ::testing::Values(std::pair<float, bool>{7.95f, true},
                      std::pair<float, bool>{7.21f, true},
                      std::pair<float, bool>{7.19f, false},
                      std::pair<float, bool>{6.0f, false}));

TEST(DetectorProperties, ResetMakesDetectorsReusable)
{
    // Every detector must be fully reusable after reset() — the
    // Table 1 harness depends on it.
    EntropyOverwriteDetector d1;
    ReadOverwriteDetector d2;
    WriteBurstDetector d3;
    CumulativeEntropyAuditor d4;
    TrimAbuseDetector d5;
    std::vector<Detector *> all = {&d1, &d2, &d3, &d4, &d5};

    for (Detector *d : all) {
        runDiluted(*d, 0);
        d->reset();
        EXPECT_FALSE(d->alarmed()) << d->name();
        EXPECT_TRUE(d->alarms().empty()) << d->name();
    }
    // And they behave identically on a second run.
    EntropyOverwriteDetector fresh;
    const bool fresh_alarm = runDiluted(fresh, 2);
    EXPECT_EQ(runDiluted(d1, 2), fresh_alarm);
}

TEST(DetectorProperties, AlarmCarriesDetectorName)
{
    EntropyOverwriteDetector det;
    runDiluted(det, 0);
    ASSERT_TRUE(det.alarmed());
    EXPECT_EQ(det.alarms()[0].detector, "entropy-overwrite");
    EXPECT_FALSE(det.alarms()[0].reason.empty());
}

} // namespace
} // namespace rssd::detect
