/**
 * @file
 * Detector tests, including the paper's central evasion claims: the
 * timing attack defeats windowed online detectors but not the
 * offline cumulative auditor.
 */

#include <gtest/gtest.h>

#include "detect/detector.hh"

namespace rssd::detect {
namespace {

IoEvent
writeEvent(std::uint64_t seq, Lpa lpa, Tick t, float entropy,
           float prev_entropy)
{
    IoEvent ev;
    ev.kind = EventKind::Write;
    ev.lpa = lpa;
    ev.seq = seq;
    ev.timestamp = t;
    ev.entropy = entropy;
    ev.prevEntropy = prev_entropy;
    ev.overwrite = prev_entropy >= 0.0f;
    return ev;
}

IoEvent
readEvent(std::uint64_t seq, Lpa lpa, Tick t)
{
    IoEvent ev;
    ev.kind = EventKind::Read;
    ev.lpa = lpa;
    ev.seq = seq;
    ev.timestamp = t;
    return ev;
}

IoEvent
trimEvent(std::uint64_t seq, Lpa lpa, Tick t)
{
    IoEvent ev;
    ev.kind = EventKind::Trim;
    ev.lpa = lpa;
    ev.seq = seq;
    ev.timestamp = t;
    return ev;
}

// ---------------------------------------------------------------------
// EntropyOverwriteDetector
// ---------------------------------------------------------------------

TEST(EntropyOverwrite, AlarmsOnEncryptionBurst)
{
    EntropyOverwriteDetector det;
    for (std::uint64_t i = 0; i < 200; i++)
        det.observe(writeEvent(i, i, i * 1000, 7.9f, 4.0f));
    EXPECT_TRUE(det.alarmed());
    // The first flagged event is implicated.
    EXPECT_LE(det.alarms()[0].firstSuspectSeq, 32u);
}

TEST(EntropyOverwrite, SilentOnBenignWrites)
{
    EntropyOverwriteDetector det;
    for (std::uint64_t i = 0; i < 5000; i++)
        det.observe(writeEvent(i, i % 50, i * 1000, 4.5f, 4.0f));
    EXPECT_FALSE(det.alarmed());
}

TEST(EntropyOverwrite, SilentOnFreshHighEntropyWrites)
{
    // New (non-overwrite) high-entropy data — e.g. storing archives —
    // must not alarm.
    EntropyOverwriteDetector det;
    for (std::uint64_t i = 0; i < 5000; i++)
        det.observe(writeEvent(i, i, i * 1000, 7.9f, kNoEntropy));
    EXPECT_FALSE(det.alarmed());
}

TEST(EntropyOverwrite, TimingAttackEvadesWindow)
{
    // One encryption per 100 benign ops: the windowed ratio never
    // crosses the alarm threshold. This is the paper's timing attack.
    EntropyOverwriteDetector det;
    std::uint64_t seq = 0;
    for (int victim = 0; victim < 200; victim++) {
        const std::uint64_t vs = seq++;
        det.observe(
            writeEvent(vs, 10000 + victim, vs * 1000, 7.9f, 4.0f));
        for (int b = 0; b < 100; b++) {
            const std::uint64_t bs = seq++;
            det.observe(
                writeEvent(bs, b % 64, bs * 1000, 4.5f, 4.5f));
        }
    }
    EXPECT_FALSE(det.alarmed());
    // ...but the damage was done:
    EXPECT_EQ(det.flaggedTotal(), 200u);
}

TEST(EntropyOverwrite, ResetClearsState)
{
    EntropyOverwriteDetector det;
    for (std::uint64_t i = 0; i < 200; i++)
        det.observe(writeEvent(i, i, i, 7.9f, 4.0f));
    ASSERT_TRUE(det.alarmed());
    det.reset();
    EXPECT_FALSE(det.alarmed());
    EXPECT_EQ(det.flaggedTotal(), 0u);
}

// ---------------------------------------------------------------------
// CumulativeEntropyAuditor
// ---------------------------------------------------------------------

TEST(CumulativeAuditor, CatchesTimingAttack)
{
    // Same dilution that evaded the windowed detector above.
    CumulativeEntropyAuditor auditor;
    std::uint64_t seq = 0;
    std::uint64_t first_victim_seq = 0;
    for (int victim = 0; victim < 200; victim++) {
        if (victim == 0)
            first_victim_seq = seq;
        const std::uint64_t vs = seq++;
        auditor.observe(
            writeEvent(vs, 10000 + victim, vs * 1000, 7.9f, 4.0f));
        for (int b = 0; b < 100; b++) {
            const std::uint64_t bs = seq++;
            auditor.observe(
                writeEvent(bs, b % 64, bs * 1000, 4.5f, 4.5f));
        }
    }
    ASSERT_TRUE(auditor.alarmed());
    EXPECT_EQ(auditor.suspiciousCount(), 200u);
    EXPECT_EQ(auditor.alarms()[0].firstSuspectSeq, first_victim_seq);
    EXPECT_EQ(auditor.implicatedSeqs().size(), 200u);
}

TEST(CumulativeAuditor, ToleratesOccasionalHighEntropy)
{
    CumulativeEntropyAuditor auditor;
    // 30 suspicious overwrites over a long history: below the alarm
    // count (64), e.g. a user occasionally rewriting zip files.
    for (std::uint64_t i = 0; i < 30; i++)
        auditor.observe(writeEvent(i, i, i, 7.9f, 4.0f));
    EXPECT_FALSE(auditor.alarmed());
}

// ---------------------------------------------------------------------
// ReadOverwriteDetector
// ---------------------------------------------------------------------

TEST(ReadOverwrite, AlarmsOnClassicPattern)
{
    ReadOverwriteDetector det;
    std::uint64_t seq = 0;
    for (int i = 0; i < 100; i++) {
        det.observe(readEvent(seq++, i, i * units::MS));
        det.observe(writeEvent(seq++, i, i * units::MS + units::US,
                               7.9f, 4.0f));
    }
    EXPECT_TRUE(det.alarmed());
}

TEST(ReadOverwrite, SilentWhenOverwriteIsLowEntropy)
{
    ReadOverwriteDetector det;
    std::uint64_t seq = 0;
    for (int i = 0; i < 100; i++) {
        det.observe(readEvent(seq++, i, i * units::MS));
        det.observe(writeEvent(seq++, i, i * units::MS + units::US,
                               4.0f, 4.0f));
    }
    EXPECT_FALSE(det.alarmed());
}

TEST(ReadOverwrite, SilentWhenGapExceedsWindow)
{
    ReadOverwriteDetector det;
    std::uint64_t seq = 0;
    for (int i = 0; i < 100; i++) {
        const Tick t = i * units::MINUTE;
        det.observe(readEvent(seq++, i, t));
        // Overwrite a page read a full minute ago.
        if (i > 0) {
            det.observe(writeEvent(seq++, i - 1, t, 7.9f, 4.0f));
        }
    }
    EXPECT_FALSE(det.alarmed());
}

// ---------------------------------------------------------------------
// WriteBurstDetector
// ---------------------------------------------------------------------

TEST(WriteBurst, AlarmsOnFlood)
{
    WriteBurstDetector::Config cfg;
    cfg.maxWritesPerWindow = 1000;
    WriteBurstDetector det(cfg);
    for (std::uint64_t i = 0; i < 2000; i++)
        det.observe(writeEvent(i, i, i, 4.0f, kNoEntropy));
    EXPECT_TRUE(det.alarmed());
}

TEST(WriteBurst, SilentOnSpreadWrites)
{
    WriteBurstDetector::Config cfg;
    cfg.maxWritesPerWindow = 1000;
    WriteBurstDetector det(cfg);
    for (std::uint64_t i = 0; i < 5000; i++)
        det.observe(writeEvent(i, i, i * 10 * units::MS, 4.0f,
                               kNoEntropy));
    EXPECT_FALSE(det.alarmed());
}

// ---------------------------------------------------------------------
// TrimAbuseDetector
// ---------------------------------------------------------------------

TEST(TrimAbuse, AlarmsOnReadThenTrimFlood)
{
    TrimAbuseDetector det;
    std::uint64_t seq = 0;
    for (int i = 0; i < 200; i++) {
        det.observe(readEvent(seq++, i, i * units::MS));
        det.observe(trimEvent(seq++, i, i * units::MS + units::US));
    }
    EXPECT_TRUE(det.alarmed());
}

TEST(TrimAbuse, SilentOnOrdinaryTrims)
{
    // Filesystem discard of never-read blocks (e.g. deleting temp
    // files) is not the attack signature.
    TrimAbuseDetector det;
    for (std::uint64_t i = 0; i < 2000; i++)
        det.observe(trimEvent(i, i, i * units::MS));
    EXPECT_FALSE(det.alarmed());
}

} // namespace
} // namespace rssd::detect
