/**
 * @file
 * Operation-log tests: hash-chain integrity, tamper detection,
 * truncation, and the two sequence domains.
 */

#include <gtest/gtest.h>

#include "log/oplog.hh"

namespace rssd::log {
namespace {

TEST(OpLog, StartsEmptyAtGenesis)
{
    OperationLog log;
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.headDigest(), OperationLog::genesisDigest());
    EXPECT_EQ(log.anchorDigest(), OperationLog::genesisDigest());
    EXPECT_TRUE(log.verifyHeldChain());
}

TEST(OpLog, AppendAssignsDenseSeqs)
{
    OperationLog log;
    for (int i = 0; i < 10; i++) {
        const LogEntry &e =
            log.append(OpKind::Write, i, i, kNoDataSeq, i * 100, 4.0f);
        EXPECT_EQ(e.logSeq, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(log.size(), 10u);
    EXPECT_EQ(log.totalAppended(), 10u);
}

TEST(OpLog, ChainVerifies)
{
    OperationLog log;
    for (int i = 0; i < 100; i++)
        log.append(i % 3 ? OpKind::Write : OpKind::Trim, i % 7, i,
                   i ? i - 1 : kNoDataSeq, i * 10, 3.5f);
    EXPECT_TRUE(log.verifyHeldChain());
}

TEST(OpLog, TamperedEntryIsDetected)
{
    OperationLog log;
    for (int i = 0; i < 20; i++)
        log.append(OpKind::Write, i, i, kNoDataSeq, i, 1.0f);

    // Forge a run with one modified field.
    std::vector<LogEntry> run(log.entries().begin(),
                              log.entries().end());
    ASSERT_TRUE(OperationLog::verifyRun(OperationLog::genesisDigest(),
                                        run));
    run[7].lpa = 999; // attacker edits history
    EXPECT_FALSE(OperationLog::verifyRun(
        OperationLog::genesisDigest(), run));
}

TEST(OpLog, ReorderedEntriesAreDetected)
{
    OperationLog log;
    for (int i = 0; i < 10; i++)
        log.append(OpKind::Write, i, i, kNoDataSeq, i, 1.0f);
    std::vector<LogEntry> run(log.entries().begin(),
                              log.entries().end());
    std::swap(run[2], run[3]);
    EXPECT_FALSE(OperationLog::verifyRun(
        OperationLog::genesisDigest(), run));
}

TEST(OpLog, DeletedEntryIsDetected)
{
    OperationLog log;
    for (int i = 0; i < 10; i++)
        log.append(OpKind::Write, i, i, kNoDataSeq, i, 1.0f);
    std::vector<LogEntry> run(log.entries().begin(),
                              log.entries().end());
    run.erase(run.begin() + 4); // splice out one operation
    EXPECT_FALSE(OperationLog::verifyRun(
        OperationLog::genesisDigest(), run));
}

TEST(OpLog, WrongAnchorIsDetected)
{
    OperationLog log;
    log.append(OpKind::Write, 0, 0, kNoDataSeq, 0, 1.0f);
    std::vector<LogEntry> run(log.entries().begin(),
                              log.entries().end());
    crypto::Digest bogus{};
    EXPECT_FALSE(OperationLog::verifyRun(bogus, run));
}

TEST(OpLog, TruncationKeepsTailVerifiable)
{
    OperationLog log;
    for (int i = 0; i < 50; i++)
        log.append(OpKind::Write, i, i, kNoDataSeq, i, 1.0f);

    const crypto::Digest head_before = log.headDigest();
    log.truncateBefore(30);

    EXPECT_EQ(log.size(), 20u);
    EXPECT_EQ(log.firstHeldSeq(), 30u);
    EXPECT_FALSE(log.holds(29));
    EXPECT_TRUE(log.holds(30));
    EXPECT_TRUE(log.verifyHeldChain());
    EXPECT_EQ(log.headDigest(), head_before);
    EXPECT_EQ(log.at(30).logSeq, 30u);
}

TEST(OpLog, TruncateEverything)
{
    OperationLog log;
    for (int i = 0; i < 5; i++)
        log.append(OpKind::Write, i, i, kNoDataSeq, i, 1.0f);
    log.truncateBefore(5);
    EXPECT_EQ(log.size(), 0u);
    EXPECT_TRUE(log.verifyHeldChain());
    // Appending after truncation continues the chain seamlessly.
    log.append(OpKind::Trim, 1, kNoDataSeq, 0, 99, -1.0f);
    EXPECT_TRUE(log.verifyHeldChain());
    EXPECT_EQ(log.firstHeldSeq(), 5u);
}

TEST(OpLog, EntropyQuantizationInBody)
{
    LogEntry a, b;
    a.entropy = 7.991f;
    b.entropy = 7.992f;
    // Quantized to 1/1000 bits: these differ in the hashed body.
    EXPECT_NE(a.serializeBody(), b.serializeBody());
}

TEST(OpLog, BodyCoversAllFields)
{
    LogEntry base;
    base.logSeq = 1;
    base.lpa = 2;
    base.dataSeq = 3;
    base.prevDataSeq = 4;
    base.timestamp = 5;
    base.entropy = 6.0f;
    base.op = OpKind::Write;

    auto change = [&](auto mutate) {
        LogEntry e = base;
        mutate(e);
        return e.serializeBody();
    };
    const auto original = base.serializeBody();
    EXPECT_NE(change([](LogEntry &e) { e.logSeq = 9; }), original);
    EXPECT_NE(change([](LogEntry &e) { e.lpa = 9; }), original);
    EXPECT_NE(change([](LogEntry &e) { e.dataSeq = 9; }), original);
    EXPECT_NE(change([](LogEntry &e) { e.prevDataSeq = 9; }),
              original);
    EXPECT_NE(change([](LogEntry &e) { e.timestamp = 9; }), original);
    EXPECT_NE(change([](LogEntry &e) { e.op = OpKind::Trim; }),
              original);
}

TEST(OpLog, OpKindNames)
{
    EXPECT_STREQ(opKindName(OpKind::Write), "WRITE");
    EXPECT_STREQ(opKindName(OpKind::Trim), "TRIM");
}

TEST(OpLog, EntriesSpanIsContiguousAndOrdered)
{
    OperationLog log;
    for (int i = 0; i < 40; i++)
        log.append(OpKind::Write, i, i, kNoDataSeq, i, 1.0f);
    log.truncateBefore(15);

    const std::span<const LogEntry> tail = log.entries();
    ASSERT_EQ(tail.size(), 25u);
    for (std::size_t i = 0; i < tail.size(); i++) {
        EXPECT_EQ(tail[i].logSeq, 15 + i);
        // Contiguity: the span really is flat storage.
        EXPECT_EQ(&tail[i], tail.data() + i);
    }
}

TEST(OpLog, ManyPartialTruncationsStayConsistent)
{
    // Crosses the internal compaction threshold several times; the
    // observable state (seqs, chain, anchor) must never notice.
    OperationLog log;
    std::uint64_t appended = 0, truncated = 0;
    for (int round = 0; round < 40; round++) {
        for (int i = 0; i < 200; i++)
            log.append(OpKind::Write, i, appended++, kNoDataSeq, i,
                       0.5f);
        truncated += 150;
        log.truncateBefore(truncated);
        ASSERT_EQ(log.firstHeldSeq(), truncated);
        ASSERT_EQ(log.size(), appended - truncated);
        ASSERT_TRUE(log.verifyHeldChain());
        ASSERT_EQ(log.entries().front().logSeq, truncated);
        ASSERT_EQ(log.at(truncated).logSeq, truncated);
    }
}

} // namespace
} // namespace rssd::log
