/**
 * @file
 * Pins the sealed-segment wire format bit-for-bit.
 *
 * Determinism is a documented invariant (docs/ARCHITECTURE.md,
 * "Simulation model"): a fixed seed must reproduce byte-identical
 * output. These golden digests were captured from the scalar
 * byte-at-a-time implementations *before* the vectorized
 * serialize/seal kernels landed, so any optimization that changes a
 * single output byte anywhere in the serialize -> compress ->
 * encrypt -> HMAC pipeline fails here, rather than silently forking
 * the wire format.
 */

#include <gtest/gtest.h>

#include "compress/datagen.hh"
#include "core/rssd_device.hh"
#include "crypto/sha256.hh"
#include "log/segment.hh"

namespace rssd::log {
namespace {

Segment
goldenSegment(unsigned seed)
{
    Segment seg;
    seg.id = 3;
    seg.prevId = 2;

    OperationLog log;
    seg.chainAnchor = log.anchorDigest();
    for (std::size_t i = 0; i < 64; i++) {
        log.append(i % 4 ? OpKind::Write : OpKind::Trim, i * 3, i,
                   i ? i - 1 : kNoDataSeq, i * 1000,
                   static_cast<float>(i % 8));
    }
    seg.entries.assign(log.entries().begin(), log.entries().end());
    seg.chainTail = seg.entries.back().chain;

    compress::DataGenerator gen(seed, 0.6);
    for (std::size_t i = 0; i < 16; i++) {
        PageRecord p;
        p.lpa = i;
        p.dataSeq = 1000 + i;
        p.writtenAt = i;
        p.invalidatedAt = i + 5;
        p.cause = i % 2 ? RetainCause::Trim : RetainCause::Overwrite;
        p.content = gen.page(4096);
        seg.pages.push_back(std::move(p));
    }
    return seg;
}

TEST(SealDeterminism, CodecGoldenDigests)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("golden-seed");

    struct Golden
    {
        unsigned seed;
        const char *hmac;
        std::uint32_t crc;
        std::size_t payload;
        std::uint64_t raw;
    };
    const Golden goldens[] = {
        {1,
         "cc9b94fc071a20b27574ea573821312607c3258c0720a7558c41d9eaf0d83c9c",
         0x134900b4u, 35460u, 71404u},
        {9,
         "aff7d756882bf95ae3cfd29ad46497c6b5989df365ccd153cc93e20f13689628",
         0xca2fbf78u, 35741u, 71404u},
        {42,
         "c73e801360e876b8b6c6a77215e78a01cbc01f8b10da165d1a2cdd99bb3ef462",
         0xbc50c9b0u, 34545u, 71404u},
    };

    for (const Golden &g : goldens) {
        const SealedSegment sealed = codec.seal(goldenSegment(g.seed));
        EXPECT_EQ(crypto::toHex(sealed.hmac), g.hmac)
            << "seed " << g.seed;
        EXPECT_EQ(sealed.crc, g.crc) << "seed " << g.seed;
        EXPECT_EQ(sealed.payload.size(), g.payload) << "seed " << g.seed;
        EXPECT_EQ(sealed.rawSize, g.raw) << "seed " << g.seed;
    }
}

TEST(SealDeterminism, DeviceOffloadGoldenDigests)
{
    // The full offload path (FTL reads -> zero-copy log-tail seal ->
    // submit) over a fixed-seed workload must keep producing the
    // exact sealed segments the scalar pipeline produced.
    core::RssdConfig cfg = core::RssdConfig::forTests();
    cfg.segmentPages = 16;
    cfg.pumpThreshold = 1u << 30;
    VirtualClock clock;
    core::RssdDevice dev(cfg, clock);

    compress::DataGenerator gen(7, 0.55);
    for (int i = 0; i < 96; i++)
        dev.writePage(i % 8, gen.page(dev.pageSize()));
    dev.drainOffload();

    const char *golden_hmacs[] = {
        "1b3d990017c3182c94211b0ccba1dd77ba1bd9bb8413fc42b3acac223faca0f2",
        "0bf920425582734cea8c256c926fbd5d1fa5385a12d2999e7d7e140f33611977",
        "646e5a8a5f7189c165e0031306e5f4ca0dd3610e1b52e39570f9dc6955c469da",
        "ce5aac1b9a7a1cb672c6ac99f11c3a601ca23a71933964d2469705b7d3ce5ed5",
        "13567a2a6146046f48ab537892795dbc2a16f238512586303b87cda4c283d4c1",
        "71c02056a835a74135db0624eb3d1e482e9eedadb25da90781381d41af08445d",
    };

    const auto &store = dev.backupStore();
    ASSERT_EQ(store.segmentCount(), std::size(golden_hmacs));
    for (std::size_t id = 0; id < store.segmentCount(); id++) {
        EXPECT_EQ(crypto::toHex(store.sealedSegment(id).hmac),
                  golden_hmacs[id])
            << "segment " << id;
    }
}

} // namespace
} // namespace rssd::log
