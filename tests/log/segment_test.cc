/**
 * @file
 * Segment serialization and sealing tests: exact roundtrip,
 * compression+encryption layering, HMAC/CRC tamper detection.
 */

#include <gtest/gtest.h>

#include "compress/datagen.hh"
#include "crypto/entropy.hh"
#include "log/segment.hh"

namespace rssd::log {
namespace {

Segment
sampleSegment(std::size_t n_entries, std::size_t n_pages)
{
    Segment seg;
    seg.id = 3;
    seg.prevId = 2;

    OperationLog log;
    seg.chainAnchor = log.anchorDigest();
    for (std::size_t i = 0; i < n_entries; i++) {
        log.append(i % 4 ? OpKind::Write : OpKind::Trim, i * 3, i,
                   i ? i - 1 : kNoDataSeq, i * 1000,
                   static_cast<float>(i % 8));
    }
    seg.entries.assign(log.entries().begin(), log.entries().end());
    seg.chainTail = seg.entries.empty() ? seg.chainAnchor
                                        : seg.entries.back().chain;

    compress::DataGenerator gen(9, 0.6);
    for (std::size_t i = 0; i < n_pages; i++) {
        PageRecord p;
        p.lpa = i;
        p.dataSeq = 1000 + i;
        p.writtenAt = i;
        p.invalidatedAt = i + 5;
        p.cause = i % 2 ? RetainCause::Trim : RetainCause::Overwrite;
        p.content = gen.page(4096);
        seg.pages.push_back(std::move(p));
    }
    return seg;
}

void
expectSegmentsEqual(const Segment &a, const Segment &b)
{
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.prevId, b.prevId);
    EXPECT_EQ(a.chainAnchor, b.chainAnchor);
    EXPECT_EQ(a.chainTail, b.chainTail);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); i++) {
        EXPECT_EQ(a.entries[i].logSeq, b.entries[i].logSeq);
        EXPECT_EQ(a.entries[i].op, b.entries[i].op);
        EXPECT_EQ(a.entries[i].lpa, b.entries[i].lpa);
        EXPECT_EQ(a.entries[i].dataSeq, b.entries[i].dataSeq);
        EXPECT_EQ(a.entries[i].prevDataSeq, b.entries[i].prevDataSeq);
        EXPECT_EQ(a.entries[i].timestamp, b.entries[i].timestamp);
        EXPECT_EQ(a.entries[i].entropy, b.entries[i].entropy);
        EXPECT_EQ(a.entries[i].chain, b.entries[i].chain);
    }
    ASSERT_EQ(a.pages.size(), b.pages.size());
    for (std::size_t i = 0; i < a.pages.size(); i++) {
        EXPECT_EQ(a.pages[i].lpa, b.pages[i].lpa);
        EXPECT_EQ(a.pages[i].dataSeq, b.pages[i].dataSeq);
        EXPECT_EQ(a.pages[i].writtenAt, b.pages[i].writtenAt);
        EXPECT_EQ(a.pages[i].invalidatedAt, b.pages[i].invalidatedAt);
        EXPECT_EQ(a.pages[i].cause, b.pages[i].cause);
        EXPECT_EQ(a.pages[i].content, b.pages[i].content);
    }
}

TEST(Segment, SerializeRoundtrip)
{
    const Segment seg = sampleSegment(17, 5);
    const Segment back = Segment::deserialize(seg.serialize());
    expectSegmentsEqual(seg, back);
}

TEST(Segment, SerializedSizeIsExact)
{
    for (auto [e, p] : {std::pair<std::size_t, std::size_t>{0, 0},
                        {1, 0},
                        {0, 1},
                        {17, 5},
                        {100, 32}}) {
        const Segment seg = sampleSegment(e, p);
        EXPECT_EQ(seg.serialize().size(), seg.serializedSize())
            << e << " entries, " << p << " pages";
    }
}

TEST(Segment, BorrowedEntriesSerializeIdentically)
{
    // The offload engine seals from a span over the oplog's storage;
    // the bytes must match an owned-entries segment exactly.
    const Segment owned = sampleSegment(23, 4);

    Segment borrowing;
    borrowing.id = owned.id;
    borrowing.prevId = owned.prevId;
    borrowing.chainAnchor = owned.chainAnchor;
    borrowing.chainTail = owned.chainTail;
    borrowing.pages = owned.pages;
    borrowing.borrowEntries({owned.entries.data(),
                             owned.entries.size()});

    EXPECT_EQ(borrowing.entrySpan().size(), owned.entries.size());
    EXPECT_EQ(borrowing.serialize(), owned.serialize());
    expectSegmentsEqual(owned,
                        Segment::deserialize(borrowing.serialize()));
}

TEST(Segment, EmptySegmentRoundtrip)
{
    const Segment seg = sampleSegment(0, 0);
    const Segment back = Segment::deserialize(seg.serialize());
    expectSegmentsEqual(seg, back);
}

TEST(Segment, EntriesOnlyAndPagesOnly)
{
    expectSegmentsEqual(sampleSegment(10, 0),
                        Segment::deserialize(
                            sampleSegment(10, 0).serialize()));
    expectSegmentsEqual(sampleSegment(0, 10),
                        Segment::deserialize(
                            sampleSegment(0, 10).serialize()));
}

TEST(SegmentCodec, SealOpenRoundtrip)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("test-seed");
    const Segment seg = sampleSegment(20, 8);
    const SealedSegment sealed = codec.seal(seg);
    EXPECT_TRUE(codec.verify(sealed));
    expectSegmentsEqual(seg, codec.open(sealed));
}

TEST(SegmentCodec, PayloadIsCompressed)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("k");
    const Segment seg = sampleSegment(0, 32); // compressible pages
    const SealedSegment sealed = codec.seal(seg);
    EXPECT_LT(sealed.payload.size(), sealed.rawSize);
}

TEST(SegmentCodec, PayloadIsEncrypted)
{
    // The wire payload must look like ciphertext even though the
    // underlying pages are low-entropy user data.
    const SegmentCodec codec = SegmentCodec::fromSeed("k");
    const SealedSegment sealed = codec.seal(sampleSegment(0, 32));
    EXPECT_GT(crypto::shannonEntropy(sealed.payload), 7.5);
}

TEST(SegmentCodec, WrongKeyFailsVerification)
{
    const SegmentCodec a = SegmentCodec::fromSeed("key-a");
    const SegmentCodec b = SegmentCodec::fromSeed("key-b");
    const SealedSegment sealed = a.seal(sampleSegment(5, 2));
    EXPECT_FALSE(b.verify(sealed));
}

TEST(SegmentCodec, PayloadTamperDetected)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("k");
    SealedSegment sealed = codec.seal(sampleSegment(5, 2));
    sealed.payload[sealed.payload.size() / 2] ^= 0x01;
    EXPECT_FALSE(codec.verify(sealed));
}

TEST(SegmentCodec, HeaderTamperDetected)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("k");
    SealedSegment sealed = codec.seal(sampleSegment(5, 2));
    sealed.prevId = 12345; // splice attempt
    EXPECT_FALSE(codec.verify(sealed));
}

TEST(SegmentCodec, ChainTailTamperDetected)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("k");
    SealedSegment sealed = codec.seal(sampleSegment(5, 2));
    sealed.chainTail[0] ^= 0xFF;
    EXPECT_FALSE(codec.verify(sealed));
}

// ---------------------------------------------------------------------
// Prune records (retention-GC chain re-anchors)
// ---------------------------------------------------------------------

PruneRecord
samplePrune()
{
    PruneRecord rec;
    rec.stream = 7;
    rec.upToId = 41;
    rec.segmentsPruned = 42;
    rec.entriesPruned = 1337;
    rec.bytesPruned = 9 * units::MiB;
    rec.prunedAt = 5 * units::SEC;
    rec.anchor.fill(0xAB);
    return rec;
}

TEST(PruneRecord, SealVerifyRoundtrip)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("prune-key");
    PruneRecord rec = samplePrune();
    codec.sealPrune(rec);
    EXPECT_TRUE(codec.verifyPrune(rec));
}

TEST(PruneRecord, EveryFieldIsAuthenticated)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("prune-key");
    PruneRecord rec = samplePrune();
    codec.sealPrune(rec);

    PruneRecord t = rec;
    t.stream ^= 1;
    EXPECT_FALSE(codec.verifyPrune(t));
    t = rec;
    t.upToId ^= 1;
    EXPECT_FALSE(codec.verifyPrune(t));
    t = rec;
    t.segmentsPruned ^= 1;
    EXPECT_FALSE(codec.verifyPrune(t));
    t = rec;
    t.entriesPruned ^= 1;
    EXPECT_FALSE(codec.verifyPrune(t));
    t = rec;
    t.bytesPruned ^= 1;
    EXPECT_FALSE(codec.verifyPrune(t));
    t = rec;
    t.prunedAt ^= 1;
    EXPECT_FALSE(codec.verifyPrune(t));
    t = rec;
    t.anchor[0] ^= 1;
    EXPECT_FALSE(codec.verifyPrune(t));
}

TEST(PruneRecord, WrongKeyRejected)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("prune-key");
    PruneRecord rec = samplePrune();
    codec.sealPrune(rec);
    const SegmentCodec other = SegmentCodec::fromSeed("other-key");
    EXPECT_FALSE(other.verifyPrune(rec));
}

using SegmentDeathTest = ::testing::Test;

TEST(SegmentDeathTest, OpenTamperedPanics)
{
    const SegmentCodec codec = SegmentCodec::fromSeed("k");
    SealedSegment sealed = codec.seal(sampleSegment(1, 1));
    sealed.payload[0] ^= 1;
    EXPECT_DEATH(codec.open(sealed), "verification");
}

TEST(SegmentDeathTest, TruncatedBufferPanics)
{
    const Segment seg = sampleSegment(3, 1);
    Bytes raw = seg.serialize();
    raw.resize(raw.size() / 2);
    EXPECT_DEATH(Segment::deserialize(raw), "truncated");
}

TEST(SegmentDeathTest, BadMagicPanics)
{
    Bytes raw = sampleSegment(1, 0).serialize();
    raw[0] ^= 0xFF;
    EXPECT_DEATH(Segment::deserialize(raw), "magic");
}

} // namespace
} // namespace rssd::log
