/**
 * @file
 * RetentionIndex tests: time ordering, relocation tracking, batch
 * extraction.
 */

#include <gtest/gtest.h>

#include "log/retention.hh"

namespace rssd::log {
namespace {

RetainedPage
page(std::uint64_t seq, Ppa ppa, Tick invalidated = 0)
{
    RetainedPage p;
    p.dataSeq = seq;
    p.lpa = seq * 10;
    p.ppa = ppa;
    p.invalidatedAt = invalidated;
    return p;
}

TEST(Retention, StartsEmpty)
{
    RetentionIndex idx;
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.size(), 0u);
    EXPECT_TRUE(idx.takeOldest(10).empty());
    EXPECT_EQ(idx.oldestAge(100), 0u);
}

TEST(Retention, TakeOldestIsSeqOrdered)
{
    RetentionIndex idx;
    // Insert out of order; extraction must be in dataSeq order (the
    // paper's "time order" offload requirement).
    idx.add(page(5, 105));
    idx.add(page(1, 101));
    idx.add(page(3, 103));

    const auto batch = idx.takeOldest(2);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].dataSeq, 1u);
    EXPECT_EQ(batch[1].dataSeq, 3u);
    EXPECT_EQ(idx.size(), 1u);
}

TEST(Retention, TakeMoreThanAvailable)
{
    RetentionIndex idx;
    idx.add(page(1, 11));
    const auto batch = idx.takeOldest(100);
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_TRUE(idx.empty());
}

TEST(Retention, RelocationUpdatesPpa)
{
    RetentionIndex idx;
    idx.add(page(7, 70));
    EXPECT_TRUE(idx.tracksPpa(70));

    idx.onRelocated(70, 99);
    EXPECT_FALSE(idx.tracksPpa(70));
    EXPECT_TRUE(idx.tracksPpa(99));

    const auto found = idx.findByDataSeq(7);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->ppa, 99u);
}

TEST(Retention, RelocationChain)
{
    RetentionIndex idx;
    idx.add(page(1, 10));
    idx.onRelocated(10, 20);
    idx.onRelocated(20, 30);
    EXPECT_EQ(idx.findByDataSeq(1)->ppa, 30u);
    const auto batch = idx.takeOldest(1);
    EXPECT_EQ(batch[0].ppa, 30u);
    EXPECT_FALSE(idx.tracksPpa(30));
}

TEST(Retention, FindMissingReturnsNullopt)
{
    RetentionIndex idx;
    EXPECT_FALSE(idx.findByDataSeq(42).has_value());
}

TEST(Retention, OldestAge)
{
    RetentionIndex idx;
    idx.add(page(2, 22, 100));
    idx.add(page(1, 11, 50));
    EXPECT_EQ(idx.oldestAge(300), 250u); // oldest by seq is seq 1
}

TEST(Retention, TotalAddedCounts)
{
    RetentionIndex idx;
    idx.add(page(1, 11));
    idx.add(page(2, 12));
    idx.takeOldest(2);
    idx.add(page(3, 13));
    EXPECT_EQ(idx.totalAdded(), 3u);
}

using RetentionDeathTest = ::testing::Test;

TEST(RetentionDeathTest, DuplicateSeqPanics)
{
    RetentionIndex idx;
    idx.add(page(1, 11));
    EXPECT_DEATH(idx.add(page(1, 12)), "duplicate");
}

TEST(RetentionDeathTest, RelocateUntrackedPanics)
{
    RetentionIndex idx;
    EXPECT_DEATH(idx.onRelocated(5, 6), "untracked");
}

} // namespace
} // namespace rssd::log
