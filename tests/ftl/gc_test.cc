/**
 * @file
 * Garbage collection tests: reclamation under churn, valid-page
 * relocation correctness, WAF behaviour and wear leveling.
 */

#include <gtest/gtest.h>

#include "ftl/ftl.hh"
#include "sim/rng.hh"

namespace rssd::ftl {
namespace {

FtlConfig
smallConfig(double op = 0.12)
{
    FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = op;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    return cfg;
}

TEST(FtlGc, SustainedOverwriteTriggersGc)
{
    VirtualClock clock;
    PageMappedFtl ftl(smallConfig(), clock);

    // Overwrite a small hot set far more than raw capacity.
    const std::uint64_t hot = 64;
    const std::uint64_t total = ftl.config().geometry.totalPages() * 3;
    Rng rng(1);
    for (std::uint64_t i = 0; i < total; i++) {
        const IoResult r = ftl.write(rng.below(hot), {}, clock.now());
        ASSERT_TRUE(r.ok()) << "write " << i;
    }
    EXPECT_GT(ftl.stats().gcErases, 0u);
    EXPECT_EQ(ftl.validPageCount(), hot);
}

TEST(FtlGc, ContentSurvivesRelocation)
{
    VirtualClock clock;
    PageMappedFtl ftl(smallConfig(), clock);
    const std::uint32_t page_size = ftl.config().geometry.pageSize;

    // Cold data that GC will have to move around.
    for (flash::Lpa lpa = 0; lpa < 100; lpa++)
        ftl.write(lpa, Bytes(page_size, static_cast<std::uint8_t>(lpa)),
                  clock.now());

    // Hot churn elsewhere forces many GC cycles.
    Rng rng(2);
    for (int i = 0; i < 20000; i++)
        ftl.write(200 + rng.below(32), {}, clock.now());

    ASSERT_GT(ftl.stats().gcErases, 0u);
    for (flash::Lpa lpa = 0; lpa < 100; lpa++) {
        const IoResult r = ftl.read(lpa, clock.now());
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(ftl.lastReadContent(),
                  Bytes(page_size, static_cast<std::uint8_t>(lpa)))
            << "lpa " << lpa;
    }
}

TEST(FtlGc, RelocationPreservesOobIdentity)
{
    VirtualClock clock;
    PageMappedFtl ftl(smallConfig(), clock);

    ftl.write(0, {}, 42);
    const std::uint64_t seq = ftl.nand().oob(ftl.mappingOf(0)).seq;

    Rng rng(3);
    for (int i = 0; i < 20000; i++)
        ftl.write(100 + rng.below(32), {}, clock.now());

    // LPA 0's version may have moved physically, but keeps its seq
    // and write tick.
    const flash::Oob &oob = ftl.nand().oob(ftl.mappingOf(0));
    EXPECT_EQ(oob.seq, seq);
    EXPECT_EQ(oob.lpa, 0u);
    EXPECT_EQ(oob.writeTick, 42u);
}

TEST(FtlGc, WafGrowsWithUtilization)
{
    VirtualClock c1, c2;
    PageMappedFtl roomy(smallConfig(0.30), c1);
    PageMappedFtl tight(smallConfig(0.08), c2);

    auto churn = [](PageMappedFtl &ftl, VirtualClock &clock) {
        Rng rng(4);
        // Fill most of the logical space, then churn it uniformly.
        const std::uint64_t n = ftl.logicalPages() * 9 / 10;
        for (std::uint64_t i = 0; i < n; i++)
            ftl.write(i, {}, clock.now());
        for (std::uint64_t i = 0; i < n * 4; i++)
            ftl.write(rng.below(n), {}, clock.now());
        return ftl.stats().waf();
    };

    const double waf_roomy = churn(roomy, c1);
    const double waf_tight = churn(tight, c2);
    EXPECT_GE(waf_tight, waf_roomy);
    EXPECT_GE(waf_tight, 1.0);
}

TEST(FtlGc, SequentialOverwriteHasLowWaf)
{
    VirtualClock clock;
    PageMappedFtl ftl(smallConfig(), clock);
    // Sequential full-space overwrites leave whole blocks invalid:
    // GC should be nearly free.
    for (int round = 0; round < 4; round++) {
        for (flash::Lpa lpa = 0; lpa < ftl.logicalPages(); lpa++)
            ASSERT_TRUE(ftl.write(lpa, {}, clock.now()).ok());
    }
    EXPECT_LT(ftl.stats().waf(), 1.1);
}

TEST(FtlGc, WearLevelingKeepsSpreadModest)
{
    VirtualClock clock;
    PageMappedFtl ftl(smallConfig(), clock);
    Rng rng(5);
    for (int i = 0; i < 60000; i++)
        ftl.write(rng.below(64), {}, clock.now());

    const auto &nand = ftl.nand();
    ASSERT_GT(nand.stats().erases, 20u);
    EXPECT_LT(nand.maxEraseCount(),
              nand.meanEraseCount() * 3.0 + 3.0);
}

TEST(FtlGc, EraseNeverLosesValidData)
{
    VirtualClock clock;
    PageMappedFtl ftl(smallConfig(), clock);
    const std::uint32_t page_size = ftl.config().geometry.pageSize;

    // Interleave cold writes and hot churn, then verify every cold
    // page. This is the fundamental GC-safety property.
    Rng rng(6);
    std::vector<std::uint8_t> fills(256, 0);
    for (int round = 0; round < 8; round++) {
        for (flash::Lpa lpa = 0; lpa < 256; lpa += 7) {
            fills[lpa] = static_cast<std::uint8_t>(rng.next());
            ftl.write(lpa, Bytes(page_size, fills[lpa]), clock.now());
        }
        for (int i = 0; i < 3000; i++)
            ftl.write(300 + rng.below(24), {}, clock.now());
    }
    for (flash::Lpa lpa = 0; lpa < 256; lpa += 7) {
        ASSERT_TRUE(ftl.read(lpa, clock.now()).ok());
        EXPECT_EQ(ftl.lastReadContent()[0], fills[lpa]);
    }
}

} // namespace
} // namespace rssd::ftl
