/**
 * @file
 * Retention-hold tests: the FTL mechanism RSSD's zero-data-loss
 * guarantee rests on. GC may relocate held pages but must never
 * erase them; releasing holds turns them back into garbage.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "ftl/ftl.hh"
#include "sim/rng.hh"

namespace rssd::ftl {
namespace {

FtlConfig
smallConfig()
{
    FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    return cfg;
}

/** Policy that holds everything and records callbacks. */
class HoldAllPolicy : public FtlPolicy
{
  public:
    RetainVerdict
    onInvalidate(flash::Lpa lpa, flash::Ppa old_ppa,
                 const flash::Oob &oob, InvalidateCause cause,
                 Tick now) override
    {
        (void)lpa; (void)now;
        held[oob.seq] = old_ppa;
        byPpa[old_ppa] = oob.seq;
        if (cause == InvalidateCause::HostTrim)
            trims++;
        return RetainVerdict::Hold;
    }

    void
    onHeldRelocated(flash::Ppa from, flash::Ppa to) override
    {
        const auto it = byPpa.find(from);
        ASSERT_NE(it, byPpa.end());
        const std::uint64_t seq = it->second;
        byPpa.erase(it);
        byPpa[to] = seq;
        held[seq] = to;
        relocations++;
    }

    std::unordered_map<std::uint64_t, flash::Ppa> held;
    std::unordered_map<flash::Ppa, std::uint64_t> byPpa;
    int relocations = 0;
    int trims = 0;
};

TEST(RetentionHold, OverwriteCreatesHold)
{
    VirtualClock clock;
    HoldAllPolicy policy;
    PageMappedFtl ftl(smallConfig(), clock, &policy);

    ftl.write(1, {}, 0);
    const flash::Ppa old = ftl.mappingOf(1);
    ftl.write(1, {}, 0);

    EXPECT_TRUE(ftl.isHeld(old));
    EXPECT_EQ(ftl.heldPageCount(), 1u);
    EXPECT_EQ(policy.held.size(), 1u);
}

TEST(RetentionHold, TrimCreatesHold)
{
    VirtualClock clock;
    HoldAllPolicy policy;
    PageMappedFtl ftl(smallConfig(), clock, &policy);

    ftl.write(2, {}, 0);
    const flash::Ppa old = ftl.mappingOf(2);
    ftl.trim(2, 0);

    EXPECT_TRUE(ftl.isHeld(old));
    EXPECT_EQ(policy.trims, 1);
}

TEST(RetentionHold, ReleaseTurnsHoldIntoGarbage)
{
    VirtualClock clock;
    HoldAllPolicy policy;
    PageMappedFtl ftl(smallConfig(), clock, &policy);

    ftl.write(3, {}, 0);
    const flash::Ppa old = ftl.mappingOf(3);
    ftl.write(3, {}, 0);
    ASSERT_TRUE(ftl.isHeld(old));

    ftl.releaseHeld(old);
    EXPECT_FALSE(ftl.isHeld(old));
    EXPECT_EQ(ftl.heldPageCount(), 0u);
}

TEST(RetentionHold, HeldContentSurvivesHeavyGc)
{
    VirtualClock clock;
    HoldAllPolicy policy;
    PageMappedFtl ftl(smallConfig(), clock, &policy);
    const std::uint32_t page_size = ftl.config().geometry.pageSize;

    // Create held versions with known content.
    for (flash::Lpa lpa = 0; lpa < 32; lpa++) {
        ftl.write(lpa, Bytes(page_size, static_cast<std::uint8_t>(lpa)),
                  0);
    }
    std::unordered_map<std::uint64_t, std::uint8_t> expect;
    for (flash::Lpa lpa = 0; lpa < 32; lpa++) {
        const std::uint64_t seq =
            ftl.nand().oob(ftl.mappingOf(lpa)).seq;
        expect[seq] = static_cast<std::uint8_t>(lpa);
        ftl.write(lpa, Bytes(page_size, 0xFF), 0); // invalidate
    }

    // Churn to force GC; everything is held, so the released junk
    // from churn itself must be released to let GC progress — hold
    // the victims but release churn holds immediately.
    Rng rng(7);
    for (int i = 0; i < 8000; i++) {
        ftl.write(100 + rng.below(64), {}, clock.now());
        // Release churn holds (not the 32 victim versions).
        std::vector<std::uint64_t> release;
        for (const auto &[seq, ppa] : policy.held) {
            if (!expect.count(seq))
                release.push_back(seq);
        }
        for (const std::uint64_t seq : release) {
            ftl.releaseHeld(policy.held[seq]);
            policy.byPpa.erase(policy.held[seq]);
            policy.held.erase(seq);
        }
    }

    ASSERT_GT(ftl.stats().gcErases, 0u);

    // Every victim version is still physically present with its
    // original content, wherever GC moved it.
    for (const auto &[seq, fill] : expect) {
        const flash::Ppa ppa = policy.held.at(seq);
        ASSERT_EQ(ftl.nand().state(ppa), flash::PageState::Programmed);
        EXPECT_EQ(ftl.nand().oob(ppa).seq, seq);
        EXPECT_EQ(ftl.nand().content(ppa), Bytes(page_size, fill));
    }
}

TEST(RetentionHold, AllGarbageHeldMeansNoSpace)
{
    VirtualClock clock;
    HoldAllPolicy policy;
    PageMappedFtl ftl(smallConfig(), clock, &policy);

    // Fill logical space, then overwrite until the device stalls:
    // with every stale page held, GC has nothing to reclaim.
    for (flash::Lpa lpa = 0; lpa < ftl.logicalPages(); lpa++)
        ASSERT_TRUE(ftl.write(lpa, {}, 0).ok());

    bool stalled = false;
    for (int i = 0; i < 100000 && !stalled; i++) {
        const IoResult r = ftl.write(i % 16, {}, clock.now());
        stalled = r.status == Status::NoSpace;
    }
    EXPECT_TRUE(stalled);
    EXPECT_GT(ftl.stats().stallEvents, 0u);

    // Releasing all holds makes the device writable again.
    std::vector<flash::Ppa> ppas;
    for (const auto &[seq, ppa] : policy.held)
        ppas.push_back(ppa);
    for (const flash::Ppa ppa : ppas)
        ftl.releaseHeld(ppa);
    EXPECT_TRUE(ftl.write(0, {}, clock.now()).ok());
}

TEST(RetentionHold, ReclaimableAccountsHolds)
{
    VirtualClock clock;
    HoldAllPolicy policy;
    PageMappedFtl ftl(smallConfig(), clock, &policy);

    const std::uint64_t before = ftl.reclaimablePages();
    ftl.write(0, {}, 0);
    ftl.write(0, {}, 0); // creates one held page
    // One page live + one held: two fewer reclaimable pages.
    EXPECT_EQ(ftl.reclaimablePages(), before - 2);

    const flash::Ppa held = policy.held.begin()->second;
    ftl.releaseHeld(held);
    EXPECT_EQ(ftl.reclaimablePages(), before - 1);
}

using RetentionHoldDeathTest = ::testing::Test;

TEST(RetentionHoldDeathTest, DoubleReleasePanics)
{
    VirtualClock clock;
    HoldAllPolicy policy;
    PageMappedFtl ftl(smallConfig(), clock, &policy);
    ftl.write(0, {}, 0);
    const flash::Ppa old = ftl.mappingOf(0);
    ftl.write(0, {}, 0);
    ftl.releaseHeld(old);
    EXPECT_DEATH(ftl.releaseHeld(old), "not held");
}

} // namespace
} // namespace rssd::ftl
