/**
 * @file
 * Static wear-leveling tests: cold data must not pin its blocks at
 * low wear forever while hot blocks burn out.
 */

#include <gtest/gtest.h>

#include "ftl/ftl.hh"
#include "sim/rng.hh"

namespace rssd::ftl {
namespace {

FtlConfig
wearConfig(std::uint32_t gap)
{
    FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    cfg.wearLevelGap = gap;
    return cfg;
}

/** Static cold data + a hot churn spot: the classic wear-out case. */
double
runSkewedWorkload(PageMappedFtl &ftl, VirtualClock &clock)
{
    // Cold: half the logical space, written once.
    const flash::Lpa cold_pages = ftl.logicalPages() / 2;
    for (flash::Lpa lpa = 0; lpa < cold_pages; lpa++)
        EXPECT_TRUE(ftl.write(lpa, {}, clock.now()).ok());

    // Hot: a tiny region overwritten relentlessly.
    Rng rng(101);
    for (int i = 0; i < 120000; i++) {
        EXPECT_TRUE(
            ftl.write(cold_pages + rng.below(32), {}, clock.now())
                .ok());
    }
    return static_cast<double>(ftl.nand().maxEraseCount());
}

TEST(WearLevel, GapStaysBounded)
{
    VirtualClock clock;
    PageMappedFtl ftl(wearConfig(16), clock);
    runSkewedWorkload(ftl, clock);

    ASSERT_GT(ftl.stats().wearMigrations, 0u);
    std::uint32_t min_wear = ~0u;
    for (flash::BlockId b = 0;
         b < ftl.config().geometry.totalBlocks(); b++) {
        min_wear = std::min(min_wear, ftl.nand().eraseCount(b));
    }
    const std::uint32_t gap = ftl.nand().maxEraseCount() - min_wear;
    // The enforced gap lags the trigger a bit, but stays the same
    // order as the configured bound — not unbounded.
    EXPECT_LT(gap, 16u * 4);
}

TEST(WearLevel, DisabledLeavesColdBlocksCold)
{
    VirtualClock clock;
    PageMappedFtl ftl(wearConfig(0), clock);
    runSkewedWorkload(ftl, clock);

    EXPECT_EQ(ftl.stats().wearMigrations, 0u);
    std::uint32_t min_wear = ~0u;
    for (flash::BlockId b = 0;
         b < ftl.config().geometry.totalBlocks(); b++) {
        min_wear = std::min(min_wear, ftl.nand().eraseCount(b));
    }
    // Cold blocks were never recycled: huge gap.
    EXPECT_GT(ftl.nand().maxEraseCount() - min_wear, 32u);
}

TEST(WearLevel, MaxWearReducedVersusDisabled)
{
    VirtualClock c1, c2;
    PageMappedFtl leveled(wearConfig(16), c1);
    PageMappedFtl unleveled(wearConfig(0), c2);
    const double max_leveled = runSkewedWorkload(leveled, c1);
    const double max_unleveled = runSkewedWorkload(unleveled, c2);
    // Spreading erases across cold blocks lowers the peak.
    EXPECT_LT(max_leveled, max_unleveled);
}

TEST(WearLevel, DataIntactAfterMigrations)
{
    VirtualClock clock;
    FtlConfig cfg = wearConfig(8);
    PageMappedFtl ftl(cfg, clock);
    const std::uint32_t page_size = cfg.geometry.pageSize;

    for (flash::Lpa lpa = 0; lpa < 200; lpa++) {
        ftl.write(lpa,
                  flash::Bytes(page_size,
                               static_cast<std::uint8_t>(lpa)),
                  clock.now());
    }
    Rng rng(7);
    for (int i = 0; i < 80000; i++)
        ftl.write(300 + rng.below(16), {}, clock.now());

    ASSERT_GT(ftl.stats().wearMigrations, 0u);
    for (flash::Lpa lpa = 0; lpa < 200; lpa++) {
        ASSERT_TRUE(ftl.read(lpa, clock.now()).ok());
        EXPECT_EQ(ftl.lastReadContent()[0],
                  static_cast<std::uint8_t>(lpa));
    }
}

} // namespace
} // namespace rssd::ftl
