/**
 * @file
 * Core FTL behaviour: mapping, overwrite invalidation, reads of
 * unmapped LBAs, trim, content round trips and stats.
 */

#include <gtest/gtest.h>

#include "ftl/ftl.hh"

namespace rssd::ftl {
namespace {

FtlConfig
smallConfig()
{
    FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    return cfg;
}

class FtlTest : public ::testing::Test
{
  protected:
    FtlTest() : ftl_(smallConfig(), clock_) {}

    Bytes
    page(std::uint8_t fill)
    {
        return Bytes(ftl_.config().geometry.pageSize, fill);
    }

    VirtualClock clock_;
    PageMappedFtl ftl_;
};

TEST_F(FtlTest, LogicalCapacityReflectsOverProvisioning)
{
    const auto &geom = ftl_.config().geometry;
    EXPECT_LT(ftl_.logicalPages(), geom.totalPages());
    EXPECT_NEAR(static_cast<double>(ftl_.logicalPages()),
                geom.totalPages() * 0.88, geom.pagesPerBlock);
}

TEST_F(FtlTest, FreshLpaIsUnmapped)
{
    EXPECT_EQ(ftl_.mappingOf(0), flash::kInvalidPpa);
    const IoResult r = ftl_.read(0, 0);
    EXPECT_EQ(r.status, Status::Unmapped);
}

TEST_F(FtlTest, WriteThenReadReturnsContent)
{
    const Bytes data = page(0x5A);
    const IoResult w = ftl_.write(10, data, 0);
    ASSERT_TRUE(w.ok());
    EXPECT_NE(ftl_.mappingOf(10), flash::kInvalidPpa);

    const IoResult r = ftl_.read(10, w.completeAt);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(ftl_.lastReadContent(), data);
}

TEST_F(FtlTest, OverwriteRemapsAndBumpsSeq)
{
    ftl_.write(5, page(1), 0);
    const flash::Ppa first = ftl_.mappingOf(5);
    const std::uint64_t seq1 = ftl_.nand().oob(first).seq;

    ftl_.write(5, page(2), 0);
    const flash::Ppa second = ftl_.mappingOf(5);
    EXPECT_NE(first, second);
    EXPECT_GT(ftl_.nand().oob(second).seq, seq1);

    ftl_.read(5, 0);
    EXPECT_EQ(ftl_.lastReadContent(), page(2));
}

TEST_F(FtlTest, OverwriteWithoutPolicyDiscardsOldPage)
{
    ftl_.write(5, {}, 0);
    const flash::Ppa old = ftl_.mappingOf(5);
    ftl_.write(5, {}, 0);
    EXPECT_FALSE(ftl_.isValid(old));
    EXPECT_FALSE(ftl_.isHeld(old));
    EXPECT_EQ(ftl_.heldPageCount(), 0u);
}

TEST_F(FtlTest, TrimUnmaps)
{
    ftl_.write(7, page(9), 0);
    const IoResult t = ftl_.trim(7, 0);
    EXPECT_TRUE(t.ok());
    EXPECT_EQ(ftl_.mappingOf(7), flash::kInvalidPpa);
    EXPECT_EQ(ftl_.read(7, 0).status, Status::Unmapped);
}

TEST_F(FtlTest, TrimOfUnmappedIsNoop)
{
    const IoResult t = ftl_.trim(3, 0);
    EXPECT_TRUE(t.ok());
    EXPECT_EQ(ftl_.stats().hostTrims, 1u);
}

TEST_F(FtlTest, SequenceNumbersAreUniqueAndOrdered)
{
    std::uint64_t prev = 0;
    for (int i = 0; i < 50; i++) {
        ftl_.write(i, {}, 0);
        const std::uint64_t seq =
            ftl_.nand().oob(ftl_.mappingOf(i)).seq;
        if (i > 0) {
            EXPECT_GT(seq, prev);
        }
        prev = seq;
    }
}

TEST_F(FtlTest, OobCarriesReverseMap)
{
    ftl_.write(33, {}, 1234);
    const flash::Oob &oob = ftl_.nand().oob(ftl_.mappingOf(33));
    EXPECT_EQ(oob.lpa, 33u);
    EXPECT_EQ(oob.writeTick, 1234u);
}

TEST_F(FtlTest, ValidCountsTrackLiveData)
{
    for (int i = 0; i < 20; i++)
        ftl_.write(i, {}, 0);
    EXPECT_EQ(ftl_.validPageCount(), 20u);
    for (int i = 0; i < 5; i++)
        ftl_.write(i, {}, 0); // overwrites
    EXPECT_EQ(ftl_.validPageCount(), 20u);
    ftl_.trim(0, 0);
    EXPECT_EQ(ftl_.validPageCount(), 19u);
}

TEST_F(FtlTest, StatsCount)
{
    ftl_.write(1, {}, 0);
    ftl_.write(1, {}, 0);
    ftl_.read(1, 0);
    ftl_.trim(1, 0);
    const FtlStats &s = ftl_.stats();
    EXPECT_EQ(s.hostWrites, 2u);
    EXPECT_EQ(s.hostReads, 1u);
    EXPECT_EQ(s.hostTrims, 1u);
}

TEST_F(FtlTest, WafStartsAtOne)
{
    ftl_.write(1, {}, 0);
    EXPECT_DOUBLE_EQ(ftl_.stats().waf(), 1.0);
}

TEST_F(FtlTest, FillEntireLogicalSpace)
{
    // Writing every logical page once must succeed without GC help.
    for (flash::Lpa lpa = 0; lpa < ftl_.logicalPages(); lpa++) {
        const IoResult r = ftl_.write(lpa, {}, 0);
        ASSERT_TRUE(r.ok()) << "lpa " << lpa;
    }
    EXPECT_EQ(ftl_.validPageCount(), ftl_.logicalPages());
}

TEST_F(FtlTest, LatencyIncludesProgramTime)
{
    const IoResult w = ftl_.write(0, {}, 0);
    EXPECT_GE(w.completeAt, 600 * units::US);
}

using FtlDeathTest = FtlTest;

TEST_F(FtlDeathTest, OutOfRangeLpaPanics)
{
    EXPECT_DEATH(ftl_.write(ftl_.logicalPages(), {}, 0), "range");
    EXPECT_DEATH(ftl_.read(ftl_.logicalPages(), 0), "range");
}

TEST_F(FtlDeathTest, BadConfigIsFatal)
{
    FtlConfig cfg = smallConfig();
    cfg.opFraction = 0.0;
    VirtualClock clock;
    EXPECT_EXIT(PageMappedFtl(cfg, clock),
                ::testing::ExitedWithCode(1), "provisioning");
}

} // namespace
} // namespace rssd::ftl
