/**
 * @file
 * NAND array behaviour: program/read/erase lifecycle, OOB metadata,
 * wear counting, latency accounting and channel parallelism.
 */

#include <gtest/gtest.h>

#include "flash/nand.hh"

namespace rssd::flash {
namespace {

class NandTest : public ::testing::Test
{
  protected:
    NandTest() : nand_(testGeometry(), LatencyModel{}) {}

    NandFlash nand_;
};

TEST_F(NandTest, PagesStartErased)
{
    EXPECT_EQ(nand_.state(0), PageState::Erased);
    EXPECT_EQ(nand_.state(nand_.geometry().totalPages() - 1),
              PageState::Erased);
}

TEST_F(NandTest, ProgramThenRead)
{
    Oob oob;
    oob.lpa = 42;
    oob.seq = 7;
    oob.writeTick = 1000;
    Bytes content(nand_.geometry().pageSize, 0xAB);

    const Tick done = nand_.program(5, oob, content, 0);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(nand_.state(5), PageState::Programmed);
    EXPECT_EQ(nand_.oob(5).lpa, 42u);
    EXPECT_EQ(nand_.oob(5).seq, 7u);
    EXPECT_EQ(nand_.content(5), content);

    const Tick read_done = nand_.read(5, done);
    EXPECT_GT(read_done, done);
}

TEST_F(NandTest, AddressOnlyProgramHasEmptyContent)
{
    nand_.program(3, Oob{}, {}, 0);
    EXPECT_TRUE(nand_.content(3).empty());
}

TEST_F(NandTest, ProgramLatencyDominatedByArrayTime)
{
    const Tick done = nand_.program(0, Oob{}, {}, 0);
    // 600us array + ~10us transfer.
    EXPECT_GE(done, 600 * units::US);
    EXPECT_LT(done, 700 * units::US);
}

TEST_F(NandTest, ReadIsFasterThanProgram)
{
    nand_.program(0, Oob{}, {}, 0);
    NandFlash fresh(testGeometry(), LatencyModel{});
    fresh.program(0, Oob{}, {}, 0);
    const Tick w = fresh.stats().programs;
    (void)w;
    const Tick t0 = 10 * units::SEC;
    const Tick read_done = fresh.read(0, t0) - t0;
    EXPECT_LT(read_done, 100 * units::US);
}

TEST_F(NandTest, EraseResetsPages)
{
    const auto &geom = nand_.geometry();
    Bytes content(geom.pageSize, 0x11);
    for (std::uint32_t i = 0; i < geom.pagesPerBlock; i++)
        nand_.program(i, Oob{}, content, 0);

    nand_.eraseBlock(0, 0);
    for (std::uint32_t i = 0; i < geom.pagesPerBlock; i++)
        EXPECT_EQ(nand_.state(i), PageState::Erased);
    EXPECT_EQ(nand_.eraseCount(0), 1u);
}

TEST_F(NandTest, ProgramAfterEraseWorks)
{
    nand_.program(0, Oob{}, {}, 0);
    nand_.eraseBlock(0, 0);
    nand_.program(0, Oob{}, {}, 0);
    EXPECT_EQ(nand_.state(0), PageState::Programmed);
}

TEST_F(NandTest, SameChipOpsSerialize)
{
    // Two programs to the same block (same chip) must serialize.
    const Tick d1 = nand_.program(0, Oob{}, {}, 0);
    const Tick d2 = nand_.program(1, Oob{}, {}, 0);
    EXPECT_GE(d2, d1 + 600 * units::US);
}

TEST_F(NandTest, DifferentChannelsOverlap)
{
    const auto &geom = nand_.geometry();
    // Find two PPAs on different channels.
    Ppa a = 0;
    Ppa b = 0;
    for (Ppa p = 0; p < geom.totalPages(); p += geom.pagesPerBlock) {
        if (geom.channelOf(p) != geom.channelOf(a)) {
            b = p;
            break;
        }
    }
    ASSERT_NE(geom.channelOf(a), geom.channelOf(b));

    const Tick d1 = nand_.program(a, Oob{}, {}, 0);
    const Tick d2 = nand_.program(b, Oob{}, {}, 0);
    // Parallel channels: the second finishes well before 2x.
    EXPECT_LT(d2, d1 + 100 * units::US);
}

TEST_F(NandTest, BackgroundReadDoesNotDelayHostOps)
{
    // The mechanism behind RSSD's <1% overhead: a background read
    // waits for idle time but reserves nothing, so a host program
    // arriving later is never queued behind it.
    nand_.program(0, Oob{}, {}, 0);

    NandFlash a(testGeometry(), LatencyModel{});
    a.program(0, Oob{}, {}, 0);
    const Tick t0 = 10 * units::MS;
    a.read(0, t0, /*background=*/true);
    const Tick host_done = a.program(1, Oob{}, {}, t0);

    NandFlash b(testGeometry(), LatencyModel{});
    b.program(0, Oob{}, {}, 0);
    const Tick host_done_clean = b.program(1, Oob{}, {}, t0);

    EXPECT_EQ(host_done, host_done_clean);
}

TEST_F(NandTest, BackgroundReadStillWaitsForBusyResources)
{
    // Background reads are not magic: they start only when the chip
    // is idle, so their completion reflects real contention.
    const Tick busy_until = nand_.program(0, Oob{}, {}, 0);
    const Tick bg_done = nand_.read(0, 0, /*background=*/true);
    EXPECT_GT(bg_done, busy_until);
}

TEST_F(NandTest, StatsAccumulate)
{
    nand_.program(0, Oob{}, {}, 0);
    nand_.program(1, Oob{}, {}, 0);
    nand_.read(0, 0);
    nand_.eraseBlock(1, 0);
    EXPECT_EQ(nand_.stats().programs, 2u);
    EXPECT_EQ(nand_.stats().reads, 1u);
    EXPECT_EQ(nand_.stats().erases, 1u);
    EXPECT_EQ(nand_.stats().bytesProgrammed,
              2ull * nand_.geometry().pageSize);
}

TEST_F(NandTest, WearTracking)
{
    nand_.eraseBlock(2, 0);
    nand_.eraseBlock(2, 0);
    nand_.eraseBlock(3, 0);
    EXPECT_EQ(nand_.eraseCount(2), 2u);
    EXPECT_EQ(nand_.eraseCount(3), 1u);
    EXPECT_EQ(nand_.maxEraseCount(), 2u);
    EXPECT_GT(nand_.meanEraseCount(), 0.0);
}

using NandDeathTest = NandTest;

TEST_F(NandDeathTest, DoubleProgramPanics)
{
    nand_.program(0, Oob{}, {}, 0);
    EXPECT_DEATH(nand_.program(0, Oob{}, {}, 0), "non-erased");
}

TEST_F(NandDeathTest, ReadErasedPanics)
{
    EXPECT_DEATH(nand_.read(9, 0), "erased");
}

TEST_F(NandDeathTest, WrongContentSizePanics)
{
    Bytes bad(100, 1);
    EXPECT_DEATH(nand_.program(0, Oob{}, bad, 0), "size");
}

} // namespace
} // namespace rssd::flash
