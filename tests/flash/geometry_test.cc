/**
 * @file
 * Geometry decomposition and addressing tests.
 */

#include <gtest/gtest.h>

#include "flash/geometry.hh"
#include "flash/nand.hh"

namespace rssd::flash {
namespace {

TEST(Geometry, DerivedCounts)
{
    Geometry g;
    g.channels = 2;
    g.chipsPerChannel = 3;
    g.planesPerChip = 2;
    g.blocksPerPlane = 10;
    g.pagesPerBlock = 64;
    g.pageSize = 4096;

    EXPECT_EQ(g.chipsTotal(), 6u);
    EXPECT_EQ(g.blocksPerChip(), 20u);
    EXPECT_EQ(g.totalBlocks(), 120u);
    EXPECT_EQ(g.totalPages(), 120u * 64u);
    EXPECT_EQ(g.capacityBytes(), 120ull * 64 * 4096);
    EXPECT_EQ(g.blockBytes(), 64u * 4096u);
}

TEST(Geometry, BlockPageMapping)
{
    Geometry g = testGeometry();
    EXPECT_EQ(g.blockOf(0), 0u);
    EXPECT_EQ(g.pageInBlock(0), 0u);
    EXPECT_EQ(g.blockOf(g.pagesPerBlock), 1u);
    EXPECT_EQ(g.firstPpaOf(3), 3ull * g.pagesPerBlock);
    EXPECT_EQ(g.pageInBlock(g.firstPpaOf(3) + 7), 7u);
}

TEST(Geometry, DecomposeRoundtrip)
{
    Geometry g = testGeometry();
    for (Ppa ppa = 0; ppa < g.totalPages(); ppa += 13) {
        const PageCoord c = g.decompose(ppa);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_LT(c.chip, g.chipsPerChannel);
        EXPECT_LT(c.plane, g.planesPerChip);
        EXPECT_LT(c.block, g.blocksPerPlane);
        EXPECT_LT(c.page, g.pagesPerBlock);

        // Recompose: the hierarchy is page-major then block, plane,
        // chip, channel.
        const Ppa back =
            ((((static_cast<Ppa>(c.channel) * g.chipsPerChannel +
                c.chip) *
                   g.planesPerChip +
               c.plane) *
                  g.blocksPerPlane +
              c.block) *
                 g.pagesPerBlock +
             c.page);
        EXPECT_EQ(back, ppa);
    }
}

TEST(Geometry, ChannelAssignmentCoversAllChannels)
{
    Geometry g = testGeometry();
    std::vector<bool> seen(g.channels, false);
    for (Ppa ppa = 0; ppa < g.totalPages(); ppa += g.pagesPerBlock)
        seen[g.channelOf(ppa)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Geometry, BenchGeometryApproximatesRequestedSize)
{
    const Geometry g = benchGeometry(8);
    const double gib =
        static_cast<double>(g.capacityBytes()) / units::GiB;
    EXPECT_GT(gib, 4.0);
    EXPECT_LE(gib, 8.5);
}

TEST(Geometry, TestGeometryIsSmall)
{
    const Geometry g = testGeometry();
    EXPECT_LE(g.capacityBytes(), 64 * units::MiB);
}

} // namespace
} // namespace rssd::flash
