/**
 * @file
 * Block-command layer tests: validation, convenience wrappers,
 * naming.
 */

#include <gtest/gtest.h>

#include "nvme/local_ssd.hh"

namespace rssd::nvme {
namespace {

ftl::FtlConfig
smallConfig()
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    return cfg;
}

TEST(Command, OpcodeNames)
{
    EXPECT_STREQ(opcodeName(Opcode::Read), "READ");
    EXPECT_STREQ(opcodeName(Opcode::Write), "WRITE");
    EXPECT_STREQ(opcodeName(Opcode::Trim), "TRIM");
    EXPECT_STREQ(opcodeName(Opcode::Flush), "FLUSH");
}

TEST(Command, OutOfRangeIsRejected)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);

    Command cmd;
    cmd.op = Opcode::Write;
    cmd.lpa = dev.capacityPages() - 1;
    cmd.npages = 2;
    EXPECT_EQ(dev.submit(cmd).status, HostStatus::InvalidField);
}

TEST(Command, ZeroPagesIsRejected)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    Command cmd;
    cmd.op = Opcode::Read;
    cmd.lpa = 0;
    cmd.npages = 0;
    EXPECT_EQ(dev.submit(cmd).status, HostStatus::InvalidField);
}

TEST(Command, MismatchedPayloadIsRejected)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    Command cmd;
    cmd.op = Opcode::Write;
    cmd.lpa = 0;
    cmd.npages = 2;
    cmd.data.assign(dev.pageSize(), 0); // one page for a 2-page write
    EXPECT_EQ(dev.submit(cmd).status, HostStatus::InvalidField);
}

TEST(Command, FlushSucceeds)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    Command cmd;
    cmd.op = Opcode::Flush;
    const Completion comp = dev.submit(cmd);
    EXPECT_TRUE(comp.ok());
    EXPECT_GT(comp.completedAt, comp.submittedAt);
}

TEST(Command, ConvenienceWrappersRoundtrip)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    std::vector<std::uint8_t> data(dev.pageSize(), 0x77);

    ASSERT_TRUE(dev.writePage(9, data).ok());
    const Completion read = dev.readPage(9);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.data, data);
    ASSERT_TRUE(dev.trimPage(9).ok());
    const Completion after = dev.readPage(9);
    EXPECT_EQ(after.data, std::vector<std::uint8_t>(dev.pageSize(), 0));
}

TEST(Command, LatencyIsNonNegativeAndOrdered)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    const Completion w = dev.writePage(0, {});
    EXPECT_GE(w.completedAt, w.submittedAt);
    EXPECT_EQ(w.latency(), w.completedAt - w.submittedAt);
}

} // namespace
} // namespace rssd::nvme
