/**
 * @file
 * LocalSsd (undefended baseline) behaviour, including the
 * vulnerability properties the paper's attacks rely on: GC erases
 * stale data, trim physically drops it.
 */

#include <gtest/gtest.h>

#include "nvme/local_ssd.hh"
#include "sim/rng.hh"

namespace rssd::nvme {
namespace {

ftl::FtlConfig
smallConfig()
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    return cfg;
}

TEST(LocalSsd, MultiPageCommands)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    const std::uint32_t n = 8;

    Command w;
    w.op = Opcode::Write;
    w.lpa = 16;
    w.npages = n;
    w.data.resize(std::size_t(n) * dev.pageSize());
    for (std::size_t i = 0; i < w.data.size(); i++)
        w.data[i] = static_cast<std::uint8_t>(i / dev.pageSize());
    ASSERT_TRUE(dev.submit(w).ok());

    Command r;
    r.op = Opcode::Read;
    r.lpa = 16;
    r.npages = n;
    const Completion comp = dev.submit(r);
    ASSERT_TRUE(comp.ok());
    EXPECT_EQ(comp.data, w.data);
}

TEST(LocalSsd, ClockAdvancesWithIo)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    const Tick before = clock.now();
    dev.writePage(0, {});
    EXPECT_GT(clock.now(), before);
}

TEST(LocalSsd, UnmappedReadsReturnZeros)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    const Completion comp = dev.readPage(5);
    EXPECT_TRUE(comp.ok());
    EXPECT_EQ(comp.data,
              std::vector<std::uint8_t>(dev.pageSize(), 0));
}

TEST(LocalSsd, StaleDataIsPhysicallyErasedByGc)
{
    // The undefended property the GC attack exploits: after enough
    // churn, no copy of the overwritten data remains anywhere in the
    // flash array.
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    const std::uint32_t page_size = dev.pageSize();

    std::vector<std::uint8_t> secret(page_size, 0xAA);
    dev.writePage(0, secret);
    dev.writePage(0, std::vector<std::uint8_t>(page_size, 0xBB));

    // Churn over a range that includes the secret's block neighbours
    // so its block eventually becomes an all-garbage GC victim.
    Rng rng(1);
    for (int i = 0; i < 30000; i++)
        dev.writePage(rng.below(96), {});

    ASSERT_GT(dev.ftl().stats().gcErases, 0u);

    // Scan all programmed pages: the secret must be gone.
    const auto &nand = dev.ftl().nand();
    const auto &geom = dev.ftl().config().geometry;
    bool found = false;
    for (flash::Ppa ppa = 0; ppa < geom.totalPages(); ppa++) {
        if (nand.state(ppa) == flash::PageState::Programmed &&
            nand.content(ppa) == secret) {
            found = true;
        }
    }
    EXPECT_FALSE(found);
}

TEST(LocalSsd, TrimmedMappingIsGone)
{
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    std::vector<std::uint8_t> data(dev.pageSize(), 0xCD);
    dev.writePage(3, data);
    dev.trimPage(3);
    const Completion comp = dev.readPage(3);
    EXPECT_EQ(comp.data,
              std::vector<std::uint8_t>(dev.pageSize(), 0));
}

TEST(LocalSsd, FullDeviceChurnNeverFails)
{
    // Without holds, the undefended SSD must never report NoSpace.
    VirtualClock clock;
    LocalSsd dev(smallConfig(), clock);
    Rng rng(2);
    for (flash::Lpa lpa = 0; lpa < dev.capacityPages(); lpa++)
        ASSERT_TRUE(dev.writePage(lpa, {}).ok());
    for (int i = 0; i < 20000; i++) {
        ASSERT_TRUE(
            dev.writePage(rng.below(dev.capacityPages()), {}).ok());
    }
}

} // namespace
} // namespace rssd::nvme
