/**
 * @file
 * NVMe-oE transport tests: delivery, ack timing, retransmission on
 * corruption, rejection propagation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/transport.hh"

namespace rssd::net {
namespace {

/** Scriptable far end. */
class FakeTarget : public CapsuleTarget
{
  public:
    bool
    ingestSegment(const log::SealedSegment &segment, Tick arrive_at,
                  Tick &ack_ready_at) override
    {
        received.push_back(segment.id);
        arriveTimes.push_back(arrive_at);
        ack_ready_at = arrive_at + processing;
        return accept;
    }

    std::vector<std::uint64_t> received;
    std::vector<Tick> arriveTimes;
    Tick processing = 10 * units::US;
    bool accept = true;
};

log::SealedSegment
segmentOfSize(std::size_t payload, std::uint64_t id = 0)
{
    log::SealedSegment seg;
    seg.id = id;
    seg.payload.assign(payload, 0xAB);
    return seg;
}

TEST(Transport, DeliversAndAcks)
{
    EthernetLink link{LinkConfig{}};
    FakeTarget target;
    NvmeOeTransport transport({}, link, target);

    const log::SubmitResult r =
        transport.submitSegment(segmentOfSize(100000, 7), 0);
    EXPECT_TRUE(r.accepted);
    ASSERT_EQ(target.received.size(), 1u);
    EXPECT_EQ(target.received[0], 7u);
    // Ack arrives after delivery + processing + reverse trip.
    EXPECT_GT(r.ackAt, target.arriveTimes[0] + target.processing);
    EXPECT_EQ(transport.stats().segmentsAccepted, 1u);
}

TEST(Transport, RejectionPropagates)
{
    EthernetLink link{LinkConfig{}};
    FakeTarget target;
    target.accept = false;
    NvmeOeTransport transport({}, link, target);

    const log::SubmitResult r =
        transport.submitSegment(segmentOfSize(1000), 0);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(transport.stats().segmentsRejected, 1u);
}

TEST(Transport, CorruptionTriggersRetransmit)
{
    EthernetLink link{LinkConfig{}};
    FakeTarget target;
    NvmeOeTransport transport({}, link, target);

    link.tx().corruptNextTransfer();
    const log::SubmitResult r =
        transport.submitSegment(segmentOfSize(1000), 0);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(transport.stats().retransmits, 1u);
    // Delivered exactly once to the target (corrupted copy dropped).
    EXPECT_EQ(target.received.size(), 1u);
}

TEST(Transport, RetransmitCostsTime)
{
    EthernetLink clean_link{LinkConfig{}};
    FakeTarget t1;
    NvmeOeTransport clean({}, clean_link, t1);
    const Tick clean_ack =
        clean.submitSegment(segmentOfSize(100000), 0).ackAt;

    EthernetLink lossy_link{LinkConfig{}};
    FakeTarget t2;
    NvmeOeTransport lossy({}, lossy_link, t2);
    lossy_link.tx().corruptNextTransfer();
    const Tick lossy_ack =
        lossy.submitSegment(segmentOfSize(100000), 0).ackAt;

    EXPECT_GT(lossy_ack, clean_ack);
}

TEST(Transport, BackToBackSegmentsPipeline)
{
    EthernetLink link{LinkConfig{}};
    FakeTarget target;
    NvmeOeTransport transport({}, link, target);

    Tick prev_ack = 0;
    for (int i = 0; i < 5; i++) {
        const log::SubmitResult r = transport.submitSegment(
            segmentOfSize(500000, i), prev_ack);
        ASSERT_TRUE(r.accepted);
        EXPECT_GT(r.ackAt, prev_ack);
        prev_ack = r.ackAt;
    }
    EXPECT_EQ(target.received.size(), 5u);
    EXPECT_EQ(transport.stats().segmentsAccepted, 5u);
}

TEST(Transport, RetryBudgetExhaustionRejects)
{
    EthernetLink link{LinkConfig{}};
    FakeTarget target;
    TransportConfig cfg;
    cfg.maxRetries = 3;
    NvmeOeTransport transport(cfg, link, target);

    // Corrupt every attempt (initial + 3 retries = 4 transmissions).
    link.tx().corruptNextTransfers(10);
    const log::SubmitResult r =
        transport.submitSegment(segmentOfSize(1000), 0);
    EXPECT_FALSE(r.accepted);
    EXPECT_TRUE(target.received.empty()); // never delivered clean
    EXPECT_EQ(transport.stats().segmentsSent, 4u);
    EXPECT_EQ(transport.stats().segmentsRejected, 1u);
}

TEST(Transport, RecoversAfterBurstOfCorruption)
{
    EthernetLink link{LinkConfig{}};
    FakeTarget target;
    NvmeOeTransport transport({}, link, target);

    link.tx().corruptNextTransfers(2); // two bad, third clean
    const log::SubmitResult r =
        transport.submitSegment(segmentOfSize(1000, 5), 0);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(transport.stats().retransmits, 2u);
    ASSERT_EQ(target.received.size(), 1u);
    EXPECT_EQ(target.received[0], 5u);
}

TEST(Transport, StatsCountBytes)
{
    EthernetLink link{LinkConfig{}};
    FakeTarget target;
    TransportConfig cfg;
    NvmeOeTransport transport(cfg, link, target);
    const auto seg = segmentOfSize(1000);
    transport.submitSegment(seg, 0);
    EXPECT_EQ(transport.stats().bytesSent,
              seg.wireSize() + cfg.capsuleHeaderBytes);
}

} // namespace
} // namespace rssd::net
