/**
 * @file
 * Ethernet link model tests: bandwidth, framing overhead,
 * serialization of transfers, duplex independence, fault arming.
 */

#include <gtest/gtest.h>

#include "net/link.hh"

namespace rssd::net {
namespace {

TEST(Link, TransferTimeMatchesBandwidth)
{
    LinkConfig cfg;
    cfg.gbps = 10.0;
    cfg.propagationDelay = 0;
    cfg.mtu = 9000;
    cfg.frameOverhead = 0;
    LinkDirection dir(cfg);

    // 125 MB at 10 Gb/s = 0.1 s.
    const Tick done = dir.transmit(125 * 1000 * 1000, 0);
    EXPECT_NEAR(units::toSeconds(done), 0.1, 0.001);
}

TEST(Link, PropagationDelayAdds)
{
    LinkConfig cfg;
    cfg.propagationDelay = 500 * units::US;
    LinkDirection dir(cfg);
    const Tick done = dir.transmit(1, 0);
    EXPECT_GE(done, 500 * units::US);
}

TEST(Link, FramingOverheadCounted)
{
    LinkConfig cfg;
    cfg.mtu = 1000;
    cfg.frameOverhead = 38;
    LinkDirection dir(cfg);
    dir.transmit(2500, 0); // 3 frames
    EXPECT_EQ(dir.stats().framesSent, 3u);
    EXPECT_EQ(dir.stats().payloadBytes, 2500u);
    EXPECT_EQ(dir.stats().wireBytes, 2500u + 3 * 38u);
}

TEST(Link, BackToBackTransfersSerialize)
{
    LinkConfig cfg;
    cfg.propagationDelay = 0;
    LinkDirection dir(cfg);
    const Tick d1 = dir.transmit(units::MiB, 0);
    const Tick d2 = dir.transmit(units::MiB, 0);
    EXPECT_NEAR(static_cast<double>(d2),
                2.0 * static_cast<double>(d1), d1 * 0.01);
}

TEST(Link, DirectionsAreIndependent)
{
    EthernetLink link{LinkConfig{}};
    const Tick tx_done = link.tx().transmit(10 * units::MiB, 0);
    // rx is idle: a small transfer completes long before tx.
    const Tick rx_done = link.rx().transmit(64, 0);
    EXPECT_LT(rx_done, tx_done);
}

TEST(Link, CorruptionFlagIsOneShot)
{
    LinkDirection dir{LinkConfig{}};
    dir.corruptNextTransfer();
    dir.transmit(100, 0);
    EXPECT_TRUE(dir.lastTransferCorrupted());
    EXPECT_EQ(dir.stats().corruptedFrames, 1u);
    dir.transmit(100, 0);
    EXPECT_FALSE(dir.lastTransferCorrupted());
}

TEST(Link, FasterLinkIsFaster)
{
    LinkConfig slow;
    slow.gbps = 1.0;
    slow.propagationDelay = 0;
    LinkConfig fast;
    fast.gbps = 40.0;
    fast.propagationDelay = 0;
    LinkDirection s(slow), f(fast);
    EXPECT_GT(s.transmit(units::MiB, 0), f.transmit(units::MiB, 0));
}

} // namespace
} // namespace rssd::net
