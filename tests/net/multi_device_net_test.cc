/**
 * @file
 * Link + transport under loss and reordering with interleaved
 * streams from several devices — the single-client-assumption audit
 * the fleet surfaced, as tests.
 *
 * Each device owns a link and an NvmeOeTransport pointed at a shared
 * BackupCluster through its ClusterPortal. Frame corruption (loss:
 * the far end drops the transfer, the transport retransmits) and
 * skewed device clocks (arrival reordering across devices) must
 * never let one device's traffic corrupt another's stream state.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hh"
#include "net/transport.hh"
#include "remote/backup_cluster.hh"
#include "tests/common/segment_chain.hh"

namespace rssd::net {
namespace {

constexpr int kDevices = 5;

class MultiDeviceNetTest : public ::testing::Test
{
  protected:
    MultiDeviceNetTest()
        : cluster_(clusterConfig())
    {
        for (int d = 0; d < kDevices; d++) {
            chains_.push_back(std::make_unique<test::SegmentChain>(
                "device-" + std::to_string(d), 500 + d));
            cluster_.attachDevice(d, chains_.back()->codec());
            portals_.push_back(std::make_unique<
                               remote::ClusterPortal>(cluster_, d));
            links_.push_back(
                std::make_unique<EthernetLink>(LinkConfig()));
            transports_.push_back(std::make_unique<NvmeOeTransport>(
                TransportConfig(), *links_.back(),
                *portals_.back()));
        }
    }

    static remote::BackupClusterConfig
    clusterConfig()
    {
        remote::BackupClusterConfig cfg;
        cfg.shards = 2;
        cfg.shard.capacityBytes = 64 * units::MiB;
        return cfg;
    }

    remote::BackupCluster cluster_;
    std::vector<std::unique_ptr<test::SegmentChain>> chains_;
    std::vector<std::unique_ptr<remote::ClusterPortal>> portals_;
    std::vector<std::unique_ptr<EthernetLink>> links_;
    std::vector<std::unique_ptr<NvmeOeTransport>> transports_;
};

TEST_F(MultiDeviceNetTest, InterleavedStreamsAllAccepted)
{
    // Round-robin submission, every device at a different local
    // time — arrivals at each shard interleave across devices.
    for (int round = 0; round < 4; round++) {
        for (int d = 0; d < kDevices; d++) {
            const Tick now =
                round * 500 * units::US + d * 37 * units::US;
            const log::SubmitResult r =
                transports_[d]->submitSegment(
                    chains_[d]->next(3, 2048), now);
            EXPECT_TRUE(r.accepted)
                << "device " << d << " round " << round;
            EXPECT_GT(r.ackAt, now);
        }
    }
    EXPECT_EQ(cluster_.totalSegments(), 4u * kDevices);
    EXPECT_TRUE(cluster_.verifyAll());
    for (int d = 0; d < kDevices; d++) {
        EXPECT_EQ(transports_[d]->stats().segmentsAccepted, 4u);
        EXPECT_EQ(transports_[d]->stats().segmentsRejected, 0u);
    }
}

TEST_F(MultiDeviceNetTest, ReverseOrderSubmissionStillChains)
{
    // Device clocks skewed so that *later-attached* devices submit
    // at *earlier* times: per-shard arrival clamping must keep every
    // stream's chain intact.
    for (int round = 0; round < 3; round++) {
        for (int d = kDevices - 1; d >= 0; d--) {
            const Tick now = round * 300 * units::US +
                             (kDevices - 1 - d) * 53 * units::US;
            EXPECT_TRUE(transports_[d]
                            ->submitSegment(chains_[d]->next(), now)
                            .accepted);
        }
    }
    EXPECT_TRUE(cluster_.verifyAll());
}

TEST_F(MultiDeviceNetTest, LossOnOneLinkOnlyDelaysThatDevice)
{
    // Corrupt the next two transfers on device 2's link: its
    // transport retransmits; everyone else is untouched.
    links_[2]->tx().corruptNextTransfers(2);

    std::vector<Tick> acks(kDevices);
    for (int d = 0; d < kDevices; d++) {
        const log::SubmitResult r =
            transports_[d]->submitSegment(chains_[d]->next(3, 1024),
                                          0);
        EXPECT_TRUE(r.accepted) << "device " << d;
        acks[d] = r.ackAt;
    }

    EXPECT_EQ(transports_[2]->stats().retransmits, 2u);
    for (int d = 0; d < kDevices; d++) {
        if (d != 2) {
            EXPECT_EQ(transports_[d]->stats().retransmits, 0u);
        }
    }
    // The lossy device pays at least its two retransmit timeouts.
    const TransportConfig cfg;
    EXPECT_GE(acks[2], 2 * cfg.retransmitTimeout);
    EXPECT_TRUE(cluster_.verifyAll());
}

TEST_F(MultiDeviceNetTest, RetryExhaustionIsPerDevice)
{
    const TransportConfig cfg;
    // More corrupted transfers than the retry budget: device 1's
    // segment is dropped...
    links_[1]->tx().corruptNextTransfers(cfg.maxRetries + 1);
    const auto dropped = chains_[1]->next();
    EXPECT_FALSE(transports_[1]->submitSegment(dropped, 0).accepted);

    // ...but other devices keep flowing, and device 1 itself
    // recovers by resubmitting the *same* segment (the chain has not
    // advanced).
    for (int d = 0; d < kDevices; d++) {
        if (d == 1)
            continue;
        EXPECT_TRUE(transports_[d]
                        ->submitSegment(chains_[d]->next(), 0)
                        .accepted);
    }
    EXPECT_TRUE(transports_[1]->submitSegment(dropped, 0).accepted);
    EXPECT_TRUE(cluster_.verifyAll());
}

TEST_F(MultiDeviceNetTest, PerDeviceStatsStayIndependent)
{
    for (int d = 0; d < kDevices; d++) {
        for (int i = 0; i <= d; i++) {
            ASSERT_TRUE(transports_[d]
                            ->submitSegment(chains_[d]->next(), 0)
                            .accepted);
        }
    }
    for (int d = 0; d < kDevices; d++) {
        EXPECT_EQ(transports_[d]->stats().segmentsSent,
                  static_cast<std::uint64_t>(d + 1));
        EXPECT_EQ(links_[d]->tx().stats().corruptedFrames, 0u);
    }
}

} // namespace
} // namespace rssd::net
