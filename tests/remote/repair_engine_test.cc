/**
 * @file
 * RepairEngine tests: anti-entropy repair of degraded replica sets
 * (crash-fed queue, suspicion-held priority, bandwidth budgeting,
 * verbatim sealed-byte copies, prune re-anchoring) and integrity
 * scrubbing (bit-rot detection, quarantine, rebuild), plus the edge
 * cases ISSUE 7 calls out: repair racing a joinShard rebalance,
 * fully-pruned streams repairing to a chain-tail-only copy, and a
 * scrub pass surviving a mid-pass prune.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "remote/backup_cluster.hh"
#include "remote/repair_engine.hh"

#include "tests/common/segment_chain.hh"

namespace rssd::remote {
namespace {

BackupClusterConfig
replicatedCluster(std::uint32_t shards, std::uint32_t r)
{
    BackupClusterConfig cfg;
    cfg.shards = shards;
    cfg.replication = r;
    cfg.shard.capacityBytes = 256 * units::MiB;
    cfg.perSegmentProcessing = 50 * units::US;
    cfg.batchOverhead = 200 * units::US;
    cfg.batchSegments = 4;
    cfg.maxPending = 64;
    return cfg;
}

RepairEngineConfig
repairOn()
{
    RepairEngineConfig cfg;
    cfg.enabled = true;
    return cfg;
}

TEST(RepairEngine, CrashEnqueuesAndRepairConvergesVerbatim)
{
    BackupCluster cluster(replicatedCluster(5, 3));
    RepairEngine engine(cluster, repairOn());
    test::SegmentChain chain("heal-dev");
    cluster.attachDevice(9, chain.codec());
    const std::vector<ShardId> old_set = cluster.replicaSetOf(9);

    Tick ack = 0;
    for (int i = 0; i < 3; i++)
        ASSERT_TRUE(cluster.ingest(9, chain.next(2, 256), 0, ack));

    // The observer hook fires the moment the crash degrades the set.
    cluster.crashShard(old_set[1]);
    EXPECT_TRUE(engine.queued(9));
    EXPECT_EQ(engine.stats().enqueues, 1u);
    const StreamHealth before = cluster.streamHealth(9);
    EXPECT_EQ(before.live, 2u);
    const std::vector<DeviceId> degraded = cluster.degradedStreams();
    ASSERT_EQ(degraded.size(), 1u);
    EXPECT_EQ(degraded[0], 9u);

    // More foreground writes land while degraded (partial quorum).
    for (int i = 0; i < 2; i++)
        ASSERT_TRUE(
            cluster.ingest(9, chain.next(2, 256), units::MS, ack));

    const Tick done = engine.drainAll(2 * units::MS);
    EXPECT_GT(done, 2 * units::MS);
    EXPECT_TRUE(engine.idle());
    EXPECT_TRUE(cluster.degradedStreams().empty());
    EXPECT_EQ(engine.stats().streamsRepaired, 1u);
    EXPECT_EQ(engine.stats().segmentsCopied, 5u);
    EXPECT_GT(engine.stats().bytesCopied, 0u);
    EXPECT_EQ(engine.stats().lastRepairDoneAt, done);

    // The committed set is the live ring target set, back at full
    // strength, and every copy is byte-for-byte the survivor's.
    const std::vector<ShardId> &set = cluster.replicaSetOf(9);
    ASSERT_EQ(set.size(), 3u);
    const ShardId survivor = old_set[0];
    const BackupStore &ref = cluster.shardStore(survivor);
    for (const ShardId s : set) {
        ASSERT_TRUE(cluster.shardAlive(s));
        const BackupStore &store = cluster.shardStore(s);
        ASSERT_TRUE(store.hasStream(9));
        ASSERT_EQ(store.streamSegments(9).size(), 5u);
        EXPECT_TRUE(store.verifyStreamChain(9));
        auto it = store.streamSegments(9).begin();
        for (const std::uint32_t ref_idx : ref.streamSegments(9)) {
            const log::SealedSegment &a = ref.sealedSegment(ref_idx);
            const log::SealedSegment &b = store.sealedSegment(*it++);
            EXPECT_EQ(a.id, b.id);
            EXPECT_EQ(a.hmac, b.hmac);
            EXPECT_EQ(a.payload, b.payload);
        }
    }

    // Foreground quorum writes flow to the repaired set: no more
    // partial acks.
    const std::uint64_t partial_before =
        cluster.replicationStats().partialWrites;
    ASSERT_TRUE(cluster.ingest(9, chain.next(2, 256), done, ack));
    EXPECT_EQ(cluster.replicationStats().partialWrites,
              partial_before);
}

TEST(RepairEngine, SuspicionHeldStreamGetsTheBandwidthFirst)
{
    // Two degraded streams compete for one target shard's budget;
    // the detector-alarmed (eviction-held) one must repair first
    // even though its device id sorts last.
    BackupCluster cluster(replicatedCluster(3, 2));
    RepairEngineConfig rcfg = repairOn();
    rcfg.bandwidthBytesPerSec = 1; // bucket floor: one 8 MiB burst
    RepairEngine engine(cluster, rcfg);

    // Find two devices whose replica set is exactly {0, 1}: after
    // crashing shard 1 both survive on shard 0 and rebuild on 2 —
    // the same token bucket.
    std::vector<DeviceId> on01;
    std::vector<std::unique_ptr<test::SegmentChain>> chains;
    for (DeviceId d = 0; d < 64 && on01.size() < 2; d++) {
        auto chain = std::make_unique<test::SegmentChain>(
            "held-" + std::to_string(d));
        cluster.attachDevice(d, chain->codec());
        chains.push_back(std::move(chain));
        const std::vector<ShardId> &set = cluster.replicaSetOf(d);
        if (std::count(set.begin(), set.end(), 0) == 1 &&
            std::count(set.begin(), set.end(), 1) == 1) {
            on01.push_back(d);
        }
    }
    ASSERT_EQ(on01.size(), 2u);
    const DeviceId unheld = on01[0];
    const DeviceId held = on01[1];

    // ~10 MiB per stream: more than the 8 MiB burst floor, so one
    // tick cannot finish even a single stream.
    Tick ack = 0;
    for (int i = 0; i < 5; i++) {
        ASSERT_TRUE(cluster.ingest(
            unheld, chains[unheld]->next(2, 2 * units::MiB), 0, ack));
        ASSERT_TRUE(cluster.ingest(
            held, chains[held]->next(2, 2 * units::MiB), 0, ack));
    }
    cluster.setEvictionHold(held, true);

    cluster.crashShard(1);
    EXPECT_TRUE(engine.queued(unheld));
    EXPECT_TRUE(engine.queued(held));

    engine.tick(units::MS);

    // The held stream drained the bucket; the unheld one got
    // nothing. (Neither converged — both still queued.)
    EXPECT_TRUE(engine.queued(held));
    EXPECT_TRUE(engine.queued(unheld));
    const BackupStore &target = cluster.shardStore(2);
    ASSERT_TRUE(target.hasStream(held));
    EXPECT_GT(target.streamSegments(held).size(), 0u);
    ASSERT_TRUE(target.hasStream(unheld));
    EXPECT_EQ(target.streamSegments(unheld).size(), 0u);
    EXPECT_GT(engine.stats().segmentsCopied, 0u);
}

TEST(RepairEngine, FullyPrunedStreamRepairsToChainTailOnlyCopy)
{
    // Retention GC expired the stream's whole history; a repair copy
    // is then the signed PruneRecord re-anchor plus whatever landed
    // after the horizon — never a resurrected prefix.
    BackupClusterConfig cfg = replicatedCluster(3, 2);
    cfg.shard.retention.gcEnabled = true;
    cfg.shard.retention.retentionWindow = 10 * units::MS;
    BackupCluster cluster(cfg);
    RepairEngine engine(cluster, repairOn());
    test::SegmentChain chain("pruned-dev");
    cluster.attachDevice(5, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(5);

    Tick ack = 0;
    for (int i = 0; i < 3; i++)
        ASSERT_TRUE(cluster.ingest(5, chain.next(2, 256), 0, ack));
    cluster.runRetentionGc(units::SEC); // expire all three
    ASSERT_TRUE(
        cluster.ingest(5, chain.next(2, 256), units::SEC, ack));

    cluster.crashShard(set[1]);
    ASSERT_TRUE(engine.queued(5));
    engine.drainAll(units::SEC + units::MS);

    EXPECT_TRUE(cluster.degradedStreams().empty());
    EXPECT_EQ(engine.stats().reanchors, 1u);
    EXPECT_EQ(engine.stats().segmentsCopied, 1u); // post-horizon only
    for (const ShardId s : cluster.replicaSetOf(5)) {
        const BackupStore &store = cluster.shardStore(s);
        ASSERT_TRUE(store.hasStream(5));
        const log::PruneRecord *rec = store.pruneRecordOf(5);
        ASSERT_NE(rec, nullptr);
        EXPECT_EQ(rec->segmentsPruned, 3u);
        EXPECT_EQ(store.streamSegments(5).size(), 1u);
        EXPECT_TRUE(store.verifyStreamChain(5));
    }
}

TEST(RepairEngine, RepairRacingJoinShardResolvesToTheRingSet)
{
    // A join + rebalance lands while a repair copy is mid-flight.
    // Migration wins (it drops the partial copy), the engine finds
    // the stream healthy on the post-join ring, and no shard is left
    // holding a stray partial copy.
    BackupCluster cluster(replicatedCluster(3, 2));
    RepairEngineConfig rcfg = repairOn();
    rcfg.bandwidthBytesPerSec = 1; // starve: repair stays partial
    RepairEngine engine(cluster, rcfg);
    test::SegmentChain chain("race-dev");
    cluster.attachDevice(7, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(7);

    Tick ack = 0;
    for (int i = 0; i < 6; i++) {
        ASSERT_TRUE(
            cluster.ingest(7, chain.next(2, 2 * units::MiB), 0, ack));
    }
    cluster.crashShard(set[1]);
    engine.tick(units::MS); // partial copy: budget runs dry
    ASSERT_TRUE(engine.queued(7));

    cluster.joinShard(2 * units::MS); // rebalance wins the race
    engine.drainAll(3 * units::MS);

    EXPECT_TRUE(engine.idle());
    EXPECT_TRUE(cluster.degradedStreams().empty());
    EXPECT_TRUE(cluster.verifyAll());
    // Exactly the replica set holds the stream — no stray copies.
    const std::vector<ShardId> &final_set = cluster.replicaSetOf(7);
    for (ShardId s = 0; s < cluster.shardCount(); s++) {
        if (!cluster.shardAlive(s))
            continue;
        const bool member =
            std::find(final_set.begin(), final_set.end(), s) !=
            final_set.end();
        EXPECT_EQ(cluster.shardStore(s).hasStream(7), member)
            << "shard " << s;
    }
}

TEST(RepairEngine, ScrubDetectsBitRotQuarantinesAndHeals)
{
    BackupCluster cluster(replicatedCluster(3, 3));
    RepairEngineConfig rcfg = repairOn();
    rcfg.scrubInterval = units::MS;
    RepairEngine engine(cluster, rcfg);
    test::SegmentChain chain("rot-dev");
    cluster.attachDevice(3, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(3);

    Tick ack = 0;
    for (int i = 0; i < 4; i++)
        ASSERT_TRUE(cluster.ingest(3, chain.next(2, 512), 0, ack));

    // Rot payload bytes in one copy. The chain tail still agrees
    // with the peers — tail votes cannot see it; only the scrub can.
    cluster.mutableShardStore(set[1]).injectBitRot(3, 2, 7, 5);
    EXPECT_TRUE(cluster.shardStore(set[1]).streamTail(3) ==
                cluster.shardStore(set[0]).streamTail(3));
    EXPECT_FALSE(cluster.shardStore(set[1]).verifyStreamChain(3));

    engine.drainAll(units::MS);

    EXPECT_EQ(engine.stats().scrubCorruptions, 1u);
    EXPECT_EQ(engine.stats().quarantines, 1u);
    EXPECT_EQ(engine.stats().tailVoteQuarantines, 0u);
    EXPECT_GT(engine.stats().scrubPasses, 0u);
    // Healed: the rotten copy was rebuilt from a healthy replica,
    // nothing is quarantined, nothing is degraded.
    EXPECT_EQ(cluster.quarantinedCopies(), 0u);
    EXPECT_TRUE(cluster.degradedStreams().empty());
    for (const ShardId s : cluster.replicaSetOf(3))
        EXPECT_TRUE(cluster.shardStore(s).verifyStreamChain(3));
    EXPECT_TRUE(cluster.verifyAll());
}

TEST(RepairEngine, ReadersSkipQuarantinedCopies)
{
    BackupCluster cluster(replicatedCluster(3, 2));
    RepairEngine engine(cluster, repairOn());
    test::SegmentChain chain("reader-dev");
    cluster.attachDevice(4, chain.codec());
    const std::vector<ShardId> set = cluster.replicaSetOf(4);

    Tick ack = 0;
    ASSERT_TRUE(cluster.ingest(4, chain.next(2, 256), 0, ack));

    cluster.quarantineCopy(set[0], 4);
    EXPECT_TRUE(cluster.copyQuarantined(set[0], 4));
    // Quarantine re-degrades the stream (observer notification) and
    // steers readers to the healthy peer.
    EXPECT_TRUE(engine.queued(4));
    EXPECT_EQ(cluster.chainVerifyingReplicaOf(4), set[1]);
    EXPECT_EQ(cluster.streamHealth(4).quarantined, 1u);
    ASSERT_EQ(cluster.degradedStreams().size(), 1u);

    // Repair rebuilds the quarantined copy and clears the verdict.
    engine.drainAll(units::MS);
    EXPECT_FALSE(cluster.copyQuarantined(set[0], 4));
    EXPECT_EQ(cluster.quarantinedCopies(), 0u);
    EXPECT_TRUE(cluster.degradedStreams().empty());
}

TEST(RepairEngine, ScrubSurvivesMidPassPrune)
{
    // Retention GC shrinks a stream between scrub chunks; the pass
    // cursor skips ahead instead of faulting, and the pass completes.
    BackupClusterConfig cfg = replicatedCluster(2, 2);
    cfg.shard.retention.gcEnabled = true;
    cfg.shard.retention.retentionWindow = 10 * units::MS;
    BackupCluster cluster(cfg);
    RepairEngineConfig rcfg = repairOn();
    rcfg.scrubInterval = units::MS;
    rcfg.scrubSegmentsPerStep = 1; // one segment per chunk
    RepairEngine engine(cluster, rcfg);
    test::SegmentChain chain("midprune-dev");
    cluster.attachDevice(6, chain.codec());

    Tick ack = 0;
    for (int i = 0; i < 6; i++)
        ASSERT_TRUE(cluster.ingest(6, chain.next(2, 256), 0, ack));

    engine.tick(units::MS); // pass begins, cursor inside the stream
    ASSERT_GT(engine.stats().scrubbedSegments, 0u);
    cluster.runRetentionGc(units::SEC); // expire everything mid-pass
    ASSERT_TRUE(
        cluster.ingest(6, chain.next(2, 256), units::SEC, ack));

    engine.drainAll(units::SEC);
    EXPECT_GT(engine.stats().scrubPasses, 0u);
    EXPECT_EQ(engine.stats().scrubCorruptions, 0u);
    EXPECT_TRUE(cluster.verifyAll());
    EXPECT_TRUE(cluster.degradedStreams().empty());
}

TEST(RepairEngine, DisabledEngineIgnoresDegradation)
{
    BackupCluster cluster(replicatedCluster(3, 2));
    RepairEngineConfig rcfg; // enabled = false
    RepairEngine engine(cluster, rcfg);
    test::SegmentChain chain("off-dev");
    cluster.attachDevice(2, chain.codec());

    Tick ack = 0;
    ASSERT_TRUE(cluster.ingest(2, chain.next(), 0, ack));
    cluster.crashShard(cluster.replicaSetOf(2)[1]);

    EXPECT_FALSE(engine.queued(2));
    EXPECT_EQ(engine.stats().enqueues, 0u);
    engine.tick(units::MS);
    EXPECT_EQ(engine.drainAll(units::MS), units::MS);
    // The repair debt stays (PR 6 behavior: paid at the next join).
    EXPECT_EQ(cluster.degradedStreams().size(), 1u);
}

} // namespace
} // namespace rssd::remote
