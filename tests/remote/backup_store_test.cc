/**
 * @file
 * BackupStore tests: authenticated append-only semantics, chain
 * enforcement, capacity budget, full-history verification.
 */

#include <gtest/gtest.h>

#include "remote/backup_store.hh"

#include "sim/rng.hh"
#include "tests/common/segment_chain.hh"

namespace rssd::remote {
namespace {

class StoreTest : public ::testing::Test
{
  protected:
    StoreTest()
        : codec_(log::SegmentCodec::fromSeed("store-test")),
          store_(config(), codec_)
    {
    }

    static BackupStoreConfig
    config()
    {
        BackupStoreConfig cfg;
        cfg.capacityBytes = 1 * units::MiB;
        return cfg;
    }

    /** Build the next segment in a valid chain. */
    log::SealedSegment
    nextSegment(std::size_t n_entries = 3, std::size_t page_bytes = 0)
    {
        log::Segment seg;
        seg.id = nextId_;
        seg.prevId = nextId_ == 0 ? log::kNoSegment : nextId_ - 1;
        seg.chainAnchor = chain_.anchorDigest();
        for (std::size_t i = 0; i < n_entries; i++) {
            chain_.append(log::OpKind::Write, i, dataSeq_++,
                          log::kNoDataSeq, i, 2.0f);
        }
        seg.entries.assign(chain_.entries().begin(),
                           chain_.entries().end());
        seg.chainTail = seg.entries.empty()
            ? seg.chainAnchor
            : seg.entries.back().chain;
        if (page_bytes > 0) {
            log::PageRecord p;
            p.lpa = 1;
            p.dataSeq = dataSeq_++;
            // Incompressible content so the sealed payload size
            // tracks page_bytes (the budget test depends on it).
            p.content.resize(page_bytes);
            for (auto &b : p.content)
                b = static_cast<std::uint8_t>(rng_.next());
            seg.pages.push_back(std::move(p));
        }
        chain_.truncateBefore(chain_.totalAppended());
        nextId_++;
        return codec_.seal(seg);
    }

    log::SegmentCodec codec_;
    BackupStore store_;
    log::OperationLog chain_;
    rssd::Rng rng_{77};
    std::uint64_t nextId_ = 0;
    std::uint64_t dataSeq_ = 0;
};

TEST_F(StoreTest, AcceptsValidChain)
{
    Tick ack = 0;
    for (int i = 0; i < 5; i++)
        EXPECT_TRUE(store_.ingestSegment(nextSegment(), 100, ack));
    EXPECT_EQ(store_.segmentCount(), 5u);
    EXPECT_TRUE(store_.verifyFullChain());
    EXPECT_GT(ack, 100u);
}

TEST_F(StoreTest, RejectsWrongKey)
{
    const log::SegmentCodec other =
        log::SegmentCodec::fromSeed("wrong");
    log::Segment seg;
    seg.id = 0;
    seg.prevId = log::kNoSegment;
    Tick ack = 0;
    EXPECT_FALSE(store_.ingestSegment(other.seal(seg), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::BadAuthentication);
}

TEST_F(StoreTest, RejectsFirstSegmentWithPredecessor)
{
    auto seg = nextSegment();
    // Forge prevId by re-sealing is impossible without the key;
    // instead create a chain starting at id 1.
    nextId_ = 5;
    log::Segment s;
    s.id = 5;
    s.prevId = 4;
    Tick ack = 0;
    EXPECT_FALSE(store_.ingestSegment(codec_.seal(s), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);
    (void)seg;
}

TEST_F(StoreTest, RejectsOutOfOrderSegments)
{
    Tick ack = 0;
    const auto s0 = nextSegment();
    const auto s1 = nextSegment();
    const auto s2 = nextSegment();
    ASSERT_TRUE(store_.ingestSegment(s0, 0, ack));
    // Skip s1: s2 names s1 as predecessor, store has s0.
    EXPECT_FALSE(store_.ingestSegment(s2, 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);
    // Delivering s1 then s2 works.
    EXPECT_TRUE(store_.ingestSegment(s1, 0, ack));
    EXPECT_TRUE(store_.ingestSegment(s2, 0, ack));
}

TEST_F(StoreTest, RejectsReplayedSegment)
{
    Tick ack = 0;
    const auto s0 = nextSegment();
    ASSERT_TRUE(store_.ingestSegment(s0, 0, ack));
    EXPECT_FALSE(store_.ingestSegment(s0, 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);
}

TEST_F(StoreTest, CapacityBudgetEnforced)
{
    Tick ack = 0;
    bool rejected = false;
    for (int i = 0; i < 100 && !rejected; i++) {
        // ~64 KiB of incompressible-ish page content per segment
        // still compresses; use enough to cross 1 MiB eventually.
        rejected = !store_.ingestSegment(nextSegment(1, 256 * 1024),
                                         0, ack);
    }
    EXPECT_TRUE(rejected);
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::CapacityExceeded);
    EXPECT_LE(store_.usedBytes(), store_.capacityBytes());
}

TEST_F(StoreTest, OpenSegmentReturnsContents)
{
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(nextSegment(4, 100), 0, ack));
    const log::Segment seg = store_.openSegment(0);
    EXPECT_EQ(seg.entries.size(), 4u);
    EXPECT_EQ(seg.pages.size(), 1u);
    EXPECT_EQ(seg.pages[0].content.size(), 100u);
}

TEST_F(StoreTest, VerifyFullChainCatchesCrossSegmentSplice)
{
    // Build two *independent* chains; the second segment of chain B
    // authenticates (right key) but does not extend chain A.
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(nextSegment(), 0, ack));

    log::OperationLog other;
    log::Segment rogue;
    rogue.id = 1;
    rogue.prevId = 0;
    other.append(log::OpKind::Write, 9, 9, log::kNoDataSeq, 9, 1.0f);
    rogue.chainAnchor = other.anchorDigest(); // genesis, not A's tail
    rogue.entries.assign(other.entries().begin(),
                         other.entries().end());
    rogue.chainTail = rogue.entries.back().chain;

    EXPECT_FALSE(store_.ingestSegment(codec_.seal(rogue), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);
    EXPECT_TRUE(store_.verifyFullChain()); // store stayed clean
}

TEST_F(StoreTest, StatsTrack)
{
    Tick ack = 0;
    store_.ingestSegment(nextSegment(), 0, ack);
    store_.ingestSegment(nextSegment(), 0, ack);
    EXPECT_EQ(store_.stats().segmentsAccepted, 2u);
    EXPECT_EQ(store_.stats().segmentsRejected, 0u);
    EXPECT_GT(store_.stats().bytesStored, 0u);
}

TEST_F(StoreTest, RejectReasonNames)
{
    EXPECT_STREQ(rejectReasonName(RejectReason::None), "none");
    EXPECT_STREQ(rejectReasonName(RejectReason::BadAuthentication),
                 "bad-authentication");
    EXPECT_STREQ(rejectReasonName(RejectReason::ChainViolation),
                 "chain-violation");
    EXPECT_STREQ(rejectReasonName(RejectReason::CapacityExceeded),
                 "capacity-exceeded");
    EXPECT_STREQ(rejectReasonName(RejectReason::UnknownStream),
                 "unknown-stream");
}

// ---------------------------------------------------------------------
// Multi-stream (fleet) semantics: chain state and codecs are per
// stream, never store-global.
// ---------------------------------------------------------------------

class MultiStreamStoreTest : public ::testing::Test
{
  protected:
    MultiStreamStoreTest()
        : store_(config()),
          chainA_("device-a-key", 1),
          chainB_("device-b-key", 2)
    {
        store_.registerStream(10, chainA_.codec());
        store_.registerStream(20, chainB_.codec());
    }

    static BackupStoreConfig
    config()
    {
        BackupStoreConfig cfg;
        cfg.capacityBytes = 8 * units::MiB;
        return cfg;
    }

    BackupStore store_;
    test::SegmentChain chainA_;
    test::SegmentChain chainB_;
};

TEST_F(MultiStreamStoreTest, InterleavedStreamsBothVerify)
{
    Tick ack = 0;
    for (int i = 0; i < 4; i++) {
        EXPECT_TRUE(store_.ingestSegment(10, chainA_.next(), i, ack));
        EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), i, ack));
    }
    EXPECT_EQ(store_.segmentCount(), 8u);
    EXPECT_EQ(store_.streamSegments(10).size(), 4u);
    EXPECT_EQ(store_.streamSegments(20).size(), 4u);
    EXPECT_TRUE(store_.verifyFullChain());
}

TEST_F(MultiStreamStoreTest, StreamsCannotSpliceIntoEachOther)
{
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(10, chainA_.next(), 0, ack));
    // A's next segment is valid *for stream 10*; stream 20 rejects
    // it (wrong key), and B's own chain keeps working afterwards.
    EXPECT_FALSE(store_.ingestSegment(20, chainA_.next(), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::BadAuthentication);
    EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), 0, ack));
    EXPECT_TRUE(store_.verifyFullChain());
}

TEST_F(MultiStreamStoreTest, ChainViolationIsPerStream)
{
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(10, chainA_.next(), 0, ack));
    const auto skipped = chainA_.next();
    (void)skipped; // lost on the wire: A's chain now has a gap
    EXPECT_FALSE(store_.ingestSegment(10, chainA_.next(), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);

    // B is unaffected by A's violation.
    EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), 0, ack));
    EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), 0, ack));
    EXPECT_TRUE(store_.verifyFullChain());
}

TEST_F(MultiStreamStoreTest, UnknownStreamRejected)
{
    Tick ack = 0;
    EXPECT_FALSE(store_.ingestSegment(99, chainA_.next(), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::UnknownStream);
}

TEST_F(MultiStreamStoreTest, OpenSegmentUsesStreamCodec)
{
    Tick ack = 0;
    ASSERT_TRUE(
        store_.ingestSegment(10, chainA_.next(2, 64), 0, ack));
    ASSERT_TRUE(
        store_.ingestSegment(20, chainB_.next(5, 32), 0, ack));
    EXPECT_EQ(store_.streamOf(0), 10u);
    EXPECT_EQ(store_.streamOf(1), 20u);
    EXPECT_EQ(store_.openSegment(0).entries.size(), 2u);
    EXPECT_EQ(store_.openSegment(1).entries.size(), 5u);
}

TEST_F(MultiStreamStoreTest, CapacityBudgetIsShared)
{
    Tick ack = 0;
    bool rejected = false;
    for (int i = 0; i < 100 && !rejected; i++) {
        test::SegmentChain &c = i % 2 ? chainA_ : chainB_;
        const StreamId stream = i % 2 ? 10 : 20;
        rejected = !store_.ingestSegment(stream, c.next(1, 512 * 1024),
                                         0, ack);
    }
    EXPECT_TRUE(rejected);
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::CapacityExceeded);
    EXPECT_LE(store_.usedBytes(), store_.capacityBytes());
}

} // namespace
} // namespace rssd::remote
