/**
 * @file
 * BackupStore tests: authenticated append-only semantics, chain
 * enforcement, capacity budget, full-history verification.
 */

#include <gtest/gtest.h>

#include <memory>

#include "remote/backup_store.hh"

#include "sim/rng.hh"
#include "tests/common/fault_injection.hh"
#include "tests/common/segment_chain.hh"

namespace rssd::remote {
namespace {

class StoreTest : public ::testing::Test
{
  protected:
    StoreTest()
        : codec_(log::SegmentCodec::fromSeed("store-test")),
          store_(config(), codec_)
    {
    }

    static BackupStoreConfig
    config()
    {
        BackupStoreConfig cfg;
        cfg.capacityBytes = 1 * units::MiB;
        return cfg;
    }

    /** Build the next segment in a valid chain. */
    log::SealedSegment
    nextSegment(std::size_t n_entries = 3, std::size_t page_bytes = 0)
    {
        log::Segment seg;
        seg.id = nextId_;
        seg.prevId = nextId_ == 0 ? log::kNoSegment : nextId_ - 1;
        seg.chainAnchor = chain_.anchorDigest();
        for (std::size_t i = 0; i < n_entries; i++) {
            chain_.append(log::OpKind::Write, i, dataSeq_++,
                          log::kNoDataSeq, i, 2.0f);
        }
        seg.entries.assign(chain_.entries().begin(),
                           chain_.entries().end());
        seg.chainTail = seg.entries.empty()
            ? seg.chainAnchor
            : seg.entries.back().chain;
        if (page_bytes > 0) {
            log::PageRecord p;
            p.lpa = 1;
            p.dataSeq = dataSeq_++;
            // Incompressible content so the sealed payload size
            // tracks page_bytes (the budget test depends on it).
            p.content.resize(page_bytes);
            for (auto &b : p.content)
                b = static_cast<std::uint8_t>(rng_.next());
            seg.pages.push_back(std::move(p));
        }
        chain_.truncateBefore(chain_.totalAppended());
        nextId_++;
        return codec_.seal(seg);
    }

    log::SegmentCodec codec_;
    BackupStore store_;
    log::OperationLog chain_;
    rssd::Rng rng_{77};
    std::uint64_t nextId_ = 0;
    std::uint64_t dataSeq_ = 0;
};

TEST_F(StoreTest, AcceptsValidChain)
{
    Tick ack = 0;
    for (int i = 0; i < 5; i++)
        EXPECT_TRUE(store_.ingestSegment(nextSegment(), 100, ack));
    EXPECT_EQ(store_.segmentCount(), 5u);
    EXPECT_TRUE(store_.verifyFullChain());
    EXPECT_GT(ack, 100u);
}

TEST_F(StoreTest, RejectsWrongKey)
{
    const log::SegmentCodec other =
        log::SegmentCodec::fromSeed("wrong");
    log::Segment seg;
    seg.id = 0;
    seg.prevId = log::kNoSegment;
    Tick ack = 0;
    EXPECT_FALSE(store_.ingestSegment(other.seal(seg), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::BadAuthentication);
}

TEST_F(StoreTest, RejectsFirstSegmentWithPredecessor)
{
    auto seg = nextSegment();
    // Forge prevId by re-sealing is impossible without the key;
    // instead create a chain starting at id 1.
    nextId_ = 5;
    log::Segment s;
    s.id = 5;
    s.prevId = 4;
    Tick ack = 0;
    EXPECT_FALSE(store_.ingestSegment(codec_.seal(s), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);
    (void)seg;
}

TEST_F(StoreTest, RejectsOutOfOrderSegments)
{
    Tick ack = 0;
    const auto s0 = nextSegment();
    const auto s1 = nextSegment();
    const auto s2 = nextSegment();
    ASSERT_TRUE(store_.ingestSegment(s0, 0, ack));
    // Skip s1: s2 names s1 as predecessor, store has s0.
    EXPECT_FALSE(store_.ingestSegment(s2, 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);
    // Delivering s1 then s2 works.
    EXPECT_TRUE(store_.ingestSegment(s1, 0, ack));
    EXPECT_TRUE(store_.ingestSegment(s2, 0, ack));
}

TEST_F(StoreTest, RejectsReplayedSegmentButAcksTheTailIdempotently)
{
    Tick ack = 0;
    const auto s0 = nextSegment();
    const auto s1 = nextSegment();
    ASSERT_TRUE(store_.ingestSegment(s0, 0, ack));
    ASSERT_TRUE(store_.ingestSegment(s1, 0, ack));

    // Replaying history is still a chain violation...
    EXPECT_FALSE(store_.ingestSegment(s0, 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);

    // ...but re-offering the current tail is acked idempotently
    // (replicated ingest retries until quorum; a replica that
    // already stored the tail must not poison the chain).
    EXPECT_TRUE(store_.ingestSegment(s1, 0, ack));
    EXPECT_EQ(store_.stats().duplicateSegments, 1u);
    EXPECT_EQ(store_.stats().segmentsAccepted, 2u);
    EXPECT_EQ(store_.liveSegmentCount(), 2u);
    EXPECT_TRUE(store_.verifyFullChain());
}

TEST_F(StoreTest, CapacityBudgetEnforced)
{
    Tick ack = 0;
    bool rejected = false;
    for (int i = 0; i < 100 && !rejected; i++) {
        // ~64 KiB of incompressible-ish page content per segment
        // still compresses; use enough to cross 1 MiB eventually.
        rejected = !store_.ingestSegment(nextSegment(1, 256 * 1024),
                                         0, ack);
    }
    EXPECT_TRUE(rejected);
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::CapacityExceeded);
    EXPECT_LE(store_.usedBytes(), store_.capacityBytes());
}

TEST_F(StoreTest, OpenSegmentReturnsContents)
{
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(nextSegment(4, 100), 0, ack));
    const log::Segment seg = store_.openSegment(0);
    EXPECT_EQ(seg.entries.size(), 4u);
    EXPECT_EQ(seg.pages.size(), 1u);
    EXPECT_EQ(seg.pages[0].content.size(), 100u);
}

TEST_F(StoreTest, VerifyFullChainCatchesCrossSegmentSplice)
{
    // Build two *independent* chains; the second segment of chain B
    // authenticates (right key) but does not extend chain A.
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(nextSegment(), 0, ack));

    log::OperationLog other;
    log::Segment rogue;
    rogue.id = 1;
    rogue.prevId = 0;
    other.append(log::OpKind::Write, 9, 9, log::kNoDataSeq, 9, 1.0f);
    rogue.chainAnchor = other.anchorDigest(); // genesis, not A's tail
    rogue.entries.assign(other.entries().begin(),
                         other.entries().end());
    rogue.chainTail = rogue.entries.back().chain;

    EXPECT_FALSE(store_.ingestSegment(codec_.seal(rogue), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);
    EXPECT_TRUE(store_.verifyFullChain()); // store stayed clean
}

TEST_F(StoreTest, StatsTrack)
{
    Tick ack = 0;
    store_.ingestSegment(nextSegment(), 0, ack);
    store_.ingestSegment(nextSegment(), 0, ack);
    EXPECT_EQ(store_.stats().segmentsAccepted, 2u);
    EXPECT_EQ(store_.stats().segmentsRejected, 0u);
    EXPECT_GT(store_.stats().bytesStored, 0u);
}

TEST_F(StoreTest, CapacityAccountsWireBytesNotJustPayload)
{
    // The budget must track what the wire actually carries (header
    // + payload = wireSize()), or Figure 2's retention-time math
    // (capacity / ingest rate) drifts from reality by the header
    // bytes of every segment.
    Tick ack = 0;
    const log::SealedSegment seg = nextSegment(3, 512);
    ASSERT_TRUE(store_.ingestSegment(seg, 0, ack));
    EXPECT_EQ(store_.usedBytes(), seg.wireSize());
    EXPECT_GT(store_.usedBytes(), seg.payload.size());
    EXPECT_EQ(store_.stats().bytesStored, seg.wireSize());
}

TEST_F(StoreTest, RejectReasonNames)
{
    EXPECT_STREQ(rejectReasonName(RejectReason::None), "none");
    EXPECT_STREQ(rejectReasonName(RejectReason::BadAuthentication),
                 "bad-authentication");
    EXPECT_STREQ(rejectReasonName(RejectReason::ChainViolation),
                 "chain-violation");
    EXPECT_STREQ(rejectReasonName(RejectReason::CapacityExceeded),
                 "capacity-exceeded");
    EXPECT_STREQ(rejectReasonName(RejectReason::UnknownStream),
                 "unknown-stream");
}

// ---------------------------------------------------------------------
// Multi-stream (fleet) semantics: chain state and codecs are per
// stream, never store-global.
// ---------------------------------------------------------------------

class MultiStreamStoreTest : public ::testing::Test
{
  protected:
    MultiStreamStoreTest()
        : store_(config()),
          chainA_("device-a-key", 1),
          chainB_("device-b-key", 2)
    {
        store_.registerStream(10, chainA_.codec());
        store_.registerStream(20, chainB_.codec());
    }

    static BackupStoreConfig
    config()
    {
        BackupStoreConfig cfg;
        cfg.capacityBytes = 8 * units::MiB;
        return cfg;
    }

    BackupStore store_;
    test::SegmentChain chainA_;
    test::SegmentChain chainB_;
};

TEST_F(MultiStreamStoreTest, InterleavedStreamsBothVerify)
{
    Tick ack = 0;
    for (int i = 0; i < 4; i++) {
        EXPECT_TRUE(store_.ingestSegment(10, chainA_.next(), i, ack));
        EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), i, ack));
    }
    EXPECT_EQ(store_.segmentCount(), 8u);
    EXPECT_EQ(store_.streamSegments(10).size(), 4u);
    EXPECT_EQ(store_.streamSegments(20).size(), 4u);
    EXPECT_TRUE(store_.verifyFullChain());
}

TEST_F(MultiStreamStoreTest, StreamsCannotSpliceIntoEachOther)
{
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(10, chainA_.next(), 0, ack));
    // A's next segment is valid *for stream 10*; stream 20 rejects
    // it (wrong key), and B's own chain keeps working afterwards.
    EXPECT_FALSE(store_.ingestSegment(20, chainA_.next(), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::BadAuthentication);
    EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), 0, ack));
    EXPECT_TRUE(store_.verifyFullChain());
}

TEST_F(MultiStreamStoreTest, ChainViolationIsPerStream)
{
    Tick ack = 0;
    ASSERT_TRUE(store_.ingestSegment(10, chainA_.next(), 0, ack));
    const auto skipped = chainA_.next();
    (void)skipped; // lost on the wire: A's chain now has a gap
    EXPECT_FALSE(store_.ingestSegment(10, chainA_.next(), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::ChainViolation);

    // B is unaffected by A's violation.
    EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), 0, ack));
    EXPECT_TRUE(store_.ingestSegment(20, chainB_.next(), 0, ack));
    EXPECT_TRUE(store_.verifyFullChain());
}

TEST_F(MultiStreamStoreTest, UnknownStreamRejected)
{
    Tick ack = 0;
    EXPECT_FALSE(store_.ingestSegment(99, chainA_.next(), 0, ack));
    EXPECT_EQ(store_.lastRejectReason(), RejectReason::UnknownStream);
}

TEST_F(MultiStreamStoreTest, OpenSegmentUsesStreamCodec)
{
    Tick ack = 0;
    ASSERT_TRUE(
        store_.ingestSegment(10, chainA_.next(2, 64), 0, ack));
    ASSERT_TRUE(
        store_.ingestSegment(20, chainB_.next(5, 32), 0, ack));
    EXPECT_EQ(store_.streamOf(0), 10u);
    EXPECT_EQ(store_.streamOf(1), 20u);
    EXPECT_EQ(store_.openSegment(0).entries.size(), 2u);
    EXPECT_EQ(store_.openSegment(1).entries.size(), 5u);
}

TEST_F(MultiStreamStoreTest, CapacityBudgetIsShared)
{
    Tick ack = 0;
    bool rejected = false;
    for (int i = 0; i < 100 && !rejected; i++) {
        test::SegmentChain &c = i % 2 ? chainA_ : chainB_;
        const StreamId stream = i % 2 ? 10 : 20;
        rejected = !store_.ingestSegment(stream, c.next(1, 512 * 1024),
                                         0, ack);
    }
    EXPECT_TRUE(rejected);
    EXPECT_EQ(store_.lastRejectReason(),
              RejectReason::CapacityExceeded);
    EXPECT_LE(store_.usedBytes(), store_.capacityBytes());
}

// ---------------------------------------------------------------------
// Retention-window GC: age expiry, watermark eviction, suspicion
// holds, per-stream quotas, and chain re-anchoring via PruneRecord.
// ---------------------------------------------------------------------

class RetentionGcTest : public ::testing::Test
{
  protected:
    RetentionGcTest()
        : chainA_("gc-device-a", 11), chainB_("gc-device-b", 22)
    {
    }

    /** Store with GC enabled. @p window 0 = watermark only. */
    std::unique_ptr<BackupStore>
    makeStore(std::uint64_t capacity, Tick window)
    {
        BackupStoreConfig cfg;
        cfg.capacityBytes = capacity;
        cfg.retention.gcEnabled = true;
        cfg.retention.retentionWindow = window;
        auto store = std::make_unique<BackupStore>(cfg);
        store->registerStream(1, chainA_.codec());
        store->registerStream(2, chainB_.codec());
        return store;
    }

    test::SegmentChain chainA_;
    test::SegmentChain chainB_;
};

TEST_F(RetentionGcTest, AgeExpiryPrunesPastTheWindow)
{
    auto store = makeStore(64 * units::MiB, 10 * units::MS);
    Tick ack = 0;
    for (int i = 0; i < 4; i++) {
        ASSERT_TRUE(store->ingestSegment(
            1, chainA_.next(3, 2048), Tick(i) * units::MS, ack));
    }
    ASSERT_EQ(store->liveSegmentCount(), 4u);

    // An arrival at t=12ms expires the segments from t=0,1,2ms
    // (arrival + window <= now); t=3ms is still inside the window.
    ASSERT_TRUE(store->ingestSegment(1, chainA_.next(3, 2048),
                                     12 * units::MS, ack));
    EXPECT_EQ(store->prunedSegments(1), 3u);
    EXPECT_EQ(store->liveSegmentCount(), 2u);
    EXPECT_EQ(store->stats().agePrunes, 3u);
    EXPECT_EQ(store->stats().pressurePrunes, 0u);
    EXPECT_TRUE(store->verifyFullChain());

    const log::PruneRecord *rec = store->pruneRecordOf(1);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->stream, 1u);
    EXPECT_EQ(rec->upToId, 2u);
    EXPECT_EQ(rec->segmentsPruned, 3u);
    EXPECT_EQ(rec->entriesPruned, 9u);
    EXPECT_EQ(rec->prunedAt, 12 * units::MS);
    EXPECT_TRUE(chainA_.codec().verifyPrune(*rec));
}

TEST_F(RetentionGcTest, UsedBytesShrinkWithEveryPrune)
{
    auto store = makeStore(64 * units::MiB, 1 * units::MS);
    Tick ack = 0;
    ASSERT_TRUE(
        store->ingestSegment(1, chainA_.next(2, 4096), 0, ack));
    const std::uint64_t used_one = store->usedBytes();
    ASSERT_TRUE(store->ingestSegment(1, chainA_.next(2, 4096),
                                     10 * units::MS, ack));
    // The first segment expired on the second arrival.
    EXPECT_EQ(store->prunedSegments(1), 1u);
    EXPECT_LE(store->usedBytes(), used_one + 4096 + 4096);
    EXPECT_EQ(store->stats().bytesPruned, used_one);
    EXPECT_EQ(store->usedBytes(),
              store->stats().bytesStored - store->stats().bytesPruned);
}

TEST_F(RetentionGcTest, WatermarkEvictionSustainsIngest)
{
    // Two streams, no age horizon: only capacity pressure prunes.
    // 60 segments of ~56 KiB incompressible pages through a 1 MiB
    // budget: without GC this walls at ~18 segments; with GC every
    // arrival must be accepted and occupancy must end between the
    // watermarks.
    auto store = makeStore(1 * units::MiB, 0);
    Tick ack = 0;
    for (int i = 0; i < 60; i++) {
        test::SegmentChain &c = i % 2 ? chainA_ : chainB_;
        const StreamId stream = i % 2 ? 1 : 2;
        ASSERT_TRUE(store->ingestSegment(stream,
                                         c.next(2, 56 * 1024),
                                         Tick(i) * units::MS, ack))
            << "segment " << i << " rejected: "
            << rejectReasonName(store->lastRejectReason());
    }
    EXPECT_EQ(store->stats().segmentsRejected, 0u);
    EXPECT_GT(store->stats().pressurePrunes, 0u);
    EXPECT_LE(store->usedBytes(), store->capacityBytes());
    EXPECT_TRUE(store->verifyFullChain());
    // Both streams still have a live suffix and both re-anchor.
    EXPECT_GT(store->streamSegments(1).size(), 0u);
    EXPECT_GT(store->streamSegments(2).size(), 0u);
    EXPECT_NE(store->pruneRecordOf(1), nullptr);
    EXPECT_NE(store->pruneRecordOf(2), nullptr);
}

TEST_F(RetentionGcTest, FullyPrunedStreamStillIngests)
{
    auto store = makeStore(64 * units::MiB, 5 * units::MS);
    Tick ack = 0;
    for (int i = 0; i < 3; i++) {
        ASSERT_TRUE(store->ingestSegment(1, chainA_.next(2, 512),
                                         Tick(i) * units::MS, ack));
    }
    store->runRetentionGc(units::SEC); // everything past the window
    EXPECT_EQ(store->streamSegments(1).size(), 0u);
    EXPECT_EQ(store->prunedSegments(1), 3u);
    EXPECT_TRUE(store->verifyFullChain()); // record alone verifies

    // The device continues its chain; the store accepts because the
    // per-stream tail (lastId/chainTail) survives a full prune.
    ASSERT_TRUE(store->ingestSegment(1, chainA_.next(2, 512),
                                     units::SEC + 1, ack));
    EXPECT_EQ(store->streamSegments(1).size(), 1u);
    EXPECT_TRUE(store->verifyFullChain());
}

TEST_F(RetentionGcTest, EvictionHoldShieldsFlaggedStream)
{
    auto store = makeStore(64 * units::MiB, 5 * units::MS);
    Tick ack = 0;
    for (int i = 0; i < 3; i++) {
        ASSERT_TRUE(store->ingestSegment(1, chainA_.next(2, 512),
                                         Tick(i) * units::MS, ack));
        ASSERT_TRUE(store->ingestSegment(2, chainB_.next(2, 512),
                                         Tick(i) * units::MS, ack));
    }
    store->setEvictionHold(1, true);
    EXPECT_TRUE(store->evictionHold(1));
    EXPECT_EQ(store->heldStreams(), 1u);

    store->runRetentionGc(units::SEC);
    // The held stream kept everything past the window; the unheld
    // one expired.
    EXPECT_EQ(store->prunedSegments(1), 0u);
    EXPECT_EQ(store->streamSegments(1).size(), 3u);
    EXPECT_EQ(store->prunedSegments(2), 3u);
    EXPECT_TRUE(store->verifyFullChain());

    // Releasing the hold re-exposes the stream to the window.
    store->setEvictionHold(1, false);
    store->runRetentionGc(2 * units::SEC);
    EXPECT_EQ(store->prunedSegments(1), 3u);
}

TEST_F(RetentionGcTest, QuotaBackstopPrunesHeldFlooderNotHeldVictim)
{
    // Victim (stream 1): small, flagged, held. Flooder (stream 2):
    // flagged and held too — but flooding. The quota backstop must
    // keep ingest alive by pruning the flooder past its quota while
    // the victim's evidence survives untouched: a flooding attacker
    // can only shorten its OWN retention window.
    auto store = makeStore(1 * units::MiB, 0);
    Tick ack = 0;
    for (int i = 0; i < 3; i++) {
        ASSERT_TRUE(store->ingestSegment(1, chainA_.next(2, 2048),
                                         Tick(i) * units::MS, ack));
    }
    store->setEvictionHold(1, true);
    store->setEvictionHold(2, true);

    for (int i = 0; i < 60; i++) {
        ASSERT_TRUE(store->ingestSegment(
            2, chainB_.next(2, 56 * 1024),
            (10 + Tick(i)) * units::MS, ack))
            << "flood segment " << i << " rejected: "
            << rejectReasonName(store->lastRejectReason());
    }
    EXPECT_EQ(store->prunedSegments(1), 0u); // victim untouched
    EXPECT_GT(store->prunedSegments(2), 0u); // flooder pays
    EXPECT_LE(store->streamLiveBytes(2),
              store->capacityBytes()); // and stays bounded
    EXPECT_EQ(store->stats().segmentsRejected, 0u);
    EXPECT_TRUE(store->verifyFullChain());
}

TEST_F(RetentionGcTest, GcDisabledStaysAppendOnly)
{
    BackupStoreConfig cfg;
    cfg.capacityBytes = 256 * units::KiB;
    ASSERT_FALSE(cfg.retention.gcEnabled); // the default
    BackupStore store(cfg);
    store.registerStream(1, chainA_.codec());

    Tick ack = 0;
    bool rejected = false;
    for (int i = 0; i < 40 && !rejected; i++) {
        rejected = !store.ingestSegment(
            1, chainA_.next(1, 56 * 1024), Tick(i) * units::MS, ack);
    }
    EXPECT_TRUE(rejected);
    EXPECT_EQ(store.lastRejectReason(),
              RejectReason::CapacityExceeded);
    store.runRetentionGc(units::SEC); // no-op when disabled
    EXPECT_EQ(store.stats().segmentsPruned, 0u);
}

TEST_F(RetentionGcTest, PrunedSlotsAreTombstonedThenRecycled)
{
    auto store = makeStore(64 * units::MiB, 1 * units::MS);
    Tick ack = 0;
    ASSERT_TRUE(
        store->ingestSegment(1, chainA_.next(2, 512), 0, ack));
    ASSERT_TRUE(
        store->ingestSegment(1, chainA_.next(2, 512), 0, ack));

    // An operator GC pass expires both: the slots become
    // tombstones (sealedSegment() would panic on them).
    store->runRetentionGc(2 * units::MS);
    EXPECT_EQ(store->stats().segmentsPruned, 2u);
    EXPECT_TRUE(store->segmentPruned(0));
    EXPECT_TRUE(store->segmentPruned(1));
    EXPECT_EQ(store->segmentCount(), 2u);
    EXPECT_EQ(store->liveSegmentCount(), 0u);

    // The next arrival recycles a tombstoned slot instead of
    // growing storage — memory is bounded by the capacity budget,
    // not by segments ever ingested.
    ASSERT_TRUE(store->ingestSegment(1, chainA_.next(2, 512),
                                     10 * units::MS, ack));
    EXPECT_EQ(store->segmentCount(), 2u); // no growth
    EXPECT_EQ(store->liveSegmentCount(), 1u);
    EXPECT_TRUE(store->verifyFullChain());
}

TEST(StoreFaultInjection, ScriptedCorruptionIsCaughtByStreamVerify)
{
    // The shared FaultInjector harness against a single-shard
    // cluster: a scripted one-byte rot in a stored segment must trip
    // per-stream verification (BadAuthentication), while the other
    // stream on the same shard stays verifiable — corruption is a
    // per-copy fault, not a store-wide verdict.
    BackupClusterConfig cfg;
    cfg.shards = 1;
    BackupCluster cluster(cfg);
    test::SegmentChain a("fi-a"), b("fi-b");
    cluster.attachDevice(0, a.codec());
    cluster.attachDevice(1, b.codec());
    Tick ack = 0;
    for (int i = 0; i < 3; i++) {
        ASSERT_TRUE(cluster.ingest(0, a.next(2, 128), 0, ack));
        ASSERT_TRUE(cluster.ingest(1, b.next(2, 128), 0, ack));
    }
    ASSERT_TRUE(cluster.shardStore(0).verifyFullChain());

    test::FaultInjector faults(cluster);
    faults.schedule(
        {.at = units::MS,
         .kind = test::ScriptedFault::Kind::CorruptSegment,
         .shard = 0,
         .stream = 0,
         .segmentIdx = 1});
    faults.advanceTo(0);
    EXPECT_EQ(faults.applied(), 0u); // not due yet
    faults.advanceTo(units::MS);
    ASSERT_EQ(faults.applied(), 1u);

    EXPECT_FALSE(cluster.shardStore(0).verifyStreamChain(0));
    EXPECT_TRUE(cluster.shardStore(0).verifyStreamChain(1));
    EXPECT_FALSE(cluster.shardStore(0).verifyFullChain());
}

} // namespace
} // namespace rssd::remote
