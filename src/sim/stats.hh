/**
 * @file
 * Lightweight statistics collection: counters, means, and a
 * log-bucketed latency histogram with percentile queries.
 */

#ifndef RSSD_SIM_STATS_HH
#define RSSD_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/units.hh"

namespace rssd {

/** Running mean / min / max / count over double-valued samples. */
class Summary
{
  public:
    void add(double v);
    void merge(const Summary &other);
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Latency histogram with logarithmic buckets (2 buckets per octave)
 * covering 1 ns .. ~16 s. Percentiles are answered from bucket
 * boundaries, which is accurate to within ~41% of the true value —
 * plenty for p50/p99 *comparisons* between configurations.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 72;

    void add(Tick latency_ns);
    void merge(const LatencyHistogram &other);
    void reset();

    std::uint64_t count() const { return _count; }
    double meanNs() const { return _count ? _sumNs / _count : 0.0; }
    Tick maxNs() const { return _maxNs; }

    /** Latency at percentile @p p (0 < p <= 100), in nanoseconds.
     *  p == 100 returns maxNs() exactly. */
    Tick percentileNs(double p) const;

    /** Render "mean=… p50=… p99=… max=…" for reports. */
    std::string summary() const;

    // Bucket mapping, public for property tests: for every Tick v,
    // v <= bucketUpperBound(bucketFor(v)) must hold (the last bucket
    // is a catch-all whose upper bound is the full Tick range).
    static int bucketFor(Tick v);
    static Tick bucketUpperBound(int b);

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t _count = 0;
    double _sumNs = 0.0;
    Tick _maxNs = 0;
};

/** Format a byte count as a human-readable string ("3.2 GiB"). */
std::string formatBytes(std::uint64_t bytes);

/** Format a tick count as a human-readable string ("12.4 ms"). */
std::string formatTime(Tick t);

} // namespace rssd

#endif // RSSD_SIM_STATS_HH
