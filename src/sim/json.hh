/**
 * @file
 * Minimal stable-byte JSON emission, shared by every report the
 * simulator renders (FleetReport, ForensicsReport, ...).
 *
 * Keys are emitted in call order, numbers via fixed printf formats,
 * so a document is byte-stable for identical report contents — the
 * property the golden-digest tests pin. One writer, one
 * well-formedness test (tests/sim/json_test.cc); report code never
 * hand-rolls commas again.
 *
 * Usage:
 *   std::string out;
 *   sim::JsonWriter j(out);
 *   j.open('{');
 *   j.key("answer"); j.u64(42);
 *   j.key("items"); j.open('[');
 *   j.elem(); j.str("a");
 *   j.elem(); j.str("b");
 *   j.close(']');
 *   j.close('}');
 */

#ifndef RSSD_SIM_JSON_HH
#define RSSD_SIM_JSON_HH

#include <cstdint>
#include <cstdio>
#include <string>

namespace rssd::sim {

class JsonWriter
{
  public:
    explicit JsonWriter(std::string &out) : out_(out) {}

    void
    raw(const char *s)
    {
        out_ += s;
    }

    void
    key(const char *name)
    {
        sep();
        out_ += '"';
        out_ += name;
        out_ += "\":";
        fresh_ = true;
    }

    void
    str(const std::string &v)
    {
        out_ += '"';
        for (char c : v) {
            if (c == '"' || c == '\\')
                out_ += '\\';
            if (static_cast<unsigned char>(c) >= 0x20)
                out_ += c;
        }
        out_ += '"';
        fresh_ = false; // a value ends the pair: next key needs ','
    }

    void
    u64(std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(v));
        out_ += buf;
        fresh_ = false;
    }

    void
    f64(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out_ += buf;
        fresh_ = false;
    }

    void
    boolean(bool v)
    {
        out_ += v ? "true" : "false";
        fresh_ = false;
    }

    void
    open(char c)
    {
        out_ += c;
        fresh_ = true;
    }

    void
    close(char c)
    {
        out_ += c;
        fresh_ = false;
    }

    /** Start an array/object element (comma management). */
    void
    elem()
    {
        sep();
        fresh_ = true;
    }

  private:
    void
    sep()
    {
        if (!fresh_)
            out_ += ',';
        fresh_ = false;
    }

    std::string &out_;
    bool fresh_ = true;
};

} // namespace rssd::sim

#endif // RSSD_SIM_JSON_HH
