/**
 * @file
 * Deterministic random number generation for workloads and attacks.
 *
 * We implement xoshiro256** directly (rather than using <random>
 * engines) so that traces are bit-identical across standard-library
 * implementations — experiment outputs must be reproducible.
 */

#ifndef RSSD_SIM_RNG_HH
#define RSSD_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace rssd {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded via
 * splitmix64. Deterministic across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Exponentially distributed double with mean @p mean. */
    double exponential(double mean);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n). Uses the classic
 * inverse-CDF table method: O(n) setup, O(log n) per sample. A skew
 * of 0 degenerates to uniform; ~0.99 matches typical block-trace
 * popularity skew.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     number of distinct items
     * @param skew  Zipf exponent (>= 0)
     */
    ZipfSampler(std::uint64_t n, double skew);

    /** Sample an item index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t size() const { return _n; }
    double skew() const { return _skew; }

  private:
    std::uint64_t _n;
    double _skew;
    std::vector<double> cdf_;
};

} // namespace rssd

#endif // RSSD_SIM_RNG_HH
