/**
 * @file
 * Virtual clock shared by every simulated component.
 *
 * RSSD uses latency accounting rather than a full discrete-event
 * simulator: components advance the shared clock by the service time
 * of each operation, and parallel resources (flash channels, the
 * Ethernet path) are modelled as per-resource "busy until" horizons.
 * This keeps the simulation deterministic and cheap while preserving
 * the throughput and latency *ratios* the paper's evaluation relies
 * on.
 */

#ifndef RSSD_SIM_CLOCK_HH
#define RSSD_SIM_CLOCK_HH

#include <algorithm>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace rssd {

/**
 * Monotonic virtual clock. One instance is shared (by reference)
 * across the SSD, network and remote-store models so that an
 * experiment has a single coherent timeline.
 */
class VirtualClock
{
  public:
    VirtualClock() = default;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Advance the clock by @p delta nanoseconds. */
    void
    advance(Tick delta)
    {
        _now += delta;
    }

    /**
     * Move the clock forward to an absolute time. Ignored if @p t is
     * in the past (a completion that has already been overtaken).
     */
    void
    advanceTo(Tick t)
    {
        _now = std::max(_now, t);
    }

    /** Reset to time zero (between experiments). */
    void reset() { _now = 0; }

  private:
    Tick _now = 0;
};

/**
 * A resource that can serve one operation at a time (a flash channel,
 * a DMA engine, the Ethernet MAC). Requests arriving while busy queue
 * behind the current horizon; the returned completion time reflects
 * the queueing delay.
 */
class BusyResource
{
  public:
    /**
     * Schedule a request of @p service_time starting no earlier than
     * @p arrival. @return the completion time.
     */
    Tick
    serve(Tick arrival, Tick service_time)
    {
        Tick start = std::max(arrival, _busyUntil);
        _busyUntil = start + service_time;
        return _busyUntil;
    }

    /** Earliest time the next request could start. */
    Tick busyUntil() const { return _busyUntil; }

    /** Total busy time accumulated (for utilization stats). */
    void reset() { _busyUntil = 0; }

  private:
    Tick _busyUntil = 0;
};

} // namespace rssd

#endif // RSSD_SIM_CLOCK_HH
