/**
 * @file
 * Size and time unit helpers used throughout the RSSD simulator.
 *
 * All simulated time is kept in integer nanoseconds (Tick) and all
 * sizes in bytes. These helpers exist so that configuration code reads
 * like the paper ("4 KiB page", "10 Gb/s link") instead of raw powers
 * of two.
 */

#ifndef RSSD_SIM_UNITS_HH
#define RSSD_SIM_UNITS_HH

#include <cstdint>

namespace rssd {

/** Simulated time, in nanoseconds. */
using Tick = std::uint64_t;

namespace units {

// -- Sizes (bytes) ---------------------------------------------------

constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;
constexpr std::uint64_t TiB = 1024ull * GiB;

// -- Times (ns) ------------------------------------------------------

constexpr Tick NS = 1ull;
constexpr Tick US = 1000ull * NS;
constexpr Tick MS = 1000ull * US;
constexpr Tick SEC = 1000ull * MS;
constexpr Tick MINUTE = 60ull * SEC;
constexpr Tick HOUR = 60ull * MINUTE;
constexpr Tick DAY = 24ull * HOUR;

/**
 * Transfer time of @p bytes over a link of @p gbps gigabits per
 * second, rounded up to a whole nanosecond.
 */
constexpr Tick
transferTimeNs(std::uint64_t bytes, double gbps)
{
    // bits / (gbps * 1e9 bits/s) seconds = bits / gbps ns.
    double ns = static_cast<double>(bytes) * 8.0 / gbps;
    return static_cast<Tick>(ns) + 1;
}

/** Convert a tick count to fractional seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(SEC);
}

/** Convert a tick count to fractional days. */
constexpr double
toDays(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(DAY);
}

/** Convert bytes to fractional MiB. */
constexpr double
toMiB(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / static_cast<double>(MiB);
}

/** Convert bytes to fractional GiB. */
constexpr double
toGiB(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / static_cast<double>(GiB);
}

} // namespace units
} // namespace rssd

#endif // RSSD_SIM_UNITS_HH
