#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace rssd {

void
Summary::add(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _count++;
    _sum += v;
}

void
Summary::merge(const Summary &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    _count += other._count;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

void
Summary::reset()
{
    *this = Summary();
}

int
LatencyHistogram::bucketFor(Tick v)
{
    if (v <= 1)
        return 0;
    // 2 buckets per octave: bucket = 2*log2(v) rounded down.
    const double lg = std::log2(static_cast<double>(v));
    int b = static_cast<int>(lg * 2.0);
    return std::min(b, kBuckets - 1);
}

Tick
LatencyHistogram::bucketUpperBound(int b)
{
    panicIf(b < 0 || b >= kBuckets, "bucket index out of range");
    // The last bucket absorbs everything bucketFor() clamped, so its
    // upper edge must cover the whole Tick range — 2^((b+1)/2) would
    // under-report any sample past ~2^36 ns.
    if (b == kBuckets - 1)
        return ~Tick{0};
    // Inverse of bucketFor: upper edge is 2^((b+1)/2).
    return static_cast<Tick>(std::ceil(std::pow(2.0, (b + 1) / 2.0)));
}

void
LatencyHistogram::add(Tick latency_ns)
{
    buckets_[bucketFor(latency_ns)]++;
    _count++;
    _sumNs += static_cast<double>(latency_ns);
    _maxNs = std::max(_maxNs, latency_ns);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (int i = 0; i < kBuckets; i++)
        buckets_[i] += other.buckets_[i];
    _count += other._count;
    _sumNs += other._sumNs;
    _maxNs = std::max(_maxNs, other._maxNs);
}

void
LatencyHistogram::reset()
{
    *this = LatencyHistogram();
}

Tick
LatencyHistogram::percentileNs(double p) const
{
    panicIf(p <= 0.0 || p > 100.0, "percentile out of range");
    if (_count == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(_count)));
    // A percentile that demands every sample is the max, exactly —
    // bucket upper bounds only ever over-approximate it.
    if (target >= _count)
        return _maxNs;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; i++) {
        seen += buckets_[i];
        if (seen >= target)
            return std::min(bucketUpperBound(i), _maxNs);
    }
    return _maxNs;
}

std::string
LatencyHistogram::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "mean=%s p50=%s p99=%s max=%s n=%llu",
                  formatTime(static_cast<Tick>(meanNs())).c_str(),
                  formatTime(percentileNs(50)).c_str(),
                  formatTime(percentileNs(99)).c_str(),
                  formatTime(_maxNs).c_str(),
                  static_cast<unsigned long long>(_count));
    return buf;
}

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[64];
    const double b = static_cast<double>(bytes);
    if (bytes >= units::TiB)
        std::snprintf(buf, sizeof(buf), "%.2f TiB", b / units::TiB);
    else if (bytes >= units::GiB)
        std::snprintf(buf, sizeof(buf), "%.2f GiB", b / units::GiB);
    else if (bytes >= units::MiB)
        std::snprintf(buf, sizeof(buf), "%.2f MiB", b / units::MiB);
    else if (bytes >= units::KiB)
        std::snprintf(buf, sizeof(buf), "%.2f KiB", b / units::KiB);
    else
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

std::string
formatTime(Tick t)
{
    char buf[64];
    const double v = static_cast<double>(t);
    if (t >= units::SEC)
        std::snprintf(buf, sizeof(buf), "%.3f s", v / units::SEC);
    else if (t >= units::MS)
        std::snprintf(buf, sizeof(buf), "%.3f ms", v / units::MS);
    else if (t >= units::US)
        std::snprintf(buf, sizeof(buf), "%.2f us", v / units::US);
    else
        std::snprintf(buf, sizeof(buf), "%llu ns",
                      static_cast<unsigned long long>(t));
    return buf;
}

} // namespace rssd
