#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace rssd {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the 256-bit state from splitmix64 as the xoshiro authors
    // recommend; guarantees a non-zero state for any seed.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    panicIf(bound == 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    panicIf(lo > hi, "Rng::between: lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 top bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    // Inverse CDF; clamp the uniform away from 0 to avoid log(0).
    double u = uniform();
    if (u < 1e-18)
        u = 1e-18;
    return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double skew)
    : _n(n), _skew(skew)
{
    panicIf(n == 0, "ZipfSampler: n == 0");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; i++) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    // Binary search for the first CDF entry >= u.
    std::uint64_t lo = 0, hi = _n - 1;
    while (lo < hi) {
        std::uint64_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace rssd
