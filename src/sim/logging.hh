/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated; abort.
 * fatal()  — the user configured something impossible; clean exit.
 * warn()   — something suspicious happened but simulation continues.
 * inform() — status messages.
 */

#ifndef RSSD_SIM_LOGGING_HH
#define RSSD_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace rssd {

namespace detail {

[[noreturn]] inline void
die(const char *kind, const char *msg, bool core_dump)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg);
    if (core_dump)
        std::abort();
    std::exit(1);
}

[[noreturn]] inline void
die(const char *kind, const std::string &msg, bool core_dump)
{
    die(kind, msg.c_str(), core_dump);
}

} // namespace detail

/**
 * Report an internal simulator bug and abort. Use when a condition
 * can only arise from a programming error, never from configuration.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    detail::die("panic", msg, true);
}

[[noreturn]] inline void
panic(const char *msg)
{
    detail::die("panic", msg, true);
}

/**
 * Report an unusable configuration or input and exit(1). Use when the
 * simulation cannot continue because of a user-provided value.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::die("fatal", msg, false);
}

/** Report a suspicious-but-survivable condition. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report ordinary status to the user. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/**
 * Abort with a message unless @p cond holds. Cheap enough to keep on:
 * the const char* overload keeps literal messages out of std::string
 * — hot paths (LZ tokens, segment fields, FTL ops) assert every few
 * bytes, and a >15-char literal would otherwise heap-allocate on
 * every single call.
 */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond) [[unlikely]]
        panic(msg);
}

inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond) [[unlikely]]
        panic(msg.c_str());
}

} // namespace rssd

#endif // RSSD_SIM_LOGGING_HH
