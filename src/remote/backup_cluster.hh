/**
 * @file
 * BackupCluster: the fleet-scale remote end of the NVMe-oE path — M
 * BackupStore shards behind a consistent-hash shard map, fed through
 * per-shard ingest queues with batching and bounded backpressure.
 *
 * Placement: each device stream hashes onto the ring once, at
 * attach time, and is pinned to its R ring successors (the replica
 * set) — segment chains are per stream and must stay verifiable on
 * every copy. Plain addShard() only affects devices attached
 * afterwards; the *membership* operations (joinShard / leaveShard)
 * rebalance attached streams by stream-granular migration, and a
 * migrated prefix is just a re-anchored chain (the source's signed
 * PruneRecord substitutes for anything the source itself pruned).
 *
 * Replication (ASPIS-style systematic duplication): every sealed
 * segment is offered to all live members of its stream's replica
 * set, and the device's ack fires at the write quorum
 * ceil((R+1)/2) — the quorum-th fastest replica ack. Below quorum
 * nothing is offered at all: the capsule stalls at the initiator
 * and is re-offered (never dropped, never half-written into a
 * minority), and a replica that already stored a re-offered tail
 * acks it idempotently, so partial writes converge on retry.
 *
 * Ingest model (virtual time, deterministic):
 *  - Each shard is a serial worker (BusyResource). A segment joins
 *    the shard's current ingest batch; a batch closes when the
 *    worker goes idle or the batch reaches batchSegments, and every
 *    batch pays batchOverhead once — so under backlog the effective
 *    batch grows and the per-segment cost amortizes, exactly the
 *    group-commit behavior of a real ingest tier.
 *  - Backpressure is bounded: at most maxPending segments may be
 *    queued per shard; an arrival beyond that is not admitted — the
 *    initiator holds the capsule and re-offers it every
 *    backpressureRetryDelay until a queue slot is free (credit-based
 *    flow control), so service starts only on a poll that finds a
 *    slot. Nothing is ever dropped, but a full queue genuinely
 *    delays the segment (the re-offer can land after the worker
 *    drained, leaving an idle gap), and the stall is visible to the
 *    device as ack latency — which is what turns shard hotspots into
 *    device-side offload backpressure.
 */

#ifndef RSSD_REMOTE_BACKUP_CLUSTER_HH
#define RSSD_REMOTE_BACKUP_CLUSTER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "remote/backup_store.hh"
#include "remote/shard_map.hh"
#include "sim/clock.hh"
#include "sim/stats.hh"

namespace rssd::remote {

/** A device's identity within the cluster (also its StreamId). */
using DeviceId = std::uint64_t;

struct BackupClusterConfig
{
    /** Initial shard count (shard ids 0..shards-1). */
    std::uint32_t shards = 4;

    /** Ring points per shard (placement smoothness). */
    std::uint32_t vnodesPerShard = 64;

    /** Per-shard store configuration (capacity is per shard). */
    BackupStoreConfig shard;

    /** Shard-worker verify+persist time per segment. */
    Tick perSegmentProcessing = 50 * units::US;

    /** Per-batch dispatch/group-commit overhead. */
    Tick batchOverhead = 200 * units::US;

    /** Segments per ingest batch before a new batch must open. */
    std::uint32_t batchSegments = 8;

    /** Bounded backpressure: max queued segments per shard. */
    std::uint32_t maxPending = 64;

    /** Re-offer interval while the shard queue is full. */
    Tick backpressureRetryDelay = 200 * units::US;

    /** Replica-set size R per device stream (1 = unreplicated).
     *  Write quorum is ceil((R+1)/2) = R/2 + 1. */
    std::uint32_t replication = 1;
};

/** Membership state of one shard. */
enum class ShardStatus : std::uint8_t {
    Live,     ///< on the ring, serving ingest and reads
    Departed, ///< left gracefully; streams migrated off first
    Crashed,  ///< failed; its replica copies are lost
};

const char *shardStatusName(ShardStatus s);

/** Cluster-wide replication and membership counters. */
struct ReplicationStats
{
    std::uint64_t quorumWrites = 0;  ///< acked at >= write quorum
    /** Quorum acks with at least one set member dead or refusing —
     *  the writes a later repair (rebalance) must reconcile. */
    std::uint64_t partialWrites = 0;
    /** Below-quorum arrivals: the capsule stalled at the initiator
     *  without being offered anywhere (never dropped). */
    std::uint64_t quorumStalls = 0;
    /** Offered but fewer than quorum replicas accepted. */
    std::uint64_t quorumFailures = 0;
    std::uint64_t streamsMigrated = 0;  ///< replica copies created
    std::uint64_t segmentsMigrated = 0;
    std::uint64_t bytesMigrated = 0;
    std::uint64_t migrationRejects = 0; ///< target refused a segment
};

/** Per-shard ingest statistics (the FleetReport's cluster view). */
struct ShardIngestStats
{
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t segmentsRejected = 0;
    /** Wire bytes of refused segments — rejected work is accounted
     *  apart from the ingest pipeline, never inside it. */
    std::uint64_t rejectedBytes = 0;
    std::uint64_t batches = 0;
    std::uint64_t backpressureStalls = 0;
    std::uint32_t maxBatchFill = 0;
    LatencyHistogram backlog; ///< ack_ready - arrival, accepted only
    LatencyHistogram rejectBacklog; ///< same, refused segments
    /** Queue-wait stage: service start - arrival, accepted only
     *  (admission stalls and worker backlog, before any verify or
     *  batch work). */
    LatencyHistogram queueWait;

    double
    meanBatchSegments() const
    {
        if (batches == 0)
            return 0.0;
        // Accepted only: refused segments never join a batch.
        return static_cast<double>(segmentsAccepted) /
               static_cast<double>(batches);
    }
};

/**
 * Anti-entropy hook: whoever registers as the cluster's repair
 * observer is told the moment a stream's replica set degrades — a
 * member crashed, or a scrub quarantined one of its copies. The
 * RepairEngine uses this to keep its repair queue exact instead of
 * rediscovering degradation by polling.
 */
class RepairObserver
{
  public:
    virtual ~RepairObserver() = default;
    virtual void streamDegraded(DeviceId device) = 0;
};

/** Per-stream replication health (degraded-set observability). */
struct StreamHealth
{
    std::uint32_t replicas = 0;    ///< configured R
    std::uint32_t live = 0;        ///< live members holding a copy
    std::uint32_t quarantined = 0; ///< live copies under quarantine
};

class BackupCluster
{
  public:
    explicit BackupCluster(const BackupClusterConfig &config);

    BackupCluster(const BackupCluster &) = delete;
    BackupCluster &operator=(const BackupCluster &) = delete;

    /**
     * Register @p device's stream (keyed by its codec) on its R
     * consistent-hash successor shards. @return the primary (first
     * replica) the stream is pinned to.
     */
    ShardId attachDevice(DeviceId device,
                         const log::SegmentCodec &codec);

    /** Primary shard of a device's replica set (panics if
     *  unattached). */
    ShardId shardOfDevice(DeviceId device) const;

    /** Pinned replica set of @p device, ring order (may include
     *  crashed members until the next rebalance repairs them). */
    const std::vector<ShardId> &replicaSetOf(DeviceId device) const;

    /** Live members of @p device's replica set, set order. */
    std::vector<ShardId> liveReplicasOf(DeviceId device) const;

    /** All attached devices, ascending id (deterministic). */
    std::vector<DeviceId> attachedDevices() const;

    /** Where a fresh (unpinned) key would land on the current ring. */
    ShardId placementOf(DeviceId device) const
    {
        return map_.shardOf(device);
    }

    /** Write quorum: R/2 + 1 acks before the device's ack fires. */
    std::uint32_t writeQuorum() const
    {
        return config_.replication / 2 + 1;
    }

    /**
     * Ingest one sealed segment from @p device into its replica
     * set.
     * @param arrive_at     wire delivery time at the cluster
     * @param ack_ready_at  out: when the write quorum was reached
     *                      (the quorum-th fastest replica ack), or
     *                      the retry horizon on a stall/failure
     * @return false if fewer than quorum replicas accepted — the
     *         initiator holds the capsule and re-offers it.
     */
    bool ingest(DeviceId device, const log::SealedSegment &segment,
                Tick arrive_at, Tick &ack_ready_at);

    /** Grow the cluster; affects only devices attached afterwards. */
    ShardId addShard();

    // -- Live membership --------------------------------------------------

    /**
     * Grow the cluster *and* rebalance attached streams onto the new
     * ring at time @p now: any stream whose replica set now includes
     * the joiner gets a migrated copy (chain re-anchored via the
     * source's PruneRecord when the source pruned), and replicas the
     * ring walk no longer names release their copy.
     */
    ShardId joinShard(Tick now);

    /**
     * Graceful departure: @p shard is taken off the ring, every
     * stream it replicates is migrated to the ring's replacement
     * members (the leaver itself serves as a migration source), and
     * the shard is marked Departed.
     */
    void leaveShard(ShardId shard, Tick now);

    /**
     * Fail-stop crash: @p shard drops off the ring with *no*
     * migration — its replica copies are lost. Replica sets keep
     * the dead member until a rebalance()/joinShard() repairs them;
     * until then quorum is counted against the surviving members.
     */
    void crashShard(ShardId shard);

    /** Re-pin every attached stream to its R successors on the
     *  current ring, migrating copies as needed (membership repair). */
    void rebalance(Tick now);

    ShardStatus shardStatus(ShardId shard) const;
    bool shardAlive(ShardId shard) const
    {
        return shardStatus(shard) == ShardStatus::Live;
    }
    std::uint32_t liveShardCount() const;

    /**
     * First live replica of @p device whose stored chain verifies
     * end to end — the read-side vote winner recovery and forensics
     * should source from. Quarantined copies are passed over (the
     * scrub already voted them suspect); falls back to the first
     * live non-quarantined replica when none verifies, then to any
     * live holder, and kNoShard when the whole set is dead.
     */
    ShardId chainVerifyingReplicaOf(DeviceId device) const;

    const ReplicationStats &replicationStats() const
    {
        return repl_;
    }

    /** Quorum-wait stage: quorum ack - arrival, successful ingests
     *  cluster-wide. */
    const LatencyHistogram &quorumWait() const { return quorumWait_; }

    // -- Observability ----------------------------------------------------

    /**
     * Attach a trace sink (nullptr detaches): queue-wait/ingest/
     * reject spans and batch-open instants per shard, quorum spans
     * and capsule flow ends cluster-wide, GC-prune instants from the
     * shard stores. Read-only — never perturbs ingest state.
     */
    void attachTrace(obs::TraceSink *sink);

    /** Register cluster- and per-shard instruments under @p prefix
     *  (per-shard names are prefix + "shard.<id>."). Covers shards
     *  existing now; later joiners are not retro-registered. */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    // -- Anti-entropy repair (RepairEngine hooks) -------------------------

    /** Register the repair observer (one at most; nullptr clears). */
    void setRepairObserver(RepairObserver *observer);

    /** Replication health of @p device's stream right now. */
    StreamHealth streamHealth(DeviceId device) const;

    /**
     * Devices whose replica sets are degraded: fewer live copies
     * than the ring can currently support (min(R, live shards)) or
     * any copy under quarantine. Ascending id (deterministic). This
     * is the repair debt PR 6 left visible only implicitly.
     */
    std::vector<DeviceId> degradedStreams() const;

    /** Quarantined copies across all live shards. */
    std::uint64_t quarantinedCopies() const;

    /** True if @p shard's copy of @p device is quarantined. */
    bool copyQuarantined(ShardId shard, DeviceId device) const;

    /**
     * Scrub verdict: mark @p shard's copy of @p device suspect.
     * Readers fail over to another replica and the repair observer
     * is notified so the copy gets rebuilt from a healthy source.
     */
    void quarantineCopy(ShardId shard, DeviceId device);

    /** Ring-successor set repair should converge @p device onto
     *  (crashed members are already off the ring). */
    std::vector<ShardId> repairTargetsOf(DeviceId device) const;

    /** Register a fresh (empty) repair copy of @p device on
     *  @p target. The copy is invisible to foreground quorum writes
     *  until commitReplicaSet() publishes it. */
    void beginRepairCopy(DeviceId device, ShardId target);

    /** Drop @p shard's copy of @p device (quarantine rebuild, or a
     *  restart after a prune overtook the copy's tail). */
    void dropCopy(ShardId shard, DeviceId device);

    /** Seed a fresh repair copy's chain state from the source's
     *  signed prune record (resumeFrom() semantics). */
    void adoptPruneRecordOn(ShardId target, DeviceId device,
                            const log::PruneRecord &record);

    /**
     * Repair-path ingest: offer one verbatim sealed segment to
     * @p target's ingest queue at @p arrive_at. Unlike migration's
     * direct store copy, this runs the full admission/batching/
     * backpressure model — repair traffic and foreground quorum
     * writes contend on the same shard worker, deterministically.
     */
    bool repairIngest(ShardId target, DeviceId device,
                      const log::SealedSegment &segment, Tick arrive_at,
                      Tick &ack_ready_at);

    /** Publish @p device's repaired replica set (ring order) and
     *  release copies on live members the set no longer names. */
    void commitReplicaSet(DeviceId device, std::vector<ShardId> set);

    // -- Fault injection (tests) ------------------------------------------

    /** Extra per-segment service latency on @p shard (scripted
     *  slow-replica fault). */
    void setShardDelay(ShardId shard, Tick extra);

    /** Mutable store access for scripted fault injection (segment
     *  corruption, split-brain divergence). Not a data-path API. */
    BackupStore &mutableShardStore(ShardId shard);

    // -- Retention lifecycle ----------------------------------------------

    /**
     * Suspicion-aware eviction hold on @p device's stream (forwarded
     * to the shard it is pinned to). The fleet layer flags a stream
     * the moment one of the device's detectors alarms, so capacity
     * pressure cannot flood a victim's evidence out of the window.
     */
    void setEvictionHold(DeviceId device, bool held);
    bool evictionHold(DeviceId device) const;

    /** Run retention GC on every shard at time @p now (ingest also
     *  triggers it per arrival; this is the operator sweep). */
    void runRetentionGc(Tick now);

    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    const BackupStore &shardStore(ShardId shard) const;
    const ShardIngestStats &shardStats(ShardId shard) const;

    /**
     * Ingest segments admitted on @p shard whose service has not
     * completed by the shard's latest arrival (the admission-window
     * backlog; pruned lazily at arrivals, so this is an upper bound
     * between them). 0 for non-live shards.
     */
    std::uint64_t pendingDepth(ShardId shard) const;

    /** Deepest pendingDepth() across live shards — the health
     *  layer's shard-backlog signal. */
    std::uint64_t pendingDepthMax() const;

    /** segmentsRejected summed over every shard (dead included). */
    std::uint64_t totalSegmentsRejected() const;

    /** Devices pinned to @p shard (attachment order). */
    const std::vector<DeviceId> &shardDevices(ShardId shard) const;

    /** verifyFullChain() across every shard. */
    bool verifyAll() const;

    std::uint64_t totalSegments() const;
    std::uint64_t totalUsedBytes() const;

    const BackupClusterConfig &config() const { return config_; }

  private:
    struct Shard
    {
        std::unique_ptr<BackupStore> store;
        BusyResource worker;
        std::deque<Tick> inflight; ///< completion times, FIFO
        Tick lastArrive = 0;       ///< per-shard monotonic arrivals
        std::uint32_t batchFill = 0;
        /** When the open batch's accepted work finishes. Rejected
         *  segments occupy the worker but never a batch, so batch
         *  continuity is tracked apart from worker busyness. */
        Tick batchEnd = 0;
        std::vector<DeviceId> devices;
        ShardIngestStats stats;
        ShardStatus status = ShardStatus::Live;
        Tick extraDelay = 0; ///< injected slow-replica latency
    };

    Shard &shardAt(ShardId shard);
    const Shard &shardAt(ShardId shard) const;
    void makeShard();

    /** One replica's ingest queue model (admission, batching,
     *  reject-only service) — the pre-replication ingest() body. */
    bool shardIngest(ShardId sid, Shard &sh, DeviceId device,
                     const log::SealedSegment &segment, Tick arrive_at,
                     Tick &ack_ready_at);

    /** Copy @p device's stream onto @p target from the best live
     *  source in @p replicas (prune record first, then sealed
     *  segments verbatim — never resealed). */
    void migrateStream(DeviceId device,
                       const std::vector<ShardId> &replicas,
                       ShardId target, Tick now);

    BackupClusterConfig config_;
    ShardMap map_;
    std::vector<Shard> shards_;
    /** Pinned replica sets (device -> R shards), ring order. */
    std::map<DeviceId, std::vector<ShardId>> placement_;
    /** Attach-time codec registry: migration re-registers a stream
     *  on new replicas, including after total source loss. */
    std::map<DeviceId, log::SegmentCodec> codecs_;
    ReplicationStats repl_;
    LatencyHistogram quorumWait_;
    RepairObserver *repairObserver_ = nullptr;
    obs::TraceSink *trace_ = nullptr;
};

/**
 * Per-device CapsuleTarget adapter: carries the device identity the
 * wire protocol itself does not (the sealed-segment format predates
 * the fleet and must stay byte-stable), so a device-owned
 * NvmeOeTransport can point at a shared cluster unchanged.
 */
class ClusterPortal : public net::CapsuleTarget
{
  public:
    ClusterPortal(BackupCluster &cluster, DeviceId device)
        : cluster_(cluster), device_(device)
    {
    }

    bool
    ingestSegment(const log::SealedSegment &segment, Tick arrive_at,
                  Tick &ack_ready_at) override
    {
        return cluster_.ingest(device_, segment, arrive_at,
                               ack_ready_at);
    }

    DeviceId device() const { return device_; }

  private:
    BackupCluster &cluster_;
    DeviceId device_;
};

} // namespace rssd::remote

#endif // RSSD_REMOTE_BACKUP_CLUSTER_HH
