/**
 * @file
 * BackupCluster: the fleet-scale remote end of the NVMe-oE path — M
 * BackupStore shards behind a consistent-hash shard map, fed through
 * per-shard ingest queues with batching and bounded backpressure.
 *
 * Placement: each device stream hashes onto the ring once, at
 * attach time, and is then *pinned* — segment chains are per stream
 * and must land on one shard to stay verifiable, so later shard
 * additions only affect devices attached afterwards (the stickiness
 * a real deployment gets from stream-granular data migration).
 *
 * Ingest model (virtual time, deterministic):
 *  - Each shard is a serial worker (BusyResource). A segment joins
 *    the shard's current ingest batch; a batch closes when the
 *    worker goes idle or the batch reaches batchSegments, and every
 *    batch pays batchOverhead once — so under backlog the effective
 *    batch grows and the per-segment cost amortizes, exactly the
 *    group-commit behavior of a real ingest tier.
 *  - Backpressure is bounded: at most maxPending segments may be
 *    queued per shard; an arrival beyond that is not admitted — the
 *    initiator holds the capsule and re-offers it every
 *    backpressureRetryDelay until a queue slot is free (credit-based
 *    flow control), so service starts only on a poll that finds a
 *    slot. Nothing is ever dropped, but a full queue genuinely
 *    delays the segment (the re-offer can land after the worker
 *    drained, leaving an idle gap), and the stall is visible to the
 *    device as ack latency — which is what turns shard hotspots into
 *    device-side offload backpressure.
 */

#ifndef RSSD_REMOTE_BACKUP_CLUSTER_HH
#define RSSD_REMOTE_BACKUP_CLUSTER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "remote/backup_store.hh"
#include "remote/shard_map.hh"
#include "sim/clock.hh"
#include "sim/stats.hh"

namespace rssd::remote {

/** A device's identity within the cluster (also its StreamId). */
using DeviceId = std::uint64_t;

struct BackupClusterConfig
{
    /** Initial shard count (shard ids 0..shards-1). */
    std::uint32_t shards = 4;

    /** Ring points per shard (placement smoothness). */
    std::uint32_t vnodesPerShard = 64;

    /** Per-shard store configuration (capacity is per shard). */
    BackupStoreConfig shard;

    /** Shard-worker verify+persist time per segment. */
    Tick perSegmentProcessing = 50 * units::US;

    /** Per-batch dispatch/group-commit overhead. */
    Tick batchOverhead = 200 * units::US;

    /** Segments per ingest batch before a new batch must open. */
    std::uint32_t batchSegments = 8;

    /** Bounded backpressure: max queued segments per shard. */
    std::uint32_t maxPending = 64;

    /** Re-offer interval while the shard queue is full. */
    Tick backpressureRetryDelay = 200 * units::US;
};

/** Per-shard ingest statistics (the FleetReport's cluster view). */
struct ShardIngestStats
{
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t segmentsRejected = 0;
    /** Wire bytes of refused segments — rejected work is accounted
     *  apart from the ingest pipeline, never inside it. */
    std::uint64_t rejectedBytes = 0;
    std::uint64_t batches = 0;
    std::uint64_t backpressureStalls = 0;
    std::uint32_t maxBatchFill = 0;
    LatencyHistogram backlog; ///< ack_ready - arrival, accepted only
    LatencyHistogram rejectBacklog; ///< same, refused segments

    double
    meanBatchSegments() const
    {
        if (batches == 0)
            return 0.0;
        // Accepted only: refused segments never join a batch.
        return static_cast<double>(segmentsAccepted) /
               static_cast<double>(batches);
    }
};

class BackupCluster
{
  public:
    explicit BackupCluster(const BackupClusterConfig &config);

    BackupCluster(const BackupCluster &) = delete;
    BackupCluster &operator=(const BackupCluster &) = delete;

    /**
     * Register @p device's stream (keyed by its codec) on its
     * consistent-hash shard. @return the shard the stream is pinned
     * to.
     */
    ShardId attachDevice(DeviceId device,
                         const log::SegmentCodec &codec);

    /** Shard a device's stream is pinned to (panics if unattached). */
    ShardId shardOfDevice(DeviceId device) const;

    /** Where a fresh (unpinned) key would land on the current ring. */
    ShardId placementOf(DeviceId device) const
    {
        return map_.shardOf(device);
    }

    /**
     * Ingest one sealed segment from @p device.
     * @param arrive_at     wire delivery time at the cluster
     * @param ack_ready_at  out: when the shard finished processing
     * @return false if the shard store rejected the segment.
     */
    bool ingest(DeviceId device, const log::SealedSegment &segment,
                Tick arrive_at, Tick &ack_ready_at);

    /** Grow the cluster; affects only devices attached afterwards. */
    ShardId addShard();

    // -- Retention lifecycle ----------------------------------------------

    /**
     * Suspicion-aware eviction hold on @p device's stream (forwarded
     * to the shard it is pinned to). The fleet layer flags a stream
     * the moment one of the device's detectors alarms, so capacity
     * pressure cannot flood a victim's evidence out of the window.
     */
    void setEvictionHold(DeviceId device, bool held);
    bool evictionHold(DeviceId device) const;

    /** Run retention GC on every shard at time @p now (ingest also
     *  triggers it per arrival; this is the operator sweep). */
    void runRetentionGc(Tick now);

    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    const BackupStore &shardStore(ShardId shard) const;
    const ShardIngestStats &shardStats(ShardId shard) const;

    /** Devices pinned to @p shard (attachment order). */
    const std::vector<DeviceId> &shardDevices(ShardId shard) const;

    /** verifyFullChain() across every shard. */
    bool verifyAll() const;

    std::uint64_t totalSegments() const;
    std::uint64_t totalUsedBytes() const;

    const BackupClusterConfig &config() const { return config_; }

  private:
    struct Shard
    {
        std::unique_ptr<BackupStore> store;
        BusyResource worker;
        std::deque<Tick> inflight; ///< completion times, FIFO
        Tick lastArrive = 0;       ///< per-shard monotonic arrivals
        std::uint32_t batchFill = 0;
        /** When the open batch's accepted work finishes. Rejected
         *  segments occupy the worker but never a batch, so batch
         *  continuity is tracked apart from worker busyness. */
        Tick batchEnd = 0;
        std::vector<DeviceId> devices;
        ShardIngestStats stats;
    };

    Shard &shardAt(ShardId shard);
    const Shard &shardAt(ShardId shard) const;
    void makeShard();

    BackupClusterConfig config_;
    ShardMap map_;
    std::vector<Shard> shards_;
    /** Pinned placements (device -> shard), attach-time snapshot. */
    std::map<DeviceId, ShardId> placement_;
};

/**
 * Per-device CapsuleTarget adapter: carries the device identity the
 * wire protocol itself does not (the sealed-segment format predates
 * the fleet and must stay byte-stable), so a device-owned
 * NvmeOeTransport can point at a shared cluster unchanged.
 */
class ClusterPortal : public net::CapsuleTarget
{
  public:
    ClusterPortal(BackupCluster &cluster, DeviceId device)
        : cluster_(cluster), device_(device)
    {
    }

    bool
    ingestSegment(const log::SealedSegment &segment, Tick arrive_at,
                  Tick &ack_ready_at) override
    {
        return cluster_.ingest(device_, segment, arrive_at,
                               ack_ready_at);
    }

    DeviceId device() const { return device_; }

  private:
    BackupCluster &cluster_;
    DeviceId device_;
};

} // namespace rssd::remote

#endif // RSSD_REMOTE_BACKUP_CLUSTER_HH
