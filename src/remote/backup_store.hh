/**
 * @file
 * The remote cloud/storage-server endpoint of the NVMe-oE path.
 *
 * An append-only store of sealed segments. Ingest enforces the trust
 * properties the paper's post-attack analysis relies on:
 *   - HMAC authenticity (only the paired device key seals segments),
 *   - strict segment ordering (each segment must name the previous
 *     segment id and extend its log-chain digest),
 *   - capacity budgeting (the knob behind Figure 2's retention time).
 *
 * The host-visible contract is append-only: ransomware that owns the
 * host OS has no path to the store (hardware isolation), and even the
 * device can only append. The *operator-side* retention lifecycle is
 * the one exception: with GC enabled, the store itself expires the
 * oldest sealed segments of a stream past the retention window (age)
 * or under capacity pressure (watermarks), exactly the Figure 2
 * trade-off — retention time = remote capacity / ingest rate. Every
 * prune re-anchors the stream with a signed PruneRecord so the
 * surviving suffix still verifies, and eviction is suspicion-aware:
 * detector-flagged streams carry eviction holds, and per-stream
 * quotas stop one flooding tenant from consuming its neighbours'
 * retention windows (the flooder can only shorten its *own* window
 * to quota / ingest-rate — never a victim's).
 *
 * Multiplexing: a store serves one *or many* device streams. Chain
 * state (last segment id, chain tail) and the verification codec are
 * kept per stream, never globally — a fleet of devices sharing one
 * shard cannot splice segments into each other's histories, and one
 * device's chain violation leaves every other stream ingestable. The
 * single-device constructor registers its codec as stream 0, so the
 * legacy one-client API is the one-stream special case.
 */

#ifndef RSSD_REMOTE_BACKUP_STORE_HH
#define RSSD_REMOTE_BACKUP_STORE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "log/chain_verify.hh"
#include "log/segment.hh"
#include "net/transport.hh"
#include "obs/trace.hh"

namespace rssd::remote {

/** Identifies one device's segment stream within a shared store. */
using StreamId = std::uint64_t;

/** The stream the single-device API reads and writes. */
constexpr StreamId kDefaultStream = 0;

/** Why the most recent ingest was rejected. */
enum class RejectReason : std::uint8_t {
    None,
    BadAuthentication, ///< HMAC or CRC mismatch
    ChainViolation,    ///< out-of-order or spliced segment
    CapacityExceeded,  ///< remote budget exhausted
    UnknownStream,     ///< no key registered for the stream
};

const char *rejectReasonName(RejectReason r);

/**
 * Retention-window GC policy. Disabled by default: the store then
 * behaves exactly like the original append-forever budget (ingest is
 * rejected with CapacityExceeded once the budget is exhausted).
 */
struct RetentionPolicy
{
    /** Master switch for both age- and watermark-driven expiry. */
    bool gcEnabled = false;

    /** Age horizon: a segment older than this (by ingest arrival
     *  time) is expired on the next GC pass. 0 = no age expiry. */
    Tick retentionWindow = 0;

    /** Pressure eviction triggers above this occupancy fraction
     *  (and always when an arrival would overflow the budget)... */
    double gcHighWater = 0.90;

    /** ...and prunes oldest-first down to this fraction. */
    double gcLowWater = 0.75;

    /**
     * Per-stream quota as a multiple of the fair share
     * (capacityBytes / registered streams). Pressure eviction takes
     * from the most over-quota stream first — even a held one: the
     * hold protects a flagged stream's evidence only up to its
     * quota, so a flooding attacker can shorten its own retention
     * window but never starve its neighbours'. Keep this at or
     * below gcHighWater: then occupancy above the high watermark
     * implies (pigeonhole) some stream is over quota, so pressure
     * eviction always makes progress and ingest can never deadlock
     * against a fully-held tenant set. <= 0 disables quota
     * targeting (pressure eviction is then globally oldest-first
     * over unheld streams only, and a fully-held store can
     * legitimately fill up).
     */
    double streamQuotaFraction = 0.85;
};

/** Store configuration. */
struct BackupStoreConfig
{
    /** Remote capacity budget in bytes (sealed wire bytes: header +
     *  payload, i.e. SealedSegment::wireSize()). */
    std::uint64_t capacityBytes = 4ull * units::TiB;

    /** Per-segment server-side processing (verify + persist). */
    Tick processingTime = 50 * units::US;

    /** Retention lifecycle (off by default). */
    RetentionPolicy retention;
};

/** Ingest/verification counters. */
struct BackupStoreStats
{
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t segmentsRejected = 0;
    /** Re-offers of the stream's current tail segment, acked without
     *  storing twice (replicated ingest converges through these). */
    std::uint64_t duplicateSegments = 0;
    std::uint64_t bytesStored = 0;
    std::uint64_t pagesStored = 0;
    std::uint64_t entriesStored = 0;

    // -- Retention GC ---------------------------------------------------
    std::uint64_t segmentsPruned = 0;
    std::uint64_t bytesPruned = 0;   ///< wire bytes freed by GC
    std::uint64_t entriesPruned = 0; ///< log entries expired with them
    std::uint64_t agePrunes = 0;     ///< segments expired by window
    std::uint64_t pressurePrunes = 0;///< segments evicted by watermark
};

/**
 * The backup store. Holds *sealed* segments; opening them (for
 * recovery and analysis) requires the shared device key, which the
 * operator supplies out of band.
 */
class BackupStore : public net::CapsuleTarget
{
  public:
    /** Single-device store: @p codec is registered as stream 0. */
    BackupStore(const BackupStoreConfig &config,
                const log::SegmentCodec &codec);

    /** Multi-stream store (cluster shard): starts with no streams;
     *  every device key arrives via registerStream(). */
    explicit BackupStore(const BackupStoreConfig &config);

    /**
     * Admit another device stream, pairing it with the codec derived
     * from that device's key. Registration is the out-of-band key
     * exchange of the paper's deployment model; ingest into an
     * unregistered stream is rejected, never trusted.
     */
    void registerStream(StreamId stream, const log::SegmentCodec &codec);
    bool hasStream(StreamId stream) const;

    // -- net::CapsuleTarget -------------------------------------------

    /** Single-device path: ingest into stream 0. */
    bool ingestSegment(const log::SealedSegment &segment, Tick arrive_at,
                       Tick &ack_ready_at) override;

    /** Multiplexed path: ingest into @p stream. */
    bool ingestSegment(StreamId stream, const log::SealedSegment &segment,
                       Tick arrive_at, Tick &ack_ready_at);

    // -- Retention GC ------------------------------------------------------

    /**
     * Run the retention lifecycle at time @p now: expire segments
     * older than the retention window, then (if occupancy is above
     * the high watermark) evict under pressure down to the low
     * watermark. Ingest runs this automatically on every arrival;
     * the public entry point exists for operators, benches and
     * tests. No-op unless the policy enables GC.
     */
    void runRetentionGc(Tick now);

    /**
     * Suspicion-aware eviction hold: while held, a stream is exempt
     * from age expiry and from oldest-first pressure eviction (the
     * over-quota backstop still applies — see RetentionPolicy).
     * Detectors flag a stream the moment they alarm; the hold keeps
     * the pre-attack evidence inside the window until forensics and
     * recovery have run.
     */
    void setEvictionHold(StreamId stream, bool held);
    bool evictionHold(StreamId stream) const;
    std::uint64_t heldStreams() const;

    /** Signed re-anchor record of @p stream, nullptr if never
     *  pruned. Cumulative across prunes (at most one per stream). */
    const log::PruneRecord *pruneRecordOf(StreamId stream) const;

    // -- Replication / migration ------------------------------------------

    /**
     * Adopt a signed prune record as @p stream's chain anchor. This
     * is the migration primitive: a replica receiving a stream whose
     * source already pruned its prefix does not need the pruned
     * segments — the record substitutes for them exactly as it does
     * for verification (resumeFrom()), so the migrated suffix is
     * just a re-anchored chain. The record's signature is verified
     * with the stream's registered codec; adoption is only legal on
     * a stream with no history yet (fresh replica).
     */
    void adoptPruneRecord(StreamId stream,
                          const log::PruneRecord &record);

    /**
     * Drop @p stream entirely: free its stored segments and forget
     * its chain state and registration. This is migration-out, not
     * retention GC — the data lives on elsewhere, so nothing is
     * counted as pruned and no prune record is produced.
     */
    void releaseStream(StreamId stream);

    /** Chain-state summary used for replica tail voting. */
    struct StreamTail
    {
        std::uint64_t lastId = log::kNoSegment;
        crypto::Digest chainTail{};
        bool haveTail = false;

        bool
        operator==(const StreamTail &o) const
        {
            return lastId == o.lastId && haveTail == o.haveTail &&
                   (!haveTail || chainTail == o.chainTail);
        }
    };
    StreamTail streamTail(StreamId stream) const;

    /** verifyFullChain() for a single stream. */
    bool verifyStreamChain(StreamId stream) const;

    /**
     * Fault injection (tests only): flip one byte in the @p k-th
     * live stored segment of @p stream, simulating silent replica
     * corruption. The chain metadata is untouched, so only payload
     * verification catches it — exactly the fault voting reads
     * around.
     */
    void corruptStoredSegment(StreamId stream, std::uint64_t k);

    /**
     * Bit-rot fault (tests / fault harness): flip @p byte_count
     * payload bytes starting at @p first_byte (clamped to the
     * payload) in the @p k-th live stored segment of @p stream. The
     * tail metadata — segment ids, anchors, the stream's chain tail
     * — is untouched, so ingest keeps flowing and tail votes still
     * agree; only a payload (HMAC) verification of the stored copy
     * catches it. This is exactly the silent corruption integrity
     * scrubbing exists to find.
     */
    void injectBitRot(StreamId stream, std::uint64_t k,
                      std::size_t first_byte, std::size_t byte_count);

    // -- Quarantine (anti-entropy scrub) -----------------------------------

    /**
     * Mark this store's copy of @p stream as quarantined: the scrub
     * found it corrupt (or diverged from the replica majority), so
     * readers must prefer another replica and the repair engine will
     * rebuild the copy from a healthy source. Quarantine is a
     * per-copy verdict — dropping and re-registering the stream
     * (the rebuild) clears it.
     */
    void setQuarantined(StreamId stream, bool quarantined);
    bool quarantined(StreamId stream) const;

    /** Streams of this store currently under quarantine. */
    std::uint64_t quarantinedStreams() const;

    /** Cumulative segments pruned from @p stream. */
    std::uint64_t prunedSegments(StreamId stream) const;

    /** Wire bytes @p stream currently occupies. */
    std::uint64_t streamLiveBytes(StreamId stream) const;

    /** Current per-stream quota in bytes (~0ull when disabled). */
    std::uint64_t streamQuotaBytes() const;

    // -- Recovery / analysis side ----------------------------------------

    /** Storage slots allocated, dense from 0 (arrival order until
     *  the retention GC recycles a tombstoned slot for a later
     *  arrival — see segmentPruned()). Memory is bounded by the
     *  capacity budget, not by segments ever ingested. */
    std::size_t segmentCount() const { return segments_.size(); }

    /** Segments currently stored (accepted minus pruned). */
    std::uint64_t liveSegmentCount() const { return liveSegments_; }

    const std::vector<log::SealedSegment> &segments() const
    {
        return segments_;
    }

    /** True if storage slot @p idx was expired by retention GC. */
    bool segmentPruned(std::uint64_t idx) const;

    /** Sealed segment by storage index (dense from 0, arrival
     *  order). panic()s on a pruned slot. */
    const log::SealedSegment &sealedSegment(std::uint64_t idx) const;

    /** Stream that stored segment @p idx belongs to. */
    StreamId streamOf(std::uint64_t idx) const;

    /** Open (decrypt + decompress) a stored segment. */
    log::Segment openSegment(std::uint64_t idx) const;

    std::size_t streamCount() const { return streams_.size(); }

    /** All registered stream ids, ascending (deterministic). */
    std::vector<StreamId> streamIds() const;

    /** Storage indices of @p stream's segments, in chain order.
     *  A deque: retention GC prunes from the front in O(1). */
    const std::deque<std::uint32_t> &
    streamSegments(StreamId stream) const;

    /**
     * Verification codec registered for @p stream. The trusted
     * analysis host reads evidence where it lives; the codec it
     * verifies with is the one the out-of-band key exchange
     * registered at attach time.
     */
    const log::SegmentCodec &streamCodec(StreamId stream) const;

    /**
     * Verify the entire stored history: every HMAC, each stream's
     * segment chain, and the per-entry log hash chain across segment
     * boundaries. @return true iff the evidence chain is intact.
     */
    bool verifyFullChain() const;

    /** Bytes of remote budget consumed. */
    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t capacityBytes() const
    {
        return config_.capacityBytes;
    }

    RejectReason lastRejectReason() const { return lastReject_; }
    const BackupStoreStats &stats() const { return stats_; }

    /** Observability: retention prunes emit tick-stamped instants on
     *  the cluster track; @p tid is the owning shard's trace lane.
     *  A null sink detaches (tracing is read-only either way). */
    void
    attachTrace(obs::TraceSink *sink, std::uint64_t tid)
    {
        trace_ = sink;
        traceTid_ = tid;
    }

  private:
    /** Per-stream chain state — the fix for the former single-client
     *  globals (one lastId/chainTail for the whole store). */
    struct StreamState
    {
        log::SegmentCodec codec;
        std::uint64_t lastId = log::kNoSegment;
        crypto::Digest chainTail{};
        bool haveTail = false;
        std::deque<std::uint32_t> stored; ///< live storage indices

        // -- Retention state ---------------------------------------------
        std::optional<log::PruneRecord> prune;
        bool evictionHold = false;
        std::uint64_t liveBytes = 0; ///< wire bytes currently stored

        // -- Anti-entropy state ------------------------------------------
        bool quarantined = false; ///< scrub verdict: copy is suspect

        explicit StreamState(const log::SegmentCodec &c) : codec(c) {}
    };

    bool reject(RejectReason why);

    /** Tombstone the oldest stored segment of @p st, re-signing the
     *  stream's prune record. @p pressure selects the stats bucket. */
    void pruneOldest(StreamId stream, StreamState &st, Tick now,
                     bool pressure);

    /** Age-based expiry over all unheld streams. */
    void expireByAge(Tick now);

    /** Watermark eviction: free space until @p incoming_bytes fits
     *  under the low watermark (or nothing prunable remains). */
    void evictUnderPressure(Tick now, std::uint64_t incoming_bytes);

    BackupStoreConfig config_;
    /** Ordered map: verifyFullChain() iterates streams
     *  deterministically (fleet reports are byte-reproducible). */
    std::map<StreamId, StreamState> streams_;
    std::vector<log::SealedSegment> segments_;
    std::vector<StreamId> segmentStream_; ///< parallel to segments_
    std::vector<Tick> segmentArrival_;    ///< parallel to segments_
    std::vector<std::uint8_t> segmentPruned_; ///< parallel tombstones
    std::vector<std::uint32_t> freeSlots_; ///< tombstones to recycle
    std::uint64_t liveSegments_ = 0;
    std::uint64_t used_ = 0;
    RejectReason lastReject_ = RejectReason::None;
    BackupStoreStats stats_;
    obs::TraceSink *trace_ = nullptr;
    std::uint64_t traceTid_ = 0;
};

} // namespace rssd::remote

#endif // RSSD_REMOTE_BACKUP_STORE_HH
