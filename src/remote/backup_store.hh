/**
 * @file
 * The remote cloud/storage-server endpoint of the NVMe-oE path.
 *
 * An append-only store of sealed segments. Ingest enforces the trust
 * properties the paper's post-attack analysis relies on:
 *   - HMAC authenticity (only the paired device key seals segments),
 *   - strict segment ordering (each segment must name the previous
 *     segment id and extend its log-chain digest),
 *   - capacity budgeting (the knob behind Figure 2's retention time).
 *
 * The store never deletes or rewrites a segment — ransomware that
 * owns the host OS has no path to it (hardware isolation), and even
 * the device can only append.
 *
 * Multiplexing: a store serves one *or many* device streams. Chain
 * state (last segment id, chain tail) and the verification codec are
 * kept per stream, never globally — a fleet of devices sharing one
 * shard cannot splice segments into each other's histories, and one
 * device's chain violation leaves every other stream ingestable. The
 * single-device constructor registers its codec as stream 0, so the
 * legacy one-client API is the one-stream special case.
 */

#ifndef RSSD_REMOTE_BACKUP_STORE_HH
#define RSSD_REMOTE_BACKUP_STORE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "log/chain_verify.hh"
#include "log/segment.hh"
#include "net/transport.hh"

namespace rssd::remote {

/** Identifies one device's segment stream within a shared store. */
using StreamId = std::uint64_t;

/** The stream the single-device API reads and writes. */
constexpr StreamId kDefaultStream = 0;

/** Why the most recent ingest was rejected. */
enum class RejectReason : std::uint8_t {
    None,
    BadAuthentication, ///< HMAC or CRC mismatch
    ChainViolation,    ///< out-of-order or spliced segment
    CapacityExceeded,  ///< remote budget exhausted
    UnknownStream,     ///< no key registered for the stream
};

const char *rejectReasonName(RejectReason r);

/** Store configuration. */
struct BackupStoreConfig
{
    /** Remote capacity budget in bytes (sealed payload accounted). */
    std::uint64_t capacityBytes = 4ull * units::TiB;

    /** Per-segment server-side processing (verify + persist). */
    Tick processingTime = 50 * units::US;
};

/** Ingest/verification counters. */
struct BackupStoreStats
{
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t segmentsRejected = 0;
    std::uint64_t bytesStored = 0;
    std::uint64_t pagesStored = 0;
    std::uint64_t entriesStored = 0;
};

/**
 * The backup store. Holds *sealed* segments; opening them (for
 * recovery and analysis) requires the shared device key, which the
 * operator supplies out of band.
 */
class BackupStore : public net::CapsuleTarget
{
  public:
    /** Single-device store: @p codec is registered as stream 0. */
    BackupStore(const BackupStoreConfig &config,
                const log::SegmentCodec &codec);

    /** Multi-stream store (cluster shard): starts with no streams;
     *  every device key arrives via registerStream(). */
    explicit BackupStore(const BackupStoreConfig &config);

    /**
     * Admit another device stream, pairing it with the codec derived
     * from that device's key. Registration is the out-of-band key
     * exchange of the paper's deployment model; ingest into an
     * unregistered stream is rejected, never trusted.
     */
    void registerStream(StreamId stream, const log::SegmentCodec &codec);
    bool hasStream(StreamId stream) const;

    // -- net::CapsuleTarget -------------------------------------------

    /** Single-device path: ingest into stream 0. */
    bool ingestSegment(const log::SealedSegment &segment, Tick arrive_at,
                       Tick &ack_ready_at) override;

    /** Multiplexed path: ingest into @p stream. */
    bool ingestSegment(StreamId stream, const log::SealedSegment &segment,
                       Tick arrive_at, Tick &ack_ready_at);

    // -- Recovery / analysis side ----------------------------------------

    std::size_t segmentCount() const { return segments_.size(); }
    const std::vector<log::SealedSegment> &segments() const
    {
        return segments_;
    }

    /** Sealed segment by storage index (dense from 0, arrival order). */
    const log::SealedSegment &sealedSegment(std::uint64_t idx) const;

    /** Stream that stored segment @p idx belongs to. */
    StreamId streamOf(std::uint64_t idx) const;

    /** Open (decrypt + decompress) a stored segment. */
    log::Segment openSegment(std::uint64_t idx) const;

    std::size_t streamCount() const { return streams_.size(); }

    /** All registered stream ids, ascending (deterministic). */
    std::vector<StreamId> streamIds() const;

    /** Storage indices of @p stream's segments, in chain order. */
    const std::vector<std::uint32_t> &
    streamSegments(StreamId stream) const;

    /**
     * Verification codec registered for @p stream. The trusted
     * analysis host reads evidence where it lives; the codec it
     * verifies with is the one the out-of-band key exchange
     * registered at attach time.
     */
    const log::SegmentCodec &streamCodec(StreamId stream) const;

    /**
     * Verify the entire stored history: every HMAC, each stream's
     * segment chain, and the per-entry log hash chain across segment
     * boundaries. @return true iff the evidence chain is intact.
     */
    bool verifyFullChain() const;

    /** Bytes of remote budget consumed. */
    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t capacityBytes() const
    {
        return config_.capacityBytes;
    }

    RejectReason lastRejectReason() const { return lastReject_; }
    const BackupStoreStats &stats() const { return stats_; }

  private:
    /** Per-stream chain state — the fix for the former single-client
     *  globals (one lastId/chainTail for the whole store). */
    struct StreamState
    {
        log::SegmentCodec codec;
        std::uint64_t lastId = log::kNoSegment;
        crypto::Digest chainTail{};
        bool haveTail = false;
        std::vector<std::uint32_t> stored; ///< storage indices

        explicit StreamState(const log::SegmentCodec &c) : codec(c) {}
    };

    bool reject(RejectReason why);

    BackupStoreConfig config_;
    /** Ordered map: verifyFullChain() iterates streams
     *  deterministically (fleet reports are byte-reproducible). */
    std::map<StreamId, StreamState> streams_;
    std::vector<log::SealedSegment> segments_;
    std::vector<StreamId> segmentStream_; ///< parallel to segments_
    std::uint64_t used_ = 0;
    RejectReason lastReject_ = RejectReason::None;
    BackupStoreStats stats_;
};

} // namespace rssd::remote

#endif // RSSD_REMOTE_BACKUP_STORE_HH
