/**
 * @file
 * The remote cloud/storage-server endpoint of the NVMe-oE path.
 *
 * An append-only store of sealed segments. Ingest enforces the trust
 * properties the paper's post-attack analysis relies on:
 *   - HMAC authenticity (only the paired device key seals segments),
 *   - strict segment ordering (each segment must name the previous
 *     segment id and extend its log-chain digest),
 *   - capacity budgeting (the knob behind Figure 2's retention time).
 *
 * The store never deletes or rewrites a segment — ransomware that
 * owns the host OS has no path to it (hardware isolation), and even
 * the device can only append.
 */

#ifndef RSSD_REMOTE_BACKUP_STORE_HH
#define RSSD_REMOTE_BACKUP_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "log/segment.hh"
#include "net/transport.hh"

namespace rssd::remote {

/** Why the most recent ingest was rejected. */
enum class RejectReason : std::uint8_t {
    None,
    BadAuthentication, ///< HMAC or CRC mismatch
    ChainViolation,    ///< out-of-order or spliced segment
    CapacityExceeded,  ///< remote budget exhausted
};

const char *rejectReasonName(RejectReason r);

/** Store configuration. */
struct BackupStoreConfig
{
    /** Remote capacity budget in bytes (sealed payload accounted). */
    std::uint64_t capacityBytes = 4ull * units::TiB;

    /** Per-segment server-side processing (verify + persist). */
    Tick processingTime = 50 * units::US;
};

/** Ingest/verification counters. */
struct BackupStoreStats
{
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t segmentsRejected = 0;
    std::uint64_t bytesStored = 0;
    std::uint64_t pagesStored = 0;
    std::uint64_t entriesStored = 0;
};

/**
 * The backup store. Holds *sealed* segments; opening them (for
 * recovery and analysis) requires the shared device key, which the
 * operator supplies out of band.
 */
class BackupStore : public net::CapsuleTarget
{
  public:
    BackupStore(const BackupStoreConfig &config,
                const log::SegmentCodec &codec);

    // -- net::CapsuleTarget -------------------------------------------

    bool ingestSegment(const log::SealedSegment &segment, Tick arrive_at,
                       Tick &ack_ready_at) override;

    // -- Recovery / analysis side ----------------------------------------

    std::size_t segmentCount() const { return segments_.size(); }
    const std::vector<log::SealedSegment> &segments() const
    {
        return segments_;
    }

    /** Sealed segment by id (ids are dense from 0). */
    const log::SealedSegment &sealedSegment(std::uint64_t id) const;

    /** Open (decrypt + decompress) a stored segment. */
    log::Segment openSegment(std::uint64_t id) const;

    /**
     * Verify the entire stored history: every HMAC, the segment
     * chain, and the per-entry log hash chain across segment
     * boundaries. @return true iff the evidence chain is intact.
     */
    bool verifyFullChain() const;

    /** Bytes of remote budget consumed. */
    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t capacityBytes() const
    {
        return config_.capacityBytes;
    }

    RejectReason lastRejectReason() const { return lastReject_; }
    const BackupStoreStats &stats() const { return stats_; }

  private:
    BackupStoreConfig config_;
    log::SegmentCodec codec_;
    std::vector<log::SealedSegment> segments_;
    std::uint64_t used_ = 0;
    std::uint64_t lastId_ = log::kNoSegment;
    crypto::Digest lastChainTail_;
    bool haveTail_ = false;
    RejectReason lastReject_ = RejectReason::None;
    BackupStoreStats stats_;
};

} // namespace rssd::remote

#endif // RSSD_REMOTE_BACKUP_STORE_HH
