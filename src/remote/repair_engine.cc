#include "remote/repair_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::remote {

RepairEngine::RepairEngine(BackupCluster &cluster,
                           const RepairEngineConfig &config)
    : cluster_(cluster), config_(config)
{
    panicIf(config.enabled && config.tickInterval == 0,
            "RepairEngine: zero tick interval");
    panicIf(config.enabled && config.bandwidthBytesPerSec == 0,
            "RepairEngine: zero bandwidth budget");
    panicIf(config.scrubInterval != 0 &&
                config.scrubSegmentsPerStep == 0,
            "RepairEngine: scrub enabled with zero step");
    cluster_.setRepairObserver(this);
    nextScrubAt_ = config_.scrubInterval;
}

RepairEngine::~RepairEngine()
{
    cluster_.setRepairObserver(nullptr);
}

void
RepairEngine::streamDegraded(DeviceId device)
{
    if (!config_.enabled)
        return;
    if (queue_.insert(device).second)
        stats_.enqueues++;
}

bool
RepairEngine::streamHeld(DeviceId device) const
{
    // The hold lives on the stores; read it off the first live
    // member still holding a copy (placement may name members whose
    // copy was dropped for rebuild).
    for (const ShardId s : cluster_.liveReplicasOf(device)) {
        if (cluster_.shardStore(s).hasStream(device))
            return cluster_.shardStore(s).evictionHold(device);
    }
    return false;
}

bool
RepairEngine::takeBudget(ShardId target, Tick now, std::uint64_t wire)
{
    Bucket &b = buckets_[target];
    // Burst cap: one second of budget (but never less than a few
    // segments, so a tiny budget still makes progress) unless the
    // config pins an explicit burst.
    const std::uint64_t cap = config_.burstBytes != 0
        ? config_.burstBytes
        : std::max<std::uint64_t>(config_.bandwidthBytesPerSec,
                                  8 * units::MiB);
    if (!b.init) {
        b.init = true;
        b.lastAt = now;
        b.bytes = cap;
    }
    if (now > b.lastAt) {
        const Tick dt = now - b.lastAt;
        b.lastAt = now;
        // Split the refill so dt * bandwidth cannot overflow.
        const std::uint64_t gain =
            dt / units::SEC * config_.bandwidthBytesPerSec +
            dt % units::SEC * config_.bandwidthBytesPerSec /
                units::SEC;
        b.bytes = std::min(cap, b.bytes + gain);
    }
    // A segment wider than the burst cap is charged the full bucket
    // instead — a pinned burst throttles the rate but can never
    // starve a single copy forever.
    const std::uint64_t cost = std::min(wire, cap);
    if (b.bytes < cost)
        return false;
    b.bytes -= cost;
    return true;
}

bool
RepairEngine::copyStep(DeviceId device, ShardId source, ShardId target,
                       Tick now)
{
    const BackupStore &src = cluster_.shardStore(source);
    for (;;) {
        const BackupStore::StreamTail want = src.streamTail(device);
        const BackupStore::StreamTail have =
            cluster_.shardStore(target).streamTail(device);
        if (have == want)
            return true;

        // Fresh copy of a pruned stream: the source's signed
        // PruneRecord substitutes for the expired prefix
        // (resumeFrom() semantics) — a fully pruned stream repairs
        // to a chain-tail-only copy this way.
        if (!have.haveTail) {
            if (const log::PruneRecord *rec =
                    src.pruneRecordOf(device)) {
                cluster_.adoptPruneRecordOn(target, device, *rec);
                stats_.reanchors++;
                if (trace_ != nullptr) {
                    trace_->instant("repair", "reanchor",
                                    obs::kTrackRepair, target, now,
                                    {{"device", device},
                                     {"upToId", rec->upToId}});
                }
                continue;
            }
        }

        // Next segment: the stored one extending the target's tail.
        const log::SealedSegment *next = nullptr;
        for (const std::uint32_t idx : src.streamSegments(device)) {
            const log::SealedSegment &seg = src.sealedSegment(idx);
            const bool extends =
                have.haveTail ? seg.prevId == have.lastId
                              : seg.prevId == log::kNoSegment;
            if (extends) {
                next = &seg;
                break;
            }
        }
        if (next == nullptr) {
            // The source pruned past (or diverged from) the copy's
            // tail mid-repair: the partial copy cannot be extended.
            // Restart from the source's current re-anchored suffix.
            cluster_.dropCopy(target, device);
            cluster_.beginRepairCopy(device, target);
            stats_.copyRestarts++;
            if (trace_ != nullptr) {
                trace_->instant("repair", "copy-restart",
                                obs::kTrackRepair, target, now,
                                {{"device", device}});
            }
            continue;
        }

        const std::uint64_t wire = next->wireSize();
        if (!takeBudget(target, now, wire))
            return false; // bandwidth budget spent: resume next tick

        // Through the target's ingest queue, not straight into the
        // store: repair traffic contends with foreground quorum
        // writes on the shard worker, deterministically.
        Tick ack = 0;
        if (!cluster_.repairIngest(target, device, *next, now, ack)) {
            stats_.repairRejects++;
            return false; // capacity/backpressure: retry next tick
        }
        stats_.segmentsCopied++;
        stats_.bytesCopied += wire;
        copyLatency_.add(ack > now ? ack - now : 0);
        if (trace_ != nullptr) {
            trace_->complete("repair", "copy", obs::kTrackRepair,
                             target, now, ack,
                             {{"device", device},
                              {"segment", next->id},
                              {"source", source}});
        }
    }
}

bool
RepairEngine::repairStream(DeviceId device, Tick now)
{
    const std::vector<ShardId> targets =
        cluster_.repairTargetsOf(device);
    if (targets.empty())
        return true; // no live shards at all: nothing to converge to

    // Source: best non-quarantined chain-verifying replica. If even
    // the fallback is quarantined, every surviving copy is suspect —
    // there is nothing trustworthy to copy from.
    const ShardId source = cluster_.chainVerifyingReplicaOf(device);
    if (source == kNoShard ||
        cluster_.copyQuarantined(source, device)) {
        stats_.irreparable++;
        if (trace_ != nullptr) {
            trace_->instant("repair", "irreparable",
                            obs::kTrackRepair, 0, now,
                            {{"device", device}});
        }
        return true;
    }

    bool caught_up = true;
    for (const ShardId t : targets) {
        if (t == source)
            continue;
        // A quarantined target copy is rebuilt, not patched: drop
        // it (clearing the verdict) and copy fresh.
        if (cluster_.shardStore(t).hasStream(device) &&
            cluster_.copyQuarantined(t, device)) {
            cluster_.dropCopy(t, device);
        }
        if (!cluster_.shardStore(t).hasStream(device))
            cluster_.beginRepairCopy(device, t);
        if (!copyStep(device, source, t, now))
            caught_up = false;
    }
    if (!caught_up)
        return false;

    // Every target holds a healthy copy at the source's tail: only
    // now is the repaired set published to foreground quorum writes.
    const bool held =
        cluster_.shardStore(source).evictionHold(device);
    cluster_.commitReplicaSet(device, targets);
    if (held)
        cluster_.setEvictionHold(device, true);
    return true;
}

void
RepairEngine::repairStep(Tick now)
{
    if (queue_.empty())
        return;
    // Suspicion-held (detector-alarmed) streams first — they are
    // the evidence under attack — then ascending device id.
    std::vector<DeviceId> order(queue_.begin(), queue_.end());
    std::stable_sort(order.begin(), order.end(),
                     [this](DeviceId a, DeviceId b) {
                         const bool ha = streamHeld(a);
                         const bool hb = streamHeld(b);
                         if (ha != hb)
                             return ha;
                         return a < b;
                     });
    for (const DeviceId device : order) {
        if (repairStream(device, now)) {
            queue_.erase(device);
            queuedAt_.erase(device);
            stats_.streamsRepaired++;
            if (trace_ != nullptr) {
                trace_->instant("repair", "stream-repaired",
                                obs::kTrackRepair, 0, now,
                                {{"device", device},
                                 {"queued", queue_.size()}});
            }
            if (queue_.empty())
                stats_.lastRepairDoneAt = now;
        }
    }
}

void
RepairEngine::scrubFinishStream(ShardId shard, DeviceId device,
                                Tick now)
{
    // A stream mid-repair legitimately has copies at different
    // tails; judge only settled streams.
    if (queued(device))
        return;
    const StreamHealth h = cluster_.streamHealth(device);
    if (h.quarantined > 0 || h.live < 2)
        return;

    // Tail vote: a copy whose chain tail disagrees with a strict
    // majority of its replica peers is suspect even when every
    // stored byte HMAC-verifies (it silently missed writes).
    const BackupStore::StreamTail mine =
        cluster_.shardStore(shard).streamTail(device);
    std::vector<BackupStore::StreamTail> peers;
    for (const ShardId r : cluster_.liveReplicasOf(device)) {
        if (r == shard || !cluster_.shardStore(r).hasStream(device) ||
            cluster_.copyQuarantined(r, device)) {
            continue;
        }
        peers.push_back(cluster_.shardStore(r).streamTail(device));
    }
    std::uint32_t agree = 1;
    std::uint32_t best_other = 0;
    for (std::size_t i = 0; i < peers.size(); i++) {
        if (peers[i] == mine) {
            agree++;
            continue;
        }
        std::uint32_t votes = 1;
        for (std::size_t j = i + 1; j < peers.size(); j++) {
            if (peers[j] == peers[i])
                votes++;
        }
        best_other = std::max(best_other, votes);
    }
    if (best_other > agree) {
        cluster_.quarantineCopy(shard, device);
        stats_.tailVoteQuarantines++;
        stats_.quarantines++;
        passCorruptions_++;
        if (trace_ != nullptr) {
            trace_->instant("repair", "quarantine",
                            obs::kTrackRepair, shard, now,
                            {{"device", device},
                             {"tailVote", 1u}});
        }
    }
}

void
RepairEngine::scrubChunk(Tick now)
{
    if (!scrubPlanValid_) {
        scrubPlan_.clear();
        for (ShardId s = 0; s < cluster_.shardCount(); s++) {
            if (!cluster_.shardAlive(s))
                continue;
            for (const StreamId d :
                 cluster_.shardStore(s).streamIds()) {
                scrubPlan_.emplace_back(s, d);
            }
        }
        scrubCursor_ = {};
        scrubPlanValid_ = true;
        passCorruptions_ = 0;
    }

    if (trace_ != nullptr) {
        trace_->instant("repair", "scrub-step", obs::kTrackRepair, 0,
                        now,
                        {{"planEntry", scrubCursor_.entry},
                         {"planSize", scrubPlan_.size()}});
    }

    std::uint32_t remaining = config_.scrubSegmentsPerStep;
    while (remaining > 0) {
        if (scrubCursor_.entry >= scrubPlan_.size()) {
            // Pass complete.
            scrubPlanValid_ = false;
            stats_.scrubPasses++;
            if (draining_ && passCorruptions_ == 0 && queue_.empty())
                scrubSettled_ = true;
            return;
        }
        const auto [s, d] = scrubPlan_[scrubCursor_.entry];
        // Revalidate: membership churn, releases and quarantines
        // since the pass began simply skip the entry.
        if (!cluster_.shardAlive(s) ||
            !cluster_.shardStore(s).hasStream(d) ||
            cluster_.copyQuarantined(s, d)) {
            scrubCursor_.entry++;
            scrubCursor_.pos = 0;
            continue;
        }
        const BackupStore &store = cluster_.shardStore(s);
        const std::deque<std::uint32_t> &stored =
            store.streamSegments(d);
        // A prune mid-pass pops from the front of the deque, so the
        // cursor effectively skips ahead — never faults.
        if (scrubCursor_.pos >= stored.size()) {
            scrubFinishStream(s, d, now);
            scrubCursor_.entry++;
            scrubCursor_.pos = 0;
            continue;
        }
        const log::SealedSegment &seg =
            store.sealedSegment(stored[scrubCursor_.pos]);
        stats_.scrubbedSegments++;
        remaining--;
        if (!store.streamCodec(d).verify(seg)) {
            // Silent corruption: payload bytes rotted under intact
            // chain metadata. Quarantine the copy (readers fail
            // over) and rebuild it — quarantineCopy() notifies us,
            // which enqueues the stream for repair.
            cluster_.quarantineCopy(s, d);
            stats_.scrubCorruptions++;
            stats_.quarantines++;
            passCorruptions_++;
            if (trace_ != nullptr) {
                trace_->instant("repair", "quarantine",
                                obs::kTrackRepair, s, now,
                                {{"device", d}, {"tailVote", 0u}});
            }
            scrubCursor_.entry++;
            scrubCursor_.pos = 0;
            continue;
        }
        scrubCursor_.pos++;
    }
}

void
RepairEngine::tick(Tick now)
{
    if (!config_.enabled)
        return;
    // Debt-age bookkeeping: streamDegraded() has no tick, so queued
    // streams are stamped at the first wakeup that sees them (one
    // tickInterval of slack at most).
    lastNowAt_ = now;
    for (const DeviceId d : queue_)
        queuedAt_.emplace(d, now);
    if (scrubOn() && now >= nextScrubAt_) {
        scrubChunk(now);
        nextScrubAt_ = now + config_.scrubInterval;
    }
    repairStep(now);
}

Tick
RepairEngine::drainAll(Tick now)
{
    if (!config_.enabled)
        return now;
    draining_ = true;
    scrubSettled_ = !scrubOn();
    // Require one full pass from scratch: stragglers the fleet
    // shipped after the last periodic chunk must still be covered.
    scrubPlanValid_ = false;
    Tick t = now;
    std::uint64_t guard = 0;
    while (!queue_.empty() || !scrubSettled_) {
        panicIf(++guard > 8'000'000,
                "RepairEngine: drain did not converge");
        t += config_.tickInterval;
        if (scrubOn())
            nextScrubAt_ = std::min(nextScrubAt_, t);
        tick(t);
    }
    draining_ = false;
    return t;
}

Tick
RepairEngine::oldestDebtAgeNs() const
{
    if (queue_.empty())
        return 0;
    Tick oldest = lastNowAt_;
    for (const DeviceId d : queue_) {
        const auto it = queuedAt_.find(d);
        if (it != queuedAt_.end())
            oldest = std::min(oldest, it->second);
    }
    return lastNowAt_ - oldest;
}

void
RepairEngine::registerMetrics(obs::MetricsRegistry &registry,
                              const std::string &prefix) const
{
    registry.counter(prefix + "enqueues",
                     [this] { return stats_.enqueues; });
    registry.counter(prefix + "streamsRepaired",
                     [this] { return stats_.streamsRepaired; });
    registry.counter(prefix + "segmentsCopied",
                     [this] { return stats_.segmentsCopied; });
    registry.counter(prefix + "bytesCopied",
                     [this] { return stats_.bytesCopied; });
    registry.counter(prefix + "reanchors",
                     [this] { return stats_.reanchors; });
    registry.counter(prefix + "copyRestarts",
                     [this] { return stats_.copyRestarts; });
    registry.counter(prefix + "repairRejects",
                     [this] { return stats_.repairRejects; });
    registry.counter(prefix + "irreparable",
                     [this] { return stats_.irreparable; });
    registry.counter(prefix + "scrubbedSegments",
                     [this] { return stats_.scrubbedSegments; });
    registry.counter(prefix + "scrubPasses",
                     [this] { return stats_.scrubPasses; });
    registry.counter(prefix + "scrubCorruptions",
                     [this] { return stats_.scrubCorruptions; });
    registry.counter(prefix + "tailVoteQuarantines",
                     [this] { return stats_.tailVoteQuarantines; });
    registry.counter(prefix + "quarantines",
                     [this] { return stats_.quarantines; });
    registry.level(prefix + "queueDepth",
                   [this] { return queue_.size(); });
    registry.level(prefix + "oldestDebtAgeNs",
                   [this] { return oldestDebtAgeNs(); });
    registry.histogram(prefix + "copyLatency",
                       [this] { return copyLatency_; });
}

} // namespace rssd::remote
