/**
 * @file
 * RepairEngine: anti-entropy repair and integrity scrubbing for the
 * replicated remote tier — the cluster heals itself.
 *
 * PR 6 left "repair debt": a crashed shard degrades every replica
 * set it belonged to, and the debt was paid only at the next
 * joinShard()/rebalance(). Until then each victim stream ran one
 * failure away from losing its evidence — against the paper's core
 * promise that post-attack analysis always has an intact trusted
 * history. The repair engine converges the cluster back to full
 * replication health without operator action:
 *
 *  - A repair queue keyed by stream, fed by the cluster's
 *    RepairObserver hook the moment crashShard() (or a scrub
 *    quarantine) degrades a set. Suspicion-held (detector-alarmed)
 *    streams repair first — they are the evidence under attack.
 *
 *  - Background re-replication under a modeled per-shard bandwidth
 *    budget (token bucket, bytes moved — the AutoLALA lens: repair
 *    cost is data movement, so the budget is bytes, not operations).
 *    Copies are verbatim sealed segments from a chain-verifying
 *    source replica, re-anchored via the source's signed PruneRecord
 *    exactly like migration — but routed through the target shard's
 *    ingest queue, so repair traffic and foreground quorum writes
 *    contend deterministically on the same worker.
 *
 *  - Periodic integrity scrubbing: a low-rate scan that HMAC-
 *    verifies stored copies segment by segment and tail-votes each
 *    copy against its replica peers. A silently corrupted copy
 *    (bit-rot never touches the chain metadata, so nothing else
 *    catches it) is quarantined — readers fail over, and the copy is
 *    enqueued for rebuild from a healthy replica.
 *
 * Repair copies are invisible to foreground quorum writes until they
 * have caught up to the source's tail: only then does the engine
 * commit the repaired replica set. A concurrent joinShard() simply
 * wins — migration drops any partial repair copy on its target, and
 * the engine finds the stream healthy and dequeues it.
 */

#ifndef RSSD_REMOTE_REPAIR_ENGINE_HH
#define RSSD_REMOTE_REPAIR_ENGINE_HH

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "remote/backup_cluster.hh"

namespace rssd::remote {

struct RepairEngineConfig
{
    /** Master switch; a disabled engine ignores notifications. */
    bool enabled = false;

    /** Per-target-shard repair bandwidth budget (token bucket). */
    std::uint64_t bandwidthBytesPerSec = 200 * units::MiB;

    /** Token-bucket burst cap in bytes; 0 means the default of
     *  max(bandwidthBytesPerSec, 8 MiB). A small burst makes a
     *  throttled repair proceed at the steady rate instead of
     *  absorbing the whole copy in the first wakeup — how the
     *  health campaigns keep repair debt observable. */
    std::uint64_t burstBytes = 0;

    /** Engine wakeup cadence on the fleet DES spine. */
    Tick tickInterval = 1 * units::MS;

    /** Integrity scrub cadence; 0 disables scrubbing. */
    Tick scrubInterval = 0;

    /** Segments HMAC-verified per scrub step (the "low-rate"). */
    std::uint32_t scrubSegmentsPerStep = 4;
};

struct RepairStats
{
    std::uint64_t enqueues = 0;        ///< degradation notifications
    std::uint64_t streamsRepaired = 0; ///< streams converged healthy
    std::uint64_t segmentsCopied = 0;  ///< verbatim repair copies
    std::uint64_t bytesCopied = 0;     ///< wire bytes moved
    std::uint64_t reanchors = 0;       ///< prune records adopted
    std::uint64_t copyRestarts = 0;    ///< prune overtook a copy
    std::uint64_t repairRejects = 0;   ///< target refused a segment
    std::uint64_t irreparable = 0;     ///< no healthy source at all

    // -- Scrub ----------------------------------------------------------
    std::uint64_t scrubbedSegments = 0;
    std::uint64_t scrubPasses = 0;
    std::uint64_t scrubCorruptions = 0;    ///< HMAC-failed copies
    std::uint64_t tailVoteQuarantines = 0; ///< minority-tail copies
    std::uint64_t quarantines = 0;         ///< total copies quarantined

    /** Tick at which the repair queue last drained to empty. */
    Tick lastRepairDoneAt = 0;
};

class RepairEngine : public RepairObserver
{
  public:
    /** Registers itself as @p cluster's repair observer. */
    RepairEngine(BackupCluster &cluster,
                 const RepairEngineConfig &config);
    ~RepairEngine() override;

    RepairEngine(const RepairEngine &) = delete;
    RepairEngine &operator=(const RepairEngine &) = delete;

    // -- RepairObserver ---------------------------------------------------

    void streamDegraded(DeviceId device) override;

    // -- DES spine --------------------------------------------------------

    /**
     * One engine wakeup at time @p now: run a scrub chunk if the
     * scrub interval elapsed, then work the repair queue as far as
     * the bandwidth budgets allow. Deterministic: queue order is
     * held-first then ascending device id.
     */
    void tick(Tick now);

    /**
     * Converge completely: starting at @p now, keep ticking (in
     * virtual time, fleet quiet) until the repair queue is empty and
     * — with scrubbing enabled — one full scrub pass found nothing
     * new. @return the tick at which the cluster converged.
     */
    Tick drainAll(Tick now);

    /** Nothing queued (scrub settling is judged by drainAll). */
    bool idle() const { return queue_.empty(); }

    /** True if @p device is awaiting repair. */
    bool queued(DeviceId device) const
    {
        return queue_.count(device) != 0;
    }

    std::size_t queueDepth() const { return queue_.size(); }

    /**
     * Age of the oldest unpaid repair debt: sim time since the
     * oldest still-queued stream was first seen by a tick(), 0 when
     * the queue is empty. Streams degraded since the last wakeup
     * count as age 0 (stamping happens at tick time — the observer
     * hook carries no tick). This is the health layer's
     * "repair_debt" signal: debt older than the bandwidth budget
     * should have paid it off means repair is losing.
     */
    Tick oldestDebtAgeNs() const;

    const RepairStats &stats() const { return stats_; }
    const RepairEngineConfig &config() const { return config_; }

    // -- Observability ----------------------------------------------------

    /** Repair-copy stage latency: ingest arrival to shard ack, one
     *  sample per verbatim segment copied. */
    const LatencyHistogram &copyLatency() const
    {
        return copyLatency_;
    }

    /** Repair/scrub lifecycle events land on the repair track; a
     *  null sink detaches. Tracing is read-only — attached or not,
     *  the repair schedule is identical. */
    void attachTrace(obs::TraceSink *sink) { trace_ = sink; }

    /** Register repair counters and the copy-latency histogram under
     *  @p prefix (e.g. "repair."). */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

  private:
    /** Per-target-shard token bucket (bytes). */
    struct Bucket
    {
        std::uint64_t bytes = 0;
        Tick lastAt = 0;
        bool init = false;
    };

    /** Scrub position: index into the pass plan + segment offset. */
    struct ScrubCursor
    {
        std::size_t entry = 0;
        std::uint64_t pos = 0;
    };

    bool streamHeld(DeviceId device) const;
    bool takeBudget(ShardId target, Tick now, std::uint64_t wire);

    /** Work the queue at @p now; dequeues streams that converged. */
    void repairStep(Tick now);

    /** Converge one stream toward its ring target set. @return true
     *  when every target holds a healthy copy at the source's tail
     *  (the set was committed) or the stream is irreparable. */
    bool repairStream(DeviceId device, Tick now);

    /** Copy segments from @p source onto @p target until caught up,
     *  budget allowing. @return true when tails match. */
    bool copyStep(DeviceId device, ShardId source, ShardId target,
                  Tick now);

    void scrubChunk(Tick now);
    void scrubFinishStream(ShardId shard, DeviceId device, Tick now);

    bool scrubOn() const { return config_.scrubInterval != 0; }

    BackupCluster &cluster_;
    RepairEngineConfig config_;
    RepairStats stats_;
    LatencyHistogram copyLatency_;
    obs::TraceSink *trace_ = nullptr;

    /** Degraded streams awaiting repair (dedup by design). */
    std::set<DeviceId> queue_;

    /** First tick() that saw each queued stream (debt-age stamps;
     *  erased on dequeue). */
    std::map<DeviceId, Tick> queuedAt_;
    Tick lastNowAt_ = 0; ///< most recent tick() time

    std::map<ShardId, Bucket> buckets_;

    /** One scrub pass = a snapshot of (shard, stream) pairs walked
     *  in order; entries are revalidated when reached, so membership
     *  churn and prunes mid-pass skip instead of faulting. */
    std::vector<std::pair<ShardId, DeviceId>> scrubPlan_;
    ScrubCursor scrubCursor_;
    bool scrubPlanValid_ = false;
    std::uint64_t passCorruptions_ = 0;
    Tick nextScrubAt_ = 0;

    bool draining_ = false;
    bool scrubSettled_ = false;
};

} // namespace rssd::remote

#endif // RSSD_REMOTE_REPAIR_ENGINE_HH
