#include "remote/backup_store.hh"

#include "sim/logging.hh"

namespace rssd::remote {

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::None: return "none";
      case RejectReason::BadAuthentication: return "bad-authentication";
      case RejectReason::ChainViolation: return "chain-violation";
      case RejectReason::CapacityExceeded: return "capacity-exceeded";
    }
    return "?";
}

BackupStore::BackupStore(const BackupStoreConfig &config,
                         const log::SegmentCodec &codec)
    : config_(config), codec_(codec)
{
}

bool
BackupStore::ingestSegment(const log::SealedSegment &segment,
                           Tick arrive_at, Tick &ack_ready_at)
{
    ack_ready_at = arrive_at + config_.processingTime;
    lastReject_ = RejectReason::None;

    if (!codec_.verify(segment)) {
        lastReject_ = RejectReason::BadAuthentication;
        stats_.segmentsRejected++;
        return false;
    }

    // Strict ordering: the segment must extend the stored history.
    const bool first = segments_.empty();
    if (first) {
        if (segment.prevId != log::kNoSegment) {
            lastReject_ = RejectReason::ChainViolation;
            stats_.segmentsRejected++;
            return false;
        }
    } else {
        if (segment.prevId != lastId_ ||
            (haveTail_ && segment.chainAnchor != lastChainTail_)) {
            lastReject_ = RejectReason::ChainViolation;
            stats_.segmentsRejected++;
            return false;
        }
    }

    if (used_ + segment.payload.size() > config_.capacityBytes) {
        lastReject_ = RejectReason::CapacityExceeded;
        stats_.segmentsRejected++;
        return false;
    }

    segments_.push_back(segment);
    used_ += segment.payload.size();
    lastId_ = segment.id;
    lastChainTail_ = segment.chainTail;
    haveTail_ = true;

    stats_.segmentsAccepted++;
    stats_.bytesStored += segment.payload.size();
    return true;
}

const log::SealedSegment &
BackupStore::sealedSegment(std::uint64_t id) const
{
    panicIf(id >= segments_.size(), "BackupStore: segment id OOB");
    return segments_[id];
}

log::Segment
BackupStore::openSegment(std::uint64_t id) const
{
    return codec_.open(sealedSegment(id));
}

bool
BackupStore::verifyFullChain() const
{
    std::uint64_t expect_prev = log::kNoSegment;
    bool have_anchor = false;
    crypto::Digest anchor{};

    for (const log::SealedSegment &sealed : segments_) {
        if (!codec_.verify(sealed))
            return false;
        if (sealed.prevId != expect_prev)
            return false;
        const log::Segment seg = codec_.open(sealed);
        if (have_anchor && seg.chainAnchor != anchor)
            return false;
        // Per-entry hash chain within the segment.
        if (!log::OperationLog::verifyRun(seg.chainAnchor, seg.entries))
            return false;
        if (!seg.entries.empty() &&
            seg.entries.back().chain != seg.chainTail) {
            return false;
        }
        anchor = seg.chainTail;
        have_anchor = true;
        expect_prev = sealed.id;
    }
    return true;
}

} // namespace rssd::remote
