#include "remote/backup_store.hh"

#include "sim/logging.hh"

namespace rssd::remote {

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::None: return "none";
      case RejectReason::BadAuthentication: return "bad-authentication";
      case RejectReason::ChainViolation: return "chain-violation";
      case RejectReason::CapacityExceeded: return "capacity-exceeded";
      case RejectReason::UnknownStream: return "unknown-stream";
    }
    return "?";
}

BackupStore::BackupStore(const BackupStoreConfig &config,
                         const log::SegmentCodec &codec)
    : config_(config)
{
    registerStream(kDefaultStream, codec);
}

BackupStore::BackupStore(const BackupStoreConfig &config)
    : config_(config)
{
}

void
BackupStore::registerStream(StreamId stream,
                            const log::SegmentCodec &codec)
{
    panicIf(streams_.count(stream) != 0,
            "BackupStore: stream already registered");
    streams_.emplace(stream, StreamState(codec));
}

bool
BackupStore::hasStream(StreamId stream) const
{
    return streams_.count(stream) != 0;
}

bool
BackupStore::reject(RejectReason why)
{
    lastReject_ = why;
    stats_.segmentsRejected++;
    return false;
}

bool
BackupStore::ingestSegment(const log::SealedSegment &segment,
                           Tick arrive_at, Tick &ack_ready_at)
{
    return ingestSegment(kDefaultStream, segment, arrive_at,
                         ack_ready_at);
}

bool
BackupStore::ingestSegment(StreamId stream,
                           const log::SealedSegment &segment,
                           Tick arrive_at, Tick &ack_ready_at)
{
    ack_ready_at = arrive_at + config_.processingTime;
    lastReject_ = RejectReason::None;

    auto it = streams_.find(stream);
    if (it == streams_.end())
        return reject(RejectReason::UnknownStream);
    StreamState &st = it->second;

    if (!st.codec.verify(segment))
        return reject(RejectReason::BadAuthentication);

    // Strict per-stream ordering: the segment must extend *this
    // stream's* stored history.
    const bool first = st.stored.empty();
    if (first) {
        if (segment.prevId != log::kNoSegment)
            return reject(RejectReason::ChainViolation);
    } else {
        if (segment.prevId != st.lastId ||
            (st.haveTail && segment.chainAnchor != st.chainTail)) {
            return reject(RejectReason::ChainViolation);
        }
    }

    if (used_ + segment.payload.size() > config_.capacityBytes)
        return reject(RejectReason::CapacityExceeded);

    st.stored.push_back(static_cast<std::uint32_t>(segments_.size()));
    segments_.push_back(segment);
    segmentStream_.push_back(stream);
    used_ += segment.payload.size();
    st.lastId = segment.id;
    st.chainTail = segment.chainTail;
    st.haveTail = true;

    stats_.segmentsAccepted++;
    stats_.bytesStored += segment.payload.size();
    return true;
}

const log::SealedSegment &
BackupStore::sealedSegment(std::uint64_t idx) const
{
    panicIf(idx >= segments_.size(), "BackupStore: segment idx OOB");
    return segments_[idx];
}

StreamId
BackupStore::streamOf(std::uint64_t idx) const
{
    panicIf(idx >= segmentStream_.size(),
            "BackupStore: segment idx OOB");
    return segmentStream_[idx];
}

const std::vector<std::uint32_t> &
BackupStore::streamSegments(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.stored;
}

log::Segment
BackupStore::openSegment(std::uint64_t idx) const
{
    auto it = streams_.find(streamOf(idx));
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.codec.open(sealedSegment(idx));
}

std::vector<StreamId>
BackupStore::streamIds() const
{
    std::vector<StreamId> ids;
    ids.reserve(streams_.size());
    for (const auto &[stream, st] : streams_) {
        (void)st;
        ids.push_back(stream);
    }
    return ids;
}

const log::SegmentCodec &
BackupStore::streamCodec(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.codec;
}

bool
BackupStore::verifyFullChain() const
{
    for (const auto &[stream, st] : streams_) {
        (void)stream;
        log::SegmentChainVerifier verifier;
        for (const std::uint32_t idx : st.stored) {
            if (!verifier.verifyNext(segments_[idx], st.codec))
                return false;
        }
    }
    return true;
}

} // namespace rssd::remote
