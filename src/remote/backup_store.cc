#include "remote/backup_store.hh"

#include "sim/logging.hh"

namespace rssd::remote {

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::None: return "none";
      case RejectReason::BadAuthentication: return "bad-authentication";
      case RejectReason::ChainViolation: return "chain-violation";
      case RejectReason::CapacityExceeded: return "capacity-exceeded";
      case RejectReason::UnknownStream: return "unknown-stream";
    }
    return "?";
}

BackupStore::BackupStore(const BackupStoreConfig &config,
                         const log::SegmentCodec &codec)
    : config_(config)
{
    registerStream(kDefaultStream, codec);
}

BackupStore::BackupStore(const BackupStoreConfig &config)
    : config_(config)
{
}

void
BackupStore::registerStream(StreamId stream,
                            const log::SegmentCodec &codec)
{
    panicIf(streams_.count(stream) != 0,
            "BackupStore: stream already registered");
    streams_.emplace(stream, StreamState(codec));
}

bool
BackupStore::hasStream(StreamId stream) const
{
    return streams_.count(stream) != 0;
}

bool
BackupStore::reject(RejectReason why)
{
    lastReject_ = why;
    stats_.segmentsRejected++;
    return false;
}

bool
BackupStore::ingestSegment(const log::SealedSegment &segment,
                           Tick arrive_at, Tick &ack_ready_at)
{
    return ingestSegment(kDefaultStream, segment, arrive_at,
                         ack_ready_at);
}

bool
BackupStore::ingestSegment(StreamId stream,
                           const log::SealedSegment &segment,
                           Tick arrive_at, Tick &ack_ready_at)
{
    ack_ready_at = arrive_at + config_.processingTime;
    lastReject_ = RejectReason::None;

    auto it = streams_.find(stream);
    if (it == streams_.end())
        return reject(RejectReason::UnknownStream);
    StreamState &st = it->second;

    if (!st.codec.verify(segment))
        return reject(RejectReason::BadAuthentication);

    // Strict per-stream ordering: the segment must extend *this
    // stream's* history. "First" means no history at all — a fully
    // pruned stream keeps its chain tail, so the device's next
    // segment still extends it.
    // Replicated ingest re-offers a segment until the write quorum
    // acks it, so a replica that already stored the stream's tail
    // acks the re-offer without appending twice — idempotence is
    // what lets a partial quorum write converge on retry instead of
    // poisoning the chain with ChainViolation rejects.
    const bool first = st.lastId == log::kNoSegment;
    if (!first && st.haveTail && segment.id == st.lastId &&
        segment.chainTail == st.chainTail) {
        stats_.duplicateSegments++;
        return true;
    }
    if (first) {
        if (segment.prevId != log::kNoSegment)
            return reject(RejectReason::ChainViolation);
    } else {
        if (segment.prevId != st.lastId ||
            (st.haveTail && segment.chainAnchor != st.chainTail)) {
            return reject(RejectReason::ChainViolation);
        }
    }

    // Capacity accounting uses wire bytes (header + payload), the
    // same quantity the link transmits — so Figure 2's retention
    // time (capacity / ingest rate) matches what the wire carries.
    const std::uint64_t wire = segment.wireSize();
    if (config_.retention.gcEnabled) {
        expireByAge(arrive_at);
        const auto high = static_cast<std::uint64_t>(
            config_.retention.gcHighWater *
            static_cast<double>(config_.capacityBytes));
        if (used_ + wire > high || used_ + wire > config_.capacityBytes)
            evictUnderPressure(arrive_at, wire);
    }
    if (used_ + wire > config_.capacityBytes)
        return reject(RejectReason::CapacityExceeded);

    // Recycle a tombstoned slot when the GC left one — storage
    // stays bounded by the capacity budget, not by segments ever
    // ingested.
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        segments_[slot] = segment;
        segmentStream_[slot] = stream;
        segmentArrival_[slot] = arrive_at;
        segmentPruned_[slot] = 0;
    } else {
        slot = static_cast<std::uint32_t>(segments_.size());
        segments_.push_back(segment);
        segmentStream_.push_back(stream);
        segmentArrival_.push_back(arrive_at);
        segmentPruned_.push_back(0);
    }
    st.stored.push_back(slot);
    liveSegments_++;
    used_ += wire;
    st.liveBytes += wire;
    st.lastId = segment.id;
    st.chainTail = segment.chainTail;
    st.haveTail = true;

    stats_.segmentsAccepted++;
    stats_.bytesStored += wire;
    return true;
}

void
BackupStore::pruneOldest(StreamId stream, StreamState &st, Tick now,
                         bool pressure)
{
    panicIf(st.stored.empty(), "BackupStore: prune of empty stream");
    const std::uint32_t idx = st.stored.front();
    const log::SealedSegment &sealed = segments_[idx];
    const std::uint64_t wire = sealed.wireSize();

    // The store-side GC work: open the segment to account the log
    // entries expiring with it (the prune record advertises the
    // first surviving logSeq to analysis and recovery).
    const log::Segment opened = st.codec.open(sealed);

    log::PruneRecord rec =
        st.prune.value_or(log::PruneRecord{});
    rec.stream = stream;
    rec.upToId = sealed.id;
    rec.segmentsPruned += 1;
    rec.entriesPruned += opened.entries.size();
    rec.bytesPruned += wire;
    rec.prunedAt = now;
    rec.anchor = sealed.chainTail;
    st.codec.sealPrune(rec);
    st.prune = rec;

    st.stored.pop_front();
    st.liveBytes -= wire;
    used_ -= wire;
    liveSegments_--;
    segments_[idx] = log::SealedSegment{}; // free the payload
    segmentPruned_[idx] = 1;
    freeSlots_.push_back(idx);

    stats_.segmentsPruned++;
    stats_.bytesPruned += wire;
    stats_.entriesPruned += opened.entries.size();
    if (pressure)
        stats_.pressurePrunes++;
    else
        stats_.agePrunes++;
    if (trace_ != nullptr) {
        trace_->instant("retention", "prune", obs::kTrackCluster,
                        traceTid_, now,
                        {{"stream", stream},
                         {"segment", rec.upToId},
                         {"pressure", pressure ? 1u : 0u}});
    }
}

void
BackupStore::expireByAge(Tick now)
{
    const Tick window = config_.retention.retentionWindow;
    if (window == 0)
        return;
    for (auto &[stream, st] : streams_) {
        if (st.evictionHold)
            continue; // suspicion hold: evidence outlives the window
        while (!st.stored.empty() &&
               segmentArrival_[st.stored.front()] + window <= now) {
            pruneOldest(stream, st, now, /*pressure=*/false);
        }
    }
}

void
BackupStore::evictUnderPressure(Tick now,
                                std::uint64_t incoming_bytes)
{
    const auto low = static_cast<std::uint64_t>(
        config_.retention.gcLowWater *
        static_cast<double>(config_.capacityBytes));
    const std::uint64_t quota = streamQuotaBytes();

    while (used_ + incoming_bytes > low) {
        StreamState *victim = nullptr;
        StreamId victim_id = 0;

        // 1. The most over-quota stream first — held or not. The
        //    quota is the backstop that keeps one flooding tenant
        //    from consuming its neighbours' retention windows.
        std::uint64_t best_over = 0;
        for (auto &[stream, st] : streams_) {
            if (st.stored.empty() || st.liveBytes <= quota)
                continue;
            const std::uint64_t over = st.liveBytes - quota;
            if (over > best_over) {
                best_over = over;
                victim = &st;
                victim_id = stream;
            }
        }

        // 2. Everyone under quota: globally oldest unheld segment.
        if (victim == nullptr) {
            Tick oldest = ~0ull;
            for (auto &[stream, st] : streams_) {
                if (st.evictionHold || st.stored.empty())
                    continue;
                const Tick at = segmentArrival_[st.stored.front()];
                if (at < oldest) {
                    oldest = at;
                    victim = &st;
                    victim_id = stream;
                }
            }
        }

        if (victim == nullptr)
            break; // all held and within quota: genuinely full
        pruneOldest(victim_id, *victim, now, /*pressure=*/true);
    }
}

void
BackupStore::runRetentionGc(Tick now)
{
    if (!config_.retention.gcEnabled)
        return;
    expireByAge(now);
    const auto high = static_cast<std::uint64_t>(
        config_.retention.gcHighWater *
        static_cast<double>(config_.capacityBytes));
    if (used_ > high)
        evictUnderPressure(now, 0);
}

void
BackupStore::setEvictionHold(StreamId stream, bool held)
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    it->second.evictionHold = held;
}

bool
BackupStore::evictionHold(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.evictionHold;
}

std::uint64_t
BackupStore::heldStreams() const
{
    std::uint64_t n = 0;
    for (const auto &[stream, st] : streams_) {
        (void)stream;
        if (st.evictionHold)
            n++;
    }
    return n;
}

const log::PruneRecord *
BackupStore::pruneRecordOf(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.prune ? &*it->second.prune : nullptr;
}

std::uint64_t
BackupStore::prunedSegments(StreamId stream) const
{
    const log::PruneRecord *rec = pruneRecordOf(stream);
    return rec ? rec->segmentsPruned : 0;
}

std::uint64_t
BackupStore::streamLiveBytes(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.liveBytes;
}

std::uint64_t
BackupStore::streamQuotaBytes() const
{
    const double frac = config_.retention.streamQuotaFraction;
    if (frac <= 0.0 || streams_.empty())
        return ~0ull;
    return static_cast<std::uint64_t>(
        frac * static_cast<double>(config_.capacityBytes) /
        static_cast<double>(streams_.size()));
}

bool
BackupStore::segmentPruned(std::uint64_t idx) const
{
    panicIf(idx >= segmentPruned_.size(),
            "BackupStore: segment idx OOB");
    return segmentPruned_[idx] != 0;
}

const log::SealedSegment &
BackupStore::sealedSegment(std::uint64_t idx) const
{
    panicIf(idx >= segments_.size(), "BackupStore: segment idx OOB");
    panicIf(segmentPruned_[idx] != 0,
            "BackupStore: segment expired by retention GC");
    return segments_[idx];
}

StreamId
BackupStore::streamOf(std::uint64_t idx) const
{
    panicIf(idx >= segmentStream_.size(),
            "BackupStore: segment idx OOB");
    return segmentStream_[idx];
}

const std::deque<std::uint32_t> &
BackupStore::streamSegments(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.stored;
}

log::Segment
BackupStore::openSegment(std::uint64_t idx) const
{
    auto it = streams_.find(streamOf(idx));
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.codec.open(sealedSegment(idx));
}

std::vector<StreamId>
BackupStore::streamIds() const
{
    std::vector<StreamId> ids;
    ids.reserve(streams_.size());
    for (const auto &[stream, st] : streams_) {
        (void)st;
        ids.push_back(stream);
    }
    return ids;
}

const log::SegmentCodec &
BackupStore::streamCodec(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.codec;
}

bool
BackupStore::verifyStreamChain(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    const StreamState &st = it->second;

    log::SegmentChainVerifier verifier;
    // A pruned stream verifies from its signed re-anchor record
    // instead of genesis; the record substitutes for the
    // expired prefix.
    if (st.prune && !verifier.resumeFrom(*st.prune, st.codec))
        return false;
    for (const std::uint32_t idx : st.stored) {
        if (!verifier.verifyNext(segments_[idx], st.codec))
            return false;
    }
    return true;
}

bool
BackupStore::verifyFullChain() const
{
    for (const auto &[stream, st] : streams_) {
        (void)st;
        if (!verifyStreamChain(stream))
            return false;
    }
    return true;
}

void
BackupStore::adoptPruneRecord(StreamId stream,
                              const log::PruneRecord &record)
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    StreamState &st = it->second;
    panicIf(st.lastId != log::kNoSegment || st.prune.has_value(),
            "BackupStore: prune adoption on a stream with history");
    panicIf(record.stream != stream,
            "BackupStore: prune record names another stream");
    panicIf(!st.codec.verifyPrune(record),
            "BackupStore: prune record signature mismatch");
    st.prune = record;
    st.lastId = record.upToId;
    st.chainTail = record.anchor;
    st.haveTail = true;
}

void
BackupStore::releaseStream(StreamId stream)
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    StreamState &st = it->second;
    for (const std::uint32_t idx : st.stored) {
        const std::uint64_t wire = segments_[idx].wireSize();
        used_ -= wire;
        liveSegments_--;
        segments_[idx] = log::SealedSegment{};
        segmentPruned_[idx] = 1;
        freeSlots_.push_back(idx);
    }
    streams_.erase(it);
}

BackupStore::StreamTail
BackupStore::streamTail(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    StreamTail t;
    t.lastId = it->second.lastId;
    t.chainTail = it->second.chainTail;
    t.haveTail = it->second.haveTail;
    return t;
}

void
BackupStore::corruptStoredSegment(StreamId stream, std::uint64_t k)
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    StreamState &st = it->second;
    panicIf(k >= st.stored.size(),
            "BackupStore: corruption index past stream");
    log::SealedSegment &sealed = segments_[st.stored[k]];
    panicIf(sealed.payload.empty(),
            "BackupStore: corrupting an empty payload");
    sealed.payload[sealed.payload.size() / 2] ^= 0x40;
}

void
BackupStore::injectBitRot(StreamId stream, std::uint64_t k,
                          std::size_t first_byte,
                          std::size_t byte_count)
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    StreamState &st = it->second;
    panicIf(k >= st.stored.size(),
            "BackupStore: bit-rot index past stream");
    log::SealedSegment &sealed = segments_[st.stored[k]];
    panicIf(sealed.payload.empty(),
            "BackupStore: bit-rot on an empty payload");
    const std::size_t first =
        first_byte < sealed.payload.size() ? first_byte
                                           : sealed.payload.size() - 1;
    const std::size_t last =
        first + byte_count < sealed.payload.size()
            ? first + byte_count
            : sealed.payload.size();
    for (std::size_t i = first; i < last; i++)
        sealed.payload[i] ^= 0x5A;
}

void
BackupStore::setQuarantined(StreamId stream, bool quarantined)
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    it->second.quarantined = quarantined;
}

bool
BackupStore::quarantined(StreamId stream) const
{
    auto it = streams_.find(stream);
    panicIf(it == streams_.end(), "BackupStore: unknown stream");
    return it->second.quarantined;
}

std::uint64_t
BackupStore::quarantinedStreams() const
{
    std::uint64_t n = 0;
    for (const auto &[stream, st] : streams_) {
        (void)stream;
        if (st.quarantined)
            n++;
    }
    return n;
}

} // namespace rssd::remote
