#include "remote/backup_cluster.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::remote {

BackupCluster::BackupCluster(const BackupClusterConfig &config)
    : config_(config), map_(config.vnodesPerShard)
{
    panicIf(config.shards == 0, "BackupCluster: zero shards");
    panicIf(config.batchSegments == 0,
            "BackupCluster: batchSegments == 0");
    panicIf(config.maxPending == 0, "BackupCluster: maxPending == 0");
    for (std::uint32_t s = 0; s < config.shards; s++)
        makeShard();
}

void
BackupCluster::makeShard()
{
    const ShardId id = static_cast<ShardId>(shards_.size());
    // The queue model charges all service time (per-segment +
    // batch overhead); the store must not add its own on top.
    BackupStoreConfig store_cfg = config_.shard;
    store_cfg.processingTime = 0;

    Shard sh;
    sh.store = std::make_unique<BackupStore>(store_cfg);
    shards_.push_back(std::move(sh));
    map_.addShard(id);
}

ShardId
BackupCluster::addShard()
{
    const ShardId id = static_cast<ShardId>(shards_.size());
    makeShard();
    return id;
}

BackupCluster::Shard &
BackupCluster::shardAt(ShardId shard)
{
    panicIf(shard >= shards_.size(), "BackupCluster: shard id OOB");
    return shards_[shard];
}

const BackupCluster::Shard &
BackupCluster::shardAt(ShardId shard) const
{
    panicIf(shard >= shards_.size(), "BackupCluster: shard id OOB");
    return shards_[shard];
}

ShardId
BackupCluster::attachDevice(DeviceId device,
                            const log::SegmentCodec &codec)
{
    panicIf(placement_.count(device) != 0,
            "BackupCluster: device already attached");
    const ShardId shard = map_.shardOf(device);
    panicIf(shard == kNoShard, "BackupCluster: empty ring");

    Shard &sh = shardAt(shard);
    sh.store->registerStream(device, codec);
    sh.devices.push_back(device);
    placement_.emplace(device, shard);
    return shard;
}

ShardId
BackupCluster::shardOfDevice(DeviceId device) const
{
    auto it = placement_.find(device);
    panicIf(it == placement_.end(),
            "BackupCluster: device not attached");
    return it->second;
}

bool
BackupCluster::ingest(DeviceId device,
                      const log::SealedSegment &segment, Tick arrive_at,
                      Tick &ack_ready_at)
{
    Shard &sh = shardAt(shardOfDevice(device));

    // Device clocks advance independently; clamp arrivals monotonic
    // per shard so the queue model stays causal.
    const Tick arrive = std::max(arrive_at, sh.lastArrive);
    sh.lastArrive = arrive;

    while (!sh.inflight.empty() && sh.inflight.front() <= arrive)
        sh.inflight.pop_front();

    // Bounded backpressure: no queue slot means the capsule is not
    // admitted; the initiator re-offers it every retry interval and
    // service starts on the first poll that finds a slot free. The
    // poll quantization can land past the worker horizon, so a full
    // queue adds real latency instead of disappearing into the FIFO.
    Tick start = arrive;
    if (sh.inflight.size() >= config_.maxPending) {
        const Tick slot_free =
            sh.inflight[sh.inflight.size() - config_.maxPending];
        const Tick retry =
            std::max<Tick>(1, config_.backpressureRetryDelay);
        const Tick polls = (slot_free - arrive + retry - 1) / retry;
        start = arrive + polls * retry;
        sh.stats.backpressureStalls++;
    }

    // The store decides first: verification is the head of service,
    // and a refused segment must not perturb the ingest pipeline
    // (the shard's processingTime is zeroed, so the admission
    // timestamp is the only time the store sees).
    Tick store_ack = 0;
    const bool ok =
        sh.store->ingestSegment(device, segment, start, store_ack);

    if (!ok) {
        // Reject-only service: the verify work still occupies the
        // worker, but a refused segment joins no ingest batch — it
        // neither advances batchFill (group-commit amortization is
        // an accepted-segment property) nor feeds the accepted
        // backlog histogram.
        const Tick done =
            sh.worker.serve(start, config_.perSegmentProcessing);
        sh.inflight.push_back(done);
        ack_ready_at = done;
        sh.stats.segmentsRejected++;
        sh.stats.rejectedBytes += segment.wireSize();
        sh.stats.rejectBacklog.add(
            done > arrive_at ? done - arrive_at : 0);
        return false;
    }

    // Batching: a batch closes when its accepted work drains or it
    // fills up; joining an open batch skips the batch overhead.
    // (Not worker.busyUntil(): reject-only service occupies the
    // worker without opening a batch.)
    const bool new_batch = sh.batchEnd <= start ||
                           sh.batchFill >= config_.batchSegments;
    Tick cost = config_.perSegmentProcessing;
    if (new_batch) {
        sh.batchFill = 0;
        sh.stats.batches++;
        cost += config_.batchOverhead;
    }
    const Tick done = sh.worker.serve(start, cost);
    sh.batchEnd = done;
    sh.batchFill++;
    sh.stats.maxBatchFill =
        std::max(sh.stats.maxBatchFill, sh.batchFill);
    sh.inflight.push_back(done);

    ack_ready_at = done;
    sh.stats.segmentsAccepted++;
    sh.stats.backlog.add(
        done > arrive_at ? done - arrive_at : 0);
    return true;
}

void
BackupCluster::setEvictionHold(DeviceId device, bool held)
{
    shardAt(shardOfDevice(device)).store->setEvictionHold(device,
                                                          held);
}

bool
BackupCluster::evictionHold(DeviceId device) const
{
    return shardAt(shardOfDevice(device)).store->evictionHold(device);
}

void
BackupCluster::runRetentionGc(Tick now)
{
    for (Shard &sh : shards_)
        sh.store->runRetentionGc(now);
}

const BackupStore &
BackupCluster::shardStore(ShardId shard) const
{
    return *shardAt(shard).store;
}

const ShardIngestStats &
BackupCluster::shardStats(ShardId shard) const
{
    return shardAt(shard).stats;
}

const std::vector<DeviceId> &
BackupCluster::shardDevices(ShardId shard) const
{
    return shardAt(shard).devices;
}

bool
BackupCluster::verifyAll() const
{
    for (const Shard &sh : shards_) {
        if (!sh.store->verifyFullChain())
            return false;
    }
    return true;
}

std::uint64_t
BackupCluster::totalSegments() const
{
    // Live segments: what the cluster currently stores (retention
    // GC tombstones excluded).
    std::uint64_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.store->liveSegmentCount();
    return n;
}

std::uint64_t
BackupCluster::totalUsedBytes() const
{
    std::uint64_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.store->usedBytes();
    return n;
}

} // namespace rssd::remote
