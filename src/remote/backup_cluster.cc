#include "remote/backup_cluster.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::remote {

const char *
shardStatusName(ShardStatus s)
{
    switch (s) {
      case ShardStatus::Live: return "live";
      case ShardStatus::Departed: return "departed";
      case ShardStatus::Crashed: return "crashed";
    }
    return "?";
}

BackupCluster::BackupCluster(const BackupClusterConfig &config)
    : config_(config), map_(config.vnodesPerShard)
{
    panicIf(config.shards == 0, "BackupCluster: zero shards");
    panicIf(config.batchSegments == 0,
            "BackupCluster: batchSegments == 0");
    panicIf(config.maxPending == 0, "BackupCluster: maxPending == 0");
    panicIf(config.replication == 0,
            "BackupCluster: replication == 0");
    panicIf(config.replication > config.shards,
            "BackupCluster: replication exceeds shard count");
    for (std::uint32_t s = 0; s < config.shards; s++)
        makeShard();
}

void
BackupCluster::makeShard()
{
    const ShardId id = static_cast<ShardId>(shards_.size());
    // The queue model charges all service time (per-segment +
    // batch overhead); the store must not add its own on top.
    BackupStoreConfig store_cfg = config_.shard;
    store_cfg.processingTime = 0;

    Shard sh;
    sh.store = std::make_unique<BackupStore>(store_cfg);
    sh.store->attachTrace(trace_, id);
    shards_.push_back(std::move(sh));
    map_.addShard(id);
}

ShardId
BackupCluster::addShard()
{
    const ShardId id = static_cast<ShardId>(shards_.size());
    makeShard();
    return id;
}

BackupCluster::Shard &
BackupCluster::shardAt(ShardId shard)
{
    panicIf(shard >= shards_.size(), "BackupCluster: shard id OOB");
    return shards_[shard];
}

const BackupCluster::Shard &
BackupCluster::shardAt(ShardId shard) const
{
    panicIf(shard >= shards_.size(), "BackupCluster: shard id OOB");
    return shards_[shard];
}

ShardId
BackupCluster::attachDevice(DeviceId device,
                            const log::SegmentCodec &codec)
{
    panicIf(placement_.count(device) != 0,
            "BackupCluster: device already attached");
    std::vector<ShardId> replicas =
        map_.successorsOf(device, config_.replication);
    panicIf(replicas.empty(), "BackupCluster: empty ring");
    panicIf(replicas.size() < config_.replication,
            "BackupCluster: not enough live shards for replication");

    for (const ShardId s : replicas) {
        Shard &sh = shardAt(s);
        sh.store->registerStream(device, codec);
        sh.devices.push_back(device);
    }
    const ShardId primary = replicas.front();
    placement_.emplace(device, std::move(replicas));
    codecs_.emplace(device, codec);
    return primary;
}

ShardId
BackupCluster::shardOfDevice(DeviceId device) const
{
    return replicaSetOf(device).front();
}

const std::vector<ShardId> &
BackupCluster::replicaSetOf(DeviceId device) const
{
    auto it = placement_.find(device);
    panicIf(it == placement_.end(),
            "BackupCluster: device not attached");
    return it->second;
}

std::vector<ShardId>
BackupCluster::liveReplicasOf(DeviceId device) const
{
    std::vector<ShardId> live;
    for (const ShardId s : replicaSetOf(device)) {
        if (shardAt(s).status == ShardStatus::Live)
            live.push_back(s);
    }
    return live;
}

std::vector<DeviceId>
BackupCluster::attachedDevices() const
{
    std::vector<DeviceId> out;
    out.reserve(placement_.size());
    for (const auto &[device, replicas] : placement_) {
        (void)replicas;
        out.push_back(device);
    }
    return out;
}

bool
BackupCluster::shardIngest(ShardId sid, Shard &sh, DeviceId device,
                           const log::SealedSegment &segment,
                           Tick arrive_at, Tick &ack_ready_at)
{
    // Device clocks advance independently; clamp arrivals monotonic
    // per shard so the queue model stays causal.
    const Tick arrive = std::max(arrive_at, sh.lastArrive);
    sh.lastArrive = arrive;

    while (!sh.inflight.empty() && sh.inflight.front() <= arrive)
        sh.inflight.pop_front();

    // Bounded backpressure: no queue slot means the capsule is not
    // admitted; the initiator re-offers it every retry interval and
    // service starts on the first poll that finds a slot free. The
    // poll quantization can land past the worker horizon, so a full
    // queue adds real latency instead of disappearing into the FIFO.
    Tick start = arrive;
    if (sh.inflight.size() >= config_.maxPending) {
        const Tick slot_free =
            sh.inflight[sh.inflight.size() - config_.maxPending];
        const Tick retry =
            std::max<Tick>(1, config_.backpressureRetryDelay);
        const Tick polls = (slot_free - arrive + retry - 1) / retry;
        start = arrive + polls * retry;
        sh.stats.backpressureStalls++;
    }

    const Tick service = config_.perSegmentProcessing + sh.extraDelay;

    if (trace_ != nullptr && start > arrive) {
        trace_->complete("ingest", "queue-wait", obs::kTrackCluster,
                         sid, arrive, start,
                         {{"device", device},
                          {"segment", segment.id}});
    }

    // The store decides first: verification is the head of service,
    // and a refused segment must not perturb the ingest pipeline
    // (the shard's processingTime is zeroed, so the admission
    // timestamp is the only time the store sees).
    Tick store_ack = 0;
    const bool ok =
        sh.store->ingestSegment(device, segment, start, store_ack);

    if (!ok) {
        // Reject-only service: the verify work still occupies the
        // worker, but a refused segment joins no ingest batch — it
        // neither advances batchFill (group-commit amortization is
        // an accepted-segment property) nor feeds the accepted
        // backlog histogram.
        const Tick done = sh.worker.serve(start, service);
        sh.inflight.push_back(done);
        ack_ready_at = done;
        sh.stats.segmentsRejected++;
        sh.stats.rejectedBytes += segment.wireSize();
        sh.stats.rejectBacklog.add(
            done > arrive_at ? done - arrive_at : 0);
        if (trace_ != nullptr) {
            trace_->complete("ingest", "reject", obs::kTrackCluster,
                             sid, start, done,
                             {{"device", device},
                              {"segment", segment.id}});
        }
        return false;
    }

    // Batching: a batch closes when its accepted work drains or it
    // fills up; joining an open batch skips the batch overhead.
    // (Not worker.busyUntil(): reject-only service occupies the
    // worker without opening a batch.)
    const bool new_batch = sh.batchEnd <= start ||
                           sh.batchFill >= config_.batchSegments;
    Tick cost = service;
    if (new_batch) {
        sh.batchFill = 0;
        sh.stats.batches++;
        cost += config_.batchOverhead;
        if (trace_ != nullptr) {
            trace_->instant("ingest", "batch-open", obs::kTrackCluster,
                            sid, start,
                            {{"batch", sh.stats.batches}});
        }
    }
    const Tick done = sh.worker.serve(start, cost);
    sh.batchEnd = done;
    sh.batchFill++;
    sh.stats.maxBatchFill =
        std::max(sh.stats.maxBatchFill, sh.batchFill);
    sh.inflight.push_back(done);

    ack_ready_at = done;
    sh.stats.segmentsAccepted++;
    sh.stats.backlog.add(
        done > arrive_at ? done - arrive_at : 0);
    // Queue wait is admission-to-service (backpressure polls), kept
    // separate from backlog (arrival-to-ack); accepted-only so both
    // histograms describe the same population.
    sh.stats.queueWait.add(start > arrive ? start - arrive : 0);
    if (trace_ != nullptr) {
        trace_->complete("ingest", "ingest", obs::kTrackCluster, sid,
                         start, done,
                         {{"device", device},
                          {"segment", segment.id},
                          {"batchFill", sh.batchFill}});
    }
    return true;
}

bool
BackupCluster::ingest(DeviceId device,
                      const log::SealedSegment &segment, Tick arrive_at,
                      Tick &ack_ready_at)
{
    const std::vector<ShardId> &replicas = replicaSetOf(device);
    std::vector<ShardId> live;
    for (const ShardId s : replicas) {
        if (shardAt(s).status == ShardStatus::Live)
            live.push_back(s);
    }

    const std::uint32_t quorum = writeQuorum();
    if (live.size() < quorum) {
        // Below quorum nothing is offered at all: the capsule
        // stalls at the initiator and is re-offered after the retry
        // interval — never dropped, never half-written into a
        // minority of the set.
        repl_.quorumStalls++;
        ack_ready_at = arrive_at +
                       std::max<Tick>(1, config_.backpressureRetryDelay);
        if (trace_ != nullptr) {
            trace_->instant("ingest", "quorum-stall",
                            obs::kTrackCluster,
                            replicas.front(), arrive_at,
                            {{"device", device},
                             {"segment", segment.id},
                             {"live", live.size()},
                             {"quorum", quorum}});
        }
        return false;
    }

    // Offer to every live replica; each runs its own ingest queue.
    // The ack the device sees is the quorum-th fastest replica ack —
    // slower members keep ingesting in the background (and a member
    // that refused converges later via idempotent re-offers or a
    // membership repair).
    std::vector<Tick> acks;
    acks.reserve(live.size());
    Tick worst = arrive_at;
    for (const ShardId s : live) {
        Tick ack = 0;
        if (shardIngest(s, shardAt(s), device, segment, arrive_at,
                        ack)) {
            acks.push_back(ack);
        }
        worst = std::max(worst, ack);
    }

    if (acks.size() < quorum) {
        repl_.quorumFailures++;
        ack_ready_at = worst;
        if (trace_ != nullptr) {
            trace_->instant("ingest", "quorum-fail",
                            obs::kTrackCluster,
                            replicas.front(), worst,
                            {{"device", device},
                             {"segment", segment.id},
                             {"acks", acks.size()},
                             {"quorum", quorum}});
        }
        return false;
    }

    std::sort(acks.begin(), acks.end());
    ack_ready_at = acks[quorum - 1];
    repl_.quorumWrites++;
    if (acks.size() < replicas.size())
        repl_.partialWrites++;
    quorumWait_.add(
        ack_ready_at > arrive_at ? ack_ready_at - arrive_at : 0);
    if (trace_ != nullptr) {
        trace_->complete("ingest", "quorum", obs::kTrackCluster,
                         replicas.front(), arrive_at, ack_ready_at,
                         {{"device", device},
                          {"segment", segment.id},
                          {"acks", acks.size()},
                          {"quorum", quorum}});
        trace_->flowEnd("offload", "capsule",
                        (static_cast<std::uint64_t>(device) << 32) |
                            (segment.id & 0xffffffffull),
                        obs::kTrackCluster, replicas.front(),
                        ack_ready_at);
    }
    return true;
}

// -- Live membership ------------------------------------------------------

ShardId
BackupCluster::joinShard(Tick now)
{
    const ShardId id = addShard();
    rebalance(now);
    return id;
}

void
BackupCluster::leaveShard(ShardId shard, Tick now)
{
    Shard &sh = shardAt(shard);
    panicIf(sh.status != ShardStatus::Live,
            "BackupCluster: leave of non-live shard");
    panicIf(liveShardCount() <= config_.replication,
            "BackupCluster: departure would break replication");
    // Off the ring first, then rebalance: the leaver no longer
    // appears in any successor walk, so every stream it holds
    // migrates out (with the leaver itself as a source) and is
    // released. Only then is the shard marked Departed.
    map_.removeShard(shard);
    rebalance(now);
    sh.status = ShardStatus::Departed;
}

void
BackupCluster::crashShard(ShardId shard)
{
    Shard &sh = shardAt(shard);
    panicIf(sh.status != ShardStatus::Live,
            "BackupCluster: crash of non-live shard");
    // Fail-stop: no migration, no goodbye. The copies die with the
    // shard; replica sets keep the dead member until a rebalance
    // repairs them, and quorum counts against survivors meanwhile.
    sh.status = ShardStatus::Crashed;
    map_.removeShard(shard);

    // Every stream the dead shard replicated is now degraded — tell
    // the repair observer the moment the debt is created, not at the
    // next join. placement_ is an ordered map, so notification order
    // is deterministic.
    if (repairObserver_ != nullptr) {
        for (const auto &[device, replicas] : placement_) {
            if (std::find(replicas.begin(), replicas.end(), shard) !=
                replicas.end()) {
                repairObserver_->streamDegraded(device);
            }
        }
    }
}

void
BackupCluster::migrateStream(DeviceId device,
                             const std::vector<ShardId> &replicas,
                             ShardId target, Tick now)
{
    Shard &dst = shardAt(target);
    // A partial repair copy may already sit on the target (repair
    // racing this join/rebalance). Migration copies everything in
    // one step, so the cheap resolution is: drop the partial copy
    // and let the migration win; the repair engine finds the stream
    // healthy and dequeues it.
    if (dst.store->hasStream(device))
        dropCopy(target, device);
    dst.store->registerStream(device, codecs_.at(device));
    dst.devices.push_back(device);
    repl_.streamsMigrated++;

    // Migration source: first live current member still holding the
    // stream. With the whole old set dead the fresh replica starts
    // empty — the history is genuinely lost, and the device's next
    // segment will be refused there (quorum must come from others).
    const BackupStore *src = nullptr;
    for (const ShardId s : replicas) {
        const Shard &cand = shardAt(s);
        if (cand.status == ShardStatus::Live &&
            cand.store->hasStream(device)) {
            src = cand.store.get();
            break;
        }
    }
    if (src == nullptr)
        return;

    // A migrated prefix is just a re-anchored chain: if the source
    // pruned, its signed PruneRecord seeds the target's chain state
    // (resumeFrom() semantics), and the surviving sealed segments
    // are copied verbatim — never resealed, so every replica stores
    // byte-identical evidence.
    if (const log::PruneRecord *rec = src->pruneRecordOf(device))
        dst.store->adoptPruneRecord(device, *rec);
    for (const std::uint32_t idx : src->streamSegments(device)) {
        const log::SealedSegment &sealed = src->sealedSegment(idx);
        Tick ack = 0;
        if (dst.store->ingestSegment(device, sealed, now, ack)) {
            repl_.segmentsMigrated++;
            repl_.bytesMigrated += sealed.wireSize();
        } else {
            repl_.migrationRejects++;
        }
    }
    dst.store->setEvictionHold(device, src->evictionHold(device));
}

void
BackupCluster::rebalance(Tick now)
{
    for (auto &[device, replicas] : placement_) {
        // Fewer live shards than R leaves a degraded (short) set —
        // repair debt the next join pays down — but never an empty
        // one.
        std::vector<ShardId> target =
            map_.successorsOf(device, config_.replication);
        panicIf(target.empty(),
                "BackupCluster: no live shards to rebalance onto");
        if (target == replicas)
            continue;

        for (const ShardId t : target) {
            if (std::find(replicas.begin(), replicas.end(), t) ==
                replicas.end()) {
                migrateStream(device, replicas, t, now);
            }
        }
        for (const ShardId o : replicas) {
            if (std::find(target.begin(), target.end(), o) !=
                target.end()) {
                continue;
            }
            Shard &old = shardAt(o);
            if (old.status != ShardStatus::Live ||
                !old.store->hasStream(device)) {
                continue; // dead member: nothing left to release
            }
            old.store->releaseStream(device);
            old.devices.erase(std::find(old.devices.begin(),
                                        old.devices.end(), device));
        }
        replicas = std::move(target);
    }
}

ShardStatus
BackupCluster::shardStatus(ShardId shard) const
{
    return shardAt(shard).status;
}

std::uint32_t
BackupCluster::liveShardCount() const
{
    std::uint32_t n = 0;
    for (const Shard &sh : shards_) {
        if (sh.status == ShardStatus::Live)
            n++;
    }
    return n;
}

ShardId
BackupCluster::chainVerifyingReplicaOf(DeviceId device) const
{
    // Quarantined copies are passed over even if they happen to
    // verify — the scrub's verdict stands until the repair rebuilds
    // the copy. They remain the last-ditch fallback when every
    // other copy is gone.
    ShardId fallback = kNoShard;
    ShardId quarantined_fallback = kNoShard;
    for (const ShardId s : replicaSetOf(device)) {
        const Shard &sh = shardAt(s);
        if (sh.status != ShardStatus::Live ||
            !sh.store->hasStream(device)) {
            continue;
        }
        if (sh.store->quarantined(device)) {
            if (quarantined_fallback == kNoShard)
                quarantined_fallback = s;
            continue;
        }
        if (fallback == kNoShard)
            fallback = s;
        if (sh.store->verifyStreamChain(device))
            return s;
    }
    return fallback != kNoShard ? fallback : quarantined_fallback;
}

// -- Anti-entropy repair --------------------------------------------------

void
BackupCluster::setRepairObserver(RepairObserver *observer)
{
    repairObserver_ = observer;
}

StreamHealth
BackupCluster::streamHealth(DeviceId device) const
{
    StreamHealth h;
    h.replicas = config_.replication;
    for (const ShardId s : replicaSetOf(device)) {
        const Shard &sh = shardAt(s);
        if (sh.status != ShardStatus::Live ||
            !sh.store->hasStream(device)) {
            continue;
        }
        h.live++;
        if (sh.store->quarantined(device))
            h.quarantined++;
    }
    return h;
}

std::vector<DeviceId>
BackupCluster::degradedStreams() const
{
    // "Degraded" is judged against what the ring can currently
    // support: with fewer live shards than R the best any repair can
    // do is min(R, live) copies, and a stream holding that many
    // healthy copies is as repaired as it can get.
    const std::uint32_t achievable =
        std::min(config_.replication, liveShardCount());
    std::vector<DeviceId> out;
    for (const auto &[device, replicas] : placement_) {
        (void)replicas;
        const StreamHealth h = streamHealth(device);
        if (h.live < h.quarantined + achievable || h.quarantined > 0)
            out.push_back(device);
    }
    return out;
}

std::uint64_t
BackupCluster::quarantinedCopies() const
{
    std::uint64_t n = 0;
    for (const Shard &sh : shards_) {
        if (sh.status == ShardStatus::Live)
            n += sh.store->quarantinedStreams();
    }
    return n;
}

bool
BackupCluster::copyQuarantined(ShardId shard, DeviceId device) const
{
    const Shard &sh = shardAt(shard);
    return sh.status == ShardStatus::Live &&
           sh.store->hasStream(device) &&
           sh.store->quarantined(device);
}

void
BackupCluster::quarantineCopy(ShardId shard, DeviceId device)
{
    Shard &sh = shardAt(shard);
    panicIf(sh.status != ShardStatus::Live,
            "BackupCluster: quarantine on a dead shard");
    sh.store->setQuarantined(device, true);
    if (repairObserver_ != nullptr)
        repairObserver_->streamDegraded(device);
}

std::vector<ShardId>
BackupCluster::repairTargetsOf(DeviceId device) const
{
    return map_.successorsOf(device, config_.replication);
}

void
BackupCluster::beginRepairCopy(DeviceId device, ShardId target)
{
    Shard &dst = shardAt(target);
    panicIf(dst.status != ShardStatus::Live,
            "BackupCluster: repair copy onto a dead shard");
    panicIf(dst.store->hasStream(device),
            "BackupCluster: repair copy already present");
    dst.store->registerStream(device, codecs_.at(device));
    dst.devices.push_back(device);
}

void
BackupCluster::dropCopy(ShardId shard, DeviceId device)
{
    Shard &sh = shardAt(shard);
    panicIf(!sh.store->hasStream(device),
            "BackupCluster: dropCopy of a stream the shard lacks");
    sh.store->releaseStream(device);
    sh.devices.erase(
        std::find(sh.devices.begin(), sh.devices.end(), device));
}

void
BackupCluster::adoptPruneRecordOn(ShardId target, DeviceId device,
                                  const log::PruneRecord &record)
{
    shardAt(target).store->adoptPruneRecord(device, record);
}

bool
BackupCluster::repairIngest(ShardId target, DeviceId device,
                            const log::SealedSegment &segment,
                            Tick arrive_at, Tick &ack_ready_at)
{
    Shard &sh = shardAt(target);
    panicIf(sh.status != ShardStatus::Live,
            "BackupCluster: repair ingest into a dead shard");
    return shardIngest(target, sh, device, segment, arrive_at,
                       ack_ready_at);
}

void
BackupCluster::commitReplicaSet(DeviceId device,
                                std::vector<ShardId> set)
{
    auto it = placement_.find(device);
    panicIf(it == placement_.end(),
            "BackupCluster: device not attached");
    panicIf(set.empty(), "BackupCluster: empty replica set");
    // Sweep every live shard, not just the old set's members: a
    // rebalance racing the repair can strand a partial repair copy
    // on a shard that is in neither the old nor the new set.
    for (ShardId s = 0; s < shardCount(); s++) {
        if (std::find(set.begin(), set.end(), s) != set.end())
            continue;
        const Shard &sh = shardAt(s);
        if (sh.status == ShardStatus::Live &&
            sh.store->hasStream(device)) {
            dropCopy(s, device);
        }
    }
    it->second = std::move(set);
}

void
BackupCluster::setShardDelay(ShardId shard, Tick extra)
{
    shardAt(shard).extraDelay = extra;
}

BackupStore &
BackupCluster::mutableShardStore(ShardId shard)
{
    return *shardAt(shard).store;
}

// -- Retention lifecycle --------------------------------------------------

void
BackupCluster::setEvictionHold(DeviceId device, bool held)
{
    for (const ShardId s : liveReplicasOf(device))
        shardAt(s).store->setEvictionHold(device, held);
}

bool
BackupCluster::evictionHold(DeviceId device) const
{
    const std::vector<ShardId> live = liveReplicasOf(device);
    panicIf(live.empty(), "BackupCluster: no live replica");
    return shardAt(live.front()).store->evictionHold(device);
}

void
BackupCluster::runRetentionGc(Tick now)
{
    for (Shard &sh : shards_) {
        if (sh.status == ShardStatus::Live)
            sh.store->runRetentionGc(now);
    }
}

const BackupStore &
BackupCluster::shardStore(ShardId shard) const
{
    return *shardAt(shard).store;
}

const ShardIngestStats &
BackupCluster::shardStats(ShardId shard) const
{
    return shardAt(shard).stats;
}

const std::vector<DeviceId> &
BackupCluster::shardDevices(ShardId shard) const
{
    return shardAt(shard).devices;
}

std::uint64_t
BackupCluster::pendingDepth(ShardId shard) const
{
    const Shard &sh = shardAt(shard);
    if (sh.status != ShardStatus::Live)
        return 0;
    return sh.inflight.size();
}

std::uint64_t
BackupCluster::pendingDepthMax() const
{
    std::uint64_t worst = 0;
    for (ShardId s = 0; s < shardCount(); s++)
        worst = std::max(worst, pendingDepth(s));
    return worst;
}

std::uint64_t
BackupCluster::totalSegmentsRejected() const
{
    std::uint64_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.stats.segmentsRejected;
    return n;
}

// -- Observability --------------------------------------------------------

void
BackupCluster::attachTrace(obs::TraceSink *sink)
{
    trace_ = sink;
    for (ShardId s = 0; s < shardCount(); s++)
        shards_[s].store->attachTrace(sink, s);
}

void
BackupCluster::registerMetrics(obs::MetricsRegistry &registry,
                               const std::string &prefix) const
{
    registry.counter(prefix + "quorumWrites",
                     [this] { return repl_.quorumWrites; });
    registry.counter(prefix + "partialWrites",
                     [this] { return repl_.partialWrites; });
    registry.counter(prefix + "quorumStalls",
                     [this] { return repl_.quorumStalls; });
    registry.counter(prefix + "quorumFailures",
                     [this] { return repl_.quorumFailures; });
    registry.counter(prefix + "streamsMigrated",
                     [this] { return repl_.streamsMigrated; });
    registry.counter(prefix + "segmentsMigrated",
                     [this] { return repl_.segmentsMigrated; });
    registry.counter(prefix + "bytesMigrated",
                     [this] { return repl_.bytesMigrated; });
    registry.histogram(prefix + "quorumWait",
                       [this] { return quorumWait_; });
    // Health signals: point-in-time depths are levels (they go
    // down), the fleet-wide reject total is a plain counter.
    registry.level(prefix + "pendingMax",
                   [this] { return pendingDepthMax(); });
    registry.counter(prefix + "segmentsRejected",
                     [this] { return totalSegmentsRejected(); });
    // Shards registered after this call (live joins) are not
    // retro-registered; closures index shards_ because the vector
    // reallocates on join.
    for (std::size_t i = 0; i < shards_.size(); i++) {
        const std::string shard =
            prefix + "shard." + std::to_string(i) + ".";
        registry.counter(shard + "segmentsAccepted", [this, i] {
            return shards_[i].stats.segmentsAccepted;
        });
        registry.counter(shard + "segmentsRejected", [this, i] {
            return shards_[i].stats.segmentsRejected;
        });
        registry.counter(shard + "batches", [this, i] {
            return shards_[i].stats.batches;
        });
        registry.counter(shard + "backpressureStalls", [this, i] {
            return shards_[i].stats.backpressureStalls;
        });
        registry.histogram(shard + "backlog", [this, i] {
            return shards_[i].stats.backlog;
        });
        registry.histogram(shard + "queueWait", [this, i] {
            return shards_[i].stats.queueWait;
        });
        registry.level(shard + "pending", [this, i] {
            return pendingDepth(static_cast<ShardId>(i));
        });
    }
}

bool
BackupCluster::verifyAll() const
{
    for (const Shard &sh : shards_) {
        if (sh.status != ShardStatus::Live)
            continue; // a dead replica's copies are already lost
        if (!sh.store->verifyFullChain())
            return false;
    }
    return true;
}

std::uint64_t
BackupCluster::totalSegments() const
{
    // Live segments: what the cluster currently stores (retention
    // GC tombstones excluded, dead shards excluded).
    std::uint64_t n = 0;
    for (const Shard &sh : shards_) {
        if (sh.status == ShardStatus::Live)
            n += sh.store->liveSegmentCount();
    }
    return n;
}

std::uint64_t
BackupCluster::totalUsedBytes() const
{
    std::uint64_t n = 0;
    for (const Shard &sh : shards_) {
        if (sh.status == ShardStatus::Live)
            n += sh.store->usedBytes();
    }
    return n;
}

} // namespace rssd::remote
