#include "remote/shard_map.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::remote {

std::uint64_t
ShardMap::mix(std::uint64_t x)
{
    // splitmix64 finalizer (Vigna, public domain).
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

ShardMap::ShardMap(std::uint32_t vnodes) : vnodes_(vnodes)
{
    panicIf(vnodes == 0, "ShardMap: vnodes == 0");
}

bool
ShardMap::contains(ShardId shard) const
{
    for (const auto &[pos, owner] : ring_) {
        (void)pos;
        if (owner == shard)
            return true;
    }
    return false;
}

void
ShardMap::addShard(ShardId shard)
{
    panicIf(contains(shard), "ShardMap: shard already on ring");
    for (std::uint32_t v = 0; v < vnodes_; v++) {
        // Two mixing rounds decorrelate (shard, replica) pairs.
        const std::uint64_t pos =
            mix(mix(0xC1A5 + shard) ^ (0x51AB1ull * (v + 1)));
        ring_.emplace_back(pos, shard);
    }
    std::sort(ring_.begin(), ring_.end());
    shardCount_++;
}

void
ShardMap::removeShard(ShardId shard)
{
    panicIf(!contains(shard), "ShardMap: shard not on ring");
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [shard](const auto &p) {
                                   return p.second == shard;
                               }),
                ring_.end());
    shardCount_--;
}

ShardId
ShardMap::shardOf(std::uint64_t key) const
{
    if (ring_.empty())
        return kNoShard;
    const std::uint64_t h = mix(key ^ 0xD0D0CAFEull);
    // First ring point at or after the key hash, wrapping at the top.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    if (it == ring_.end())
        it = ring_.begin();
    return it->second;
}

std::vector<ShardId>
ShardMap::successorsOf(std::uint64_t key, std::uint32_t r) const
{
    std::vector<ShardId> out;
    if (ring_.empty() || r == 0)
        return out;
    const std::uint64_t h = mix(key ^ 0xD0D0CAFEull);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    // Walk clockwise from the key's owner collecting distinct
    // shards; one full lap visits every shard, so the walk is
    // bounded even when r exceeds the ring population.
    const std::size_t start =
        it == ring_.end() ? 0 : static_cast<std::size_t>(
                                    it - ring_.begin());
    const std::size_t want = std::min<std::size_t>(r, shardCount_);
    for (std::size_t step = 0;
         step < ring_.size() && out.size() < want; step++) {
        const ShardId s = ring_[(start + step) % ring_.size()].second;
        if (std::find(out.begin(), out.end(), s) == out.end())
            out.push_back(s);
    }
    return out;
}

} // namespace rssd::remote
