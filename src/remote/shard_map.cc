#include "remote/shard_map.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::remote {

std::uint64_t
ShardMap::mix(std::uint64_t x)
{
    // splitmix64 finalizer (Vigna, public domain).
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

ShardMap::ShardMap(std::uint32_t vnodes) : vnodes_(vnodes)
{
    panicIf(vnodes == 0, "ShardMap: vnodes == 0");
}

bool
ShardMap::contains(ShardId shard) const
{
    for (const auto &[pos, owner] : ring_) {
        (void)pos;
        if (owner == shard)
            return true;
    }
    return false;
}

void
ShardMap::addShard(ShardId shard)
{
    panicIf(contains(shard), "ShardMap: shard already on ring");
    for (std::uint32_t v = 0; v < vnodes_; v++) {
        // Two mixing rounds decorrelate (shard, replica) pairs.
        const std::uint64_t pos =
            mix(mix(0xC1A5 + shard) ^ (0x51AB1ull * (v + 1)));
        ring_.emplace_back(pos, shard);
    }
    std::sort(ring_.begin(), ring_.end());
    shardCount_++;
}

void
ShardMap::removeShard(ShardId shard)
{
    panicIf(!contains(shard), "ShardMap: shard not on ring");
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [shard](const auto &p) {
                                   return p.second == shard;
                               }),
                ring_.end());
    shardCount_--;
}

ShardId
ShardMap::shardOf(std::uint64_t key) const
{
    if (ring_.empty())
        return kNoShard;
    const std::uint64_t h = mix(key ^ 0xD0D0CAFEull);
    // First ring point at or after the key hash, wrapping at the top.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    if (it == ring_.end())
        it = ring_.begin();
    return it->second;
}

} // namespace rssd::remote
