/**
 * @file
 * Consistent-hash shard map for the sharded backup cluster.
 *
 * Device streams are placed on shards by hashing each shard onto a
 * ring at several virtual points and assigning a key to the owner of
 * the first ring point at or after the key's hash. Adding or removing
 * one shard therefore remaps only the keys adjacent to that shard's
 * points — every other stream keeps its placement, which is what
 * keeps per-stream segment chains stable across cluster resizes.
 *
 * All hashing is the splitmix64 finalizer (no libm, no
 * platform-dependent state), so placement is bit-identical across
 * builds — a requirement for the fleet determinism golden test.
 */

#ifndef RSSD_REMOTE_SHARD_MAP_HH
#define RSSD_REMOTE_SHARD_MAP_HH

#include <cstdint>
#include <vector>

namespace rssd::remote {

/** Dense shard identifier within a cluster. */
using ShardId = std::uint32_t;

/** Sentinel for "no shard" (empty map). */
constexpr ShardId kNoShard = ~0u;

class ShardMap
{
  public:
    /**
     * @param vnodes  ring points per shard; more points smooth the
     *                key distribution at O(vnodes) memory per shard.
     */
    explicit ShardMap(std::uint32_t vnodes = 64);

    /** Add @p shard to the ring. Adding twice is a programming error. */
    void addShard(ShardId shard);

    /** Remove @p shard; its keys redistribute to ring successors. */
    void removeShard(ShardId shard);

    /** Owner of @p key (kNoShard when the ring is empty). */
    ShardId shardOf(std::uint64_t key) const;

    /**
     * The first @p r *distinct* shards at or after @p key's hash,
     * walking the ring clockwise — the replica set for R-way
     * replication. successorsOf(key, 1) == {shardOf(key)}. When the
     * ring holds fewer than @p r shards the walk returns them all
     * (still in ring order), so callers must check the size against
     * their quorum requirements.
     */
    std::vector<ShardId> successorsOf(std::uint64_t key,
                                      std::uint32_t r) const;

    std::size_t shardCount() const { return shardCount_; }
    bool contains(ShardId shard) const;

  private:
    static std::uint64_t mix(std::uint64_t x);

    std::uint32_t vnodes_;
    std::size_t shardCount_ = 0;
    /** (ring position, shard), sorted by position then shard. */
    std::vector<std::pair<std::uint64_t, ShardId>> ring_;
};

} // namespace rssd::remote

#endif // RSSD_REMOTE_SHARD_MAP_HH
