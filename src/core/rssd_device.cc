#include "core/rssd_device.hh"

#include <algorithm>

#include "crypto/entropy.hh"
#include "nvme/local_ssd.hh"

namespace rssd::core {

RssdConfig
RssdConfig::forTests()
{
    RssdConfig cfg;
    cfg.ftl.geometry = flash::testGeometry();
    cfg.ftl.opFraction = 0.12;
    cfg.ftl.gcLowWater = 2;
    cfg.ftl.gcHighWater = 4;
    cfg.segmentPages = 32;
    cfg.pumpThreshold = 64;
    cfg.remote.capacityBytes = 4ull * units::GiB;
    return cfg;
}

RssdDevice::RssdDevice(const RssdConfig &config, VirtualClock &clock)
    : RssdDevice(config, clock, nullptr)
{
}

RssdDevice::RssdDevice(const RssdConfig &config, VirtualClock &clock,
                       net::CapsuleTarget &remote_target)
    : RssdDevice(config, clock, &remote_target)
{
}

RssdDevice::RssdDevice(const RssdConfig &config, VirtualClock &clock,
                       net::CapsuleTarget *external_target)
    : config_(config),
      clock_(clock),
      codec_(log::SegmentCodec::fromSeed(config.keySeed)),
      ftl_(config.ftl, clock, this)
{
    link_ = std::make_unique<net::EthernetLink>(config_.link);
    net::CapsuleTarget *target = external_target;
    if (target == nullptr) {
        store_ = std::make_unique<remote::BackupStore>(config_.remote,
                                                       codec_);
        target = store_.get();
    }
    transport_ = std::make_unique<net::NvmeOeTransport>(
        config_.transport, *link_, *target);
    offload_ = std::make_unique<OffloadEngine>(
        config_, ftl_, oplog_, retention_, codec_, *transport_, clock_);
    liveEntropy_.assign(ftl_.logicalPages(), detect::kNoEntropy);
}

RssdDevice::~RssdDevice() = default;

remote::BackupStore &
RssdDevice::backupStore()
{
    panicIf(!store_, "RssdDevice: no local store (fleet mode)");
    return *store_;
}

const remote::BackupStore &
RssdDevice::backupStore() const
{
    panicIf(!store_, "RssdDevice: no local store (fleet mode)");
    return *store_;
}

std::uint64_t
RssdDevice::capacityPages() const
{
    return ftl_.logicalPages();
}

std::uint32_t
RssdDevice::pageSize() const
{
    return ftl_.config().geometry.pageSize;
}

float
RssdDevice::currentEntropy(flash::Lpa lpa) const
{
    panicIf(lpa >= liveEntropy_.size(), "currentEntropy: lpa OOB");
    return liveEntropy_[lpa];
}

void
RssdDevice::attachDetector(detect::Detector *detector)
{
    detectors_.push_back(detector);
}

void
RssdDevice::tapEvent(const detect::IoEvent &event)
{
    for (detect::Detector *d : detectors_)
        d->observe(event);
}

ftl::RetainVerdict
RssdDevice::onInvalidate(flash::Lpa lpa, flash::Ppa old_ppa,
                         const flash::Oob &oob,
                         ftl::InvalidateCause cause, Tick now)
{
    // Conservative retention: every invalidated page is held and
    // queued for offload, in data-version order.
    log::RetainedPage page;
    page.dataSeq = oob.seq;
    page.lpa = lpa;
    page.ppa = old_ppa;
    page.writtenAt = oob.writeTick;
    page.invalidatedAt = now;
    page.cause = cause == ftl::InvalidateCause::HostTrim
        ? log::RetainCause::Trim
        : log::RetainCause::Overwrite;
    retention_.add(page);

    pendingInvalidate_.present = true;
    pendingInvalidate_.prevDataSeq = oob.seq;
    return ftl::RetainVerdict::Hold;
}

void
RssdDevice::onHeldRelocated(flash::Ppa from, flash::Ppa to)
{
    retention_.onRelocated(from, to);
}

void
RssdDevice::onDiscarded(flash::Ppa ppa)
{
    // Every invalid page is held until offloaded, so GC can only
    // discard pages whose holds were already released — nothing to do.
    (void)ppa;
}

ftl::IoResult
RssdDevice::writeOne(flash::Lpa lpa,
                     const std::vector<std::uint8_t> &content)
{
    float entropy = detect::kNoEntropy;
    if (config_.computeEntropy && !content.empty()) {
        entropy = static_cast<float>(
            crypto::shannonEntropy(content.data(), content.size()));
    }

    pendingInvalidate_ = PendingInvalidate{};
    ftl::IoResult r = ftl_.write(lpa, content, clock_.now());

    if (r.status == ftl::Status::NoSpace) {
        // Retention backpressure: force the offload to drain, wait
        // for the acknowledgments, then retry once. Only a truly
        // full remote store turns this into an error.
        stats_.backpressureStalls++;
        offload_->pump(clock_.now(), /*force=*/true);
        clock_.advanceTo(offload_->lastAckAt());
        pendingInvalidate_ = PendingInvalidate{};
        r = ftl_.write(lpa, content, clock_.now());
        if (r.status == ftl::Status::NoSpace) {
            stats_.deviceFullErrors++;
            return r;
        }
    }

    // Log the mutation with its backtrack pointer.
    const flash::Ppa new_ppa = ftl_.mappingOf(lpa);
    const std::uint64_t data_seq = ftl_.nand().oob(new_ppa).seq;
    const std::uint64_t prev_seq = pendingInvalidate_.present
        ? pendingInvalidate_.prevDataSeq
        : log::kNoDataSeq;
    oplog_.append(log::OpKind::Write, lpa, data_seq, prev_seq,
                  clock_.now(), entropy);
    stats_.loggedWrites++;

    detect::IoEvent ev;
    ev.kind = detect::EventKind::Write;
    ev.lpa = lpa;
    ev.timestamp = clock_.now();
    ev.entropy = entropy;
    ev.prevEntropy = liveEntropy_[lpa];
    ev.overwrite = pendingInvalidate_.present;
    ev.seq = oplog_.totalAppended() - 1;
    tapEvent(ev);

    liveEntropy_[lpa] = entropy;

    // Opportunistic offload between host commands.
    if (retention_.size() >= config_.pumpThreshold)
        offload_->pump(clock_.now(), /*force=*/false);

    return r;
}

ftl::IoResult
RssdDevice::readOne(flash::Lpa lpa, std::vector<std::uint8_t> &content)
{
    const ftl::IoResult r = ftl_.read(lpa, clock_.now());
    if (r.status == ftl::Status::Ok)
        content = ftl_.lastReadContent();

    if (config_.logReads && r.status == ftl::Status::Ok) {
        // Record which data version the host observed; dataSeq makes
        // read-then-{overwrite,trim} patterns reconstructible offline.
        const flash::Ppa ppa = ftl_.mappingOf(lpa);
        oplog_.append(log::OpKind::Read, lpa,
                      ftl_.nand().oob(ppa).seq, log::kNoDataSeq,
                      clock_.now(), detect::kNoEntropy);
    }

    detect::IoEvent ev;
    ev.kind = detect::EventKind::Read;
    ev.lpa = lpa;
    ev.timestamp = clock_.now();
    ev.seq = oplog_.totalAppended();
    tapEvent(ev);
    return r;
}

ftl::IoResult
RssdDevice::trimOne(flash::Lpa lpa)
{
    pendingInvalidate_ = PendingInvalidate{};
    const ftl::IoResult r = ftl_.trim(lpa, clock_.now());

    if (pendingInvalidate_.present) {
        // Enhanced TRIM: the mapping is gone (reads return zeros) but
        // the data version is retained; log the trim with the pointer
        // to the version it hid.
        oplog_.append(log::OpKind::Trim, lpa, log::kNoDataSeq,
                      pendingInvalidate_.prevDataSeq, clock_.now(),
                      detect::kNoEntropy);
        stats_.loggedTrims++;

        detect::IoEvent ev;
        ev.kind = detect::EventKind::Trim;
        ev.lpa = lpa;
        ev.timestamp = clock_.now();
        ev.seq = oplog_.totalAppended() - 1;
        tapEvent(ev);

        liveEntropy_[lpa] = detect::kNoEntropy;

        if (retention_.size() >= config_.pumpThreshold)
            offload_->pump(clock_.now(), /*force=*/false);
    }
    return r;
}

nvme::Completion
RssdDevice::submit(const nvme::Command &cmd)
{
    return nvme::executeOnFtl(
        cmd, pageSize(), capacityPages(), clock_,
        [this](flash::Lpa lpa, const std::vector<std::uint8_t> &page) {
            return writeOne(lpa, page);
        },
        [this](flash::Lpa lpa, std::vector<std::uint8_t> &page) {
            return readOne(lpa, page);
        },
        [this](flash::Lpa lpa) { return trimOne(lpa); });
}

void
RssdDevice::drainOffload()
{
    offload_->pump(clock_.now(), /*force=*/true);
    clock_.advanceTo(offload_->lastAckAt());
}

void
RssdDevice::pumpOffload()
{
    offload_->pump(clock_.now(), /*force=*/false);
}

} // namespace rssd::core
