/**
 * @file
 * The offload engine: seals retained pages + operation-log entries
 * into segments and ships them over NVMe-oE, in time order.
 *
 * This is the mechanism that turns "conservatively retain everything"
 * from a capacity disaster into the paper's headline result: local
 * spare space only buffers the retention stream; the remote budget
 * determines how long history survives (Figure 2).
 */

#ifndef RSSD_CORE_OFFLOAD_HH
#define RSSD_CORE_OFFLOAD_HH

#include <cstdint>

#include "core/rssd_config.hh"
#include "ftl/ftl.hh"
#include "log/oplog.hh"
#include "log/retention.hh"
#include "log/segment.hh"
#include "sim/clock.hh"

namespace rssd::core {

/** Offload counters. */
struct OffloadStats
{
    std::uint64_t segmentsSealed = 0;
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t pagesOffloaded = 0;
    std::uint64_t entriesOffloaded = 0;
    std::uint64_t bytesRaw = 0;
    std::uint64_t bytesSealed = 0;

    double
    compressionRatio() const
    {
        if (bytesSealed == 0)
            return 1.0;
        return static_cast<double>(bytesRaw) /
               static_cast<double>(bytesSealed);
    }
};

class OffloadEngine
{
  public:
    OffloadEngine(const RssdConfig &config, ftl::PageMappedFtl &ftl,
                  log::OperationLog &oplog,
                  log::RetentionIndex &retention,
                  const log::SegmentCodec &codec,
                  log::SegmentSink &sink, VirtualClock &clock);

    /**
     * Seal-and-ship. With @p force, drains everything pending
     * (partial segments included); otherwise only full segments are
     * sealed.
     * @return true if every submitted segment was accepted.
     */
    bool pump(Tick now, bool force);

    /** True once the remote store has rejected a segment as full. */
    bool remoteFull() const { return remoteFull_; }

    /** Completion time of the most recent accepted segment. */
    Tick lastAckAt() const { return lastAckAt_; }

    const OffloadStats &stats() const { return stats_; }

  private:
    /** Seal and submit one segment of up to segmentPages pages. */
    bool sealOne(Tick now, bool force);

    const RssdConfig &config_;
    ftl::PageMappedFtl &ftl_;
    log::OperationLog &oplog_;
    log::RetentionIndex &retention_;
    log::SegmentCodec codec_;
    log::SegmentSink &sink_;
    VirtualClock &clock_;

    std::uint64_t nextSegmentId_ = 0;
    std::uint64_t prevSegmentId_ = log::kNoSegment;
    BusyResource sealEngine_;
    Tick lastAckAt_ = 0;
    bool remoteFull_ = false;
    OffloadStats stats_;
};

} // namespace rssd::core

#endif // RSSD_CORE_OFFLOAD_HH
