/**
 * @file
 * The offload engine: seals retained pages + operation-log entries
 * into segments and ships them over NVMe-oE, in time order.
 *
 * This is the mechanism that turns "conservatively retain everything"
 * from a capacity disaster into the paper's headline result: local
 * spare space only buffers the retention stream; the remote budget
 * determines how long history survives (Figure 2).
 */

#ifndef RSSD_CORE_OFFLOAD_HH
#define RSSD_CORE_OFFLOAD_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/rssd_config.hh"
#include "ftl/ftl.hh"
#include "log/oplog.hh"
#include "log/retention.hh"
#include "log/segment.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/clock.hh"
#include "sim/stats.hh"

namespace rssd::core {

/** Offload counters. */
struct OffloadStats
{
    std::uint64_t segmentsSealed = 0;
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t remoteRejects = 0; ///< submits refused by the store
    std::uint64_t parks = 0;     ///< segments parked after a refuse
    std::uint64_t resubmits = 0; ///< re-offers of a parked segment
    std::uint64_t pagesOffloaded = 0;
    std::uint64_t entriesOffloaded = 0;
    std::uint64_t bytesRaw = 0;
    std::uint64_t bytesSealed = 0;

    double
    compressionRatio() const
    {
        if (bytesSealed == 0)
            return 1.0;
        return static_cast<double>(bytesRaw) /
               static_cast<double>(bytesSealed);
    }
};

class OffloadEngine
{
  public:
    OffloadEngine(const RssdConfig &config, ftl::PageMappedFtl &ftl,
                  log::OperationLog &oplog,
                  log::RetentionIndex &retention,
                  const log::SegmentCodec &codec,
                  log::SegmentSink &sink, VirtualClock &clock);

    /**
     * Seal-and-ship. With @p force, drains everything pending
     * (partial segments included); otherwise only full segments are
     * sealed.
     * @return true if every submitted segment was accepted.
     */
    bool pump(Tick now, bool force);

    /**
     * True while the engine is backing off from a rejected submit.
     * A rejection is never latched forever: after remoteRetryDelay
     * the engine probes again on the next pump (retention GC on the
     * remote side frees space continuously, so a transiently full
     * store must not permanently stop offload), and a forced pump
     * retries immediately.
     */
    bool remoteFull() const { return retryAt_ != 0; }

    /** Earliest time a non-forced pump will probe the remote again
     *  (0 = not backing off). */
    Tick retryAt() const { return retryAt_; }

    /** Completion time of the most recent accepted segment. */
    Tick lastAckAt() const { return lastAckAt_; }

    const OffloadStats &stats() const { return stats_; }

    /** Seal-stage latency (flash reads + compress + encrypt, per
     *  sealed segment) — always on, merged fleet-wide into the
     *  FleetReport's "latency" block. */
    const LatencyHistogram &sealLatency() const { return sealLatency_; }

    /**
     * Attach a trace sink (nullptr detaches): seal spans, capsule
     * flow starts, ship/park/resubmit events land on the devices
     * track under @p tid. Read-only — tracing never perturbs the
     * engine's state or timing.
     */
    void
    attachTrace(obs::TraceSink *sink, std::uint64_t tid)
    {
        trace_ = sink;
        traceTid_ = tid;
    }

    /** Register this engine's instruments under @p prefix. */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

  private:
    /** Seal and submit one segment of up to segmentPages pages. */
    bool sealOne(Tick now, bool force);

    /**
     * A sealed segment the store refused, parked for resubmission:
     * a retry probe re-ships these exact bytes instead of paying
     * the flash reads and seal compute again (the content is
     * already deterministic, so nothing changes on the wire). The
     * batch pages stay in the retention index meanwhile — history
     * and recovery must keep seeing them as locally held.
     */
    struct PendingResubmit
    {
        log::SealedSegment sealed;
        std::size_t batchPages = 0;
        std::uint64_t shippedEntries = 0;
        std::uint64_t lastEntrySeq = 0;
        std::uint64_t segId = 0;
    };

    /** Re-offer pending_ at time @p now. */
    bool resubmit(Tick now);

    const RssdConfig &config_;
    ftl::PageMappedFtl &ftl_;
    log::OperationLog &oplog_;
    log::RetentionIndex &retention_;
    log::SegmentCodec codec_;
    log::SegmentSink &sink_;
    VirtualClock &clock_;

    /** Capsule flow id: links this device's seal span to the shard
     *  ingest and quorum events downstream. */
    std::uint64_t flowId(std::uint64_t seg_id) const
    {
        return (traceTid_ << 32) | (seg_id & 0xffffffffull);
    }

    std::uint64_t nextSegmentId_ = 0;
    std::uint64_t prevSegmentId_ = log::kNoSegment;
    BusyResource sealEngine_;
    Tick lastAckAt_ = 0;
    Tick retryAt_ = 0; ///< reject backoff deadline (0 = none)
    std::optional<PendingResubmit> pending_;
    OffloadStats stats_;
    LatencyHistogram sealLatency_;
    obs::TraceSink *trace_ = nullptr;
    std::uint64_t traceTid_ = 0;
};

} // namespace rssd::core

#endif // RSSD_CORE_OFFLOAD_HH
