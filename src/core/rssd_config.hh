/**
 * @file
 * Configuration of a complete RSSD instance: the FTL beneath it, the
 * hardware-isolated NVMe-oE path beside it, and the remote store
 * behind it.
 */

#ifndef RSSD_CORE_RSSD_CONFIG_HH
#define RSSD_CORE_RSSD_CONFIG_HH

#include <cstdint>
#include <string>

#include "ftl/ftl.hh"
#include "net/link.hh"
#include "net/transport.hh"
#include "remote/backup_store.hh"

namespace rssd::core {

struct RssdConfig
{
    ftl::FtlConfig ftl;
    net::LinkConfig link;
    net::TransportConfig transport;
    remote::BackupStoreConfig remote;

    /** Shared secret between firmware and remote store. */
    std::string keySeed = "rssd-device-key-v1";

    /** Retained pages bundled per sealed segment. */
    std::uint32_t segmentPages = 256;

    /**
     * Pending-retention backlog (pages) above which the device
     * eagerly seals segments even between host commands.
     */
    std::uint32_t pumpThreshold = 512;

    /**
     * Device-side engine throughputs for sealing (hardware
     * compression / encryption blocks on the controller).
     */
    double compressMBps = 3000.0;
    double encryptMBps = 5000.0;

    /**
     * Backoff after the remote store rejects a segment: the offload
     * engine probes again on the first pump at least this much
     * later (a forced drain retries immediately). Pairs with the
     * store's retention GC — a transiently full remote stalls
     * offload, never stops it.
     */
    Tick remoteRetryDelay = 1 * units::MS;

    /** Compute per-page content entropy for logging/detection. */
    bool computeEntropy = true;

    /**
     * Also log host reads into the hash-chained operation log. Off
     * by default (space/offload cost); turning it on lets the
     * post-attack analyzer reproduce *every* storage operation in
     * original order and run read-pattern detectors (read-then-
     * overwrite, read-then-trim) offline.
     */
    bool logReads = false;

    /** A small test-size configuration (16 MiB SSD). */
    static RssdConfig forTests();
};

} // namespace rssd::core

#endif // RSSD_CORE_RSSD_CONFIG_HH
