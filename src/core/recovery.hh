/**
 * @file
 * Zero-data-loss recovery: roll the device's logical contents back to
 * an arbitrary point in logged history.
 *
 * Works by replaying the trusted operation log up to the target
 * point to compute the live version of every LBA at that moment,
 * then restoring each divergent LBA from whichever source still
 * holds that version (live page, locally retained page, or remote
 * segment). Because RSSD never discards a version before it is
 * safely remote, every replayed state is reachable — the paper's
 * "zero data loss" guarantee.
 */

#ifndef RSSD_CORE_RECOVERY_HH
#define RSSD_CORE_RECOVERY_HH

#include <cstdint>

#include "core/history.hh"

namespace rssd::core {

/** Outcome of a recovery run. */
struct RecoveryReport
{
    std::uint64_t lpasExamined = 0;
    std::uint64_t pagesRestored = 0;     ///< rewritten with old content
    std::uint64_t restoredFromLocal = 0; ///< held or live on flash
    std::uint64_t restoredFromRemote = 0;
    std::uint64_t unmappedRestored = 0;  ///< rolled back to "no data"
    std::uint64_t unresolved = 0;        ///< version not found
    std::uint64_t bytesFetched = 0;
    /**
     * The requested target lies before the retention-GC horizon:
     * the entries/versions needed to reconstruct that state were
     * expired remotely. The run does nothing — a clear error beats
     * a silent partial restore.
     */
    bool beforePrunedHorizon = false;
    Tick startedAt = 0;
    Tick finishedAt = 0;

    bool ok() const { return unresolved == 0 && !beforePrunedHorizon; }
    Tick duration() const { return finishedAt - startedAt; }
};

class RecoveryEngine
{
  public:
    /** @param history  a freshly built DeviceHistory. */
    explicit RecoveryEngine(DeviceHistory &history);

    /**
     * Restore the logical space to its state after applying entries
     * with logSeq < @p target_seq. When the history was pruned by
     * the remote retention GC, targets before the horizon
     * (prunedHorizonSeq) fail with beforePrunedHorizon set.
     */
    RecoveryReport recoverToLogSeq(std::uint64_t target_seq);

    /** Restore to the state as of simulated time @p t (inclusive).
     *  Same horizon rule as recoverToLogSeq. */
    RecoveryReport recoverToTime(Tick t);

    /**
     * Selective recovery: restore only LBAs in [first, first+count)
     * to their state at @p target_seq, leaving the rest of the
     * device untouched. This is the "restore these files" workflow —
     * much faster than whole-device rollback when the attack scope
     * is known from the analyzer's per-victim evidence chains.
     */
    RecoveryReport recoverRange(flash::Lpa first, std::uint64_t count,
                                std::uint64_t target_seq);

  private:
    /** Shared rollback core; @p in_scope filters the LBAs restored. */
    template <typename InScope>
    RecoveryReport recoverFiltered(std::uint64_t target_seq,
                                   InScope &&in_scope);

    DeviceHistory &history_;
};

} // namespace rssd::core

#endif // RSSD_CORE_RECOVERY_HH
