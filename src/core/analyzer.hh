/**
 * @file
 * Post-attack analysis on the trusted evidence chain (paper §3,
 * "Trusted post-attack analysis").
 *
 * The analyzer runs where the log lives — on the remote analysis
 * host, with the device contributing only its local tail. It:
 *   1. verifies the evidence chain end to end (hash chain + HMACs),
 *   2. replays the history through offline detectors (no DRAM-bound
 *      windows, so the timing attack cannot hide),
 *   3. reconstructs per-victim I/O sequences via backtrack pointers,
 *   4. recommends the recovery point just before the first
 *      implicated operation.
 *
 * Analysis cost is modelled (fetch bytes over the link + per-entry
 * processing on the server) to reproduce the paper's "efficient
 * post-attack analysis" claim.
 */

#ifndef RSSD_CORE_ANALYZER_HH
#define RSSD_CORE_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "core/history.hh"
#include "detect/detector.hh"

namespace rssd::core {

/** What the offline analysis concluded. */
struct AttackFinding
{
    bool detected = false;
    std::uint64_t firstSuspectSeq = 0;
    std::uint64_t lastSuspectSeq = 0;
    std::uint64_t implicatedOps = 0;
    Tick attackStart = 0; ///< timestamp of the first implicated op
    Tick attackEnd = 0;
    /** Recover to this logSeq to land just before the attack. */
    std::uint64_t recommendedRecoverySeq = 0;
};

/**
 * Knobs for the offline detection pass over an entry stream. Shared
 * by the single-device PostAttackAnalyzer and the cluster-side
 * forensics subsystem (src/forensics/), so the two can never drift
 * on what "the offline detectors" means.
 */
struct OfflineScanConfig
{
    detect::CumulativeEntropyAuditor::Config auditor;
    /** Trim-burst rule: this many trims within the window is a
     *  trimming-attack signature. */
    std::size_t trimBurstCount = 64;
    Tick trimBurstWindow = 60 * units::SEC;
};

/** Evidence statistics a scan gathers beyond the finding itself. */
struct OfflineScanStats
{
    /** High-entropy overwrites of already-high-entropy data (junk
     *  churning junk — the shard-flood signature; encryption is
     *  high-over-*low* and counts toward the finding instead). */
    std::uint64_t highOverHighWrites = 0;
};

/**
 * Convert one log entry into a detector event. @p prev_entropy is
 * the entropy of the version this entry superseded (ignored unless
 * the entry is an overwrite).
 */
detect::IoEvent eventFromEntry(const log::LogEntry &entry,
                               float prev_entropy);

/**
 * Replay @p entries (one device's operation history, oldest first,
 * logSeq ascending) through the offline detectors and derive the
 * attack finding: the cumulative entropy auditor plus the trim-burst
 * rule, with the recommended recovery point just before the first
 * implicated operation. Pure function of the entries — needs no
 * device, so it runs equally on a DeviceHistory or on evidence
 * streamed out of a remote shard.
 */
AttackFinding scanEntries(const std::vector<log::LogEntry> &entries,
                          const OfflineScanConfig &config,
                          OfflineScanStats *stats = nullptr);

/** Full analysis output. */
struct AnalysisReport
{
    bool chainIntact = false;
    std::uint64_t totalEntries = 0;
    std::uint64_t remoteSegments = 0;
    std::uint64_t bytesFetched = 0;
    AttackFinding finding;
    Tick startedAt = 0;
    Tick finishedAt = 0;

    Tick duration() const { return finishedAt - startedAt; }
};

class PostAttackAnalyzer
{
  public:
    struct Config
    {
        /** Offline detection knobs (shared with forensics). */
        OfflineScanConfig scan;
        /** Server-side processing cost per log entry. */
        Tick perEntryCpu = 80 * units::NS;
    };

    explicit PostAttackAnalyzer(DeviceHistory &history)
        : PostAttackAnalyzer(history, Config())
    {
    }
    PostAttackAnalyzer(DeviceHistory &history, const Config &config);

    /** Run the full pipeline (verify + detect + window). */
    AnalysisReport analyze();

    /**
     * Evidence chain for one victim LBA: every logged operation that
     * touched it, oldest first, cross-checked against the backtrack
     * (prevDataSeq) pointers.
     */
    std::vector<log::LogEntry> backtrackLpa(flash::Lpa lpa) const;

    /** Convert a log entry stream into detector events. */
    detect::IoEvent eventFor(const log::LogEntry &entry) const;

  private:
    DeviceHistory &history_;
    Config config_;
};

} // namespace rssd::core

#endif // RSSD_CORE_ANALYZER_HH
