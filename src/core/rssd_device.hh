/**
 * @file
 * RssdDevice — the ransomware-aware SSD (the paper's primary
 * contribution, Figure 1).
 *
 * One object owns the whole codesign:
 *   host commands -> page-mapped FTL (with retention holds)
 *                 -> hardware-assisted operation log (hash chain)
 *                 -> retention index (stale pages, time order)
 *                 -> offload engine -> NVMe-oE link -> remote store.
 *
 * Defense properties implemented here:
 *  - *Zero data loss*: every invalidated or trimmed page is held
 *    until its sealed segment is acknowledged remotely; GC can move
 *    but never erase it.
 *  - *Enhanced TRIM*: trim drops the mapping (reads return zeros, so
 *    the host-visible semantics are preserved) but the data enters
 *    the retention stream instead of the garbage pool — the trimming
 *    attack erases nothing.
 *  - *GC-attack immunity*: capacity pressure translates into offload
 *    backpressure (writes wait for acknowledgments), never into
 *    retained-data loss. The device only reports DeviceFull when the
 *    *remote* budget is truly exhausted.
 *  - *Timing-attack resilience*: nothing to detect in real time is
 *    needed; the full history is preserved for offline analysis.
 *
 * Ownership and threading:
 *
 *  - An RssdDevice exclusively owns everything behind the host
 *    interface: the FTL, operation log, retention index, segment
 *    codec, Ethernet link, NVMe-oE transport, offload engine and the
 *    remote BackupStore. It is non-copyable and non-movable; the
 *    component accessors below return references whose lifetime is
 *    bounded by the device's.
 *  - The two externally-owned collaborators are *borrowed*: the
 *    VirtualClock passed at construction (the caller keeps it alive
 *    for the device's whole lifetime) and any Detector passed to
 *    attachDetector() (never freed by the device; detach by
 *    destroying the device first).
 *  - The device is NOT thread-safe. The whole simulator is
 *    single-threaded by design: every call advances the shared
 *    VirtualClock, so concurrent submit() calls would race on
 *    simulated time itself. Run one device (and its clock) per
 *    thread, or externally serialize all access. Distinct devices
 *    with distinct clocks are fully independent.
 */

#ifndef RSSD_CORE_RSSD_DEVICE_HH
#define RSSD_CORE_RSSD_DEVICE_HH

#include <memory>
#include <vector>

#include "core/offload.hh"
#include "core/rssd_config.hh"
#include "detect/detector.hh"
#include "ftl/ftl.hh"
#include "log/oplog.hh"
#include "log/retention.hh"
#include "log/segment.hh"
#include "net/link.hh"
#include "net/transport.hh"
#include "nvme/command.hh"
#include "remote/backup_store.hh"

namespace rssd::core {

/** RSSD-level counters (beyond FTL and offload stats). */
struct RssdStats
{
    std::uint64_t loggedWrites = 0;
    std::uint64_t loggedTrims = 0;
    std::uint64_t backpressureStalls = 0; ///< writes that waited on acks
    std::uint64_t deviceFullErrors = 0;   ///< remote budget exhausted
};

class RssdDevice : public nvme::BlockDevice, private ftl::FtlPolicy
{
  public:
    RssdDevice(const RssdConfig &config, VirtualClock &clock);

    /**
     * Fleet-mode construction: the device still owns its Ethernet
     * link and NVMe-oE transport, but the far end of the wire is the
     * caller's @p remote_target (a shard-cluster portal) instead of a
     * private in-process BackupStore. The target is borrowed and must
     * outlive the device; backupStore() is unavailable in this mode.
     */
    RssdDevice(const RssdConfig &config, VirtualClock &clock,
               net::CapsuleTarget &remote_target);

    ~RssdDevice() override;

    RssdDevice(const RssdDevice &) = delete;
    RssdDevice &operator=(const RssdDevice &) = delete;

    // -- nvme::BlockDevice ---------------------------------------------

    nvme::Completion submit(const nvme::Command &cmd) override;
    std::uint64_t capacityPages() const override;
    std::uint32_t pageSize() const override;

    // -- RSSD services -----------------------------------------------------

    /** Force-seal and ship everything pending. */
    void drainOffload();

    /**
     * Opportunistic offload tick (fleet scheduler hook): seal and
     * ship any *full* segments without waiting for acknowledgments,
     * exactly as the device does between host commands.
     */
    void pumpOffload();

    /**
     * Attach a live detector fed from the device's event tap (used
     * by baseline-style in-device detection experiments; RSSD itself
     * analyzes remotely).
     */
    void attachDetector(detect::Detector *detector);

    // -- Component access (analysis, recovery, tests, benches) -----------

    VirtualClock &clock() { return clock_; }
    ftl::PageMappedFtl &ftl() { return ftl_; }
    const ftl::PageMappedFtl &ftl() const { return ftl_; }
    log::OperationLog &opLog() { return oplog_; }
    const log::OperationLog &opLog() const { return oplog_; }
    log::RetentionIndex &retention() { return retention_; }
    const log::RetentionIndex &retention() const { return retention_; }
    OffloadEngine &offload() { return *offload_; }
    const OffloadEngine &offload() const { return *offload_; }
    /** True when the device owns an in-process remote store (single-
     *  device mode); false in fleet mode (external cluster target). */
    bool hasLocalStore() const { return store_ != nullptr; }
    remote::BackupStore &backupStore();
    const remote::BackupStore &backupStore() const;
    net::EthernetLink &link() { return *link_; }
    const net::NvmeOeTransport &transport() const { return *transport_; }
    const log::SegmentCodec &codec() const { return codec_; }
    const RssdConfig &config() const { return config_; }
    const RssdStats &stats() const { return stats_; }

    /** Entropy of the current version of @p lpa (kNoEntropy if none). */
    float currentEntropy(flash::Lpa lpa) const;

  private:
    // -- ftl::FtlPolicy ----------------------------------------------------

    ftl::RetainVerdict onInvalidate(flash::Lpa lpa, flash::Ppa old_ppa,
                                    const flash::Oob &oob,
                                    ftl::InvalidateCause cause,
                                    Tick now) override;
    void onHeldRelocated(flash::Ppa from, flash::Ppa to) override;
    void onDiscarded(flash::Ppa ppa) override;

    // -- Internals ---------------------------------------------------------

    ftl::IoResult writeOne(flash::Lpa lpa,
                           const std::vector<std::uint8_t> &content);
    ftl::IoResult readOne(flash::Lpa lpa,
                          std::vector<std::uint8_t> &content);
    ftl::IoResult trimOne(flash::Lpa lpa);

    void tapEvent(const detect::IoEvent &event);

    /** Shared construction: null @p external_target means "create an
     *  in-process BackupStore and wire the transport to it". */
    RssdDevice(const RssdConfig &config, VirtualClock &clock,
               net::CapsuleTarget *external_target);

    RssdConfig config_;
    VirtualClock &clock_;
    log::SegmentCodec codec_;

    // Order matters: the FTL is constructed with `this` as policy.
    ftl::PageMappedFtl ftl_;
    log::OperationLog oplog_;
    log::RetentionIndex retention_;

    std::unique_ptr<net::EthernetLink> link_;
    std::unique_ptr<remote::BackupStore> store_;
    std::unique_ptr<net::NvmeOeTransport> transport_;
    std::unique_ptr<OffloadEngine> offload_;

    /** Entropy of each LPA's live version (for prevEntropy events). */
    std::vector<float> liveEntropy_;

    /** Scratch captured by onInvalidate for the current host op. */
    struct PendingInvalidate
    {
        bool present = false;
        std::uint64_t prevDataSeq = log::kNoDataSeq;
    };
    PendingInvalidate pendingInvalidate_;

    std::vector<detect::Detector *> detectors_;
    RssdStats stats_;
};

} // namespace rssd::core

#endif // RSSD_CORE_RSSD_DEVICE_HH
