/**
 * @file
 * DeviceHistory: the merged view of an RSSD's full operation history
 * — every sealed segment fetched back from the remote store plus the
 * local (not-yet-offloaded) log tail and retained pages.
 *
 * Both the recovery engine and the post-attack analyzer operate on
 * this view; building it models the fetch traffic over the NVMe-oE
 * link, which is where the paper's recovery/analysis timings come
 * from.
 */

#ifndef RSSD_CORE_HISTORY_HH
#define RSSD_CORE_HISTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/rssd_device.hh"
#include "log/oplog.hh"
#include "log/segment.hh"
#include "remote/backup_cluster.hh"

namespace rssd::core {

/** Where a data version's content can be found. */
enum class VersionSource : std::uint8_t {
    LiveOnDevice,   ///< currently mapped page
    HeldOnDevice,   ///< retained page still on local flash
    RemoteSegment,  ///< page record in a fetched segment
};

/** One recoverable data version. */
struct VersionRecord
{
    flash::Lpa lpa = 0;
    std::uint64_t dataSeq = 0;
    VersionSource source = VersionSource::RemoteSegment;
    flash::Ppa ppa = flash::kInvalidPpa; ///< for on-device sources
    const log::PageRecord *remote = nullptr; ///< for remote source
};

/** Cost accounting for building the history. */
struct HistoryCost
{
    std::uint64_t segmentsFetched = 0;
    std::uint64_t bytesFetched = 0;
    Tick fetchCompleteAt = 0;
};

class DeviceHistory
{
  public:
    /**
     * Build the merged history at the current simulated time.
     * Fetches (and keeps open) every remote segment. Single-device
     * mode: the device owns its in-process BackupStore.
     */
    explicit DeviceHistory(RssdDevice &device);

    /**
     * Fleet mode: the device's stream lives in a shared (cluster
     * shard) store. Fetches the segments of @p stream from @p store
     * over the device's link; the rest of the merge is identical.
     * This is what lets RecoveryEngine restore a fleet device from
     * its shard after a campaign.
     */
    DeviceHistory(RssdDevice &device, const remote::BackupStore &store,
                  remote::StreamId stream);

    /**
     * Replicated fleet mode: the read source is chosen among the
     * device's live replicas — the first chain-verifying copy wins
     * (read-side voting), so after a shard crash the history builds
     * entirely from a surviving replica. panic()s when the whole
     * replica set is dead.
     */
    DeviceHistory(RssdDevice &device,
                  const remote::BackupCluster &cluster,
                  remote::DeviceId id);

    /** Replica the history was fetched from (kNoShard outside the
     *  cluster-sourced mode). */
    remote::ShardId sourceShard() const { return sourceShard_; }

    /** All log entries, oldest first, remote then local tail. */
    const std::vector<log::LogEntry> &entries() const
    {
        return entries_;
    }

    /**
     * Verify the complete evidence chain: remote segment chain, the
     * per-entry hash chain across all segments, the local tail
     * chain, and the splice point between them.
     */
    bool verifyEvidenceChain() const;

    /** Version lookup by dataSeq. */
    const VersionRecord *findVersion(std::uint64_t data_seq) const;

    /** Content bytes of a version (empty in address-only runs). */
    const std::vector<std::uint8_t> &
    contentOf(const VersionRecord &version) const;

    /** Ordered entry indices touching @p lpa (evidence per victim). */
    const std::vector<std::uint32_t> &entriesFor(flash::Lpa lpa) const;

    /** Entropy written by version @p data_seq (kNoEntropy unknown). */
    float entropyOf(std::uint64_t data_seq) const;

    /**
     * Retention-GC horizon: the logSeq of the first log entry that
     * survived pruning on the remote side (0 when the stream was
     * never pruned — full history available). Entries and page
     * versions before the horizon are gone; recovery to a point
     * before it must fail loudly, never silently under-restore.
     */
    std::uint64_t prunedHorizonSeq() const { return horizonSeq_; }
    bool pruned() const { return pruned_; }

    const HistoryCost &cost() const { return cost_; }
    RssdDevice &device() { return device_; }
    const RssdDevice &device() const { return device_; }

  private:
    void build(const remote::BackupStore &store,
               remote::StreamId stream);
    void indexEntry(std::uint32_t idx);

    RssdDevice &device_;
    const remote::BackupStore *store_ = nullptr;
    remote::StreamId stream_ = remote::kDefaultStream;
    std::vector<log::Segment> segments_; ///< opened remote segments
    std::vector<log::LogEntry> entries_;
    std::unordered_map<std::uint64_t, VersionRecord> versions_;
    std::unordered_map<std::uint64_t, float> entropyBySeq_;
    std::unordered_map<flash::Lpa, std::vector<std::uint32_t>>
        byLpa_;
    std::vector<std::uint32_t> emptyIndex_;
    std::vector<std::uint8_t> emptyContent_;
    std::uint64_t horizonSeq_ = 0; ///< first surviving logSeq
    bool pruned_ = false;
    remote::ShardId sourceShard_ = remote::kNoShard;
    HistoryCost cost_;
};

} // namespace rssd::core

#endif // RSSD_CORE_HISTORY_HH
