#include "core/offload.hh"

#include <algorithm>
#include <span>

namespace rssd::core {

OffloadEngine::OffloadEngine(const RssdConfig &config,
                             ftl::PageMappedFtl &ftl,
                             log::OperationLog &oplog,
                             log::RetentionIndex &retention,
                             const log::SegmentCodec &codec,
                             log::SegmentSink &sink, VirtualClock &clock)
    : config_(config),
      ftl_(ftl),
      oplog_(oplog),
      retention_(retention),
      codec_(codec),
      sink_(sink),
      clock_(clock)
{
}

bool
OffloadEngine::pump(Tick now, bool force)
{
    // Reject backoff: probe again once the retry delay has elapsed.
    // Forced pumps (drain, write-path backpressure) retry
    // immediately — they are about to wait on the result anyway.
    if (retryAt_ != 0 && now < retryAt_ && !force)
        return false;

    bool all_ok = true;
    while (retention_.size() >= config_.segmentPages ||
           (force && (!retention_.empty() || oplog_.size() > 0))) {
        if (!sealOne(now, force)) {
            all_ok = false;
            break;
        }
        if (!force && retention_.size() < config_.segmentPages)
            break;
    }
    return all_ok;
}

bool
OffloadEngine::resubmit(Tick now)
{
    stats_.resubmits++;
    const log::SubmitResult result =
        sink_.submitSegment(pending_->sealed, now);
    if (!result.accepted) {
        retryAt_ = now + config_.remoteRetryDelay;
        stats_.remoteRejects++;
        stats_.parks++;
        if (trace_ != nullptr) {
            trace_->instant("offload", "park", obs::kTrackDevices,
                            traceTid_, now,
                            {{"segment", pending_->segId},
                             {"retryAtNs", retryAt_}});
        }
        return false;
    }
    retryAt_ = 0;
    if (trace_ != nullptr) {
        trace_->complete("offload", "resubmit", obs::kTrackDevices,
                         traceTid_, now, result.ackAt,
                         {{"segment", pending_->segId}});
    }

    // The parked batch is still the oldest slice of the retention
    // index (seqs only grow; re-added holds stay in front), so
    // taking it back out releases exactly the shipped pages.
    const std::vector<log::RetainedPage> batch =
        retention_.takeOldest(pending_->batchPages);
    panicIf(batch.size() != pending_->batchPages,
            "offload: parked batch shrank under resubmit");
    for (const log::RetainedPage &p : batch)
        ftl_.releaseHeld(p.ppa);
    if (pending_->shippedEntries > 0)
        oplog_.truncateBefore(pending_->lastEntrySeq + 1);

    prevSegmentId_ = pending_->segId;
    nextSegmentId_ = pending_->segId + 1;
    lastAckAt_ = std::max(lastAckAt_, result.ackAt);
    stats_.segmentsAccepted++;
    stats_.pagesOffloaded += batch.size();
    stats_.entriesOffloaded += pending_->shippedEntries;
    pending_.reset();
    return true;
}

bool
OffloadEngine::sealOne(Tick now, bool force)
{
    (void)force;

    // A parked rejected segment goes first: those bytes are already
    // sealed and sitting in the controller buffer — re-offer them
    // without paying the flash reads and seal compute again.
    if (pending_)
        return resubmit(now);

    // Take the oldest retained pages, strictly in version order.
    std::vector<log::RetainedPage> batch =
        retention_.takeOldest(config_.segmentPages);

    log::Segment seg;
    seg.id = nextSegmentId_;
    seg.prevId = prevSegmentId_;

    // Ship every not-yet-shipped log entry along with the pages. The
    // log tail always starts at firstHeldSeq because entries are
    // truncated exactly when their segment is acknowledged. The tail
    // is borrowed, not copied: nothing appends to the log between
    // here and seal() (the engine runs between host commands), so the
    // span stays valid for the whole sealing pass.
    const std::span<const log::LogEntry> tail = oplog_.entries();
    seg.chainAnchor = oplog_.anchorDigest();
    seg.borrowEntries(tail);
    seg.chainTail = tail.empty() ? seg.chainAnchor : tail.back().chain;

    // Read each retained page's content off the flash array — this
    // is the data path that mildly contends with host I/O.
    Tick read_done = now;
    for (const log::RetainedPage &p : batch) {
        const Tick t = ftl_.readPhysical(p.ppa, now);
        read_done = std::max(read_done, t);

        log::PageRecord rec;
        rec.lpa = p.lpa;
        rec.dataSeq = p.dataSeq;
        rec.writtenAt = p.writtenAt;
        rec.invalidatedAt = p.invalidatedAt;
        rec.cause = p.cause;
        rec.content = ftl_.nand().content(p.ppa);
        seg.pages.push_back(std::move(rec));
    }

    const std::uint64_t shipped_entries = tail.size();
    const std::uint64_t last_entry_seq =
        shipped_entries > 0 ? tail.back().logSeq : 0;

    log::SealedSegment sealed = codec_.seal(seg);

    // Device-side sealing compute (hardware compress + encrypt).
    const Tick compress_time = units::transferTimeNs(
        sealed.rawSize, config_.compressMBps * 8.0 / 1000.0);
    const Tick encrypt_time = units::transferTimeNs(
        sealed.payload.size(), config_.encryptMBps * 8.0 / 1000.0);
    const Tick seal_done = sealEngine_.serve(
        read_done, compress_time + encrypt_time);

    stats_.segmentsSealed++;
    stats_.bytesRaw += sealed.rawSize;
    stats_.bytesSealed += sealed.payload.size();
    sealLatency_.add(seal_done > now ? seal_done - now : 0);

    // Seal span and the capsule's flow start go in before the
    // submit, so the downstream shard/quorum events they link to
    // appear after them in the event log.
    if (trace_ != nullptr) {
        obs::Span span(trace_, "offload", "seal", obs::kTrackDevices,
                       traceTid_, now);
        span.arg("segment", seg.id)
            .arg("pages", batch.size())
            .arg("entries", shipped_entries)
            .arg("rawBytes", sealed.rawSize)
            .arg("sealedBytes", sealed.payload.size());
        span.end(seal_done);
        trace_->flowBegin("offload", "capsule", flowId(seg.id),
                          obs::kTrackDevices, traceTid_, seal_done);
    }

    const log::SubmitResult result =
        sink_.submitSegment(sealed, seal_done);
    if (!result.accepted) {
        // Remote store is full (or transiently failing). Put the
        // holds back conceptually: the pages were never released, so
        // simply re-adding them to the index preserves correctness.
        // Back off instead of latching: the remote's retention GC
        // frees space over time, so the next pump past retryAt_
        // probes again and offload resumes on its own. The sealed
        // bytes are parked — the probe resubmits them as-is.
        for (const log::RetainedPage &p : batch)
            retention_.add(p);
        pending_ = PendingResubmit{std::move(sealed), batch.size(),
                                   shipped_entries, last_entry_seq,
                                   seg.id};
        retryAt_ = now + config_.remoteRetryDelay;
        stats_.remoteRejects++;
        stats_.parks++;
        if (trace_ != nullptr) {
            trace_->instant("offload", "park", obs::kTrackDevices,
                            traceTid_, seal_done,
                            {{"segment", seg.id},
                             {"retryAtNs", retryAt_}});
        }
        return false;
    }
    retryAt_ = 0;
    if (trace_ != nullptr) {
        trace_->complete("offload", "ship", obs::kTrackDevices,
                         traceTid_, seal_done, result.ackAt,
                         {{"segment", seg.id}});
    }

    // Acknowledged: release the FTL holds and truncate the shipped
    // log prefix. Relocations cannot have happened concurrently —
    // the engine runs between host commands.
    for (const log::RetainedPage &p : batch)
        ftl_.releaseHeld(p.ppa);
    if (shipped_entries > 0)
        oplog_.truncateBefore(last_entry_seq + 1);

    prevSegmentId_ = seg.id;
    nextSegmentId_++;
    lastAckAt_ = std::max(lastAckAt_, result.ackAt);
    stats_.segmentsAccepted++;
    stats_.pagesOffloaded += batch.size();
    stats_.entriesOffloaded += shipped_entries;
    return true;
}

void
OffloadEngine::registerMetrics(obs::MetricsRegistry &registry,
                               const std::string &prefix) const
{
    registry.counter(prefix + "segmentsSealed",
                     [this] { return stats_.segmentsSealed; });
    registry.counter(prefix + "segmentsAccepted",
                     [this] { return stats_.segmentsAccepted; });
    registry.counter(prefix + "remoteRejects",
                     [this] { return stats_.remoteRejects; });
    registry.counter(prefix + "parks",
                     [this] { return stats_.parks; });
    registry.counter(prefix + "resubmits",
                     [this] { return stats_.resubmits; });
    registry.counter(prefix + "pagesOffloaded",
                     [this] { return stats_.pagesOffloaded; });
    registry.counter(prefix + "bytesSealed",
                     [this] { return stats_.bytesSealed; });
    registry.gauge(prefix + "compressionRatio",
                   [this] { return stats_.compressionRatio(); });
    registry.histogram(prefix + "sealLatency",
                       [this] { return sealLatency_; });
}

} // namespace rssd::core
