#include "core/history.hh"

#include <algorithm>
#include <deque>

#include "log/chain_verify.hh"
#include "sim/logging.hh"

namespace rssd::core {

DeviceHistory::DeviceHistory(RssdDevice &device)
    : device_(device)
{
    build(device.backupStore(), remote::kDefaultStream);
}

DeviceHistory::DeviceHistory(RssdDevice &device,
                             const remote::BackupStore &store,
                             remote::StreamId stream)
    : device_(device)
{
    build(store, stream);
}

DeviceHistory::DeviceHistory(RssdDevice &device,
                             const remote::BackupCluster &cluster,
                             remote::DeviceId id)
    : device_(device)
{
    const remote::ShardId src = cluster.chainVerifyingReplicaOf(id);
    panicIf(src == remote::kNoShard,
            "DeviceHistory: no live replica holds the stream");
    sourceShard_ = src;
    build(cluster.shardStore(src), id);
}

void
DeviceHistory::build(const remote::BackupStore &store,
                     remote::StreamId stream)
{
    store_ = &store;
    stream_ = stream;
    RssdDevice &device = device_;
    VirtualClock &clock = device.clock();

    // Retention-GC horizon: entries before the first surviving
    // logSeq were expired remotely; the signed prune record is the
    // trusted statement of where history now begins.
    if (const log::PruneRecord *rec = store.pruneRecordOf(stream)) {
        pruned_ = true;
        horizonSeq_ = rec->entriesPruned;
    }

    // Fetch this device's sealed segments back over the
    // server->device direction of the link, in chain order, then
    // open locally. (In a shared shard store only the device's own
    // stream is fetched — other tenants' evidence is neither needed
    // nor decryptable with this device's key.)
    const std::deque<std::uint32_t> &stored =
        store.streamSegments(stream);
    Tick t = clock.now();
    segments_.reserve(stored.size());
    for (const std::uint32_t idx : stored) {
        const log::SealedSegment &sealed = store.sealedSegment(idx);
        t = device.link().rx().transmit(sealed.wireSize(), t);
        cost_.segmentsFetched++;
        cost_.bytesFetched += sealed.wireSize();
        segments_.push_back(device.codec().open(sealed));
    }
    cost_.fetchCompleteAt = t;
    clock.advanceTo(t);

    // Merge entries: remote segments in id order, then the local tail.
    for (const log::Segment &seg : segments_) {
        for (const log::LogEntry &e : seg.entries)
            entries_.push_back(e);
    }
    for (const log::LogEntry &e : device.opLog().entries())
        entries_.push_back(e);

    for (std::uint32_t i = 0; i < entries_.size(); i++)
        indexEntry(i);

    // Version records: remote page records first...
    for (const log::Segment &seg : segments_) {
        for (const log::PageRecord &p : seg.pages) {
            VersionRecord v;
            v.lpa = p.lpa;
            v.dataSeq = p.dataSeq;
            v.source = VersionSource::RemoteSegment;
            v.remote = &p;
            versions_.emplace(p.dataSeq, v);
        }
    }
    // ...then pages still held locally (not yet offloaded)...
    const ftl::PageMappedFtl &ftl = device.ftl();
    for (const log::LogEntry &e : entries_) {
        if (e.op != log::OpKind::Write)
            continue;
        if (versions_.count(e.dataSeq))
            continue;
        const auto held =
            device.retention().findByDataSeq(e.dataSeq);
        if (held) {
            VersionRecord v;
            v.lpa = held->lpa;
            v.dataSeq = held->dataSeq;
            v.source = VersionSource::HeldOnDevice;
            v.ppa = held->ppa;
            versions_.emplace(v.dataSeq, v);
        }
    }
    // ...and finally the live mappings.
    for (flash::Lpa lpa = 0; lpa < ftl.logicalPages(); lpa++) {
        const flash::Ppa ppa = ftl.mappingOf(lpa);
        if (ppa == flash::kInvalidPpa)
            continue;
        const std::uint64_t seq = ftl.nand().oob(ppa).seq;
        if (versions_.count(seq))
            continue;
        VersionRecord v;
        v.lpa = lpa;
        v.dataSeq = seq;
        v.source = VersionSource::LiveOnDevice;
        v.ppa = ppa;
        versions_.emplace(seq, v);
    }
}

void
DeviceHistory::indexEntry(std::uint32_t idx)
{
    const log::LogEntry &e = entries_[idx];
    byLpa_[e.lpa].push_back(idx);
    if (e.op == log::OpKind::Write)
        entropyBySeq_[e.dataSeq] = e.entropy;
}

bool
DeviceHistory::verifyEvidenceChain() const
{
    // 1. Remote side: HMACs, segment ordering, per-entry chain of
    //    this device's stream (shared verification core — the same
    //    rules the store enforced at ingest and the forensics
    //    scanner replays shard-side). A pruned stream verifies from
    //    its signed re-anchor record instead of genesis.
    const log::PruneRecord *prune = store_->pruneRecordOf(stream_);
    log::SegmentChainVerifier verifier;
    if (prune && !verifier.resumeFrom(*prune, device_.codec()))
        return false;
    for (const std::uint32_t idx : store_->streamSegments(stream_)) {
        if (!verifier.verifyNext(store_->sealedSegment(idx),
                                 device_.codec())) {
            return false;
        }
    }

    // 2. Local tail chain.
    if (!device_.opLog().verifyHeldChain())
        return false;

    // 3. Splice: the local tail's anchor must equal the last remote
    //    segment's chain tail — or, with no surviving segments, the
    //    prune record's anchor (everything offloaded was expired) /
    //    the genesis digest (nothing was ever offloaded).
    crypto::Digest expect_anchor;
    if (!segments_.empty())
        expect_anchor = segments_.back().chainTail;
    else if (prune)
        expect_anchor = prune->anchor;
    else
        expect_anchor = log::OperationLog::genesisDigest();
    return device_.opLog().anchorDigest() == expect_anchor;
}

const VersionRecord *
DeviceHistory::findVersion(std::uint64_t data_seq) const
{
    const auto it = versions_.find(data_seq);
    return it == versions_.end() ? nullptr : &it->second;
}

const std::vector<std::uint8_t> &
DeviceHistory::contentOf(const VersionRecord &version) const
{
    switch (version.source) {
      case VersionSource::RemoteSegment:
        return version.remote->content;
      case VersionSource::HeldOnDevice:
      case VersionSource::LiveOnDevice:
        return device_.ftl().nand().content(version.ppa);
    }
    return emptyContent_;
}

const std::vector<std::uint32_t> &
DeviceHistory::entriesFor(flash::Lpa lpa) const
{
    const auto it = byLpa_.find(lpa);
    return it == byLpa_.end() ? emptyIndex_ : it->second;
}

float
DeviceHistory::entropyOf(std::uint64_t data_seq) const
{
    const auto it = entropyBySeq_.find(data_seq);
    return it == entropyBySeq_.end() ? detect::kNoEntropy : it->second;
}

} // namespace rssd::core
