#include "core/recovery.hh"

#include <unordered_map>

namespace rssd::core {

RecoveryEngine::RecoveryEngine(DeviceHistory &history)
    : history_(history)
{
}

RecoveryReport
RecoveryEngine::recoverToTime(Tick t)
{
    // Find the first entry past t; entries are in timestamp order.
    // logSeqs are dense but start at the pruned horizon, not
    // necessarily 0 — target by the entry's own logSeq.
    const auto &entries = history_.entries();
    std::uint64_t target = entries.empty()
        ? history_.prunedHorizonSeq()
        : entries.back().logSeq + 1;
    for (const log::LogEntry &e : entries) {
        if (e.timestamp > t) {
            target = e.logSeq;
            break;
        }
    }
    // A time before the oldest surviving entry names a pre-horizon
    // state: refuse loudly (the entries that defined it are gone).
    // With NO surviving entries, every time target is unprovably
    // post-horizon — same refusal, never a silent no-op "success".
    if (history_.pruned() &&
        (entries.empty() || t < entries.front().timestamp)) {
        RecoveryReport report;
        report.startedAt = history_.device().clock().now();
        report.finishedAt = report.startedAt;
        report.beforePrunedHorizon = true;
        return report;
    }
    return recoverToLogSeq(target);
}

RecoveryReport
RecoveryEngine::recoverToLogSeq(std::uint64_t target_seq)
{
    return recoverFiltered(target_seq,
                           [](flash::Lpa) { return true; });
}

RecoveryReport
RecoveryEngine::recoverRange(flash::Lpa first, std::uint64_t count,
                             std::uint64_t target_seq)
{
    return recoverFiltered(target_seq, [first, count](flash::Lpa lpa) {
        return lpa >= first && lpa < first + count;
    });
}

template <typename InScope>
RecoveryReport
RecoveryEngine::recoverFiltered(std::uint64_t target_seq,
                                InScope &&in_scope)
{
    RssdDevice &device = history_.device();
    RecoveryReport report;
    report.startedAt = device.clock().now();
    report.bytesFetched = history_.cost().bytesFetched;

    // Retention-GC horizon guard: the state before the first
    // surviving entry cannot be reconstructed — fail clearly.
    if (history_.pruned() &&
        target_seq < history_.prunedHorizonSeq()) {
        report.beforePrunedHorizon = true;
        report.finishedAt = report.startedAt;
        return report;
    }

    // 1. Replay: live version of each touched LBA at the target.
    //    kNoDataSeq means "unmapped at target".
    std::unordered_map<flash::Lpa, std::uint64_t> live;
    for (const log::LogEntry &e : history_.entries()) {
        if (e.logSeq >= target_seq)
            break;
        if (e.op == log::OpKind::Write)
            live[e.lpa] = e.dataSeq;
        else if (e.op == log::OpKind::Trim)
            live[e.lpa] = log::kNoDataSeq;
    }

    // 2. Collect the LBAs that were touched anywhere in history;
    //    anything written only after the target must be rolled back
    //    too (to its pre-target state, usually unmapped).
    std::unordered_map<flash::Lpa, bool> touched;
    for (const log::LogEntry &e : history_.entries())
        touched[e.lpa] = true;

    const ftl::PageMappedFtl &ftl = device.ftl();
    for (const auto &[lpa, _] : touched) {
        if (!in_scope(lpa))
            continue;
        report.lpasExamined++;

        const auto it = live.find(lpa);
        const std::uint64_t want =
            it == live.end() ? log::kNoDataSeq : it->second;

        // Pruned-history guard: "no entry before the target" is
        // only proof of emptiness when history is complete. If this
        // LPA's earliest surviving entry replaced a pre-horizon
        // version (prevDataSeq points behind the horizon), its
        // pre-target state existed but was expired — count it
        // unresolved instead of destructively trimming it.
        if (it == live.end() && history_.pruned()) {
            const auto &idxs = history_.entriesFor(lpa);
            if (!idxs.empty() &&
                history_.entries()[idxs.front()].prevDataSeq !=
                    log::kNoDataSeq) {
                report.unresolved++;
                continue;
            }
        }

        // Current state.
        const flash::Ppa cur_ppa = ftl.mappingOf(lpa);
        const std::uint64_t have = cur_ppa == flash::kInvalidPpa
            ? log::kNoDataSeq
            : ftl.nand().oob(cur_ppa).seq;

        if (want == have)
            continue;

        if (want == log::kNoDataSeq) {
            // Roll back to "never written / trimmed".
            device.trimPage(lpa);
            report.unmappedRestored++;
            continue;
        }

        const VersionRecord *version = history_.findVersion(want);
        if (!version) {
            report.unresolved++;
            continue;
        }

        const std::vector<std::uint8_t> &content =
            history_.contentOf(*version);
        device.writePage(lpa, content);
        report.pagesRestored++;
        if (version->source == VersionSource::RemoteSegment)
            report.restoredFromRemote++;
        else
            report.restoredFromLocal++;
    }

    report.finishedAt = device.clock().now();
    return report;
}

} // namespace rssd::core
