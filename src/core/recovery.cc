#include "core/recovery.hh"

#include <unordered_map>

namespace rssd::core {

RecoveryEngine::RecoveryEngine(DeviceHistory &history)
    : history_(history)
{
}

RecoveryReport
RecoveryEngine::recoverToTime(Tick t)
{
    // Find the first entry past t; entries are in timestamp order.
    const auto &entries = history_.entries();
    std::uint64_t target = entries.size();
    for (std::uint64_t i = 0; i < entries.size(); i++) {
        if (entries[i].timestamp > t) {
            target = i;
            break;
        }
    }
    // logSeqs are dense from 0 in merged order.
    return recoverToLogSeq(target);
}

RecoveryReport
RecoveryEngine::recoverToLogSeq(std::uint64_t target_seq)
{
    return recoverFiltered(target_seq,
                           [](flash::Lpa) { return true; });
}

RecoveryReport
RecoveryEngine::recoverRange(flash::Lpa first, std::uint64_t count,
                             std::uint64_t target_seq)
{
    return recoverFiltered(target_seq, [first, count](flash::Lpa lpa) {
        return lpa >= first && lpa < first + count;
    });
}

template <typename InScope>
RecoveryReport
RecoveryEngine::recoverFiltered(std::uint64_t target_seq,
                                InScope &&in_scope)
{
    RssdDevice &device = history_.device();
    RecoveryReport report;
    report.startedAt = device.clock().now();
    report.bytesFetched = history_.cost().bytesFetched;

    // 1. Replay: live version of each touched LBA at the target.
    //    kNoDataSeq means "unmapped at target".
    std::unordered_map<flash::Lpa, std::uint64_t> live;
    for (const log::LogEntry &e : history_.entries()) {
        if (e.logSeq >= target_seq)
            break;
        if (e.op == log::OpKind::Write)
            live[e.lpa] = e.dataSeq;
        else if (e.op == log::OpKind::Trim)
            live[e.lpa] = log::kNoDataSeq;
    }

    // 2. Collect the LBAs that were touched anywhere in history;
    //    anything written only after the target must be rolled back
    //    too (to its pre-target state, usually unmapped).
    std::unordered_map<flash::Lpa, bool> touched;
    for (const log::LogEntry &e : history_.entries())
        touched[e.lpa] = true;

    const ftl::PageMappedFtl &ftl = device.ftl();
    for (const auto &[lpa, _] : touched) {
        if (!in_scope(lpa))
            continue;
        report.lpasExamined++;

        const auto it = live.find(lpa);
        const std::uint64_t want =
            it == live.end() ? log::kNoDataSeq : it->second;

        // Current state.
        const flash::Ppa cur_ppa = ftl.mappingOf(lpa);
        const std::uint64_t have = cur_ppa == flash::kInvalidPpa
            ? log::kNoDataSeq
            : ftl.nand().oob(cur_ppa).seq;

        if (want == have)
            continue;

        if (want == log::kNoDataSeq) {
            // Roll back to "never written / trimmed".
            device.trimPage(lpa);
            report.unmappedRestored++;
            continue;
        }

        const VersionRecord *version = history_.findVersion(want);
        if (!version) {
            report.unresolved++;
            continue;
        }

        const std::vector<std::uint8_t> &content =
            history_.contentOf(*version);
        device.writePage(lpa, content);
        report.pagesRestored++;
        if (version->source == VersionSource::RemoteSegment)
            report.restoredFromRemote++;
        else
            report.restoredFromLocal++;
    }

    report.finishedAt = device.clock().now();
    return report;
}

} // namespace rssd::core
