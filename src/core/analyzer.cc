#include "core/analyzer.hh"

#include <algorithm>
#include <unordered_map>

namespace rssd::core {

PostAttackAnalyzer::PostAttackAnalyzer(DeviceHistory &history,
                                       const Config &config)
    : history_(history), config_(config)
{
}

detect::IoEvent
eventFromEntry(const log::LogEntry &entry, float prev_entropy)
{
    detect::IoEvent ev;
    switch (entry.op) {
      case log::OpKind::Write:
        ev.kind = detect::EventKind::Write;
        break;
      case log::OpKind::Trim:
        ev.kind = detect::EventKind::Trim;
        break;
      case log::OpKind::Read:
        ev.kind = detect::EventKind::Read;
        break;
    }
    ev.lpa = entry.lpa;
    ev.timestamp = entry.timestamp;
    ev.seq = entry.logSeq;
    ev.entropy = entry.entropy;
    ev.overwrite = entry.prevDataSeq != log::kNoDataSeq;
    ev.prevEntropy =
        ev.overwrite ? prev_entropy : detect::kNoEntropy;
    return ev;
}

detect::IoEvent
PostAttackAnalyzer::eventFor(const log::LogEntry &entry) const
{
    return eventFromEntry(entry,
                          entry.prevDataSeq != log::kNoDataSeq
                              ? history_.entropyOf(entry.prevDataSeq)
                              : detect::kNoEntropy);
}

AttackFinding
scanEntries(const std::vector<log::LogEntry> &entries,
            const OfflineScanConfig &config, OfflineScanStats *stats)
{
    AttackFinding finding;
    if (entries.empty())
        return finding;

    // Entries are in log order but need NOT be seq-dense: a
    // retention-GC prune that overtakes an incremental scanner
    // leaves a gap between the cached prefix and the post-horizon
    // suffix. Look timestamps up by logSeq, never by offset.
    const auto entryAt =
        [&entries](std::uint64_t seq) -> const log::LogEntry & {
        const auto it = std::lower_bound(
            entries.begin(), entries.end(), seq,
            [](const log::LogEntry &e, std::uint64_t s) {
                return e.logSeq < s;
            });
        panicIf(it == entries.end() || it->logSeq != seq,
                "scanEntries: implicated seq not in scan");
        return *it;
    };

    // 1. Offline detection over the whole history. The entropy of a
    //    superseded version is accumulated as the scan passes its
    //    Write entry — that entry always precedes the overwrite in
    //    log order, so this matches the whole-history index a
    //    DeviceHistory would have built.
    detect::CumulativeEntropyAuditor auditor(config.auditor);
    std::unordered_map<std::uint64_t, float> entropy_by_seq;
    for (const log::LogEntry &e : entries) {
        float prev_entropy = detect::kNoEntropy;
        if (e.prevDataSeq != log::kNoDataSeq) {
            const auto it = entropy_by_seq.find(e.prevDataSeq);
            if (it != entropy_by_seq.end())
                prev_entropy = it->second;
        }
        const detect::IoEvent ev = eventFromEntry(e, prev_entropy);
        auditor.observe(ev);
        if (stats && ev.kind == detect::EventKind::Write &&
            ev.overwrite &&
            ev.entropy >= config.auditor.highEntropy &&
            ev.prevEntropy >= config.auditor.highEntropy) {
            stats->highOverHighWrites++;
        }
        if (e.op == log::OpKind::Write)
            entropy_by_seq[e.dataSeq] = e.entropy;
    }

    // 2. Trim-burst rule (trimming-attack signature): the auditor is
    //    blind to TRIMs, so scan for dense trim runs separately.
    std::uint64_t trim_first = ~0ull, trim_last = 0;
    std::size_t trim_total = 0;
    {
        std::vector<std::uint32_t> trims;
        for (std::uint32_t i = 0; i < entries.size(); i++) {
            if (entries[i].op == log::OpKind::Trim)
                trims.push_back(i);
        }
        for (std::size_t i = 0;
             i + config.trimBurstCount <= trims.size(); i++) {
            const Tick span =
                entries[trims[i + config.trimBurstCount - 1]]
                    .timestamp -
                entries[trims[i]].timestamp;
            if (span <= config.trimBurstWindow) {
                trim_first = std::min<std::uint64_t>(
                    trim_first, entries[trims[i]].logSeq);
                trim_last = std::max<std::uint64_t>(
                    trim_last, entries[trims.back()].logSeq);
                trim_total = trims.size();
                break;
            }
        }
    }

    // 3. Attack window from the implicated operations (either rule).
    const auto &seqs = auditor.implicatedSeqs();
    const bool entropy_hit = auditor.alarmed() && !seqs.empty();
    const bool trim_hit = trim_first != ~0ull;
    if (entropy_hit || trim_hit) {
        finding.detected = true;
        finding.firstSuspectSeq =
            entropy_hit ? seqs.front() : trim_first;
        finding.lastSuspectSeq = entropy_hit ? seqs.back() : trim_last;
        if (entropy_hit && trim_hit) {
            finding.firstSuspectSeq =
                std::min<std::uint64_t>(seqs.front(), trim_first);
            finding.lastSuspectSeq =
                std::max<std::uint64_t>(seqs.back(), trim_last);
        }
        finding.implicatedOps =
            (entropy_hit ? seqs.size() : 0) + trim_total;
        finding.attackStart =
            entryAt(finding.firstSuspectSeq).timestamp;
        finding.attackEnd =
            entryAt(finding.lastSuspectSeq).timestamp;
        finding.recommendedRecoverySeq = finding.firstSuspectSeq;
    }
    return finding;
}

AnalysisReport
PostAttackAnalyzer::analyze()
{
    RssdDevice &device = history_.device();
    AnalysisReport report;
    report.startedAt = device.clock().now();
    report.remoteSegments = history_.cost().segmentsFetched;
    report.bytesFetched = history_.cost().bytesFetched;
    report.totalEntries = history_.entries().size();

    // 1. Trust first: nothing below means anything if the chain is
    //    broken.
    report.chainIntact = history_.verifyEvidenceChain();

    // 2-4. Offline detection + attack window (shared with the
    //      cluster-side forensics pipeline).
    report.finding = scanEntries(history_.entries(), config_.scan);

    // 5. Cost model: per-entry server CPU (fetch already charged by
    //    DeviceHistory).
    const Tick cpu =
        config_.perEntryCpu * history_.entries().size();
    device.clock().advance(cpu);
    report.finishedAt = device.clock().now();
    return report;
}

std::vector<log::LogEntry>
PostAttackAnalyzer::backtrackLpa(flash::Lpa lpa) const
{
    std::vector<log::LogEntry> out;
    const auto &idx = history_.entriesFor(lpa);
    out.reserve(idx.size());
    for (std::uint32_t i : idx)
        out.push_back(history_.entries()[i]);

    // Cross-check the backtrack pointers: each Write/Trim entry's
    // prevDataSeq must equal the dataSeq of the latest preceding
    // Write to this LBA (or kNoDataSeq after a gap). Read entries
    // (when read logging is on) observe but don't mutate.
    std::uint64_t expect_prev = log::kNoDataSeq;
    for (const log::LogEntry &e : out) {
        if (e.op == log::OpKind::Read) {
            panicIf(expect_prev != log::kNoDataSeq &&
                        e.dataSeq != expect_prev,
                    "evidence chain: read observed a phantom version");
            continue;
        }
        panicIf(e.prevDataSeq != expect_prev,
                "evidence chain: broken backtrack pointer");
        if (e.op == log::OpKind::Write)
            expect_prev = e.dataSeq;
        else
            expect_prev = log::kNoDataSeq;
    }
    return out;
}

} // namespace rssd::core
