/**
 * @file
 * Synthetic request-stream generation from a TraceProfile, and a
 * replayer that drives any BlockDevice and collects the statistics
 * the performance experiments report.
 */

#ifndef RSSD_WORKLOAD_GENERATOR_HH
#define RSSD_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "compress/datagen.hh"
#include "nvme/command.hh"
#include "sim/clock.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "workload/profiles.hh"

namespace rssd::workload {

/** One generated request (device-agnostic). */
struct Request
{
    nvme::Opcode op = nvme::Opcode::Read;
    flash::Lpa lpa = 0;
    std::uint32_t npages = 1;
};

/**
 * Draws requests matching a TraceProfile over a device of a given
 * logical size. Deterministic for a fixed seed.
 */
class TraceGenerator
{
  public:
    TraceGenerator(const TraceProfile &profile,
                   std::uint64_t device_pages, std::uint64_t seed);

    /** Draw the next request. */
    Request next();

    /** The profile being synthesized. */
    const TraceProfile &profile() const { return profile_; }

    /**
     * Open-loop interarrival gap that realizes the profile's daily
     * write volume at its read/write mix.
     */
    Tick meanInterarrival() const;

  private:
    TraceProfile profile_;
    std::uint64_t devicePages_;
    Rng rng_;
    ZipfSampler zipf_;
    std::uint64_t wssPages_;
    std::uint64_t wssOffset_;
};

/** Aggregate results of a replay. */
struct ReplayStats
{
    std::uint64_t requests = 0;
    std::uint64_t pagesWritten = 0;
    std::uint64_t pagesRead = 0;
    std::uint64_t pagesTrimmed = 0;
    std::uint64_t errors = 0;
    LatencyHistogram writeLatency;
    LatencyHistogram readLatency;
    Tick elapsed = 0;

    /** Host write throughput in MiB/s of simulated time. */
    double writeMiBps(std::uint32_t page_size) const;
};

/** Replay options. */
struct ReplayOptions
{
    /** Stop after this many requests. */
    std::uint64_t maxRequests = 100000;

    /**
     * Open-loop: advance the clock by the generator's interarrival
     * gap between requests. Closed-loop (false): back-to-back.
     */
    bool openLoop = false;

    /** Attach generated page content to writes (slower, but needed
     *  for entropy/compression-sensitive experiments). */
    bool withContent = false;

    /** Content generator seed (when withContent). */
    std::uint64_t contentSeed = 1;
};

/**
 * Drive @p device with requests from @p gen and collect statistics.
 * The device's own clock advances through its submit path; open-loop
 * replay additionally spaces arrivals.
 */
ReplayStats replay(nvme::BlockDevice &device, VirtualClock &clock,
                   TraceGenerator &gen, const ReplayOptions &options);

} // namespace rssd::workload

#endif // RSSD_WORKLOAD_GENERATOR_HH
