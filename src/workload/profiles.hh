/**
 * @file
 * Per-trace workload profiles for the 11 block traces the paper's
 * Figure 2 evaluates (MSR Cambridge: hm, src, ts, wdev, rsrch, stg,
 * usr, web; FIU: email, online, webusers).
 *
 * We do not ship the raw traces (they are external datasets); instead
 * each profile captures the statistics that drive the paper's
 * results — daily write volume (retention ingest rate), read/write
 * mix, request sizes, access skew and content compressibility — and
 * the generator synthesizes an equivalent request stream
 * (docs/ARCHITECTURE.md, "Experiment matrix";
 * trace substitution).
 */

#ifndef RSSD_WORKLOAD_PROFILES_HH
#define RSSD_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rssd::workload {

/** Statistical description of one block trace. */
struct TraceProfile
{
    std::string name;

    /** GiB of host writes per day (drives Figure 2). */
    double dailyWriteGiB = 10.0;

    /** Fraction of requests that are writes. */
    double writeFraction = 0.7;

    /** Fraction of requests that are TRIMs (file deletions). */
    double trimFraction = 0.01;

    /** Mean request size in 4 KiB pages. */
    double meanReqPages = 4.0;

    /** Zipf skew of page popularity (0 = uniform). */
    double zipfSkew = 0.9;

    /** Fraction of the device the workload touches. */
    double workingSetFraction = 0.25;

    /** Content compressibility in [0,1] (see compress::DataGenerator). */
    double compressibility = 0.55;
};

/** The 11 profiles of Figure 2, in the figure's order. */
const std::vector<TraceProfile> &paperTraces();

/** Look up a profile by name; fatal() if unknown. */
const TraceProfile &traceByName(const std::string &name);

} // namespace rssd::workload

#endif // RSSD_WORKLOAD_PROFILES_HH
