#include "workload/profiles.hh"

#include "sim/logging.hh"

namespace rssd::workload {

const std::vector<TraceProfile> &
paperTraces()
{
    // Calibrated to the published characteristics of the MSR
    // Cambridge (1-week enterprise server) and FIU (home/university)
    // traces: write-dominated, a few to tens of GiB written per day,
    // strongly skewed working sets, moderately compressible content.
    static const std::vector<TraceProfile> traces = {
        // name       GiB/d  wr    trim   req   skew  wss    compress
        {"hm",         9.5,  0.64, 0.010, 2.2,  0.95, 0.12,  0.55},
        {"src",       44.0,  0.75, 0.008, 7.3,  0.85, 0.30,  0.60},
        {"ts",         9.0,  0.82, 0.012, 2.0,  1.00, 0.10,  0.50},
        {"wdev",       7.1,  0.80, 0.010, 2.1,  1.05, 0.08,  0.55},
        {"rsrch",     11.0,  0.91, 0.006, 2.2,  1.00, 0.09,  0.60},
        {"stg",       15.2,  0.85, 0.010, 3.1,  0.90, 0.15,  0.55},
        {"usr",       13.5,  0.60, 0.020, 5.6,  0.80, 0.25,  0.50},
        {"web",       11.4,  0.70, 0.015, 3.9,  0.90, 0.18,  0.45},
        {"fiu-email",  6.2,  0.67, 0.020, 2.0,  1.10, 0.06,  0.60},
        {"fiu-online", 5.4,  0.74, 0.015, 2.0,  1.10, 0.05,  0.60},
        {"fiu-webusers", 5.0, 0.78, 0.015, 2.0, 1.05, 0.05,  0.55},
    };
    return traces;
}

const TraceProfile &
traceByName(const std::string &name)
{
    for (const TraceProfile &t : paperTraces()) {
        if (t.name == name)
            return t;
    }
    fatal("unknown trace profile: " + name);
}

} // namespace rssd::workload
