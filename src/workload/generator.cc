#include "workload/generator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::workload {

TraceGenerator::TraceGenerator(const TraceProfile &profile,
                               std::uint64_t device_pages,
                               std::uint64_t seed)
    : profile_(profile),
      devicePages_(device_pages),
      rng_(seed),
      zipf_(std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       static_cast<double>(device_pages) *
                       profile.workingSetFraction)),
            profile.zipfSkew),
      wssPages_(zipf_.size())
{
    panicIf(device_pages == 0, "TraceGenerator: empty device");
    // Place the working set away from page 0 so experiments can park
    // victim datasets in low LPAs without colliding with it.
    wssOffset_ = devicePages_ > wssPages_
        ? (devicePages_ - wssPages_) / 2
        : 0;
}

Request
TraceGenerator::next()
{
    Request r;
    // Order matters: trims first (small fraction), then the
    // write/read split over the remainder.
    if (rng_.chance(profile_.trimFraction)) {
        r.op = nvme::Opcode::Trim;
    } else {
        const bool is_write = rng_.chance(profile_.writeFraction);
        r.op = is_write ? nvme::Opcode::Write : nvme::Opcode::Read;
    }

    // Request size: geometric-ish around the mean.
    const double mean = std::max(1.0, profile_.meanReqPages);
    std::uint32_t npages =
        1 + static_cast<std::uint32_t>(rng_.exponential(mean - 1.0));
    npages = std::min<std::uint32_t>(npages, 64);
    r.npages = npages;

    // Address: zipf-popular page within the working set, aligned so
    // multi-page requests stay in range.
    const std::uint64_t pick = zipf_.sample(rng_);
    std::uint64_t lpa = wssOffset_ + pick;
    if (lpa + npages > devicePages_)
        lpa = devicePages_ - npages;
    r.lpa = lpa;
    return r;
}

Tick
TraceGenerator::meanInterarrival() const
{
    // Daily write volume / mean write size => writes/day; scale by
    // write fraction for total request rate.
    const double bytes_per_day =
        profile_.dailyWriteGiB * static_cast<double>(units::GiB);
    const double write_bytes_per_req =
        profile_.meanReqPages * 4096.0;
    const double writes_per_day = bytes_per_day / write_bytes_per_req;
    const double reqs_per_day =
        writes_per_day / std::max(0.01, profile_.writeFraction);
    const double ns_per_req =
        static_cast<double>(units::DAY) / reqs_per_day;
    return static_cast<Tick>(ns_per_req);
}

double
ReplayStats::writeMiBps(std::uint32_t page_size) const
{
    if (elapsed == 0)
        return 0.0;
    const double bytes = static_cast<double>(pagesWritten) * page_size;
    return bytes / units::toSeconds(elapsed) /
           static_cast<double>(units::MiB);
}

ReplayStats
replay(nvme::BlockDevice &device, VirtualClock &clock,
       TraceGenerator &gen, const ReplayOptions &options)
{
    ReplayStats stats;
    compress::DataGenerator datagen(options.contentSeed,
                                    gen.profile().compressibility);
    const std::uint32_t page_size = device.pageSize();
    const Tick start = clock.now();
    const Tick gap = gen.meanInterarrival();

    for (std::uint64_t i = 0; i < options.maxRequests; i++) {
        if (options.openLoop)
            clock.advance(gap);

        Request r = gen.next();
        nvme::Command cmd;
        cmd.op = r.op;
        cmd.lpa = r.lpa;
        cmd.npages = r.npages;
        if (r.op == nvme::Opcode::Write && options.withContent) {
            cmd.data.reserve(std::size_t(r.npages) * page_size);
            for (std::uint32_t p = 0; p < r.npages; p++) {
                const auto page = datagen.page(page_size);
                cmd.data.insert(cmd.data.end(), page.begin(),
                                page.end());
            }
        }

        const nvme::Completion comp = device.submit(cmd);
        stats.requests++;
        if (!comp.ok()) {
            stats.errors++;
            continue;
        }
        if (r.op == nvme::Opcode::Write) {
            stats.pagesWritten += r.npages;
            stats.writeLatency.add(comp.latency());
        } else if (r.op == nvme::Opcode::Read) {
            stats.pagesRead += r.npages;
            stats.readLatency.add(comp.latency());
        } else if (r.op == nvme::Opcode::Trim) {
            stats.pagesTrimmed += r.npages;
        }
    }

    stats.elapsed = clock.now() - start;
    return stats;
}

} // namespace rssd::workload
