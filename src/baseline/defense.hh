/**
 * @file
 * The Defense interface used by the Table 1 experiment: every
 * comparison system (software and hardware) is modelled as a wrapper
 * around a block device, with hooks for the lifecycle the experiment
 * drives:
 *
 *   construct -> populate victim -> onPrivilegeEscalation()
 *             -> attack runs against device()
 *             -> attemptRecovery(victim, attack_start)
 *             -> measure victim.intactFraction(device())
 *
 * The models are *behavioural*: each reproduces the documented
 * mechanism of the original system (detection windows, bounded
 * shadow/backup space, firmware retention heuristics) at the level
 * of fidelity the Table 1 comparison needs. See docs/ARCHITECTURE.md ("Table 1 defense properties").
 */

#ifndef RSSD_BASELINE_DEFENSE_HH
#define RSSD_BASELINE_DEFENSE_HH

#include <memory>
#include <string>

#include "attack/victim.hh"
#include "nvme/command.hh"
#include "sim/clock.hh"

namespace rssd::baseline {

/** Data-recovery classification, matching Table 1's glyphs. */
enum class RecoveryClass : std::uint8_t {
    Unrecoverable,        ///< paper glyph: empty circle
    PartiallyRecoverable, ///< paper glyph: half circle
    Recoverable,          ///< paper glyph: full circle
};

const char *recoveryClassName(RecoveryClass c);

/** Classify a measured recovered fraction. */
RecoveryClass classifyRecovery(double fraction);

/** Did the defense "defend" the attack (preserve the data)? */
inline bool
defended(double recovered_fraction)
{
    return recovered_fraction >= 0.99;
}

class Defense
{
  public:
    virtual ~Defense() = default;

    virtual const char *name() const = 0;

    /** The block device the attack (and victim I/O) runs against. */
    virtual nvme::BlockDevice &device() = 0;

    /**
     * Ransomware 2.0 escalates to admin before attacking; software
     * defenses lose their agents here, hardware ones don't care.
     */
    virtual void onPrivilegeEscalation() {}

    /** Whether online detection tripped during the attack. */
    virtual bool detectedAttack() const { return false; }

    /**
     * Attempt to restore the victim dataset to its pre-attack state.
     * @param attack_start  simulated time the attack began (the
     *        operator learns this from the incident, or — for RSSD —
     *        from post-attack analysis).
     */
    virtual void attemptRecovery(const attack::VictimDataset &victim,
                                 Tick attack_start) = 0;

    /**
     * Can this defense produce a *trusted* (tamper-evident,
     * verifiable) history of the I/O operations for forensics?
     */
    virtual bool forensicsAvailable() const { return false; }
};

} // namespace rssd::baseline

#endif // RSSD_BASELINE_DEFENSE_HH
