/**
 * @file
 * RSSD as a Defense: the paper's system, driven through the same
 * Table 1 harness as every baseline. Recovery is the real pipeline —
 * fetch history from the remote store, verify the evidence chain,
 * run offline analysis to locate the attack, and roll back to the
 * recommended point.
 */

#ifndef RSSD_BASELINE_RSSD_DEFENSE_HH
#define RSSD_BASELINE_RSSD_DEFENSE_HH

#include <memory>

#include "baseline/defense.hh"
#include "core/analyzer.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

namespace rssd::baseline {

class RssdDefense : public Defense
{
  public:
    RssdDefense(const core::RssdConfig &config, VirtualClock &clock);

    const char *name() const override { return "RSSD"; }
    nvme::BlockDevice &device() override { return device_; }

    void attemptRecovery(const attack::VictimDataset &victim,
                         Tick attack_start) override;

    bool detectedAttack() const override { return analysisDetected_; }

    /** RSSD's whole point: a verified, hash-chained history. */
    bool forensicsAvailable() const override;

    core::RssdDevice &rssd() { return device_; }

    /** The last analysis report (valid after attemptRecovery). */
    const core::AnalysisReport &lastAnalysis() const
    {
        return analysis_;
    }

    /** The last recovery report (valid after attemptRecovery). */
    const core::RecoveryReport &lastRecovery() const
    {
        return recovery_;
    }

  private:
    core::RssdDevice device_;
    core::AnalysisReport analysis_;
    core::RecoveryReport recovery_;
    bool analysisDetected_ = false;
};

} // namespace rssd::baseline

#endif // RSSD_BASELINE_RSSD_DEFENSE_HH
