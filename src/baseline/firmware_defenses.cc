#include "baseline/firmware_defenses.hh"

#include <algorithm>

#include "crypto/entropy.hh"

namespace rssd::baseline {

// ---------------------------------------------------------------------
// FirmwareDefenseBase
// ---------------------------------------------------------------------

FirmwareDefenseBase::FirmwareDefenseBase(const ftl::FtlConfig &config,
                                         VirtualClock &clock,
                                         const RetainParams &params)
    : clock_(clock), ftl_(config, clock, this), retainParams_(params)
{
}

std::uint64_t
FirmwareDefenseBase::capacityPages() const
{
    return ftl_.logicalPages();
}

std::uint32_t
FirmwareDefenseBase::pageSize() const
{
    return ftl_.config().geometry.pageSize;
}

ftl::RetainVerdict
FirmwareDefenseBase::onInvalidate(flash::Lpa lpa, flash::Ppa old_ppa,
                                  const flash::Oob &oob,
                                  ftl::InvalidateCause cause, Tick now)
{
    expireHolds(now);
    if (!shouldHold(lpa, inFlightEntropy_, cause, now))
        return ftl::RetainVerdict::Discard;

    while (held_.size() >= retainParams_.maxHeldPages)
        dropOldestHold();

    HeldVersion v;
    v.lpa = lpa;
    v.ppa = old_ppa;
    v.writtenAt = oob.writeTick;
    v.invalidatedAt = now;
    held_.emplace(oob.seq, v);
    heldByPpa_.emplace(old_ppa, oob.seq);
    return ftl::RetainVerdict::Hold;
}

void
FirmwareDefenseBase::onHeldRelocated(flash::Ppa from, flash::Ppa to)
{
    const auto it = heldByPpa_.find(from);
    panicIf(it == heldByPpa_.end(),
            "firmware defense: relocated untracked hold");
    const std::uint64_t seq = it->second;
    heldByPpa_.erase(it);
    heldByPpa_.emplace(to, seq);
    held_.at(seq).ppa = to;
}

void
FirmwareDefenseBase::dropOldestHold()
{
    if (held_.empty())
        return;
    const auto it = held_.begin();
    ftl_.releaseHeld(it->second.ppa);
    heldByPpa_.erase(it->second.ppa);
    held_.erase(it);
}

void
FirmwareDefenseBase::expireHolds(Tick now)
{
    if (retainParams_.maxHoldAge == 0)
        return;
    while (!held_.empty()) {
        const HeldVersion &oldest = held_.begin()->second;
        if (now - oldest.invalidatedAt <= retainParams_.maxHoldAge)
            break;
        dropOldestHold();
    }
}

nvme::Completion
FirmwareDefenseBase::submit(const nvme::Command &cmd)
{
    observeCommand(cmd);
    const std::uint32_t page_size = pageSize();
    return nvme::executeOnFtl(
        cmd, page_size, capacityPages(), clock_,
        [this, &cmd, page_size](flash::Lpa lpa,
                                const std::vector<std::uint8_t> &page) {
            (void)cmd;
            inFlightEntropy_ = page.empty()
                ? detect::kNoEntropy
                : static_cast<float>(crypto::shannonEntropy(
                      page.data(), page.size()));
            if (!allowWrite(lpa, inFlightEntropy_)) {
                // Blocked by the in-controller defense: report
                // success-without-effect is unrealistic, so surface
                // it as a no-space style failure the attacker sees.
                return ftl::IoResult{ftl::Status::NoSpace,
                                     clock_.now()};
            }
            ftl::IoResult r = ftl_.write(lpa, page, clock_.now());
            if (r.status == ftl::Status::NoSpace) {
                // Local retention pressure: a real bounded-retention
                // firmware sacrifices the oldest holds to keep the
                // device writable.
                while (r.status == ftl::Status::NoSpace &&
                       !held_.empty()) {
                    dropOldestHold();
                    r = ftl_.write(lpa, page, clock_.now());
                }
            }
            return r;
        },
        [this](flash::Lpa lpa, std::vector<std::uint8_t> &page) {
            const ftl::IoResult r = ftl_.read(lpa, clock_.now());
            if (r.status == ftl::Status::Ok)
                page = ftl_.lastReadContent();
            return r;
        },
        [this](flash::Lpa lpa) {
            inFlightEntropy_ = detect::kNoEntropy;
            return ftl_.trim(lpa, clock_.now());
        });
}

void
FirmwareDefenseBase::attemptRecovery(const attack::VictimDataset &victim,
                                     Tick attack_start)
{
    // Restore, for each victim page, the retained version that was
    // live when the attack began (written before, invalidated after).
    std::unordered_map<flash::Lpa, const HeldVersion *> best;
    for (const auto &[seq, v] : held_) {
        if (v.writtenAt < attack_start &&
            v.invalidatedAt >= attack_start) {
            auto &slot = best[v.lpa];
            if (!slot || v.writtenAt > slot->writtenAt)
                slot = &v;
        }
    }
    for (std::uint32_t i = 0; i < victim.pages(); i++) {
        const flash::Lpa lpa = victim.firstLpa() + i;
        const auto it = best.find(lpa);
        if (it == best.end())
            continue;
        const std::vector<std::uint8_t> content =
            ftl_.nand().content(it->second->ppa);
        if (!content.empty())
            writePage(lpa, content);
    }
}

// ---------------------------------------------------------------------
// FlashGuardLike
// ---------------------------------------------------------------------

FlashGuardLike::FlashGuardLike(const ftl::FtlConfig &config,
                               VirtualClock &clock, const Params &params)
    : FirmwareDefenseBase(config, clock, params.retain),
      params_(params)
{
}

void
FlashGuardLike::observeCommand(const nvme::Command &cmd)
{
    if (cmd.op != nvme::Opcode::Read)
        return;
    for (std::uint32_t i = 0; i < cmd.npages; i++) {
        const flash::Lpa lpa = cmd.lpa + i;
        if (recentReads_.emplace(lpa, clock_.now()).second)
            readOrder_.push_back(lpa);
        else
            recentReads_[lpa] = clock_.now();
    }
    while (recentReads_.size() > params_.maxTrackedReads &&
           !readOrder_.empty()) {
        recentReads_.erase(readOrder_.front());
        readOrder_.pop_front();
    }
}

bool
FlashGuardLike::shouldHold(flash::Lpa lpa, float new_entropy,
                           ftl::InvalidateCause cause, Tick now)
{
    if (cause != ftl::InvalidateCause::HostOverwrite)
        return false; // FlashGuard predates the trimming attack
    if (new_entropy < params_.highEntropy)
        return false;
    const auto it = recentReads_.find(lpa);
    return it != recentReads_.end() &&
           now - it->second <= params_.readWindow;
}

// ---------------------------------------------------------------------
// TimeSsdLike
// ---------------------------------------------------------------------

TimeSsdLike::TimeSsdLike(const ftl::FtlConfig &config,
                         VirtualClock &clock, const Params &params)
    : FirmwareDefenseBase(config, clock, params.retain)
{
}

bool
TimeSsdLike::shouldHold(flash::Lpa lpa, float new_entropy,
                        ftl::InvalidateCause cause, Tick now)
{
    (void)lpa; (void)new_entropy; (void)now;
    // Retain all overwrites within the window; trims still discard.
    return cause == ftl::InvalidateCause::HostOverwrite;
}

// ---------------------------------------------------------------------
// DetectRollbackLike
// ---------------------------------------------------------------------

DetectRollbackLike::DetectRollbackLike(const ftl::FtlConfig &config,
                                       VirtualClock &clock,
                                       const Params &params)
    : FirmwareDefenseBase(config, clock, params.retain),
      params_(params),
      detector_(params.detector)
{
}

bool
DetectRollbackLike::detectedAttack() const
{
    return detector_.alarmed();
}

bool
DetectRollbackLike::shouldHold(flash::Lpa lpa, float new_entropy,
                               ftl::InvalidateCause cause, Tick now)
{
    (void)lpa; (void)new_entropy; (void)now;
    // Retain recent overwrites so a detection can roll them back;
    // the small buffer + age bound does the forgetting.
    return cause == ftl::InvalidateCause::HostOverwrite;
}

void
DetectRollbackLike::observeCommand(const nvme::Command &cmd)
{
    const std::uint32_t page_size = pageSize();
    for (std::uint32_t i = 0; i < cmd.npages; i++) {
        const flash::Lpa lpa = cmd.lpa + i;
        if (cmd.op == nvme::Opcode::Write) {
            detect::IoEvent ev;
            ev.kind = detect::EventKind::Write;
            ev.lpa = lpa;
            ev.timestamp = clock_.now();
            ev.seq = eventSeq_++;
            if (!cmd.data.empty()) {
                ev.entropy = static_cast<float>(crypto::shannonEntropy(
                    cmd.data.data() + std::size_t(i) * page_size,
                    page_size));
            }
            const auto it = liveEntropy_.find(lpa);
            ev.overwrite = it != liveEntropy_.end();
            ev.prevEntropy =
                ev.overwrite ? it->second : detect::kNoEntropy;
            liveEntropy_[lpa] = ev.entropy;
            detector_.observe(ev);
        } else if (cmd.op == nvme::Opcode::Trim) {
            liveEntropy_.erase(lpa);
        }
    }
}

bool
DetectRollbackLike::allowWrite(flash::Lpa lpa, float entropy)
{
    (void)lpa;
    if (!params_.blockOnDetect || !detector_.alarmed())
        return true;
    // RBlocker behaviour: once alarmed, block further high-entropy
    // writes (suspected ciphertext).
    return entropy < 7.0f;
}

void
DetectRollbackLike::attemptRecovery(const attack::VictimDataset &victim,
                                    Tick attack_start)
{
    if (!detector_.alarmed())
        return; // rollback is detection-triggered
    FirmwareDefenseBase::attemptRecovery(victim, attack_start);
}

} // namespace rssd::baseline
