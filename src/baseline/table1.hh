/**
 * @file
 * The Table 1 experiment: run every defense against every attack,
 * measure what survives, and classify the results with the paper's
 * glyphs. Shared by tests/baseline/table1_test.cc (asserts the
 * shape) and bench/table1_defense_matrix.cc (prints the table).
 */

#ifndef RSSD_BASELINE_TABLE1_HH
#define RSSD_BASELINE_TABLE1_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/defense.hh"

namespace rssd::baseline {

/** The attacks of the Table 1 columns. */
enum class AttackKind : std::uint8_t {
    Classic,
    Gc,
    Timing,
    Trimming,
};

const char *attackKindName(AttackKind k);

/** Outcome of one (defense, attack) cell. */
struct CellOutcome
{
    bool defended = false;     ///< recovered fraction >= 0.99
    double recovered = 0.0;    ///< victim fraction intact post-recovery
    bool detectedOnline = false;
};

/** One defense's full row. */
struct Table1Row
{
    std::string defense;
    CellOutcome cells[4]; ///< indexed by AttackKind
    bool forensics = false;
    RecoveryClass recovery = RecoveryClass::Unrecoverable;

    const CellOutcome &cell(AttackKind k) const
    {
        return cells[static_cast<int>(k)];
    }
};

/** Experiment knobs (sized for the 16 MiB test geometry). */
struct Table1Params
{
    std::uint32_t victimPages = 128;
    double gcFloodMultiple = 1.0;
    double gcFloodSpan = 0.4;
    Tick timingInterval = 2 * units::SEC;
    std::uint32_t timingBenignOps = 32;
};

/** A factory producing a fresh defense bound to @p clock. */
using DefenseFactory =
    std::function<std::unique_ptr<Defense>(VirtualClock &clock)>;

/** Name + factory for each Table 1 defense (10 rows, RSSD last). */
std::vector<std::pair<std::string, DefenseFactory>>
table1Defenses();

/** Run one cell: fresh defense, populate, attack, recover, measure. */
CellOutcome runCell(const DefenseFactory &factory, AttackKind attack,
                    const Table1Params &params);

/** Run the full matrix. */
std::vector<Table1Row> runTable1(const Table1Params &params = {});

} // namespace rssd::baseline

#endif // RSSD_BASELINE_TABLE1_HH
