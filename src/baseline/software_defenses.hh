/**
 * @file
 * Software (host-level) defense models for Table 1.
 *
 * All of these sit *above* the block interface, which is exactly
 * their weakness in the paper's threat model: privileged ransomware
 * can terminate them, and the SSD underneath recycles stale flash
 * pages as usual.
 *
 *  - PlainSsdDefense      : no defense at all (LocalSSD row anchor).
 *  - SoftwareDetectorDefense : UNVEIL / CryptoDrop style host
 *    detector; detection only, no recovery; killed by priv-esc.
 *  - CloudBackupDefense   : sync-style versioned cloud backup with a
 *    storage budget and deletion propagation.
 *  - ShieldFsDefense      : filter-driver shadowing of first
 *    overwrites with a bounded shadow area + windowed detector.
 *  - JournalingFsDefense  : metadata/data journal with wraparound.
 */

#ifndef RSSD_BASELINE_SOFTWARE_DEFENSES_HH
#define RSSD_BASELINE_SOFTWARE_DEFENSES_HH

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/defense.hh"
#include "detect/detector.hh"
#include "ftl/ftl.hh"
#include "nvme/local_ssd.hh"

namespace rssd::baseline {

/**
 * Host-side shim: forwards commands to an inner LocalSsd while
 * letting a subclass observe them (filter-driver position). The
 * observation hooks stop firing once the agent is disabled.
 */
class HostShimDefense : public Defense, public nvme::BlockDevice
{
  public:
    HostShimDefense(const ftl::FtlConfig &config, VirtualClock &clock);

    nvme::BlockDevice &device() override { return *this; }
    nvme::Completion submit(const nvme::Command &cmd) override;
    std::uint64_t capacityPages() const override;
    std::uint32_t pageSize() const override;

    VirtualClock &clock() { return clock_; }
    nvme::LocalSsd &inner() { return inner_; }

  protected:
    /** Called (only while the agent is alive) before forwarding. */
    virtual void onHostCommand(const nvme::Command &cmd) { (void)cmd; }

    /** Kill the host agent (used by subclasses on priv-esc). */
    void killAgent() { agentAlive_ = false; }

    bool agentAlive() const { return agentAlive_; }

    VirtualClock &clock_;
    nvme::LocalSsd inner_;

  private:
    bool agentAlive_ = true;
};

/** The undefended SSD. */
class PlainSsdDefense : public HostShimDefense
{
  public:
    using HostShimDefense::HostShimDefense;
    const char *name() const override { return "LocalSSD"; }
    void attemptRecovery(const attack::VictimDataset &,
                         Tick) override
    {
        // Nothing to recover from.
    }
};

/**
 * UNVEIL / CryptoDrop-class host detector: watches the I/O stream
 * for ransomware signatures, raises an alarm, recovers nothing.
 */
class SoftwareDetectorDefense : public HostShimDefense
{
  public:
    SoftwareDetectorDefense(const ftl::FtlConfig &config,
                            VirtualClock &clock);

    const char *name() const override { return "SoftwareDetector"; }

    /**
     * A user-space monitoring agent is the easiest kill for
     * privileged malware (the paper's first software limitation).
     * The sync/shadow/journal defenses keep their data paths: those
     * sit in kernel filter drivers or on the service side, and the
     * paper faults their retention policies, not their liveness.
     */
    void onPrivilegeEscalation() override { killAgent(); }

    bool detectedAttack() const override;
    void attemptRecovery(const attack::VictimDataset &,
                         Tick) override
    {
        // Detection-only system.
    }

  protected:
    void onHostCommand(const nvme::Command &cmd) override;

  private:
    detect::EntropyOverwriteDetector entropyDetector_;
    detect::ReadOverwriteDetector patternDetector_;
    std::unordered_map<flash::Lpa, float> liveEntropy_;
    std::uint64_t eventSeq_ = 0;
};

/**
 * Versioned cloud backup with sync semantics: page writes are
 * mirrored (every syncInterval host ops) into a remote version
 * store with a byte budget; deletions (TRIM) propagate. Privileged
 * malware kills the agent but cannot reach already-stored versions.
 */
class CloudBackupDefense : public HostShimDefense
{
  public:
    struct Params
    {
        std::uint64_t budgetBytes = 8ull * units::MiB;
        std::uint32_t syncInterval = 64; ///< host ops per sync pass
    };

    CloudBackupDefense(const ftl::FtlConfig &config,
                       VirtualClock &clock)
        : CloudBackupDefense(config, clock, Params())
    {
    }
    CloudBackupDefense(const ftl::FtlConfig &config,
                       VirtualClock &clock, const Params &params);

    const char *name() const override { return "CloudBackup"; }
    void attemptRecovery(const attack::VictimDataset &victim,
                         Tick attack_start) override;

  protected:
    void onHostCommand(const nvme::Command &cmd) override;

  private:
    struct Version
    {
        Tick syncedAt;
        std::vector<std::uint8_t> content;
    };

    void syncDirty();
    void evictToBudget();

    Params params_;
    std::map<flash::Lpa, std::vector<Version>> store_;
    std::deque<std::pair<flash::Lpa, std::size_t>> evictionOrder_;
    std::unordered_map<flash::Lpa, std::vector<std::uint8_t>> dirty_;
    std::uint64_t usedBytes_ = 0;
    std::uint32_t opsSinceSync_ = 0;
};

/**
 * ShieldFS-class filter driver: shadow-copies the previous content
 * of overwritten pages into a bounded shadow area and restores them
 * when its detector fires. The shadow area recycles oldest-first.
 */
class ShieldFsDefense : public HostShimDefense
{
  public:
    struct Params
    {
        std::uint64_t shadowBudgetBytes = 4ull * units::MiB;
        detect::EntropyOverwriteDetector::Config detector;
    };

    ShieldFsDefense(const ftl::FtlConfig &config, VirtualClock &clock)
        : ShieldFsDefense(config, clock, Params())
    {
    }
    ShieldFsDefense(const ftl::FtlConfig &config, VirtualClock &clock,
                    const Params &params);

    const char *name() const override { return "ShieldFS"; }
    bool detectedAttack() const override;
    void attemptRecovery(const attack::VictimDataset &victim,
                         Tick attack_start) override;

  protected:
    void onHostCommand(const nvme::Command &cmd) override;

  private:
    struct Shadow
    {
        Tick takenAt;
        std::vector<std::uint8_t> content;
    };

    Params params_;
    detect::EntropyOverwriteDetector detector_;
    std::unordered_map<flash::Lpa, float> liveEntropy_;
    std::map<flash::Lpa, Shadow> shadows_; ///< first-overwrite copy
    std::deque<flash::Lpa> shadowOrder_;
    std::uint64_t shadowBytes_ = 0;
    std::uint64_t eventSeq_ = 0;
};

/**
 * Journaling filesystem: a bounded ring journal. In the default
 * (realistic) mode the journal covers *metadata only* — like ext3/4
 * with data=ordered — so no before-image of file contents exists and
 * recovery restores nothing (Table 1's "unrecoverable"). With
 * dataJournaling enabled, a small data journal exists but wraps long
 * before any real attack ends.
 */
class JournalingFsDefense : public HostShimDefense
{
  public:
    struct Params
    {
        std::uint32_t journalPages = 64;
        bool dataJournaling = false;
    };

    JournalingFsDefense(const ftl::FtlConfig &config,
                        VirtualClock &clock)
        : JournalingFsDefense(config, clock, Params())
    {
    }
    JournalingFsDefense(const ftl::FtlConfig &config,
                        VirtualClock &clock, const Params &params);

    const char *name() const override { return "JFS"; }
    void attemptRecovery(const attack::VictimDataset &victim,
                         Tick attack_start) override;

  protected:
    void onHostCommand(const nvme::Command &cmd) override;

  private:
    struct JournalRecord
    {
        flash::Lpa lpa;
        Tick at;
        std::vector<std::uint8_t> before;
    };

    Params params_;
    std::deque<JournalRecord> journal_;
};

} // namespace rssd::baseline

#endif // RSSD_BASELINE_SOFTWARE_DEFENSES_HH
