#include "baseline/table1.hh"

#include "attack/ransomware.hh"
#include "baseline/firmware_defenses.hh"
#include "baseline/rssd_defense.hh"
#include "baseline/software_defenses.hh"
#include "core/rssd_config.hh"

namespace rssd::baseline {

namespace {

ftl::FtlConfig
table1FtlConfig()
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    cfg.gcLowWater = 2;
    cfg.gcHighWater = 4;
    return cfg;
}

std::unique_ptr<attack::Ransomware>
makeAttack(AttackKind kind, const Table1Params &params)
{
    switch (kind) {
      case AttackKind::Classic:
        return std::make_unique<attack::ClassicRansomware>();
      case AttackKind::Gc: {
        attack::GcAttack::Params p;
        p.floodCapacityMultiple = params.gcFloodMultiple;
        p.floodSpanFraction = params.gcFloodSpan;
        return std::make_unique<attack::GcAttack>(p);
      }
      case AttackKind::Timing: {
        attack::TimingAttack::Params p;
        p.encryptionInterval = params.timingInterval;
        p.benignOpsPerEncrypt = params.timingBenignOps;
        return std::make_unique<attack::TimingAttack>(p);
      }
      case AttackKind::Trimming:
        return std::make_unique<attack::TrimmingAttack>();
    }
    panic("unknown attack kind");
}

} // namespace

const char *
attackKindName(AttackKind k)
{
    switch (k) {
      case AttackKind::Classic: return "classic";
      case AttackKind::Gc: return "gc";
      case AttackKind::Timing: return "timing";
      case AttackKind::Trimming: return "trimming";
    }
    return "?";
}

std::vector<std::pair<std::string, DefenseFactory>>
table1Defenses()
{
    const ftl::FtlConfig ftl_cfg = table1FtlConfig();
    std::vector<std::pair<std::string, DefenseFactory>> out;

    out.emplace_back("LocalSSD", [ftl_cfg](VirtualClock &clock) {
        return std::make_unique<PlainSsdDefense>(ftl_cfg, clock);
    });
    // UNVEIL and CryptoDrop share the host-detector model.
    out.emplace_back("Unveil", [ftl_cfg](VirtualClock &clock) {
        return std::make_unique<SoftwareDetectorDefense>(ftl_cfg,
                                                         clock);
    });
    out.emplace_back("CryptoDrop", [ftl_cfg](VirtualClock &clock) {
        return std::make_unique<SoftwareDetectorDefense>(ftl_cfg,
                                                         clock);
    });
    out.emplace_back("CloudBackup", [ftl_cfg](VirtualClock &clock) {
        CloudBackupDefense::Params p;
        p.budgetBytes = 8 * units::MiB;
        p.syncInterval = 64;
        return std::make_unique<CloudBackupDefense>(ftl_cfg, clock, p);
    });
    out.emplace_back("ShieldFS", [ftl_cfg](VirtualClock &clock) {
        return std::make_unique<ShieldFsDefense>(ftl_cfg, clock);
    });
    out.emplace_back("JFS", [ftl_cfg](VirtualClock &clock) {
        return std::make_unique<JournalingFsDefense>(ftl_cfg, clock);
    });
    out.emplace_back("FlashGuard", [ftl_cfg](VirtualClock &clock) {
        FlashGuardLike::Params p;
        p.retain.maxHoldAge = 60 * units::SEC;
        return std::make_unique<FlashGuardLike>(ftl_cfg, clock, p);
    });
    out.emplace_back("TimeSSD", [ftl_cfg](VirtualClock &clock) {
        TimeSsdLike::Params p;
        p.retain.maxHoldAge = 120 * units::SEC;
        p.retain.maxHeldPages = 512;
        return std::make_unique<TimeSsdLike>(ftl_cfg, clock, p);
    });
    out.emplace_back("SSDInsider", [ftl_cfg](VirtualClock &clock) {
        return std::make_unique<DetectRollbackLike>(ftl_cfg, clock);
    });
    out.emplace_back("RBlocker", [ftl_cfg](VirtualClock &clock) {
        DetectRollbackLike::Params p;
        p.blockOnDetect = true;
        p.displayName = "RBlocker";
        return std::make_unique<DetectRollbackLike>(ftl_cfg, clock, p);
    });
    out.emplace_back("RSSD", [](VirtualClock &clock) {
        return std::make_unique<RssdDefense>(
            core::RssdConfig::forTests(), clock);
    });
    return out;
}

CellOutcome
runCell(const DefenseFactory &factory, AttackKind kind,
        const Table1Params &params)
{
    VirtualClock clock;
    std::unique_ptr<Defense> defense = factory(clock);

    attack::VictimDataset victim(0, params.victimPages);
    victim.populate(defense->device());

    // Let periodic agents (backup sync) settle, then give the user a
    // quiet hour before the incident.
    for (int i = 0; i < 100; i++)
        defense->device().readPage(defense->device().capacityPages() -
                                   1);
    clock.advance(units::HOUR);

    // Ransomware 2.0 runs with admin privileges.
    defense->onPrivilegeEscalation();
    const Tick attack_start = clock.now();

    std::unique_ptr<attack::Ransomware> attack =
        makeAttack(kind, params);
    attack->run(defense->device(), clock, victim);

    defense->attemptRecovery(victim, attack_start);

    CellOutcome cell;
    cell.recovered = victim.intactFraction(defense->device());
    cell.defended = defended(cell.recovered);
    cell.detectedOnline = defense->detectedAttack();
    return cell;
}

std::vector<Table1Row>
runTable1(const Table1Params &params)
{
    std::vector<Table1Row> rows;
    for (const auto &[name, factory] : table1Defenses()) {
        Table1Row row;
        row.defense = name;
        double sum = 0.0;
        for (int a = 0; a < 4; a++) {
            row.cells[a] =
                runCell(factory, static_cast<AttackKind>(a), params);
            sum += row.cells[a].recovered;
        }
        row.recovery = classifyRecovery(sum / 4.0);

        // Forensics: probe once with a fresh instance post-attack.
        {
            VirtualClock clock;
            std::unique_ptr<Defense> defense = factory(clock);
            attack::VictimDataset victim(0, params.victimPages);
            victim.populate(defense->device());
            attack::ClassicRansomware classic;
            classic.run(defense->device(), clock, victim);
            defense->attemptRecovery(victim, clock.now());
            row.forensics = defense->forensicsAvailable();
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace rssd::baseline
