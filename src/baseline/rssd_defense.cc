#include "baseline/rssd_defense.hh"

namespace rssd::baseline {

RssdDefense::RssdDefense(const core::RssdConfig &config,
                         VirtualClock &clock)
    : device_(config, clock)
{
}

bool
RssdDefense::forensicsAvailable() const
{
    // The evidence chain must verify end to end: remote segments,
    // the local tail, and the splice between them.
    return device_.backupStore().verifyFullChain() &&
           device_.opLog().verifyHeldChain();
}

void
RssdDefense::attemptRecovery(const attack::VictimDataset &victim,
                             Tick attack_start)
{
    (void)victim; // RSSD recovers the whole device, not just files.

    // Make sure everything pending is on the remote store, then run
    // the real post-attack pipeline.
    device_.drainOffload();

    core::DeviceHistory history(device_);
    core::PostAttackAnalyzer analyzer(history);
    analysis_ = analyzer.analyze();
    analysisDetected_ = analysis_.finding.detected;

    std::uint64_t target;
    if (analysis_.finding.detected) {
        target = analysis_.finding.recommendedRecoverySeq;
    } else {
        // Fall back to the operator-supplied incident time.
        target = history.entries().size();
        for (std::uint64_t i = 0; i < history.entries().size(); i++) {
            if (history.entries()[i].timestamp >= attack_start) {
                target = i;
                break;
            }
        }
    }

    core::RecoveryEngine engine(history);
    recovery_ = engine.recoverToLogSeq(target);
}

} // namespace rssd::baseline
