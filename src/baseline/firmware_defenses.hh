/**
 * @file
 * Firmware (in-controller) defense models for Table 1. Unlike the
 * software defenses, these survive privilege escalation — they sit
 * below the block interface, like RSSD. Their weakness is *local
 * capacity*: every one of them retains stale data only on the SSD
 * itself, bounded by space (and/or a time window), which is exactly
 * what the Ransomware 2.0 attacks exploit.
 *
 *  - FlashGuardLike : retains pages whose overwrite looks like
 *    encryption (recently read + high-entropy new data), bounded
 *    retention age. (FlashGuard, CCS'17.)
 *  - TimeSsdLike    : retains *all* overwritten pages within a time
 *    window, bounded local budget.
 *  - DetectRollbackLike : windowed online detector + rollback of the
 *    recently retained writes when it fires; optional write blocking
 *    after detection (SSDInsider-style when not blocking,
 *    RBlocker-style when blocking).
 *
 * None of them retain trimmed data, and none can talk to the network
 * — those are precisely RSSD's two additions.
 */

#ifndef RSSD_BASELINE_FIRMWARE_DEFENSES_HH
#define RSSD_BASELINE_FIRMWARE_DEFENSES_HH

#include <map>
#include <unordered_map>

#include "baseline/defense.hh"
#include "detect/detector.hh"
#include "ftl/ftl.hh"
#include "nvme/local_ssd.hh"

namespace rssd::baseline {

/**
 * Shared machinery: a BlockDevice over a PageMappedFtl whose policy
 * is the defense itself; bookkeeping of held versions with capacity
 * and age bounds; restore-from-held recovery.
 */
class FirmwareDefenseBase : public Defense,
                            public nvme::BlockDevice,
                            protected ftl::FtlPolicy
{
  public:
    struct RetainParams
    {
        /** Max pages retained locally (SSD spare space budget). */
        std::uint64_t maxHeldPages = 1024;
        /** Retention age bound; 0 = no bound. */
        Tick maxHoldAge = 0;
    };

    FirmwareDefenseBase(const ftl::FtlConfig &config,
                        VirtualClock &clock,
                        const RetainParams &params);

    // -- nvme::BlockDevice ------------------------------------------------

    nvme::Completion submit(const nvme::Command &cmd) override;
    std::uint64_t capacityPages() const override;
    std::uint32_t pageSize() const override;

    nvme::BlockDevice &device() override { return *this; }

    void attemptRecovery(const attack::VictimDataset &victim,
                         Tick attack_start) override;

    std::uint64_t heldVersions() const { return held_.size(); }

  protected:
    /** Subclass policy: retain this invalidated page? */
    virtual bool shouldHold(flash::Lpa lpa, float new_entropy,
                            ftl::InvalidateCause cause, Tick now) = 0;

    /** Subclass hook: observe host commands (detectors, read maps). */
    virtual void observeCommand(const nvme::Command &cmd) { (void)cmd; }

    /** Subclass hook: veto a write (RBlocker-style blocking). */
    virtual bool allowWrite(flash::Lpa lpa, float entropy)
    {
        (void)lpa; (void)entropy;
        return true;
    }

    // -- ftl::FtlPolicy -----------------------------------------------------

    ftl::RetainVerdict onInvalidate(flash::Lpa lpa, flash::Ppa old_ppa,
                                    const flash::Oob &oob,
                                    ftl::InvalidateCause cause,
                                    Tick now) override;
    void onHeldRelocated(flash::Ppa from, flash::Ppa to) override;

    /** Drop the oldest held version (capacity/age pressure). */
    void dropOldestHold();

    /** Age out holds older than maxHoldAge. */
    void expireHolds(Tick now);

    VirtualClock &clock_;
    ftl::PageMappedFtl ftl_;
    RetainParams retainParams_;

    /** One retained pre-attack version. */
    struct HeldVersion
    {
        flash::Lpa lpa;
        flash::Ppa ppa;
        Tick writtenAt;
        Tick invalidatedAt;
    };

    std::map<std::uint64_t, HeldVersion> held_; ///< by dataSeq
    std::unordered_map<flash::Ppa, std::uint64_t> heldByPpa_;

    /** Entropy of the write currently being executed, per page. */
    float inFlightEntropy_ = detect::kNoEntropy;
};

/** FlashGuard (CCS'17) style: retain suspected-encrypted overwrites. */
class FlashGuardLike : public FirmwareDefenseBase
{
  public:
    struct Params
    {
        RetainParams retain{.maxHeldPages = 4096,
                            .maxHoldAge = 5 * units::MINUTE};
        float highEntropy = 7.2f;
        Tick readWindow = 30 * units::SEC; ///< read->overwrite gap
        std::size_t maxTrackedReads = 4096;
    };

    FlashGuardLike(const ftl::FtlConfig &config, VirtualClock &clock)
        : FlashGuardLike(config, clock, Params())
    {
    }
    FlashGuardLike(const ftl::FtlConfig &config, VirtualClock &clock,
                   const Params &params);

    const char *name() const override { return "FlashGuard"; }

  protected:
    bool shouldHold(flash::Lpa lpa, float new_entropy,
                    ftl::InvalidateCause cause, Tick now) override;
    void observeCommand(const nvme::Command &cmd) override;

  private:
    Params params_;
    std::unordered_map<flash::Lpa, Tick> recentReads_;
    std::deque<flash::Lpa> readOrder_;
};

/** TimeSSD style: retain every overwritten page within a window. */
class TimeSsdLike : public FirmwareDefenseBase
{
  public:
    struct Params
    {
        RetainParams retain{.maxHeldPages = 2048,
                            .maxHoldAge = 10 * units::MINUTE};
    };

    TimeSsdLike(const ftl::FtlConfig &config, VirtualClock &clock)
        : TimeSsdLike(config, clock, Params())
    {
    }
    TimeSsdLike(const ftl::FtlConfig &config, VirtualClock &clock,
                const Params &params);

    const char *name() const override { return "TimeSSD"; }

  protected:
    bool shouldHold(flash::Lpa lpa, float new_entropy,
                    ftl::InvalidateCause cause, Tick now) override;
};

/**
 * SSDInsider / RBlocker style: windowed in-controller detector with
 * rollback of recent retained writes; RBlocker additionally blocks
 * suspicious writes once alarmed.
 */
class DetectRollbackLike : public FirmwareDefenseBase
{
  public:
    struct Params
    {
        RetainParams retain{.maxHeldPages = 1024,
                            .maxHoldAge = 2 * units::MINUTE};
        detect::EntropyOverwriteDetector::Config detector;
        bool blockOnDetect = false; ///< true = RBlocker behaviour
        const char *displayName = "SSDInsider";
    };

    DetectRollbackLike(const ftl::FtlConfig &config,
                       VirtualClock &clock)
        : DetectRollbackLike(config, clock, Params())
    {
    }
    DetectRollbackLike(const ftl::FtlConfig &config,
                       VirtualClock &clock, const Params &params);

    const char *name() const override { return params_.displayName; }
    bool detectedAttack() const override;
    void attemptRecovery(const attack::VictimDataset &victim,
                         Tick attack_start) override;

  protected:
    bool shouldHold(flash::Lpa lpa, float new_entropy,
                    ftl::InvalidateCause cause, Tick now) override;
    void observeCommand(const nvme::Command &cmd) override;
    bool allowWrite(flash::Lpa lpa, float entropy) override;

  private:
    Params params_;
    detect::EntropyOverwriteDetector detector_;
    std::unordered_map<flash::Lpa, float> liveEntropy_;
    std::uint64_t eventSeq_ = 0;
};

} // namespace rssd::baseline

#endif // RSSD_BASELINE_FIRMWARE_DEFENSES_HH
