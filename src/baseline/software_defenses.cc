#include "baseline/software_defenses.hh"

#include <algorithm>

#include "crypto/entropy.hh"

namespace rssd::baseline {

const char *
recoveryClassName(RecoveryClass c)
{
    switch (c) {
      case RecoveryClass::Unrecoverable: return "unrecoverable";
      case RecoveryClass::PartiallyRecoverable: return "partial";
      case RecoveryClass::Recoverable: return "recoverable";
    }
    return "?";
}

RecoveryClass
classifyRecovery(double fraction)
{
    if (fraction >= 0.99)
        return RecoveryClass::Recoverable;
    if (fraction >= 0.10)
        return RecoveryClass::PartiallyRecoverable;
    return RecoveryClass::Unrecoverable;
}

namespace {

/** Entropy of one page of a multi-page write payload. */
float
pageEntropy(const nvme::Command &cmd, std::uint32_t page,
            std::uint32_t page_size)
{
    if (cmd.data.empty())
        return detect::kNoEntropy;
    return static_cast<float>(crypto::shannonEntropy(
        cmd.data.data() + std::size_t(page) * page_size, page_size));
}

} // namespace

// ---------------------------------------------------------------------
// HostShimDefense
// ---------------------------------------------------------------------

HostShimDefense::HostShimDefense(const ftl::FtlConfig &config,
                                 VirtualClock &clock)
    : clock_(clock), inner_(config, clock)
{
}

nvme::Completion
HostShimDefense::submit(const nvme::Command &cmd)
{
    if (agentAlive_)
        onHostCommand(cmd);
    return inner_.submit(cmd);
}

std::uint64_t
HostShimDefense::capacityPages() const
{
    return inner_.capacityPages();
}

std::uint32_t
HostShimDefense::pageSize() const
{
    return inner_.pageSize();
}

// ---------------------------------------------------------------------
// SoftwareDetectorDefense
// ---------------------------------------------------------------------

SoftwareDetectorDefense::SoftwareDetectorDefense(
    const ftl::FtlConfig &config, VirtualClock &clock)
    : HostShimDefense(config, clock)
{
}

bool
SoftwareDetectorDefense::detectedAttack() const
{
    return entropyDetector_.alarmed() || patternDetector_.alarmed();
}

void
SoftwareDetectorDefense::onHostCommand(const nvme::Command &cmd)
{
    const std::uint32_t page_size = pageSize();
    for (std::uint32_t i = 0; i < cmd.npages; i++) {
        const flash::Lpa lpa = cmd.lpa + i;
        detect::IoEvent ev;
        ev.lpa = lpa;
        ev.timestamp = clock_.now();
        ev.seq = eventSeq_++;
        if (cmd.op == nvme::Opcode::Write) {
            ev.kind = detect::EventKind::Write;
            ev.entropy = pageEntropy(cmd, i, page_size);
            const auto it = liveEntropy_.find(lpa);
            ev.overwrite = it != liveEntropy_.end();
            ev.prevEntropy =
                ev.overwrite ? it->second : detect::kNoEntropy;
            liveEntropy_[lpa] = ev.entropy;
        } else if (cmd.op == nvme::Opcode::Read) {
            ev.kind = detect::EventKind::Read;
        } else if (cmd.op == nvme::Opcode::Trim) {
            ev.kind = detect::EventKind::Trim;
            liveEntropy_.erase(lpa);
        } else {
            continue;
        }
        entropyDetector_.observe(ev);
        patternDetector_.observe(ev);
    }
}

// ---------------------------------------------------------------------
// CloudBackupDefense
// ---------------------------------------------------------------------

CloudBackupDefense::CloudBackupDefense(const ftl::FtlConfig &config,
                                       VirtualClock &clock,
                                       const Params &params)
    : HostShimDefense(config, clock), params_(params)
{
}

void
CloudBackupDefense::onHostCommand(const nvme::Command &cmd)
{
    const std::uint32_t page_size = pageSize();
    for (std::uint32_t i = 0; i < cmd.npages; i++) {
        const flash::Lpa lpa = cmd.lpa + i;
        if (cmd.op == nvme::Opcode::Write && !cmd.data.empty()) {
            dirty_[lpa].assign(
                cmd.data.begin() + std::size_t(i) * page_size,
                cmd.data.begin() + std::size_t(i + 1) * page_size);
        } else if (cmd.op == nvme::Opcode::Trim) {
            // Sync semantics: deletion propagates; the cloud "trash"
            // does not keep trimmed files (bounded-trash model).
            dirty_.erase(lpa);
            const auto it = store_.find(lpa);
            if (it != store_.end()) {
                for (const Version &v : it->second)
                    usedBytes_ -= v.content.size();
                store_.erase(it);
            }
        }
    }
    if (++opsSinceSync_ >= params_.syncInterval) {
        syncDirty();
        opsSinceSync_ = 0;
    }
}

void
CloudBackupDefense::syncDirty()
{
    for (auto &[lpa, content] : dirty_) {
        auto &versions = store_[lpa];
        versions.push_back(Version{clock_.now(), std::move(content)});
        usedBytes_ += versions.back().content.size();
        evictionOrder_.emplace_back(lpa, versions.size() - 1);
    }
    dirty_.clear();
    evictToBudget();
}

void
CloudBackupDefense::evictToBudget()
{
    while (usedBytes_ > params_.budgetBytes &&
           !evictionOrder_.empty()) {
        const auto [lpa, idx] = evictionOrder_.front();
        evictionOrder_.pop_front();
        const auto it = store_.find(lpa);
        if (it == store_.end() || idx >= it->second.size())
            continue; // already dropped with a trim
        Version &v = it->second[idx];
        usedBytes_ -= v.content.size();
        v.content.clear();
        v.content.shrink_to_fit();
    }
}

void
CloudBackupDefense::attemptRecovery(const attack::VictimDataset &victim,
                                    Tick attack_start)
{
    // Restore, for every victim page, the newest surviving version
    // synced before the attack began.
    for (std::uint32_t i = 0; i < victim.pages(); i++) {
        const flash::Lpa lpa = victim.firstLpa() + i;
        const auto it = store_.find(lpa);
        if (it == store_.end())
            continue;
        const Version *best = nullptr;
        for (const Version &v : it->second) {
            if (v.syncedAt < attack_start && !v.content.empty())
                best = &v;
        }
        if (best)
            inner_.writePage(lpa, best->content);
    }
}

// ---------------------------------------------------------------------
// ShieldFsDefense
// ---------------------------------------------------------------------

ShieldFsDefense::ShieldFsDefense(const ftl::FtlConfig &config,
                                 VirtualClock &clock,
                                 const Params &params)
    : HostShimDefense(config, clock),
      params_(params),
      detector_(params.detector)
{
}

bool
ShieldFsDefense::detectedAttack() const
{
    return detector_.alarmed();
}

void
ShieldFsDefense::onHostCommand(const nvme::Command &cmd)
{
    const std::uint32_t page_size = pageSize();
    for (std::uint32_t i = 0; i < cmd.npages; i++) {
        const flash::Lpa lpa = cmd.lpa + i;
        if (cmd.op == nvme::Opcode::Write) {
            // Shadow the previous content (first overwrite only:
            // ShieldFS keeps the pre-malware copy). A write to a
            // never-written LBA is file creation, not an overwrite —
            // nothing to shadow.
            if (!shadows_.count(lpa) && liveEntropy_.count(lpa)) {
                const nvme::Completion prev = inner_.readPage(lpa);
                if (prev.ok()) {
                    shadows_.emplace(
                        lpa, Shadow{clock_.now(), prev.data});
                    shadowOrder_.push_back(lpa);
                    shadowBytes_ += prev.data.size();
                }
            }
            // Recycle oldest shadows past the budget.
            while (shadowBytes_ > params_.shadowBudgetBytes &&
                   !shadowOrder_.empty()) {
                const flash::Lpa old = shadowOrder_.front();
                shadowOrder_.pop_front();
                const auto it = shadows_.find(old);
                if (it != shadows_.end()) {
                    shadowBytes_ -= it->second.content.size();
                    shadows_.erase(it);
                }
            }

            detect::IoEvent ev;
            ev.kind = detect::EventKind::Write;
            ev.lpa = lpa;
            ev.timestamp = clock_.now();
            ev.seq = eventSeq_++;
            ev.entropy = pageEntropy(cmd, i, page_size);
            const auto it = liveEntropy_.find(lpa);
            ev.overwrite = it != liveEntropy_.end();
            ev.prevEntropy =
                ev.overwrite ? it->second : detect::kNoEntropy;
            liveEntropy_[lpa] = ev.entropy;
            detector_.observe(ev);
        } else if (cmd.op == nvme::Opcode::Trim) {
            // ShieldFS watches overwrites, not deletions: no shadow.
            liveEntropy_.erase(lpa);
        }
    }
}

void
ShieldFsDefense::attemptRecovery(const attack::VictimDataset &victim,
                                 Tick attack_start)
{
    if (!detector_.alarmed())
        return; // restoration is triggered by detection
    for (std::uint32_t i = 0; i < victim.pages(); i++) {
        const flash::Lpa lpa = victim.firstLpa() + i;
        const auto it = shadows_.find(lpa);
        if (it == shadows_.end())
            continue;
        if (it->second.takenAt >= attack_start &&
            !it->second.content.empty()) {
            inner_.writePage(lpa, it->second.content);
        }
    }
}

// ---------------------------------------------------------------------
// JournalingFsDefense
// ---------------------------------------------------------------------

JournalingFsDefense::JournalingFsDefense(const ftl::FtlConfig &config,
                                         VirtualClock &clock,
                                         const Params &params)
    : HostShimDefense(config, clock), params_(params)
{
}

void
JournalingFsDefense::onHostCommand(const nvme::Command &cmd)
{
    if (cmd.op != nvme::Opcode::Write)
        return;
    for (std::uint32_t i = 0; i < cmd.npages; i++) {
        const flash::Lpa lpa = cmd.lpa + i;
        JournalRecord rec;
        rec.lpa = lpa;
        rec.at = clock_.now();
        // Metadata-only journaling (the realistic default) never
        // captures the data before-image — there is nothing to undo
        // encryption with.
        if (params_.dataJournaling) {
            const nvme::Completion prev = inner_.readPage(lpa);
            if (prev.ok())
                rec.before = prev.data;
        }
        journal_.push_back(std::move(rec));
        while (journal_.size() > params_.journalPages)
            journal_.pop_front(); // ring wraparound
    }
}

void
JournalingFsDefense::attemptRecovery(const attack::VictimDataset &victim,
                                     Tick attack_start)
{
    // Undo journal records newer than the attack start, newest first.
    (void)victim;
    for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
        if (it->at < attack_start)
            break;
        if (!it->before.empty())
            inner_.writePage(it->lpa, it->before);
    }
}

} // namespace rssd::baseline
