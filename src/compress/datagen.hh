/**
 * @file
 * Synthetic page-content generator with controllable compressibility.
 *
 * The paper's Figure 2 splits on compression ratio (LocalSSD vs
 * LocalSSD+Compression vs RSSD), so the *content* of synthetic pages
 * matters, not just their addresses. This generator produces byte
 * buffers whose LZ compression ratio tracks a requested target, by
 * mixing repeated dictionary phrases (compressible) with RNG bytes
 * (incompressible).
 */

#ifndef RSSD_COMPRESS_DATAGEN_HH
#define RSSD_COMPRESS_DATAGEN_HH

#include <cstdint>
#include <vector>

#include "compress/lz.hh"
#include "sim/rng.hh"

namespace rssd::compress {

/**
 * Generates page payloads at a requested compressibility level.
 * Thread-compatible: each generator owns its RNG.
 */
class DataGenerator
{
  public:
    /**
     * @param seed           RNG seed (deterministic output)
     * @param compressibility  0.0 = pure random (ratio ~1x),
     *                         1.0 = highly redundant (ratio > 8x).
     */
    DataGenerator(std::uint64_t seed, double compressibility);

    /** Produce @p size bytes of content. */
    Bytes page(std::size_t size);

    /** The fraction of redundant content being generated. */
    double compressibility() const { return _compressibility; }

  private:
    Rng rng_;
    double _compressibility;
    Bytes dictionary_;
};

} // namespace rssd::compress

#endif // RSSD_COMPRESS_DATAGEN_HH
