#include "compress/datagen.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::compress {

DataGenerator::DataGenerator(std::uint64_t seed, double compressibility)
    : rng_(seed),
      _compressibility(std::clamp(compressibility, 0.0, 1.0))
{
    // A small shared dictionary of "phrases"; drawing runs from it
    // makes output compressible in proportion to how often we use it.
    dictionary_.resize(512);
    for (auto &b : dictionary_)
        b = static_cast<std::uint8_t>(rng_.below(16)); // low-entropy
}

Bytes
DataGenerator::page(std::size_t size)
{
    Bytes out;
    out.reserve(size);
    while (out.size() < size) {
        const std::size_t remaining = size - out.size();
        if (rng_.chance(_compressibility)) {
            // Copy a dictionary run (compressible content).
            const std::size_t run =
                std::min<std::size_t>(remaining,
                                      16 + rng_.below(48));
            const std::size_t start =
                rng_.below(dictionary_.size() - run > 0
                               ? dictionary_.size() - run
                               : 1);
            out.insert(out.end(), dictionary_.begin() + start,
                       dictionary_.begin() + start + run);
        } else {
            // Random bytes (incompressible content).
            const std::size_t run = std::min<std::size_t>(remaining, 32);
            for (std::size_t i = 0; i < run; i++)
                out.push_back(static_cast<std::uint8_t>(rng_.below(256)));
        }
    }
    out.resize(size);
    return out;
}

} // namespace rssd::compress
