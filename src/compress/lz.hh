/**
 * @file
 * Byte-oriented LZ77-family compressor used by the RSSD offload
 * engine before log segments are encrypted and shipped over NVMe-oE.
 *
 * Format (self-contained, no external library):
 *   A stream of tokens. Each token starts with a control byte:
 *     0x00..0x7f : literal run of (ctrl + 1) bytes follows (1..128)
 *     0x80..0xff : match; length = (ctrl & 0x7f) + kMinMatch,
 *                  followed by a 2-byte little-endian distance (1..65535)
 * The compressor uses a 4-byte-hash chained window search, greedy
 * parse. Decompression is exact; roundtrip is tested for all inputs.
 */

#ifndef RSSD_COMPRESS_LZ_HH
#define RSSD_COMPRESS_LZ_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rssd::compress {

using Bytes = std::vector<std::uint8_t>;

/** Minimum match length encoded by the format. */
constexpr std::size_t kMinMatch = 4;

/** Maximum match length encoded by a single token. */
constexpr std::size_t kMaxMatch = kMinMatch + 0x7f;

/** Maximum backward distance (2-byte field). */
constexpr std::size_t kMaxDistance = 65535;

/** Compress @p input; always succeeds (worst case mild expansion). */
Bytes lzCompress(const Bytes &input);

/**
 * Decompress a buffer produced by lzCompress.
 * @param expected_size  size of the original input, stored by the
 *                       caller's framing (segments record it).
 * @return the decompressed bytes.
 * Calls rssd::panic on malformed input.
 */
Bytes lzDecompress(const Bytes &input, std::size_t expected_size);

/** Compression ratio helper: original / compressed (>= 1 is good). */
double compressionRatio(std::size_t original, std::size_t compressed);

} // namespace rssd::compress

#endif // RSSD_COMPRESS_LZ_HH
