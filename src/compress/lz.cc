#include "compress/lz.hh"

#include <array>
#include <bit>
#include <cstring>

#include "sim/logging.hh"

namespace rssd::compress {

namespace {

constexpr int kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::uint32_t kNoPos = 0xffffffffu;

std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

/**
 * Length of the common prefix of [a, a+limit) and [b, b+limit),
 * compared 8 bytes at a time: one 64-bit XOR finds the first
 * differing byte via countr_zero. Identical to the byte-at-a-time
 * scan for every input (little-endian hosts; byte fallback
 * otherwise).
 */
std::size_t
commonPrefix(const std::uint8_t *a, const std::uint8_t *b,
             std::size_t limit)
{
    std::size_t n = 0;
    if constexpr (std::endian::native == std::endian::little) {
        while (n + 8 <= limit) {
            std::uint64_t wa, wb;
            std::memcpy(&wa, a + n, 8);
            std::memcpy(&wb, b + n, 8);
            const std::uint64_t x = wa ^ wb;
            if (x != 0)
                return n + (std::countr_zero(x) >> 3);
            n += 8;
        }
    }
    while (n < limit && a[n] == b[n])
        n++;
    return n;
}

/** Emit a literal run [start, end) as one or more literal tokens. */
void
flushLiterals(const Bytes &input, std::size_t start, std::size_t end,
              Bytes &out)
{
    while (start < end) {
        const std::size_t run = std::min<std::size_t>(128, end - start);
        out.push_back(static_cast<std::uint8_t>(run - 1));
        out.insert(out.end(), input.begin() + start,
                   input.begin() + start + run);
        start += run;
    }
}

} // namespace

Bytes
lzCompress(const Bytes &input)
{
    Bytes out;
    out.reserve(input.size() / 2 + 16);

    const std::size_t n = input.size();
    if (n < kMinMatch) {
        flushLiterals(input, 0, n, out);
        return out;
    }

    // head[h] = most recent position with hash h.
    std::vector<std::uint32_t> head(kHashSize, kNoPos);

    std::size_t pos = 0;
    std::size_t literal_start = 0;

    while (pos + kMinMatch <= n) {
        const std::uint32_t h = hash4(&input[pos]);
        const std::uint32_t cand = head[h];
        head[h] = static_cast<std::uint32_t>(pos);

        std::size_t match_len = 0;
        if (cand != kNoPos && pos - cand <= kMaxDistance &&
            std::memcmp(&input[cand], &input[pos], kMinMatch) == 0) {
            // Extend the match as far as the format allows.
            const std::size_t limit = std::min(kMaxMatch, n - pos);
            // data() arithmetic, not operator[]: pos + kMinMatch may
            // be exactly input.size() (an empty extension window).
            match_len = kMinMatch +
                commonPrefix(input.data() + cand + kMinMatch,
                             input.data() + pos + kMinMatch,
                             limit - kMinMatch);
        }

        if (match_len >= kMinMatch) {
            flushLiterals(input, literal_start, pos, out);
            const std::size_t dist = pos - cand;
            out.push_back(static_cast<std::uint8_t>(
                0x80 | (match_len - kMinMatch)));
            out.push_back(static_cast<std::uint8_t>(dist & 0xff));
            out.push_back(static_cast<std::uint8_t>(dist >> 8));
            // Insert hash entries inside the match so later matches
            // can reference its interior.
            const std::size_t insert_end =
                std::min(pos + match_len, n - kMinMatch + 1);
            for (std::size_t i = pos + 1; i < insert_end; i++)
                head[hash4(&input[i])] = static_cast<std::uint32_t>(i);
            pos += match_len;
            literal_start = pos;
        } else {
            pos++;
        }
    }

    flushLiterals(input, literal_start, n, out);
    return out;
}

Bytes
lzDecompress(const Bytes &input, std::size_t expected_size)
{
    // The caller's framing records the original size, so the output
    // buffer is allocated (and value-initialized) exactly once and
    // every token lands through a raw cursor — no per-token growth
    // checks or reallocation.
    Bytes out(expected_size);
    std::uint8_t *const ob = out.data();
    std::size_t wpos = 0;

    std::size_t pos = 0;
    const std::size_t n = input.size();
    while (pos < n) {
        const std::uint8_t ctrl = input[pos++];
        if (ctrl < 0x80) {
            const std::size_t run = static_cast<std::size_t>(ctrl) + 1;
            panicIf(pos + run > n, "lz: truncated literal run");
            panicIf(run > expected_size - wpos,
                    "lz: decompressed size mismatch");
            std::memcpy(ob + wpos, input.data() + pos, run);
            wpos += run;
            pos += run;
        } else {
            panicIf(pos + 2 > n, "lz: truncated match token");
            const std::size_t len = (ctrl & 0x7f) + kMinMatch;
            const std::size_t dist = static_cast<std::size_t>(input[pos]) |
                (static_cast<std::size_t>(input[pos + 1]) << 8);
            pos += 2;
            panicIf(dist == 0 || dist > wpos,
                    "lz: invalid match distance");
            panicIf(len > expected_size - wpos,
                    "lz: decompressed size mismatch");
            const std::uint8_t *src = ob + (wpos - dist);
            std::uint8_t *dst = ob + wpos;
            if (dist >= 8) {
                // Non-overlapping at 8-byte granularity: each chunk's
                // source lies wholly before the write cursor, so
                // chunked memcpy is exact.
                std::size_t i = 0;
                for (; i + 8 <= len; i += 8)
                    std::memcpy(dst + i, src + i, 8);
                if (i < len)
                    std::memcpy(dst + i, src + i, len - i);
            } else {
                // Self-overlapping match (RLE-style): must copy
                // byte-by-byte so earlier output feeds later bytes.
                for (std::size_t i = 0; i < len; i++)
                    dst[i] = src[i];
            }
            wpos += len;
        }
    }

    panicIf(wpos != expected_size, "lz: decompressed size mismatch");
    return out;
}

double
compressionRatio(std::size_t original, std::size_t compressed)
{
    if (compressed == 0)
        return 1.0;
    return static_cast<double>(original) /
           static_cast<double>(compressed);
}

} // namespace rssd::compress
