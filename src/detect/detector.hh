/**
 * @file
 * Detector interface and the concrete ransomware detectors.
 *
 * Online detectors (as deployed inside baseline SSD defenses) use
 * bounded sliding windows — bounded because SSD controller DRAM is
 * scarce. That bound is exactly what the paper's *timing attack*
 * exploits: encrypt slowly enough and each window looks benign.
 * Offline analysis over the full log (CumulativeEntropyAuditor) has
 * no window and catches it.
 */

#ifndef RSSD_DETECT_DETECTOR_HH
#define RSSD_DETECT_DETECTOR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/event.hh"

namespace rssd::detect {

/** A raised alarm. */
struct Alarm
{
    std::string detector;
    std::uint64_t firstSuspectSeq = 0; ///< earliest implicated event
    Tick raisedAt = 0;
    std::string reason;
};

/** Base class for all detectors. */
class Detector
{
  public:
    virtual ~Detector() = default;

    virtual const char *name() const = 0;

    /** Feed one event. */
    virtual void observe(const IoEvent &event) = 0;

    /** Reset all state (between experiments). */
    virtual void reset() = 0;

    bool alarmed() const { return !alarms_.empty(); }
    const std::vector<Alarm> &alarms() const { return alarms_; }

  protected:
    void
    raise(std::uint64_t first_suspect, Tick at, std::string reason)
    {
        Alarm a;
        a.detector = name();
        a.firstSuspectSeq = first_suspect;
        a.raisedAt = at;
        a.reason = std::move(reason);
        alarms_.push_back(std::move(a));
    }

    void clearAlarms() { alarms_.clear(); }

  private:
    std::vector<Alarm> alarms_;
};

/**
 * Flags bursts of high-entropy overwrites of low-entropy data — the
 * canonical encryption-ransomware write signature (CryptoDrop /
 * FlashGuard style). Windowed by event count.
 */
class EntropyOverwriteDetector : public Detector
{
  public:
    struct Config
    {
        float highEntropy = 7.2f;   ///< bits/byte: "looks encrypted"
        float lowEntropy = 6.5f;    ///< bits/byte: "was user data"
        std::size_t windowOps = 512;///< sliding window size (events)
        double alarmRatio = 0.15;   ///< flagged fraction that alarms
        std::size_t minFlagged = 32;///< and at least this many
    };

    EntropyOverwriteDetector() : EntropyOverwriteDetector(Config()) {}
    explicit EntropyOverwriteDetector(const Config &config);

    const char *name() const override
    {
        return "entropy-overwrite";
    }
    void observe(const IoEvent &event) override;
    void reset() override;

    std::uint64_t flaggedTotal() const { return _flaggedTotal; }

  private:
    Config config_;
    std::deque<std::pair<std::uint64_t, bool>> window_; // (seq, flagged)
    std::size_t flaggedInWindow_ = 0;
    std::uint64_t _flaggedTotal = 0;
};

/**
 * Flags the read-then-encrypted-overwrite pattern (UNVEIL /
 * SSDInsider style): a page is read, then shortly after overwritten
 * with high-entropy data. Tracks a bounded set of recently read LPAs.
 */
class ReadOverwriteDetector : public Detector
{
  public:
    struct Config
    {
        float highEntropy = 7.2f;
        Tick readWindow = 10 * units::SEC; ///< read->overwrite gap
        std::size_t maxTracked = 4096;     ///< controller DRAM bound
        std::size_t alarmCount = 64;       ///< hits within hitWindow
        Tick hitWindow = 30 * units::SEC;
    };

    ReadOverwriteDetector() : ReadOverwriteDetector(Config()) {}
    explicit ReadOverwriteDetector(const Config &config);

    const char *name() const override { return "read-overwrite"; }
    void observe(const IoEvent &event) override;
    void reset() override;

  private:
    void evictOld(Tick now);

    Config config_;
    std::unordered_map<Lpa, Tick> recentReads_;
    std::deque<Lpa> readOrder_;
    std::deque<std::pair<Tick, std::uint64_t>> hits_; // (time, seq)
};

/**
 * Flags abnormal sustained write rates (data-dump / GC-attack
 * signature). Time-windowed.
 */
class WriteBurstDetector : public Detector
{
  public:
    struct Config
    {
        Tick window = 1 * units::SEC;
        std::size_t maxWritesPerWindow = 200000;
    };

    WriteBurstDetector() : WriteBurstDetector(Config()) {}
    explicit WriteBurstDetector(const Config &config);

    const char *name() const override { return "write-burst"; }
    void observe(const IoEvent &event) override;
    void reset() override;

  private:
    Config config_;
    std::deque<std::pair<Tick, std::uint64_t>> writes_;
};

/**
 * Offline, whole-history auditor (runs on the remote analysis host):
 * counts high-entropy-over-low-entropy overwrites per victim LPA with
 * NO window. The timing attack cannot dilute it — total damage is
 * total damage. This detector is what RSSD's offloaded post-attack
 * analysis deploys.
 */
class CumulativeEntropyAuditor : public Detector
{
  public:
    struct Config
    {
        float highEntropy = 7.2f;
        float lowEntropy = 6.5f;
        std::size_t alarmCount = 64; ///< total suspicious overwrites
    };

    CumulativeEntropyAuditor() : CumulativeEntropyAuditor(Config()) {}
    explicit CumulativeEntropyAuditor(const Config &config);

    const char *name() const override
    {
        return "cumulative-entropy-audit";
    }
    void observe(const IoEvent &event) override;
    void reset() override;

    std::uint64_t suspiciousCount() const { return count_; }

    /** Ordered list of implicated event seqs (attack reconstruction). */
    const std::vector<std::uint64_t> &implicatedSeqs() const
    {
        return implicated_;
    }

  private:
    Config config_;
    std::uint64_t count_ = 0;
    std::uint64_t firstSeq_ = 0;
    std::vector<std::uint64_t> implicated_;
};

/**
 * Flags trim floods that follow reads (trimming-attack signature):
 * ransomware reads a page, writes the ciphertext elsewhere, then
 * trims the original.
 */
class TrimAbuseDetector : public Detector
{
  public:
    struct Config
    {
        Tick window = 10 * units::SEC;
        std::size_t alarmCount = 128; ///< trims of recently read LPAs
        std::size_t maxTracked = 4096;
    };

    TrimAbuseDetector() : TrimAbuseDetector(Config()) {}
    explicit TrimAbuseDetector(const Config &config);

    const char *name() const override { return "trim-abuse"; }
    void observe(const IoEvent &event) override;
    void reset() override;

  private:
    Config config_;
    std::unordered_map<Lpa, Tick> recentReads_;
    std::deque<Lpa> readOrder_;
    std::deque<std::pair<Tick, std::uint64_t>> hits_;
};

} // namespace rssd::detect

#endif // RSSD_DETECT_DETECTOR_HH
