#include "detect/detector.hh"

#include <cstdio>

namespace rssd::detect {

// ---------------------------------------------------------------------
// EntropyOverwriteDetector
// ---------------------------------------------------------------------

EntropyOverwriteDetector::EntropyOverwriteDetector(const Config &config)
    : config_(config)
{
}

void
EntropyOverwriteDetector::observe(const IoEvent &event)
{
    if (event.kind != EventKind::Write)
        return;

    const bool flagged =
        event.overwrite && event.entropy >= config_.highEntropy &&
        event.prevEntropy >= 0.0f &&
        event.prevEntropy <= config_.lowEntropy;

    window_.emplace_back(event.seq, flagged);
    if (flagged) {
        flaggedInWindow_++;
        _flaggedTotal++;
    }
    while (window_.size() > config_.windowOps) {
        if (window_.front().second)
            flaggedInWindow_--;
        window_.pop_front();
    }

    const double ratio = window_.empty()
        ? 0.0
        : static_cast<double>(flaggedInWindow_) /
              static_cast<double>(window_.size());
    if (!alarmed() && flaggedInWindow_ >= config_.minFlagged &&
        ratio >= config_.alarmRatio) {
        // Implicate the earliest flagged event still in the window.
        std::uint64_t first = event.seq;
        for (const auto &[seq, f] : window_) {
            if (f) {
                first = seq;
                break;
            }
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%zu/%zu high-entropy overwrites in window",
                      flaggedInWindow_, window_.size());
        raise(first, event.timestamp, buf);
    }
}

void
EntropyOverwriteDetector::reset()
{
    window_.clear();
    flaggedInWindow_ = 0;
    _flaggedTotal = 0;
    clearAlarms();
}

// ---------------------------------------------------------------------
// ReadOverwriteDetector
// ---------------------------------------------------------------------

ReadOverwriteDetector::ReadOverwriteDetector(const Config &config)
    : config_(config)
{
}

void
ReadOverwriteDetector::evictOld(Tick now)
{
    while (!readOrder_.empty() &&
           recentReads_.size() > config_.maxTracked) {
        recentReads_.erase(readOrder_.front());
        readOrder_.pop_front();
    }
    while (!hits_.empty() &&
           now - hits_.front().first > config_.hitWindow) {
        hits_.pop_front();
    }
    (void)now;
}

void
ReadOverwriteDetector::observe(const IoEvent &event)
{
    if (event.kind == EventKind::Read) {
        if (recentReads_.emplace(event.lpa, event.timestamp).second)
            readOrder_.push_back(event.lpa);
        else
            recentReads_[event.lpa] = event.timestamp;
        evictOld(event.timestamp);
        return;
    }

    if (event.kind != EventKind::Write)
        return;

    const auto it = recentReads_.find(event.lpa);
    if (it != recentReads_.end() &&
        event.timestamp - it->second <= config_.readWindow &&
        event.entropy >= config_.highEntropy) {
        hits_.emplace_back(event.timestamp, event.seq);
    }
    evictOld(event.timestamp);

    if (!alarmed() && hits_.size() >= config_.alarmCount) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%zu read-then-encrypt overwrites", hits_.size());
        raise(hits_.front().second, event.timestamp, buf);
    }
}

void
ReadOverwriteDetector::reset()
{
    recentReads_.clear();
    readOrder_.clear();
    hits_.clear();
    clearAlarms();
}

// ---------------------------------------------------------------------
// WriteBurstDetector
// ---------------------------------------------------------------------

WriteBurstDetector::WriteBurstDetector(const Config &config)
    : config_(config)
{
}

void
WriteBurstDetector::observe(const IoEvent &event)
{
    if (event.kind != EventKind::Write)
        return;
    writes_.emplace_back(event.timestamp, event.seq);
    while (!writes_.empty() &&
           event.timestamp - writes_.front().first > config_.window) {
        writes_.pop_front();
    }
    if (!alarmed() && writes_.size() > config_.maxWritesPerWindow) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%zu writes within window",
                      writes_.size());
        raise(writes_.front().second, event.timestamp, buf);
    }
}

void
WriteBurstDetector::reset()
{
    writes_.clear();
    clearAlarms();
}

// ---------------------------------------------------------------------
// CumulativeEntropyAuditor
// ---------------------------------------------------------------------

CumulativeEntropyAuditor::CumulativeEntropyAuditor(const Config &config)
    : config_(config)
{
}

void
CumulativeEntropyAuditor::observe(const IoEvent &event)
{
    if (event.kind != EventKind::Write || !event.overwrite)
        return;
    if (event.entropy < config_.highEntropy ||
        event.prevEntropy < 0.0f ||
        event.prevEntropy > config_.lowEntropy) {
        return;
    }
    if (count_ == 0)
        firstSeq_ = event.seq;
    count_++;
    implicated_.push_back(event.seq);

    if (!alarmed() && count_ >= config_.alarmCount) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%llu suspicious overwrites across full history",
                      static_cast<unsigned long long>(count_));
        raise(firstSeq_, event.timestamp, buf);
    }
}

void
CumulativeEntropyAuditor::reset()
{
    count_ = 0;
    firstSeq_ = 0;
    implicated_.clear();
    clearAlarms();
}

// ---------------------------------------------------------------------
// TrimAbuseDetector
// ---------------------------------------------------------------------

TrimAbuseDetector::TrimAbuseDetector(const Config &config)
    : config_(config)
{
}

void
TrimAbuseDetector::observe(const IoEvent &event)
{
    if (event.kind == EventKind::Read) {
        if (recentReads_.emplace(event.lpa, event.timestamp).second)
            readOrder_.push_back(event.lpa);
        else
            recentReads_[event.lpa] = event.timestamp;
        while (recentReads_.size() > config_.maxTracked &&
               !readOrder_.empty()) {
            recentReads_.erase(readOrder_.front());
            readOrder_.pop_front();
        }
        return;
    }

    if (event.kind != EventKind::Trim)
        return;

    const auto it = recentReads_.find(event.lpa);
    if (it != recentReads_.end() &&
        event.timestamp - it->second <= config_.window) {
        hits_.emplace_back(event.timestamp, event.seq);
    }
    while (!hits_.empty() &&
           event.timestamp - hits_.front().first > config_.window) {
        hits_.pop_front();
    }
    if (!alarmed() && hits_.size() >= config_.alarmCount) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%zu trims of recently-read pages", hits_.size());
        raise(hits_.front().second, event.timestamp, buf);
    }
}

void
TrimAbuseDetector::reset()
{
    recentReads_.clear();
    readOrder_.clear();
    hits_.clear();
    clearAlarms();
}

} // namespace rssd::detect
