/**
 * @file
 * The I/O event stream detectors consume.
 *
 * Events are produced two ways:
 *  - live, by a device as it executes host commands (baseline
 *    defenses run their detector on this stream inside the SSD);
 *  - offline, by the post-attack analyzer replaying the operation
 *    log fetched from the remote store (RSSD's offloaded detection).
 * Keeping one event type for both paths is what lets RSSD "deploy
 * various detection algorithms" remotely without firmware changes.
 */

#ifndef RSSD_DETECT_EVENT_HH
#define RSSD_DETECT_EVENT_HH

#include <cstdint>

#include "flash/geometry.hh"
#include "sim/units.hh"

namespace rssd::detect {

using flash::Lpa;

/** Host operation kinds visible to detectors. */
enum class EventKind : std::uint8_t {
    Read,
    Write,
    Trim,
};

/** Unknown entropy marker (reads, address-only runs). */
constexpr float kNoEntropy = -1.0f;

/** One host I/O as seen by a detector. */
struct IoEvent
{
    EventKind kind = EventKind::Read;
    Lpa lpa = 0;
    Tick timestamp = 0;
    /** Entropy (bits/byte) of the data written; kNoEntropy otherwise. */
    float entropy = kNoEntropy;
    /** Entropy of the data this write replaced; kNoEntropy if none. */
    float prevEntropy = kNoEntropy;
    /** True if this write replaced an existing mapping. */
    bool overwrite = false;
    /** Monotonic event index (logSeq for logged ops). */
    std::uint64_t seq = 0;
};

} // namespace rssd::detect

#endif // RSSD_DETECT_EVENT_HH
