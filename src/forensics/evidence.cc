#include "forensics/evidence.hh"

#include <deque>

#include "sim/logging.hh"

namespace rssd::forensics {

EvidenceScanner::EvidenceScanner(const remote::BackupCluster &cluster)
    : cluster_(cluster)
{
}

ScanPassCost
EvidenceScanner::scan()
{
    ScanPassCost pass;

    for (remote::ShardId s = 0; s < cluster_.shardCount(); s++) {
        const remote::BackupStore &store = cluster_.shardStore(s);
        for (const remote::StreamId stream : store.streamIds()) {
            auto [it, created] =
                streams_.try_emplace(stream, StreamState{});
            StreamState &st = it->second;
            if (created) {
                st.evidence.device = stream;
                st.evidence.shard = s;
            }
            pass.streamsScanned++;

            const std::deque<std::uint32_t> &stored =
                store.streamSegments(stream);
            const std::uint64_t pruned = store.prunedSegments(stream);
            const log::PruneRecord *rec = store.pruneRecordOf(stream);
            st.evidence.segmentsPruned = pruned;
            if (rec != nullptr)
                st.evidence.entriesPruned = rec->entriesPruned;
            pass.segmentsCached += st.evidence.segmentsVerified;
            if (!st.evidence.intact)
                continue; // untrusted suffix: never extend past a fault

            const log::SegmentCodec &codec = store.streamCodec(stream);

            // Retention GC overtook the cursor (or the stream was
            // already pruned at first contact): resume from the
            // signed prune record. Segments expired before we ever
            // verified them are evidence lost to the analysis —
            // counted, never silently skipped.
            if (st.absPos < pruned) {
                if (rec == nullptr ||
                    !st.verifier.resumeFrom(*rec, codec)) {
                    st.evidence.intact = false;
                    st.evidence.fault =
                        log::ChainFault::BadAuthentication;
                    continue;
                }
                st.evidence.segmentsPrunedUnseen += pruned - st.absPos;
                st.evidence.reanchors++;
                st.absPos = pruned;
            }

            const std::uint64_t before = st.verifier.bytesVerified();
            const std::uint64_t entries_before =
                st.verifier.entriesVerified();
            while (st.absPos - pruned < stored.size()) {
                const std::uint32_t idx = stored[st.absPos - pruned];
                log::Segment opened;
                if (!st.verifier.verifyNext(store.sealedSegment(idx),
                                            codec, &opened)) {
                    st.evidence.intact = false;
                    st.evidence.fault = st.verifier.fault();
                    break;
                }
                st.absPos++;
                st.evidence.segmentsVerified++;
                pass.segmentsVerified++;
                for (log::LogEntry &e : opened.entries)
                    st.evidence.entries.push_back(std::move(e));
            }
            st.evidence.bytesVerified = st.verifier.bytesVerified();
            pass.bytesVerified += st.verifier.bytesVerified() - before;
            pass.entriesReplayed +=
                st.verifier.entriesVerified() - entries_before;
        }
    }

    passes_++;
    lastPass_ = pass;
    total_.add(pass);
    return pass;
}

std::vector<DeviceId>
EvidenceScanner::devices() const
{
    std::vector<DeviceId> out;
    out.reserve(streams_.size());
    for (const auto &[id, st] : streams_) {
        (void)st;
        out.push_back(id);
    }
    return out;
}

const StreamEvidence &
EvidenceScanner::evidence(DeviceId device) const
{
    const auto it = streams_.find(device);
    panicIf(it == streams_.end(),
            "EvidenceScanner: unknown device (scan() first?)");
    return it->second.evidence;
}

} // namespace rssd::forensics
