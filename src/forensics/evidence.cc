#include "forensics/evidence.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"

namespace rssd::forensics {

EvidenceScanner::EvidenceScanner(const remote::BackupCluster &cluster)
    : cluster_(cluster)
{
}

void
EvidenceScanner::failOver(StreamState &st, remote::ShardId replica)
{
    // The cursor, verifier and entry cache are per-copy state:
    // verification restarts from the new copy's genesis (or its
    // prune horizon), and the re-verified suffix is honestly
    // counted in the next pass's cost.
    if (st.source != remote::kNoShard)
        st.evidence.failovers++;
    st.source = replica;
    st.verifier = log::SegmentChainVerifier();
    st.absPos = 0;
    st.evidence.segmentsVerified = 0;
    st.evidence.bytesVerified = 0;
    st.evidence.entries.clear();
    st.evidence.intact = true;
    st.evidence.fault = log::ChainFault::None;
    st.evidence.segmentsPrunedUnseen = 0;
    st.evidence.reanchors = 0;
}

ScanPassCost
EvidenceScanner::scan()
{
    ScanPassCost pass;

    for (const DeviceId device : cluster_.attachedDevices()) {
        auto [it, created] = streams_.try_emplace(device, StreamState{});
        StreamState &st = it->second;
        if (created)
            st.evidence.device = device;
        pass.streamsScanned++;

        const std::vector<remote::ShardId> live =
            cluster_.liveReplicasOf(device);
        st.evidence.replicas = static_cast<std::uint32_t>(
            cluster_.replicaSetOf(device).size());
        st.evidence.replicasAlive =
            static_cast<std::uint32_t>(live.size());
        st.evidence.tailVotes = 0;
        if (live.empty()) {
            // The whole replica set is dead. The verified prefix
            // cache is all the evidence that survives.
            pass.segmentsCached += st.evidence.segmentsVerified;
            continue;
        }

        // Source selection (read-side voting): prefer any live
        // chain-verifying copy. Re-select on first contact, when
        // the current source died, when the scrubber quarantined it
        // (rotten payload bytes the tail vote cannot see), or when
        // it faulted — a replica fault is exactly what the other
        // copies exist to outvote.
        const bool source_dead =
            st.source != remote::kNoShard &&
            std::find(live.begin(), live.end(), st.source) ==
                live.end();
        const bool source_quarantined =
            st.source != remote::kNoShard && !source_dead &&
            cluster_.copyQuarantined(st.source, device);
        if (st.source == remote::kNoShard || source_dead ||
            source_quarantined || !st.evidence.intact) {
            const remote::ShardId pick =
                cluster_.chainVerifyingReplicaOf(device);
            if (pick != st.source)
                failOver(st, pick);
        }
        st.evidence.shard = st.source;
        const remote::BackupStore &store =
            cluster_.shardStore(st.source);

        const std::deque<std::uint32_t> &stored =
            store.streamSegments(device);
        const std::uint64_t pruned = store.prunedSegments(device);
        const log::PruneRecord *rec = store.pruneRecordOf(device);
        st.evidence.segmentsPruned = pruned;
        st.evidence.entriesPruned =
            rec != nullptr ? rec->entriesPruned : 0;
        pass.segmentsCached += st.evidence.segmentsVerified;

        // Tail voting across the live set: O(1) per replica — the
        // chain-tail digest authenticates the whole history, so
        // (lastId, tail) agreement is majority agreement on every
        // byte of evidence without re-verifying any copy.
        const remote::BackupStore::StreamTail tail =
            store.streamTail(device);
        for (const remote::ShardId r : live) {
            const remote::BackupStore &peer = cluster_.shardStore(r);
            if (peer.hasStream(device) &&
                peer.streamTail(device) == tail) {
                st.evidence.tailVotes++;
            }
        }

        if (!st.evidence.intact)
            continue; // untrusted suffix: never extend past a fault

        const log::SegmentCodec &codec = store.streamCodec(device);

        // Retention GC overtook the cursor (or the stream was
        // already pruned at first contact): resume from the
        // signed prune record. Segments expired before we ever
        // verified them are evidence lost to the analysis —
        // counted, never silently skipped.
        if (st.absPos < pruned) {
            if (rec == nullptr ||
                !st.verifier.resumeFrom(*rec, codec)) {
                st.evidence.intact = false;
                st.evidence.fault =
                    log::ChainFault::BadAuthentication;
                continue;
            }
            st.evidence.segmentsPrunedUnseen += pruned - st.absPos;
            st.evidence.reanchors++;
            st.absPos = pruned;
        }

        const std::uint64_t before = st.verifier.bytesVerified();
        const std::uint64_t entries_before =
            st.verifier.entriesVerified();
        while (st.absPos - pruned < stored.size()) {
            const std::uint32_t idx = stored[st.absPos - pruned];
            log::Segment opened;
            if (!st.verifier.verifyNext(store.sealedSegment(idx),
                                        codec, &opened)) {
                st.evidence.intact = false;
                st.evidence.fault = st.verifier.fault();
                break;
            }
            st.absPos++;
            st.evidence.segmentsVerified++;
            pass.segmentsVerified++;
            for (log::LogEntry &e : opened.entries)
                st.evidence.entries.push_back(std::move(e));
        }
        st.evidence.bytesVerified = st.verifier.bytesVerified();
        pass.bytesVerified += st.verifier.bytesVerified() - before;
        pass.entriesReplayed +=
            st.verifier.entriesVerified() - entries_before;
    }

    passes_++;
    lastPass_ = pass;
    total_.add(pass);
    return pass;
}

std::vector<DeviceId>
EvidenceScanner::devices() const
{
    std::vector<DeviceId> out;
    out.reserve(streams_.size());
    for (const auto &[id, st] : streams_) {
        (void)st;
        out.push_back(id);
    }
    return out;
}

const StreamEvidence &
EvidenceScanner::evidence(DeviceId device) const
{
    const auto it = streams_.find(device);
    panicIf(it == streams_.end(),
            "EvidenceScanner: unknown device (scan() first?)");
    return it->second.evidence;
}

void
EvidenceScanner::registerMetrics(obs::MetricsRegistry &registry,
                                 const std::string &prefix) const
{
    registry.counter(prefix + "passes",
                     [this] { return passes_; });
    registry.counter(prefix + "streamsScanned",
                     [this] { return total_.streamsScanned; });
    registry.counter(prefix + "segmentsVerified",
                     [this] { return total_.segmentsVerified; });
    registry.counter(prefix + "segmentsCached",
                     [this] { return total_.segmentsCached; });
    registry.counter(prefix + "bytesVerified",
                     [this] { return total_.bytesVerified; });
    registry.counter(prefix + "entriesReplayed",
                     [this] { return total_.entriesReplayed; });
}

} // namespace rssd::forensics
