/**
 * @file
 * Fleet recovery planner: schedule the restores of every compromised
 * device under a modeled per-shard bandwidth budget.
 *
 * A restore job fetches the device's remote history back out of its
 * pinned shard, so concurrent restores of same-shard devices contend
 * for that shard's read bandwidth while different shards restore in
 * parallel. Two policies, both reported so operators can compare:
 *
 *  - greedy-most-damaged-first: per shard, fully serialize jobs in
 *    decreasing damage order — the worst-hit device is back first,
 *    and total bandwidth is never split (best worst-case single
 *    restore, unfair tail).
 *  - fair-share: per shard, all pending jobs progress at an equal
 *    share of the bandwidth (processor sharing) — small restores
 *    finish early, the tail is the same makespan, completion times
 *    are egalitarian.
 *  - replica-aware: with R-way replication every stream has several
 *    healthy copies, so a job is not pinned to its primary — the
 *    planner assigns each restore (biggest first) to its least-
 *    loaded candidate source replica, spreading same-primary
 *    victims across shards before scheduling each shard greedily.
 *    This is ROADMAP item 1's "read different victims from
 *    different copies" follow-up: more aggregate read bandwidth,
 *    strictly no-worse makespan.
 *
 * Deterministic: integer tick arithmetic only, ties by device id.
 */

#ifndef RSSD_FORENSICS_PLANNER_HH
#define RSSD_FORENSICS_PLANNER_HH

#include <cstdint>
#include <vector>

#include "forensics/evidence.hh"

namespace rssd::forensics {

struct PlannerConfig
{
    /** Modeled restore read bandwidth per shard. */
    std::uint64_t shardBandwidthBytesPerSec = 400ull * units::MiB;
};

enum class PlanPolicy : std::uint8_t {
    GreedyMostDamagedFirst,
    FairShare,
    ReplicaAware,
};

const char *planPolicyName(PlanPolicy p);

/** One device restore to schedule. */
struct RestoreJob
{
    DeviceId device = 0;
    remote::ShardId shard = 0;
    std::uint64_t bytes = 0;  ///< evidence bytes to stream back
    std::uint64_t damage = 0; ///< implicated ops (priority metric)
    std::uint64_t recoverySeq = 0;
    /** Healthy (live, chain-verifying, non-quarantined) replicas
     *  the restore could source from; empty means primary only.
     *  Only the replica-aware policy reads this. */
    std::vector<remote::ShardId> sources;
};

/** One scheduled restore in a plan. */
struct ScheduledRestore
{
    DeviceId device = 0;
    remote::ShardId shard = 0;
    std::uint64_t bytes = 0;
    Tick startAt = 0;  ///< 0 under fair-share (all start together)
    Tick finishAt = 0;
};

struct RestorePlan
{
    PlanPolicy policy = PlanPolicy::GreedyMostDamagedFirst;
    std::vector<ScheduledRestore> restores; ///< device-id order
    Tick makespan = 0;
    Tick meanCompletion = 0; ///< integer mean of finishAt
};

/** Schedule @p jobs under @p policy. Pure and deterministic. */
RestorePlan planRestores(const std::vector<RestoreJob> &jobs,
                         PlanPolicy policy,
                         const PlannerConfig &config);

} // namespace rssd::forensics

#endif // RSSD_FORENSICS_PLANNER_HH
