/**
 * @file
 * ForensicsReport: the complete output of a cluster-side forensics
 * pass — evidence verification costs, per-device findings, the
 * cross-device correlation (patient zero, infection order, campaign
 * class), both recovery plans, the executed recovery outcomes (when
 * the devices were reachable), and the ground-truth scorecard (when
 * a campaign's truth is known).
 *
 * Determinism contract: toJson() is a pure function of report
 * contents and must yield byte-identical documents for identical
 * state — the same golden-digest discipline as fleet::FleetReport
 * (tests/forensics/ pins one digest; CI byte-compares two runs).
 */

#ifndef RSSD_FORENSICS_REPORT_HH
#define RSSD_FORENSICS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "forensics/correlate.hh"
#include "forensics/planner.hh"

namespace rssd::forensics {

/**
 * ForensicsReport JSON schema version. Bump ONLY on layout changes;
 * every bump invalidates the golden digest in tests/forensics/ —
 * deliberate and documented, never accidental.
 *
 * History:
 *   1 — PR 4: initial ForensicsReport.
 *   2 — PR 5: retention-GC counters ("segmentsPruned"/"bytesPruned"
 *       under "source"; "segmentsPruned"/"entriesPruned"/
 *       "reanchors" per device finding).
 *   3 — PR 6: replication — "replication"/"liveShards" under
 *       "source"; "replicas"/"replicasAlive"/"tailVotes"/
 *       "failovers" per device finding; "restoredFromShard" per
 *       recovery outcome.
 *   4 — PR 7: anti-entropy — third "replica-aware" recovery plan in
 *       "plans" (restores spread over healthy source replicas).
 */
constexpr std::uint64_t kForensicsReportSchema = 4;

/**
 * What actually generated the evidence (exported by the fleet
 * layer). Only the scorecard reads this — conclusions are always
 * reached from the evidence alone.
 */
struct GroundTruth
{
    bool known = false;
    std::string scenario;
    bool anyInfected = false;
    DeviceId patientZero = 0; ///< valid iff anyInfected
    /** Infected devices by actual attack begin time (ties by id). */
    std::vector<DeviceId> infectionOrder;
};

/** Outcome of one executed device restore. */
struct RecoveryOutcome
{
    DeviceId device = 0;
    /** The surviving replica the restore read its history from
     *  (the read-side vote winner). */
    remote::ShardId restoredFromShard = remote::kNoShard;
    std::uint64_t recoverySeq = 0;
    std::uint64_t pagesRestored = 0;
    std::uint64_t restoredFromRemote = 0;
    std::uint64_t unresolved = 0;
    /** The recommended recovery point fell before the stream's
     *  retention-GC horizon; the restore was refused (clear error,
     *  no partial rollback). */
    bool beforePrunedHorizon = false;
    double victimIntactBefore = 1.0;
    double victimIntactAfter = 1.0;
};

struct ForensicsReport
{
    // -- Evidence source --------------------------------------------------
    std::uint64_t devices = 0;
    std::uint64_t shards = 0;
    std::uint64_t replication = 1;
    std::uint64_t liveShards = 0;
    std::uint64_t totalSegments = 0;
    std::uint64_t totalBytesStored = 0;
    /** Retention-GC lifecycle across all shards (cumulative). */
    std::uint64_t totalSegmentsPruned = 0;
    std::uint64_t totalBytesPruned = 0;

    // -- Scan cost model --------------------------------------------------
    std::uint64_t scanPasses = 0;
    ScanPassCost lastPass;
    ScanPassCost totalCost;

    // -- Findings and correlation ----------------------------------------
    Correlation correlation;

    // -- Recovery planning ------------------------------------------------
    std::vector<RestorePlan> plans; ///< one per policy, fixed order

    // -- Executed recovery (empty when only planning) ---------------------
    bool recoveryExecuted = false;
    std::vector<RecoveryOutcome> recovery; ///< device-id order

    // -- Scorecard --------------------------------------------------------
    GroundTruth truth;
    bool patientZeroMatch = false;
    bool infectionOrderMatch = false;
    bool campaignClassMatch = false;

    /** Render as a stable-key-order JSON document. */
    std::string toJson() const;
};

} // namespace rssd::forensics

#endif // RSSD_FORENSICS_REPORT_HH
