#include "forensics/forensics.hh"

namespace rssd::forensics {

ForensicsReport
analyzeCluster(EvidenceScanner &scanner, const ForensicsConfig &config,
               const GroundTruth &truth)
{
    ForensicsReport report;

    // 1. Evidence ingestion (incremental past the verified prefix).
    scanner.scan();
    const remote::BackupCluster &cluster = scanner.cluster();
    report.devices = scanner.devices().size();
    report.shards = cluster.shardCount();
    report.replication = cluster.config().replication;
    report.liveShards = cluster.liveShardCount();
    report.totalSegments = cluster.totalSegments();
    report.totalBytesStored = cluster.totalUsedBytes();
    for (remote::ShardId s = 0; s < cluster.shardCount(); s++) {
        if (!cluster.shardAlive(s))
            continue; // a dead shard's copies no longer exist
        const remote::BackupStoreStats &st =
            cluster.shardStore(s).stats();
        report.totalSegmentsPruned += st.segmentsPruned;
        report.totalBytesPruned += st.bytesPruned;
    }
    report.scanPasses = scanner.passes();
    report.lastPass = scanner.lastPass();
    report.totalCost = scanner.total();

    // 2. Cross-device correlation.
    report.correlation = correlate(scanner, config.correlation);

    // 3. Recovery planning for every compromised (and still
    //    trustworthy) device, under both policies.
    std::vector<RestoreJob> jobs;
    for (const DeviceFinding &f : report.correlation.findings) {
        if (!f.finding.detected || !f.chainIntact)
            continue;
        RestoreJob job;
        job.device = f.device;
        job.shard = f.shard;
        job.bytes = scanner.evidence(f.device).bytesVerified;
        job.damage = f.finding.implicatedOps;
        job.recoverySeq = f.finding.recommendedRecoverySeq;
        jobs.push_back(job);
    }
    report.plans.push_back(planRestores(
        jobs, PlanPolicy::GreedyMostDamagedFirst, config.planner));
    report.plans.push_back(
        planRestores(jobs, PlanPolicy::FairShare, config.planner));

    // 4. Scorecard (only when the campaign's truth is known).
    report.truth = truth;
    if (truth.known) {
        const Correlation &c = report.correlation;
        report.patientZeroMatch = truth.anyInfected == c.anyDetected &&
                                  (!truth.anyInfected ||
                                   truth.patientZero == c.patientZero);
        report.infectionOrderMatch =
            truth.infectionOrder == c.infectionOrder;
        report.campaignClassMatch =
            truth.scenario == campaignClassName(c.campaignClass);
    }
    return report;
}

} // namespace rssd::forensics
