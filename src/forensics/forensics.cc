#include "forensics/forensics.hh"

namespace rssd::forensics {

ForensicsReport
analyzeCluster(EvidenceScanner &scanner, const ForensicsConfig &config,
               const GroundTruth &truth)
{
    ForensicsReport report;

    // 1. Evidence ingestion (incremental past the verified prefix).
    scanner.scan();
    const remote::BackupCluster &cluster = scanner.cluster();
    report.devices = scanner.devices().size();
    report.shards = cluster.shardCount();
    report.replication = cluster.config().replication;
    report.liveShards = cluster.liveShardCount();
    report.totalSegments = cluster.totalSegments();
    report.totalBytesStored = cluster.totalUsedBytes();
    for (remote::ShardId s = 0; s < cluster.shardCount(); s++) {
        if (!cluster.shardAlive(s))
            continue; // a dead shard's copies no longer exist
        const remote::BackupStoreStats &st =
            cluster.shardStore(s).stats();
        report.totalSegmentsPruned += st.segmentsPruned;
        report.totalBytesPruned += st.bytesPruned;
    }
    report.scanPasses = scanner.passes();
    report.lastPass = scanner.lastPass();
    report.totalCost = scanner.total();

    // 2. Cross-device correlation.
    report.correlation = correlate(scanner, config.correlation);

    // 3. Recovery planning for every compromised (and still
    //    trustworthy) device, under all three policies.
    std::vector<RestoreJob> jobs;
    for (const DeviceFinding &f : report.correlation.findings) {
        if (!f.finding.detected || !f.chainIntact)
            continue;
        RestoreJob job;
        job.device = f.device;
        job.shard = f.shard;
        job.bytes = scanner.evidence(f.device).bytesVerified;
        job.damage = f.finding.implicatedOps;
        job.recoverySeq = f.finding.recommendedRecoverySeq;
        // Candidate source replicas for the replica-aware planner:
        // live, non-quarantined copies whose chain tail agrees with
        // the scanner's verified source — any of them can serve the
        // restore byte-for-byte.
        if (cluster.shardAlive(f.shard) &&
            cluster.shardStore(f.shard).hasStream(f.device)) {
            const remote::BackupStore::StreamTail want =
                cluster.shardStore(f.shard).streamTail(f.device);
            for (const remote::ShardId s :
                 cluster.replicaSetOf(f.device)) {
                if (!cluster.shardAlive(s) ||
                    !cluster.shardStore(s).hasStream(f.device) ||
                    cluster.copyQuarantined(s, f.device)) {
                    continue;
                }
                if (cluster.shardStore(s).streamTail(f.device) ==
                    want) {
                    job.sources.push_back(s);
                }
            }
        }
        jobs.push_back(job);
    }
    report.plans.push_back(planRestores(
        jobs, PlanPolicy::GreedyMostDamagedFirst, config.planner));
    report.plans.push_back(
        planRestores(jobs, PlanPolicy::FairShare, config.planner));
    report.plans.push_back(
        planRestores(jobs, PlanPolicy::ReplicaAware, config.planner));

    // 4. Scorecard (only when the campaign's truth is known).
    report.truth = truth;
    if (truth.known) {
        const Correlation &c = report.correlation;
        report.patientZeroMatch = truth.anyInfected == c.anyDetected &&
                                  (!truth.anyInfected ||
                                   truth.patientZero == c.patientZero);
        report.infectionOrderMatch =
            truth.infectionOrder == c.infectionOrder;
        report.campaignClassMatch =
            truth.scenario == campaignClassName(c.campaignClass);
    }
    return report;
}

} // namespace rssd::forensics
