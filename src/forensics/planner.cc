#include "forensics/planner.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace rssd::forensics {

const char *
planPolicyName(PlanPolicy p)
{
    switch (p) {
      case PlanPolicy::GreedyMostDamagedFirst:
        return "greedy-most-damaged-first";
      case PlanPolicy::FairShare:
        return "fair-share";
      case PlanPolicy::ReplicaAware:
        return "replica-aware";
    }
    return "?";
}

namespace {

Tick
transferTime(unsigned __int128 bytes, std::uint64_t bw)
{
    // 128-bit intermediate: bytes * SEC wraps a uint64 past
    // ~17 GiB, and multi-terabyte restore jobs are legitimate.
    // Round up: a restore is complete only when the last byte is in.
    return static_cast<Tick>((bytes * units::SEC + bw - 1) / bw);
}

void
scheduleGreedy(std::vector<const RestoreJob *> &shard_jobs,
               std::uint64_t bw,
               std::map<DeviceId, ScheduledRestore> &out)
{
    std::sort(shard_jobs.begin(), shard_jobs.end(),
              [](const RestoreJob *a, const RestoreJob *b) {
                  if (a->damage != b->damage)
                      return a->damage > b->damage;
                  return a->device < b->device;
              });
    Tick t = 0;
    for (const RestoreJob *j : shard_jobs) {
        ScheduledRestore r;
        r.device = j->device;
        r.shard = j->shard;
        r.bytes = j->bytes;
        r.startAt = t;
        t += transferTime(j->bytes, bw);
        r.finishAt = t;
        out.emplace(j->device, r);
    }
}

void
scheduleFairShare(std::vector<const RestoreJob *> &shard_jobs,
                  std::uint64_t bw,
                  std::map<DeviceId, ScheduledRestore> &out)
{
    // Processor sharing: all jobs progress at bw / active. The k-th
    // smallest job finishes after the interval in which (n - k + 1)
    // jobs shared the bandwidth — classic shortest-first telescoping.
    std::sort(shard_jobs.begin(), shard_jobs.end(),
              [](const RestoreJob *a, const RestoreJob *b) {
                  if (a->bytes != b->bytes)
                      return a->bytes < b->bytes;
                  return a->device < b->device;
              });
    const std::size_t n = shard_jobs.size();
    Tick t = 0;
    std::uint64_t prev = 0;
    for (std::size_t k = 0; k < n; k++) {
        const RestoreJob *j = shard_jobs[k];
        const std::uint64_t delta = j->bytes - prev;
        const std::uint64_t active = n - k;
        t += transferTime(
            static_cast<unsigned __int128>(delta) * active, bw);
        prev = j->bytes;

        ScheduledRestore r;
        r.device = j->device;
        r.shard = j->shard;
        r.bytes = j->bytes;
        r.startAt = 0; // everyone starts together
        r.finishAt = t;
        out.emplace(j->device, r);
    }
}

} // namespace

RestorePlan
planRestores(const std::vector<RestoreJob> &jobs, PlanPolicy policy,
             const PlannerConfig &config)
{
    panicIf(config.shardBandwidthBytesPerSec == 0,
            "planRestores: zero shard bandwidth");

    RestorePlan plan;
    plan.policy = policy;

    // Replica-aware source selection: instead of pinning each job to
    // its primary, assign it (biggest first — the hardest to place)
    // to whichever candidate source replica has the least restore
    // bytes already assigned. Same-primary victims spread across
    // their replica sets, so restores parallelize over the copies
    // replication already paid for. Ties break on the smaller shard
    // id, order ties on device id — fully deterministic.
    std::vector<RestoreJob> routed;
    if (policy == PlanPolicy::ReplicaAware) {
        routed = jobs;
        std::vector<RestoreJob *> order;
        order.reserve(routed.size());
        for (RestoreJob &j : routed)
            order.push_back(&j);
        std::sort(order.begin(), order.end(),
                  [](const RestoreJob *a, const RestoreJob *b) {
                      if (a->bytes != b->bytes)
                          return a->bytes > b->bytes;
                      return a->device < b->device;
                  });
        std::map<remote::ShardId, std::uint64_t> load;
        for (RestoreJob *j : order) {
            std::vector<remote::ShardId> candidates = j->sources;
            if (candidates.empty())
                candidates.push_back(j->shard);
            remote::ShardId best = candidates.front();
            for (const remote::ShardId s : candidates) {
                if (load[s] < load[best] ||
                    (load[s] == load[best] && s < best)) {
                    best = s;
                }
            }
            j->shard = best;
            load[best] += j->bytes;
        }
    }
    const std::vector<RestoreJob> &effective =
        policy == PlanPolicy::ReplicaAware ? routed : jobs;

    std::map<remote::ShardId, std::vector<const RestoreJob *>>
        by_shard;
    for (const RestoreJob &j : effective)
        by_shard[j.shard].push_back(&j);

    std::map<DeviceId, ScheduledRestore> scheduled;
    for (auto &[shard, shard_jobs] : by_shard) {
        (void)shard;
        if (policy == PlanPolicy::FairShare)
            scheduleFairShare(shard_jobs,
                              config.shardBandwidthBytesPerSec,
                              scheduled);
        else // greedy, and replica-aware after source routing
            scheduleGreedy(shard_jobs,
                           config.shardBandwidthBytesPerSec,
                           scheduled);
    }

    std::uint64_t sum = 0;
    for (const auto &[device, r] : scheduled) {
        (void)device;
        plan.makespan = std::max(plan.makespan, r.finishAt);
        sum += r.finishAt;
        plan.restores.push_back(r);
    }
    if (!plan.restores.empty())
        plan.meanCompletion =
            static_cast<Tick>(sum / plan.restores.size());
    return plan;
}

} // namespace rssd::forensics
