#include "forensics/correlate.hh"

#include <algorithm>

namespace rssd::forensics {

const char *
campaignClassName(CampaignClass c)
{
    switch (c) {
      case CampaignClass::Benign: return "benign";
      case CampaignClass::Outbreak: return "outbreak";
      case CampaignClass::Staggered: return "staggered";
      case CampaignClass::ShardFlood: return "shard-flood";
    }
    return "?";
}

Correlation
correlate(const EvidenceScanner &scanner,
          const CorrelationConfig &config)
{
    Correlation out;

    for (const DeviceId id : scanner.devices()) {
        const StreamEvidence &ev = scanner.evidence(id);
        DeviceFinding f;
        f.device = id;
        f.shard = ev.shard;
        f.chainIntact = ev.intact;
        f.fault = ev.fault;
        f.segments = ev.segmentsVerified;
        f.entries = ev.entries.size();
        core::OfflineScanStats stats;
        f.finding =
            core::scanEntries(ev.entries, config.scan, &stats);
        f.highOverHighWrites = stats.highOverHighWrites;
        f.floodSuspect = f.finding.detected &&
                         f.highOverHighWrites >=
                             config.floodWriteThreshold;
        f.segmentsPruned = ev.segmentsPruned;
        f.entriesPruned = ev.entriesPruned;
        f.reanchors = ev.reanchors;
        f.replicas = ev.replicas;
        f.replicasAlive = ev.replicasAlive;
        f.tailVotes = ev.tailVotes;
        f.failovers = ev.failovers;
        out.findings.push_back(std::move(f));
    }

    // Infection order: detected devices by first implicated op
    // timestamp, ties toward the lower device id.
    std::vector<const DeviceFinding *> detected;
    for (const DeviceFinding &f : out.findings) {
        if (f.finding.detected)
            detected.push_back(&f);
    }
    std::sort(detected.begin(), detected.end(),
              [](const DeviceFinding *a, const DeviceFinding *b) {
                  if (a->finding.attackStart != b->finding.attackStart)
                      return a->finding.attackStart <
                             b->finding.attackStart;
                  return a->device < b->device;
              });

    out.anyDetected = !detected.empty();
    for (const DeviceFinding *f : detected)
        out.infectionOrder.push_back(f->device);
    if (out.anyDetected)
        out.patientZero = out.infectionOrder.front();
    for (std::size_t i = 0; i + 1 < detected.size(); i++) {
        SpreadEdge e;
        e.from = detected[i]->device;
        e.to = detected[i + 1]->device;
        e.lag = detected[i + 1]->finding.attackStart -
                detected[i]->finding.attackStart;
        out.spread.push_back(e);
    }

    // Campaign shape. Flood signature dominates; otherwise the
    // spread of the first implicated ops separates a detonation
    // from lateral movement.
    if (!out.anyDetected) {
        out.campaignClass = CampaignClass::Benign;
    } else if (std::any_of(detected.begin(), detected.end(),
                           [](const DeviceFinding *f) {
                               return f->floodSuspect;
                           })) {
        out.campaignClass = CampaignClass::ShardFlood;
    } else {
        const Tick span = detected.back()->finding.attackStart -
                          detected.front()->finding.attackStart;
        out.campaignClass = span <= config.outbreakSpanMax
            ? CampaignClass::Outbreak
            : CampaignClass::Staggered;
    }
    return out;
}

} // namespace rssd::forensics
