/**
 * @file
 * Cross-device correlation: turn per-stream evidence into a fleet
 * picture — who is compromised, who was patient zero, in what order
 * the infection spread, and what kind of campaign this was.
 *
 * Everything here is derived from the evidence alone (the verified
 * entry streams); the campaign ground truth is only ever used by the
 * report layer to *score* the conclusions, never to reach them.
 */

#ifndef RSSD_FORENSICS_CORRELATE_HH
#define RSSD_FORENSICS_CORRELATE_HH

#include <cstdint>
#include <vector>

#include "core/analyzer.hh"
#include "forensics/evidence.hh"

namespace rssd::forensics {

/** What the evidence says about one device. */
struct DeviceFinding
{
    DeviceId device = 0;
    remote::ShardId shard = 0;
    bool chainIntact = true;
    log::ChainFault fault = log::ChainFault::None;
    std::uint64_t segments = 0;
    std::uint64_t entries = 0;

    /** Offline detection over the replayed stream (shared with the
     *  single-device analyzer — core::scanEntries). */
    core::AttackFinding finding;

    /** High-entropy-over-high-entropy overwrites: junk churning junk
     *  is the flood signature (encryption is high-over-*low*). */
    std::uint64_t highOverHighWrites = 0;
    bool floodSuspect = false;

    // -- Retention view ----------------------------------------------------
    /** Segments/entries the store's retention GC expired from this
     *  stream (the pruned horizon the replay starts at). */
    std::uint64_t segmentsPruned = 0;
    std::uint64_t entriesPruned = 0;
    /** Times the scanner re-anchored from the signed prune record. */
    std::uint64_t reanchors = 0;

    // -- Replica view ------------------------------------------------------
    /** Replica-set size / live members / tail-agreement votes at
     *  the last scan (see StreamEvidence). */
    std::uint32_t replicas = 0;
    std::uint32_t replicasAlive = 0;
    std::uint32_t tailVotes = 0;
    /** Times the scan abandoned a dead or faulted source copy. */
    std::uint64_t failovers = 0;
};

/** Campaign shape inferred from the evidence. */
enum class CampaignClass : std::uint8_t {
    Benign,
    Outbreak,
    Staggered,
    ShardFlood,
};

/** Names match fleet::scenarioName() so classification can be scored
 *  against ground truth by string equality. */
const char *campaignClassName(CampaignClass c);

struct CorrelationConfig
{
    /**
     * Offline detection knobs. The fleet default lowers the
     * auditor's alarm count to 12 (from the single-device 64): per
     * paper-scale fleets a campaign encrypts a few dozen pages per
     * device, and the cluster-side auditor still sees the whole
     * history, so a small threshold stays false-positive-free on
     * benign trace traffic while catching every infected device.
     */
    core::OfflineScanConfig scan;

    /** First-implicated-op spread at or below this is an outbreak
     *  (simultaneous detonation); above it, lateral spread. */
    Tick outbreakSpanMax = 10 * units::MS;

    /** Flood signature: at least this many high-over-high
     *  overwrites marks a device as a junk flooder. */
    std::uint64_t floodWriteThreshold = 64;

    CorrelationConfig() { scan.auditor.alarmCount = 12; }
};

/** A directed lateral-spread edge (from turned, then to turned). */
struct SpreadEdge
{
    DeviceId from = 0;
    DeviceId to = 0;
    Tick lag = 0; ///< attack-start gap between the two devices
};

/** The fleet-wide conclusion. */
struct Correlation
{
    std::vector<DeviceFinding> findings; ///< device-id order

    bool anyDetected = false;
    DeviceId patientZero = 0; ///< valid iff anyDetected
    /** Detected devices by first implicated op time (ties by id). */
    std::vector<DeviceId> infectionOrder;
    /** Chain of infection: order[i] -> order[i+1]. */
    std::vector<SpreadEdge> spread;
    CampaignClass campaignClass = CampaignClass::Benign;
};

/**
 * Correlate all streams the scanner has verified so far. Pure
 * function of the scanner's evidence caches and @p config.
 */
Correlation correlate(const EvidenceScanner &scanner,
                      const CorrelationConfig &config);

} // namespace rssd::forensics

#endif // RSSD_FORENSICS_CORRELATE_HH
