#include "forensics/report.hh"

#include "sim/json.hh"

namespace rssd::forensics {
namespace {

using sim::JsonWriter;

void
emitCost(JsonWriter &j, const ScanPassCost &c)
{
    j.open('{');
    j.key("streamsScanned"); j.u64(c.streamsScanned);
    j.key("segmentsVerified"); j.u64(c.segmentsVerified);
    j.key("segmentsCached"); j.u64(c.segmentsCached);
    j.key("bytesVerified"); j.u64(c.bytesVerified);
    j.key("entriesReplayed"); j.u64(c.entriesReplayed);
    j.close('}');
}

void
emitFinding(JsonWriter &j, const DeviceFinding &f)
{
    j.open('{');
    j.key("device"); j.u64(f.device);
    j.key("shard"); j.u64(f.shard);
    j.key("chainIntact"); j.boolean(f.chainIntact);
    j.key("fault"); j.str(log::chainFaultName(f.fault));
    j.key("segments"); j.u64(f.segments);
    j.key("entries"); j.u64(f.entries);
    j.key("detected"); j.boolean(f.finding.detected);
    j.key("firstSuspectSeq"); j.u64(f.finding.firstSuspectSeq);
    j.key("lastSuspectSeq"); j.u64(f.finding.lastSuspectSeq);
    j.key("implicatedOps"); j.u64(f.finding.implicatedOps);
    j.key("attackStartNs"); j.u64(f.finding.attackStart);
    j.key("attackEndNs"); j.u64(f.finding.attackEnd);
    j.key("recoverySeq"); j.u64(f.finding.recommendedRecoverySeq);
    j.key("highOverHighWrites"); j.u64(f.highOverHighWrites);
    j.key("floodSuspect"); j.boolean(f.floodSuspect);
    j.key("segmentsPruned"); j.u64(f.segmentsPruned);
    j.key("entriesPruned"); j.u64(f.entriesPruned);
    j.key("reanchors"); j.u64(f.reanchors);
    j.key("replicas"); j.u64(f.replicas);
    j.key("replicasAlive"); j.u64(f.replicasAlive);
    j.key("tailVotes"); j.u64(f.tailVotes);
    j.key("failovers"); j.u64(f.failovers);
    j.close('}');
}

void
emitPlan(JsonWriter &j, const RestorePlan &p)
{
    j.open('{');
    j.key("policy"); j.str(planPolicyName(p.policy));
    j.key("restores");
    j.open('[');
    for (const ScheduledRestore &r : p.restores) {
        j.elem();
        j.open('{');
        j.key("device"); j.u64(r.device);
        j.key("shard"); j.u64(r.shard);
        j.key("bytes"); j.u64(r.bytes);
        j.key("startNs"); j.u64(r.startAt);
        j.key("finishNs"); j.u64(r.finishAt);
        j.close('}');
    }
    j.close(']');
    j.key("makespanNs"); j.u64(p.makespan);
    j.key("meanCompletionNs"); j.u64(p.meanCompletion);
    j.close('}');
}

} // namespace

std::string
ForensicsReport::toJson() const
{
    std::string out;
    out.reserve(4096 + correlation.findings.size() * 512);
    JsonWriter j(out);

    j.open('{');
    j.key("schema"); j.u64(kForensicsReportSchema);

    j.key("source");
    j.open('{');
    j.key("devices"); j.u64(devices);
    j.key("shards"); j.u64(shards);
    j.key("replication"); j.u64(replication);
    j.key("liveShards"); j.u64(liveShards);
    j.key("segments"); j.u64(totalSegments);
    j.key("bytesStored"); j.u64(totalBytesStored);
    j.key("segmentsPruned"); j.u64(totalSegmentsPruned);
    j.key("bytesPruned"); j.u64(totalBytesPruned);
    j.close('}');

    j.key("scan");
    j.open('{');
    j.key("passes"); j.u64(scanPasses);
    j.key("lastPass"); emitCost(j, lastPass);
    j.key("total"); emitCost(j, totalCost);
    j.close('}');

    j.key("devices");
    j.open('[');
    for (const DeviceFinding &f : correlation.findings) {
        j.elem();
        emitFinding(j, f);
    }
    j.close(']');

    j.key("correlation");
    j.open('{');
    j.key("anyDetected"); j.boolean(correlation.anyDetected);
    j.key("patientZero");
    j.u64(correlation.anyDetected ? correlation.patientZero : 0);
    j.key("infectionOrder");
    j.open('[');
    for (const DeviceId d : correlation.infectionOrder) {
        j.elem();
        j.u64(d);
    }
    j.close(']');
    j.key("spread");
    j.open('[');
    for (const SpreadEdge &e : correlation.spread) {
        j.elem();
        j.open('{');
        j.key("from"); j.u64(e.from);
        j.key("to"); j.u64(e.to);
        j.key("lagNs"); j.u64(e.lag);
        j.close('}');
    }
    j.close(']');
    j.key("campaign");
    j.str(campaignClassName(correlation.campaignClass));
    j.close('}');

    j.key("plans");
    j.open('[');
    for (const RestorePlan &p : plans) {
        j.elem();
        emitPlan(j, p);
    }
    j.close(']');

    j.key("recovery");
    j.open('{');
    j.key("executed"); j.boolean(recoveryExecuted);
    j.key("devices");
    j.open('[');
    for (const RecoveryOutcome &r : recovery) {
        j.elem();
        j.open('{');
        j.key("device"); j.u64(r.device);
        j.key("restoredFromShard"); j.u64(r.restoredFromShard);
        j.key("recoverySeq"); j.u64(r.recoverySeq);
        j.key("pagesRestored"); j.u64(r.pagesRestored);
        j.key("restoredFromRemote"); j.u64(r.restoredFromRemote);
        j.key("unresolved"); j.u64(r.unresolved);
        j.key("beforePrunedHorizon");
        j.boolean(r.beforePrunedHorizon);
        j.key("victimIntactBefore"); j.f64(r.victimIntactBefore);
        j.key("victimIntactAfter"); j.f64(r.victimIntactAfter);
        j.close('}');
    }
    j.close(']');
    j.close('}');

    j.key("groundTruth");
    j.open('{');
    j.key("known"); j.boolean(truth.known);
    j.key("scenario"); j.str(truth.scenario);
    j.key("anyInfected"); j.boolean(truth.anyInfected);
    j.key("patientZero");
    j.u64(truth.anyInfected ? truth.patientZero : 0);
    j.key("infectionOrder");
    j.open('[');
    for (const DeviceId d : truth.infectionOrder) {
        j.elem();
        j.u64(d);
    }
    j.close(']');
    j.key("patientZeroMatch"); j.boolean(patientZeroMatch);
    j.key("infectionOrderMatch"); j.boolean(infectionOrderMatch);
    j.key("campaignClassMatch"); j.boolean(campaignClassMatch);
    j.close('}');

    j.close('}');
    out += '\n';
    return out;
}

} // namespace rssd::forensics
