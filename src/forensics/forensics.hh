/**
 * @file
 * The forensics pipeline driver: one call that takes a scanner over
 * a backup cluster through evidence ingestion (incremental), cross-
 * device correlation, and recovery planning, and assembles the
 * ForensicsReport.
 *
 * Recovery *execution* is deliberately not here — it needs the
 * devices themselves (a RecoveryEngine writes restored pages back),
 * which only the fleet layer holds; FleetScheduler::runForensics()
 * wraps this driver and then executes the plan against its actors.
 */

#ifndef RSSD_FORENSICS_FORENSICS_HH
#define RSSD_FORENSICS_FORENSICS_HH

#include "forensics/report.hh"

namespace rssd::forensics {

struct ForensicsConfig
{
    CorrelationConfig correlation;
    PlannerConfig planner;
};

/**
 * Run one analysis pass over @p scanner's cluster: scan (verifying
 * only segments appended since the scanner's previous pass),
 * correlate, plan restores under both policies, and score against
 * @p truth when it is known. The scanner keeps its verified-prefix
 * cache across calls, so calling this again after new evidence
 * arrives costs O(new).
 */
ForensicsReport analyzeCluster(EvidenceScanner &scanner,
                               const ForensicsConfig &config,
                               const GroundTruth &truth = {});

} // namespace rssd::forensics

#endif // RSSD_FORENSICS_FORENSICS_HH
