/**
 * @file
 * Evidence ingestion for cluster-side forensics: stream every
 * device's segment chain out of the BackupCluster's shards,
 * verifying hash chain + HMACs incrementally.
 *
 * The scanner runs where the evidence lives (the analysis host is
 * co-located with the shards), so nothing crosses a wire here — the
 * cost that matters is verification and replay work, which the
 * ScanPassCost counters account for per pass.
 *
 * Incrementality is the design center: each stream keeps a resumable
 * cursor (position in the shard's storage-index list) plus the
 * SegmentChainVerifier state needed to extend the chain, and the
 * replayed entries of the verified prefix are cached. A re-scan
 * after new segments arrive verifies only the new suffix — O(new),
 * not O(all) — and the per-pass cost counters in the ForensicsReport
 * pin that claim in tests.
 */

#ifndef RSSD_FORENSICS_EVIDENCE_HH
#define RSSD_FORENSICS_EVIDENCE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "log/chain_verify.hh"
#include "obs/metrics.hh"
#include "remote/backup_cluster.hh"

namespace rssd::forensics {

using remote::DeviceId;

/** Work done by one scan() pass (the incremental cost model). */
struct ScanPassCost
{
    std::uint64_t streamsScanned = 0;
    std::uint64_t segmentsVerified = 0; ///< the new suffix, this pass
    std::uint64_t segmentsCached = 0;   ///< skipped: verified prefix
    std::uint64_t bytesVerified = 0;
    std::uint64_t entriesReplayed = 0;

    void
    add(const ScanPassCost &o)
    {
        streamsScanned += o.streamsScanned;
        segmentsVerified += o.segmentsVerified;
        segmentsCached += o.segmentsCached;
        bytesVerified += o.bytesVerified;
        entriesReplayed += o.entriesReplayed;
    }
};

/** One device stream's verified evidence (the prefix cache). */
struct StreamEvidence
{
    DeviceId device = 0;
    /** The replica the scanner currently reads from (the read-side
     *  vote winner). */
    remote::ShardId shard = 0;

    // -- Replica view ------------------------------------------------------

    /** Pinned replica-set size (R). */
    std::uint32_t replicas = 0;
    /** Live members of the set at the last pass. */
    std::uint32_t replicasAlive = 0;
    /** Live replicas whose chain tail agrees with the source's —
     *  O(1) per replica, the tail digest authenticates the whole
     *  history (majority agreement, the ASPIS voting idiom). */
    std::uint32_t tailVotes = 0;
    /** Times the scanner abandoned a dead or faulted source copy
     *  and re-verified the stream from another replica. */
    std::uint64_t failovers = 0;

    /** False once a segment failed verification; the entry cache
     *  then holds exactly the trustworthy prefix. */
    bool intact = true;
    log::ChainFault fault = log::ChainFault::None;

    /** Segments verified (the cursor into the stream's chain). */
    std::uint64_t segmentsVerified = 0;

    /** Wire bytes of the verified prefix (restore-planning input). */
    std::uint64_t bytesVerified = 0;

    // -- Retention-GC view -------------------------------------------------

    /** Segments the store expired from this stream (cumulative). */
    std::uint64_t segmentsPruned = 0;

    /** Log entries expired with them (the pruned horizon: the first
     *  surviving logSeq — from the signed prune record). */
    std::uint64_t entriesPruned = 0;

    /** Segments expired before this scanner ever verified them —
     *  evidence the analysis will never see (pruning outpaced the
     *  scan). Entries of segments verified *before* their expiry
     *  stay in the cache and are not counted here. */
    std::uint64_t segmentsPrunedUnseen = 0;

    /** Times the scanner resumed from a signed prune record (once
     *  at first contact with a pruned stream, again whenever the
     *  horizon overtakes the cursor). */
    std::uint64_t reanchors = 0;

    /** Replayed log entries of the verified prefix, oldest first.
     *  On a pruned stream the replay starts at the horizon. */
    std::vector<log::LogEntry> entries;
};

class EvidenceScanner
{
  public:
    explicit EvidenceScanner(const remote::BackupCluster &cluster);

    EvidenceScanner(const EvidenceScanner &) = delete;
    EvidenceScanner &operator=(const EvidenceScanner &) = delete;

    /**
     * Scan every attached device's stream, verifying segments
     * appended since the previous pass (everything, on the first
     * pass). Each stream is read from one *source replica* —
     * preferring any live chain-verifying copy — and cross-checked
     * against the other live replicas by tail voting; a dead or
     * faulted source fails over to another copy (re-verified from
     * its genesis, an honestly-counted cost).
     * @return the cost of this pass alone.
     */
    ScanPassCost scan();

    /** Devices seen so far, ascending id (deterministic order). */
    std::vector<DeviceId> devices() const;

    const StreamEvidence &evidence(DeviceId device) const;

    std::uint64_t passes() const { return passes_; }
    const ScanPassCost &lastPass() const { return lastPass_; }
    const ScanPassCost &total() const { return total_; }

    const remote::BackupCluster &cluster() const { return cluster_; }

    /** Register the cumulative scan-cost counters under @p prefix
     *  (e.g. "forensics."); sampled at snapshot time. */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

  private:
    struct StreamState
    {
        StreamEvidence evidence;
        log::SegmentChainVerifier verifier;
        /** Absolute position of the next segment to verify, counted
         *  from the stream's genesis (pruned + verified). Stable
         *  across prunes, unlike indices into the shrinking stored
         *  list. Per-copy state, like the verifier and the entry
         *  cache: a failover resets all three. */
        std::uint64_t absPos = 0;
        /** Source replica (kNoShard until the first pass). */
        remote::ShardId source = remote::kNoShard;
    };

    /** Abandon @p st's current copy and restart on @p replica. */
    static void failOver(StreamState &st, remote::ShardId replica);

    const remote::BackupCluster &cluster_;
    /** Keyed by device id (== StreamId); ordered for determinism. */
    std::map<DeviceId, StreamState> streams_;
    std::uint64_t passes_ = 0;
    ScanPassCost lastPass_;
    ScanPassCost total_;
};

} // namespace rssd::forensics

#endif // RSSD_FORENSICS_EVIDENCE_HH
