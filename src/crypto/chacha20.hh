/**
 * @file
 * ChaCha20 stream cipher (RFC 8439), implemented from scratch.
 *
 * Two users:
 *  - RSSD's offload engine encrypts sealed log segments before they
 *    leave the device over NVMe-oE.
 *  - The ransomware attack models encrypt victim data for real, so
 *    that entropy-based detectors see genuine ciphertext statistics.
 */

#ifndef RSSD_CRYPTO_CHACHA20_HH
#define RSSD_CRYPTO_CHACHA20_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rssd::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

/**
 * ChaCha20 keystream generator / XOR cipher. Encryption and
 * decryption are the same operation.
 */
class ChaCha20
{
  public:
    /**
     * @param key      256-bit key
     * @param nonce    96-bit nonce; must be unique per (key, stream)
     * @param counter  initial 32-bit block counter (usually 0)
     */
    ChaCha20(const Key256 &key, const Nonce96 &nonce,
             std::uint32_t counter = 0);

    /** XOR the keystream into @p len bytes at @p data, in place. */
    void apply(std::uint8_t *data, std::size_t len);

    /**
     * XOR the keystream over @p len bytes at @p src into @p dst.
     * @p dst must not partially overlap @p src (equal is fine); lets
     * decrypt-and-copy run as one pass instead of copy-then-decrypt.
     */
    void apply(const std::uint8_t *src, std::uint8_t *dst,
               std::size_t len);

    /** Convenience: encrypt/decrypt a whole vector in place. */
    void apply(std::vector<std::uint8_t> &data);

    /** Derive a Key256 from an arbitrary seed string (via SHA-256). */
    static Key256 deriveKey(const std::string &seed);

    /** Build a nonce from a 64-bit sequence number. */
    static Nonce96 nonceFromSequence(std::uint64_t seq);

  private:
    void refill();

    std::array<std::uint32_t, 16> state_;
    std::array<std::uint8_t, 64> keystream_;
    std::size_t keystreamPos_ = 64; // empty
};

} // namespace rssd::crypto

#endif // RSSD_CRYPTO_CHACHA20_HH
