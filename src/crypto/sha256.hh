/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used for the hardware-assisted log's hash chain: each log entry's
 * digest covers the entry payload concatenated with the previous
 * digest, making the operation log tamper-evident (docs/ARCHITECTURE.md, "Table 1 defense
 * properties": tamper-evident forensics).
 */

#ifndef RSSD_CRYPTO_SHA256_HH
#define RSSD_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rssd::crypto {

/** A 256-bit digest. */
using Digest = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes at @p data. */
    void update(const void *data, std::size_t len);
    void update(const std::vector<std::uint8_t> &data);

    /** Finalize and return the digest. The context must not be reused. */
    Digest finish();

    /** One-shot convenience. */
    static Digest hash(const void *data, std::size_t len);
    static Digest hash(const std::vector<std::uint8_t> &data);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t bufferLen_ = 0;
    std::uint64_t totalLen_ = 0;
    bool finished_ = false;
};

/** HMAC-SHA256 (RFC 2104) over @p data with @p key. */
Digest hmacSha256(const std::uint8_t *key, std::size_t key_len,
                  const void *data, std::size_t len);

/** Render a digest as lowercase hex. */
std::string toHex(const Digest &d);

} // namespace rssd::crypto

#endif // RSSD_CRYPTO_SHA256_HH
