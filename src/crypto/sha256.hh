/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used for the hardware-assisted log's hash chain: each log entry's
 * digest covers the entry payload concatenated with the previous
 * digest, making the operation log tamper-evident (docs/ARCHITECTURE.md, "Table 1 defense
 * properties": tamper-evident forensics).
 */

#ifndef RSSD_CRYPTO_SHA256_HH
#define RSSD_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rssd::crypto {

/** A 256-bit digest. */
using Digest = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes at @p data. */
    void update(const void *data, std::size_t len);
    void update(const std::vector<std::uint8_t> &data);

    /** Finalize and return the digest. The context must not be reused. */
    Digest finish();

    /** One-shot convenience. */
    static Digest hash(const void *data, std::size_t len);
    static Digest hash(const std::vector<std::uint8_t> &data);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t bufferLen_ = 0;
    std::uint64_t totalLen_ = 0;
    bool finished_ = false;
};

/**
 * Incremental HMAC-SHA256 (RFC 2104) with a precomputed key schedule.
 *
 * Construction hashes the ipad/opad key blocks once; each message
 * then costs only the message blocks plus one outer finalization.
 * A long-lived keyed instance (e.g. a segment codec) amortizes the
 * two key blocks across every segment it seals, and update() lets
 * callers feed header + payload without concatenating them first.
 *
 * Reuse pattern: update()* -> finish(), then reset() to start the
 * next message under the same key. Copying a keyed instance is cheap
 * and copies the precomputed schedule, not the key bytes.
 */
class HmacSha256
{
  public:
    HmacSha256(const std::uint8_t *key, std::size_t key_len);

    /** Absorb message bytes. */
    void update(const void *data, std::size_t len);
    void update(const std::vector<std::uint8_t> &data);

    /** Finalize the current message. Call reset() before reuse. */
    Digest finish();

    /** Restart for a new message under the same key. */
    void reset();

  private:
    Sha256 innerInit_; ///< state after absorbing key ^ ipad
    Sha256 outerInit_; ///< state after absorbing key ^ opad
    Sha256 ctx_;       ///< running inner hash of the current message
};

/** One-shot HMAC-SHA256 over @p data with @p key. */
Digest hmacSha256(const std::uint8_t *key, std::size_t key_len,
                  const void *data, std::size_t len);

/** Render a digest as lowercase hex. */
std::string toHex(const Digest &d);

} // namespace rssd::crypto

#endif // RSSD_CRYPTO_SHA256_HH
