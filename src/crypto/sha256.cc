#include "crypto/sha256.hh"

#include <cstring>

#include "sim/logging.hh"

namespace rssd::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

std::uint32_t
rotr(std::uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
{
}

void
Sha256::processBlock(const std::uint8_t *block)
{
    // Rolling 16-word message schedule: w[] is a ring holding the
    // last 16 schedule words, so the expansion runs fused with the
    // rounds instead of materializing all 64 words up front.
    std::uint32_t w[16];
    for (int i = 0; i < 16; i++) {
        w[i] = (std::uint32_t(block[i * 4]) << 24) |
               (std::uint32_t(block[i * 4 + 1]) << 16) |
               (std::uint32_t(block[i * 4 + 2]) << 8) |
               std::uint32_t(block[i * 4 + 3]);
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2],
                  d = state_[3], e = state_[4], f = state_[5],
                  g = state_[6], h = state_[7];

    for (int i = 0; i < 64; i++) {
        std::uint32_t wi;
        if (i < 16) {
            wi = w[i];
        } else {
            const std::uint32_t w15 = w[(i - 15) & 15];
            const std::uint32_t w2 = w[(i - 2) & 15];
            const std::uint32_t s0 =
                rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
            const std::uint32_t s1 =
                rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
            wi = w[i & 15] + s0 + w[(i - 7) & 15] + s1;
            w[i & 15] = wi;
        }
        const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kK[i] + wi;
        const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::update(const void *data, std::size_t len)
{
    panicIf(finished_, "Sha256::update after finish");
    const auto *p = static_cast<const std::uint8_t *>(data);
    totalLen_ += len;

    // Fill a partially filled buffer first.
    if (bufferLen_ > 0) {
        const std::size_t want = 64 - bufferLen_;
        const std::size_t take = std::min(want, len);
        std::memcpy(buffer_.data() + bufferLen_, p, take);
        bufferLen_ += take;
        p += take;
        len -= take;
        if (bufferLen_ == 64) {
            processBlock(buffer_.data());
            bufferLen_ = 0;
        }
    }

    while (len >= 64) {
        processBlock(p);
        p += 64;
        len -= 64;
    }

    if (len > 0) {
        std::memcpy(buffer_.data(), p, len);
        bufferLen_ = len;
    }
}

void
Sha256::update(const std::vector<std::uint8_t> &data)
{
    update(data.data(), data.size());
}

Digest
Sha256::finish()
{
    panicIf(finished_, "Sha256::finish called twice");

    const std::uint64_t bit_len = totalLen_ * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0x00;
    while (bufferLen_ != 56)
        update(&zero, 1);

    std::uint8_t len_be[8];
    for (int i = 0; i < 8; i++)
        len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    update(len_be, 8);
    finished_ = true;

    Digest out;
    for (int i = 0; i < 8; i++) {
        out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
        out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
}

Digest
Sha256::hash(const void *data, std::size_t len)
{
    Sha256 ctx;
    ctx.update(data, len);
    return ctx.finish();
}

Digest
Sha256::hash(const std::vector<std::uint8_t> &data)
{
    return hash(data.data(), data.size());
}

HmacSha256::HmacSha256(const std::uint8_t *key, std::size_t key_len)
{
    std::array<std::uint8_t, 64> k{};
    if (key_len > 64) {
        const Digest kd = Sha256::hash(key, key_len);
        std::memcpy(k.data(), kd.data(), kd.size());
    } else {
        std::memcpy(k.data(), key, key_len);
    }

    std::array<std::uint8_t, 64> pad;
    for (int i = 0; i < 64; i++)
        pad[i] = k[i] ^ 0x36;
    innerInit_.update(pad.data(), pad.size());
    for (int i = 0; i < 64; i++)
        pad[i] = k[i] ^ 0x5c;
    outerInit_.update(pad.data(), pad.size());

    ctx_ = innerInit_;
}

void
HmacSha256::update(const void *data, std::size_t len)
{
    ctx_.update(data, len);
}

void
HmacSha256::update(const std::vector<std::uint8_t> &data)
{
    ctx_.update(data.data(), data.size());
}

Digest
HmacSha256::finish()
{
    const Digest inner_digest = ctx_.finish();
    Sha256 outer = outerInit_;
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

void
HmacSha256::reset()
{
    ctx_ = innerInit_;
}

Digest
hmacSha256(const std::uint8_t *key, std::size_t key_len,
           const void *data, std::size_t len)
{
    HmacSha256 mac(key, key_len);
    mac.update(data, len);
    return mac.finish();
}

std::string
toHex(const Digest &d)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (std::uint8_t byte : d) {
        out.push_back(hex[byte >> 4]);
        out.push_back(hex[byte & 0xf]);
    }
    return out;
}

} // namespace rssd::crypto
