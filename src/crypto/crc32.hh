/**
 * @file
 * CRC32C (Castagnoli) — the checksum used by NVMe-oE capsules and
 * Ethernet frames in the simulated network path.
 *
 * Three implementations live behind one entry point:
 *  - a byte-at-a-time table walk (`crc32cReference`), the bit-exact
 *    reference every fast path is tested against;
 *  - slicing-by-8 over 64-bit words, the portable default;
 *  - an SSE4.2 `crc32q` path, compiled only when the build opts in
 *    via the `RSSD_NATIVE` CMake option and selected at runtime iff
 *    the CPU reports the feature.
 * All three produce identical output for every input.
 */

#ifndef RSSD_CRYPTO_CRC32_HH
#define RSSD_CRYPTO_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rssd::crypto {

/** CRC32C of @p len bytes at @p data, seedable for incremental use. */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t seed = 0);

std::uint32_t crc32c(const std::vector<std::uint8_t> &data,
                     std::uint32_t seed = 0);

/**
 * Byte-at-a-time reference implementation. Slow; exists so tests can
 * pin the dispatched fast path against it.
 */
std::uint32_t crc32cReference(const void *data, std::size_t len,
                              std::uint32_t seed = 0);

/** Name of the implementation crc32c() dispatches to. */
const char *crc32cImplName();

} // namespace rssd::crypto

#endif // RSSD_CRYPTO_CRC32_HH
