/**
 * @file
 * CRC32C (Castagnoli) — the checksum used by NVMe-oE capsules and
 * Ethernet frames in the simulated network path.
 */

#ifndef RSSD_CRYPTO_CRC32_HH
#define RSSD_CRYPTO_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rssd::crypto {

/** CRC32C of @p len bytes at @p data, seedable for incremental use. */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t seed = 0);

std::uint32_t crc32c(const std::vector<std::uint8_t> &data,
                     std::uint32_t seed = 0);

} // namespace rssd::crypto

#endif // RSSD_CRYPTO_CRC32_HH
