#include "crypto/crc32.hh"

#include <array>

namespace rssd::crypto {

namespace {

/** Build the CRC32C lookup table at static-init time. */
std::array<std::uint32_t, 256>
buildTable()
{
    constexpr std::uint32_t poly = 0x82F63B78u; // reflected Castagnoli
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; bit++)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
        table[i] = crc;
    }
    return table;
}

const std::array<std::uint32_t, 256> kTable = buildTable();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; i++)
        crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xff];
    return ~crc;
}

std::uint32_t
crc32c(const std::vector<std::uint8_t> &data, std::uint32_t seed)
{
    return crc32c(data.data(), data.size(), seed);
}

} // namespace rssd::crypto
