#include "crypto/crc32.hh"

#include <array>
#include <bit>
#include <cstring>

#if defined(RSSD_NATIVE) && defined(__x86_64__)
#include <nmmintrin.h>
#define RSSD_CRC32_SSE42 1
#endif

namespace rssd::crypto {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u; // reflected Castagnoli

/**
 * Slicing tables. table[0] is the classic byte table; table[k]
 * advances a byte through k further zero bytes, so sixteen lookups
 * retire two whole 64-bit words per iteration (slicing-by-16, with
 * a slicing-by-8 loop mopping up the 8..15-byte remainder).
 */
constexpr std::array<std::array<std::uint32_t, 256>, 16>
buildTables()
{
    std::array<std::array<std::uint32_t, 256>, 16> t{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; bit++)
            crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
        t[0][i] = crc;
    }
    for (int k = 1; k < 16; k++) {
        for (std::uint32_t i = 0; i < 256; i++)
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
    }
    return t;
}

constexpr auto kTables = buildTables();

std::uint32_t
updateBytewise(std::uint32_t crc, const std::uint8_t *p, std::size_t len)
{
    for (std::size_t i = 0; i < len; i++)
        crc = (crc >> 8) ^ kTables[0][(crc ^ p[i]) & 0xff];
    return crc;
}

/** Portable sliced update over the raw (inverted) CRC state. */
std::uint32_t
updateSlicing8(std::uint32_t crc, const std::uint8_t *p, std::size_t len)
{
    if constexpr (std::endian::native != std::endian::little)
        return updateBytewise(crc, p, len);

    while (len >= 16) {
        std::uint64_t w1, w2;
        std::memcpy(&w1, p, 8);
        std::memcpy(&w2, p + 8, 8);
        w1 ^= crc;
        crc = kTables[15][w1 & 0xff] ^
              kTables[14][(w1 >> 8) & 0xff] ^
              kTables[13][(w1 >> 16) & 0xff] ^
              kTables[12][(w1 >> 24) & 0xff] ^
              kTables[11][(w1 >> 32) & 0xff] ^
              kTables[10][(w1 >> 40) & 0xff] ^
              kTables[9][(w1 >> 48) & 0xff] ^
              kTables[8][w1 >> 56] ^
              kTables[7][w2 & 0xff] ^
              kTables[6][(w2 >> 8) & 0xff] ^
              kTables[5][(w2 >> 16) & 0xff] ^
              kTables[4][(w2 >> 24) & 0xff] ^
              kTables[3][(w2 >> 32) & 0xff] ^
              kTables[2][(w2 >> 40) & 0xff] ^
              kTables[1][(w2 >> 48) & 0xff] ^
              kTables[0][w2 >> 56];
        p += 16;
        len -= 16;
    }
    if (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        word ^= crc;
        crc = kTables[7][word & 0xff] ^
              kTables[6][(word >> 8) & 0xff] ^
              kTables[5][(word >> 16) & 0xff] ^
              kTables[4][(word >> 24) & 0xff] ^
              kTables[3][(word >> 32) & 0xff] ^
              kTables[2][(word >> 40) & 0xff] ^
              kTables[1][(word >> 48) & 0xff] ^
              kTables[0][word >> 56];
        p += 8;
        len -= 8;
    }
    return updateBytewise(crc, p, len);
}

#ifdef RSSD_CRC32_SSE42
__attribute__((target("sse4.2"))) std::uint32_t
updateSse42(std::uint32_t crc, const std::uint8_t *p, std::size_t len)
{
    std::uint64_t c = crc;
    while (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        c = _mm_crc32_u64(c, word);
        p += 8;
        len -= 8;
    }
    crc = static_cast<std::uint32_t>(c);
    while (len > 0) {
        crc = _mm_crc32_u8(crc, *p++);
        len--;
    }
    return crc;
}
#endif

using UpdateFn = std::uint32_t (*)(std::uint32_t, const std::uint8_t *,
                                   std::size_t);

struct Impl
{
    UpdateFn fn;
    const char *name;
};

Impl
pickImpl()
{
#ifdef RSSD_CRC32_SSE42
    if (__builtin_cpu_supports("sse4.2"))
        return {updateSse42, "sse4.2"};
#endif
    return {updateSlicing8, "slicing8"};
}

const Impl kImpl = pickImpl();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    return ~kImpl.fn(~seed, p, len);
}

std::uint32_t
crc32c(const std::vector<std::uint8_t> &data, std::uint32_t seed)
{
    return crc32c(data.data(), data.size(), seed);
}

std::uint32_t
crc32cReference(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    return ~updateBytewise(~seed, p, len);
}

const char *
crc32cImplName()
{
    return kImpl.name;
}

} // namespace rssd::crypto
