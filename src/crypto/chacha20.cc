#include "crypto/chacha20.hh"

#include <cstring>
#include <string>

#include "crypto/sha256.hh"

namespace rssd::crypto {

namespace {

std::uint32_t
rotl(std::uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

void
quarterRound(std::array<std::uint32_t, 16> &s, int a, int b, int c, int d)
{
    s[a] += s[b]; s[d] ^= s[a]; s[d] = rotl(s[d], 16);
    s[c] += s[d]; s[b] ^= s[c]; s[b] = rotl(s[b], 12);
    s[a] += s[b]; s[d] ^= s[a]; s[d] = rotl(s[d], 8);
    s[c] += s[d]; s[b] ^= s[c]; s[b] = rotl(s[b], 7);
}

std::uint32_t
load32le(const std::uint8_t *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

} // namespace

ChaCha20::ChaCha20(const Key256 &key, const Nonce96 &nonce,
                   std::uint32_t counter)
{
    // "expand 32-byte k"
    state_[0] = 0x61707865;
    state_[1] = 0x3320646e;
    state_[2] = 0x79622d32;
    state_[3] = 0x6b206574;
    for (int i = 0; i < 8; i++)
        state_[4 + i] = load32le(key.data() + 4 * i);
    state_[12] = counter;
    for (int i = 0; i < 3; i++)
        state_[13 + i] = load32le(nonce.data() + 4 * i);
}

void
ChaCha20::refill()
{
    std::array<std::uint32_t, 16> working = state_;
    for (int round = 0; round < 10; round++) {
        quarterRound(working, 0, 4, 8, 12);
        quarterRound(working, 1, 5, 9, 13);
        quarterRound(working, 2, 6, 10, 14);
        quarterRound(working, 3, 7, 11, 15);
        quarterRound(working, 0, 5, 10, 15);
        quarterRound(working, 1, 6, 11, 12);
        quarterRound(working, 2, 7, 8, 13);
        quarterRound(working, 3, 4, 9, 14);
    }
    for (int i = 0; i < 16; i++) {
        const std::uint32_t word = working[i] + state_[i];
        keystream_[i * 4] = static_cast<std::uint8_t>(word);
        keystream_[i * 4 + 1] = static_cast<std::uint8_t>(word >> 8);
        keystream_[i * 4 + 2] = static_cast<std::uint8_t>(word >> 16);
        keystream_[i * 4 + 3] = static_cast<std::uint8_t>(word >> 24);
    }
    state_[12]++; // block counter
    keystreamPos_ = 0;
}

void
ChaCha20::apply(std::uint8_t *data, std::size_t len)
{
    apply(data, data, len);
}

void
ChaCha20::apply(const std::uint8_t *src, std::uint8_t *dst,
                std::size_t len)
{
    while (len > 0) {
        if (keystreamPos_ == 64)
            refill();
        std::size_t take = 64 - keystreamPos_;
        if (take > len)
            take = len;
        const std::uint8_t *ks = keystream_.data() + keystreamPos_;
        std::size_t i = 0;
        for (; i + 8 <= take; i += 8) {
            std::uint64_t d, k;
            std::memcpy(&d, src + i, 8);
            std::memcpy(&k, ks + i, 8);
            d ^= k;
            std::memcpy(dst + i, &d, 8);
        }
        for (; i < take; i++)
            dst[i] = static_cast<std::uint8_t>(src[i] ^ ks[i]);
        keystreamPos_ += take;
        src += take;
        dst += take;
        len -= take;
    }
}

void
ChaCha20::apply(std::vector<std::uint8_t> &data)
{
    apply(data.data(), data.size());
}

Key256
ChaCha20::deriveKey(const std::string &seed)
{
    const Digest d = Sha256::hash(seed.data(), seed.size());
    Key256 key;
    std::memcpy(key.data(), d.data(), key.size());
    return key;
}

Nonce96
ChaCha20::nonceFromSequence(std::uint64_t seq)
{
    Nonce96 n{};
    for (int i = 0; i < 8; i++)
        n[i] = static_cast<std::uint8_t>(seq >> (8 * i));
    return n;
}

} // namespace rssd::crypto
