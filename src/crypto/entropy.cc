#include "crypto/entropy.hh"

#include <cmath>
#include <cstring>

namespace rssd::crypto {

double
shannonEntropy(const void *data, std::size_t len)
{
    EntropyAccumulator acc;
    acc.add(data, len);
    return acc.entropy();
}

double
shannonEntropy(const std::vector<std::uint8_t> &data)
{
    return shannonEntropy(data.data(), data.size());
}

void
EntropyAccumulator::add(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t i = 0;
    // One 64-bit load feeds eight increments spread over the four
    // interleaved sub-tables; which byte lands in which sub-table is
    // irrelevant because entropy() sums them per symbol.
    for (; i + 8 <= len; i += 8) {
        std::uint64_t v;
        std::memcpy(&v, p + i, 8);
        counts_[0][v & 0xff]++;
        counts_[1][(v >> 8) & 0xff]++;
        counts_[2][(v >> 16) & 0xff]++;
        counts_[3][(v >> 24) & 0xff]++;
        counts_[0][(v >> 32) & 0xff]++;
        counts_[1][(v >> 40) & 0xff]++;
        counts_[2][(v >> 48) & 0xff]++;
        counts_[3][v >> 56]++;
    }
    for (; i < len; i++)
        counts_[0][p[i]]++;
    total_ += len;
}

void
EntropyAccumulator::add(const std::vector<std::uint8_t> &data)
{
    add(data.data(), data.size());
}

void
EntropyAccumulator::reset()
{
    *this = EntropyAccumulator();
}

double
EntropyAccumulator::entropy() const
{
    if (total_ == 0)
        return 0.0;
    double h = 0.0;
    const double total = static_cast<double>(total_);
    for (int sym = 0; sym < 256; sym++) {
        const std::uint64_t c = counts_[0][sym] + counts_[1][sym] +
                                counts_[2][sym] + counts_[3][sym];
        if (c == 0)
            continue;
        const double p = static_cast<double>(c) / total;
        h -= p * std::log2(p);
    }
    return h;
}

} // namespace rssd::crypto
