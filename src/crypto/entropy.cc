#include "crypto/entropy.hh"

#include <cmath>

namespace rssd::crypto {

double
shannonEntropy(const void *data, std::size_t len)
{
    EntropyAccumulator acc;
    acc.add(data, len);
    return acc.entropy();
}

double
shannonEntropy(const std::vector<std::uint8_t> &data)
{
    return shannonEntropy(data.data(), data.size());
}

void
EntropyAccumulator::add(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; i++)
        counts_[p[i]]++;
    _total += len;
}

void
EntropyAccumulator::add(const std::vector<std::uint8_t> &data)
{
    add(data.data(), data.size());
}

void
EntropyAccumulator::reset()
{
    *this = EntropyAccumulator();
}

double
EntropyAccumulator::entropy() const
{
    if (_total == 0)
        return 0.0;
    double h = 0.0;
    const double total = static_cast<double>(_total);
    for (std::uint64_t c : counts_) {
        if (c == 0)
            continue;
        const double p = static_cast<double>(c) / total;
        h -= p * std::log2(p);
    }
    return h;
}

} // namespace rssd::crypto
