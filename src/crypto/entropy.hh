/**
 * @file
 * Shannon-entropy estimation over byte buffers.
 *
 * Ransomware detectors (ours and the paper's baselines) key on the
 * entropy jump between plaintext being overwritten and the ciphertext
 * replacing it: well-encrypted data is ~8 bits/byte, typical user
 * data much less.
 */

#ifndef RSSD_CRYPTO_ENTROPY_HH
#define RSSD_CRYPTO_ENTROPY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rssd::crypto {

/** Shannon entropy in bits per byte (0..8) of @p len bytes. */
double shannonEntropy(const void *data, std::size_t len);

double shannonEntropy(const std::vector<std::uint8_t> &data);

/**
 * Streaming byte-frequency accumulator for entropy over many pages
 * without re-touching the data.
 */
class EntropyAccumulator
{
  public:
    void add(const void *data, std::size_t len);
    void add(const std::vector<std::uint8_t> &data);
    void reset();

    /** Entropy (bits/byte) of everything added so far. */
    double entropy() const;

    std::uint64_t totalBytes() const { return total_; }

  private:
    /**
     * Four interleaved count sub-tables. Consecutive bytes land in
     * different tables, so repeated bytes (long runs are common in
     * user data) no longer serialize on one counter's
     * store-to-load-forward chain. entropy() sums them back up.
     */
    std::uint64_t counts_[4][256] = {};
    std::uint64_t total_ = 0;
};

} // namespace rssd::crypto

#endif // RSSD_CRYPTO_ENTROPY_HH
