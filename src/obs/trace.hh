/**
 * @file
 * Deterministic span tracing on the DES spine.
 *
 * A TraceSink records tick-stamped, causally-linked events for each
 * capsule's lifecycle — device seal, offload park/retry, shard queue
 * wait, batch, quorum ack, repair copy, scrub step, GC prune,
 * membership change — and renders them as Chrome trace_event JSON
 * (loadable in chrome://tracing or Perfetto) or a JSONL event log.
 *
 * Determinism contract: events are stored in call order, every
 * timestamp is a sim Tick, and every value is an integer derived
 * from simulation state. The same seed and config therefore produce
 * byte-identical trace files; CI byte-compares two runs. Tracing is
 * strictly read-only — attaching a sink never perturbs simulation
 * state, so the FleetReport is byte-identical with tracing on or off
 * (pinned by tests/obs/trace_test.cc).
 *
 * Time units: Chrome's "ts"/"dur" fields are nominally microseconds.
 * The sink writes raw ticks (sim nanoseconds) into them unscaled —
 * 1 trace-us on screen = 1 sim-ns — because integer timestamps are
 * the only way to keep the file byte-stable (no float formatting).
 * Divide on-screen durations by 1000 when reading a trace.
 */

#ifndef RSSD_OBS_TRACE_HH
#define RSSD_OBS_TRACE_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "sim/units.hh"

namespace rssd::obs {

/**
 * Fixed track ids (Chrome "pid") every subsystem agrees on, so one
 * trace file lays out devices, cluster shards, the repair engine and
 * the fleet spine as separate process tracks.
 */
constexpr std::uint64_t kTrackDevices = 1;
constexpr std::uint64_t kTrackCluster = 2;
constexpr std::uint64_t kTrackRepair = 3;
constexpr std::uint64_t kTrackFleet = 4;

/** One integer-valued event argument (key is a string literal). */
struct TraceArg
{
    const char *key;
    std::uint64_t value;
};

class TraceSink
{
  public:
    /** Name a process track ('M' metadata event). */
    void setProcessName(std::uint64_t pid, const std::string &name);

    /** Name a thread track within a process. */
    void setThreadName(std::uint64_t pid, std::uint64_t tid,
                       const std::string &name);

    /** A complete span ('X'): [start, end] on (pid, tid). */
    void complete(const char *cat, const char *name, std::uint64_t pid,
                  std::uint64_t tid, Tick start, Tick end,
                  std::initializer_list<TraceArg> args = {})
    {
        completeN(cat, name, pid, tid, start, end, args.begin(),
                  args.size());
    }
    void completeN(const char *cat, const char *name,
                   std::uint64_t pid, std::uint64_t tid, Tick start,
                   Tick end, const TraceArg *args, std::size_t n);

    /** A thread-scoped instant event ('i'). */
    void instant(const char *cat, const char *name, std::uint64_t pid,
                 std::uint64_t tid, Tick at,
                 std::initializer_list<TraceArg> args = {});

    /**
     * Causal link across tracks: flowBegin ('s') at the producer,
     * flowEnd ('f') at the consumer, joined by @p flow_id. The
     * capsule lifecycle uses (device << 32 | segment id).
     */
    void flowBegin(const char *cat, const char *name,
                   std::uint64_t flow_id, std::uint64_t pid,
                   std::uint64_t tid, Tick at);
    void flowEnd(const char *cat, const char *name,
                 std::uint64_t flow_id, std::uint64_t pid,
                 std::uint64_t tid, Tick at);

    std::size_t eventCount() const { return events_.size(); }

    /** The full Chrome trace_event document (one JSON object). */
    std::string toChromeJson() const;

    /** One JSON object per event per line (grep-friendly log). */
    std::string toJsonl() const;

  private:
    struct Event
    {
        char phase = 'X'; ///< 'X','i','M','s','f'
        const char *cat = "";
        const char *name = "";
        std::uint64_t pid = 0;
        std::uint64_t tid = 0;
        Tick ts = 0;
        Tick dur = 0;          ///< 'X' only
        std::uint64_t flowId = 0; ///< 's'/'f' only
        std::vector<std::pair<const char *, std::uint64_t>> args;
        std::string strArg; ///< 'M' only: args:{"name": strArg}
    };

    void emitEvent(std::string &out, const Event &e) const;

    std::vector<Event> events_;
};

/**
 * A span under construction: collect args between begin and end,
 * emit one complete event on end(). Null-sink safe — every method is
 * a no-op when constructed with nullptr, so call sites need no
 * guards and tracing-off costs one pointer compare.
 */
class Span
{
  public:
    Span(TraceSink *sink, const char *cat, const char *name,
         std::uint64_t pid, std::uint64_t tid, Tick start)
        : sink_(sink), cat_(cat), name_(name), pid_(pid), tid_(tid),
          start_(start)
    {
    }

    Span &
    arg(const char *key, std::uint64_t value)
    {
        if (sink_ != nullptr)
            args_.push_back({key, value});
        return *this;
    }

    /** Emit the complete event; at most once. */
    void
    end(Tick end_at)
    {
        if (sink_ == nullptr)
            return;
        sink_->completeN(cat_, name_, pid_, tid_, start_, end_at,
                         args_.data(), args_.size());
        sink_ = nullptr;
    }

  private:
    TraceSink *sink_;
    const char *cat_;
    const char *name_;
    std::uint64_t pid_;
    std::uint64_t tid_;
    Tick start_;
    std::vector<TraceArg> args_;
};

} // namespace rssd::obs

#endif // RSSD_OBS_TRACE_HH
