/**
 * @file
 * MetricsRegistry: named counters, gauges and latency histograms
 * with one deterministic snapshotJson().
 *
 * Instruments are *sampled*, not pushed: a module registers a name
 * plus a closure that reads its live state, so registration costs
 * nothing on the hot path and a snapshot always reflects the state
 * at the moment it is taken. Registration order is the emission
 * order (stable registration order is part of the determinism
 * contract — same config, same seed, same bytes), and duplicate
 * names panic at registration time rather than silently shadowing.
 *
 * This is the instrumentation floor the per-module ad-hoc totals
 * structs grow toward: OffloadEngine, BackupCluster, RepairEngine,
 * the FleetScheduler and the forensics scanner all register their
 * instruments here (registerMetrics() methods), and callers render
 * one document via sim/json.hh.
 */

#ifndef RSSD_OBS_METRICS_HH
#define RSSD_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace rssd::obs {

class MetricsRegistry
{
  public:
    using U64Fn = std::function<std::uint64_t()>;
    using F64Fn = std::function<double()>;
    /** Sampled by value so a provider may merge several live
     *  histograms into the returned snapshot. */
    using HistFn = std::function<LatencyHistogram()>;

    /** Monotonic counter (emitted as a JSON integer). */
    void counter(const std::string &name, U64Fn sample);

    /** Point-in-time value (emitted as a JSON number). */
    void gauge(const std::string &name, F64Fn sample);

    /** Latency histogram (emitted as {count, meanNs, p50Ns, p99Ns,
     *  maxNs}). */
    void histogram(const std::string &name, HistFn sample);

    std::size_t size() const { return instruments_.size(); }

    /**
     * Sample every instrument and render one JSON document, keys in
     * registration order:
     *   {"schema":1,"metrics":{"<name>":<value>,...}}
     */
    std::string snapshotJson() const;

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct Instrument
    {
        Kind kind;
        std::string name;
        U64Fn u64;
        F64Fn f64;
        HistFn hist;
    };

    void claimName(const std::string &name);

    std::vector<Instrument> instruments_;
    std::set<std::string> names_; ///< duplicate-registration guard
};

} // namespace rssd::obs

#endif // RSSD_OBS_METRICS_HH
