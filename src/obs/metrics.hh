/**
 * @file
 * MetricsRegistry: named counters, gauges and latency histograms
 * with one deterministic snapshotJson().
 *
 * Instruments are *sampled*, not pushed: a module registers a name
 * plus a closure that reads its live state, so registration costs
 * nothing on the hot path and a snapshot always reflects the state
 * at the moment it is taken. Registration order is the emission
 * order (stable registration order is part of the determinism
 * contract — same config, same seed, same bytes), and duplicate
 * names panic at registration time rather than silently shadowing.
 *
 * This is the instrumentation floor the per-module ad-hoc totals
 * structs grow toward: OffloadEngine, BackupCluster, RepairEngine,
 * the FleetScheduler and the forensics scanner all register their
 * instruments here (registerMetrics() methods), and callers render
 * one document via sim/json.hh.
 *
 * Determinism contract (documented, not libc luck — pinned by
 * tests/obs/metrics_test.cc):
 *  - duplicate or empty instrument names panic at registration time,
 *    and the panic message names the offending instrument;
 *  - integer instruments (counters, levels, histogram summaries)
 *    render via the fixed "%llu" path;
 *  - doubles (gauges, histogram meanNs) render via the pinned
 *    "%.17g" format in sim::JsonWriter::f64() — 17 significant
 *    digits round-trip every IEEE-754 double exactly, so two
 *    identical samples always produce identical bytes.
 */

#ifndef RSSD_OBS_METRICS_HH
#define RSSD_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace rssd::obs {

/** Layout version of the snapshotJson() document. Bump in lockstep
 *  with any change to the snapshot's key set (rssd_lint rule D3
 *  pins the pair via tools/manifests/obs_metrics.keys). */
constexpr std::uint64_t kMetricsSnapshotSchema = 1;

/** The four instrument kinds a registry can hold. */
enum class InstrumentKind : std::uint8_t {
    Counter,   ///< monotonic u64 (rates may be derived)
    Level,     ///< point-in-time u64 (queue depth; no rate)
    Gauge,     ///< point-in-time double
    Histogram, ///< latency distribution snapshot
};

/**
 * One instrument's sampled value — the structured form of a
 * snapshotJson() cell, so the TimeSeriesSampler and HealthMonitor
 * can read values without parsing JSON. Exactly one of u64 / f64 /
 * hist is meaningful, per kind (u64 covers Counter and Level).
 */
struct MetricSample
{
    InstrumentKind kind = InstrumentKind::Counter;
    std::uint64_t u64 = 0;
    double f64 = 0.0;
    LatencyHistogram hist;
};

class MetricsRegistry
{
  public:
    using U64Fn = std::function<std::uint64_t()>;
    using F64Fn = std::function<double()>;
    /** Sampled by value so a provider may merge several live
     *  histograms into the returned snapshot. */
    using HistFn = std::function<LatencyHistogram()>;

    /** Monotonic counter (emitted as a JSON integer). */
    void counter(const std::string &name, U64Fn sample);

    /** Integer point-in-time value, e.g. a queue depth (emitted as
     *  a JSON integer; never rate-derived — it may go down). */
    void level(const std::string &name, U64Fn sample);

    /** Point-in-time value (emitted as a JSON number). */
    void gauge(const std::string &name, F64Fn sample);

    /** Latency histogram (emitted as {count, meanNs, p50Ns, p99Ns,
     *  maxNs}). */
    void histogram(const std::string &name, HistFn sample);

    std::size_t size() const { return instruments_.size(); }

    /** Instrument name / kind at registration index @p idx. */
    const std::string &nameAt(std::size_t idx) const;
    InstrumentKind kindAt(std::size_t idx) const;

    /** Index of instrument @p name, or npos when unregistered. */
    static constexpr std::size_t npos = ~std::size_t{0};
    std::size_t indexOf(const std::string &name) const;

    /**
     * Sample every instrument into @p out (resized to size()),
     * registration order. The structured twin of snapshotJson(),
     * shared by the TimeSeriesSampler and HealthMonitor.
     */
    void sampleInto(std::vector<MetricSample> &out) const;

    /**
     * Sample every instrument and render one JSON document, keys in
     * registration order:
     *   {"schema":1,"metrics":{"<name>":<value>,...}}
     */
    std::string snapshotJson() const;

  private:
    struct Instrument
    {
        InstrumentKind kind;
        std::string name;
        U64Fn u64;
        F64Fn f64;
        HistFn hist;
    };

    void claimName(const std::string &name);
    void addU64(InstrumentKind kind, const std::string &name,
                U64Fn sample);

    std::vector<Instrument> instruments_;
    std::set<std::string> names_; ///< duplicate-registration guard
};

} // namespace rssd::obs

#endif // RSSD_OBS_METRICS_HH
