#include "obs/metrics.hh"

#include <utility>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace rssd::obs {

void
MetricsRegistry::claimName(const std::string &name)
{
    panicIf(name.empty(), "MetricsRegistry: empty instrument name");
    panicIf(!names_.insert(name).second,
            "MetricsRegistry: duplicate instrument \"" + name + "\"");
}

void
MetricsRegistry::counter(const std::string &name, U64Fn sample)
{
    claimName(name);
    Instrument in;
    in.kind = Kind::Counter;
    in.name = name;
    in.u64 = std::move(sample);
    instruments_.push_back(std::move(in));
}

void
MetricsRegistry::gauge(const std::string &name, F64Fn sample)
{
    claimName(name);
    Instrument in;
    in.kind = Kind::Gauge;
    in.name = name;
    in.f64 = std::move(sample);
    instruments_.push_back(std::move(in));
}

void
MetricsRegistry::histogram(const std::string &name, HistFn sample)
{
    claimName(name);
    Instrument in;
    in.kind = Kind::Histogram;
    in.name = name;
    in.hist = std::move(sample);
    instruments_.push_back(std::move(in));
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::string out;
    out.reserve(64 + instruments_.size() * 48);
    sim::JsonWriter j(out);
    j.open('{');
    j.key("schema"); j.u64(1);
    j.key("metrics");
    j.open('{');
    for (const Instrument &in : instruments_) {
        j.key(in.name.c_str());
        switch (in.kind) {
          case Kind::Counter:
            j.u64(in.u64());
            break;
          case Kind::Gauge:
            j.f64(in.f64());
            break;
          case Kind::Histogram: {
            const LatencyHistogram h = in.hist();
            j.open('{');
            j.key("count"); j.u64(h.count());
            j.key("meanNs"); j.f64(h.meanNs());
            j.key("p50Ns"); j.u64(h.percentileNs(50));
            j.key("p99Ns"); j.u64(h.percentileNs(99));
            j.key("maxNs"); j.u64(h.maxNs());
            j.close('}');
            break;
          }
        }
    }
    j.close('}');
    j.close('}');
    out += '\n';
    return out;
}

} // namespace rssd::obs
