#include "obs/metrics.hh"

#include <utility>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace rssd::obs {

void
MetricsRegistry::claimName(const std::string &name)
{
    panicIf(name.empty(), "MetricsRegistry: empty instrument name");
    panicIf(!names_.insert(name).second,
            "MetricsRegistry: duplicate instrument \"" + name + "\"");
}

void
MetricsRegistry::addU64(InstrumentKind kind, const std::string &name,
                        U64Fn sample)
{
    claimName(name);
    Instrument in;
    in.kind = kind;
    in.name = name;
    in.u64 = std::move(sample);
    instruments_.push_back(std::move(in));
}

void
MetricsRegistry::counter(const std::string &name, U64Fn sample)
{
    addU64(InstrumentKind::Counter, name, std::move(sample));
}

void
MetricsRegistry::level(const std::string &name, U64Fn sample)
{
    addU64(InstrumentKind::Level, name, std::move(sample));
}

void
MetricsRegistry::gauge(const std::string &name, F64Fn sample)
{
    claimName(name);
    Instrument in;
    in.kind = InstrumentKind::Gauge;
    in.name = name;
    in.f64 = std::move(sample);
    instruments_.push_back(std::move(in));
}

void
MetricsRegistry::histogram(const std::string &name, HistFn sample)
{
    claimName(name);
    Instrument in;
    in.kind = InstrumentKind::Histogram;
    in.name = name;
    in.hist = std::move(sample);
    instruments_.push_back(std::move(in));
}

const std::string &
MetricsRegistry::nameAt(std::size_t idx) const
{
    panicIf(idx >= instruments_.size(),
            "MetricsRegistry: instrument index OOB");
    return instruments_[idx].name;
}

InstrumentKind
MetricsRegistry::kindAt(std::size_t idx) const
{
    panicIf(idx >= instruments_.size(),
            "MetricsRegistry: instrument index OOB");
    return instruments_[idx].kind;
}

std::size_t
MetricsRegistry::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < instruments_.size(); i++) {
        if (instruments_[i].name == name)
            return i;
    }
    return npos;
}

void
MetricsRegistry::sampleInto(std::vector<MetricSample> &out) const
{
    out.resize(instruments_.size());
    for (std::size_t i = 0; i < instruments_.size(); i++) {
        const Instrument &in = instruments_[i];
        MetricSample &s = out[i];
        s.kind = in.kind;
        switch (in.kind) {
          case InstrumentKind::Counter:
          case InstrumentKind::Level:
            s.u64 = in.u64();
            break;
          case InstrumentKind::Gauge:
            s.f64 = in.f64();
            break;
          case InstrumentKind::Histogram:
            s.hist = in.hist();
            break;
        }
    }
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::string out;
    out.reserve(64 + instruments_.size() * 48);
    sim::JsonWriter j(out);
    j.open('{');
    j.key("schema"); j.u64(kMetricsSnapshotSchema);
    j.key("metrics");
    j.open('{');
    for (const Instrument &in : instruments_) {
        j.key(in.name.c_str());
        switch (in.kind) {
          case InstrumentKind::Counter:
          case InstrumentKind::Level:
            j.u64(in.u64());
            break;
          case InstrumentKind::Gauge:
            j.f64(in.f64());
            break;
          case InstrumentKind::Histogram: {
            const LatencyHistogram h = in.hist();
            j.open('{');
            j.key("count"); j.u64(h.count());
            j.key("meanNs"); j.f64(h.meanNs());
            j.key("p50Ns"); j.u64(h.percentileNs(50));
            j.key("p99Ns"); j.u64(h.percentileNs(99));
            j.key("maxNs"); j.u64(h.maxNs());
            j.close('}');
            break;
          }
        }
    }
    j.close('}');
    j.close('}');
    out += '\n';
    return out;
}

} // namespace rssd::obs
