#include "obs/trace.hh"

#include "sim/json.hh"

namespace rssd::obs {

void
TraceSink::setProcessName(std::uint64_t pid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.strArg = name;
    events_.push_back(std::move(e));
}

void
TraceSink::setThreadName(std::uint64_t pid, std::uint64_t tid,
                         const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.strArg = name;
    events_.push_back(std::move(e));
}

void
TraceSink::completeN(const char *cat, const char *name,
                     std::uint64_t pid, std::uint64_t tid, Tick start,
                     Tick end, const TraceArg *args, std::size_t n)
{
    Event e;
    e.phase = 'X';
    e.cat = cat;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = start;
    e.dur = end > start ? end - start : 0;
    e.args.reserve(n);
    for (std::size_t i = 0; i < n; i++)
        e.args.push_back({args[i].key, args[i].value});
    events_.push_back(std::move(e));
}

void
TraceSink::instant(const char *cat, const char *name, std::uint64_t pid,
                   std::uint64_t tid, Tick at,
                   std::initializer_list<TraceArg> args)
{
    Event e;
    e.phase = 'i';
    e.cat = cat;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = at;
    e.args.reserve(args.size());
    for (const TraceArg &a : args)
        e.args.push_back({a.key, a.value});
    events_.push_back(std::move(e));
}

void
TraceSink::flowBegin(const char *cat, const char *name,
                     std::uint64_t flow_id, std::uint64_t pid,
                     std::uint64_t tid, Tick at)
{
    Event e;
    e.phase = 's';
    e.cat = cat;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = at;
    e.flowId = flow_id;
    events_.push_back(std::move(e));
}

void
TraceSink::flowEnd(const char *cat, const char *name,
                   std::uint64_t flow_id, std::uint64_t pid,
                   std::uint64_t tid, Tick at)
{
    Event e;
    e.phase = 'f';
    e.cat = cat;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = at;
    e.flowId = flow_id;
    events_.push_back(std::move(e));
}

void
TraceSink::emitEvent(std::string &out, const Event &e) const
{
    sim::JsonWriter j(out);
    const char ph[2] = {e.phase, '\0'};
    j.open('{');
    j.key("name"); j.str(e.name);
    if (e.phase != 'M') {
        j.key("cat"); j.str(e.cat);
    }
    j.key("ph"); j.str(ph);
    j.key("pid"); j.u64(e.pid);
    j.key("tid"); j.u64(e.tid);
    j.key("ts"); j.u64(e.ts);
    if (e.phase == 'X') {
        j.key("dur"); j.u64(e.dur);
    }
    if (e.phase == 'i') {
        j.key("s"); j.str("t");
    }
    if (e.phase == 's' || e.phase == 'f') {
        j.key("id"); j.u64(e.flowId);
        if (e.phase == 'f') {
            j.key("bp"); j.str("e");
        }
    }
    if (e.phase == 'M') {
        j.key("args");
        j.open('{');
        j.key("name"); j.str(e.strArg);
        j.close('}');
    } else if (!e.args.empty()) {
        j.key("args");
        j.open('{');
        for (const auto &[key, value] : e.args) {
            j.key(key);
            j.u64(value);
        }
        j.close('}');
    }
    j.close('}');
}

std::string
TraceSink::toChromeJson() const
{
    std::string out;
    out.reserve(128 + events_.size() * 160);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events_) {
        if (!first)
            out += ',';
        first = false;
        out += '\n';
        emitEvent(out, e);
    }
    out += "\n]}\n";
    return out;
}

std::string
TraceSink::toJsonl() const
{
    std::string out;
    out.reserve(events_.size() * 160);
    for (const Event &e : events_) {
        emitEvent(out, e);
        out += '\n';
    }
    return out;
}

} // namespace rssd::obs
