#include "obs/health.hh"

#include <utility>

#include "sim/logging.hh"

namespace rssd::obs {

const char *
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Info:
        return "info";
      case Severity::Warn:
        return "warn";
      case Severity::Critical:
        return "critical";
    }
    return "unknown";
}

HealthMonitor::HealthMonitor(const TimeSeriesSampler &sampler,
                             std::vector<HealthRule> rules)
    : sampler_(sampler), rules_(std::move(rules))
{
    const MetricsRegistry &reg = sampler_.registry();
    states_.resize(rules_.size());
    for (std::size_t i = 0; i < rules_.size(); i++) {
        const HealthRule &rule = rules_[i];
        panicIf(rule.id.empty(), "HealthMonitor: rule with empty id");
        const std::size_t idx = reg.indexOf(rule.metric);
        panicIf(idx == MetricsRegistry::npos,
                "HealthMonitor: rule \"" + rule.id +
                    "\" references unknown metric \"" + rule.metric +
                    "\"");
        const InstrumentKind kind = reg.kindAt(idx);
        panicIf(kind != InstrumentKind::Counter &&
                    kind != InstrumentKind::Level,
                "HealthMonitor: rule \"" + rule.id + "\" metric \"" +
                    rule.metric + "\" is not an integer instrument");
        panicIf(rule.signal == Signal::Rate &&
                    kind != InstrumentKind::Counter,
                "HealthMonitor: rule \"" + rule.id +
                    "\" wants a rate over non-counter \"" +
                    rule.metric + "\"");
        states_[i].metricIdx = idx;
    }
}

bool
HealthMonitor::breached(const HealthRule &rule,
                        std::uint64_t observed) const
{
    switch (rule.cmp) {
      case Cmp::Gt:
        return observed > rule.threshold;
      case Cmp::Ge:
        return observed >= rule.threshold;
      case Cmp::Lt:
        return observed < rule.threshold;
      case Cmp::Le:
        return observed <= rule.threshold;
    }
    return false;
}

void
HealthMonitor::evaluate(Tick now)
{
    panicIf(sampler_.samples() == 0,
            "HealthMonitor: evaluate() before first sample()");
    const std::vector<MetricSample> &cur = sampler_.current();

    for (std::size_t i = 0; i < rules_.size(); i++) {
        const HealthRule &rule = rules_[i];
        RuleState &st = states_[i];

        const std::uint64_t observed =
            rule.signal == Signal::Rate
                ? sampler_.ratePerSec(st.metricIdx)
                : cur[st.metricIdx].u64;

        if (breached(rule, observed)) {
            if (!st.breaching) {
                st.breaching = true;
                st.breachSince = now;
            }
            const bool held = now - st.breachSince >= rule.holdFor;
            if (held && st.openAlert == kNoAlert) {
                st.openAlert = alerts_.size();
                HealthAlert alert;
                alert.rule = i;
                alert.raisedAt = now;
                alert.observed = observed;
                alerts_.push_back(alert);
                if (trace_ != nullptr) {
                    // rules_ is fixed after construction, so the
                    // id's c_str() stays valid for the sink.
                    trace_->instant(
                        "health.raise", rule.id.c_str(), kTrackFleet,
                        i, now,
                        {{"severity",
                          static_cast<std::uint64_t>(rule.severity)},
                         {"observed", observed},
                         {"threshold", rule.threshold}});
                }
            }
        } else {
            st.breaching = false;
            if (st.openAlert != kNoAlert) {
                HealthAlert &alert = alerts_[st.openAlert];
                alert.open = false;
                alert.clearedAt = now;
                st.openAlert = kNoAlert;
                if (trace_ != nullptr) {
                    trace_->instant(
                        "health.clear", rule.id.c_str(), kTrackFleet,
                        i, now, {{"observed", observed}});
                }
            }
        }
    }
}

std::uint64_t
HealthMonitor::raisedCount(std::size_t ruleIdx) const
{
    std::uint64_t n = 0;
    for (const HealthAlert &alert : alerts_) {
        if (alert.rule == ruleIdx)
            n++;
    }
    return n;
}

std::size_t
HealthMonitor::openCount() const
{
    std::size_t n = 0;
    for (const HealthAlert &alert : alerts_) {
        if (alert.open)
            n++;
    }
    return n;
}

Severity
HealthMonitor::worstRaised() const
{
    Severity worst = Severity::Info;
    for (const HealthAlert &alert : alerts_) {
        const Severity sev = rules_[alert.rule].severity;
        if (static_cast<std::uint8_t>(sev) >
            static_cast<std::uint8_t>(worst))
            worst = sev;
    }
    return worst;
}

} // namespace rssd::obs
