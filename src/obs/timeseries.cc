#include "obs/timeseries.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace rssd::obs {

namespace {

/**
 * Δcounter over Δtick, scaled to per-second, pure integer math.
 * delta * SEC can overflow 64 bits (a byte counter moving GiB/s
 * over a long window), so the multiply runs in 128 bits; the
 * truncating division brings it back. dtick == 0 never reaches
 * here (sample() panics on non-increasing ticks).
 */
std::uint64_t
scaleRate(std::uint64_t delta, Tick dtick)
{
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(delta) *
        static_cast<unsigned __int128>(units::SEC);
    return static_cast<std::uint64_t>(wide / static_cast<unsigned __int128>(dtick));
}

} // namespace

void
TimeSeriesSampler::sample(Tick now)
{
    panicIf(samples_ > 0 && now <= lastAt_,
            "TimeSeriesSampler: non-increasing sample tick");

    // Rotate: current values become the previous window's baseline.
    prevU64_.resize(cur_.size());
    for (std::size_t i = 0; i < cur_.size(); i++)
        prevU64_[i] = cur_[i].u64;
    prevAt_ = lastAt_;

    registry_.sampleInto(cur_);
    panicIf(samples_ > 0 && prevU64_.size() != cur_.size(),
            "TimeSeriesSampler: registry grew after first sample");

    const bool haveWindow = samples_ > 0;
    const Tick dtick = haveWindow ? now - prevAt_ : 0;

    sim::JsonWriter j(out_);
    j.open('{');
    j.key("schema"); j.u64(kTimeSeriesSchema);
    j.key("tick"); j.u64(now);
    j.key("seq"); j.u64(samples_);
    j.key("metrics");
    j.open('{');
    for (std::size_t i = 0; i < cur_.size(); i++) {
        const MetricSample &s = cur_[i];
        j.key(registry_.nameAt(i).c_str());
        switch (s.kind) {
          case InstrumentKind::Counter:
          case InstrumentKind::Level:
            j.u64(s.u64);
            break;
          case InstrumentKind::Gauge:
            j.f64(s.f64);
            break;
          case InstrumentKind::Histogram:
            j.open('{');
            j.key("count"); j.u64(s.hist.count());
            j.key("meanNs"); j.f64(s.hist.meanNs());
            j.key("p50Ns"); j.u64(s.hist.percentileNs(50));
            j.key("p99Ns"); j.u64(s.hist.percentileNs(99));
            j.key("maxNs"); j.u64(s.hist.maxNs());
            j.close('}');
            break;
        }
    }
    j.close('}');
    j.key("rates");
    j.open('{');
    for (std::size_t i = 0; i < cur_.size(); i++) {
        if (cur_[i].kind != InstrumentKind::Counter)
            continue;
        j.key(registry_.nameAt(i).c_str());
        if (!haveWindow || cur_[i].u64 < prevU64_[i]) {
            j.u64(0);
        } else {
            j.u64(scaleRate(cur_[i].u64 - prevU64_[i], dtick));
        }
    }
    j.close('}');
    j.close('}');
    out_ += '\n';

    lastAt_ = now;
    samples_++;
}

std::uint64_t
TimeSeriesSampler::ratePerSec(std::size_t idx) const
{
    if (samples_ < 2 || idx >= cur_.size())
        return 0;
    if (cur_[idx].kind != InstrumentKind::Counter)
        return 0;
    if (cur_[idx].u64 < prevU64_[idx])
        return 0;
    const Tick dtick = lastAt_ - prevAt_;
    if (dtick == 0)
        return 0;
    return scaleRate(cur_[idx].u64 - prevU64_[idx], dtick);
}

} // namespace rssd::obs
