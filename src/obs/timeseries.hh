/**
 * @file
 * TimeSeriesSampler: periodic, deterministic time-series telemetry
 * over a MetricsRegistry.
 *
 * The PR 8 registry answers "what are the totals now?" — one
 * snapshot, usually at end of run. That hides every transient: a
 * quorum stall that resolves, a repair-debt spike the engine pays
 * down, a shard backlog that grows for a simulated hour and then
 * drains. The sampler turns the same instruments into a trajectory:
 * the fleet spine calls sample(now) every healthInterval of *sim*
 * time, and each call appends one JSONL row
 *
 *   {"schema":1,"tick":<Tick>,"seq":<n>,
 *    "metrics":{<name>:<value>,...},
 *    "rates":{<counter name>:<perSec>,...}}
 *
 * with keys in registration order. Rates are windowed derived
 * quantities, Δcounter over Δtick scaled to per-second, computed in
 * pure integer arithmetic (128-bit intermediate, truncating
 * division) — no floating point touches the row except gauges and
 * histogram means, which render via the pinned %.17g path. Same
 * seed + config => byte-identical file; CI cmp-gates two runs.
 *
 * Rates exist only for Counter instruments. A counter that moves
 * backwards between samples (a semantic bug in the provider) rates
 * as 0 rather than underflowing; Level instruments (queue depths)
 * are emitted as plain integers and never rate-derived.
 */

#ifndef RSSD_OBS_TIMESERIES_HH
#define RSSD_OBS_TIMESERIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "sim/units.hh"

namespace rssd::obs {

/** Layout version of the time-series JSONL row. Bump in lockstep
 *  with any change to the row's key set (rssd_lint rule D3 pins the
 *  pair via tools/manifests/obs_timeseries.keys). */
constexpr std::uint64_t kTimeSeriesSchema = 1;

class TimeSeriesSampler
{
  public:
    /** @p registry must outlive the sampler and must not register
     *  further instruments after the first sample() call. */
    explicit TimeSeriesSampler(const MetricsRegistry &registry)
        : registry_(registry)
    {
    }

    /**
     * Sample every instrument at sim time @p now and append one
     * JSONL row. Calls must carry strictly increasing ticks (the
     * DES spine guarantees it; a repeated tick panics — it would
     * make the rate window zero-width).
     */
    void sample(Tick now);

    std::uint64_t samples() const { return samples_; }
    Tick lastSampleAt() const { return lastAt_; }

    /** The accumulated JSONL document (one row per sample()). */
    const std::string &jsonl() const { return out_; }

    /** Most recent sampled values, registration order (empty before
     *  the first sample()). */
    const std::vector<MetricSample> &current() const { return cur_; }

    /**
     * Windowed rate of counter @p idx over the last sample window,
     * in events (or bytes, etc.) per second, integer-truncated.
     * Zero before the second sample and for non-Counter kinds.
     */
    std::uint64_t ratePerSec(std::size_t idx) const;

    const MetricsRegistry &registry() const { return registry_; }

  private:
    const MetricsRegistry &registry_;
    std::vector<MetricSample> cur_;
    std::vector<std::uint64_t> prevU64_;
    Tick prevAt_ = 0;
    Tick lastAt_ = 0;
    std::uint64_t samples_ = 0;
    std::string out_;
};

} // namespace rssd::obs

#endif // RSSD_OBS_TIMESERIES_HH
