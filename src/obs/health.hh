/**
 * @file
 * HealthMonitor: declarative SLO rules over the time-series sampler,
 * raising edge-triggered structured alerts.
 *
 * A HealthRule names one registry instrument, a predicate over its
 * sampled value (or its windowed per-second rate, for counters), a
 * debounce hold (the condition must persist for @c forMs of sim time
 * before an alert raises — one noisy sample is not an incident) and
 * a severity. The monitor is evaluated right after every
 * TimeSeriesSampler::sample() on the DES spine:
 *
 *   breach starts  -> remember when
 *   breach persists past forMs -> RAISE (once; edge-triggered)
 *   breach ends    -> CLEAR the open alert (once)
 *
 * Alerts carry the raise/clear ticks, the rule id and the observed
 * value at raise, are mirrored into the trace as instant events on
 * the fleet track (cat "health.raise"/"health.clear"), counted per
 * rule, and summarized in the FleetReport `health` block. Everything
 * is integer state driven by sim ticks, so the alert sequence is as
 * deterministic as the report itself.
 *
 * Rules bind to instruments by name at construction; a rule naming
 * an unregistered metric, or asking for a Rate over a non-counter,
 * panics immediately — a silently-dead SLO rule is worse than none.
 */

#ifndef RSSD_OBS_HEALTH_HH
#define RSSD_OBS_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/units.hh"

namespace rssd::obs {

enum class Severity : std::uint8_t { Info = 0, Warn = 1, Critical = 2 };

/** Fixed lowercase name, used in JSON and trace args. */
const char *severityName(Severity sev);

/** What a rule evaluates each sample. */
enum class Signal : std::uint8_t {
    Value, ///< the instrument's current u64 (Counter or Level)
    Rate,  ///< windowed per-second rate (Counter only)
};

enum class Cmp : std::uint8_t { Gt, Ge, Lt, Le };

struct HealthRule
{
    std::string id;     ///< stable rule name, e.g. "repair_debt"
    std::string metric; ///< registry instrument to watch
    Signal signal = Signal::Value;
    Cmp cmp = Cmp::Gt;
    std::uint64_t threshold = 0;
    Tick holdFor = 0; ///< breach must persist this long to raise
    Severity severity = Severity::Warn;
};

/** One raise(/clear) episode of a rule. */
struct HealthAlert
{
    std::size_t rule = 0; ///< index into rules()
    Tick raisedAt = 0;
    Tick clearedAt = 0; ///< meaningful only when !open
    bool open = true;
    std::uint64_t observed = 0; ///< value that crossed the threshold
};

class HealthMonitor
{
  public:
    /**
     * Bind @p rules against @p sampler's registry. Panics if a rule
     * names an unknown metric or a Rate over a non-Counter.
     * @p sampler must outlive the monitor.
     */
    HealthMonitor(const TimeSeriesSampler &sampler,
                  std::vector<HealthRule> rules);

    /** Mirror raises/clears into @p sink (nullptr detaches). */
    void attachTrace(TraceSink *sink) { trace_ = sink; }

    /** Evaluate every rule against the sampler's current sample.
     *  Call once per sample(), with the same tick. */
    void evaluate(Tick now);

    const std::vector<HealthRule> &rules() const { return rules_; }
    const std::vector<HealthAlert> &alerts() const { return alerts_; }

    /** Total raises of rule @p ruleIdx so far. */
    std::uint64_t raisedCount(std::size_t ruleIdx) const;

    /** Alerts still open (breach never ended). */
    std::size_t openCount() const;

    /** Highest severity among rules with any raise (Info if none). */
    Severity worstRaised() const;

  private:
    struct RuleState
    {
        std::size_t metricIdx = 0;
        bool breaching = false;
        Tick breachSince = 0;
        std::size_t openAlert = kNoAlert;
    };
    static constexpr std::size_t kNoAlert = ~std::size_t{0};

    bool breached(const HealthRule &rule, std::uint64_t observed) const;

    const TimeSeriesSampler &sampler_;
    std::vector<HealthRule> rules_;
    std::vector<RuleState> states_;
    std::vector<HealthAlert> alerts_;
    TraceSink *trace_ = nullptr;
};

} // namespace rssd::obs

#endif // RSSD_OBS_HEALTH_HH
