#include "ftl/ftl.hh"

#include <algorithm>
#include <limits>

namespace rssd::ftl {

PageMappedFtl::PageMappedFtl(const FtlConfig &config, VirtualClock &clock,
                             FtlPolicy *policy)
    : config_(config),
      clock_(clock),
      policy_(policy),
      nand_(config.geometry, config.latency)
{
    const auto &geom = config_.geometry;
    if (config_.opFraction <= 0.0 || config_.opFraction >= 0.9)
        fatal("FTL over-provisioning fraction must be in (0, 0.9)");
    if (config_.gcHighWater < config_.gcLowWater)
        fatal("FTL gcHighWater < gcLowWater");

    logicalPages_ = static_cast<std::uint64_t>(
        static_cast<double>(geom.totalPages()) *
        (1.0 - config_.opFraction));
    panicIf(logicalPages_ == 0, "FTL: zero logical pages");

    map_.assign(logicalPages_, kInvalidPpa);
    valid_.assign(geom.totalPages(), false);
    held_.assign(geom.totalPages(), false);
    blocks_.assign(geom.totalBlocks(), BlockInfo());

    freeBlocks_.reserve(geom.totalBlocks());
    // Push in reverse so block 0 is allocated first (cosmetic only).
    for (BlockId b = geom.totalBlocks(); b-- > 0;)
        freeBlocks_.push_back(b);
}

void
PageMappedFtl::checkLpa(Lpa lpa) const
{
    panicIf(lpa >= logicalPages_, "FTL: lpa out of range");
}

std::optional<BlockId>
PageMappedFtl::takeFreeBlock()
{
    if (freeBlocks_.empty())
        return std::nullopt;
    // Wear-aware allocation: take the free block with the lowest
    // erase count, breaking ties FIFO (oldest free first) so equal-
    // wear blocks rotate instead of ping-ponging. Linear scan: the
    // pool is small in steady state.
    std::size_t best = 0;
    std::uint32_t best_wear = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < freeBlocks_.size(); i++) {
        const std::uint32_t wear = nand_.eraseCount(freeBlocks_[i]);
        if (wear < best_wear) {
            best_wear = wear;
            best = i;
        }
    }
    const BlockId blk = freeBlocks_[best];
    freeBlocks_.erase(freeBlocks_.begin() +
                      static_cast<std::ptrdiff_t>(best));
    return blk;
}

std::optional<Ppa>
PageMappedFtl::allocatePage(Frontier &frontier, Tick now)
{
    // GC keeps the pool above the low-water mark; host allocations
    // trigger it. (GC's own allocations must not recurse.)
    if (!inGc_ && freeBlocks_.size() <= config_.gcLowWater)
        collectGarbage(now);

    if (frontier.open) {
        BlockInfo &info = blocks_[frontier.block];
        if (info.writePtr >= config_.geometry.pagesPerBlock) {
            info.state = BlockState::Sealed;
            frontier.open = false;
        }
    }

    if (!frontier.open) {
        const auto blk = takeFreeBlock();
        if (!blk)
            return std::nullopt;
        frontier.block = *blk;
        frontier.open = true;
        BlockInfo &info = blocks_[*blk];
        info.state = BlockState::Open;
        info.writePtr = 0;
        info.validCount = 0;
        info.heldCount = 0;
    }

    BlockInfo &info = blocks_[frontier.block];
    const Ppa ppa =
        config_.geometry.firstPpaOf(frontier.block) + info.writePtr;
    info.writePtr++;
    return ppa;
}

void
PageMappedFtl::invalidate(Lpa lpa, Ppa ppa, InvalidateCause cause,
                          Tick now)
{
    panicIf(!valid_[ppa], "FTL: invalidating a non-valid page");
    valid_[ppa] = false;
    validPages_--;
    blocks_[config_.geometry.blockOf(ppa)].validCount--;

    RetainVerdict verdict = RetainVerdict::Discard;
    if (policy_)
        verdict = policy_->onInvalidate(lpa, ppa, nand_.oob(ppa), cause,
                                        now);
    if (verdict == RetainVerdict::Hold) {
        held_[ppa] = true;
        heldPages_++;
        blocks_[config_.geometry.blockOf(ppa)].heldCount++;
    }
}

IoResult
PageMappedFtl::write(Lpa lpa, const Bytes &content, Tick now)
{
    checkLpa(lpa);

    const auto ppa = allocatePage(hostFrontier_, now);
    if (!ppa) {
        stats_.stallEvents++;
        return {Status::NoSpace, now};
    }

    // Invalidate the old mapping only after the allocation succeeded,
    // so a stalled write leaves the device state untouched.
    const Ppa old = map_[lpa];
    if (old != kInvalidPpa)
        invalidate(lpa, old, InvalidateCause::HostOverwrite, now);

    flash::Oob oob;
    oob.lpa = lpa;
    oob.seq = seq_++;
    oob.writeTick = now;
    const Tick done = nand_.program(*ppa, oob, content, now);

    map_[lpa] = *ppa;
    valid_[*ppa] = true;
    validPages_++;
    blocks_[config_.geometry.blockOf(*ppa)].validCount++;

    stats_.hostWrites++;
    return {Status::Ok, done};
}

IoResult
PageMappedFtl::read(Lpa lpa, Tick now)
{
    checkLpa(lpa);
    const Ppa ppa = map_[lpa];
    if (ppa == kInvalidPpa) {
        // Unwritten/trimmed LBAs read as zeros with controller-only
        // latency, as on real NVMe devices.
        lastRead_.clear();
        return {Status::Unmapped, now + 5 * units::US};
    }
    const Tick done = nand_.read(ppa, now);
    lastRead_ = nand_.content(ppa);
    stats_.hostReads++;
    return {Status::Ok, done};
}

IoResult
PageMappedFtl::trim(Lpa lpa, Tick now)
{
    checkLpa(lpa);
    stats_.hostTrims++;
    const Ppa ppa = map_[lpa];
    if (ppa == kInvalidPpa)
        return {Status::Ok, now + 2 * units::US}; // no-op trim

    invalidate(lpa, ppa, InvalidateCause::HostTrim, now);
    map_[lpa] = kInvalidPpa;
    return {Status::Ok, now + 5 * units::US};
}

void
PageMappedFtl::releaseHeld(Ppa ppa)
{
    panicIf(ppa >= config_.geometry.totalPages(),
            "releaseHeld: ppa OOB");
    panicIf(!held_[ppa], "releaseHeld: page is not held");
    held_[ppa] = false;
    heldPages_--;
    blocks_[config_.geometry.blockOf(ppa)].heldCount--;
}

Tick
PageMappedFtl::readPhysical(Ppa ppa, Tick now)
{
    // Offload data-path reads run at background priority: they slot
    // into idle channel time and never delay host I/O.
    return nand_.read(ppa, now, /*background=*/true);
}

bool
PageMappedFtl::isHeld(Ppa ppa) const
{
    panicIf(ppa >= config_.geometry.totalPages(), "isHeld: ppa OOB");
    return held_[ppa];
}

bool
PageMappedFtl::isValid(Ppa ppa) const
{
    panicIf(ppa >= config_.geometry.totalPages(), "isValid: ppa OOB");
    return valid_[ppa];
}

Ppa
PageMappedFtl::mappingOf(Lpa lpa) const
{
    checkLpa(lpa);
    return map_[lpa];
}

std::uint64_t
PageMappedFtl::reclaimablePages() const
{
    const auto &geom = config_.geometry;
    std::uint64_t freePages =
        freeBlocks_.size() * geom.pagesPerBlock;
    for (BlockId b = 0; b < geom.totalBlocks(); b++) {
        const BlockInfo &info = blocks_[b];
        if (info.state == BlockState::Free)
            continue;
        const std::uint32_t written =
            info.state == BlockState::Sealed ? geom.pagesPerBlock
                                             : info.writePtr;
        freePages += written - info.validCount - info.heldCount;
        if (info.state == BlockState::Open)
            freePages += geom.pagesPerBlock - info.writePtr;
    }
    return freePages;
}

std::uint32_t
PageMappedFtl::garbageIn(BlockId blk) const
{
    const BlockInfo &info = blocks_[blk];
    if (info.state != BlockState::Sealed)
        return 0;
    return config_.geometry.pagesPerBlock - info.validCount -
           info.heldCount;
}

std::optional<Ppa>
PageMappedFtl::relocatePage(Ppa from, Tick now)
{
    const auto to = allocatePage(gcFrontier_, now);
    if (!to)
        return std::nullopt;

    // Preserve the original OOB: the page keeps its identity (LPA,
    // sequence number, write time) across physical moves, which the
    // retention log depends on.
    const flash::Oob oob = nand_.oob(from);
    const Bytes content = nand_.content(from);
    nand_.read(from, now);
    const Tick done = nand_.program(*to, oob, content, now);
    clock_.advanceTo(done);
    return to;
}

bool
PageMappedFtl::collectGarbage(Tick now)
{
    inGc_ = true;
    bool reclaimed_any = false;
    const auto &geom = config_.geometry;

    while (freeBlocks_.size() < config_.gcHighWater) {
        // Greedy victim: the sealed block with the most reclaimable
        // garbage. Blocks whose garbage is all held score zero and
        // are never chosen — GC cannot erase retained data. The scan
        // starts at a rotating position so equal-garbage blocks are
        // reclaimed round-robin instead of starving high block ids.
        BlockId victim = ~0ull;
        std::uint32_t best_garbage = 0;
        for (BlockId i = 0; i < geom.totalBlocks(); i++) {
            const BlockId b = (gcScanPos_ + i) % geom.totalBlocks();
            const std::uint32_t g = garbageIn(b);
            if (g > best_garbage) {
                best_garbage = g;
                victim = b;
            }
        }
        if (victim == ~0ull)
            break; // no reclaimable garbage anywhere: backpressure
        gcScanPos_ = (victim + 1) % geom.totalBlocks();

        if (!migrateBlock(victim, now))
            break; // out of space mid-move; extremely full device
        reclaimed_any = true;
    }

    inGc_ = false;
    maybeLevelWear(now);
    return reclaimed_any;
}

bool
PageMappedFtl::migrateBlock(BlockId blk, Tick now)
{
    const auto &geom = config_.geometry;
    const Ppa first = geom.firstPpaOf(blk);
    for (std::uint32_t i = 0; i < geom.pagesPerBlock; i++) {
        const Ppa ppa = first + i;
        if (valid_[ppa]) {
            const auto to = relocatePage(ppa, now);
            if (!to)
                return false;
            const Lpa lpa = nand_.oob(ppa).lpa;
            map_[lpa] = *to;
            valid_[ppa] = false;
            valid_[*to] = true;
            blocks_[blk].validCount--;
            blocks_[geom.blockOf(*to)].validCount++;
            stats_.gcValidMoves++;
        } else if (held_[ppa]) {
            const auto to = relocatePage(ppa, now);
            if (!to)
                return false;
            held_[ppa] = false;
            held_[*to] = true;
            blocks_[blk].heldCount--;
            blocks_[geom.blockOf(*to)].heldCount++;
            if (policy_)
                policy_->onHeldRelocated(ppa, *to);
            stats_.gcHeldMoves++;
        } else if (nand_.state(ppa) == flash::PageState::Programmed) {
            if (policy_)
                policy_->onDiscarded(ppa);
            stats_.discards++;
        }
    }

    const Tick done = nand_.eraseBlock(blk, now);
    clock_.advanceTo(done);
    blocks_[blk] = BlockInfo();
    freeBlocks_.push_back(blk);
    stats_.gcErases++;
    return true;
}

void
PageMappedFtl::maybeLevelWear(Tick now)
{
    if (config_.wearLevelGap == 0 || inGc_)
        return;
    const auto &geom = config_.geometry;

    // Find the coldest data-holding sealed block and the global wear
    // extremes. Linear scan, run only after GC activity.
    BlockId coldest = ~0ull;
    std::uint32_t min_wear = ~0u, max_wear = 0, coldest_wear = ~0u;
    for (BlockId b = 0; b < geom.totalBlocks(); b++) {
        const std::uint32_t wear = nand_.eraseCount(b);
        min_wear = std::min(min_wear, wear);
        max_wear = std::max(max_wear, wear);
        if (blocks_[b].state == BlockState::Sealed &&
            blocks_[b].validCount > 0 && wear < coldest_wear) {
            coldest_wear = wear;
            coldest = b;
        }
    }
    if (max_wear - min_wear <= config_.wearLevelGap ||
        coldest == ~0ull) {
        return;
    }
    // Only migrating a genuinely cold block helps: its wear must sit
    // near the bottom of the distribution.
    if (coldest_wear > min_wear + config_.wearLevelGap / 4)
        return;

    inGc_ = true;
    if (migrateBlock(coldest, now))
        stats_.wearMigrations++;
    inGc_ = false;
}

} // namespace rssd::ftl
