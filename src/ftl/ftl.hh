/**
 * @file
 * Page-mapped flash translation layer (FTL).
 *
 * This is the SSD firmware substrate the paper's defenses live in. It
 * provides:
 *   - logical-to-physical page mapping with OOB reverse maps,
 *   - greedy garbage collection with wear-aware block allocation,
 *   - TRIM handling,
 *   - *retention holds*: an invalidated physical page may be marked
 *     "held", in which case GC may relocate it but never discard it.
 *
 * Holds are the mechanism behind RSSD's conservative retention of
 * stale data (docs/ARCHITECTURE.md: zero data loss): the RSSD policy holds every
 * invalidated page until its content has been offloaded over NVMe-oE;
 * baseline policies hold nothing (LocalSSD) or hold with a local
 * drop-when-full rule (FlashGuard-like).
 *
 * A configured FtlPolicy observes invalidations, trims, relocations
 * and discards, and decides whether each invalidated page is held.
 */

#ifndef RSSD_FTL_FTL_HH
#define RSSD_FTL_FTL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "flash/nand.hh"
#include "sim/clock.hh"

namespace rssd::ftl {

using flash::BlockId;
using flash::Bytes;
using flash::Lpa;
using flash::Ppa;
using flash::kInvalidLpa;
using flash::kInvalidPpa;

/** Why a page was invalidated. */
enum class InvalidateCause : std::uint8_t {
    HostOverwrite, ///< a host write replaced the mapping
    HostTrim,      ///< a TRIM command dropped the mapping
};

/** Verdict a policy returns for an invalidated page. */
enum class RetainVerdict : std::uint8_t {
    Discard, ///< plain garbage; GC may erase it
    Hold,    ///< retain: GC may move it but must not erase it
};

/**
 * Observer/decider interface for retention behaviour. The default
 * implementation is the undefended "LocalSSD": discard everything.
 */
class FtlPolicy
{
  public:
    virtual ~FtlPolicy() = default;

    /**
     * A host operation invalidated @p old_ppa, which held @p lpa.
     * @param oob the invalidated page's metadata (seq, write time)
     * @return whether the FTL must hold the page.
     */
    virtual RetainVerdict
    onInvalidate(Lpa lpa, Ppa old_ppa, const flash::Oob &oob,
                 InvalidateCause cause, Tick now)
    {
        (void)lpa; (void)old_ppa; (void)oob; (void)cause; (void)now;
        return RetainVerdict::Discard;
    }

    /** GC physically relocated a *held* page from @p from to @p to. */
    virtual void onHeldRelocated(Ppa from, Ppa to)
    {
        (void)from; (void)to;
    }

    /** GC physically erased a non-held invalid page. */
    virtual void onDiscarded(Ppa ppa) { (void)ppa; }
};

/** Completion status of a host operation. */
enum class Status : std::uint8_t {
    Ok,
    Unmapped, ///< read of an LBA with no mapping (returns zeros)
    NoSpace,  ///< write cannot proceed: garbage is all held
};

/** Result of a host operation: status plus completion time. */
struct IoResult
{
    Status status;
    Tick completeAt;

    bool ok() const { return status == Status::Ok; }
};

/** FTL configuration. */
struct FtlConfig
{
    flash::Geometry geometry;
    flash::LatencyModel latency;

    /** Fraction of physical space reserved as over-provisioning. */
    double opFraction = 0.07;

    /** Run GC when the free-block pool drops to this size. */
    std::uint32_t gcLowWater = 4;

    /** GC until the pool recovers to this size (or no progress). */
    std::uint32_t gcHighWater = 8;

    /**
     * Static wear leveling: when the erase-count gap between the
     * most- and least-worn blocks exceeds this, migrate the coldest
     * (least-worn, data-holding) block so its block re-enters
     * circulation. 0 disables.
     */
    std::uint32_t wearLevelGap = 64;
};

/** Operation counters for write-amplification and wear accounting. */
struct FtlStats
{
    std::uint64_t hostReads = 0;
    std::uint64_t hostWrites = 0;
    std::uint64_t hostTrims = 0;
    std::uint64_t gcValidMoves = 0; ///< live pages copied by GC
    std::uint64_t gcHeldMoves = 0;  ///< held (retained) pages copied
    std::uint64_t gcErases = 0;
    std::uint64_t wearMigrations = 0; ///< static wear-level moves
    std::uint64_t discards = 0;     ///< invalid pages physically freed
    std::uint64_t stallEvents = 0;  ///< writes that returned NoSpace

    /** Write amplification factor. */
    double
    waf() const
    {
        if (hostWrites == 0)
            return 1.0;
        return static_cast<double>(hostWrites + gcValidMoves +
                                   gcHeldMoves) /
               static_cast<double>(hostWrites);
    }
};

/**
 * The page-mapped FTL. Single write frontier for host data and a
 * separate frontier for GC copies (hot/cold separation).
 */
class PageMappedFtl
{
  public:
    /**
     * @param config  geometry, latency, OP and GC parameters
     * @param clock   shared experiment clock (not owned)
     * @param policy  retention policy (not owned; may be nullptr for
     *                pure LocalSSD behaviour)
     */
    PageMappedFtl(const FtlConfig &config, VirtualClock &clock,
                  FtlPolicy *policy = nullptr);

    /** Replace the policy (used when wiring RSSD's core after
     *  construction). */
    void setPolicy(FtlPolicy *policy) { policy_ = policy; }

    // -- Host interface ------------------------------------------------

    /**
     * Write one logical page. @p content may be empty for
     * address-only experiments.
     */
    IoResult write(Lpa lpa, const Bytes &content, Tick now);

    /** Read one logical page; content via lastReadContent(). */
    IoResult read(Lpa lpa, Tick now);

    /** TRIM one logical page. */
    IoResult trim(Lpa lpa, Tick now);

    /** Content of the most recent successful read. */
    const Bytes &lastReadContent() const { return lastRead_; }

    // -- Retention interface (used by policies / RSSD core) -------------

    /**
     * Release a hold placed by the policy; the page becomes plain
     * garbage that GC may discard.
     */
    void releaseHeld(Ppa ppa);

    /** Read a physical page directly (offload engine data path). */
    Tick readPhysical(Ppa ppa, Tick now);

    /** Whether @p ppa currently carries a hold. */
    bool isHeld(Ppa ppa) const;

    /** Whether @p ppa is the currently mapped (valid) page of its LPA. */
    bool isValid(Ppa ppa) const;

    // -- Introspection ---------------------------------------------------

    /** Exported logical capacity in pages. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /** Current physical page of @p lpa, or kInvalidPpa. */
    Ppa mappingOf(Lpa lpa) const;

    std::uint64_t freeBlockCount() const { return freeBlocks_.size(); }
    std::uint64_t heldPageCount() const { return heldPages_; }
    std::uint64_t validPageCount() const { return validPages_; }

    /**
     * Physical pages that could still accept writes if all holds were
     * released: free pages plus discardable garbage.
     */
    std::uint64_t reclaimablePages() const;

    const FtlStats &stats() const { return stats_; }
    const flash::NandFlash &nand() const { return nand_; }
    flash::NandFlash &nand() { return nand_; }
    const FtlConfig &config() const { return config_; }

  private:
    /** Block lifecycle states. */
    enum class BlockState : std::uint8_t { Free, Open, Sealed };

    /** Per-block bookkeeping. */
    struct BlockInfo
    {
        BlockState state = BlockState::Free;
        std::uint32_t validCount = 0;
        std::uint32_t heldCount = 0;
        std::uint32_t writePtr = 0; ///< next page to program
    };

    /** A write frontier (host or GC). */
    struct Frontier
    {
        BlockId block = ~0ull;
        bool open = false;
    };

    /** Allocate the next physical page on a frontier. */
    std::optional<Ppa> allocatePage(Frontier &frontier, Tick now);

    /** Take the lowest-wear block from the free pool. */
    std::optional<BlockId> takeFreeBlock();

    /** Invalidate @p ppa (currently mapping @p lpa). */
    void invalidate(Lpa lpa, Ppa ppa, InvalidateCause cause, Tick now);

    /** Run GC until the high-water mark or no further progress.
     *  @return true if at least one block was reclaimed. */
    bool collectGarbage(Tick now);

    /**
     * Static wear leveling: if the wear gap exceeds the configured
     * bound, migrate the contents of the least-worn sealed block and
     * erase it, putting the cold block back into rotation.
     */
    void maybeLevelWear(Tick now);

    /** Migrate every movable page out of @p blk, then erase it. */
    bool migrateBlock(BlockId blk, Tick now);

    /** Reclaimable garbage in a sealed block. */
    std::uint32_t garbageIn(BlockId blk) const;

    /** Move (valid or held) page @p from to the GC frontier. */
    std::optional<Ppa> relocatePage(Ppa from, Tick now);

    void checkLpa(Lpa lpa) const;

    FtlConfig config_;
    VirtualClock &clock_;
    FtlPolicy *policy_;
    flash::NandFlash nand_;

    std::uint64_t logicalPages_;
    std::vector<Ppa> map_;
    std::vector<bool> valid_;
    std::vector<bool> held_;
    std::vector<BlockInfo> blocks_;
    std::vector<BlockId> freeBlocks_;

    Frontier hostFrontier_;
    Frontier gcFrontier_;

    std::uint64_t seq_ = 0;
    std::uint64_t heldPages_ = 0;
    std::uint64_t validPages_ = 0;

    FtlStats stats_;
    Bytes lastRead_;
    bool inGc_ = false;
    BlockId gcScanPos_ = 0; ///< rotating GC victim scan start
};

} // namespace rssd::ftl

#endif // RSSD_FTL_FTL_HH
