#include "fleet/report.hh"

#include "sim/json.hh"

namespace rssd::fleet {
namespace {

using sim::JsonWriter;

void
emitDevice(JsonWriter &j, const DeviceReport &d)
{
    j.open('{');
    j.key("device"); j.u64(d.device);
    j.key("shard"); j.u64(d.shard);
    j.key("replicas");
    j.open('[');
    for (const remote::ShardId r : d.replicas) {
        j.elem();
        j.u64(r);
    }
    j.close(']');
    j.key("replicasLive"); j.u64(d.replicasLive);
    j.key("quarantinedCopies"); j.u64(d.quarantinedCopies);
    j.key("role"); j.str(d.role);
    j.key("attackStart"); j.u64(d.attackStart);
    j.key("attack");
    j.open('{');
    j.key("name"); j.str(d.attack.attack);
    j.key("pagesEncrypted"); j.u64(d.attack.pagesEncrypted);
    j.key("pagesTrimmed"); j.u64(d.attack.pagesTrimmed);
    j.key("junkPagesWritten"); j.u64(d.attack.junkPagesWritten);
    j.key("writeErrors"); j.u64(d.attack.writeErrors);
    j.key("startedAt"); j.u64(d.attack.startedAt);
    j.key("finishedAt"); j.u64(d.attack.finishedAt);
    j.close('}');
    j.key("victimIntact"); j.f64(d.victimIntact);
    j.key("alarms"); j.u64(d.alarms);
    j.key("firstAlarmDetector"); j.str(d.firstAlarmDetector);
    j.key("firstAlarmAt"); j.u64(d.firstAlarmAt);
    j.key("benignOps"); j.u64(d.benignOps);
    j.key("loggedWrites"); j.u64(d.rssd.loggedWrites);
    j.key("loggedTrims"); j.u64(d.rssd.loggedTrims);
    j.key("backpressureStalls"); j.u64(d.rssd.backpressureStalls);
    j.key("deviceFullErrors"); j.u64(d.rssd.deviceFullErrors);
    j.key("segmentsSealed"); j.u64(d.offload.segmentsSealed);
    j.key("segmentsAccepted"); j.u64(d.offload.segmentsAccepted);
    j.key("remoteRejects"); j.u64(d.offload.remoteRejects);
    j.key("parks"); j.u64(d.offload.parks);
    j.key("resubmits"); j.u64(d.offload.resubmits);
    j.key("pagesOffloaded"); j.u64(d.offload.pagesOffloaded);
    j.key("entriesOffloaded"); j.u64(d.offload.entriesOffloaded);
    j.key("bytesRaw"); j.u64(d.offload.bytesRaw);
    j.key("bytesSealed"); j.u64(d.offload.bytesSealed);
    j.key("retransmits"); j.u64(d.transport.retransmits);
    j.key("wireBytes"); j.u64(d.transport.bytesSent);
    j.key("finishedAt"); j.u64(d.finishedAt);
    j.close('}');
}

void
emitShard(JsonWriter &j, const ShardReport &s)
{
    j.open('{');
    j.key("shard"); j.u64(s.shard);
    j.key("status"); j.str(s.status);
    j.key("devices"); j.u64(s.devices);
    j.key("segmentsAccepted"); j.u64(s.segmentsAccepted);
    j.key("segmentsRejected"); j.u64(s.segmentsRejected);
    j.key("duplicates"); j.u64(s.duplicates);
    j.key("rejectedBytes"); j.u64(s.rejectedBytes);
    j.key("batches"); j.u64(s.batches);
    j.key("meanBatchSegments"); j.f64(s.meanBatchSegments);
    j.key("maxBatchFill"); j.u64(s.maxBatchFill);
    j.key("backpressureStalls"); j.u64(s.backpressureStalls);
    j.key("backlogP50Ns"); j.u64(s.backlogP50);
    j.key("backlogP99Ns"); j.u64(s.backlogP99);
    j.key("usedBytes"); j.u64(s.usedBytes);
    j.key("capacityBytes"); j.u64(s.capacityBytes);
    j.key("segmentsPruned"); j.u64(s.segmentsPruned);
    j.key("bytesPruned"); j.u64(s.bytesPruned);
    j.key("heldStreams"); j.u64(s.heldStreams);
    j.key("quarantined"); j.u64(s.quarantined);
    j.key("chainOk"); j.boolean(s.chainOk);
    j.close('}');
}

void
emitLatencyStage(JsonWriter &j, const char *name,
                 const LatencyHistogram &h)
{
    j.key(name);
    j.open('{');
    j.key("count"); j.u64(h.count());
    j.key("p50Ns"); j.u64(h.count() > 0 ? h.percentileNs(50) : 0);
    j.key("p99Ns"); j.u64(h.count() > 0 ? h.percentileNs(99) : 0);
    j.key("maxNs"); j.u64(h.maxNs());
    j.close('}');
}

} // namespace

std::string
FleetReport::toJson() const
{
    std::string out;
    out.reserve(4096 + deviceReports.size() * 1024);
    JsonWriter j(out);

    j.open('{');
    j.key("schema"); j.u64(kFleetReportSchema);
    j.key("fleet");
    j.open('{');
    j.key("devices"); j.u64(devices);
    j.key("shards"); j.u64(shards);
    j.key("replication"); j.u64(replication);
    j.key("liveShards"); j.u64(liveShards);
    j.key("scenario"); j.str(scenario);
    j.key("seed"); j.u64(seed);
    j.key("opsPerDevice"); j.u64(opsPerDevice);
    j.close('}');

    j.key("totals");
    j.open('{');
    j.key("pagesEncrypted"); j.u64(totalPagesEncrypted);
    j.key("pagesTrimmed"); j.u64(totalPagesTrimmed);
    j.key("junkPages"); j.u64(totalJunkPages);
    j.key("alarms"); j.u64(totalAlarms);
    j.key("segments"); j.u64(totalSegments);
    j.key("bytesStored"); j.u64(totalBytesStored);
    j.key("backpressureStalls"); j.u64(totalBackpressureStalls);
    j.key("segmentsPruned"); j.u64(totalSegmentsPruned);
    j.key("bytesPruned"); j.u64(totalBytesPruned);
    j.key("quorumWrites"); j.u64(replicationStats.quorumWrites);
    j.key("quorumStalls"); j.u64(replicationStats.quorumStalls);
    j.key("partialWrites"); j.u64(replicationStats.partialWrites);
    j.key("streamsMigrated");
    j.u64(replicationStats.streamsMigrated);
    j.key("segmentsMigrated");
    j.u64(replicationStats.segmentsMigrated);
    j.key("bytesMigrated"); j.u64(replicationStats.bytesMigrated);
    j.key("offloadAckP50Ns");
    j.u64(offloadAckLatency.count() > 0
              ? offloadAckLatency.percentileNs(50)
              : 0);
    j.key("offloadAckP99Ns");
    j.u64(offloadAckLatency.count() > 0
              ? offloadAckLatency.percentileNs(99)
              : 0);
    j.key("makespanNs"); j.u64(makespan);
    j.key("allChainsOk"); j.boolean(allChainsOk);
    j.close('}');

    j.key("repair");
    j.open('{');
    j.key("enabled"); j.boolean(repairEnabled);
    j.key("enqueues"); j.u64(repairStats.enqueues);
    j.key("streamsRepaired"); j.u64(repairStats.streamsRepaired);
    j.key("segmentsCopied"); j.u64(repairStats.segmentsCopied);
    j.key("bytesCopied"); j.u64(repairStats.bytesCopied);
    j.key("reanchors"); j.u64(repairStats.reanchors);
    j.key("copyRestarts"); j.u64(repairStats.copyRestarts);
    j.key("repairRejects"); j.u64(repairStats.repairRejects);
    j.key("irreparable"); j.u64(repairStats.irreparable);
    j.key("scrubbedSegments"); j.u64(repairStats.scrubbedSegments);
    j.key("scrubPasses"); j.u64(repairStats.scrubPasses);
    j.key("scrubCorruptions"); j.u64(repairStats.scrubCorruptions);
    j.key("tailVoteQuarantines");
    j.u64(repairStats.tailVoteQuarantines);
    j.key("quarantines"); j.u64(repairStats.quarantines);
    j.key("degradedAtEnd"); j.u64(degradedAtEnd);
    j.key("quarantinedAtEnd"); j.u64(quarantinedAtEnd);
    j.key("convergedAtNs"); j.u64(repairConvergedAt);
    j.close('}');

    j.key("latency");
    j.open('{');
    emitLatencyStage(j, "seal", sealLatency);
    emitLatencyStage(j, "queueWait", queueWaitLatency);
    emitLatencyStage(j, "quorumWait", quorumWaitLatency);
    emitLatencyStage(j, "repairCopy", repairCopyLatency);
    j.close('}');

    j.key("health");
    j.open('{');
    j.key("enabled"); j.boolean(health.enabled);
    j.key("intervalNs"); j.u64(health.interval);
    j.key("samples"); j.u64(health.samples);
    j.key("lastSampleAtNs"); j.u64(health.lastSampleAt);
    j.key("alertsRaised"); j.u64(health.alertsRaised);
    j.key("alertsOpen"); j.u64(health.alertsOpen);
    j.key("worstSeverity"); j.str(health.worstSeverity);
    j.key("rules");
    j.open('[');
    for (const HealthRuleReport &r : health.rules) {
        j.elem();
        j.open('{');
        j.key("id"); j.str(r.id);
        j.key("metric"); j.str(r.metric);
        j.key("severity"); j.str(r.severity);
        j.key("raised"); j.u64(r.raised);
        j.key("open"); j.boolean(r.open);
        j.close('}');
    }
    j.close(']');
    j.key("alerts");
    j.open('[');
    for (const HealthAlertReport &a : health.alerts) {
        j.elem();
        j.open('{');
        j.key("rule"); j.str(a.rule);
        j.key("severity"); j.str(a.severity);
        j.key("raisedAtNs"); j.u64(a.raisedAt);
        j.key("clearedAtNs"); j.u64(a.clearedAt);
        j.key("open"); j.boolean(a.open);
        j.key("observed"); j.u64(a.observed);
        j.close('}');
    }
    j.close(']');
    j.close('}');

    j.key("devices");
    j.open('[');
    for (const DeviceReport &d : deviceReports) {
        j.elem();
        emitDevice(j, d);
    }
    j.close(']');

    j.key("shards");
    j.open('[');
    for (const ShardReport &s : shardReports) {
        j.elem();
        emitShard(j, s);
    }
    j.close(']');

    j.close('}');
    out += '\n';
    return out;
}

} // namespace rssd::fleet
